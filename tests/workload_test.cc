// Tests for the hotspot workload generator and the dataset catalog.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/graph/generators.h"
#include "src/graph/graph_stats.h"
#include "src/graph/traversal.h"
#include "src/workload/datasets.h"
#include "src/workload/workload.h"

namespace grouting {
namespace {

TEST(WorkloadTest, GeneratesRequestedCount) {
  Graph g = GenerateErdosRenyi(500, 2500, 1);
  WorkloadConfig cfg;
  cfg.num_hotspots = 10;
  cfg.queries_per_hotspot = 7;
  auto queries = GenerateHotspotWorkload(g, cfg);
  EXPECT_EQ(queries.size(), 70u);
  // Ids are sequential (used for tracing).
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].id, i);
  }
}

TEST(WorkloadTest, HotspotQueriesAreNearby) {
  // Paper: pairwise distance between any two query nodes of a hotspot is at
  // most 2r (both within r hops of the same center).
  Graph g = GenerateGrid(25, 25);
  WorkloadConfig cfg;
  cfg.num_hotspots = 8;
  cfg.queries_per_hotspot = 5;
  cfg.hotspot_radius = 2;
  cfg.seed = 3;
  auto queries = GenerateHotspotWorkload(g, cfg);
  for (size_t hs = 0; hs < 8; ++hs) {
    for (size_t i = 1; i < 5; ++i) {
      const NodeId a = queries[hs * 5].node;
      const NodeId b = queries[hs * 5 + i].node;
      const int32_t d = HopDistance(g, a, b, 2 * cfg.hotspot_radius + 1);
      ASSERT_NE(d, kUnreachable);
      EXPECT_LE(d, 2 * cfg.hotspot_radius);
    }
  }
}

TEST(WorkloadTest, UniformMixtureOfQueryTypes) {
  Graph g = GenerateErdosRenyi(300, 1500, 4);
  WorkloadConfig cfg;
  cfg.num_hotspots = 100;
  cfg.queries_per_hotspot = 10;
  auto queries = GenerateHotspotWorkload(g, cfg);
  std::map<QueryType, int> counts;
  for (const Query& q : queries) {
    counts[q.type] += 1;
  }
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [type, count] : counts) {
    EXPECT_GT(count, 250);
    EXPECT_LT(count, 420);
  }
}

TEST(WorkloadTest, WeightsRespected) {
  Graph g = GenerateErdosRenyi(200, 800, 5);
  WorkloadConfig cfg;
  cfg.num_hotspots = 50;
  cfg.queries_per_hotspot = 10;
  cfg.weight_random_walk = 0.0;
  cfg.weight_reachability = 0.0;
  auto queries = GenerateHotspotWorkload(g, cfg);
  for (const Query& q : queries) {
    EXPECT_EQ(q.type, QueryType::kNeighborAggregation);
  }
}

TEST(WorkloadTest, ReachabilityQueriesHaveTargets) {
  Graph g = GenerateErdosRenyi(300, 1200, 6);
  WorkloadConfig cfg;
  cfg.num_hotspots = 60;
  cfg.queries_per_hotspot = 5;
  auto queries = GenerateHotspotWorkload(g, cfg);
  for (const Query& q : queries) {
    if (q.type == QueryType::kReachability) {
      EXPECT_NE(q.target, kInvalidNode);
      EXPECT_LT(q.target, g.num_nodes());
    }
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  Graph g = GenerateErdosRenyi(200, 800, 7);
  WorkloadConfig cfg;
  cfg.seed = 99;
  cfg.num_hotspots = 10;
  auto a = GenerateHotspotWorkload(g, cfg);
  auto b = GenerateHotspotWorkload(g, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(WorkloadTest, UniformWorkloadCoversGraph) {
  Graph g = GenerateErdosRenyi(1000, 3000, 8);
  WorkloadConfig cfg;
  auto queries = GenerateUniformWorkload(g, 500, cfg);
  EXPECT_EQ(queries.size(), 500u);
  std::set<NodeId> distinct;
  for (const Query& q : queries) {
    distinct.insert(q.node);
  }
  EXPECT_GT(distinct.size(), 300u);  // uniform, not hotspot-clustered
}

TEST(WorkloadTest, SingleNodeGraph) {
  GraphBuilder b;
  b.AddNode();
  Graph g = b.Build();
  WorkloadConfig cfg;
  cfg.num_hotspots = 3;
  cfg.queries_per_hotspot = 2;
  auto queries = GenerateHotspotWorkload(g, cfg);
  EXPECT_EQ(queries.size(), 6u);
  for (const Query& q : queries) {
    EXPECT_EQ(q.node, 0u);
  }
}

// ------------------------------------------------- skewed session stream --

TEST(SkewedWorkloadTest, GeneratesRequestedCountWithSequentialIds) {
  Graph g = GenerateErdosRenyi(500, 2500, 11);
  SkewedWorkloadConfig cfg;
  cfg.num_sessions = 16;
  cfg.num_queries = 300;
  auto queries = GenerateSkewedSessionWorkload(g, cfg);
  ASSERT_EQ(queries.size(), 300u);
  std::set<NodeId> session_nodes;
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].id, i);
    session_nodes.insert(queries[i].node);
  }
  // Every query belongs to one of the session keys.
  EXPECT_LE(session_nodes.size(), cfg.num_sessions);
}

TEST(SkewedWorkloadTest, ZipfConcentratesArrivalsOnHotSessions) {
  Graph g = GenerateErdosRenyi(2000, 8000, 12);
  SkewedWorkloadConfig cfg;
  cfg.num_sessions = 50;
  cfg.num_queries = 5000;
  cfg.zipf_s = 1.2;
  auto queries = GenerateSkewedSessionWorkload(g, cfg);
  std::map<NodeId, size_t> counts;
  for (const Query& q : queries) {
    counts[q.node] += 1;
  }
  size_t hottest = 0;
  for (const auto& [node, count] : counts) {
    hottest = std::max(hottest, count);
  }
  // Uniform share would be 100 queries/session; the rank-1 Zipf(1.2) session
  // carries ~18% of the stream.
  EXPECT_GT(hottest, 400u);

  // zipf_s = 0 degenerates to a uniform session mix.
  cfg.zipf_s = 0.0;
  auto uniform = GenerateSkewedSessionWorkload(g, cfg);
  std::map<NodeId, size_t> ucounts;
  for (const Query& q : uniform) {
    ucounts[q.node] += 1;
  }
  size_t umax = 0;
  for (const auto& [node, count] : ucounts) {
    umax = std::max(umax, count);
  }
  EXPECT_LT(umax, 250u);
}

TEST(SkewedWorkloadTest, SessionKeysAreDistinctOnLargeGraphs) {
  Graph g = GenerateErdosRenyi(5000, 15000, 13);
  SkewedWorkloadConfig cfg;
  cfg.num_sessions = 64;
  cfg.num_queries = 2000;
  cfg.zipf_s = 0.0;  // uniform: every session key appears w.h.p.
  auto queries = GenerateSkewedSessionWorkload(g, cfg);
  std::set<NodeId> distinct;
  for (const Query& q : queries) {
    distinct.insert(q.node);
  }
  EXPECT_EQ(distinct.size(), cfg.num_sessions);
}

TEST(SkewedWorkloadTest, DeterministicInSeed) {
  Graph g = GenerateErdosRenyi(300, 1200, 14);
  SkewedWorkloadConfig cfg;
  cfg.num_sessions = 20;
  cfg.num_queries = 200;
  cfg.seed = 77;
  auto a = GenerateSkewedSessionWorkload(g, cfg);
  auto b = GenerateSkewedSessionWorkload(g, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

// ------------------------------------------------------------ Datasets --

TEST(DatasetsTest, CatalogComplete) {
  EXPECT_EQ(AllDatasets().size(), 4u);
  for (const auto& spec : AllDatasets()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(spec.paper_nodes, 0u);
    EXPECT_GT(spec.base_nodes, 0u);
  }
  EXPECT_EQ(GetDatasetSpec(DatasetId::kWebGraphLike).name, "webgraph-like");
}

TEST(DatasetsTest, ScaleControlsSize) {
  Graph small = MakeDataset(DatasetId::kWebGraphLike, 0.02, 1);
  Graph large = MakeDataset(DatasetId::kWebGraphLike, 0.08, 1);
  EXPECT_GT(large.num_nodes(), small.num_nodes());
}

TEST(DatasetsTest, WebGraphLikeHasHighOverlapAndSkew) {
  Graph g = MakeDataset(DatasetId::kWebGraphLike, 0.1, 2);
  auto stats = ComputeDegreeStats(g);
  EXPECT_GT(stats.top1pct_degree_share, 0.05);
  Rng rng(3);
  EXPECT_GT(HotspotNeighborhoodOverlap(g, 2, 2, 30, rng), 0.5);
}

TEST(DatasetsTest, FriendsterLikeHasLowOverlap) {
  Graph web = MakeDataset(DatasetId::kWebGraphLike, 0.08, 4);
  Graph social = MakeDataset(DatasetId::kFriendsterLike, 0.08, 4);
  Rng r1(5);
  Rng r2(5);
  const double web_overlap = HotspotNeighborhoodOverlap(web, 2, 2, 25, r1);
  const double social_overlap = HotspotNeighborhoodOverlap(social, 2, 2, 25, r2);
  // The paper's Section 4.8 observation: Friendster's neighbourhood overlap
  // is much lower than WebGraph's, making caching less effective.
  EXPECT_LT(social_overlap, web_overlap);
}

TEST(DatasetsTest, FreebaseLikeIsSparseAndLabeled) {
  Graph g = MakeDataset(DatasetId::kFreebaseLike, 0.1, 6);
  const double avg_deg = static_cast<double>(g.num_edges()) /
                         static_cast<double>(g.num_nodes());
  EXPECT_LT(avg_deg, 3.0);
  size_t labeled = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    labeled += g.node_label(u) != kNoLabel;
  }
  EXPECT_GT(labeled, g.num_nodes() / 2);
}

TEST(DatasetsTest, DeterministicInSeed) {
  Graph a = MakeDataset(DatasetId::kMemetrackerLike, 0.05, 9);
  Graph b = MakeDataset(DatasetId::kMemetrackerLike, 0.05, 9);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

}  // namespace
}  // namespace grouting
