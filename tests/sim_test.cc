// Tests for the discrete-event simulator: event ordering, and the decoupled
// cluster simulation's functional correctness (query answers match the
// reference executor) and temporal sanity (conservation, monotonicity).

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/graph/generators.h"
#include "src/sim/decoupled_sim.h"
#include "src/sim/event_queue.h"
#include "src/workload/workload.h"

namespace grouting {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5.0, [&] { order.push_back(5); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueueTest, TiesBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] {
    ++fired;
    q.ScheduleAfter(1.0, [&] { ++fired; });
  });
  q.RunUntilEmpty();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double observed = -1.0;
  q.ScheduleAt(4.0, [&] { q.ScheduleAfter(2.5, [&] { observed = q.now(); }); });
  q.RunUntilEmpty();
  EXPECT_DOUBLE_EQ(observed, 6.5);
}

// ------------------------------------------------------- DecoupledSim ---

class DecoupledSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LocalityWebConfig cfg;
    cfg.grid_width = 6;
    cfg.grid_height = 6;
    cfg.community_size = 30;
    graph_ = GenerateLocalityWeb(cfg, 3);
    WorkloadConfig wc;
    wc.num_hotspots = 20;
    wc.queries_per_hotspot = 5;
    wc.seed = 17;
    queries_ = GenerateHotspotWorkload(graph_, wc);
  }

  ClusterConfig BaseConfig() const {
    ClusterConfig sc;
    sc.num_processors = 3;
    sc.num_storage_servers = 2;
    sc.processor.cache_bytes = graph_.TotalAdjacencyBytes() + (1 << 20);
    return sc;
  }

  Graph graph_;
  std::vector<Query> queries_;
};

TEST_F(DecoupledSimTest, AllQueriesAnswered) {
  DecoupledClusterSim sim(graph_, BaseConfig(), std::make_unique<NextReadyStrategy>());
  auto metrics = sim.Run(queries_);
  EXPECT_EQ(metrics.queries, queries_.size());
  EXPECT_EQ(sim.answers().size(), queries_.size());
  EXPECT_GT(metrics.makespan_us, 0.0);
  EXPECT_GT(metrics.throughput_qps, 0.0);
  EXPECT_GT(metrics.mean_response_ms, 0.0);
}

TEST_F(DecoupledSimTest, AnswersMatchReferenceExecutor) {
  DecoupledClusterSim sim(graph_, BaseConfig(), std::make_unique<HashStrategy>());
  sim.Run(queries_);
  // The sim preserves arrival order in results only per processor; compare
  // aggregate answers by re-running each query against the plain graph.
  // (Order across processors interleaves, so match by query id via count.)
  DirectGraphSource reference(graph_);
  uint64_t expected_aggregate = 0;
  uint64_t expected_reachable = 0;
  for (const Query& q : queries_) {
    const auto r = ExecuteQuery(q, reference);
    expected_aggregate += r.aggregate;
    expected_reachable += r.reachable;
  }
  uint64_t got_aggregate = 0;
  uint64_t got_reachable = 0;
  for (const auto& a : sim.answers()) {
    got_aggregate += a.result.aggregate;
    got_reachable += a.result.reachable;
  }
  EXPECT_EQ(got_aggregate, expected_aggregate);
  EXPECT_EQ(got_reachable, expected_reachable);
}

TEST_F(DecoupledSimTest, WorkConservedAcrossProcessors) {
  DecoupledClusterSim sim(graph_, BaseConfig(), std::make_unique<NextReadyStrategy>());
  auto metrics = sim.Run(queries_);
  uint64_t total = 0;
  for (uint64_t c : metrics.queries_per_processor) {
    total += c;
  }
  EXPECT_EQ(total, queries_.size());
}

TEST_F(DecoupledSimTest, NoCacheModeNeverHits) {
  ClusterConfig sc = BaseConfig();
  sc.processor.use_cache = false;
  DecoupledClusterSim sim(graph_, sc, std::make_unique<NextReadyStrategy>());
  auto metrics = sim.Run(queries_);
  EXPECT_EQ(metrics.cache_hits, 0u);
  EXPECT_GT(metrics.cache_misses, 0u);
}

TEST_F(DecoupledSimTest, CacheModeHitsOnHotspotWorkload) {
  DecoupledClusterSim sim(graph_, BaseConfig(), std::make_unique<HashStrategy>());
  auto metrics = sim.Run(queries_);
  EXPECT_GT(metrics.cache_hits, 0u);
  EXPECT_GT(metrics.CacheHitRate(), 0.05);
}

TEST_F(DecoupledSimTest, DeterministicAcrossRuns) {
  DecoupledClusterSim a(graph_, BaseConfig(), std::make_unique<HashStrategy>());
  DecoupledClusterSim b(graph_, BaseConfig(), std::make_unique<HashStrategy>());
  auto ma = a.Run(queries_);
  auto mb = b.Run(queries_);
  EXPECT_DOUBLE_EQ(ma.makespan_us, mb.makespan_us);
  EXPECT_EQ(ma.cache_hits, mb.cache_hits);
  EXPECT_EQ(ma.steals, mb.steals);
}

TEST_F(DecoupledSimTest, MoreProcessorsDoNotReduceThroughput) {
  ClusterConfig sc1 = BaseConfig();
  sc1.num_processors = 1;
  DecoupledClusterSim sim1(graph_, sc1, std::make_unique<NextReadyStrategy>());
  const double thr1 = sim1.Run(queries_).throughput_qps;

  ClusterConfig sc4 = BaseConfig();
  sc4.num_processors = 4;
  DecoupledClusterSim sim4(graph_, sc4, std::make_unique<NextReadyStrategy>());
  const double thr4 = sim4.Run(queries_).throughput_qps;
  EXPECT_GT(thr4, thr1);
}

TEST_F(DecoupledSimTest, MoreStorageServersHelpNoCacheWorkload) {
  ClusterConfig sc1 = BaseConfig();
  sc1.processor.use_cache = false;
  sc1.num_storage_servers = 1;
  DecoupledClusterSim sim1(graph_, sc1, std::make_unique<NextReadyStrategy>());
  const double thr1 = sim1.Run(queries_).throughput_qps;

  ClusterConfig sc4 = BaseConfig();
  sc4.processor.use_cache = false;
  sc4.num_storage_servers = 4;
  DecoupledClusterSim sim4(graph_, sc4, std::make_unique<NextReadyStrategy>());
  const double thr4 = sim4.Run(queries_).throughput_qps;
  EXPECT_GT(thr4, thr1);
}

TEST_F(DecoupledSimTest, EthernetSlowerThanInfiniband) {
  ClusterConfig ib = BaseConfig();
  ib.cost = CostModel::InfinibandDefaults();
  DecoupledClusterSim sim_ib(graph_, ib, std::make_unique<HashStrategy>());
  const double r_ib = sim_ib.Run(queries_).mean_response_ms;

  ClusterConfig eth = BaseConfig();
  eth.cost = CostModel::EthernetDefaults();
  DecoupledClusterSim sim_eth(graph_, eth, std::make_unique<HashStrategy>());
  const double r_eth = sim_eth.Run(queries_).mean_response_ms;
  EXPECT_GT(r_eth, r_ib);
}

TEST_F(DecoupledSimTest, RunTwiceIsRejected) {
  DecoupledClusterSim sim(graph_, BaseConfig(), std::make_unique<NextReadyStrategy>());
  sim.Run(queries_);
  EXPECT_DEATH(sim.Run(queries_), "Run may only be called once");
}

TEST_F(DecoupledSimTest, TinyCacheStillCorrect) {
  ClusterConfig sc = BaseConfig();
  sc.processor.cache_bytes = 4096;  // heavy eviction churn
  DecoupledClusterSim sim(graph_, sc, std::make_unique<HashStrategy>());
  auto metrics = sim.Run(queries_);
  EXPECT_EQ(metrics.queries, queries_.size());
  // Eviction-heavy runs must still produce exact answers.
  DirectGraphSource reference(graph_);
  uint64_t expected = 0;
  for (const Query& q : queries_) {
    expected += ExecuteQuery(q, reference).aggregate;
  }
  uint64_t got = 0;
  for (const auto& a : sim.answers()) {
    got += a.result.aggregate;
  }
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace grouting
