// Storage-tier adaptive repartitioning (src/partition/repartition.h +
// StorageTier::MigratePartition): map identity with classic hash placement,
// the planner's threshold/hysteresis/cap/noise controller, the physical
// copy-flip-drain-delete executor, and — the part that earns the "exactly
// once" claim — migrations racing in-flight async multiget windows, both at
// the storage layer directly and through a full threaded-engine run checked
// against a no-repartitioning reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/grouting.h"

namespace grouting {
namespace {

Graph TestGraph(uint32_t nodes = 400, uint64_t seed = 7) {
  return GenerateBarabasiAlbert(nodes, /*edges_per_node=*/4, seed);
}

TEST(PartitionMapTest, InitialLayoutMatchesHashPlacement) {
  // (h % cM) % M == h % M: before any migration the map must place every
  // key exactly where the tier's classic hash placement puts it, so
  // enabling repartitioning alone changes nothing.
  const uint32_t servers = 4;
  const uint32_t seed = 0x9747b28cu;
  const PartitionMap map(/*num_partitions=*/8 * servers, servers, seed);
  const HashPartitioner hasher(seed);
  for (NodeId u = 0; u < 50'000; ++u) {
    ASSERT_EQ(map.OwnerOf(u), hasher.Place(u, servers)) << "node " << u;
  }
}

TEST(PartitionMapTest, SetOwnerRebindsLookups) {
  PartitionMap map(8, 2, /*hash_seed=*/1);
  const uint32_t q = map.PartitionOf(123);
  const uint32_t old_owner = map.owner(q);
  const uint32_t new_owner = 1 - old_owner;
  map.SetOwner(q, new_owner);
  EXPECT_EQ(map.OwnerOf(123), new_owner);
}

TEST(PartitionMonitorTest, RollsWindowsIntoDecayedRates) {
  PartitionMonitor monitor(4);
  monitor.Record(2);
  monitor.Record(2);
  monitor.Record(0);
  monitor.RollWindow(/*decay=*/0.5);
  EXPECT_DOUBLE_EQ(monitor.rates()[2], 2.0);
  EXPECT_DOUBLE_EQ(monitor.rates()[0], 1.0);
  EXPECT_DOUBLE_EQ(monitor.rates()[1], 0.0);
  monitor.RollWindow(0.5);  // empty window: rates decay
  EXPECT_DOUBLE_EQ(monitor.rates()[2], 1.0);
  EXPECT_EQ(monitor.total_recorded(), 3u);
}

class PlannerTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kServers = 4;
  static constexpr uint32_t kPartitionsPerServer = 4;

  PlannerTest() : map_(kServers * kPartitionsPerServer, kServers, /*seed=*/3) {}

  RepartitionConfig Config(double threshold, uint32_t cap = 4) {
    RepartitionConfig config;
    config.threshold = threshold;
    config.migration_cap = cap;
    config.partitions_per_server = kPartitionsPerServer;
    return config;
  }

  // Rates with all the load piled on server 0's partitions (initial owner
  // of partition q is q % kServers).
  std::vector<double> SkewedRates(double hot = 1000.0) {
    std::vector<double> rates(map_.num_partitions(), 1.0);
    for (uint32_t q = 0; q < map_.num_partitions(); q += kServers) {
      rates[q] = hot / kPartitionsPerServer;
    }
    return rates;
  }

  PartitionMap map_;
};

TEST_F(PlannerTest, BelowThresholdPlansNothing) {
  const auto plan =
      PlanRepartition(map_, SkewedRates(), Config(/*threshold=*/1e31));
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(
      PlanRepartition(map_, SkewedRates(), Config(/*threshold=*/0.0)).empty());
}

TEST_F(PlannerTest, MovesHotPartitionsOffTheHottestServer) {
  const auto plan = PlanRepartition(map_, SkewedRates(), Config(1.5));
  ASSERT_FALSE(plan.empty());
  for (const PartitionMigration& mig : plan) {
    EXPECT_EQ(mig.from, 0u) << "only server 0 is hot";
    EXPECT_NE(mig.to, 0u);
    EXPECT_EQ(mig.partition % kServers, 0u) << "victims live on server 0";
  }
}

TEST_F(PlannerTest, RespectsMigrationCap) {
  const auto plan = PlanRepartition(map_, SkewedRates(), Config(1.2, /*cap=*/2));
  EXPECT_LE(plan.size(), 2u);
}

TEST_F(PlannerTest, NoiseFloorSuppressesSmallSpreads) {
  // Loads differ, but the gap (3) is within noise_sigmas * sqrt(max) of a
  // hot server at 8: sampling jitter, not actionable skew.
  std::vector<double> rates(map_.num_partitions(), 0.0);
  rates[0] = 8.0;  // server 0
  rates[1] = 5.0;  // server 1
  EXPECT_TRUE(PlanRepartition(map_, rates, Config(1.1)).empty());
}

TEST_F(PlannerTest, DoesNotMutateTheMap) {
  const auto before = map_.OwnerSnapshot();
  PlanRepartition(map_, SkewedRates(), Config(1.2));
  EXPECT_EQ(map_.OwnerSnapshot(), before);
}

TEST(StorageLoadImbalanceTest, MaxOverMinClamped) {
  const std::vector<uint64_t> loads = {10, 40, 20, 20};
  EXPECT_DOUBLE_EQ(StorageLoadImbalance(loads), 4.0);
  const std::vector<uint64_t> zero = {0, 5};
  EXPECT_DOUBLE_EQ(StorageLoadImbalance(zero), 5.0);
  EXPECT_DOUBLE_EQ(StorageLoadImbalance(std::vector<uint64_t>{7}), 1.0);
}

TEST(StorageTierRepartitionTest, EnableIsPlacementIdenticalUntilAMigration) {
  const Graph g = TestGraph();
  StorageTier plain(4);
  plain.LoadGraph(g);
  StorageTier repart(4);
  repart.EnableRepartitioning(/*partitions_per_server=*/8);
  repart.LoadGraph(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(plain.ServerOf(u), repart.ServerOf(u)) << "node " << u;
  }
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(plain.server(s).store().entry_count(),
              repart.server(s).store().entry_count());
  }
}

TEST(StorageTierRepartitionTest, MigrateMovesKeysAndFlipsOwnership) {
  const Graph g = TestGraph();
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.LoadGraph(g);

  const PartitionMap& map = *tier.partition_map();
  const uint32_t partition = map.PartitionOf(0);
  const uint32_t from = map.owner(partition);
  const uint32_t to = (from + 1) % 4;
  const uint64_t src_before = tier.server(from).store().entry_count();

  const auto result = tier.MigratePartition(partition, to);
  EXPECT_EQ(result.from, from);
  EXPECT_EQ(result.to, to);
  EXPECT_GT(result.keys_moved, 0u);
  EXPECT_GT(result.bytes_moved, 0u);
  EXPECT_EQ(tier.server(from).store().entry_count(),
            src_before - result.keys_moved);

  // Every key of the partition now resolves to (and lives on) the new
  // owner, and fetches still return the adjacency data.
  uint64_t checked = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (map.PartitionOf(u) != partition) {
      continue;
    }
    ASSERT_EQ(tier.ServerOf(u), to);
    ASSERT_TRUE(tier.server(to).store().Contains(u));
    ASSERT_FALSE(tier.server(from).store().Contains(u));
    ASSERT_NE(tier.Get(u), nullptr);
    ++checked;
  }
  EXPECT_EQ(checked, result.keys_moved);

  // Moving it back restores the original layout.
  const auto back = tier.MigratePartition(partition, from);
  EXPECT_EQ(back.keys_moved, result.keys_moved);
  EXPECT_EQ(tier.server(from).store().entry_count(), src_before);
}

TEST(StorageTierRepartitionTest, MonitorCountsGetAndMultiGetTraffic) {
  const Graph g = TestGraph();
  StorageTier tier(2);
  tier.EnableRepartitioning(4);
  tier.LoadGraph(g);
  tier.Get(1);
  auto handle = tier.StartMultiGet(tier.ServerOf(2), {2, 3});
  handle->Execute();
  PartitionMonitor* monitor = tier.partition_monitor();
  monitor->RollWindow(0.0);
  EXPECT_EQ(monitor->total_recorded(), 3u);
}

// A migration must wait for multiget handles opened against the old owner:
// the handle below is opened BEFORE the migration starts, so the drain
// (step 3) blocks the source-side delete (step 4) until the handle has been
// serviced — its values must all be present.
TEST(StorageTierRepartitionTest, DrainHoldsDeleteForInflightHandles) {
  const Graph g = TestGraph();
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.LoadGraph(g);
  const PartitionMap& map = *tier.partition_map();
  const uint32_t partition = map.PartitionOf(0);
  const uint32_t from = map.owner(partition);

  std::vector<NodeId> keys;
  for (NodeId u = 0; u < g.num_nodes() && keys.size() < 8; ++u) {
    if (map.PartitionOf(u) == partition) {
      keys.push_back(u);
    }
  }
  ASSERT_FALSE(keys.empty());

  auto handle = tier.StartMultiGet(from, keys);
  std::atomic<bool> migrated{false};
  std::thread migrator([&] {
    tier.MigratePartition(partition, (from + 1) % 4);
    migrated.store(true, std::memory_order_release);
  });
  // The migration cannot finish while the handle is open against the old
  // owner. (Give the drain a moment to make forward progress impossible to
  // miss; this is a liveness smoke, the ordering proof is the values below.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(migrated.load(std::memory_order_acquire));

  handle->Execute();
  migrator.join();
  const auto& values = handle->Wait();
  ASSERT_EQ(values.size(), keys.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NE(values[i], nullptr) << "key " << keys[i] << " lost in migration";
  }
}

// The one hole the drain cannot cover: a reader resolves ServerOf, the
// migration flips + deletes, and only then does the reader's StartMultiGet
// hit the old owner. The processor-side fallback re-resolves such misses
// through the tier's current map.
TEST(StorageTierRepartitionTest, ResolveMigratedMissesRefetchesMovedKeys) {
  const Graph g = TestGraph();
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.LoadGraph(g);
  const PartitionMap& map = *tier.partition_map();
  const uint32_t partition = map.PartitionOf(0);
  const uint32_t from = map.owner(partition);

  std::vector<NodeId> keys;
  for (NodeId u = 0; u < g.num_nodes() && keys.size() < 6; ++u) {
    if (map.PartitionOf(u) == partition) {
      keys.push_back(u);
    }
  }
  ASSERT_FALSE(keys.empty());
  tier.MigratePartition(partition, (from + 1) % 4);

  // Stale read: the batch still targets the old owner.
  auto handle = tier.StartMultiGet(from, keys);
  handle->Execute();
  std::vector<AdjacencyPtr> values = handle->Wait();
  for (const auto& v : values) {
    ASSERT_EQ(v, nullptr) << "old owner should have lost the partition";
  }
  const size_t resolved = ResolveMigratedMisses(&tier, keys, &values);
  EXPECT_EQ(resolved, keys.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NE(values[i], nullptr) << "key " << keys[i];
  }
}

// Model check at the processor layer: FetchBatch slams a fixed key set
// through CachedStorageSource (async window 2, executor-less) while another
// thread migrates the keys' partitions back and forth. Whatever the
// interleaving — batch formed before a flip, serviced after the delete —
// every batch must come back complete. Run under TSan in CI.
TEST(StorageTierRepartitionTest, MigrationStormNeverLosesAValue) {
  const Graph g = TestGraph(/*nodes=*/600);
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.LoadGraph(g);
  const PartitionMap& map = *tier.partition_map();

  std::vector<NodeId> keys;
  for (NodeId u = 0; u < 64; ++u) {
    keys.push_back(u);
  }
  const uint32_t p0 = map.PartitionOf(keys[0]);
  const uint32_t p1 = map.PartitionOf(keys[1]);

  std::atomic<bool> stop{false};
  std::thread migrator([&] {
    uint32_t round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      tier.MigratePartition(p0, round % 4);
      tier.MigratePartition(p1, (round + 2) % 4);
      ++round;
    }
  });

  CachedStorageSource source(&tier, /*cache=*/nullptr, /*max_inflight_batches=*/2);
  for (int iter = 0; iter < 300; ++iter) {
    const auto values = source.FetchBatch(keys);
    ASSERT_EQ(values.size(), keys.size());
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_NE(values[i], nullptr)
          << "iteration " << iter << " lost key " << keys[i];
    }
  }
  stop.store(true, std::memory_order_release);
  migrator.join();
}

// Randomized-interleaving fuzz for the stamp-stable retry: every seed draws
// a different schedule of "snapshot stale servers -> run 0-3 more
// migrations (deliberately including moves BACK to the snapshotted owner,
// the ABA case a naive owner-equality check would misread as 'nothing
// happened') -> issue the stale batches -> heal". Exactly-once must hold on
// every schedule: all values present and correct after ResolveMigratedMisses.
TEST(StorageTierRepartitionTest, SeededMigrationSchedulesHealExactlyOnce) {
  const Graph g = TestGraph();
  for (uint64_t seed = 0; seed < 32; ++seed) {
    StorageTier tier(4);
    tier.EnableRepartitioning(8);
    tier.LoadGraph(g);
    const PartitionMap& map = *tier.partition_map();
    std::mt19937_64 rng(seed);

    std::vector<NodeId> keys;
    for (int i = 0; i < 16; ++i) {
      keys.push_back(static_cast<NodeId>(rng() % g.num_nodes()));
    }

    for (int round = 0; round < 12; ++round) {
      // Snapshot the keys' servers, as a processor's miss pass would.
      std::vector<uint32_t> stale_server(keys.size());
      for (size_t i = 0; i < keys.size(); ++i) {
        stale_server[i] = tier.ServerOf(keys[i]);
      }

      // Race: migrations land between the snapshot and the batch issue.
      const int moves = static_cast<int>(rng() % 4);
      for (int m = 0; m < moves; ++m) {
        const uint32_t q = map.PartitionOf(keys[rng() % keys.size()]);
        // Half the moves target the key's snapshotted owner: the partition
        // leaves and comes back, so a stale batch can read a key that is
        // "home again" under a different stamp (ABA).
        const uint32_t to = (rng() % 2 == 0)
                                ? stale_server[rng() % keys.size()]
                                : static_cast<uint32_t>(rng() % 4);
        tier.MigratePartition(q, to);
      }

      // Issue the stale batches grouped by snapshotted server, then heal.
      std::vector<AdjacencyPtr> values(keys.size());
      for (uint32_t s = 0; s < 4; ++s) {
        std::vector<NodeId> batch;
        std::vector<size_t> pos;
        for (size_t i = 0; i < keys.size(); ++i) {
          if (stale_server[i] == s) {
            batch.push_back(keys[i]);
            pos.push_back(i);
          }
        }
        if (batch.empty()) {
          continue;
        }
        auto handle = tier.StartMultiGet(s, batch);
        handle->Execute();
        const auto& got = handle->Wait();
        for (size_t i = 0; i < pos.size(); ++i) {
          values[pos[i]] = got[i];
        }
      }
      ResolveMigratedMisses(&tier, keys, &values);
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_NE(values[i], nullptr)
            << "seed " << seed << " round " << round << " key " << keys[i];
        ASSERT_EQ(values[i]->out.size(), g.OutDegree(keys[i]))
            << "seed " << seed << " round " << round << " key " << keys[i];
      }
    }
  }
}

// The threaded variant: a pre-generated deterministic migration schedule
// (so a failing seed reproduces) races FetchBatch loops on real threads.
// Run under TSan in CI.
TEST(StorageTierRepartitionTest, SeededThreadedSchedulesNeverLoseAValue) {
  const Graph g = TestGraph(/*nodes=*/600);
  for (uint64_t seed = 0; seed < 4; ++seed) {
    StorageTier tier(4);
    tier.EnableRepartitioning(8);
    tier.LoadGraph(g);
    const PartitionMap& map = *tier.partition_map();

    std::vector<NodeId> keys;
    for (NodeId u = 0; u < 48; ++u) {
      keys.push_back(u);
    }
    // The schedule cycles over the keys' partitions, including immediate
    // return moves (the threaded ABA shape).
    std::mt19937_64 rng(seed ^ 0xf00dULL);
    std::vector<std::pair<uint32_t, uint32_t>> schedule;
    for (int i = 0; i < 200; ++i) {
      const uint32_t q = map.PartitionOf(keys[rng() % keys.size()]);
      schedule.emplace_back(q, static_cast<uint32_t>(rng() % 4));
      if (rng() % 2 == 0) {
        schedule.emplace_back(q, map.owner(q));
      }
    }

    std::thread migrator([&] {
      for (const auto& [q, to] : schedule) {
        tier.MigratePartition(q, to);
      }
    });
    CachedStorageSource source(&tier, /*cache=*/nullptr,
                               /*max_inflight_batches=*/2);
    for (int iter = 0; iter < 150; ++iter) {
      const auto values = source.FetchBatch(keys);
      ASSERT_EQ(values.size(), keys.size());
      for (size_t i = 0; i < values.size(); ++i) {
        ASSERT_NE(values[i], nullptr)
            << "seed " << seed << " iteration " << iter << " key " << keys[i];
      }
    }
    migrator.join();
  }
}

// End-to-end exactly-once: a threaded run with an async multiget window and
// aggressive repartitioning racing it must answer every query once, with
// answers identical to a deterministic no-repartitioning sim reference.
TEST(RepartitionEngineTest, ThreadedAsyncRunIsExactlyOnceUnderMigrations) {
  ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.1, /*seed=*/23);
  const auto queries = env.SkewedWorkload(/*sessions=*/32, /*queries=*/400,
                                          /*zipf_s=*/1.2);

  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kHash;
  opts.processors = 3;
  opts.storage_servers = 4;
  opts.cache_bytes = 64 << 10;  // small: keeps storage traffic (and the
                                // monitor signal) alive all run
  opts.max_inflight_batches = 4;
  opts.repartition_threshold = 1.05;  // migrate at the slightest skew
  opts.repartition_cap = 8;
  opts.partitions_per_server = 8;
  opts.gossip_period_us = 50.0;
  opts.arrival_gap_us = 2.0;

  RunOptions ref_opts = opts;
  ref_opts.repartition_threshold = 0.0;
  ref_opts.max_inflight_batches = 1;

  const Graph& g = env.graph();
  auto threaded = MakeClusterEngine(EngineKind::kThreaded, g,
                                    env.MakeClusterConfig(opts), env.MakeStrategy(opts));
  auto reference =
      MakeClusterEngine(EngineKind::kSimulated, g, env.MakeClusterConfig(ref_opts),
                        env.MakeStrategy(ref_opts));
  const ClusterMetrics m = threaded->Run(queries);
  reference->Run(queries);

  ASSERT_EQ(m.queries, queries.size());

  auto sorted = [](const ClusterEngine& e) {
    std::vector<AnsweredQuery> answers = e.answers();
    std::sort(answers.begin(), answers.end(),
              [](const AnsweredQuery& a, const AnsweredQuery& b) {
                return a.query_id < b.query_id;
              });
    return answers;
  };
  const auto got = sorted(*threaded);
  const auto want = sorted(*reference);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].query_id, want[i].query_id) << "answer " << i;
    EXPECT_EQ(got[i].result.aggregate, want[i].result.aggregate)
        << "query " << got[i].query_id;
    EXPECT_EQ(got[i].result.walk_end, want[i].result.walk_end)
        << "query " << got[i].query_id;
    EXPECT_EQ(got[i].result.reachable, want[i].result.reachable)
        << "query " << got[i].query_id;
    EXPECT_EQ(got[i].result.distance, want[i].result.distance)
        << "query " << got[i].query_id;
  }
}

// The acceptance shape, pinned deterministically on the simulated engine:
// under a Zipf-skewed session stream with a small cache, repartitioning on
// must migrate partitions and end the run with strictly lower per-server
// load imbalance than repartitioning off.
TEST(RepartitionEngineTest, SimRepartitioningLowersStorageImbalanceUnderSkew) {
  ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.1, /*seed=*/31);
  const auto queries = env.SkewedWorkload(/*sessions=*/24, /*queries=*/600,
                                          /*zipf_s=*/1.3);

  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.processors = 3;
  opts.storage_servers = 4;
  opts.num_landmarks = 16;
  opts.min_separation = 2;
  opts.dimensions = 6;
  opts.cache_bytes = 64 << 10;
  opts.gossip_period_us = 100.0;
  opts.arrival_gap_us = 5.0;

  RunOptions on = opts;
  on.repartition_threshold = 1.15;
  on.repartition_cap = 4;
  on.partitions_per_server = 8;

  const ClusterMetrics off_m = env.Run(EngineKind::kSimulated, opts, queries);
  const ClusterMetrics on_m = env.Run(EngineKind::kSimulated, on, queries);

  EXPECT_EQ(off_m.partitions_migrated, 0u);
  EXPECT_DOUBLE_EQ(off_m.repartition_stall_us, 0.0);
  EXPECT_GT(on_m.partitions_migrated, 0u);
  EXPECT_GT(on_m.repartition_stall_us, 0.0);
  EXPECT_GT(off_m.storage_load_imbalance, 1.0);
  EXPECT_LT(on_m.storage_load_imbalance, off_m.storage_load_imbalance);
}

}  // namespace
}  // namespace grouting
