// Tests for the Nelder-Mead optimiser and the landmark-based graph
// embedding, including the paper's key properties: error decreases with
// dimensionality, and nearby nodes get nearby coordinates.

#include <gtest/gtest.h>

#include <cmath>

#include "src/embed/embedding.h"
#include "src/embed/nelder_mead.h"
#include "src/graph/generators.h"
#include "src/graph/traversal.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

TEST(NelderMeadTest, MinimizesQuadratic1D) {
  std::vector<double> x{10.0};
  const double best = NelderMead(
      [](std::span<const double> p) { return (p[0] - 3.0) * (p[0] - 3.0); },
      std::span<double>(x));
  EXPECT_NEAR(x[0], 3.0, 1e-2);
  EXPECT_NEAR(best, 0.0, 1e-3);
}

TEST(NelderMeadTest, MinimizesSphere5D) {
  std::vector<double> x{4, -3, 2, -1, 5};
  NelderMeadOptions opts;
  opts.max_evals = 2000;
  opts.tolerance = 1e-10;
  NelderMead(
      [](std::span<const double> p) {
        double s = 0;
        for (double v : p) {
          s += v * v;
        }
        return s;
      },
      std::span<double>(x), opts);
  for (double v : x) {
    EXPECT_NEAR(v, 0.0, 0.05);
  }
}

TEST(NelderMeadTest, RosenbrockMakesProgress) {
  std::vector<double> x{-1.2, 1.0};
  NelderMeadOptions opts;
  opts.max_evals = 4000;
  opts.tolerance = 1e-12;
  const double best = NelderMead(
      [](std::span<const double> p) {
        const double a = 1.0 - p[0];
        const double b = p[1] - p[0] * p[0];
        return a * a + 100.0 * b * b;
      },
      std::span<double>(x), opts);
  EXPECT_LT(best, 0.5);  // from f(-1.2, 1) = 24.2
}

TEST(NelderMeadTest, RespectsEvalBudget) {
  int evals = 0;
  std::vector<double> x{1.0, 1.0};
  NelderMeadOptions opts;
  opts.max_evals = 50;
  NelderMead(
      [&evals](std::span<const double> p) {
        ++evals;
        return p[0] * p[0] + p[1] * p[1];
      },
      std::span<double>(x), opts);
  EXPECT_LE(evals, 50 + 3);  // simplex init may finish the last iteration
}

// ----------------------------------------------------------- Embedding --

EmbedConfig TestEmbedConfig(size_t dims) {
  EmbedConfig cfg;
  cfg.dimensions = dims;
  cfg.seed = 3;
  cfg.num_threads = 2;
  return cfg;
}

LandmarkConfig TestLandmarkConfig(size_t count) {
  LandmarkConfig cfg;
  cfg.num_landmarks = count;
  cfg.min_separation = 2;
  cfg.seed = 4;
  return cfg;
}

TEST(EmbeddingTest, AllConnectedNodesEmbedded) {
  Graph g = GenerateBarabasiAlbert(400, 3, 1);
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(12));
  auto emb = GraphEmbedding::Build(lms, TestEmbedConfig(6));
  EXPECT_EQ(emb.dimensions(), 6u);
  EXPECT_EQ(emb.num_nodes(), g.num_nodes());
  size_t embedded = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    embedded += emb.IsEmbedded(u);
  }
  EXPECT_GT(embedded, g.num_nodes() * 95 / 100);
}

TEST(EmbeddingTest, DisconnectedNodeStaysUnembedded) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddNode();  // node 3, isolated
  Graph g = b.Build();
  LandmarkConfig lc = TestLandmarkConfig(2);
  auto lms = LandmarkSet::Select(g, lc);
  auto emb = GraphEmbedding::Build(lms, TestEmbedConfig(4));
  EXPECT_FALSE(emb.IsEmbedded(3));
}

TEST(EmbeddingTest, GridGeometryRecovered) {
  // A 2D grid embeds almost isometrically: far grid nodes must be far in
  // the embedding, near nodes near.
  Graph g = GenerateGrid(15, 15);
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(10));
  auto emb = GraphEmbedding::Build(lms, TestEmbedConfig(4));
  auto l2 = [&](NodeId a, NodeId b) {
    auto ca = emb.Coords(a);
    auto cb = emb.Coords(b);
    double s = 0;
    for (size_t k = 0; k < ca.size(); ++k) {
      s += (ca[k] - cb[k]) * (ca[k] - cb[k]);
    }
    return std::sqrt(s);
  };
  // corners: 0 and 224 are 28 hops apart; adjacent nodes 1 hop.
  EXPECT_GT(l2(0, 224), 5.0 * l2(0, 1));
}

TEST(EmbeddingTest, ErrorDecreasesWithDimensions) {
  // A preferential-attachment graph has intrinsic dimension well above 2,
  // so a 1-D embedding must be clearly worse than an 8-D one (a grid would
  // already be near-perfect at D=2, hiding the effect).
  Graph g = GenerateBarabasiAlbert(500, 4, 5);
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(12));
  auto emb1 = GraphEmbedding::Build(lms, TestEmbedConfig(1));
  auto emb8 = GraphEmbedding::Build(lms, TestEmbedConfig(8));
  Rng ra(9);
  Rng rb(9);
  const double err1 = emb1.MeasureRelativeError(g, 150, 3, ra);
  const double err8 = emb8.MeasureRelativeError(g, 150, 3, rb);
  // Paper Fig 12a: relative error shrinks as dimensionality grows.
  EXPECT_LT(err8, err1);
}

TEST(EmbeddingTest, NearbyNodesGetNearbyCoordinates) {
  LocalityWebConfig web;
  web.grid_width = 8;
  web.grid_height = 8;
  web.community_size = 40;
  Graph g = GenerateLocalityWeb(web, 6);
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(24));
  auto emb = GraphEmbedding::Build(lms, TestEmbedConfig(8));
  Rng rng(7);
  double near_sum = 0;
  double far_sum = 0;
  int samples = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    auto near = KHopNeighborhood(g, u, 1);
    if (near.empty() || !emb.IsEmbedded(u)) {
      continue;
    }
    const NodeId v = near[rng.NextBounded(near.size())];
    const auto far_node = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    if (!emb.IsEmbedded(v) || !emb.IsEmbedded(far_node)) {
      continue;
    }
    std::vector<double> cu(emb.Coords(u).begin(), emb.Coords(u).end());
    near_sum += emb.DistanceToPoint(v, cu);
    far_sum += emb.DistanceToPoint(far_node, cu);
    ++samples;
  }
  ASSERT_GT(samples, 20);
  EXPECT_LT(near_sum / samples, far_sum / samples);
}

TEST(EmbeddingTest, DeterministicInSeed) {
  Graph g = GenerateErdosRenyi(200, 800, 8);
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(8));
  EmbedConfig cfg = TestEmbedConfig(5);
  cfg.num_threads = 1;
  auto a = GraphEmbedding::Build(lms, cfg);
  auto b = GraphEmbedding::Build(lms, cfg);
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    if (!a.IsEmbedded(u)) {
      continue;
    }
    auto ca = a.Coords(u);
    auto cb = b.Coords(u);
    for (size_t k = 0; k < ca.size(); ++k) {
      EXPECT_FLOAT_EQ(ca[k], cb[k]);
    }
  }
}

TEST(EmbeddingTest, IncrementalAddMatchesRegion) {
  Graph g = GenerateGrid(12, 12);
  std::vector<uint8_t> allowed(g.num_nodes(), 1);
  const NodeId hidden = 77;  // interior node
  allowed[hidden] = 0;
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(10), &allowed);
  auto emb = GraphEmbedding::Build(lms, TestEmbedConfig(4));
  EXPECT_FALSE(emb.IsEmbedded(hidden));
  ASSERT_TRUE(emb.AddNodeIncremental(g, hidden, lms));
  EXPECT_TRUE(emb.IsEmbedded(hidden));
  // The incrementally placed node should be closer to its grid neighbour
  // than to the far corner.
  std::vector<double> c(emb.Coords(hidden).begin(), emb.Coords(hidden).end());
  EXPECT_LT(emb.DistanceToPoint(hidden - 1, c), emb.DistanceToPoint(143, c));
}

TEST(EmbeddingTest, IncrementalAddFailsWithNoKnownNeighbors) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddNode();  // 3 isolated
  Graph g = b.Build();
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(2));
  auto emb = GraphEmbedding::Build(lms, TestEmbedConfig(3));
  EXPECT_FALSE(emb.AddNodeIncremental(g, 3, lms));
}

TEST(EmbeddingTest, MemoryBytesLinearInNodes) {
  Graph g = GenerateErdosRenyi(300, 900, 9);
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(6));
  auto emb = GraphEmbedding::Build(lms, TestEmbedConfig(10));
  EXPECT_GE(emb.MemoryBytes(), 300u * 10u * sizeof(float));
}

TEST(EmbeddingTest, StatsPopulated) {
  Graph g = GenerateErdosRenyi(200, 600, 10);
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(8));
  auto emb = GraphEmbedding::Build(lms, TestEmbedConfig(6));
  EXPECT_GT(emb.stats().landmark_embed_seconds, 0.0);
  EXPECT_GT(emb.stats().node_embed_seconds, 0.0);
  EXPECT_GE(emb.stats().mean_landmark_relative_error, 0.0);
  EXPECT_LT(emb.stats().mean_landmark_relative_error, 2.0);
}

// Property: for any dimensionality, embedding never produces NaN/Inf.
class EmbedDimsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EmbedDimsTest, CoordinatesFinite) {
  Graph g = GenerateBarabasiAlbert(150, 3, 11);
  auto lms = LandmarkSet::Select(g, TestLandmarkConfig(6));
  auto emb = GraphEmbedding::Build(lms, TestEmbedConfig(GetParam()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!emb.IsEmbedded(u)) {
      continue;
    }
    for (float c : emb.Coords(u)) {
      EXPECT_TRUE(std::isfinite(c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, EmbedDimsTest, ::testing::Values(1, 2, 5, 10, 20));

}  // namespace
}  // namespace grouting
