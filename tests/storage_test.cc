// Tests for the log-structured KV store, the adjacency wire codec, and the
// partitioned storage tier.

#include <gtest/gtest.h>

#include <vector>

#include "src/graph/generators.h"
#include "src/storage/adjacency.h"
#include "src/storage/kv_store.h"
#include "src/storage/storage_tier.h"

namespace grouting {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> list) { return {list}; }

TEST(KvStoreTest, PutGetRoundTrip) {
  LogStructuredStore store;
  const auto value = Bytes({1, 2, 3, 4});
  store.Put(7, value);
  auto got = store.Get(7);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), 4u);
  EXPECT_EQ((*got)[0], 1);
  EXPECT_EQ((*got)[3], 4);
}

TEST(KvStoreTest, GetMissing) {
  LogStructuredStore store;
  EXPECT_FALSE(store.Get(42).has_value());
  EXPECT_EQ(store.stats().gets, 1u);
}

TEST(KvStoreTest, OverwriteCreatesDeadSpace) {
  LogStructuredStore store;
  store.Put(1, Bytes({1, 1, 1, 1}));
  store.Put(1, Bytes({2, 2}));
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(store.live_bytes(), 2u);
  EXPECT_EQ(store.log_bytes(), 6u);
  EXPECT_LT(store.Utilization(), 1.0);
  auto got = store.Get(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[0], 2);
}

TEST(KvStoreTest, DeleteRemoves) {
  LogStructuredStore store;
  store.Put(1, Bytes({9}));
  EXPECT_TRUE(store.Delete(1));
  EXPECT_FALSE(store.Get(1).has_value());
  EXPECT_FALSE(store.Delete(1));  // second delete is a no-op
  EXPECT_EQ(store.live_bytes(), 0u);
}

TEST(KvStoreTest, CompactReclaimsDeadSpace) {
  LogStructuredStore store(256);
  for (uint64_t k = 0; k < 50; ++k) {
    store.Put(k, Bytes({static_cast<uint8_t>(k), 0, 0, 0, 0, 0, 0, 0}));
  }
  for (uint64_t k = 0; k < 50; k += 2) {
    store.Delete(k);
  }
  const uint64_t live_before = store.live_bytes();
  store.Compact();
  EXPECT_EQ(store.live_bytes(), live_before);
  EXPECT_EQ(store.log_bytes(), live_before);
  EXPECT_DOUBLE_EQ(store.Utilization(), 1.0);
  // Surviving values intact after relocation.
  for (uint64_t k = 1; k < 50; k += 2) {
    auto got = store.Get(k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ((*got)[0], static_cast<uint8_t>(k));
  }
}

TEST(KvStoreTest, ManySegments) {
  LogStructuredStore store(128);  // tiny segments force many
  std::vector<uint8_t> value(100, 0xAB);
  for (uint64_t k = 0; k < 64; ++k) {
    store.Put(k, value);
  }
  EXPECT_EQ(store.entry_count(), 64u);
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(store.Get(k).has_value());
  }
}

TEST(KvStoreTest, EmptyValueAllowed) {
  LogStructuredStore store;
  store.Put(5, {});
  auto got = store.Get(5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 0u);
}

// ----------------------------------------------------------- Adjacency --

TEST(AdjacencyCodecTest, RoundTripFromGraph) {
  GraphBuilder b;
  b.AddNode(0, 42);
  b.AddEdge(0, 1, 7);
  b.AddEdge(2, 0, 9);
  Graph g = b.Build();
  const auto blob = EncodeAdjacency(g, 0);
  EXPECT_EQ(blob.size(), g.AdjacencyBytes(0));
  auto entry = DecodeAdjacency(blob);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->node, 0u);
  EXPECT_EQ(entry->node_label, 42);
  ASSERT_EQ(entry->out.size(), 1u);
  EXPECT_EQ(entry->out[0].dst, 1u);
  EXPECT_EQ(entry->out[0].label, 7);
  ASSERT_EQ(entry->in.size(), 1u);
  EXPECT_EQ(entry->in[0].dst, 2u);
  EXPECT_EQ(entry->in[0].label, 9);
  EXPECT_EQ(entry->SerializedBytes(), blob.size());
}

TEST(AdjacencyCodecTest, RoundTripFromEntry) {
  AdjacencyEntry entry;
  entry.node = 5;
  entry.node_label = 3;
  entry.out = {{10, 1}, {20, 2}};
  entry.in = {{30, 3}};
  const auto blob = EncodeAdjacency(entry);
  auto decoded = DecodeAdjacency(blob);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->out.size(), 2u);
  EXPECT_EQ(decoded->in.size(), 1u);
  EXPECT_EQ(decoded->out[1].dst, 20u);
}

TEST(AdjacencyCodecTest, RejectsTruncated) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  Graph g = b.Build();
  auto blob = EncodeAdjacency(g, 0);
  blob.pop_back();
  EXPECT_EQ(DecodeAdjacency(blob), nullptr);
  EXPECT_EQ(DecodeAdjacency(std::span<const uint8_t>{}), nullptr);
}

TEST(AdjacencyCodecTest, IsolatedNode) {
  GraphBuilder b;
  b.AddNode();
  Graph g = b.Build();
  const auto blob = EncodeAdjacency(g, 0);
  EXPECT_EQ(blob.size(), 16u);
  auto entry = DecodeAdjacency(blob);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->out.empty());
  EXPECT_TRUE(entry->in.empty());
}

// ---------------------------------------------------------- StorageTier --

TEST(StorageTierTest, LoadAndFetchWholeGraph) {
  Graph g = GenerateErdosRenyi(200, 800, 1);
  StorageTier tier(4);
  tier.LoadGraph(g);
  EXPECT_EQ(tier.TotalValues(), g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto entry = tier.Get(u);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->node, u);
    EXPECT_EQ(entry->out.size(), g.OutDegree(u));
    EXPECT_EQ(entry->in.size(), g.InDegree(u));
  }
}

TEST(StorageTierTest, HashPlacementIsStable) {
  Graph g = GenerateErdosRenyi(100, 300, 2);
  StorageTier tier(3);
  tier.LoadGraph(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const uint32_t s = tier.ServerOf(u);
    EXPECT_LT(s, 3u);
    EXPECT_EQ(tier.ServerOf(u), s);  // stable
    EXPECT_NE(tier.server(s).Get(u), nullptr);
  }
}

TEST(StorageTierTest, ExplicitPlacementHonored) {
  Graph g = GenerateErdosRenyi(50, 150, 3);
  StorageTier tier(2);
  PartitionAssignment placement(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    placement[u] = u % 2;
  }
  tier.LoadGraph(g, placement);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(tier.ServerOf(u), u % 2);
  }
}

TEST(StorageTierTest, MissingKeyReturnsNull) {
  Graph g = GenerateErdosRenyi(10, 20, 4);
  StorageTier tier(2);
  tier.LoadGraph(g);
  EXPECT_EQ(tier.Get(9999), nullptr);
}

TEST(StorageTierTest, StatsTrackServing) {
  Graph g = GenerateErdosRenyi(40, 100, 5);
  StorageTier tier(2);
  tier.LoadGraph(g);
  for (NodeId u = 0; u < 40; ++u) {
    tier.Get(u);
  }
  uint64_t served = 0;
  uint64_t bytes = 0;
  for (size_t s = 0; s < 2; ++s) {
    served += tier.server(s).stats().values_served;
    bytes += tier.server(s).stats().bytes_served;
  }
  EXPECT_EQ(served, 40u);
  EXPECT_EQ(bytes, g.TotalAdjacencyBytes());
  EXPECT_EQ(tier.TotalLiveBytes(), g.TotalAdjacencyBytes());
}

TEST(StorageTierTest, DistributionAcrossServers) {
  Graph g = GenerateErdosRenyi(1000, 2000, 6);
  StorageTier tier(4);
  tier.LoadGraph(g);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(tier.server(s).store().entry_count(), 150u);
  }
}

}  // namespace
}  // namespace grouting
