// Unit tests for src/graph: builder/CSR invariants, both edge directions,
// labels, induced subgraphs, and size accounting.

#include <gtest/gtest.h>

#include <set>

#include "src/graph/graph.h"

namespace grouting {
namespace {

Graph Triangle() {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  return b.Build();
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.TotalAdjacencyBytes(), 0u);
}

TEST(GraphBuilderTest, SingleNodeNoEdges) {
  GraphBuilder b;
  b.AddNode();
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.OutDegree(0), 0u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_TRUE(g.OutNeighbors(0).empty());
}

TEST(GraphBuilderTest, AddEdgeGrowsNodeSet) {
  GraphBuilder b;
  b.AddEdge(3, 7);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, TriangleStructure) {
  Graph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.OutDegree(u), 1u);
    EXPECT_EQ(g.InDegree(u), 1u);
    EXPECT_EQ(g.Degree(u), 2u);
  }
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(GraphBuilderTest, InEdgesMirrorOutEdges) {
  GraphBuilder b;
  b.AddEdge(0, 1, 5);
  b.AddEdge(0, 2, 6);
  b.AddEdge(3, 1, 7);
  Graph g = b.Build();
  // Node 1 has in-edges from 0 (label 5) and 3 (label 7).
  auto in = g.InNeighbors(1);
  ASSERT_EQ(in.size(), 2u);
  std::set<NodeId> sources{in[0].dst, in[1].dst};
  EXPECT_TRUE(sources.count(0));
  EXPECT_TRUE(sources.count(3));
  // The in-edge carries the original edge's label.
  for (const Edge& e : in) {
    if (e.dst == 0) {
      EXPECT_EQ(e.label, 5);
    } else {
      EXPECT_EQ(e.label, 7);
    }
  }
}

TEST(GraphBuilderTest, ParallelEdgesDedupedByDefault) {
  GraphBuilder b;
  b.AddEdge(0, 1, 1);
  b.AddEdge(0, 1, 2);
  b.AddEdge(0, 1, 3);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0].label, 1);  // first label kept
}

TEST(GraphBuilderTest, ParallelEdgesKeptWhenRequested) {
  GraphBuilder b;
  b.keep_parallel_edges(true);
  b.AddEdge(0, 1, 1);
  b.AddEdge(0, 1, 2);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, SelfLoopsAllowed) {
  GraphBuilder b;
  b.AddEdge(0, 0);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_EQ(g.InDegree(0), 1u);
}

TEST(GraphBuilderTest, NeighborsSortedByDst) {
  GraphBuilder b;
  b.AddEdge(0, 9);
  b.AddEdge(0, 3);
  b.AddEdge(0, 7);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  auto nbrs = g.OutNeighbors(0);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1].dst, nbrs[i].dst);
  }
}

TEST(GraphBuilderTest, NodeLabels) {
  GraphBuilder b;
  b.AddNode(0, 11);
  b.AddNode(1, 22);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.node_label(0), 11);
  EXPECT_EQ(g.node_label(1), 22);
}

TEST(GraphBuilderTest, SetNodeLabelAfterEdges) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.SetNodeLabel(1, 99);
  Graph g = b.Build();
  EXPECT_EQ(g.node_label(1), 99);
  EXPECT_EQ(g.node_label(0), kNoLabel);
}

TEST(GraphBuilderTest, BuilderReusableAfterBuild) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  Graph g1 = b.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g2 = b.Build();
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(GraphTest, AdjacencyBytesFormula) {
  Graph g = Triangle();
  // Each node: 1 out + 1 in = 16 + 6*2 = 28 bytes.
  EXPECT_EQ(g.AdjacencyBytes(0), 28u);
  EXPECT_EQ(g.TotalAdjacencyBytes(), 3u * 28u);
}

TEST(GraphTest, AdjacencyListFileBytesPositive) {
  Graph g = Triangle();
  EXPECT_GT(g.AdjacencyListFileBytes(), 0u);
  EXPECT_GT(g.MemoryBytes(), 0u);
}

TEST(InducedSubgraphTest, PreservesNodeIds) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  std::vector<uint8_t> keep{1, 1, 0, 1};
  Graph sub = InducedSubgraph(g, keep);
  EXPECT_EQ(sub.num_nodes(), g.num_nodes());  // id space preserved
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_FALSE(sub.HasEdge(1, 2));  // node 2 excluded
  EXPECT_FALSE(sub.HasEdge(2, 3));
  EXPECT_EQ(sub.Degree(2), 0u);
}

TEST(InducedSubgraphTest, KeepAllIsIdentity) {
  GraphBuilder b;
  b.AddEdge(0, 1, 4);
  b.AddEdge(1, 2, 5);
  Graph g = b.Build();
  Graph sub = InducedSubgraph(g, {1, 1, 1});
  EXPECT_EQ(sub.num_edges(), g.num_edges());
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 2));
}

TEST(InducedSubgraphTest, KeepNoneIsEdgeless) {
  Graph g = Triangle();
  Graph sub = InducedSubgraph(g, {0, 0, 0});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 0u);
}

TEST(InducedSubgraphTest, PreservesLabels) {
  GraphBuilder b;
  b.AddNode(0, 42);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  Graph sub = InducedSubgraph(g, {1, 0});
  EXPECT_EQ(sub.node_label(0), 42);
}

}  // namespace
}  // namespace grouting
