// Hot-partition replication (PartitionMap replica stamps + PlanReplication
// + StorageTier::AddReplica/RemoveReplica/ReadServerOf): packed replica-set
// semantics, the promotion/demotion controller, power-of-two-choices read
// fan-out, and — the coherence co-headline — a small model checker that
// enumerates promote/demote/migrate/read interleavings against a single-map
// reference, a threaded replica-churn storm racing async multiget windows,
// and full-engine exactly-once + acceptance-shape runs. Run under TSan and
// ASan/UBSan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "src/core/grouting.h"

namespace grouting {
namespace {

Graph TestGraph(uint32_t nodes = 400, uint64_t seed = 7) {
  return GenerateBarabasiAlbert(nodes, /*edges_per_node=*/4, seed);
}

// ---------------------------------------------------------------------------
// PartitionMap replica stamps
// ---------------------------------------------------------------------------

TEST(ReplicaStampTest, AddRemoveRoundTripsAndBumpsVersions) {
  PartitionMap map(/*num_partitions=*/8, /*num_servers=*/4, /*hash_seed=*/1);
  const uint32_t q = 3;
  EXPECT_EQ(map.replica_count(q), 0u);
  EXPECT_EQ(map.ReplicatedPartitionCount(), 0u);
  const uint32_t owner = map.owner(q);
  const uint32_t r1 = (owner + 1) % 4;
  const uint32_t r2 = (owner + 2) % 4;

  const uint64_t s0 = map.ReplicaStamp(q);
  map.AddReplica(q, r1);
  const uint64_t s1 = map.ReplicaStamp(q);
  EXPECT_NE(s0, s1) << "adding a replica must bump the stamp";
  EXPECT_EQ(map.replica_count(q), 1u);
  EXPECT_EQ(PartitionMap::StampReplica(s1, 0), r1);

  map.AddReplica(q, r2);
  const uint64_t s2 = map.ReplicaStamp(q);
  EXPECT_EQ(map.replica_count(q), 2u);
  EXPECT_EQ(PartitionMap::StampReplica(s2, 0), r1);
  EXPECT_EQ(PartitionMap::StampReplica(s2, 1), r2);
  EXPECT_EQ(map.ReplicatedPartitionCount(), 1u);

  // Removing the FIRST replica compacts the set; the version keeps rising,
  // so an add-remove-add cycle never reproduces an old stamp (ABA).
  map.RemoveReplica(q, r1);
  const uint64_t s3 = map.ReplicaStamp(q);
  EXPECT_EQ(map.replica_count(q), 1u);
  EXPECT_EQ(PartitionMap::StampReplica(s3, 0), r2);
  map.AddReplica(q, r1);
  EXPECT_NE(map.ReplicaStamp(q), s2) << "same set, but a later version";

  const auto snapshot = map.ReplicaSnapshot();
  EXPECT_EQ(snapshot[q], (std::vector<uint32_t>{r2, r1}));
  for (uint32_t other = 0; other < map.num_partitions(); ++other) {
    if (other != q) {
      EXPECT_TRUE(snapshot[other].empty());
    }
  }
}

// ---------------------------------------------------------------------------
// PlanReplication controller
// ---------------------------------------------------------------------------

class ReplicationPlannerTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kServers = 4;
  static constexpr uint32_t kPartitionsPerServer = 4;

  ReplicationPlannerTest()
      : map_(kServers * kPartitionsPerServer, kServers, /*seed=*/3) {}

  RepartitionConfig Config(uint32_t top_k = 2) {
    RepartitionConfig config;
    config.partitions_per_server = kPartitionsPerServer;
    config.replication_top_k = top_k;
    return config;
  }

  // One scorching partition (initial owner 0), everything else lukewarm.
  std::vector<double> OneHotRates(uint32_t hot_q = 0, double hot = 1000.0) {
    std::vector<double> rates(map_.num_partitions(), 1.0);
    rates[hot_q] = hot;
    return rates;
  }

  PartitionMap map_;
};

TEST_F(ReplicationPlannerTest, DisabledConfigPlansNothing) {
  const ReplicationPlan plan =
      PlanReplication(map_, OneHotRates(), Config(/*top_k=*/0));
  EXPECT_TRUE(plan.promote.empty());
  EXPECT_TRUE(plan.demote.empty());
}

TEST_F(ReplicationPlannerTest, PromotesTheHottestPartitionOffItsOwner) {
  const ReplicationPlan plan = PlanReplication(map_, OneHotRates(), Config(1));
  ASSERT_EQ(plan.promote.size(), 1u);
  EXPECT_EQ(plan.promote[0].partition, 0u);
  EXPECT_NE(plan.promote[0].server, map_.owner(0)) << "replica != primary";
  EXPECT_TRUE(plan.demote.empty());
}

TEST_F(ReplicationPlannerTest, RespectsTopKAndMaxReplicas) {
  std::vector<double> rates(map_.num_partitions(), 1.0);
  rates[0] = 900.0;
  rates[1] = 800.0;
  rates[2] = 700.0;
  EXPECT_EQ(PlanReplication(map_, rates, Config(2)).promote.size(), 2u);

  // A partition already at the replica cap is skipped, not re-promoted.
  RepartitionConfig capped = Config(4);
  capped.max_replicas_per_partition = 1;
  map_.AddReplica(0, (map_.owner(0) + 1) % kServers);
  const ReplicationPlan plan = PlanReplication(map_, rates, capped);
  for (const ReplicaChange& p : plan.promote) {
    EXPECT_NE(p.partition, 0u) << "partition 0 is at max_replicas already";
  }
}

TEST_F(ReplicationPlannerTest, NoiseFloorSuppressesTinyWorkloads) {
  // Hottest partition at 2 recorded accesses: below noise_sigmas (3), so a
  // near-idle cluster never replicates sampling jitter.
  std::vector<double> rates(map_.num_partitions(), 0.0);
  rates[5] = 2.0;
  EXPECT_TRUE(PlanReplication(map_, rates, Config(2)).promote.empty());
}

TEST_F(ReplicationPlannerTest, DemotesColdReplicatedPartitions) {
  const uint32_t q = 0;
  const uint32_t replica = (map_.owner(q) + 1) % kServers;
  map_.AddReplica(q, replica);

  // q has gone stone cold while partition 2 carries all the heat.
  std::vector<double> rates(map_.num_partitions(), 1.0);
  rates[q] = 0.0;
  rates[2] = 1000.0;
  const ReplicationPlan plan = PlanReplication(map_, rates, Config(1));
  ASSERT_EQ(plan.demote.size(), 1u);
  EXPECT_EQ(plan.demote[0].partition, q);
  EXPECT_EQ(plan.demote[0].server, replica);

  // A still-hot replicated partition is NOT demoted.
  rates[q] = 1000.0;
  EXPECT_TRUE(PlanReplication(map_, rates, Config(1)).demote.empty());
}

TEST_F(ReplicationPlannerTest, IdleClusterReclaimsAllReplicas) {
  map_.AddReplica(0, (map_.owner(0) + 1) % kServers);
  map_.AddReplica(5, (map_.owner(5) + 1) % kServers);
  const std::vector<double> idle(map_.num_partitions(), 0.0);
  const ReplicationPlan plan = PlanReplication(map_, idle, Config(2));
  EXPECT_EQ(plan.demote.size(), 2u);
  EXPECT_TRUE(plan.promote.empty());
}

TEST_F(ReplicationPlannerTest, DoesNotMutateTheMap) {
  map_.AddReplica(0, (map_.owner(0) + 1) % kServers);
  const auto owners = map_.OwnerSnapshot();
  const auto replicas = map_.ReplicaSnapshot();
  PlanReplication(map_, OneHotRates(), Config(2));
  EXPECT_EQ(map_.OwnerSnapshot(), owners);
  EXPECT_EQ(map_.ReplicaSnapshot(), replicas);
}

TEST_F(ReplicationPlannerTest, MigrationPlannerSkipsReplicatedVictims) {
  // Pile heat on server 0 across its partitions, then replicate one of the
  // hot partitions: PlanRepartition must only ever move the others.
  std::vector<double> rates(map_.num_partitions(), 1.0);
  for (uint32_t q = 0; q < map_.num_partitions(); q += kServers) {
    rates[q] = 250.0;
  }
  map_.AddReplica(0, 1);

  RepartitionConfig config;
  config.threshold = 1.2;
  config.migration_cap = 8;
  config.partitions_per_server = kPartitionsPerServer;
  const auto plan = PlanRepartition(map_, rates, config);
  ASSERT_FALSE(plan.empty());
  for (const PartitionMigration& mig : plan) {
    EXPECT_NE(mig.partition, 0u) << "replicated partitions are not victims";
  }
}

// ---------------------------------------------------------------------------
// StorageTier replica executors + p2c read routing
// ---------------------------------------------------------------------------

TEST(StorageTierReplicationTest, AddReplicaCopiesKeysAndFansReads) {
  const Graph g = TestGraph();
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.EnableReplication();
  tier.LoadGraph(g);
  const PartitionMap& map = *tier.partition_map();
  const uint32_t q = map.PartitionOf(0);
  const uint32_t owner = map.owner(q);
  const uint32_t replica = (owner + 1) % 4;

  const auto result = tier.AddReplica(q, replica);
  EXPECT_EQ(result.kind, StorageTier::MigrationResult::Kind::kPromote);
  EXPECT_EQ(result.from, owner);
  EXPECT_EQ(result.to, replica);
  EXPECT_GT(result.keys_moved, 0u);
  EXPECT_GT(result.bytes_moved, 0u);

  uint64_t keys = 0;
  bool replica_hit = false;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (map.PartitionOf(u) != q) {
      continue;
    }
    ++keys;
    // Both copies live; the owner still resolves ServerOf (primary routing).
    ASSERT_TRUE(tier.server(owner).store().Contains(u));
    ASSERT_TRUE(tier.server(replica).store().Contains(u));
    ASSERT_EQ(tier.ServerOf(u), owner);
    const uint32_t read_server = tier.ReadServerOf(u);
    ASSERT_TRUE(read_server == owner || read_server == replica)
        << "read routed outside the holder set for key " << u;
    replica_hit |= read_server == replica;
    ASSERT_NE(tier.Get(u), nullptr);
  }
  EXPECT_EQ(keys, result.keys_moved);
  EXPECT_TRUE(replica_hit) << "p2c never used the replica across " << keys
                           << " keys";
  EXPECT_GT(tier.replica_reads(), 0u);
}

TEST(StorageTierReplicationTest, RemoveReplicaRestoresPrimaryOnlyLayout) {
  const Graph g = TestGraph();
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.EnableReplication();
  tier.LoadGraph(g);
  const PartitionMap& map = *tier.partition_map();
  const uint32_t q = map.PartitionOf(0);
  const uint32_t owner = map.owner(q);
  const uint32_t replica = (owner + 2) % 4;
  const uint64_t replica_entries_before = tier.server(replica).store().entry_count();

  tier.AddReplica(q, replica);
  const auto result = tier.RemoveReplica(q, replica);
  EXPECT_EQ(result.kind, StorageTier::MigrationResult::Kind::kDemote);
  EXPECT_EQ(result.from, replica);
  EXPECT_EQ(result.to, owner);
  EXPECT_EQ(map.replica_count(q), 0u);
  EXPECT_EQ(tier.server(replica).store().entry_count(), replica_entries_before);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (map.PartitionOf(u) != q) {
      continue;
    }
    ASSERT_TRUE(tier.server(owner).store().Contains(u));
    ASSERT_EQ(tier.ReadServerOf(u), owner);
    ASSERT_NE(tier.Get(u), nullptr);
  }
}

TEST(StorageTierReplicationTest, ReadServerOfIsServerOfWhenReplicationOff) {
  const Graph g = TestGraph();
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.LoadGraph(g);
  EXPECT_FALSE(tier.replication_enabled());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(tier.ReadServerOf(u), tier.ServerOf(u)) << "node " << u;
  }
  EXPECT_EQ(tier.replica_reads(), 0u);
}

// A demotion must wait for multiget handles opened against the replica:
// flip-out first, then drain, then delete — so the pre-flip batch below
// still finds every key.
TEST(StorageTierReplicationTest, DemotionDrainHoldsDeleteForInflightHandles) {
  const Graph g = TestGraph();
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.EnableReplication();
  tier.LoadGraph(g);
  const PartitionMap& map = *tier.partition_map();
  const uint32_t q = map.PartitionOf(0);
  const uint32_t owner = map.owner(q);
  const uint32_t replica = (owner + 1) % 4;
  tier.AddReplica(q, replica);

  std::vector<NodeId> keys;
  for (NodeId u = 0; u < g.num_nodes() && keys.size() < 8; ++u) {
    if (map.PartitionOf(u) == q) {
      keys.push_back(u);
    }
  }
  ASSERT_FALSE(keys.empty());

  auto handle = tier.StartMultiGet(replica, keys);
  std::atomic<bool> demoted{false};
  std::thread demoter([&] {
    tier.RemoveReplica(q, replica);
    demoted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(demoted.load(std::memory_order_acquire));

  handle->Execute();
  demoter.join();
  const auto& values = handle->Wait();
  ASSERT_EQ(values.size(), keys.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NE(values[i], nullptr) << "key " << keys[i] << " lost in demotion";
  }
}

// The post-flip race: a batch opened against the replica AFTER the demotion
// deleted its copies misses, and heals through the primary (which always
// holds every live key of its partition) via ResolveMigratedMisses.
TEST(StorageTierReplicationTest, ResolveMigratedMissesHealsDemotionRaces) {
  const Graph g = TestGraph();
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.EnableReplication();
  tier.LoadGraph(g);
  const PartitionMap& map = *tier.partition_map();
  const uint32_t q = map.PartitionOf(0);
  const uint32_t owner = map.owner(q);
  const uint32_t replica = (owner + 1) % 4;

  std::vector<NodeId> keys;
  for (NodeId u = 0; u < g.num_nodes() && keys.size() < 6; ++u) {
    if (map.PartitionOf(u) == q) {
      keys.push_back(u);
    }
  }
  ASSERT_FALSE(keys.empty());
  tier.AddReplica(q, replica);
  tier.RemoveReplica(q, replica);

  // Stale read: the batch still targets the demoted replica.
  auto handle = tier.StartMultiGet(replica, keys);
  handle->Execute();
  std::vector<AdjacencyPtr> values = handle->Wait();
  for (const auto& v : values) {
    ASSERT_EQ(v, nullptr) << "the replica copies should be gone";
  }
  const size_t resolved = ResolveMigratedMisses(&tier, keys, &values);
  EXPECT_EQ(resolved, keys.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NE(values[i], nullptr) << "key " << keys[i];
  }
}

// ---------------------------------------------------------------------------
// Model checker: enumerated promote/demote/migrate/read interleavings
// against a single-map reference
// ---------------------------------------------------------------------------

// Reference model: one partition is exactly {owner} ∪ replicas, nothing
// else. The checker applies every length-3 sequence over the full op
// alphabet (two tracked partitions x promote/demote/migrate to each server)
// cumulatively to one tier, validating after EVERY op that the live map,
// the physical stores, Get, and ReadServerOf all agree with the model.
TEST(ReplicationModelCheckTest, EnumeratedOpSequencesMatchSingleMapReference) {
  const Graph g = TestGraph(/*nodes=*/360, /*seed=*/11);
  constexpr uint32_t kServers = 3;
  StorageTier tier(kServers);
  tier.EnableRepartitioning(/*partitions_per_server=*/8);
  tier.EnableReplication();
  tier.LoadGraph(g);
  const PartitionMap& map = *tier.partition_map();

  const uint32_t qa = map.PartitionOf(0);
  uint32_t qb = qa;
  for (NodeId u = 1; qb == qa; ++u) {
    qb = map.PartitionOf(u);
  }
  const std::array<uint32_t, 2> tracked = {qa, qb};

  struct RefState {
    uint32_t owner;
    std::vector<uint32_t> replicas;
    bool Holds(uint32_t s) const {
      return s == owner || std::find(replicas.begin(), replicas.end(), s) !=
                               replicas.end();
    }
  };
  std::array<RefState, 2> model = {RefState{map.owner(qa), {}},
                                   RefState{map.owner(qb), {}}};

  std::array<std::vector<NodeId>, 2> keys;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (size_t t = 0; t < tracked.size(); ++t) {
      if (map.PartitionOf(u) == tracked[t]) {
        keys[t].push_back(u);
      }
    }
  }
  ASSERT_FALSE(keys[0].empty());
  ASSERT_FALSE(keys[1].empty());

  enum class OpKind { kPromote, kDemote, kMigrate };
  struct Op {
    OpKind kind;
    size_t t;  // tracked-partition index
    uint32_t server;
  };
  std::vector<Op> alphabet;
  for (size_t t = 0; t < tracked.size(); ++t) {
    for (uint32_t s = 0; s < kServers; ++s) {
      alphabet.push_back({OpKind::kPromote, t, s});
      alphabet.push_back({OpKind::kDemote, t, s});
      alphabet.push_back({OpKind::kMigrate, t, s});
    }
  }

  const auto apply = [&](const Op& op) {
    RefState& ref = model[op.t];
    const uint32_t q = tracked[op.t];
    switch (op.kind) {
      case OpKind::kPromote:
        if (ref.Holds(op.server) ||
            ref.replicas.size() >= PartitionMap::kMaxReplicas) {
          return;  // illegal in this state; enumeration skips it
        }
        tier.AddReplica(q, op.server);
        ref.replicas.push_back(op.server);
        return;
      case OpKind::kDemote: {
        auto it = std::find(ref.replicas.begin(), ref.replicas.end(), op.server);
        if (it == ref.replicas.end()) {
          return;
        }
        tier.RemoveReplica(q, op.server);
        ref.replicas.erase(it);
        return;
      }
      case OpKind::kMigrate:
        if (op.server == ref.owner) {
          return;  // MigratePartition treats from == to as a no-op
        }
        // A migration collapses the holder set to exactly {server}: the
        // tier demotes any replicas first, then moves the single copy.
        tier.MigratePartition(q, op.server);
        ref.owner = op.server;
        ref.replicas.clear();
        return;
    }
  };

  uint64_t verified_ops = 0;
  const auto verify = [&]() {
    for (size_t t = 0; t < tracked.size(); ++t) {
      const RefState& ref = model[t];
      const uint32_t q = tracked[t];
      ASSERT_EQ(map.owner(q), ref.owner);
      std::vector<uint32_t> live = map.ReplicaSnapshot()[q];
      std::vector<uint32_t> want = ref.replicas;
      std::sort(live.begin(), live.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(live, want);
      for (const NodeId u : keys[t]) {
        for (uint32_t s = 0; s < kServers; ++s) {
          ASSERT_EQ(tier.server(s).store().Contains(u), ref.Holds(s))
              << "key " << u << " on server " << s;
        }
        const uint32_t read_server = tier.ReadServerOf(u);
        ASSERT_TRUE(ref.Holds(read_server))
            << "read of " << u << " routed to non-holder " << read_server;
        const AdjacencyPtr v = tier.Get(u);
        ASSERT_NE(v, nullptr);
        ASSERT_EQ(v->out.size(), g.OutDegree(u)) << "wrong value for " << u;
      }
    }
    ++verified_ops;
  };

  // Every length-3 op sequence, applied cumulatively: ~6k schedules whose
  // start states are themselves products of all earlier schedules, covering
  // promote-on-promoted, demote-mid-fanout, migrate-over-replicas, ...
  for (const Op& a : alphabet) {
    for (const Op& b : alphabet) {
      for (const Op& c : alphabet) {
        for (const Op& op : {a, b, c}) {
          apply(op);
          verify();
          if (::testing::Test::HasFatalFailure()) {
            return;
          }
        }
      }
    }
  }
  EXPECT_EQ(verified_ops, 3u * alphabet.size() * alphabet.size() * alphabet.size());
}

// ---------------------------------------------------------------------------
// Threaded replica-churn storm (run under TSan in CI)
// ---------------------------------------------------------------------------

// FetchBatch slams a fixed key set through CachedStorageSource (async
// window 2) while a churn thread promotes, demotes and migrates the keys'
// partitions in a loop. Whatever the interleaving — batch routed to a
// replica that is torn down before service, or formed mid-promotion —
// every batch must come back complete.
TEST(ReplicationStormTest, ReplicaChurnNeverLosesAValue) {
  const Graph g = TestGraph(/*nodes=*/600);
  StorageTier tier(4);
  tier.EnableRepartitioning(8);
  tier.EnableReplication();
  tier.LoadGraph(g);
  const PartitionMap& map = *tier.partition_map();

  std::vector<NodeId> keys;
  for (NodeId u = 0; u < 64; ++u) {
    keys.push_back(u);
  }
  const uint32_t p0 = map.PartitionOf(keys[0]);
  const uint32_t p1 = map.PartitionOf(keys[1]);

  // The churner is the only map mutator (the planner-thread discipline), so
  // it may consult the map to keep every op legal.
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    uint32_t round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      for (const uint32_t q : {p0, p1}) {
        for (uint32_t s = 0; s < 4; ++s) {
          if (s != map.owner(q) && map.replica_count(q) < PartitionMap::kMaxReplicas) {
            tier.AddReplica(q, s);
          }
        }
        while (map.replica_count(q) > 0) {
          tier.RemoveReplica(
              q, PartitionMap::StampReplica(map.ReplicaStamp(q), 0));
        }
      }
      tier.MigratePartition(p0, round % 4);
      tier.MigratePartition(p1, (round + 2) % 4);
      ++round;
    }
  });

  CachedStorageSource source(&tier, /*cache=*/nullptr, /*max_inflight_batches=*/2);
  for (int iter = 0; iter < 300; ++iter) {
    const auto values = source.FetchBatch(keys);
    ASSERT_EQ(values.size(), keys.size());
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_NE(values[i], nullptr)
          << "iteration " << iter << " lost key " << keys[i];
    }
  }
  stop.store(true, std::memory_order_release);
  churner.join();
}

// ---------------------------------------------------------------------------
// Full-engine runs
// ---------------------------------------------------------------------------

// End-to-end exactly-once: a threaded run with an async multiget window and
// aggressive replication + migration churn racing it must answer every
// query once, identical to a deterministic static-placement sim reference.
TEST(ReplicationEngineTest, ThreadedAsyncRunIsExactlyOnceUnderReplication) {
  ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.1, /*seed=*/23);
  const auto queries = env.SkewedWorkload(/*sessions=*/32, /*queries=*/400,
                                          /*zipf_s=*/1.4);

  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kHash;
  opts.processors = 3;
  opts.storage_servers = 4;
  opts.cache_bytes = 64 << 10;
  opts.max_inflight_batches = 4;
  opts.repartition_threshold = 1.05;
  opts.repartition_cap = 8;
  opts.partitions_per_server = 8;
  opts.replication_top_k = 4;
  opts.replica_demote_threshold = 0.4;  // churn: demotions fire mid-run too
  opts.max_replicas_per_partition = 2;
  opts.gossip_period_us = 50.0;
  opts.arrival_gap_us = 2.0;

  RunOptions ref_opts = opts;
  ref_opts.repartition_threshold = 0.0;
  ref_opts.replication_top_k = 0;
  ref_opts.max_inflight_batches = 1;

  const Graph& g = env.graph();
  auto threaded = MakeClusterEngine(EngineKind::kThreaded, g,
                                    env.MakeClusterConfig(opts), env.MakeStrategy(opts));
  auto reference =
      MakeClusterEngine(EngineKind::kSimulated, g, env.MakeClusterConfig(ref_opts),
                        env.MakeStrategy(ref_opts));
  const ClusterMetrics m = threaded->Run(queries);
  reference->Run(queries);

  ASSERT_EQ(m.queries, queries.size());

  auto sorted = [](const ClusterEngine& e) {
    std::vector<AnsweredQuery> answers = e.answers();
    std::sort(answers.begin(), answers.end(),
              [](const AnsweredQuery& a, const AnsweredQuery& b) {
                return a.query_id < b.query_id;
              });
    return answers;
  };
  const auto got = sorted(*threaded);
  const auto want = sorted(*reference);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].query_id, want[i].query_id) << "answer " << i;
    EXPECT_EQ(got[i].result.aggregate, want[i].result.aggregate)
        << "query " << got[i].query_id;
    EXPECT_EQ(got[i].result.walk_end, want[i].result.walk_end)
        << "query " << got[i].query_id;
    EXPECT_EQ(got[i].result.reachable, want[i].result.reachable)
        << "query " << got[i].query_id;
    EXPECT_EQ(got[i].result.distance, want[i].result.distance)
        << "query " << got[i].query_id;
  }
}

// The acceptance shape, pinned deterministically on the simulated engine:
// at zipf 1.4 a few sessions re-read one fixed hot key set forever, and
// migration alone plateaus — relocating a hot partition only moves its
// heat, it cannot split it. Replication must strictly improve both the
// per-server load imbalance and the p99 response. The no-cache scheme
// keeps the hot traffic on the storage tier (a processor cache would
// absorb exactly the keys replication spreads).
TEST(ReplicationEngineTest, SimReplicationBeatsMigrationOnlyAtHighSkew) {
  ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.1, /*seed=*/31);
  const auto queries = env.SkewedWorkload(/*sessions=*/4, /*queries=*/4800,
                                          /*zipf_s=*/1.4, /*h=*/1);

  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kNoCache;
  opts.processors = 8;
  opts.storage_servers = 4;
  opts.max_inflight_batches = 2;
  opts.repartition_threshold = 1.15;
  opts.repartition_cap = 4;
  opts.partitions_per_server = 8;
  opts.gossip_period_us = 100.0;
  opts.arrival_gap_us = 0.5;

  RunOptions rep = opts;
  rep.replication_top_k = 4;
  rep.max_replicas_per_partition = 3;
  rep.replica_demote_threshold = 0.05;

  const ClusterMetrics mig_m = env.Run(EngineKind::kSimulated, opts, queries);
  const ClusterMetrics rep_m = env.Run(EngineKind::kSimulated, rep, queries);

  EXPECT_EQ(mig_m.partitions_replicated, 0u);
  EXPECT_EQ(mig_m.replica_reads, 0u);
  EXPECT_GT(rep_m.partitions_replicated, 0u);
  EXPECT_GT(rep_m.replica_reads, 0u);
  EXPECT_LT(rep_m.storage_load_imbalance, mig_m.storage_load_imbalance);
  EXPECT_LT(rep_m.p99_response_ms, mig_m.p99_response_ms);
}

// The same shape on the threaded engine. Wall-clock percentiles flake on
// shared CI runners, so the threaded leg pins the deterministic-ish counts:
// replicas actually served reads and the measured load spread narrowed.
TEST(ReplicationEngineTest, ThreadedReplicationLowersImbalanceAtHighSkew) {
  ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.1, /*seed=*/31);
  const auto queries = env.SkewedWorkload(/*sessions=*/4, /*queries=*/4800,
                                          /*zipf_s=*/1.4, /*h=*/1);

  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kNoCache;
  opts.processors = 8;
  opts.storage_servers = 4;
  opts.max_inflight_batches = 2;
  opts.repartition_threshold = 1.15;
  opts.repartition_cap = 4;
  opts.partitions_per_server = 8;
  opts.gossip_period_us = 100.0;
  opts.arrival_gap_us = 0.5;

  RunOptions rep = opts;
  rep.replication_top_k = 4;
  rep.max_replicas_per_partition = 3;
  rep.replica_demote_threshold = 0.05;

  const ClusterMetrics mig_m = env.Run(EngineKind::kThreaded, opts, queries);
  const ClusterMetrics rep_m = env.Run(EngineKind::kThreaded, rep, queries);

  EXPECT_EQ(mig_m.replica_reads, 0u);
  EXPECT_GT(rep_m.partitions_replicated, 0u);
  EXPECT_GT(rep_m.replica_reads, 0u);
  EXPECT_LT(rep_m.storage_load_imbalance, mig_m.storage_load_imbalance);
}

// With replication configured but the workload uniform, the promotion floor
// (hot_fraction x average + noise sigmas) keeps every partition primary-
// only: the run is metric-identical to migration-only, so merely turning
// the knobs on costs nothing until real skew shows up.
TEST(ReplicationEngineTest, SimReplicationIsInertWithoutSkew) {
  ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.1, /*seed=*/17);
  const auto queries = env.SkewedWorkload(/*sessions=*/24, /*queries=*/400,
                                          /*zipf_s=*/0.0);

  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kHash;
  opts.processors = 3;
  opts.storage_servers = 4;
  opts.cache_bytes = 64 << 10;
  opts.repartition_threshold = 1.5;
  opts.partitions_per_server = 8;
  opts.gossip_period_us = 100.0;
  opts.arrival_gap_us = 5.0;

  RunOptions rep = opts;
  rep.replication_top_k = 2;

  const ClusterMetrics mig_m = env.Run(EngineKind::kSimulated, opts, queries);
  const ClusterMetrics rep_m = env.Run(EngineKind::kSimulated, rep, queries);

  EXPECT_EQ(rep_m.partitions_replicated, 0u);
  EXPECT_EQ(rep_m.replica_reads, 0u);
  EXPECT_EQ(rep_m.replica_demotions, 0u);
  EXPECT_EQ(rep_m.queries, mig_m.queries);
  EXPECT_EQ(rep_m.mean_response_ms, mig_m.mean_response_ms);
  EXPECT_EQ(rep_m.p99_response_ms, mig_m.p99_response_ms);
  EXPECT_EQ(rep_m.cache_hits, mig_m.cache_hits);
  EXPECT_EQ(rep_m.storage_batches, mig_m.storage_batches);
  EXPECT_EQ(rep_m.bytes_from_storage, mig_m.bytes_from_storage);
  EXPECT_EQ(rep_m.storage_load_imbalance, mig_m.storage_load_imbalance);
}

}  // namespace
}  // namespace grouting
