// Multi-tenant graph federation: per-tenant admission control at the
// splitter, the open-loop Poisson workload generator, and tenant isolation
// end-to-end on both engines.
//
// The contracts under test:
//   * TenantAdmission is a per-tenant token bucket over schedule time —
//     in-quota arrivals are NEVER refused, over-quota arrivals are shed and
//     counted, tenants cannot consume each other's tokens,
//   * GenerateOpenLoopWorkload is deterministic in its config and emits a
//     strictly increasing merged arrival schedule,
//   * both engines compute the same admission plan from the same schedule
//     and answer every admitted query exactly once,
//   * a tenant's answers are invariant to which keyspace slice it occupies
//     and to another tenant's Zipf storm, and with quotas on the victim's
//     response tail stays bounded.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/grouting.h"
#include "src/frontend/admission.h"

namespace grouting {
namespace {

// --- admission control (token bucket) ----------------------------------

TEST(AdmissionTest, SpacedWithinQuotaNeverShed) {
  AdmissionConfig config;
  config.num_tenants = 1;
  config.quota_qps = 1000.0;  // one token per 1000 µs
  config.burst = 1.0;
  TenantAdmission admission(config);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(admission.Admit(0, 1000.0 * i + 0.5));
  }
  EXPECT_EQ(admission.admitted(0), 200u);
  EXPECT_EQ(admission.shed(0), 0u);
}

TEST(AdmissionTest, BurstAbsorbedThenShed) {
  AdmissionConfig config;
  config.num_tenants = 1;
  config.quota_qps = 1000.0;
  config.burst = 4.0;
  TenantAdmission admission(config);
  uint64_t admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (admission.Admit(0, 0.0)) {
      ++admitted;
    }
  }
  // The bucket starts full: exactly `burst` simultaneous arrivals pass.
  EXPECT_EQ(admitted, 4u);
  EXPECT_EQ(admission.shed(0), 6u);
  // Tokens refill with schedule time: 2000 µs buys two more admits.
  EXPECT_TRUE(admission.Admit(0, 2000.0));
  EXPECT_TRUE(admission.Admit(0, 2000.0));
  EXPECT_FALSE(admission.Admit(0, 2000.0));
}

TEST(AdmissionTest, TenantsAreIndependent) {
  AdmissionConfig config;
  config.num_tenants = 2;
  config.quota_qps = 1000.0;
  config.burst = 2.0;
  TenantAdmission admission(config);
  // Tenant 0 storms at t=0 and exhausts its own bucket...
  for (int i = 0; i < 50; ++i) {
    admission.Admit(0, 0.0);
  }
  EXPECT_EQ(admission.admitted(0), 2u);
  EXPECT_EQ(admission.shed(0), 48u);
  // ...while tenant 1's spaced arrivals are untouched by the storm.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(admission.Admit(1, 1000.0 * i));
  }
  EXPECT_EQ(admission.shed(1), 0u);
}

TEST(AdmissionTest, DisabledQuotaAdmitsEverything) {
  AdmissionConfig config;
  config.num_tenants = 1;
  config.quota_qps = 0.0;  // <= 0 disables
  TenantAdmission admission(config);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(admission.Admit(0, 0.0));
  }
  EXPECT_EQ(admission.admitted(0), 1000u);
  EXPECT_EQ(admission.shed(0), 0u);
}

// --- open-loop generator ------------------------------------------------

TEST(OpenLoopTest, GenerationIsDeterministic) {
  const Graph g = MakeDataset(DatasetId::kWebGraphLike, /*scale=*/0.05, /*seed=*/7);
  OpenLoopConfig config;
  config.num_tenants = 4;
  config.num_arrivals = 2000;
  config.seed = 99;
  const auto a = GenerateOpenLoopWorkload(g, config);
  const auto b = GenerateOpenLoopWorkload(g, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrive_us, b[i].arrive_us) << "arrival " << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << "arrival " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "arrival " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "arrival " << i;
    EXPECT_EQ(a[i].id, b[i].id) << "arrival " << i;
  }
}

TEST(OpenLoopTest, ScheduleIsStrictlyIncreasingAndInRange) {
  const Graph g = MakeDataset(DatasetId::kWebGraphLike, /*scale=*/0.05, /*seed=*/7);
  OpenLoopConfig config;
  config.num_tenants = 4;
  config.num_arrivals = 4000;
  config.sessions_per_tenant = 1000000;  // millions of lightweight sessions
  const auto queries = GenerateOpenLoopWorkload(g, config);
  ASSERT_EQ(queries.size(), config.num_arrivals);
  double prev = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_GT(queries[i].arrive_us, prev) << "arrival " << i;
    prev = queries[i].arrive_us;
    EXPECT_LT(queries[i].tenant, config.num_tenants) << "arrival " << i;
    EXPECT_LT(queries[i].node, g.num_nodes()) << "arrival " << i;
    EXPECT_EQ(queries[i].id, i);
  }
  // Every tenant shows up in a 4000-arrival stream at the default skew.
  std::vector<uint64_t> per_tenant(config.num_tenants, 0);
  for (const Query& q : queries) {
    ++per_tenant[q.tenant];
  }
  for (uint32_t t = 0; t < config.num_tenants; ++t) {
    EXPECT_GT(per_tenant[t], 0u) << "tenant " << t;
  }
}

TEST(OpenLoopTest, TenantRateSharesAreNormalizedAndMonotone) {
  for (const double skew : {0.0, 0.6, 1.2}) {
    const auto shares = TenantRateShares(8, skew);
    ASSERT_EQ(shares.size(), 8u);
    double sum = 0.0;
    for (size_t i = 0; i < shares.size(); ++i) {
      EXPECT_GT(shares[i], 0.0);
      if (i > 0) {
        EXPECT_LE(shares[i], shares[i - 1]) << "skew " << skew;
      }
      sum += shares[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "skew " << skew;
  }
  // skew 0 is uniform.
  for (const double share : TenantRateShares(4, 0.0)) {
    EXPECT_NEAR(share, 0.25, 1e-9);
  }
}

// --- end-to-end federation ----------------------------------------------

class MultiTenantTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new ExperimentEnv(DatasetId::kWebGraphLike, /*scale=*/0.1, /*seed=*/23);
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  static RunOptions SmallRun(uint32_t tenants) {
    RunOptions opts;
    opts.scheme = RoutingSchemeKind::kEmbed;
    opts.processors = 3;
    opts.storage_servers = 2;
    opts.num_landmarks = 24;
    opts.min_separation = 2;
    opts.dimensions = 6;
    opts.num_tenants = tenants;
    opts.open_loop = true;
    return opts;
  }

  static std::vector<Query> OpenLoop(uint32_t tenants, size_t arrivals,
                                     double rate_qps, double skew, uint64_t seed) {
    OpenLoopConfig config;
    config.num_tenants = tenants;
    config.num_arrivals = arrivals;
    config.arrival_rate_qps = rate_qps;
    config.tenant_skew = skew;
    config.seed = seed;
    return GenerateOpenLoopWorkload(env_->graph(), config);
  }

  static std::vector<AnsweredQuery> SortedAnswers(const ClusterEngine& engine) {
    std::vector<AnsweredQuery> answers = engine.answers();
    std::sort(answers.begin(), answers.end(),
              [](const AnsweredQuery& a, const AnsweredQuery& b) {
                return a.query_id < b.query_id;
              });
    return answers;
  }

  static void ExpectSameAnswers(const std::vector<AnsweredQuery>& a,
                                const std::vector<AnsweredQuery>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].query_id, b[i].query_id) << "answer " << i;
      EXPECT_EQ(a[i].result.aggregate, b[i].result.aggregate)
          << "query " << a[i].query_id;
      EXPECT_EQ(a[i].result.walk_end, b[i].result.walk_end)
          << "query " << a[i].query_id;
      EXPECT_EQ(a[i].result.reachable, b[i].result.reachable)
          << "query " << a[i].query_id;
      EXPECT_EQ(a[i].result.distance, b[i].result.distance)
          << "query " << a[i].query_id;
    }
  }

  static ExperimentEnv* env_;
};

ExperimentEnv* MultiTenantTest::env_ = nullptr;

TEST_F(MultiTenantTest, CrossEngineParityWithQuotas) {
  // Both engines must compute the SAME admission plan from the schedule and
  // answer every admitted query exactly once — shedding included.
  const auto queries = OpenLoop(/*tenants=*/4, /*arrivals=*/3000,
                                /*rate_qps=*/50000.0, /*skew=*/1.0, /*seed=*/5);
  RunOptions opts = SmallRun(4);
  opts.tenant_quota_qps = 18000.0;
  opts.tenant_quota_burst = 64.0;
  const ClusterConfig config = env_->MakeClusterConfig(opts);

  auto sim = MakeClusterEngine(EngineKind::kSimulated, env_->graph(), config,
                               env_->MakeStrategy(opts));
  auto threaded = MakeClusterEngine(EngineKind::kThreaded, env_->graph(), config,
                                    env_->MakeStrategy(opts));
  const ClusterMetrics sim_m = sim->Run(queries);
  const ClusterMetrics thr_m = threaded->Run(queries);

  // The Zipf-heavy tenant 0 is over quota; shedding happened and balanced.
  EXPECT_GT(sim_m.queries_shed, 0u);
  EXPECT_EQ(sim_m.queries + sim_m.queries_shed, queries.size());
  EXPECT_EQ(sim_m.queries, thr_m.queries);
  EXPECT_EQ(sim_m.queries_shed, thr_m.queries_shed);

  ASSERT_EQ(sim_m.per_tenant.size(), 4u);
  ASSERT_EQ(thr_m.per_tenant.size(), 4u);
  for (uint32_t t = 0; t < 4; ++t) {
    EXPECT_EQ(sim_m.per_tenant[t].queries, thr_m.per_tenant[t].queries)
        << "tenant " << t;
    EXPECT_EQ(sim_m.per_tenant[t].shed, thr_m.per_tenant[t].shed) << "tenant " << t;
    if (t > 0) {
      // Only the heavy tenant exceeds its quota at this schedule.
      EXPECT_EQ(sim_m.per_tenant[t].shed, 0u) << "tenant " << t;
    }
  }
  ExpectSameAnswers(SortedAnswers(*sim), SortedAnswers(*threaded));
}

TEST_F(MultiTenantTest, AnswersInvariantToKeyspaceSlice) {
  // The same queries must answer identically whether they run as tenant 0
  // of a single-tenant cluster or as tenant 2 of a federated one — the
  // keyspace offset relocates storage keys, never results. The federated
  // answers must also match direct graph execution (the striped blobs
  // decode to the right adjacency, not just consistently-wrong ones).
  const auto base = OpenLoop(/*tenants=*/1, /*arrivals=*/600,
                             /*rate_qps=*/50000.0, /*skew=*/1.0, /*seed=*/11);
  std::vector<Query> as_tenant2 = base;
  for (Query& q : as_tenant2) {
    q.tenant = 2;
  }

  auto single = MakeClusterEngine(EngineKind::kSimulated, env_->graph(),
                                  env_->MakeClusterConfig(SmallRun(1)),
                                  env_->MakeStrategy(SmallRun(1)));
  auto federated = MakeClusterEngine(EngineKind::kSimulated, env_->graph(),
                                     env_->MakeClusterConfig(SmallRun(4)),
                                     env_->MakeStrategy(SmallRun(4)));
  single->Run(base);
  federated->Run(as_tenant2);
  const auto single_answers = SortedAnswers(*single);
  const auto federated_answers = SortedAnswers(*federated);
  ExpectSameAnswers(single_answers, federated_answers);

  DirectGraphSource reference(env_->graph());
  ASSERT_EQ(federated_answers.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    const QueryResult expect = ExecuteQuery(base[i], reference);
    const QueryResult& got = federated_answers[i].result;
    EXPECT_EQ(expect.aggregate, got.aggregate) << "query " << base[i].id;
    EXPECT_EQ(expect.walk_end, got.walk_end) << "query " << base[i].id;
    EXPECT_EQ(expect.reachable, got.reachable) << "query " << base[i].id;
    EXPECT_EQ(expect.distance, got.distance) << "query " << base[i].id;
  }
}

TEST_F(MultiTenantTest, QuotaShieldsVictimTenantFromStorm) {
  // Tenant 1 runs a paced stream; tenant 0 storms 10x harder into the same
  // cluster. With tenant 0 held to its quota, tenant 1 must lose nothing —
  // same answers as running alone — and its p99 must stay within a small
  // factor of its solo tail instead of inheriting the storm's queueing.
  constexpr uint64_t kVictimIdBase = 1u << 20;
  const auto victim = OpenLoop(/*tenants=*/1, /*arrivals=*/500,
                               /*rate_qps=*/5000.0, /*skew=*/1.0, /*seed=*/31);
  auto storm = OpenLoop(/*tenants=*/1, /*arrivals=*/5000,
                        /*rate_qps=*/50000.0, /*skew=*/1.0, /*seed=*/37);

  // Merge the two schedules by arrival time; victim ids move to a disjoint
  // range so its answers are identifiable in the merged run.
  std::vector<Query> merged = storm;
  for (const Query& q : victim) {
    Query v = q;
    v.tenant = 1;
    v.id += kVictimIdBase;
    merged.push_back(v);
  }
  std::sort(merged.begin(), merged.end(),
            [](const Query& a, const Query& b) { return a.arrive_us < b.arrive_us; });

  RunOptions solo_opts = SmallRun(2);
  auto solo = MakeClusterEngine(EngineKind::kSimulated, env_->graph(),
                                env_->MakeClusterConfig(solo_opts),
                                env_->MakeStrategy(solo_opts));
  std::vector<Query> victim_as_tenant1 = victim;
  for (Query& q : victim_as_tenant1) {
    q.tenant = 1;
    q.id += kVictimIdBase;
  }
  const ClusterMetrics solo_m = solo->Run(victim_as_tenant1);

  RunOptions storm_opts = SmallRun(2);
  storm_opts.tenant_quota_qps = 8000.0;
  storm_opts.tenant_quota_burst = 32.0;
  auto stormed = MakeClusterEngine(EngineKind::kSimulated, env_->graph(),
                                   env_->MakeClusterConfig(storm_opts),
                                   env_->MakeStrategy(storm_opts));
  const ClusterMetrics storm_m = stormed->Run(merged);

  // The storm tenant was throttled; the victim was never shed.
  ASSERT_EQ(storm_m.per_tenant.size(), 2u);
  EXPECT_GT(storm_m.per_tenant[0].shed, 0u);
  EXPECT_EQ(storm_m.per_tenant[1].shed, 0u);
  EXPECT_EQ(storm_m.per_tenant[1].queries, victim.size());

  // Same answers for the victim as running alone.
  std::vector<AnsweredQuery> victim_answers;
  for (const AnsweredQuery& a : SortedAnswers(*stormed)) {
    if (a.query_id >= kVictimIdBase) {
      victim_answers.push_back(a);
    }
  }
  ExpectSameAnswers(SortedAnswers(*solo), victim_answers);

  // Bounded interference: the victim's p99 under the throttled storm stays
  // within a small factor of its solo p99 (virtual time, so deterministic).
  ASSERT_EQ(solo_m.per_tenant.size(), 2u);
  const double solo_p99 = solo_m.per_tenant[1].p99_response_ms;
  const double stormed_p99 = storm_m.per_tenant[1].p99_response_ms;
  ASSERT_GT(solo_p99, 0.0);
  EXPECT_LE(stormed_p99, 5.0 * solo_p99);
}

TEST_F(MultiTenantTest, SingleTenantMetricsCarryOneRow) {
  // A single-tenant run reports exactly one per-tenant row that mirrors the
  // run totals, and sheds nothing with quotas off.
  const auto queries = OpenLoop(/*tenants=*/1, /*arrivals=*/400,
                                /*rate_qps=*/50000.0, /*skew=*/1.0, /*seed=*/41);
  const ClusterMetrics m =
      env_->Run(EngineKind::kSimulated, SmallRun(1), queries);
  EXPECT_EQ(m.queries_shed, 0u);
  ASSERT_EQ(m.per_tenant.size(), 1u);
  EXPECT_EQ(m.per_tenant[0].queries, m.queries);
  EXPECT_EQ(m.per_tenant[0].shed, 0u);
  EXPECT_DOUBLE_EQ(m.per_tenant[0].p99_response_ms, m.p99_response_ms);
}

}  // namespace
}  // namespace grouting
