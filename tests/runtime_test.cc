// Tests for the real threaded runtime, including the cross-engine agreement
// property: the threaded cluster and the reference executor produce the
// same answers for the same queries.

#include <gtest/gtest.h>

#include <map>

#include "src/graph/generators.h"
#include "src/runtime/threaded_cluster.h"
#include "src/workload/workload.h"

namespace grouting {
namespace {

class ThreadedClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LocalityWebConfig cfg;
    cfg.grid_width = 5;
    cfg.grid_height = 5;
    cfg.community_size = 30;
    graph_ = GenerateLocalityWeb(cfg, 4);
    WorkloadConfig wc;
    wc.num_hotspots = 15;
    wc.queries_per_hotspot = 4;
    wc.seed = 21;
    queries_ = GenerateHotspotWorkload(graph_, wc);
  }

  ClusterConfig BaseConfig() const {
    ClusterConfig cfg;
    cfg.num_processors = 3;
    cfg.num_storage_servers = 2;
    cfg.processor.cache_bytes = graph_.TotalAdjacencyBytes() + (1 << 20);
    return cfg;
  }

  Graph graph_;
  std::vector<Query> queries_;
};

TEST_F(ThreadedClusterTest, AllQueriesAnswered) {
  ThreadedCluster cluster(graph_, BaseConfig(), std::make_unique<NextReadyStrategy>());
  auto metrics = cluster.Run(queries_);
  const auto& answers = cluster.answers();
  EXPECT_EQ(metrics.queries, queries_.size());
  EXPECT_EQ(answers.size(), queries_.size());
  EXPECT_GT(metrics.throughput_qps, 0.0);
  // Every query id answered exactly once.
  std::set<uint64_t> ids;
  for (const auto& a : answers) {
    EXPECT_TRUE(ids.insert(a.query_id).second);
    EXPECT_LT(a.processor, 3u);
  }
}

TEST_F(ThreadedClusterTest, AnswersMatchReferenceExecutor) {
  ThreadedCluster cluster(graph_, BaseConfig(), std::make_unique<HashStrategy>());
  cluster.Run(queries_);
  const auto& answers = cluster.answers();

  std::map<uint64_t, const Query*> by_id;
  for (const Query& q : queries_) {
    by_id[q.id] = &q;
  }
  DirectGraphSource reference(graph_);
  for (const auto& a : answers) {
    const Query& q = *by_id.at(a.query_id);
    const QueryResult expected = ExecuteQuery(q, reference);
    EXPECT_EQ(a.result.aggregate, expected.aggregate) << "query " << q.id;
    EXPECT_EQ(a.result.reachable, expected.reachable) << "query " << q.id;
    EXPECT_EQ(a.result.walk_end, expected.walk_end) << "query " << q.id;
  }
}

TEST_F(ThreadedClusterTest, WorkConservedAcrossProcessors) {
  ThreadedCluster cluster(graph_, BaseConfig(), std::make_unique<NextReadyStrategy>());
  auto metrics = cluster.Run(queries_);
  uint64_t total = 0;
  for (uint64_t c : metrics.queries_per_processor) {
    total += c;
  }
  EXPECT_EQ(total, queries_.size());
}

TEST_F(ThreadedClusterTest, StealingBalancesPinnedLoad) {
  // A strategy that pins everything to processor 0: with stealing enabled,
  // other processors must still end up doing some of the work. Stealing
  // only triggers once a backlog forms on channel 0, which races with the
  // router's push rate, so use heavier queries (slower drain) and allow a
  // few fresh-cluster attempts before declaring stealing broken.
  class PinStrategy : public RoutingStrategy {
   public:
    std::string name() const override { return "pin"; }
    uint32_t Route(NodeId, const RouterContext&) override { return 0; }
  };
  std::vector<Query> heavy = queries_;
  for (Query& q : heavy) {
    q.hops = 3;
  }
  ClusterConfig cfg = BaseConfig();
  cfg.enable_stealing = true;
  uint64_t steals = 0;
  uint64_t on_others = 0;
  for (int attempt = 0; attempt < 5 && (steals == 0 || on_others == 0); ++attempt) {
    ThreadedCluster cluster(graph_, cfg, std::make_unique<PinStrategy>());
    auto metrics = cluster.Run(heavy);
    steals = metrics.steals;
    on_others = 0;
    for (uint32_t p = 1; p < 3; ++p) {
      on_others += metrics.queries_per_processor[p];
    }
  }
  EXPECT_GT(steals, 0u);
  EXPECT_GT(on_others, 0u);
}

TEST_F(ThreadedClusterTest, CacheHitsAccumulate) {
  ThreadedCluster cluster(graph_, BaseConfig(), std::make_unique<HashStrategy>());
  auto metrics = cluster.Run(queries_);
  EXPECT_GT(metrics.cache_hits + metrics.cache_misses, 0u);
  EXPECT_GT(metrics.cache_hits, 0u);  // hotspot workload must hit
}

TEST_F(ThreadedClusterTest, NoCacheMode) {
  ClusterConfig cfg = BaseConfig();
  cfg.processor.use_cache = false;
  ThreadedCluster cluster(graph_, cfg, std::make_unique<NextReadyStrategy>());
  auto metrics = cluster.Run(queries_);
  EXPECT_EQ(metrics.cache_hits, 0u);
  EXPECT_EQ(metrics.queries, queries_.size());
}

TEST_F(ThreadedClusterTest, SingleProcessor) {
  ClusterConfig cfg = BaseConfig();
  cfg.num_processors = 1;
  ThreadedCluster cluster(graph_, cfg, std::make_unique<NextReadyStrategy>());
  auto metrics = cluster.Run(queries_);
  EXPECT_EQ(metrics.queries_per_processor[0], queries_.size());
  EXPECT_EQ(metrics.steals, 0u);
}

TEST_F(ThreadedClusterTest, ManyProcessorsFewQueries) {
  ClusterConfig cfg = BaseConfig();
  cfg.num_processors = 8;
  std::vector<Query> few(queries_.begin(), queries_.begin() + 3);
  ThreadedCluster cluster(graph_, cfg, std::make_unique<NextReadyStrategy>());
  auto metrics = cluster.Run(few);
  EXPECT_EQ(metrics.queries, 3u);
}

TEST_F(ThreadedClusterTest, ReportsLatencyPercentiles) {
  // The unified metrics give the threaded engine the response-time
  // statistics the simulator always had, from per-query wall timestamps.
  ThreadedCluster cluster(graph_, BaseConfig(), std::make_unique<HashStrategy>());
  auto metrics = cluster.Run(queries_);
  // Structural properties only: wall-clock distributions on shared machines
  // can have arbitrary scheduling tails, so no mean/p95 ratio assertions.
  EXPECT_GT(metrics.mean_response_ms, 0.0);
  EXPECT_GT(metrics.p95_response_ms, 0.0);
  EXPECT_GE(metrics.mean_queue_wait_ms, 0.0);
  EXPECT_GT(metrics.makespan_us, 0.0);
  EXPECT_GT(metrics.nodes_visited, 0u);
  EXPECT_GT(metrics.storage_batches, 0u);
  EXPECT_GT(metrics.bytes_from_storage, 0u);
}

TEST_F(ThreadedClusterTest, EmptyWorkload) {
  ThreadedCluster cluster(graph_, BaseConfig(), std::make_unique<NextReadyStrategy>());
  auto metrics = cluster.Run({});
  EXPECT_EQ(metrics.queries, 0u);
}

}  // namespace
}  // namespace grouting
