// Model-checking style property tests: run randomized operation sequences
// against a component AND a trivially-correct reference model, and require
// identical observable behaviour at every step.

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/cache/cache.h"
#include "src/routing/router.h"
#include "src/storage/kv_store.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

// ---------------------------------------------------------------- LRU ----

// Reference LRU: ordered list of (key, bytes), most recent at back.
class ReferenceLru {
 public:
  explicit ReferenceLru(uint64_t capacity) : capacity_(capacity) {}

  bool Get(NodeId key) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        entries_.splice(entries_.end(), entries_, it);
        return true;
      }
    }
    return false;
  }

  void Put(NodeId key, uint64_t bytes) {
    if (bytes > capacity_) {
      Erase(key);
      return;
    }
    Erase(key);
    entries_.emplace_back(key, bytes);
    size_ += bytes;
    while (size_ > capacity_) {
      size_ -= entries_.front().second;
      entries_.pop_front();
    }
  }

  void Erase(NodeId key) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        size_ -= it->second;
        entries_.erase(it);
        return;
      }
    }
  }

  bool Contains(NodeId key) const {
    for (const auto& [k, b] : entries_) {
      if (k == key) {
        return true;
      }
    }
    return false;
  }

  uint64_t size_bytes() const { return size_; }

 private:
  uint64_t capacity_;
  uint64_t size_ = 0;
  std::list<std::pair<NodeId, uint64_t>> entries_;
};

class LruModelCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LruModelCheck, AgreesWithReferenceOnRandomOps) {
  NodeCache<int> cache(256, CachePolicy::kLru);
  ReferenceLru reference(256);
  Rng rng(GetParam());
  for (int step = 0; step < 4000; ++step) {
    const auto key = static_cast<NodeId>(rng.NextBounded(24));
    const int op = static_cast<int>(rng.NextBounded(3));
    switch (op) {
      case 0: {
        const uint64_t bytes = 8 + rng.NextBounded(64);
        cache.Put(key, static_cast<int>(key), bytes);
        reference.Put(key, bytes);
        break;
      }
      case 1: {
        const bool got = cache.Get(key).has_value();
        const bool expected = reference.Get(key);
        ASSERT_EQ(got, expected) << "step " << step << " key " << key;
        break;
      }
      default:
        cache.Erase(key);
        reference.Erase(key);
        break;
    }
    ASSERT_EQ(cache.size_bytes(), reference.size_bytes()) << "step " << step;
    for (NodeId k = 0; k < 24; ++k) {
      ASSERT_EQ(cache.Contains(k), reference.Contains(k))
          << "step " << step << " key " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruModelCheck, ::testing::Values(1, 2, 3, 5, 8, 13));

// ------------------------------------------------------------ KvStore ----

class KvStoreModelCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvStoreModelCheck, AgreesWithMapUnderRandomOpsAndCompaction) {
  LogStructuredStore store(512);  // small segments: force many + compaction
  std::unordered_map<uint64_t, std::vector<uint8_t>> reference;
  Rng rng(GetParam() * 2654435761ULL + 1);
  for (int step = 0; step < 3000; ++step) {
    const uint64_t key = rng.NextBounded(40);
    const int op = static_cast<int>(rng.NextBounded(10));
    if (op < 5) {  // put
      std::vector<uint8_t> value(rng.NextBounded(100));
      for (auto& b : value) {
        b = static_cast<uint8_t>(rng.Next());
      }
      store.Put(key, value);
      reference[key] = std::move(value);
    } else if (op < 8) {  // get
      auto got = store.Get(key);
      auto it = reference.find(key);
      ASSERT_EQ(got.has_value(), it != reference.end()) << "step " << step;
      if (got.has_value()) {
        ASSERT_EQ(got->size(), it->second.size());
        ASSERT_TRUE(std::equal(got->begin(), got->end(), it->second.begin()));
      }
    } else if (op < 9) {  // delete
      ASSERT_EQ(store.Delete(key), reference.erase(key) > 0) << "step " << step;
    } else {  // compact
      store.Compact();
      ASSERT_DOUBLE_EQ(store.Utilization(), 1.0);
    }
    ASSERT_EQ(store.entry_count(), reference.size()) << "step " << step;
  }
  // Final full verification.
  for (const auto& [key, value] : reference) {
    auto got = store.Get(key);
    ASSERT_TRUE(got.has_value());
    ASSERT_TRUE(std::equal(got->begin(), got->end(), value.begin()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvStoreModelCheck, ::testing::Values(11, 22, 33, 44));

// -------------------------------------------------------------- Router --

// Property: for ANY strategy decisions, every enqueued query is dispatched
// exactly once, regardless of which processors ask in which order.
class RouterConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RouterConservation, EveryQueryDispatchedExactlyOnce) {
  Rng rng(GetParam());
  // Adversarial strategy: routes randomly.
  class RandomStrategy : public RoutingStrategy {
   public:
    explicit RandomStrategy(uint64_t seed) : rng_(seed) {}
    std::string name() const override { return "random"; }
    uint32_t Route(NodeId, const RouterContext& ctx) override {
      return static_cast<uint32_t>(rng_.NextBounded(ctx.num_processors));
    }

   private:
    Rng rng_;
  };

  const uint32_t procs = 1 + static_cast<uint32_t>(rng.NextBounded(6));
  Router router(std::make_unique<RandomStrategy>(GetParam() ^ 0xabc), procs);
  const size_t n = 200;
  std::map<uint64_t, int> dispatched;
  for (uint64_t i = 0; i < n; ++i) {
    Query q;
    q.id = i;
    q.node = static_cast<NodeId>(rng.Next());
    router.Enqueue(q);
  }
  // Processors poll in random order until drained.
  size_t safety = 0;
  while (router.HasPending() && safety++ < n * 10) {
    const auto p = static_cast<uint32_t>(rng.NextBounded(procs));
    if (auto q = router.NextForProcessor(p); q.has_value()) {
      dispatched[q->id] += 1;
    }
  }
  ASSERT_EQ(dispatched.size(), n);
  for (const auto& [id, count] : dispatched) {
    ASSERT_EQ(count, 1) << "query " << id;
  }
  EXPECT_EQ(router.stats().dispatched, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterConservation,
                         ::testing::Values(3, 7, 31, 127, 8191));

}  // namespace
}  // namespace grouting
