// Round-trip and malformed-input tests for graph (de)serialisation.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/graph/generators.h"
#include "src/graph/io.h"

namespace grouting {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

bool GraphsEqual(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    if (a.node_label(u) != b.node_label(u)) {
      return false;
    }
    auto na = a.OutNeighbors(u);
    auto nb = b.OutNeighbors(u);
    if (na.size() != nb.size()) {
      return false;
    }
    for (size_t i = 0; i < na.size(); ++i) {
      if (!(na[i] == nb[i])) {
        return false;
      }
    }
  }
  return true;
}

TEST(IoTest, EdgeListTextRoundTrip) {
  LabelConfig labels;
  labels.num_node_labels = 3;
  labels.num_edge_labels = 5;
  Graph g = GenerateErdosRenyi(100, 400, 1, labels);
  const std::string path = TempPath("roundtrip.edges");
  ASSERT_TRUE(WriteEdgeListText(g, path));
  auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(GraphsEqual(g, *loaded));
  std::remove(path.c_str());
}

TEST(IoTest, EdgeListPreservesIsolatedNodes) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddNode();  // isolated node 2
  Graph g = b.Build();
  const std::string path = TempPath("isolated.edges");
  ASSERT_TRUE(WriteEdgeListText(g, path));
  auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 3u);
  std::remove(path.c_str());
}

TEST(IoTest, ReadPlainTwoColumnEdgeList) {
  const std::string path = TempPath("plain.edges");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "0 1\n1 2\n\n2 0\n");
  std::fclose(f);
  auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), 3u);
  EXPECT_TRUE(loaded->HasEdge(2, 0));
  std::remove(path.c_str());
}

TEST(IoTest, ReadRejectsGarbage) {
  const std::string path = TempPath("garbage.edges");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "this is not an edge list\n");
  std::fclose(f);
  EXPECT_FALSE(ReadEdgeListText(path).has_value());
  std::remove(path.c_str());
}

TEST(IoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadEdgeListText("/nonexistent/definitely/missing").has_value());
  EXPECT_FALSE(ReadBinary("/nonexistent/definitely/missing").has_value());
}

TEST(IoTest, BinaryRoundTrip) {
  LabelConfig labels;
  labels.num_node_labels = 7;
  labels.num_edge_labels = 7;
  Graph g = GenerateBarabasiAlbert(300, 4, 2, labels);
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteBinary(g, path));
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(GraphsEqual(g, *loaded));
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRejectsBadMagic) {
  const std::string path = TempPath("badmagic.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t junk[3] = {0xdeadbeef, 10, 10};
  std::fwrite(junk, sizeof(uint64_t), 3, f);
  std::fclose(f);
  EXPECT_FALSE(ReadBinary(path).has_value());
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRejectsTruncated) {
  Graph g = GenerateErdosRenyi(50, 200, 3);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(WriteBinary(g, path));
  // Truncate the file to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(ReadBinary(path).has_value());
  std::remove(path.c_str());
}

TEST(IoTest, EmptyGraphRoundTrips) {
  Graph g;
  const std::string text = TempPath("empty.edges");
  const std::string bin = TempPath("empty.bin");
  ASSERT_TRUE(WriteEdgeListText(g, text));
  ASSERT_TRUE(WriteBinary(g, bin));
  auto t = ReadEdgeListText(text);
  auto b = ReadBinary(bin);
  ASSERT_TRUE(t.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(t->num_nodes(), 0u);
  EXPECT_EQ(b->num_nodes(), 0u);
  std::remove(text.c_str());
  std::remove(bin.c_str());
}

}  // namespace
}  // namespace grouting
