// Tests for BFS utilities: distances, depth limits, node filters, k-hop
// neighbourhoods, pairwise distances — including the landmark triangle
// inequality property the smart routing schemes rely on.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/graph/generators.h"
#include "src/graph/traversal.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

Graph Path(size_t n) {
  GraphBuilder b;
  for (NodeId u = 0; u + 1 < n; ++u) {
    b.AddEdge(u, u + 1);
  }
  return b.Build();
}

TEST(BfsTest, PathDistances) {
  Graph g = Path(6);
  auto dist = BfsDistances(g, 0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(dist[i], i);
  }
}

TEST(BfsTest, DirectedVsBidirected) {
  Graph g = Path(4);
  BfsOptions directed;
  directed.bidirected = false;
  // From the tail, directed BFS reaches nothing; bidirected walks back.
  auto d1 = BfsDistances(g, 3, directed);
  EXPECT_EQ(d1[0], kUnreachable);
  auto d2 = BfsDistances(g, 3);
  EXPECT_EQ(d2[0], 3);
}

TEST(BfsTest, MaxDepthCutsOff) {
  Graph g = Path(10);
  BfsOptions opts;
  opts.max_depth = 3;
  auto dist = BfsDistances(g, 0, opts);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(BfsTest, AllowedFilterRestrictsTraversal) {
  Graph g = Path(5);
  std::vector<uint8_t> allowed{1, 1, 0, 1, 1};  // node 2 blocked
  BfsOptions opts;
  opts.allowed = &allowed;
  auto dist = BfsDistances(g, 0, opts);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[3], kUnreachable);  // unreachable through the hole
}

TEST(BfsTest, DisconnectedComponentsUnreachable) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(KHopTest, ExcludesSourceAndDeduplicates) {
  Graph g = Path(5);
  auto hood = KHopNeighborhood(g, 2, 2);
  // Nodes within 2 hops of node 2: {0, 1, 3, 4}.
  EXPECT_EQ(hood.size(), 4u);
  for (NodeId v : hood) {
    EXPECT_NE(v, 2u);
  }
}

TEST(KHopTest, ZeroHopsIsEmpty) {
  Graph g = Path(5);
  EXPECT_TRUE(KHopNeighborhood(g, 0, 0).empty());
}

TEST(KHopTest, MatchesBfsDistances) {
  Graph g = GenerateErdosRenyi(300, 1500, 3);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto src = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const int32_t h = 1 + static_cast<int32_t>(rng.NextBounded(3));
    auto hood = KHopNeighborhood(g, src, h);
    auto dist = BfsDistances(g, src);
    size_t expected = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v != src && dist[v] != kUnreachable && dist[v] <= h) {
        ++expected;
      }
    }
    EXPECT_EQ(hood.size(), expected);
    for (NodeId v : hood) {
      EXPECT_LE(dist[v], h);
    }
  }
}

TEST(HopDistanceTest, KnownValues) {
  Graph g = Path(8);
  EXPECT_EQ(HopDistance(g, 0, 0, 10), 0);
  EXPECT_EQ(HopDistance(g, 0, 5, 10), 5);
  EXPECT_EQ(HopDistance(g, 5, 0, 10), 5);  // bidirected
  EXPECT_EQ(HopDistance(g, 0, 7, 3), kUnreachable);  // beyond max depth
}

TEST(HopDistanceTest, AgreesWithBfs) {
  Graph g = GenerateBarabasiAlbert(400, 3, 9);
  Rng rng(10);
  for (int trial = 0; trial < 15; ++trial) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    auto dist = BfsDistances(g, u);
    const int32_t expected = dist[v] == kUnreachable ? kUnreachable : dist[v];
    EXPECT_EQ(HopDistance(g, u, v, 1 << 20), expected);
  }
}

// Property: landmark distance bounds (paper Eq. 2) hold on random graphs —
// |d(u,l) - d(l,v)| <= d(u,v) <= d(u,l) + d(l,v).
class TriangleBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriangleBoundTest, LandmarkBoundsHold) {
  Graph g = GenerateErdosRenyi(250, 1000, GetParam());
  Rng rng(GetParam() ^ 0xfeed);
  const auto landmark = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
  auto dl = BfsDistances(g, landmark);
  for (int trial = 0; trial < 20; ++trial) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    if (dl[u] == kUnreachable || dl[v] == kUnreachable) {
      continue;
    }
    const int32_t duv = HopDistance(g, u, v, 1 << 20);
    if (duv == kUnreachable) {
      continue;
    }
    EXPECT_LE(duv, dl[u] + dl[v]);
    EXPECT_GE(duv, std::abs(dl[u] - dl[v]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleBoundTest, ::testing::Values(1, 7, 21, 77));

}  // namespace
}  // namespace grouting
