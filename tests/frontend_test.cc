// Tests for the sharded router frontend (src/frontend/):
//
//   * the arrival splitter's three cut policies,
//   * fleet-of-one identity: a RouterFleet with num_shards=1 makes exactly
//     the same decisions as the classic single Router for every scheme,
//   * gossip: cross-shard EMA divergence decreases after a gossip round,
//     on the fleet directly and through both engines,
//   * exactly-once: a sharded fleet answers every query exactly once on
//     both engines,
//   * steal-path strategy feedback: OnDispatch fires with the *stealing*
//     processor on both engines, so adaptive strategies track actual cache
//     contents under stealing,
//   * the shards x scheme sweep (bench_fig_router_shards) runs under the
//     threaded engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "src/core/grouting.h"

namespace grouting {
namespace {

// ------------------------------------------------------------- splitter --

TEST(SplitterTest, RoundRobinCutsEvenSlices) {
  ArrivalSplitter s(SplitterKind::kRoundRobin, 4);
  std::vector<int> counts(4, 0);
  Query q;
  for (uint64_t i = 0; i < 100; ++i) {
    q.id = i;
    q.node = static_cast<NodeId>(i * 7);
    counts[s.ShardFor(q)] += 1;
  }
  for (int c : counts) {
    EXPECT_EQ(c, 25);
  }
}

TEST(SplitterTest, HashIsStickyPerNodeAndSpreads) {
  ArrivalSplitter s(SplitterKind::kHash, 4);
  std::set<uint32_t> shards_for_42;
  std::set<uint32_t> all_shards;
  Query q;
  for (int rep = 0; rep < 10; ++rep) {
    q.node = 42;
    shards_for_42.insert(s.ShardFor(q));
  }
  for (NodeId u = 0; u < 400; ++u) {
    q.node = u;
    all_shards.insert(s.ShardFor(q));
  }
  EXPECT_EQ(shards_for_42.size(), 1u);  // repeats stick
  EXPECT_EQ(all_shards.size(), 4u);     // nodes spread
}

TEST(SplitterTest, StickyKeepsNodeAffinityAndBalancesNewNodes) {
  ArrivalSplitter s(SplitterKind::kSticky, 3);
  Query q;
  std::vector<uint32_t> first(9, 0);
  for (NodeId u = 0; u < 9; ++u) {
    q.node = u;
    first[u] = s.ShardFor(q);
  }
  // Repeats stick to the first assignment.
  for (NodeId u = 0; u < 9; ++u) {
    q.node = u;
    EXPECT_EQ(s.ShardFor(q), first[u]);
  }
  // New nodes go to the least-assigned shard: 9 distinct nodes over 3 shards
  // is a perfect 3/3/3 split.
  std::vector<int> counts(3, 0);
  for (uint32_t shard : first) {
    counts[shard] += 1;
  }
  for (int c : counts) {
    EXPECT_EQ(c, 3);
  }
}

TEST(SplitterTest, SessionTableIsBoundedWithFifoEviction) {
  // Regression: the sticky/adaptive session table must not grow without
  // bound — beyond the capacity the oldest session is evicted (and counted).
  constexpr uint32_t kCapacity = 64;
  ArrivalSplitter s(SplitterKind::kSticky, 3, kCapacity);
  Query q;
  for (NodeId u = 0; u < 500; ++u) {
    q.node = u;
    s.ShardFor(q);
  }
  EXPECT_EQ(s.session_count(), kCapacity);
  EXPECT_EQ(s.stats().evictions, 500u - kCapacity);
  // The oldest sessions are gone, the newest survive.
  EXPECT_EQ(s.SessionShard(0), 3u);    // evicted: unknown
  EXPECT_LT(s.SessionShard(499), 3u);  // newest: live
  // An evicted node that returns starts a fresh session (and evicts again).
  q.node = 0;
  EXPECT_LT(s.ShardFor(q), 3u);
  EXPECT_EQ(s.session_count(), kCapacity);
  EXPECT_EQ(s.stats().evictions, 500u - kCapacity + 1);
}

TEST(SplitterTest, AdaptiveWithoutThresholdIsDecisionIdenticalToSticky) {
  // threshold <= 1 (or infinity) disables migration: kAdaptive must then
  // assign exactly like kSticky, even with rebalance rounds injected.
  ArrivalSplitter sticky(SplitterKind::kSticky, 4);
  ArrivalSplitter adaptive(SplitterKind::kAdaptive, 4);
  RebalanceConfig off;  // threshold = 0 -> disabled
  const std::vector<uint64_t> loads = {1000, 1, 1, 1};
  Query q;
  for (uint64_t i = 0; i < 400; ++i) {
    q.id = i;
    q.node = static_cast<NodeId>((i * 13) % 37);
    ASSERT_EQ(adaptive.ShardFor(q), sticky.ShardFor(q)) << "arrival " << i;
    if (i % 50 == 0) {
      EXPECT_TRUE(adaptive.Rebalance(loads, off).empty());
    }
  }
  RebalanceConfig inf_threshold;
  inf_threshold.threshold = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(adaptive.Rebalance(loads, inf_threshold).empty());
  EXPECT_EQ(adaptive.stats().migrations, 0u);
}

TEST(SplitterTest, RebalanceMovesHotSessionsWithCapAndHysteresis) {
  ArrivalSplitter s(SplitterKind::kAdaptive, 2);
  // Sticky assignment alternates new sessions: even nodes -> shard 0, odd
  // nodes -> shard 1. Make shard 0's sessions hot.
  Query q;
  const auto feed = [&](NodeId node, int times) {
    q.node = node;
    for (int i = 0; i < times; ++i) {
      s.ShardFor(q);
    }
  };
  for (NodeId u = 0; u < 6; ++u) {
    feed(u, 1);  // even -> shard 0, odd -> shard 1
  }
  feed(0, 29);  // hot sessions on shard 0: 30 arrivals each
  feed(2, 29);
  feed(4, 29);
  feed(1, 4);  // cool sessions on shard 1: 5 arrivals each
  feed(3, 4);
  feed(5, 4);
  ASSERT_EQ(s.SessionShard(0), 0u);
  ASSERT_EQ(s.SessionShard(2), 0u);
  ASSERT_EQ(s.SessionShard(4), 0u);

  RebalanceConfig cfg;
  cfg.threshold = 1.5;
  cfg.migration_cap = 1;
  const std::vector<uint64_t> loads = {90, 15};
  auto moved = s.Rebalance(loads, cfg);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].from, 0u);
  EXPECT_EQ(moved[0].to, 1u);
  EXPECT_EQ(moved[0].session, 0u);  // equally hot candidates tie-break low
  // The moved session's future arrivals land on the destination shard.
  EXPECT_EQ(s.SessionShard(0), 1u);
  q.node = 0;
  EXPECT_EQ(s.ShardFor(q), 1u);

  // Projected loads after the move: 60 vs 45 — below the threshold, so the
  // next round (same stale external snapshot) must not thrash it back.
  EXPECT_TRUE(s.Rebalance(loads, cfg).empty());
  EXPECT_EQ(s.stats().migrations, 1u);
}

TEST(SplitterTest, RebalanceNeverOvershootsWithOneMegaSession) {
  // A single session hotter than the whole gap cannot be split further;
  // moving it would just relocate the hotspot, so the splitter must leave
  // it and move only what narrows the spread.
  ArrivalSplitter s(SplitterKind::kAdaptive, 2);
  Query q;
  const auto feed = [&](NodeId node, int times) {
    q.node = node;
    for (int i = 0; i < times; ++i) {
      s.ShardFor(q);
    }
  };
  feed(0, 1);  // -> shard 0 (the mega session)
  feed(1, 1);  // -> shard 1
  feed(2, 1);  // -> shard 0
  feed(3, 1);  // -> shard 1
  feed(0, 99);
  feed(2, 9);
  feed(1, 9);
  feed(3, 9);
  RebalanceConfig cfg;
  cfg.threshold = 1.5;
  cfg.migration_cap = 8;
  // Loads 110 vs 20: only session 2 (10 arrivals < gap = 90) may move.
  const std::vector<uint64_t> loads = {110, 20};
  const auto moved = s.Rebalance(loads, cfg);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].session, 2u);
  EXPECT_EQ(s.SessionShard(0), 0u);  // the mega session stays put
}

// ---------------------------------------------------- fleet-of-1 identity --

class FrontendFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new ExperimentEnv(DatasetId::kWebGraphLike, /*scale=*/0.12, /*seed=*/37);
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  static RunOptions SmallRun(RoutingSchemeKind scheme) {
    RunOptions opts;
    opts.scheme = scheme;
    opts.processors = 3;
    opts.storage_servers = 2;
    opts.num_landmarks = 24;
    opts.min_separation = 2;
    opts.dimensions = 6;
    opts.num_hotspots = 20;
    opts.queries_per_hotspot = 5;
    return opts;
  }

  static ExperimentEnv* env_;
};

ExperimentEnv* FrontendFixture::env_ = nullptr;

constexpr RoutingSchemeKind kAllSchemes[] = {
    RoutingSchemeKind::kNoCache, RoutingSchemeKind::kNextReady,
    RoutingSchemeKind::kHash, RoutingSchemeKind::kLandmark,
    RoutingSchemeKind::kEmbed};

TEST_F(FrontendFixture, SingleShardFleetIsAnswerIdenticalToRouter) {
  const auto queries = env_->HotspotWorkload(2, 2, 20, 5);
  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    const RunOptions opts = SmallRun(scheme);
    // Two identically seeded strategy instances: one behind the classic
    // router, one behind a fleet of one.
    Router reference(env_->MakeStrategy(opts), opts.processors);
    FleetConfig fc;  // num_shards = 1
    RouterFleet fleet(env_->MakeStrategy(opts), opts.processors, fc);

    // Identical routing decisions for the whole arrival stream...
    for (const Query& q : queries) {
      const uint32_t expected = reference.Enqueue(q);
      const RouterFleet::RoutedArrival got = fleet.Enqueue(q);
      ASSERT_EQ(got.shard, 0u);
      ASSERT_EQ(got.processor, expected) << "query " << q.id;
    }
    // ...and identical dispatch (incl. steal) decisions when drained the
    // same way.
    while (reference.HasPending() || fleet.HasPending()) {
      for (uint32_t p = 0; p < opts.processors; ++p) {
        const auto expected = reference.NextForProcessor(p);
        const auto got = fleet.NextForProcessor(p);
        ASSERT_EQ(got.has_value(), expected.has_value());
        if (expected.has_value()) {
          ASSERT_EQ(got->id, expected->id);
        }
      }
    }
    EXPECT_EQ(fleet.AggregateRouterStats().steals, reference.stats().steals);
    EXPECT_EQ(fleet.AggregateRouterStats().per_processor,
              reference.stats().per_processor);
  }
}

// ------------------------------------------------------------------ gossip --

TEST_F(FrontendFixture, GossipRoundReducesCrossShardEmaDivergence) {
  const RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  FleetConfig fc;
  fc.num_shards = 4;
  fc.splitter = SplitterKind::kRoundRobin;
  RouterFleet fleet(env_->MakeStrategy(opts), opts.processors, fc);

  // Shards' EMAs drift apart as each routes only its slice of the stream.
  const auto queries = env_->HotspotWorkload(2, 2, 20, 5);
  for (const Query& q : queries) {
    fleet.Enqueue(q);
  }
  const double before = fleet.CurrentEmaDivergence();
  ASSERT_GT(before, 0.0);

  fleet.GossipRound();
  EXPECT_EQ(fleet.gossip_stats().rounds, 1u);
  EXPECT_DOUBLE_EQ(fleet.gossip_stats().last_divergence_before, before);
  EXPECT_LT(fleet.gossip_stats().last_divergence_after, before);
  EXPECT_DOUBLE_EQ(fleet.CurrentEmaDivergence(),
                   fleet.gossip_stats().last_divergence_after);
}

TEST_F(FrontendFixture, SimEngineGossipConvergesAndAnswersExactlyOnce) {
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  opts.router_shards = 4;
  opts.gossip_period_us = 100.0;
  const auto queries = env_->HotspotWorkload(2, 2, 20, 5);
  auto engine = MakeClusterEngine(EngineKind::kSimulated, env_->graph(),
                                  env_->MakeClusterConfig(opts),
                                  env_->MakeStrategy(opts));
  const ClusterMetrics m = engine->Run(queries);

  EXPECT_EQ(m.queries, queries.size());
  std::set<uint64_t> ids;
  for (const AnsweredQuery& a : engine->answers()) {
    EXPECT_TRUE(ids.insert(a.query_id).second) << "duplicate " << a.query_id;
  }
  EXPECT_EQ(ids.size(), queries.size());

  EXPECT_GT(m.gossip_rounds, 0u);
  ASSERT_EQ(m.queries_per_router_shard.size(), 4u);
  const uint64_t routed_total =
      std::accumulate(m.queries_per_router_shard.begin(),
                      m.queries_per_router_shard.end(), uint64_t{0});
  EXPECT_EQ(routed_total, queries.size());
  for (uint64_t per_shard : m.queries_per_router_shard) {
    EXPECT_GT(per_shard, 0u);  // round-robin feeds every shard
  }

  // The gossip chain contracted the shards' EMA views.
  auto& sim = static_cast<DecoupledClusterSim&>(*engine);
  EXPECT_GT(sim.fleet().gossip_stats().last_divergence_before, 0.0);
  EXPECT_LT(sim.fleet().gossip_stats().last_divergence_after,
            sim.fleet().gossip_stats().last_divergence_before);
}

TEST_F(FrontendFixture, ThreadedEngineShardedAnswersExactlyOnce) {
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  opts.router_shards = 4;
  opts.gossip_period_us = 50.0;
  const auto queries = env_->HotspotWorkload(2, 2, 20, 5);
  auto engine = MakeClusterEngine(EngineKind::kThreaded, env_->graph(),
                                  env_->MakeClusterConfig(opts),
                                  env_->MakeStrategy(opts));
  const ClusterMetrics m = engine->Run(queries);

  EXPECT_EQ(m.queries, queries.size());
  std::set<uint64_t> ids;
  for (const AnsweredQuery& a : engine->answers()) {
    EXPECT_TRUE(ids.insert(a.query_id).second) << "duplicate " << a.query_id;
  }
  EXPECT_EQ(ids.size(), queries.size());
  ASSERT_EQ(m.queries_per_router_shard.size(), 4u);
  EXPECT_EQ(std::accumulate(m.queries_per_router_shard.begin(),
                            m.queries_per_router_shard.end(), uint64_t{0}),
            queries.size());
  EXPECT_GE(m.router_ema_divergence, 0.0);
}

TEST_F(FrontendFixture, ShardedFleetMatchesSingleRouterAnswersOnBothEngines) {
  // Sharding the frontend must never change WHAT is answered, only how the
  // stream is routed: compare against the 1-shard run per engine.
  const auto queries = env_->HotspotWorkload(2, 2, 20, 5);
  for (const EngineKind kind : {EngineKind::kSimulated, EngineKind::kThreaded}) {
    SCOPED_TRACE(EngineKindName(kind));
    RunOptions single = SmallRun(RoutingSchemeKind::kLandmark);
    RunOptions sharded = single;
    sharded.router_shards = 3;
    sharded.splitter = SplitterKind::kSticky;

    auto a = MakeClusterEngine(kind, env_->graph(), env_->MakeClusterConfig(single),
                               env_->MakeStrategy(single));
    auto b = MakeClusterEngine(kind, env_->graph(), env_->MakeClusterConfig(sharded),
                               env_->MakeStrategy(sharded));
    a->Run(queries);
    b->Run(queries);

    auto sorted = [](const ClusterEngine& e) {
      std::vector<AnsweredQuery> ans = e.answers();
      std::sort(ans.begin(), ans.end(), [](const auto& x, const auto& y) {
        return x.query_id < y.query_id;
      });
      return ans;
    };
    const auto ans_a = sorted(*a);
    const auto ans_b = sorted(*b);
    ASSERT_EQ(ans_a.size(), ans_b.size());
    for (size_t i = 0; i < ans_a.size(); ++i) {
      ASSERT_EQ(ans_a[i].query_id, ans_b[i].query_id);
      EXPECT_EQ(ans_a[i].result.aggregate, ans_b[i].result.aggregate);
      EXPECT_EQ(ans_a[i].result.walk_end, ans_b[i].result.walk_end);
      EXPECT_EQ(ans_a[i].result.reachable, ans_b[i].result.reachable);
    }
  }
}

// ------------------------------------------------- adaptive re-splitting --

TEST_F(FrontendFixture, AdaptiveFleetOfOneIsAnswerIdenticalToRouter) {
  // With one shard there is nothing to migrate: the adaptive fleet must be
  // the classic router, even with an aggressive threshold and forced rounds.
  const auto queries = env_->HotspotWorkload(2, 2, 20, 5);
  const RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  Router reference(env_->MakeStrategy(opts), opts.processors);
  FleetConfig fc;
  fc.splitter = SplitterKind::kAdaptive;
  fc.rebalance.threshold = 1.01;
  RouterFleet fleet(env_->MakeStrategy(opts), opts.processors, fc);
  for (const Query& q : queries) {
    const uint32_t expected = reference.Enqueue(q);
    const RouterFleet::RoutedArrival got = fleet.Enqueue(q);
    ASSERT_EQ(got.shard, 0u);
    ASSERT_EQ(got.processor, expected) << "query " << q.id;
    EXPECT_EQ(fleet.RebalanceRound(), 0u);
  }
  EXPECT_EQ(fleet.splitter().stats().migrations, 0u);
  EXPECT_DOUBLE_EQ(fleet.LoadImbalance(), 1.0);
}

TEST_F(FrontendFixture, AdaptiveConvergesUnderSkewWhereHashStaysImbalanced) {
  // The tentpole claim at fleet level: on a Zipf session stream, a static
  // hash split keeps feeding the hot sessions' shards while the adaptive
  // splitter migrates them until the routed load flattens. Measured on the
  // trailing half of the stream (cumulative counts keep the pre-migration
  // skew forever; what must converge is the rate).
  constexpr uint32_t kShards = 4;
  constexpr double kTrigger = 1.2;  // migration trigger ratio
  // zipf_s = 1.0 over 64 sessions: heavily skewed (the hash split sustains
  // ~3.9x max/min) yet balanceable — the hottest session's share stays below
  // a fair shard share, so the controller can actually reach the trigger.
  const auto queries = env_->SkewedWorkload(/*sessions=*/64, /*queries=*/6000,
                                            /*zipf_s=*/1.0);
  const RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);

  const auto trailing_imbalance = [&](SplitterKind splitter) {
    FleetConfig fc;
    fc.num_shards = kShards;
    fc.splitter = splitter;
    fc.rebalance.threshold = kTrigger;
    fc.rebalance.migration_cap = 16;
    // Steady 50-arrival rounds: a tight noise floor lets the controller
    // chase the trigger all the way down (the 3-sigma default is sized for
    // short, jittery gossip windows).
    fc.rebalance.noise_sigmas = 1.0;
    RouterFleet fleet(env_->MakeStrategy(opts), opts.processors, fc);
    std::vector<uint64_t> warmup;
    for (size_t i = 0; i < queries.size(); ++i) {
      fleet.Enqueue(queries[i]);
      if (i % 50 == 49) {
        fleet.GossipRound();  // load/EMA gossip + rebalance ride together
      }
      if (i == queries.size() / 2) {
        warmup = fleet.RoutedPerShard();
      }
    }
    std::vector<uint64_t> trailing = fleet.RoutedPerShard();
    for (uint32_t s = 0; s < kShards; ++s) {
      trailing[s] -= warmup[s];
    }
    return RoutedLoadImbalance(trailing);
  };

  const double hash_imb = trailing_imbalance(SplitterKind::kHash);
  const double adaptive_imb = trailing_imbalance(SplitterKind::kAdaptive);
  EXPECT_GT(hash_imb, 1.8);            // static split stays skewed
  EXPECT_LT(adaptive_imb, kTrigger);   // adaptive converges below the trigger
  EXPECT_LT(adaptive_imb, hash_imb);
}

TEST_F(FrontendFixture, MigrationCarriesEmaStateToDestinationShard) {
  // When a session migrates, the destination shard must not meet it cold:
  // RebalanceRound merges the source strategy's gossip state in.
  const RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  FleetConfig fc;
  fc.num_shards = 2;
  fc.splitter = SplitterKind::kAdaptive;
  fc.rebalance.threshold = 1.5;
  fc.rebalance.migration_cap = 1;
  fc.rebalance.state_carry_weight = 0.5;
  RouterFleet fleet(env_->MakeStrategy(opts), opts.processors, fc);

  // Four sessions alternate shards; shard 0's two run hot.
  const auto nodes = env_->HotspotWorkload(2, 2, 4, 1);
  ASSERT_EQ(nodes.size(), 4u);
  const auto feed = [&](const Query& proto, int times) {
    for (int i = 0; i < times; ++i) {
      fleet.Enqueue(proto);
    }
  };
  for (const Query& q : nodes) {
    feed(q, 1);
  }
  feed(nodes[0], 29);
  feed(nodes[2], 29);
  feed(nodes[1], 4);
  feed(nodes[3], 4);

  const auto state_of = [&](uint32_t shard) {
    const auto view = fleet.shard(shard).strategy().GossipState();
    return std::vector<double>(view.begin(), view.end());
  };
  const auto src_before = state_of(0);
  const auto dst_before = state_of(1);
  ASSERT_FALSE(dst_before.empty());

  ASSERT_GE(fleet.RebalanceRound(), 1u);

  // dst = (1 - w) * dst + w * src, w = 0.5; src untouched.
  const auto src_after = state_of(0);
  const auto dst_after = state_of(1);
  for (size_t k = 0; k < dst_after.size(); ++k) {
    EXPECT_NEAR(dst_after[k], 0.5 * dst_before[k] + 0.5 * src_before[k], 1e-9)
        << "dim " << k;
    EXPECT_DOUBLE_EQ(src_after[k], src_before[k]) << "dim " << k;
  }
}

// ------------------------------------------- steal-path strategy feedback --

// Pins every route to processor 0 and records each dispatch observation.
// Thread-safe: the threaded engine invokes OnDispatch from processor
// threads (under the shard mutex) while the spy outlives the run.
class SpyPinStrategy : public RoutingStrategy {
 public:
  struct Record {
    NodeId node;
    uint32_t processor;
    uint32_t routed;
  };

  std::string name() const override { return "spy_pin"; }
  uint32_t Route(NodeId, const RouterContext&) override { return 0; }
  void OnDispatch(NodeId node, uint32_t processor, uint32_t routed) override {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back({node, processor, routed});
  }

  std::vector<Record> records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Record> records_;
};

TEST_F(FrontendFixture, OnDispatchFiresWithStealingProcessorOnBothEngines) {
  auto queries = env_->HotspotWorkload(2, 2, 20, 5);
  for (Query& q : queries) {
    q.hops = 3;  // heavier queries: a backlog (and thus stealing) must form
  }
  std::map<uint64_t, NodeId> node_of;
  for (const Query& q : queries) {
    node_of[q.id] = q.node;
  }

  // Runs once and returns the steal count seen by the hook, after checking
  // that every record names the processor that actually executed the query.
  const auto run_once = [&](EngineKind kind) -> uint64_t {
    auto spy = std::make_unique<SpyPinStrategy>();
    SpyPinStrategy* spy_view = spy.get();
    ClusterConfig config = env_->MakeClusterConfig(SmallRun(RoutingSchemeKind::kHash));
    config.enable_stealing = true;
    auto engine = MakeClusterEngine(kind, env_->graph(), config, std::move(spy));
    engine->Run(queries);

    const auto records = spy_view->records();
    EXPECT_EQ(records.size(), queries.size());

    // Everything was routed to processor 0; work done elsewhere was stolen,
    // and the hook must have reported the thief as the dispatch processor.
    uint64_t steals_seen = 0;
    for (const auto& r : records) {
      EXPECT_EQ(r.routed, 0u);
      steals_seen += r.processor != r.routed;
    }

    // The reported processor is the one that actually executed the query:
    // the (node, processor) multiset of dispatch records must match the
    // engine's answers.
    std::map<std::pair<NodeId, uint32_t>, int64_t> balance;
    for (const auto& r : records) {
      balance[{r.node, r.processor}] += 1;
    }
    for (const AnsweredQuery& a : engine->answers()) {
      balance[{node_of.at(a.query_id), a.processor}] -= 1;
    }
    for (const auto& [key, count] : balance) {
      EXPECT_EQ(count, 0) << "node " << key.first << " on processor " << key.second;
    }
    return steals_seen;
  };

  // Deterministic on the simulator: idle processors steal the pinned load.
  EXPECT_GT(run_once(EngineKind::kSimulated), 0u);

  // On real threads stealing races the router's push rate, so allow a few
  // fresh-cluster attempts (as the runtime stealing test does).
  uint64_t steals_seen = 0;
  for (int attempt = 0; attempt < 5 && steals_seen == 0; ++attempt) {
    steals_seen = run_once(EngineKind::kThreaded);
  }
  EXPECT_GT(steals_seen, 0u);
}

// ------------------------------------------------- shards x scheme sweep --

TEST_F(FrontendFixture, ShardSweepRunsUnderThreadedEngine) {
  // The bench_fig_router_shards sweep, smoke-tested at tiny scale on real
  // threads (the bench itself re-runs it via GROUTING_BENCH_ENGINE).
  for (const uint32_t shards : {1u, 2u, 4u}) {
    for (const RoutingSchemeKind scheme :
         {RoutingSchemeKind::kNextReady, RoutingSchemeKind::kEmbed}) {
      SCOPED_TRACE(RoutingSchemeKindName(scheme) + " shards=" +
                   std::to_string(shards));
      RunOptions opts = SmallRun(scheme);
      opts.router_shards = shards;
      opts.num_hotspots = 10;
      const ClusterMetrics m = env_->Run(EngineKind::kThreaded, opts);
      EXPECT_EQ(m.queries, opts.num_hotspots * opts.queries_per_hotspot);
      EXPECT_GT(m.throughput_qps, 0.0);
      EXPECT_EQ(m.queries_per_router_shard.size(), shards);
    }
  }
}

}  // namespace
}  // namespace grouting
