// Unit tests for src/util: RNG, MurmurHash3, statistics, table formatting,
// byte-size parsing, and the MPMC queue.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "src/util/check.h"
#include "src/util/mpmc_queue.h"
#include "src/util/murmur3.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace grouting {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.Next() == b.Next();
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbabilityRoughly) {
  Rng rng(17);
  int trues = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    trues += rng.NextBool(0.25);
  }
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.03);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(23);
  Shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(RngTest, ShuffleDeterministic) {
  std::vector<int> a(50);
  std::vector<int> b(50);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng r1(5);
  Rng r2(5);
  Shuffle(a, r1);
  Shuffle(b, r2);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------ Murmur3 ----

TEST(Murmur3Test, KnownVectors32) {
  // Reference values from Appleby's SMHasher verification.
  EXPECT_EQ(Murmur3_x86_32("", 0, 0), 0u);
  EXPECT_EQ(Murmur3_x86_32("", 0, 1), 0x514E28B7u);
  EXPECT_EQ(Murmur3_x86_32("\xff\xff\xff\xff", 4, 0), 0x76293B50u);
  EXPECT_EQ(Murmur3_x86_32("!Ce\x87", 4, 0), 0xF55B516Bu);
  EXPECT_EQ(Murmur3_x86_32("Hello, world!", 13, 0x9747b28cu), 0x24884CBAu);
}

TEST(Murmur3Test, SeedChangesOutput) {
  const uint64_t key = 12345;
  EXPECT_NE(Murmur3Hash64(key, 1), Murmur3Hash64(key, 2));
}

TEST(Murmur3Test, X64_128Deterministic) {
  uint64_t a[2];
  uint64_t b[2];
  const char* data = "the quick brown fox jumps over the lazy dog";
  Murmur3_x64_128(data, 43, 7, a);
  Murmur3_x64_128(data, 43, 7, b);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
}

TEST(Murmur3Test, X64_128TailLengthsAllWork) {
  // Exercise every tail-switch branch (lengths 0..16).
  uint8_t buf[17];
  for (int i = 0; i < 17; ++i) {
    buf[i] = static_cast<uint8_t>(i * 37);
  }
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (size_t len = 0; len <= 16; ++len) {
    uint64_t out[2];
    Murmur3_x64_128(buf, len, 0, out);
    seen.insert({out[0], out[1]});
  }
  EXPECT_EQ(seen.size(), 17u);  // all distinct
}

TEST(Murmur3Test, Distribution) {
  // Hashing sequential node ids should spread evenly over buckets.
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {0};
  for (uint64_t u = 0; u < 8000; ++u) {
    counts[Murmur3Hash64(u) % kBuckets] += 1;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

// -------------------------------------------------------------- Stats ----

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10;
    ((i % 2 == 0) ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(HistogramTest, QuantilesRoughlyCorrect) {
  Histogram h;
  for (uint64_t i = 1; i <= 1024; ++i) {
    h.Add(i);
  }
  EXPECT_EQ(h.count(), 1024);
  // Median of 1..1024 is ~512; log-bucketed estimate within its bucket.
  const double q50 = h.Quantile(0.5);
  EXPECT_GE(q50, 256.0);
  EXPECT_LE(q50, 1024.0);
  EXPECT_LE(h.Quantile(0.01), h.Quantile(0.99));
}

TEST(HistogramTest, ZeroValuesLandInFirstBucket) {
  Histogram h;
  h.Add(0);
  h.Add(0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_LE(h.Quantile(0.5), 1.0);
}

TEST(PercentileTest, ExactValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_NEAR(Percentile(v, 50), 5.5, 1e-9);
}

TEST(PercentileTest, EmptyIsZero) { EXPECT_EQ(Percentile({}, 50), 0.0); }

// -------------------------------------------------- LatencyHistogram ----

// The regression this pins: histogram percentiles replaced a full sort per
// percentile over raw sample vectors (satellite of the tracing PR). Every
// quantile must stay within one bucket width of the exact sorted-sample
// percentile, over distributions shaped like real latency data.
TEST(LatencyHistogramTest, PercentilesWithinOneBucketOfExact) {
  Rng rng(7);
  std::vector<double> samples;
  LatencyHistogram h;
  // Log-normal-ish heavy tail across several orders of magnitude, the
  // shape of per-query response times.
  for (int i = 0; i < 20000; ++i) {
    double v = std::exp(rng.NextGaussian() * 2.0 + 3.0);  // median e^3 µs
    samples.push_back(v);
    h.Add(v);
  }
  for (const double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = Percentile(samples, p);
    const double approx = h.Percentile(p);
    const double lo = LatencyHistogram::BucketLowerBound(exact);
    const double hi = LatencyHistogram::BucketUpperBound(exact);
    EXPECT_GE(approx, lo - 1e-12) << "p" << p;
    EXPECT_LE(approx, hi + 1e-12) << "p" << p;
  }
}

TEST(LatencyHistogramTest, MeanMinMaxAreExact) {
  // The mean comes from the embedded RunningStat, not the buckets: it is
  // bit-identical to a RunningStat fed the same Add sequence.
  RunningStat reference;
  LatencyHistogram h;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextDouble() * 1e4;
    reference.Add(v);
    h.Add(v);
  }
  EXPECT_EQ(h.mean(), reference.mean());
  EXPECT_EQ(h.min(), reference.min());
  EXPECT_EQ(h.max(), reference.max());
  EXPECT_EQ(h.count(), reference.count());
}

TEST(LatencyHistogramTest, MergeMatchesSequential) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram all;
  Rng rng(13);
  for (int i = 0; i < 4000; ++i) {
    const double v = std::exp(rng.NextGaussian() + 2.0);
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (const double p : {50.0, 95.0, 99.0}) {
    // Identical bucket contents -> identical interpolated percentiles.
    EXPECT_DOUBLE_EQ(a.Percentile(p), all.Percentile(p));
  }
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9 * all.mean());
}

TEST(LatencyHistogramTest, EdgeCases) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  h.Add(0.0);  // clamps into the first bucket
  h.Add(5.0);
  h.Add(5.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_GE(h.Percentile(99.0), LatencyHistogram::BucketLowerBound(5.0));
  EXPECT_LE(h.Percentile(99.0), h.max());
  // Quantiles are clamped to the observed range.
  EXPECT_GE(h.Percentile(0.0), 0.0);
  EXPECT_LE(h.Percentile(100.0), 5.0 + 1e-12);
}

// -------------------------------------------------------------- Table ----

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, NumTrimsTrailingZeros) {
  EXPECT_EQ(Table::Num(1.5), "1.5");
  EXPECT_EQ(Table::Num(2.0), "2");
  EXPECT_EQ(Table::Num(0.25, 3), "0.25");
  EXPECT_EQ(Table::Int(-42), "-42");
}

TEST(TableTest, BytesHumanReadable) {
  EXPECT_EQ(Table::Bytes(512), "512.0 B");
  EXPECT_EQ(Table::Bytes(2048), "2.0 KB");
  EXPECT_EQ(Table::Bytes(3ULL << 30), "3.0 GB");
}

TEST(ParseByteSizeTest, Units) {
  EXPECT_EQ(ParseByteSize("512"), 512u);
  EXPECT_EQ(ParseByteSize("16MB"), 16ULL << 20);
  EXPECT_EQ(ParseByteSize("4GB"), 4ULL << 30);
  EXPECT_EQ(ParseByteSize("2kb"), 2048u);
  EXPECT_EQ(ParseByteSize("1TB"), 1ULL << 40);
}

TEST(ParseByteSizeTest, Malformed) {
  EXPECT_EQ(ParseByteSize(""), 0u);
  EXPECT_EQ(ParseByteSize("abc"), 0u);
  EXPECT_EQ(ParseByteSize("12XB"), 0u);
}

// ---------------------------------------------------------- MpmcQueue ----

TEST(MpmcQueueTest, FifoOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.Push(i));
  }
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(MpmcQueueTest, TryPopOnEmpty) {
  MpmcQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpmcQueueTest, CloseDrainsRemainingItems) {
  MpmcQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // rejected after close
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // closed and empty
}

TEST(MpmcQueueTest, ConcurrentProducersConsumers) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto v = q.Pop();
        if (!v.has_value()) {
          return;
        }
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[p].join();
  }
  q.Close();
  for (size_t i = kProducers; i < threads.size(); ++i) {
    threads[i].join();
  }
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), static_cast<int64_t>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace grouting
