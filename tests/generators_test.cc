// Tests for the synthetic graph generators, including parameterized
// property sweeps over seeds.

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/graph/graph_stats.h"
#include "src/graph/traversal.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

TEST(ErdosRenyiTest, SizeAndNoSelfLoops) {
  Graph g = GenerateErdosRenyi(500, 2000, 1);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_LE(g.num_edges(), 2000u);  // dedupe may remove a few
  EXPECT_GE(g.num_edges(), 1800u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_FALSE(g.HasEdge(u, u));
  }
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  Graph a = GenerateErdosRenyi(200, 800, 5);
  Graph b = GenerateErdosRenyi(200, 800, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    auto na = a.OutNeighbors(u);
    auto nb = b.OutNeighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].dst, nb[i].dst);
    }
  }
}

TEST(BarabasiAlbertTest, PowerLawSkew) {
  Graph g = GenerateBarabasiAlbert(5000, 4, 2);
  DegreeStats s = ComputeDegreeStats(g);
  // Preferential attachment: top 1% should own far more than 1% of degree.
  EXPECT_GT(s.top1pct_degree_share, 0.05);
  EXPECT_GT(s.max_total_degree, 50u);
}

TEST(BarabasiAlbertTest, MinimumDegree) {
  Graph g = GenerateBarabasiAlbert(1000, 3, 3);
  // Every non-seed node attached with up to 3 out-edges.
  size_t with_edges = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    with_edges += g.Degree(u) > 0;
  }
  EXPECT_GT(with_edges, 990u);
}

TEST(RMatTest, SkewAndSize) {
  Graph g = GenerateRMat(4096, 40000, 0.57, 0.19, 0.19, 4);
  EXPECT_EQ(g.num_nodes(), 4096u);
  EXPECT_GT(g.num_edges(), 20000u);
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_GT(s.top1pct_degree_share, 0.08);
}

TEST(RMatTest, NonPowerOfTwoNodeCount) {
  Graph g = GenerateRMat(1000, 5000, 0.5, 0.2, 0.2, 5);
  EXPECT_EQ(g.num_nodes(), 1000u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Edge& e : g.OutNeighbors(u)) {
      EXPECT_LT(e.dst, 1000u);
    }
  }
}

TEST(GridTest, DegreesAndDistances) {
  Graph g = GenerateGrid(5, 5);
  EXPECT_EQ(g.num_nodes(), 25u);
  EXPECT_EQ(g.num_edges(), 2u * 5u * 4u);  // right + down edges
  // Corner (0,0) has out-degree 2; bottom-right has 0.
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(24), 0u);
  // Manhattan distance in the bidirected view.
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[24], 8);
  EXPECT_EQ(dist[4], 4);
}

TEST(CommunityGraphTest, IntraCommunityDensity) {
  Graph g = GenerateCommunityGraph(10, 50, 6, 0, 6);
  EXPECT_EQ(g.num_nodes(), 500u);
  // With inter_degree 0, every edge stays inside its community.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Edge& e : g.OutNeighbors(u)) {
      EXPECT_EQ(u / 50, e.dst / 50u);
    }
  }
}

TEST(StarTest, HubDegree) {
  Graph g = GenerateStar(100);
  EXPECT_EQ(g.num_nodes(), 101u);
  EXPECT_EQ(g.OutDegree(0), 100u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.Degree(0), 100u);
  EXPECT_EQ(g.InDegree(50), 1u);
}

TEST(LabelsTest, GeneratorsAssignLabelsInRange) {
  LabelConfig labels;
  labels.num_node_labels = 4;
  labels.num_edge_labels = 8;
  Graph g = GenerateErdosRenyi(300, 900, 7, labels);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(g.node_label(u), 1);
    EXPECT_LE(g.node_label(u), 4);
    for (const Edge& e : g.OutNeighbors(u)) {
      EXPECT_GE(e.label, 1);
      EXPECT_LE(e.label, 8);
    }
  }
}

TEST(LocalityWebTest, SizeAndStructure) {
  LocalityWebConfig cfg;
  cfg.grid_width = 6;
  cfg.grid_height = 6;
  cfg.community_size = 40;
  Graph g = GenerateLocalityWeb(cfg, 8);
  EXPECT_EQ(g.num_nodes(), 6u * 6u * 40u);
  EXPECT_GT(g.num_edges(), g.num_nodes() * cfg.intra_degree / 2);
}

TEST(LocalityWebTest, HubsCreateSkew) {
  LocalityWebConfig cfg;
  cfg.grid_width = 8;
  cfg.grid_height = 8;
  cfg.community_size = 60;
  Graph g = GenerateLocalityWeb(cfg, 9);
  DegreeStats s = ComputeDegreeStats(g);
  // Shared hubs should be far above the organic degree (~intra+inter+hubs).
  EXPECT_GT(s.max_total_degree, 100u);
}

TEST(LocalityWebTest, HighHotspotOverlap) {
  LocalityWebConfig cfg;
  cfg.grid_width = 10;
  cfg.grid_height = 10;
  cfg.community_size = 80;
  Graph g = GenerateLocalityWeb(cfg, 10);
  Rng rng(1);
  const double overlap = HotspotNeighborhoodOverlap(g, 2, 2, 30, rng);
  // The property the paper's routing exploits: nearby nodes share most of
  // their 2-hop neighbourhoods.
  EXPECT_GT(overlap, 0.5);
}

TEST(LocalityWebTest, LargeEffectiveDiameter) {
  LocalityWebConfig cfg;
  cfg.grid_width = 12;
  cfg.grid_height = 12;
  cfg.community_size = 30;
  Graph g = GenerateLocalityWeb(cfg, 11);
  // Distance across the grid must reflect grid geometry (no global
  // shortcuts): opposite corners are many hops apart.
  auto dist = BfsDistances(g, 0);
  int32_t max_dist = 0;
  for (int32_t d : dist) {
    max_dist = std::max(max_dist, d);
  }
  EXPECT_GT(max_dist, 4);
}

// Property sweep: every generator produces valid graphs across seeds.
class GeneratorSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedTest, AllGeneratorsProduceValidGraphs) {
  const uint64_t seed = GetParam();
  LocalityWebConfig web;
  web.grid_width = 4;
  web.grid_height = 4;
  web.community_size = 25;
  const Graph graphs[] = {
      GenerateErdosRenyi(200, 600, seed),
      GenerateBarabasiAlbert(200, 3, seed),
      GenerateRMat(256, 1000, 0.5, 0.2, 0.2, seed),
      GenerateGrid(10, 10),
      GenerateCommunityGraph(5, 40, 4, 1, seed),
      GenerateLocalityWeb(web, seed),
  };
  for (const Graph& g : graphs) {
    EXPECT_GT(g.num_nodes(), 0u);
    uint64_t in_total = 0;
    uint64_t out_total = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      out_total += g.OutDegree(u);
      in_total += g.InDegree(u);
      for (const Edge& e : g.OutNeighbors(u)) {
        ASSERT_LT(e.dst, g.num_nodes());
      }
    }
    // Every out-edge appears exactly once as an in-edge.
    EXPECT_EQ(in_total, out_total);
    EXPECT_EQ(out_total, g.num_edges());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1, 2, 3, 42, 12345));

}  // namespace
}  // namespace grouting
