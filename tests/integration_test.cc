// End-to-end integration tests over the ExperimentEnv harness: the paper's
// qualitative claims must hold on small-scale runs, and both execution
// engines must agree.

#include <gtest/gtest.h>

#include "src/core/grouting.h"

namespace grouting {
namespace {

// A single small env shared by all tests in this file (preprocessing is the
// expensive part; the paper's setup amortises it the same way).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new ExperimentEnv(DatasetId::kWebGraphLike, /*scale=*/0.12, /*seed=*/7);
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  static RunOptions SmallRun(RoutingSchemeKind scheme) {
    RunOptions opts;
    opts.scheme = scheme;
    opts.num_hotspots = 40;
    opts.queries_per_hotspot = 8;
    return opts;
  }

  static ExperimentEnv* env_;
};

ExperimentEnv* IntegrationTest::env_ = nullptr;

TEST_F(IntegrationTest, EnvBuildsGraphOnce) {
  const Graph& g1 = env_->graph();
  const Graph& g2 = env_->graph();
  EXPECT_EQ(&g1, &g2);  // memoised
  EXPECT_GT(g1.num_nodes(), 1000u);
}

TEST_F(IntegrationTest, PreprocessingMemoised) {
  const auto& a = env_->landmarks(24, 2);
  const auto& b = env_->landmarks(24, 2);
  EXPECT_EQ(&a, &b);
  const auto& e1 = env_->embedding(6, 24, 2);
  const auto& e2 = env_->embedding(6, 24, 2);
  EXPECT_EQ(&e1, &e2);
  const auto& i1 = env_->landmark_index(3, 24, 2);
  const auto& i2 = env_->landmark_index(3, 24, 2);
  EXPECT_EQ(&i1, &i2);
}

TEST_F(IntegrationTest, SmartRoutingBeatsBaselinesOnHitRate) {
  RunOptions base = SmallRun(RoutingSchemeKind::kNextReady);
  base.num_landmarks = 24;
  base.min_separation = 2;
  base.dimensions = 6;
  auto next_ready = env_->Run(EngineKind::kSimulated, base);
  base.scheme = RoutingSchemeKind::kEmbed;
  auto embed = env_->Run(EngineKind::kSimulated, base);
  base.scheme = RoutingSchemeKind::kLandmark;
  auto landmark = env_->Run(EngineKind::kSimulated, base);

  // The paper's headline: smart routing gets significantly more cache hits.
  EXPECT_GT(embed.CacheHitRate(), next_ready.CacheHitRate() * 1.3);
  EXPECT_GT(landmark.CacheHitRate(), next_ready.CacheHitRate() * 1.3);
  // And lower response time.
  EXPECT_LT(embed.mean_response_ms, next_ready.mean_response_ms);
}

TEST_F(IntegrationTest, NoCacheSlowerThanCachedSchemes) {
  RunOptions opts = SmallRun(RoutingSchemeKind::kNoCache);
  opts.num_landmarks = 24;
  opts.min_separation = 2;
  auto no_cache = env_->Run(EngineKind::kSimulated, opts);
  EXPECT_EQ(no_cache.cache_hits, 0u);
  opts.scheme = RoutingSchemeKind::kHash;
  auto hash = env_->Run(EngineKind::kSimulated, opts);
  EXPECT_LT(hash.mean_response_ms, no_cache.mean_response_ms);
}

TEST_F(IntegrationTest, TinyCacheWorseThanNoCache) {
  // Paper Fig 9: below ~64MB-equivalent, maintenance costs exceed benefits.
  RunOptions opts = SmallRun(RoutingSchemeKind::kHash);
  opts.num_landmarks = 24;
  opts.min_separation = 2;
  opts.cache_bytes = 8 << 10;  // 8 KB: pure churn
  auto tiny = env_->Run(EngineKind::kSimulated, opts);
  opts.scheme = RoutingSchemeKind::kNoCache;
  opts.cache_bytes = 0;
  auto none = env_->Run(EngineKind::kSimulated, opts);
  EXPECT_GT(tiny.mean_response_ms, none.mean_response_ms);
}

TEST_F(IntegrationTest, ThroughputScalesWithProcessorsUnderEmbed) {
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  opts.num_landmarks = 24;
  opts.min_separation = 2;
  opts.dimensions = 6;
  opts.processors = 1;
  auto p1 = env_->Run(EngineKind::kSimulated, opts);
  opts.processors = 4;
  auto p4 = env_->Run(EngineKind::kSimulated, opts);
  EXPECT_GT(p4.throughput_qps, p1.throughput_qps * 2.0);
}

TEST_F(IntegrationTest, CoupledBaselinesFarBelowDecoupled) {
  // Fig 7's qualitative claim at mini scale: the decoupled system beats the
  // coupled BSP baseline by a wide margin on throughput.
  const Graph& g = env_->graph();
  auto queries = env_->HotspotWorkload(2, 2, 25, 4);

  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  opts.num_landmarks = 24;
  opts.min_separation = 2;
  opts.dimensions = 6;
  auto decoupled = env_->Run(EngineKind::kSimulated, opts, queries);

  CoupledConfig cc;
  cc.num_servers = 12;
  auto parts = MultilevelPartitioner().Partition(g, 12);
  SedgeLikeSystem sedge(g, cc, parts, 0);
  auto coupled = sedge.Run(queries);

  EXPECT_GT(decoupled.throughput_qps, coupled.throughput_qps * 3.0);
}

TEST_F(IntegrationTest, GraphUpdateRobustness) {
  // Fig 10 mini-check: preprocessing on an 50% subgraph, queries on the
  // full graph, must still beat baseline routing after incremental fills.
  const Graph& g = env_->graph();
  Rng rng(13);
  std::vector<uint8_t> keep(g.num_nodes(), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    keep[u] = rng.NextBool(0.5);
  }
  LandmarkConfig lc;
  lc.num_landmarks = 24;
  lc.min_separation = 2;
  lc.seed = 3;
  auto lms = LandmarkSet::Select(g, lc, &keep);
  auto index = LandmarkIndex::Build(std::move(lms), 3);
  size_t added = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!keep[u]) {
      added += index.AddNodeIncremental(g, u);
    }
  }
  EXPECT_GT(added, 0u);
  // After incremental fill, most nodes should have a finite distance row.
  size_t finite = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (uint32_t p = 0; p < 3; ++p) {
      if (index.Distance(u, p) != kUnreachableU16) {
        ++finite;
        break;
      }
    }
  }
  EXPECT_GT(finite, g.num_nodes() * 9 / 10);
}

}  // namespace
}  // namespace grouting
