// Tests for routing strategies and the router: decision correctness, load
// balancing, EMA tracking, and query-stealing semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/graph/generators.h"
#include "src/routing/router.h"
#include "src/routing/strategy.h"

namespace grouting {
namespace {

RouterContext Ctx(const std::vector<uint32_t>& lengths) {
  RouterContext ctx;
  ctx.num_processors = static_cast<uint32_t>(lengths.size());
  ctx.queue_lengths = lengths;
  return ctx;
}

Query Q(NodeId node, uint64_t id = 0) {
  Query q;
  q.node = node;
  q.id = id;
  return q;
}

TEST(NextReadyTest, PicksLeastLoaded) {
  NextReadyStrategy s;
  std::vector<uint32_t> lengths{5, 2, 7};
  EXPECT_EQ(s.Route(0, Ctx(lengths)), 1u);
}

TEST(NextReadyTest, RoundRobinOnTies) {
  NextReadyStrategy s;
  std::vector<uint32_t> lengths{0, 0, 0};
  std::set<uint32_t> seen;
  for (int i = 0; i < 3; ++i) {
    seen.insert(s.Route(0, Ctx(lengths)));
  }
  EXPECT_EQ(seen.size(), 3u);  // rotor spreads ties
}

TEST(HashTest, DeterministicAndIgnoresLoad) {
  HashStrategy s;
  std::vector<uint32_t> a{0, 100};
  std::vector<uint32_t> b{100, 0};
  EXPECT_EQ(s.Route(42, Ctx(a)), s.Route(42, Ctx(b)));
}

TEST(HashTest, SpreadsNodes) {
  HashStrategy s;
  std::vector<uint32_t> lengths(7, 0);
  std::vector<int> counts(7, 0);
  for (NodeId u = 0; u < 7000; ++u) {
    counts[s.Route(u, Ctx(lengths))] += 1;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);
  }
}

class SmartRoutingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = GenerateGrid(20, 20);
    LandmarkConfig lc;
    lc.num_landmarks = 8;
    lc.min_separation = 3;
    lc.seed = 1;
    landmarks_ = std::make_unique<LandmarkSet>(LandmarkSet::Select(graph_, lc));
    index_ = std::make_unique<LandmarkIndex>(LandmarkIndex::Build(*landmarks_, 4));
    EmbedConfig ec;
    ec.dimensions = 4;
    ec.seed = 2;
    ec.num_threads = 1;
    embedding_ =
        std::make_unique<GraphEmbedding>(GraphEmbedding::Build(*landmarks_, ec));
  }

  Graph graph_;
  std::unique_ptr<LandmarkSet> landmarks_;
  std::unique_ptr<LandmarkIndex> index_;
  std::unique_ptr<GraphEmbedding> embedding_;
};

TEST_F(SmartRoutingFixture, LandmarkRoutesToNearestWhenIdle) {
  LandmarkStrategy s(index_.get(), 20.0);
  std::vector<uint32_t> lengths(4, 0);
  for (NodeId u = 0; u < graph_.num_nodes(); u += 37) {
    EXPECT_EQ(s.Route(u, Ctx(lengths)), index_->NearestProcessor(u));
  }
}

TEST_F(SmartRoutingFixture, LandmarkLoadTermOverridesDistance) {
  LandmarkStrategy s(index_.get(), 1.0);  // tiny load factor: load dominates
  const NodeId u = 0;
  const uint32_t nearest = index_->NearestProcessor(u);
  std::vector<uint32_t> lengths(4, 0);
  lengths[nearest] = 1000;  // overload the preferred processor
  EXPECT_NE(s.Route(u, Ctx(lengths)), nearest);
}

TEST_F(SmartRoutingFixture, LandmarkTopologyAwareLocality) {
  // Adjacent grid nodes should usually route to the same processor.
  LandmarkStrategy s(index_.get(), 1e9);
  std::vector<uint32_t> lengths(4, 0);
  int agree = 0;
  int total = 0;
  for (NodeId u = 0; u + 1 < graph_.num_nodes(); u += 11) {
    if (u % 20 == 19) {
      continue;  // row boundary
    }
    agree += s.Route(u, Ctx(lengths)) == s.Route(u + 1, Ctx(lengths));
    ++total;
  }
  EXPECT_GT(agree * 100, total * 70);
}

TEST_F(SmartRoutingFixture, EmbedConsecutiveNearbyQueriesStick) {
  EmbedStrategy s(embedding_.get(), 0.5, 20.0, 4);
  std::vector<uint32_t> lengths(4, 0);
  // A run of queries in one grid corner must converge onto one processor.
  const uint32_t first = s.Route(0, Ctx(lengths));
  int same = 0;
  for (NodeId u : {1u, 20u, 21u, 2u, 40u}) {
    same += s.Route(u, Ctx(lengths)) == first;
  }
  EXPECT_GE(same, 4);
}

TEST_F(SmartRoutingFixture, EmbedMeanMovesTowardDispatchedQueries) {
  EmbedStrategy s(embedding_.get(), 0.5, 20.0, 4);
  std::vector<uint32_t> lengths(4, 0);
  const NodeId corner = 399;  // far grid corner
  const uint32_t p = s.Route(corner, Ctx(lengths));
  std::vector<double> mean_before(s.MeanCoordinates(p).begin(),
                                  s.MeanCoordinates(p).end());
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(s.Route(corner, Ctx(lengths)), p);
  }
  const double d_before = embedding_->DistanceToPoint(corner, mean_before);
  const double d_after = embedding_->DistanceToPoint(
      corner, std::vector<double>(s.MeanCoordinates(p).begin(),
                                  s.MeanCoordinates(p).end()));
  EXPECT_LT(d_after, d_before + 1e-9);
}

TEST_F(SmartRoutingFixture, EmbedFallsBackForUnembeddedNode) {
  EmbedStrategy s(embedding_.get(), 0.5, 20.0, 4);
  std::vector<uint32_t> lengths{3, 0, 3, 3};
  // Node id beyond the embedding: next-ready fallback picks least loaded.
  EXPECT_EQ(s.Route(9999999, Ctx(lengths)), 1u);
}

TEST_F(SmartRoutingFixture, EmbedOnDispatchPullsStealersMeanTowardQuery) {
  EmbedStrategy s(embedding_.get(), 0.5, 20.0, 4);
  const NodeId u = 0;
  const uint32_t thief = 2;
  const std::vector<double> before(s.MeanCoordinates(thief).begin(),
                                   s.MeanCoordinates(thief).end());
  // Dispatch to the routed target is a no-op (Route already updated it)...
  s.OnDispatch(u, 1, 1);
  // ...but a steal pulls the THIEF's mean toward the query's coordinates.
  s.OnDispatch(u, thief, 1);
  const std::vector<double> after(s.MeanCoordinates(thief).begin(),
                                  s.MeanCoordinates(thief).end());
  EXPECT_LT(embedding_->DistanceToPoint(u, after),
            embedding_->DistanceToPoint(u, before));
}

TEST_F(SmartRoutingFixture, CloneGivesIndependentEmaState) {
  EmbedStrategy s(embedding_.get(), 0.5, 20.0, 4);
  auto clone = s.Clone();
  ASSERT_NE(clone, nullptr);
  // Clones start with identical state...
  ASSERT_EQ(clone->GossipState().size(), s.GossipState().size());
  for (size_t i = 0; i < s.GossipState().size(); ++i) {
    EXPECT_DOUBLE_EQ(clone->GossipState()[i], s.GossipState()[i]);
  }
  // ...and diverge independently once only one of them routes.
  std::vector<uint32_t> lengths(4, 0);
  s.Route(0, Ctx(lengths));
  bool diverged = false;
  for (size_t i = 0; i < s.GossipState().size(); ++i) {
    diverged |= clone->GossipState()[i] != s.GossipState()[i];
  }
  EXPECT_TRUE(diverged);
}

TEST_F(SmartRoutingFixture, MergeRemoteStateBlendsEma) {
  EmbedStrategy a(embedding_.get(), 0.5, 20.0, 4);
  auto b = a.Clone();
  std::vector<uint32_t> lengths(4, 0);
  for (NodeId u : {0u, 1u, 20u, 399u, 398u, 379u}) {
    a.Route(u, Ctx(lengths));
  }
  // Full weight copies the remote state exactly; weight 0 is a no-op.
  auto c = b->Clone();
  c->MergeRemoteState(a, 1.0);
  for (size_t i = 0; i < a.GossipState().size(); ++i) {
    EXPECT_DOUBLE_EQ(c->GossipState()[i], a.GossipState()[i]);
  }
  auto d = b->Clone();
  d->MergeRemoteState(a, 0.0);
  for (size_t i = 0; i < b->GossipState().size(); ++i) {
    EXPECT_DOUBLE_EQ(d->GossipState()[i], b->GossipState()[i]);
  }
  // A partial blend lands strictly between the two endpoints.
  b->MergeRemoteState(a, 0.5);
  for (size_t i = 0; i < a.GossipState().size(); ++i) {
    const double lo = std::min(a.GossipState()[i], d->GossipState()[i]);
    const double hi = std::max(a.GossipState()[i], d->GossipState()[i]);
    EXPECT_GE(b->GossipState()[i], lo - 1e-12);
    EXPECT_LE(b->GossipState()[i], hi + 1e-12);
  }
}

TEST_F(SmartRoutingFixture, StatelessStrategiesHaveEmptyGossipState) {
  NextReadyStrategy nr;
  HashStrategy h;
  LandmarkStrategy lm(index_.get(), 20.0);
  EXPECT_TRUE(nr.GossipState().empty());
  EXPECT_TRUE(h.GossipState().empty());
  EXPECT_TRUE(lm.GossipState().empty());
  // Their clones route identically to the originals.
  auto h2 = h.Clone();
  std::vector<uint32_t> lengths(4, 0);
  for (NodeId u = 0; u < 64; ++u) {
    EXPECT_EQ(h2->Route(u, Ctx(lengths)), h.Route(u, Ctx(lengths)));
  }
}

TEST_F(SmartRoutingFixture, DecisionCostGrowsWithDimensions) {
  const CostModel cm;
  EmbedStrategy s(embedding_.get(), 0.5, 20.0, 4);
  LandmarkStrategy l(index_.get(), 20.0);
  EXPECT_GE(s.DecisionCostUs(cm, 4), l.DecisionCostUs(cm, 4));
}

// --------------------------------------------------------------- Router --

TEST(RouterTest, EnqueueRoutesToStrategyChoice) {
  Router router(std::make_unique<HashStrategy>(), 4);
  HashStrategy reference;
  std::vector<uint32_t> zeros(4, 0);
  for (NodeId u = 0; u < 50; ++u) {
    EXPECT_EQ(router.Enqueue(Q(u, u)), reference.Route(u, Ctx(zeros)));
  }
  EXPECT_EQ(router.pending(), 50u);
}

TEST(RouterTest, NextForProcessorDrainsOwnQueueFifo) {
  Router router(std::make_unique<HashStrategy>(), 2);
  // Find two nodes hashing to processor 0.
  HashStrategy reference;
  std::vector<uint32_t> zeros(2, 0);
  std::vector<NodeId> nodes;
  for (NodeId u = 0; nodes.size() < 3; ++u) {
    if (reference.Route(u, Ctx(zeros)) == 0) {
      nodes.push_back(u);
    }
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    router.Enqueue(Q(nodes[i], i));
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto q = router.NextForProcessor(0);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->id, i);  // FIFO
  }
  EXPECT_FALSE(router.NextForProcessor(0).has_value());
}

TEST(RouterTest, StealingFromLongestQueue) {
  // Strategy pinning everything to processor 0.
  class PinStrategy : public RoutingStrategy {
   public:
    std::string name() const override { return "pin"; }
    uint32_t Route(NodeId, const RouterContext&) override { return 0; }
  };
  Router router(std::make_unique<PinStrategy>(), 3);
  for (uint64_t i = 0; i < 6; ++i) {
    router.Enqueue(Q(1, i));
  }
  // Processor 2 has nothing; it must steal from processor 0.
  auto stolen = router.NextForProcessor(2);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(router.stats().steals, 1u);
  // The oldest query is stolen (head-of-line fairness).
  EXPECT_EQ(stolen->id, 0u);
  EXPECT_EQ(router.pending(), 5u);
}

TEST(RouterTest, StealDispatchReportsThiefToStrategy) {
  // The strategy must observe the STEALING processor as the dispatch target
  // (and the routed one separately), so EMA-style state can track the cache
  // that is actually being warmed.
  class SpyPinStrategy : public RoutingStrategy {
   public:
    std::string name() const override { return "spy_pin"; }
    uint32_t Route(NodeId, const RouterContext&) override { return 0; }
    void OnDispatch(NodeId, uint32_t processor, uint32_t routed) override {
      dispatches.push_back({processor, routed});
    }
    std::vector<std::pair<uint32_t, uint32_t>> dispatches;
  };
  auto spy = std::make_unique<SpyPinStrategy>();
  SpyPinStrategy* view = spy.get();
  Router router(std::move(spy), 3);
  router.Enqueue(Q(1, 0));
  router.Enqueue(Q(2, 1));

  ASSERT_TRUE(router.NextForProcessor(0).has_value());  // own queue
  ASSERT_TRUE(router.NextForProcessor(2).has_value());  // stolen from 0
  ASSERT_EQ(view->dispatches.size(), 2u);
  EXPECT_EQ(view->dispatches[0], (std::pair<uint32_t, uint32_t>{0, 0}));
  EXPECT_EQ(view->dispatches[1], (std::pair<uint32_t, uint32_t>{2, 0}));
}

TEST(RouterTest, StealingDisabled) {
  class PinStrategy : public RoutingStrategy {
   public:
    std::string name() const override { return "pin"; }
    uint32_t Route(NodeId, const RouterContext&) override { return 0; }
  };
  RouterConfig cfg;
  cfg.enable_stealing = false;
  Router router(std::make_unique<PinStrategy>(), 2, cfg);
  router.Enqueue(Q(1, 0));
  EXPECT_FALSE(router.NextForProcessor(1).has_value());
  EXPECT_TRUE(router.NextForProcessor(0).has_value());
}

TEST(RouterTest, QueueLengthsTrackEnqueues) {
  Router router(std::make_unique<NextReadyStrategy>(), 3);
  router.Enqueue(Q(0, 0));
  router.Enqueue(Q(1, 1));
  router.Enqueue(Q(2, 2));
  auto lengths = router.QueueLengths();
  uint32_t total = 0;
  for (uint32_t l : lengths) {
    total += l;
  }
  EXPECT_EQ(total, 3u);
  // NextReady balances: no queue longer than 1.
  for (uint32_t l : lengths) {
    EXPECT_LE(l, 1u);
  }
}

TEST(RouterTest, DispatchCountsPerProcessor) {
  Router router(std::make_unique<NextReadyStrategy>(), 2);
  for (uint64_t i = 0; i < 10; ++i) {
    router.Enqueue(Q(static_cast<NodeId>(i), i));
  }
  size_t dispatched = 0;
  while (router.HasPending()) {
    for (uint32_t p = 0; p < 2; ++p) {
      if (router.NextForProcessor(p).has_value()) {
        ++dispatched;
      }
    }
  }
  EXPECT_EQ(dispatched, 10u);
  EXPECT_EQ(router.stats().dispatched, 10u);
  EXPECT_EQ(router.stats().per_processor[0] + router.stats().per_processor[1], 10u);
}

TEST(SchemeNamesTest, AllNamed) {
  EXPECT_EQ(RoutingSchemeKindName(RoutingSchemeKind::kNextReady), "next_ready");
  EXPECT_EQ(RoutingSchemeKindName(RoutingSchemeKind::kHash), "hash");
  EXPECT_EQ(RoutingSchemeKindName(RoutingSchemeKind::kLandmark), "landmark");
  EXPECT_EQ(RoutingSchemeKindName(RoutingSchemeKind::kEmbed), "embed");
  EXPECT_EQ(RoutingSchemeKindName(RoutingSchemeKind::kNoCache), "no_cache");
}

}  // namespace
}  // namespace grouting
