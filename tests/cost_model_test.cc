// Tests for the network/cost model and the DES cost accounting it drives.

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/net/cost_model.h"
#include "src/sim/decoupled_sim.h"
#include "src/workload/workload.h"

namespace grouting {
namespace {

TEST(NetworkProfileTest, InfinibandFasterThanEthernet) {
  const auto ib = NetworkProfile::Infiniband();
  const auto eth = NetworkProfile::Ethernet();
  EXPECT_LT(ib.one_way_us, eth.one_way_us);
  EXPECT_LT(ib.per_kb_us, eth.per_kb_us);
  EXPECT_LT(ib.RoundTripUs(1024), eth.RoundTripUs(1024));
}

TEST(NetworkProfileTest, RoundTripScalesWithPayload) {
  const auto ib = NetworkProfile::Infiniband();
  EXPECT_GT(ib.RoundTripUs(1 << 20), ib.RoundTripUs(1 << 10));
  // Zero payload still costs two propagation legs.
  EXPECT_DOUBLE_EQ(ib.RoundTripUs(0), 2.0 * ib.one_way_us);
}

TEST(CostModelTest, DefaultsNamedCorrectly) {
  EXPECT_EQ(CostModel::InfinibandDefaults().net.name, "infiniband");
  EXPECT_EQ(CostModel::EthernetDefaults().net.name, "ethernet");
}

class CostKnobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = GenerateCommunityGraph(8, 40, 5, 1, 3);
    WorkloadConfig wc;
    wc.num_hotspots = 15;
    wc.queries_per_hotspot = 4;
    wc.seed = 5;
    queries_ = GenerateHotspotWorkload(graph_, wc);
  }

  ClusterMetrics RunWith(const CostModel& cost, bool use_cache = true) {
    ClusterConfig sc;
    sc.num_processors = 3;
    sc.num_storage_servers = 2;
    sc.processor.cache_bytes = graph_.TotalAdjacencyBytes() + (1 << 20);
    sc.processor.use_cache = use_cache;
    sc.cost = cost;
    DecoupledClusterSim sim(graph_, sc, std::make_unique<HashStrategy>());
    return sim.Run(queries_);
  }

  Graph graph_;
  std::vector<Query> queries_;
};

TEST_F(CostKnobTest, HigherPerValueCostSlowsMissesOnly) {
  CostModel cheap;
  cheap.storage_per_value_us = 0.1;
  CostModel expensive = cheap;
  expensive.storage_per_value_us = 10.0;
  const auto fast = RunWith(cheap, /*use_cache=*/false);
  const auto slow = RunWith(expensive, /*use_cache=*/false);
  // Everything is a miss without a cache: per-value cost dominates.
  EXPECT_GT(slow.mean_response_ms, fast.mean_response_ms * 3);
}

TEST_F(CostKnobTest, CacheMaintenanceCostVisible) {
  CostModel free_cache;
  free_cache.cache_lookup_us = 0.0;
  free_cache.cache_insert_us = 0.0;
  CostModel costly_cache = free_cache;
  costly_cache.cache_lookup_us = 5.0;
  costly_cache.cache_insert_us = 10.0;
  const auto fast = RunWith(free_cache);
  const auto slow = RunWith(costly_cache);
  EXPECT_GT(slow.mean_response_ms, fast.mean_response_ms);
}

TEST_F(CostKnobTest, ComputeCostAffectsEveryVisit) {
  CostModel light;
  light.compute_per_node_us = 0.01;
  CostModel heavy = light;
  heavy.compute_per_node_us = 5.0;
  const auto fast = RunWith(light);
  const auto slow = RunWith(heavy);
  EXPECT_GT(slow.mean_response_ms, fast.mean_response_ms * 2);
}

TEST_F(CostKnobTest, RouterDecisionCostChargedPerQuery) {
  CostModel cheap;
  cheap.route_base_us = 0.0;
  cheap.route_per_proc_us = 0.0;
  CostModel pricey = cheap;
  pricey.route_base_us = 200.0;  // absurd, to make it visible
  const auto fast = RunWith(cheap);
  const auto slow = RunWith(pricey);
  EXPECT_GT(slow.mean_response_ms, fast.mean_response_ms);
}

TEST_F(CostKnobTest, VirtualTimeIndependentOfWallTime) {
  // Two identical runs must produce bit-identical virtual-time metrics.
  const auto a = RunWith(CostModel::InfinibandDefaults());
  const auto b = RunWith(CostModel::InfinibandDefaults());
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
  EXPECT_DOUBLE_EQ(a.mean_response_ms, b.mean_response_ms);
}

}  // namespace
}  // namespace grouting
