// Tests for the partitioners: coverage/balance invariants for all of them,
// cut-quality ordering (multilevel beats hash on community graphs), and
// vertex-cut replication properties.

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generators.h"
#include "src/partition/metrics.h"
#include "src/partition/multilevel.h"
#include "src/partition/partitioner.h"
#include "src/partition/vertex_cut.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

void ExpectValidAssignment(const PartitionAssignment& a, size_t n, uint32_t k) {
  ASSERT_EQ(a.size(), n);
  for (PartitionId p : a) {
    EXPECT_LT(p, k);
  }
}

TEST(HashPartitionerTest, CoversAllPartitions) {
  Graph g = GenerateErdosRenyi(1000, 3000, 1);
  HashPartitioner part;
  auto a = part.Partition(g, 4);
  ExpectValidAssignment(a, 1000, 4);
  auto sizes = PartitionSizes(a, 4);
  for (size_t s : sizes) {
    EXPECT_GT(s, 150u);  // roughly balanced
  }
}

TEST(HashPartitionerTest, PlaceMatchesPartition) {
  Graph g = GenerateErdosRenyi(100, 300, 2);
  HashPartitioner part;
  auto a = part.Partition(g, 3);
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_EQ(a[u], part.Place(u, 3));
  }
}

TEST(HashPartitionerTest, DeterministicAcrossInstances) {
  HashPartitioner p1;
  HashPartitioner p2;
  for (NodeId u = 0; u < 200; ++u) {
    EXPECT_EQ(p1.Place(u, 7), p2.Place(u, 7));
  }
}

TEST(RangePartitionerTest, ContiguousAndBalanced) {
  Graph g = GenerateErdosRenyi(103, 300, 3);  // deliberately not divisible
  RangePartitioner part;
  auto a = part.Partition(g, 4);
  ExpectValidAssignment(a, 103, 4);
  // Non-decreasing partition ids over node ids.
  for (NodeId u = 1; u < 103; ++u) {
    EXPECT_GE(a[u], a[u - 1]);
  }
  auto sizes = PartitionSizes(a, 4);
  EXPECT_LE(*std::max_element(sizes.begin(), sizes.end()) -
                *std::min_element(sizes.begin(), sizes.end()),
            1u);
}

TEST(LdgPartitionerTest, ValidAndBalancedWithinSlack) {
  Graph g = GenerateCommunityGraph(20, 50, 5, 1, 4);
  LdgPartitioner part(42, 1.05);
  auto a = part.Partition(g, 5);
  ExpectValidAssignment(a, g.num_nodes(), 5);
  auto m = EvaluatePartition(g, a, 5);
  EXPECT_LT(m.balance, 1.25);
}

TEST(LdgPartitionerTest, BeatsHashOnCommunityGraph) {
  Graph g = GenerateCommunityGraph(20, 50, 6, 1, 5);
  auto hash_cut = EvaluatePartition(g, HashPartitioner().Partition(g, 4), 4);
  auto ldg_cut = EvaluatePartition(g, LdgPartitioner().Partition(g, 4), 4);
  EXPECT_LT(ldg_cut.cut_fraction, hash_cut.cut_fraction);
}

TEST(MultilevelTest, ValidAssignment) {
  Graph g = GenerateCommunityGraph(16, 40, 5, 1, 6);
  MultilevelPartitioner part;
  auto a = part.Partition(g, 4);
  ExpectValidAssignment(a, g.num_nodes(), 4);
}

TEST(MultilevelTest, RespectsBalanceCap) {
  Graph g = GenerateCommunityGraph(16, 40, 5, 1, 7);
  MultilevelConfig cfg;
  cfg.imbalance = 0.05;
  MultilevelPartitioner part(cfg);
  auto m = EvaluatePartition(g, part.Partition(g, 4), 4);
  EXPECT_LT(m.balance, 1.12);  // cap + rounding slop
}

TEST(MultilevelTest, MuchBetterCutThanHashOnCommunities) {
  Graph g = GenerateCommunityGraph(32, 50, 6, 1, 8);
  auto hash_m = EvaluatePartition(g, HashPartitioner().Partition(g, 8), 8);
  auto ml_m = EvaluatePartition(g, MultilevelPartitioner().Partition(g, 8), 8);
  // The whole point of METIS-like partitioning: a fraction of hash's cut.
  EXPECT_LT(ml_m.cut_fraction, hash_m.cut_fraction * 0.5);
}

TEST(MultilevelTest, SinglePartitionTrivial) {
  Graph g = GenerateErdosRenyi(100, 300, 9);
  auto a = MultilevelPartitioner().Partition(g, 1);
  for (PartitionId p : a) {
    EXPECT_EQ(p, 0u);
  }
}

TEST(MultilevelTest, HandlesStarGraph) {
  // Matching stalls on stars; the partitioner must still terminate and
  // produce a valid (if imperfect) assignment.
  Graph g = GenerateStar(500);
  auto a = MultilevelPartitioner().Partition(g, 4);
  ExpectValidAssignment(a, 501, 4);
}

TEST(MultilevelTest, HandlesEmptyAndTinyGraphs) {
  Graph empty;
  EXPECT_TRUE(MultilevelPartitioner().Partition(empty, 4).empty());
  GraphBuilder b;
  b.AddNode();
  b.AddNode();
  Graph two = b.Build();
  auto a = MultilevelPartitioner().Partition(two, 4);
  ExpectValidAssignment(a, 2, 4);
}

TEST(MultilevelTest, DeterministicInSeed) {
  Graph g = GenerateCommunityGraph(10, 30, 4, 1, 10);
  MultilevelConfig cfg;
  cfg.seed = 77;
  auto a = MultilevelPartitioner(cfg).Partition(g, 4);
  auto b = MultilevelPartitioner(cfg).Partition(g, 4);
  EXPECT_EQ(a, b);
}

// Parameterized balance/validity sweep over k for all node partitioners.
class PartitionerSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PartitionerSweepTest, AllPartitionersValidForK) {
  const uint32_t k = GetParam();
  Graph g = GenerateCommunityGraph(12, 40, 4, 1, 11);
  HashPartitioner hash;
  RangePartitioner range;
  LdgPartitioner ldg;
  MultilevelPartitioner ml;
  for (Partitioner* part : std::initializer_list<Partitioner*>{&hash, &range, &ldg, &ml}) {
    auto a = part->Partition(g, k);
    ExpectValidAssignment(a, g.num_nodes(), k);
    auto m = EvaluatePartition(g, a, k);
    EXPECT_EQ(m.num_partitions, k);
    EXPECT_LE(m.cut_fraction, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, PartitionerSweepTest, ::testing::Values(1, 2, 3, 7, 12));

// ----------------------------------------------------------- VertexCut --

TEST(VertexCutTest, EveryEdgeAssigned) {
  Graph g = GenerateBarabasiAlbert(500, 4, 12);
  auto cut = GreedyVertexCut(g, 4, 1);
  ASSERT_EQ(cut.edge_partition.size(), g.num_edges());
  for (uint32_t p : cut.edge_partition) {
    EXPECT_LT(p, 4u);
  }
  uint64_t total = 0;
  for (uint64_t c : cut.edges_per_partition) {
    total += c;
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(VertexCutTest, ReplicasConsistentWithEdges) {
  Graph g = GenerateErdosRenyi(200, 800, 13);
  auto cut = GreedyVertexCut(g, 3, 2);
  // Walk edges in CSR order; both endpoints must list the edge's partition.
  size_t idx = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Edge& e : g.OutNeighbors(u)) {
      const uint32_t p = cut.edge_partition[idx++];
      EXPECT_TRUE(std::binary_search(cut.node_replicas[u].begin(),
                                     cut.node_replicas[u].end(), p));
      EXPECT_TRUE(std::binary_search(cut.node_replicas[e.dst].begin(),
                                     cut.node_replicas[e.dst].end(), p));
    }
  }
}

TEST(VertexCutTest, EveryNodeHasMaster) {
  Graph g = GenerateStar(100);
  auto cut = GreedyVertexCut(g, 4, 3);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_FALSE(cut.node_replicas[u].empty());
    EXPECT_EQ(cut.master[u], cut.node_replicas[u][0]);
    EXPECT_LT(cut.master[u], 4u);
  }
}

TEST(VertexCutTest, ReplicationFactorBounds) {
  Graph g = GenerateBarabasiAlbert(1000, 5, 14);
  auto cut = GreedyVertexCut(g, 8, 4);
  const double rf = cut.ReplicationFactor();
  EXPECT_GE(rf, 1.0);
  EXPECT_LE(rf, 8.0);
}

TEST(VertexCutTest, PureStarIsGreedyDegenerateButValid) {
  // A PURE star is the greedy heuristic's documented degenerate case: every
  // spoke has exactly one edge, so the "one endpoint assigned" rule keeps
  // all edges with the hub's machine. The result must still be valid.
  Graph g = GenerateStar(2000);
  auto cut = GreedyVertexCut(g, 4, 5);
  EXPECT_GE(cut.node_replicas[0].size(), 1u);
  uint64_t total = 0;
  for (uint64_t c : cut.edges_per_partition) {
    total += c;
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(VertexCutTest, HubsSplitWhenSpokesHaveOtherEdges) {
  // On natural graphs (spokes with additional edges pulling them to other
  // machines), high-degree hubs DO get replicated — PowerGraph's point.
  constexpr NodeId kHub = 400;  // highest id: spokes place before hub edges
  Graph hub_graph = [] {
    GraphBuilder b;
    // Ring among 400 spokes (gives each spoke independent placement)...
    for (NodeId u = 0; u < 400; ++u) {
      b.AddEdge(u, (u + 1) % 400);
    }
    // ...plus a hub connected to every spoke.
    for (NodeId u = 0; u < 400; ++u) {
      b.AddEdge(kHub, u);
    }
    return b.Build();
  }();
  auto cut = GreedyVertexCut(hub_graph, 4, 6);
  EXPECT_GE(cut.node_replicas[kHub].size(), 2u);
}

TEST(VertexCutTest, BetterReplicationThanRandomOnPowerLaw) {
  Graph g = GenerateBarabasiAlbert(2000, 6, 15);
  auto greedy = GreedyVertexCut(g, 8, 6);
  // Random edge placement replication factor ~ E[distinct partitions per
  // node's edges]; greedy should be significantly lower.
  Rng rng(7);
  std::vector<std::set<uint32_t>> reps(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Edge& e : g.OutNeighbors(u)) {
      const uint32_t p = static_cast<uint32_t>(rng.NextBounded(8));
      reps[u].insert(p);
      reps[e.dst].insert(p);
    }
  }
  double random_rf = 0;
  for (const auto& r : reps) {
    random_rf += static_cast<double>(std::max<size_t>(r.size(), 1));
  }
  random_rf /= static_cast<double>(g.num_nodes());
  EXPECT_LT(greedy.ReplicationFactor(), random_rf);
}

}  // namespace
}  // namespace grouting
