// Tests for landmark selection, distance tables, pivot assignment, the
// d(u,p) router index, and the incremental update paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/graph/generators.h"
#include "src/graph/traversal.h"
#include "src/landmark/landmark.h"
#include "src/landmark/landmark_index.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

LandmarkConfig SmallConfig(size_t count, int32_t sep = 2) {
  LandmarkConfig cfg;
  cfg.num_landmarks = count;
  cfg.min_separation = sep;
  cfg.seed = 5;
  return cfg;
}

TEST(LandmarkSetTest, SelectsRequestedCount) {
  Graph g = GenerateErdosRenyi(500, 2500, 1);
  auto lms = LandmarkSet::Select(g, SmallConfig(16));
  EXPECT_EQ(lms.count(), 16u);
  std::set<NodeId> distinct(lms.landmark_nodes().begin(), lms.landmark_nodes().end());
  EXPECT_EQ(distinct.size(), 16u);
}

TEST(LandmarkSetTest, DistancesMatchBfs) {
  Graph g = GenerateBarabasiAlbert(300, 3, 2);
  auto lms = LandmarkSet::Select(g, SmallConfig(8));
  for (size_t l = 0; l < lms.count(); ++l) {
    auto ref = BfsDistances(g, lms.landmark_node(l));
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const uint16_t d = lms.Distance(l, u);
      if (ref[u] == kUnreachable) {
        EXPECT_EQ(d, kUnreachableU16);
      } else {
        EXPECT_EQ(d, static_cast<uint16_t>(ref[u]));
      }
    }
  }
}

TEST(LandmarkSetTest, PrefersHighDegreeNodes) {
  Graph g = GenerateStar(200);  // node 0 is the only hub
  auto lms = LandmarkSet::Select(g, SmallConfig(1));
  ASSERT_EQ(lms.count(), 1u);
  EXPECT_EQ(lms.landmark_node(0), 0u);
}

TEST(LandmarkSetTest, SeparationEnforcedWhenPossible) {
  // Two far-apart communities: landmarks at separation >= 3 must not both
  // come from the same dense community when alternatives exist.
  Graph g = GenerateGrid(30, 30);
  auto lms = LandmarkSet::Select(g, SmallConfig(4, 5));
  for (size_t a = 0; a < lms.count(); ++a) {
    for (size_t b = a + 1; b < lms.count(); ++b) {
      if (lms.stats().separation_relaxed == 0) {
        EXPECT_GE(lms.LandmarkDistance(a, b), 5);
      }
    }
  }
}

TEST(LandmarkSetTest, LandmarkDistanceSymmetricStructure) {
  Graph g = GenerateErdosRenyi(200, 1000, 3);
  auto lms = LandmarkSet::Select(g, SmallConfig(6));
  for (size_t a = 0; a < lms.count(); ++a) {
    EXPECT_EQ(lms.LandmarkDistance(a, a), 0);
    for (size_t b = 0; b < lms.count(); ++b) {
      // Bidirected BFS => symmetric distances.
      EXPECT_EQ(lms.LandmarkDistance(a, b), lms.LandmarkDistance(b, a));
    }
  }
}

TEST(LandmarkSetTest, EstimateDistancesUpperBoundsTruth) {
  Graph g = GenerateErdosRenyi(300, 1500, 4);
  auto lms = LandmarkSet::Select(g, SmallConfig(8));
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto est = lms.EstimateDistances(g, u);
    for (size_t l = 0; l < lms.count(); ++l) {
      if (est[l] == kUnreachableU16) {
        continue;
      }
      // Estimate = 1 + min neighbour distance >= true distance; and at most
      // true distance + 2 (one neighbour lies on a shortest path).
      EXPECT_GE(est[l] + 1u, lms.Distance(l, u));
      EXPECT_LE(est[l], lms.Distance(l, u) + 2u);
    }
  }
}

TEST(LandmarkSetTest, RestrictedSelectionStaysInAllowedSet) {
  Graph g = GenerateErdosRenyi(400, 2000, 7);
  std::vector<uint8_t> allowed(g.num_nodes(), 0);
  for (NodeId u = 0; u < 200; ++u) {
    allowed[u] = 1;
  }
  auto lms = LandmarkSet::Select(g, SmallConfig(8), &allowed);
  for (NodeId l : lms.landmark_nodes()) {
    EXPECT_LT(l, 200u);
  }
  EXPECT_FALSE(lms.IsKnown(300));
  EXPECT_TRUE(lms.IsKnown(100));
}

TEST(LandmarkSetTest, MemoryBytesScalesWithLandmarks) {
  Graph g = GenerateErdosRenyi(200, 800, 8);
  auto small = LandmarkSet::Select(g, SmallConfig(4));
  auto large = LandmarkSet::Select(g, SmallConfig(16));
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

// --------------------------------------------------------------- Index --

TEST(LandmarkIndexTest, DistanceIsMinOverAssignedLandmarks) {
  Graph g = GenerateErdosRenyi(300, 1200, 9);
  auto lms = LandmarkSet::Select(g, SmallConfig(12));
  auto index = LandmarkIndex::Build(lms, 3);
  ASSERT_EQ(index.landmark_processor().size(), 12u);
  for (NodeId u = 0; u < g.num_nodes(); u += 17) {
    for (uint32_t p = 0; p < 3; ++p) {
      uint16_t expected = kUnreachableU16;
      for (size_t l = 0; l < lms.count(); ++l) {
        if (index.landmark_processor()[l] == p) {
          expected = std::min(expected, lms.Distance(l, u));
        }
      }
      EXPECT_EQ(index.Distance(u, p), expected);
    }
  }
}

TEST(LandmarkIndexTest, EveryProcessorGetsLandmarks) {
  Graph g = GenerateGrid(25, 25);
  auto lms = LandmarkSet::Select(g, SmallConfig(12, 3));
  auto index = LandmarkIndex::Build(lms, 4);
  std::set<uint32_t> used(index.landmark_processor().begin(),
                          index.landmark_processor().end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(LandmarkIndexTest, PivotsAreFarApart) {
  Graph g = GenerateGrid(20, 20);
  auto lms = LandmarkSet::Select(g, SmallConfig(10, 3));
  auto index = LandmarkIndex::Build(lms, 2);
  ASSERT_EQ(index.pivots().size(), 2u);
  // The two pivots are the farthest landmark pair.
  uint16_t best = 0;
  for (size_t a = 0; a < lms.count(); ++a) {
    for (size_t b = a + 1; b < lms.count(); ++b) {
      const uint16_t d = lms.LandmarkDistance(a, b);
      if (d != kUnreachableU16) {
        best = std::max(best, d);
      }
    }
  }
  EXPECT_EQ(lms.LandmarkDistance(index.pivots()[0], index.pivots()[1]), best);
}

TEST(LandmarkIndexTest, NearestProcessorAgreesWithDistances) {
  Graph g = GenerateErdosRenyi(200, 1000, 10);
  auto index = LandmarkIndex::Build(LandmarkSet::Select(g, SmallConfig(8)), 4);
  for (NodeId u = 0; u < g.num_nodes(); u += 13) {
    const uint32_t p = index.NearestProcessor(u);
    for (uint32_t other = 0; other < 4; ++other) {
      EXPECT_LE(index.Distance(u, p), index.Distance(u, other));
    }
  }
}

TEST(LandmarkIndexTest, MoreProcessorsThanLandmarks) {
  Graph g = GenerateErdosRenyi(100, 400, 11);
  auto index = LandmarkIndex::Build(LandmarkSet::Select(g, SmallConfig(3)), 8);
  EXPECT_EQ(index.num_processors(), 8u);
  // Routing must still work: nearest processor is valid.
  EXPECT_LT(index.NearestProcessor(0), 8u);
}

TEST(LandmarkIndexTest, RouterStorageIsLinearInNodes) {
  Graph g = GenerateErdosRenyi(500, 1500, 12);
  auto index = LandmarkIndex::Build(LandmarkSet::Select(g, SmallConfig(8)), 4);
  EXPECT_EQ(index.RouterStorageBytes(), 500u * 4u * sizeof(uint16_t));
  EXPECT_GT(index.PreprocessStorageBytes(), 0u);
}

TEST(LandmarkIndexTest, IncrementalNodeAddFillsRow) {
  Graph g = GenerateErdosRenyi(300, 1500, 13);
  std::vector<uint8_t> allowed(g.num_nodes(), 1);
  // Hide the last 50 nodes from preprocessing.
  for (NodeId u = 250; u < 300; ++u) {
    allowed[u] = 0;
  }
  auto lms = LandmarkSet::Select(g, SmallConfig(8), &allowed);
  auto index = LandmarkIndex::Build(std::move(lms), 3);
  // Before: unknown rows are unreachable.
  bool some_unreachable = false;
  for (uint32_t p = 0; p < 3; ++p) {
    some_unreachable |= index.Distance(299, p) == kUnreachableU16;
  }
  EXPECT_TRUE(some_unreachable);
  // Incrementally add; with 1500 edges node 299 almost surely has a known
  // neighbour.
  const bool added = index.AddNodeIncremental(g, 299);
  if (added) {
    uint16_t best = kUnreachableU16;
    for (uint32_t p = 0; p < 3; ++p) {
      best = std::min(best, index.Distance(299, p));
    }
    EXPECT_NE(best, kUnreachableU16);
  }
}

TEST(LandmarkIndexTest, RefreshAroundEdgeImprovesEstimates) {
  // Path graph: adding a shortcut edge shortens distances near it.
  GraphBuilder b;
  for (NodeId u = 0; u + 1 < 30; ++u) {
    b.AddEdge(u, u + 1);
  }
  Graph before = b.Build();
  LandmarkConfig cfg = SmallConfig(1, 1);
  auto lms = LandmarkSet::Select(before, cfg);
  auto index = LandmarkIndex::Build(std::move(lms), 1);
  const uint16_t old_d29 = index.Distance(29, 0);

  // Rebuild the graph with a shortcut from the landmark side to the tail.
  GraphBuilder b2;
  for (NodeId u = 0; u + 1 < 30; ++u) {
    b2.AddEdge(u, u + 1);
  }
  b2.AddEdge(0, 28);
  Graph after = b2.Build();
  index.RefreshAroundEdge(after, 0, 28, 2);
  EXPECT_LE(index.Distance(29, 0), old_d29);
  EXPECT_LE(index.Distance(28, 0), 2);
}

// Property: d(u,p) respects the landmark triangle bound — routing distances
// are real graph distances, so d(u,p) can never be less than
// dist(u, nearest landmark of p).
class LandmarkIndexSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LandmarkIndexSweep, IndexConsistentForProcessorCount) {
  const uint32_t procs = GetParam();
  Graph g = GenerateCommunityGraph(8, 40, 4, 1, 20);
  auto index = LandmarkIndex::Build(LandmarkSet::Select(g, SmallConfig(10)), procs);
  EXPECT_EQ(index.num_processors(), procs);
  for (NodeId u = 0; u < g.num_nodes(); u += 29) {
    uint32_t reachable = 0;
    for (uint32_t p = 0; p < procs; ++p) {
      reachable += index.Distance(u, p) != kUnreachableU16;
    }
    EXPECT_GT(reachable, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, LandmarkIndexSweep, ::testing::Values(1, 2, 3, 5, 7));

}  // namespace
}  // namespace grouting
