// Online-mutation correctness harness.
//
// Three layers, bottom-up:
//   1. A model check over the storage tier: every length-3 interleaving of
//      {mutate, migrate, replicate/demote, read} on tracked keys, each
//      sequence replayed on a fresh tier against a trivially-correct
//      single-map reference — after every step, every tracked key must read
//      back exactly the reference adjacency (exactly-once, no torn or
//      resurrected blobs).
//   2. A 32-seed cross-engine mutation storm: the SAME timed mutation
//      schedule races real migrations, replica churn, async fetches, and a
//      compressed cache on the threaded engine while the sim applies it in
//      virtual time; both engines must answer every query exactly once
//      (order-independent id checksums) and apply every mutation.
//   3. Quiesced-schedule parity: with every mutation applied before the
//      first arrival the engines' full answer VALUES must match — and a
//      schedule that only materialises withheld vertices must be
//      answer-identical to a plain full-load run.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/core/grouting.h"

namespace grouting {
namespace {

// ------------------------------------------------------- model check ----

// Reference state: present keys -> adjacency, mutated by the same rules the
// tier documents (idempotent edge halves, absent endpoints dropped).
using ReferenceMap = std::map<NodeId, AdjacencyEntry>;

AdjacencyEntry EntryFromGraph(const Graph& g, NodeId u) {
  AdjacencyEntry e;
  e.node = u;
  e.node_label = g.node_label(u);
  e.out.assign(g.OutNeighbors(u).begin(), g.OutNeighbors(u).end());
  e.in.assign(g.InNeighbors(u).begin(), g.InNeighbors(u).end());
  return e;
}

void ReferenceApply(ReferenceMap* ref, const Graph& g, const GraphMutation& m) {
  switch (m.kind) {
    case GraphMutation::Kind::kAddVertex:
      (*ref)[m.u] = EntryFromGraph(g, m.u);
      break;
    case GraphMutation::Kind::kAddEdge:
    case GraphMutation::Kind::kRemoveEdge: {
      const bool insert = m.kind == GraphMutation::Kind::kAddEdge;
      auto half = [&](NodeId key, NodeId other, bool out) {
        auto it = ref->find(key);
        if (it == ref->end()) {
          return;  // withheld endpoint: dropped, as in the tier
        }
        std::vector<Edge>& list = out ? it->second.out : it->second.in;
        const auto pos = std::find_if(list.begin(), list.end(),
                                      [other](const Edge& e) { return e.dst == other; });
        if (insert && pos == list.end()) {
          list.push_back(Edge{other, m.label});
        } else if (!insert && pos != list.end()) {
          list.erase(pos);
        }
      };
      half(m.u, m.v, /*out=*/true);
      half(m.v, m.u, /*out=*/false);
      break;
    }
  }
}

Graph ModelGraph() {
  GraphBuilder b;
  for (NodeId u = 0; u < 8; ++u) {
    b.AddNode(u, static_cast<Label>(u + 1));
  }
  b.AddEdge(0, 1, 1);
  b.AddEdge(0, 2, 2);
  b.AddEdge(1, 2, 3);
  b.AddEdge(2, 3, 4);
  b.AddEdge(3, 0, 5);
  b.AddEdge(4, 0, 6);
  b.AddEdge(5, 1, 7);
  b.AddEdge(6, 2, 8);
  b.AddEdge(7, 0, 9);  // withheld node: edges live only in the universe
  b.AddEdge(2, 7, 10);
  return b.Build();
}

TEST(MutationModelCheck, AllLength3InterleavingsMatchReference) {
  const Graph g = ModelGraph();
  std::vector<uint8_t> keep(g.num_nodes(), 1);
  keep[7] = 0;  // node 7 materialises only through kAddVertex
  const std::vector<NodeId> tracked = {0, 1, 2, 3, 7};

  // Op alphabet: three mutations, a migration of node 0's partition, and
  // the replica promote/demote pair for the same partition. Reads happen
  // after EVERY step (all tracked keys, through the public read path).
  enum Op : int {
    kOpAddVertex = 0,
    kOpAddEdge,
    kOpRemoveEdge,
    kOpMigrate,
    kOpPromote,
    kOpDemote,
    kNumOps,
  };

  for (int a = 0; a < kNumOps; ++a) {
    for (int b = 0; b < kNumOps; ++b) {
      for (int c = 0; c < kNumOps; ++c) {
        SCOPED_TRACE(::testing::Message() << "sequence " << a << "," << b << "," << c);
        StorageTier tier(2);
        tier.EnableRepartitioning(/*partitions_per_server=*/2);
        tier.EnableReplication();
        tier.EnableMutations(g);
        tier.LoadGraphSubset(g, keep);

        ReferenceMap ref;
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          if (keep[u]) {
            ref[u] = EntryFromGraph(g, u);
          }
        }

        const uint32_t q = tier.partition_map()->PartitionOf(0);
        for (const int op : {a, b, c}) {
          switch (op) {
            case kOpAddVertex: {
              GraphMutation m;
              m.kind = GraphMutation::Kind::kAddVertex;
              m.u = 7;
              tier.ApplyMutation(m);
              ReferenceApply(&ref, g, m);
              break;
            }
            case kOpAddEdge: {
              GraphMutation m;
              m.kind = GraphMutation::Kind::kAddEdge;
              m.u = 0;
              m.v = 3;
              m.label = 11;
              tier.ApplyMutation(m);
              ReferenceApply(&ref, g, m);
              break;
            }
            case kOpRemoveEdge: {
              GraphMutation m;
              m.kind = GraphMutation::Kind::kRemoveEdge;
              m.u = 0;
              m.v = 1;
              tier.ApplyMutation(m);
              ReferenceApply(&ref, g, m);
              break;
            }
            case kOpMigrate:
              tier.MigratePartition(q, 1u - tier.partition_map()->owner(q));
              break;
            case kOpPromote:
              if (tier.partition_map()->replica_count(q) == 0) {
                tier.AddReplica(q, 1u - tier.partition_map()->owner(q));
              }
              break;
            case kOpDemote:
              if (tier.partition_map()->replica_count(q) > 0) {
                tier.RemoveReplica(
                    q, PartitionMap::StampReplica(
                           tier.partition_map()->ReplicaStamp(q), 0));
              }
              break;
            default:
              break;
          }

          // Read step: every tracked key, through the public read path AND
          // the stats-free healing path, against the reference.
          for (const NodeId u : tracked) {
            const auto it = ref.find(u);
            for (const AdjacencyPtr& got : {tier.Get(u), tier.PeekCurrent(u)}) {
              if (it == ref.end()) {
                EXPECT_EQ(got, nullptr) << "key " << u << " after op " << op;
                continue;
              }
              ASSERT_NE(got, nullptr) << "key " << u << " after op " << op;
              EXPECT_EQ(got->node, it->second.node) << "key " << u;
              EXPECT_EQ(got->node_label, it->second.node_label) << "key " << u;
              EXPECT_EQ(got->out, it->second.out) << "key " << u;
              EXPECT_EQ(got->in, it->second.in) << "key " << u;
            }
          }
        }
      }
    }
  }
}

// Version stamps are monotonic per key and only move on writes that touch
// the key; with mutations off every stamp reads 0 (comparisons degenerate
// to no-ops on the read path).
TEST(MutationModelCheck, VersionStampsAreMonotonicAndScoped) {
  const Graph g = ModelGraph();
  StorageTier off(2);
  off.LoadGraph(g);
  EXPECT_FALSE(off.mutations_enabled());
  EXPECT_EQ(off.NodeVersion(0), 0u);

  StorageTier tier(2);
  tier.EnableMutations(g);
  tier.LoadGraph(g);
  ASSERT_TRUE(tier.mutations_enabled());
  EXPECT_EQ(tier.NodeVersion(0), 0u);

  GraphMutation m;
  m.kind = GraphMutation::Kind::kAddEdge;
  m.u = 0;
  m.v = 3;
  m.label = 11;
  EXPECT_EQ(tier.ApplyMutation(m), 2u);  // u's out-half + v's in-half
  EXPECT_EQ(tier.NodeVersion(0), 1u);
  EXPECT_EQ(tier.NodeVersion(3), 1u);
  EXPECT_EQ(tier.NodeVersion(1), 0u);  // untouched keys keep their stamp

  // Idempotent re-insert: no write, no version bump.
  EXPECT_EQ(tier.ApplyMutation(m), 0u);
  EXPECT_EQ(tier.NodeVersion(0), 1u);

  m.kind = GraphMutation::Kind::kRemoveEdge;
  EXPECT_EQ(tier.ApplyMutation(m), 2u);
  EXPECT_EQ(tier.NodeVersion(0), 2u);
  EXPECT_EQ(tier.NodeVersion(3), 2u);
}

// ------------------------------------------------- cross-engine storm ----

class MutationEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new ExperimentEnv(DatasetId::kWebGraphLike, /*scale=*/0.08, /*seed=*/23);
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  static std::vector<AnsweredQuery> SortedAnswers(const ClusterEngine& engine) {
    std::vector<AnsweredQuery> answers = engine.answers();
    std::sort(answers.begin(), answers.end(),
              [](const AnsweredQuery& a, const AnsweredQuery& b) {
                return a.query_id < b.query_id;
              });
    return answers;
  }

  // Order-independent fold over the answered-id set: the storm's
  // exactly-once signature (values may legitimately depend on write/read
  // timing; the id SET may not).
  static uint64_t IdChecksum(const std::vector<AnsweredQuery>& answers) {
    uint64_t sum = 0;
    for (const AnsweredQuery& a : answers) {
      SplitMix64 chain(a.query_id);
      sum ^= chain.Next();
    }
    return sum;
  }

  static ExperimentEnv* env_;
};

ExperimentEnv* MutationEngineTest::env_ = nullptr;

class MutationStorm : public MutationEngineTest,
                      public ::testing::WithParamInterface<uint64_t> {};

TEST_P(MutationStorm, ThreadedMatchesSimExactlyOnceUnderConcurrentChurn) {
  const uint64_t seed = GetParam();
  const Graph& g = env_->graph();
  const auto queries = env_->SkewedWorkload(/*sessions=*/12, /*queries=*/140,
                                            /*zipf_s=*/1.3);

  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.processors = 3;
  opts.storage_servers = 4;
  opts.num_landmarks = 12;
  opts.min_separation = 2;
  opts.dimensions = 4;
  // Small compressed cache + async window + repartitioning + replication:
  // mutations race every piece of machinery at once, and the versioned
  // cache staleness check is live on the compressed path.
  opts.cache_bytes = 32 << 10;
  opts.adjacency_encoding = AdjacencyEncoding::kDeltaVarint;
  opts.cache_compressed = true;
  opts.max_inflight_batches = 3;
  opts.repartition_threshold = 1.1;
  opts.repartition_cap = 4;
  opts.partitions_per_server = 4;
  opts.replication_top_k = 2;
  opts.gossip_period_us = 50.0;
  opts.arrival_gap_us = 2.0;
  opts.enable_mutations = true;
  opts.index_refresh_period_us = 100.0;
  const ClusterConfig config = env_->MakeClusterConfig(opts);

  MutationScheduleConfig mc;
  mc.num_mutations = 64;
  mc.gap_us = 20.0;
  mc.seed = seed ^ 0x66;
  const auto schedule = GenerateMutationSchedule(g, {}, mc);

  auto sim = MakeClusterEngine(EngineKind::kSimulated, g, config,
                               env_->MakeStrategy(opts));
  auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, config,
                                    env_->MakeStrategy(opts));
  sim->set_mutation_schedule(schedule);
  threaded->set_mutation_schedule(schedule);
  const ClusterMetrics sim_m = sim->Run(queries);
  const ClusterMetrics thr_m = threaded->Run(queries);

  // Exactly-once: every query answered on both engines, no duplicates, and
  // the order-independent id checksums agree.
  ASSERT_EQ(sim_m.queries, queries.size());
  ASSERT_EQ(thr_m.queries, queries.size());
  const auto sim_answers = SortedAnswers(*sim);
  const auto thr_answers = SortedAnswers(*threaded);
  ASSERT_EQ(sim_answers.size(), queries.size());
  ASSERT_EQ(thr_answers.size(), queries.size());
  for (size_t i = 0; i < sim_answers.size(); ++i) {
    ASSERT_EQ(sim_answers[i].query_id, thr_answers[i].query_id) << "answer " << i;
    if (i > 0) {
      ASSERT_NE(sim_answers[i].query_id, sim_answers[i - 1].query_id)
          << "duplicate answer";
    }
  }
  EXPECT_EQ(IdChecksum(sim_answers), IdChecksum(thr_answers));

  // Every scheduled mutation lands on both engines, even those timed past
  // the last arrival.
  EXPECT_EQ(sim_m.mutations_applied, mc.num_mutations);
  EXPECT_EQ(thr_m.mutations_applied, mc.num_mutations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationStorm,
                         ::testing::Range(uint64_t{1}, uint64_t{33}));

// ------------------------------------------------ quiesced-state parity --

constexpr RoutingSchemeKind kAllSchemes[] = {
    RoutingSchemeKind::kNoCache, RoutingSchemeKind::kNextReady,
    RoutingSchemeKind::kHash, RoutingSchemeKind::kLandmark,
    RoutingSchemeKind::kEmbed};

TEST_F(MutationEngineTest, MutationParityForEveryScheme) {
  // Quiesced edge churn (every entry applies before the first arrival)
  // pins the graph state both engines query, so FULL answer values must
  // match across engines for every scheme.
  const Graph& g = env_->graph();
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);

  MutationScheduleConfig mc;
  mc.num_mutations = 48;
  mc.gap_us = 0.0;  // quiesced
  mc.seed = 91;
  const auto schedule = GenerateMutationSchedule(g, {}, mc);

  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    RunOptions opts;
    opts.scheme = scheme;
    opts.processors = 3;
    opts.storage_servers = 2;
    opts.num_landmarks = 12;
    opts.min_separation = 2;
    opts.dimensions = 4;
    opts.enable_mutations = true;
    const ClusterConfig config = env_->MakeClusterConfig(opts);

    auto sim = MakeClusterEngine(EngineKind::kSimulated, g, config,
                                 env_->MakeStrategy(opts));
    auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, config,
                                      env_->MakeStrategy(opts));
    sim->set_mutation_schedule(schedule);
    threaded->set_mutation_schedule(schedule);
    const ClusterMetrics sim_m = sim->Run(queries);
    const ClusterMetrics thr_m = threaded->Run(queries);
    ASSERT_EQ(sim_m.queries, queries.size());
    ASSERT_EQ(thr_m.queries, queries.size());
    EXPECT_EQ(sim_m.mutations_applied, mc.num_mutations);
    EXPECT_EQ(thr_m.mutations_applied, mc.num_mutations);

    const auto sim_answers = SortedAnswers(*sim);
    const auto thr_answers = SortedAnswers(*threaded);
    ASSERT_EQ(sim_answers.size(), thr_answers.size());
    for (size_t i = 0; i < sim_answers.size(); ++i) {
      const AnsweredQuery& a = sim_answers[i];
      const AnsweredQuery& b = thr_answers[i];
      ASSERT_EQ(a.query_id, b.query_id) << "answer " << i;
      EXPECT_EQ(a.result.type, b.result.type) << "query " << a.query_id;
      EXPECT_EQ(a.result.aggregate, b.result.aggregate) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_end, b.result.walk_end) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_distinct_nodes, b.result.walk_distinct_nodes)
          << "query " << a.query_id;
      EXPECT_EQ(a.result.reachable, b.result.reachable) << "query " << a.query_id;
      EXPECT_EQ(a.result.distance, b.result.distance) << "query " << a.query_id;
    }
  }
}

TEST_F(MutationEngineTest, QuiescedMaterialisationMatchesFullLoad) {
  // Withhold ~25% of the nodes at load and materialise every one of them
  // with quiesced kAddVertex entries: since a vertex add writes the blob
  // the full load would have written, both engines must answer exactly as
  // a plain mutations-off full-load run does.
  const Graph& g = env_->graph();
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);

  Rng rng(57);
  std::vector<uint8_t> keep(g.num_nodes(), 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    keep[u] = rng.NextBool(0.75);
  }
  MutationScheduleConfig mc;
  mc.num_mutations = static_cast<size_t>(
      std::count(keep.begin(), keep.end(), static_cast<uint8_t>(0)));
  mc.gap_us = 0.0;  // quiesced
  mc.weight_add_edge = 0.0;
  mc.weight_remove_edge = 0.0;
  mc.seed = 58;
  const auto schedule = GenerateMutationSchedule(g, keep, mc);
  ASSERT_GT(schedule.size(), 0u);

  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.processors = 3;
  opts.storage_servers = 2;
  opts.num_landmarks = 12;
  opts.min_separation = 2;
  opts.dimensions = 4;

  RunOptions mut_opts = opts;
  mut_opts.enable_mutations = true;
  ClusterConfig mut_config = env_->MakeClusterConfig(mut_opts);
  mut_config.mutation_preload_keep = keep;

  auto reference = MakeClusterEngine(EngineKind::kSimulated, g,
                                     env_->MakeClusterConfig(opts),
                                     env_->MakeStrategy(opts));
  auto sim = MakeClusterEngine(EngineKind::kSimulated, g, mut_config,
                               env_->MakeStrategy(mut_opts));
  auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, mut_config,
                                    env_->MakeStrategy(mut_opts));
  sim->set_mutation_schedule(schedule);
  threaded->set_mutation_schedule(schedule);
  reference->Run(queries);
  const ClusterMetrics sim_m = sim->Run(queries);
  const ClusterMetrics thr_m = threaded->Run(queries);
  ASSERT_EQ(sim_m.queries, queries.size());
  ASSERT_EQ(thr_m.queries, queries.size());
  EXPECT_EQ(sim_m.mutations_applied, schedule.size());
  EXPECT_EQ(thr_m.mutations_applied, schedule.size());

  const auto ref_answers = SortedAnswers(*reference);
  const auto sim_answers = SortedAnswers(*sim);
  const auto thr_answers = SortedAnswers(*threaded);
  ASSERT_EQ(sim_answers.size(), ref_answers.size());
  ASSERT_EQ(thr_answers.size(), ref_answers.size());
  for (size_t i = 0; i < ref_answers.size(); ++i) {
    const AnsweredQuery& r = ref_answers[i];
    for (const AnsweredQuery* other : {&sim_answers[i], &thr_answers[i]}) {
      ASSERT_EQ(r.query_id, other->query_id) << "answer " << i;
      EXPECT_EQ(r.result.aggregate, other->result.aggregate) << "query " << r.query_id;
      EXPECT_EQ(r.result.walk_end, other->result.walk_end) << "query " << r.query_id;
      EXPECT_EQ(r.result.reachable, other->result.reachable) << "query " << r.query_id;
      EXPECT_EQ(r.result.distance, other->result.distance) << "query " << r.query_id;
    }
  }
}

}  // namespace
}  // namespace grouting
