// Tests for the coupled baseline systems (SEDGE-like BSP, PowerGraph-like
// GAS): answer agreement with the reference executor, cost-model sanity,
// and the effect of partition quality.

#include <gtest/gtest.h>

#include "src/baselines/coupled.h"
#include "src/graph/generators.h"
#include "src/partition/multilevel.h"
#include "src/partition/partitioner.h"
#include "src/workload/workload.h"

namespace grouting {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = GenerateCommunityGraph(12, 40, 5, 1, 5);
    WorkloadConfig wc;
    wc.num_hotspots = 12;
    wc.queries_per_hotspot = 4;
    wc.seed = 31;
    queries_ = GenerateHotspotWorkload(graph_, wc);
  }

  Graph graph_;
  std::vector<Query> queries_;
};

TEST_F(BaselinesTest, TraceQueryLevelsMatchesExecutor) {
  DirectGraphSource reference(graph_);
  for (size_t i = 0; i < 10; ++i) {
    const auto lf = TraceQueryLevels(graph_, queries_[i]);
    const auto expected = ExecuteQuery(queries_[i], reference);
    EXPECT_EQ(lf.result.aggregate, expected.aggregate);
    EXPECT_EQ(lf.result.reachable, expected.reachable);
    EXPECT_EQ(lf.result.walk_end, expected.walk_end);
    EXPECT_FALSE(lf.levels.empty());
    EXPECT_EQ(lf.levels[0].size(), 1u);  // level 0 = the query node
  }
}

TEST_F(BaselinesTest, SedgeAnswersMatchReference) {
  CoupledConfig cfg;
  cfg.num_servers = 4;
  auto parts = MultilevelPartitioner().Partition(graph_, 4);
  SedgeLikeSystem sedge(graph_, cfg, parts, 1.0);
  auto metrics = sedge.Run(queries_);
  EXPECT_EQ(metrics.queries, queries_.size());
  DirectGraphSource reference(graph_);
  for (size_t i = 0; i < queries_.size(); ++i) {
    const auto expected = ExecuteQuery(queries_[i], reference);
    EXPECT_EQ(sedge.results()[i].aggregate, expected.aggregate);
    EXPECT_EQ(sedge.results()[i].reachable, expected.reachable);
  }
}

TEST_F(BaselinesTest, PowerGraphAnswersMatchReference) {
  CoupledConfig cfg;
  cfg.num_servers = 4;
  auto cut = GreedyVertexCut(graph_, 4, 3);
  PowerGraphLikeSystem pg(graph_, cfg, std::move(cut), 0.5);
  auto metrics = pg.Run(queries_);
  EXPECT_EQ(metrics.queries, queries_.size());
  DirectGraphSource reference(graph_);
  for (size_t i = 0; i < queries_.size(); ++i) {
    const auto expected = ExecuteQuery(queries_[i], reference);
    EXPECT_EQ(pg.results()[i].aggregate, expected.aggregate);
    EXPECT_EQ(pg.results()[i].reachable, expected.reachable);
  }
}

TEST_F(BaselinesTest, SedgeMetricsSanity) {
  CoupledConfig cfg;
  cfg.num_servers = 4;
  auto parts = MultilevelPartitioner().Partition(graph_, 4);
  SedgeLikeSystem sedge(graph_, cfg, parts, 2.5);
  auto metrics = sedge.Run(queries_);
  EXPECT_GT(metrics.makespan_us, 0.0);
  EXPECT_GT(metrics.throughput_qps, 0.0);
  EXPECT_GT(metrics.mean_response_ms, 0.0);
  EXPECT_GT(metrics.supersteps, queries_.size());  // >= 1 superstep per query
  EXPECT_DOUBLE_EQ(metrics.partition_seconds, 2.5);
}

TEST_F(BaselinesTest, BspBarrierDominatesSmallQueries) {
  // With an enormous barrier cost, response time must scale with superstep
  // count rather than data volume.
  CoupledConfig cheap;
  cheap.num_servers = 4;
  cheap.superstep_overhead_us = 1.0;
  CoupledConfig expensive = cheap;
  expensive.superstep_overhead_us = 50000.0;
  auto parts = MultilevelPartitioner().Partition(graph_, 4);
  SedgeLikeSystem a(graph_, cheap, parts, 0);
  SedgeLikeSystem b(graph_, expensive, parts, 0);
  const double ra = a.Run(queries_).mean_response_ms;
  const double rb = b.Run(queries_).mean_response_ms;
  EXPECT_GT(rb, ra * 10);
}

TEST_F(BaselinesTest, BetterPartitionFewerMessages) {
  CoupledConfig cfg;
  cfg.num_servers = 4;
  auto good = MultilevelPartitioner().Partition(graph_, 4);
  auto bad = HashPartitioner().Partition(graph_, 4);
  SedgeLikeSystem sys_good(graph_, cfg, good, 0);
  SedgeLikeSystem sys_bad(graph_, cfg, bad, 0);
  const auto m_good = sys_good.Run(queries_);
  const auto m_bad = sys_bad.Run(queries_);
  // Community-structured graph: the multilevel partition cuts fewer edges,
  // so BSP execution sends fewer cross-server messages.
  EXPECT_LT(m_good.network_messages, m_bad.network_messages);
}

TEST_F(BaselinesTest, PowerGraphCheaperRoundsThanBsp) {
  CoupledConfig cfg;
  cfg.num_servers = 4;
  auto parts = MultilevelPartitioner().Partition(graph_, 4);
  SedgeLikeSystem sedge(graph_, cfg, parts, 0);
  auto cut = GreedyVertexCut(graph_, 4, 3);
  PowerGraphLikeSystem pg(graph_, cfg, std::move(cut), 0);
  // Default knobs: GAS rounds are much cheaper than BSP supersteps.
  EXPECT_GT(pg.Run(queries_).throughput_qps, sedge.Run(queries_).throughput_qps);
}

TEST_F(BaselinesTest, RandomWalksPayPerStepInBsp) {
  // A 6-step walk needs ~6 supersteps; an aggregation of h=2 needs ~3.
  CoupledConfig cfg;
  cfg.num_servers = 2;
  auto parts = RangePartitioner().Partition(graph_, 2);
  Query walk;
  walk.type = QueryType::kRandomWalk;
  walk.node = 0;
  walk.hops = 6;
  walk.seed = 1;
  Query agg;
  agg.type = QueryType::kNeighborAggregation;
  agg.node = 0;
  agg.hops = 2;
  SedgeLikeSystem sys(graph_, cfg, parts, 0);
  std::vector<Query> walk_only{walk};
  std::vector<Query> agg_only{agg};
  const auto m_walk = sys.Run(walk_only);
  SedgeLikeSystem sys2(graph_, cfg, parts, 0);
  const auto m_agg = sys2.Run(agg_only);
  EXPECT_GT(m_walk.supersteps, m_agg.supersteps);
}

}  // namespace
}  // namespace grouting
