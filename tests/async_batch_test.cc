// Async storage batches: the issue/probe/complete pipeline behind
// max_inflight_batches.
//
//   * storage layer — KvStore/StorageServer multiget parity with sequential
//     gets, and the MultiGetHandle completing across threads;
//   * window=1 identity — the synchronous path is byte-identical run to run
//     and answer-identical to every async window, on both engines;
//   * exactly-once — a migration-concurrent adaptive run with the async
//     pipeline live still answers every query exactly once;
//   * model check — the sim's per-batch completion events never reorder a
//     query's level semantics, whatever the window;
//   * shape — mean response is monotone-or-flat in the window at a small
//     cache on the sim engine (the bench_fig_async_batch claim).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "src/core/grouting.h"

namespace grouting {
namespace {

constexpr RoutingSchemeKind kAllSchemes[] = {
    RoutingSchemeKind::kNoCache, RoutingSchemeKind::kNextReady,
    RoutingSchemeKind::kHash, RoutingSchemeKind::kLandmark,
    RoutingSchemeKind::kEmbed};

class AsyncBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new ExperimentEnv(DatasetId::kWebGraphLike, /*scale=*/0.1, /*seed=*/77);
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  static RunOptions SmallRun(RoutingSchemeKind scheme, uint32_t window) {
    RunOptions opts;
    opts.scheme = scheme;
    opts.processors = 3;
    opts.storage_servers = 2;
    opts.num_landmarks = 24;
    opts.min_separation = 2;
    opts.dimensions = 6;
    opts.num_hotspots = 20;
    opts.queries_per_hotspot = 4;
    opts.max_inflight_batches = window;
    return opts;
  }

  static std::vector<AnsweredQuery> SortedAnswers(const ClusterEngine& engine) {
    std::vector<AnsweredQuery> answers = engine.answers();
    std::sort(answers.begin(), answers.end(),
              [](const AnsweredQuery& a, const AnsweredQuery& b) {
                return a.query_id < b.query_id;
              });
    return answers;
  }

  static void ExpectSameAnswers(const std::vector<AnsweredQuery>& a,
                                const std::vector<AnsweredQuery>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].query_id, b[i].query_id) << "answer " << i;
      EXPECT_EQ(a[i].result.aggregate, b[i].result.aggregate)
          << "query " << a[i].query_id;
      EXPECT_EQ(a[i].result.walk_end, b[i].result.walk_end) << "query " << a[i].query_id;
      EXPECT_EQ(a[i].result.walk_distinct_nodes, b[i].result.walk_distinct_nodes)
          << "query " << a[i].query_id;
      EXPECT_EQ(a[i].result.reachable, b[i].result.reachable)
          << "query " << a[i].query_id;
      EXPECT_EQ(a[i].result.distance, b[i].result.distance) << "query " << a[i].query_id;
    }
  }

  static ExperimentEnv* env_;
};

ExperimentEnv* AsyncBatchTest::env_ = nullptr;

// --- storage layer -------------------------------------------------------

TEST(LogStructuredStoreMultiGet, MatchesSequentialGets) {
  LogStructuredStore store(/*segment_bytes=*/256);
  std::vector<uint8_t> blob = {1, 2, 3, 4};
  for (uint64_t k = 0; k < 32; ++k) {
    blob[0] = static_cast<uint8_t>(k);
    store.Put(k, blob);
  }
  const std::vector<uint64_t> keys = {3, 999, 0, 31, 7, 7};
  const auto batched = store.MultiGet(keys);
  ASSERT_EQ(batched.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const auto single = store.Get(keys[i]);
    ASSERT_EQ(batched[i].has_value(), single.has_value()) << "key " << keys[i];
    if (single.has_value()) {
      EXPECT_TRUE(std::equal(batched[i]->begin(), batched[i]->end(), single->begin(),
                             single->end()));
    }
  }
  // 6 multiget probes + 6 verification gets.
  EXPECT_EQ(store.stats().gets, 12u);
}

TEST(StorageServerMultiGet, StatsMatchSequentialGets) {
  GraphBuilder builder;
  for (NodeId u = 0; u + 1 < 8; ++u) {
    builder.AddEdge(u, u + 1);
  }
  const Graph g = builder.Build();

  StorageTier sequential(2);
  StorageTier batched(2);
  sequential.LoadGraph(g);
  batched.LoadGraph(g);

  const std::vector<NodeId> nodes = {0, 2, 4, 100};  // 100 is absent
  std::vector<AdjacencyPtr> singles;
  for (NodeId u : nodes) {
    singles.push_back(sequential.server(0).Get(u));
  }
  const auto multi = batched.server(0).MultiGet(nodes);

  ASSERT_EQ(multi.size(), singles.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_EQ(multi[i] == nullptr, singles[i] == nullptr) << "node " << nodes[i];
    if (multi[i] != nullptr) {
      EXPECT_EQ(multi[i]->node, singles[i]->node);
      EXPECT_EQ(multi[i]->out.size(), singles[i]->out.size());
      EXPECT_EQ(multi[i]->in.size(), singles[i]->in.size());
    }
  }
  EXPECT_EQ(batched.server(0).stats().get_requests,
            sequential.server(0).stats().get_requests);
  EXPECT_EQ(batched.server(0).stats().values_served,
            sequential.server(0).stats().values_served);
  EXPECT_EQ(batched.server(0).stats().misses, sequential.server(0).stats().misses);
  EXPECT_EQ(batched.server(0).stats().bytes_served,
            sequential.server(0).stats().bytes_served);
}

TEST(MultiGetHandle, CompletesAcrossThreads) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddNode(NodeId{3});
  const Graph g = builder.Build();
  StorageTier tier(1);
  tier.LoadGraph(g);

  auto handle = tier.StartMultiGet(0, {0, 1, 3});
  EXPECT_FALSE(handle->done());
  std::thread fetcher([handle] { handle->Execute(); });
  const auto& values = handle->Wait();
  fetcher.join();
  EXPECT_TRUE(handle->done());
  ASSERT_EQ(values.size(), 3u);
  EXPECT_NE(values[0], nullptr);
  EXPECT_NE(values[1], nullptr);
  EXPECT_NE(values[2], nullptr);  // node 3 exists (isolated)
  EXPECT_EQ(values[1]->node, 1u);
  EXPECT_EQ(tier.server(0).stats().batch_requests, 1u);
}

// --- window=1 identity ---------------------------------------------------

TEST_F(AsyncBatchTest, WindowOneIsDeterministicallyIdenticalOnSim) {
  // The synchronous path must not have moved: two fresh window=1 sim runs
  // agree on every reported metric (virtual time is deterministic), for
  // every routing scheme.
  const Graph& g = env_->graph();
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);
  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    const RunOptions opts = SmallRun(scheme, /*window=*/1);
    const ClusterConfig config = env_->MakeClusterConfig(opts);
    auto a =
        MakeClusterEngine(EngineKind::kSimulated, g, config, env_->MakeStrategy(opts));
    auto b =
        MakeClusterEngine(EngineKind::kSimulated, g, config, env_->MakeStrategy(opts));
    const ClusterMetrics ma = a->Run(queries);
    const ClusterMetrics mb = b->Run(queries);
    EXPECT_DOUBLE_EQ(ma.mean_response_ms, mb.mean_response_ms);
    EXPECT_DOUBLE_EQ(ma.p95_response_ms, mb.p95_response_ms);
    EXPECT_DOUBLE_EQ(ma.makespan_us, mb.makespan_us);
    EXPECT_EQ(ma.cache_hits, mb.cache_hits);
    EXPECT_EQ(ma.cache_misses, mb.cache_misses);
    EXPECT_EQ(ma.storage_batches, mb.storage_batches);
    EXPECT_EQ(ma.queries_per_processor, mb.queries_per_processor);
    // The synchronous path reports no overlap: nothing runs under a fetch.
    EXPECT_DOUBLE_EQ(ma.fetch_overlap_us, 0.0);
    ExpectSameAnswers(SortedAnswers(*a), SortedAnswers(*b));
  }
}

TEST_F(AsyncBatchTest, EveryWindowIsAnswerIdenticalOnBothEngines) {
  // Growing the window reshapes time, never answers: window 1, 2 and 8 give
  // identical results on the sim engine AND on real threads with the fetch
  // pipeline live, for every routing scheme.
  const Graph& g = env_->graph();
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);
  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    const RunOptions base = SmallRun(scheme, /*window=*/1);
    auto reference = MakeClusterEngine(EngineKind::kSimulated, g,
                                       env_->MakeClusterConfig(base),
                                       env_->MakeStrategy(base));
    reference->Run(queries);
    const auto want = SortedAnswers(*reference);

    for (const uint32_t window : {2u, 8u}) {
      for (const EngineKind kind : {EngineKind::kSimulated, EngineKind::kThreaded}) {
        SCOPED_TRACE(EngineKindName(kind) + " window " + std::to_string(window));
        const RunOptions opts = SmallRun(scheme, window);
        auto engine = MakeClusterEngine(kind, g, env_->MakeClusterConfig(opts),
                                        env_->MakeStrategy(opts));
        const ClusterMetrics m = engine->Run(queries);
        ASSERT_EQ(m.queries, queries.size());
        ExpectSameAnswers(want, SortedAnswers(*engine));
      }
    }
  }
}

// --- exactly-once under migration-concurrent async fetches ---------------

TEST_F(AsyncBatchTest, ExactlyOnceUnderMigrationConcurrentRun) {
  // Adaptive re-splitting migrates sessions between router shards mid-run
  // while every processor's fetch thread is completing multiget handles:
  // each query id must still be answered exactly once, on both engines.
  const Graph& g = env_->graph();
  const auto queries = env_->SkewedWorkload(/*sessions=*/30, /*queries=*/240,
                                            /*zipf_s=*/1.1);
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed, /*window=*/4);
  opts.router_shards = 3;
  opts.splitter = SplitterKind::kAdaptive;
  opts.rebalance_threshold = 1.2;
  opts.migration_cap = 8;
  opts.gossip_period_us = 50.0;
  opts.arrival_gap_us = 2.0;

  for (const EngineKind kind : {EngineKind::kSimulated, EngineKind::kThreaded}) {
    SCOPED_TRACE(EngineKindName(kind));
    auto engine = MakeClusterEngine(kind, g, env_->MakeClusterConfig(opts),
                                    env_->MakeStrategy(opts));
    const ClusterMetrics m = engine->Run(queries);
    ASSERT_EQ(m.queries, queries.size());
    std::map<uint64_t, int> seen;
    for (const AnsweredQuery& a : engine->answers()) {
      seen[a.query_id] += 1;
    }
    ASSERT_EQ(seen.size(), queries.size());
    for (const Query& q : queries) {
      EXPECT_EQ(seen[q.id], 1) << "query " << q.id;
    }
  }
}

// --- sim model check: overlap never reorders level semantics --------------

TEST_F(AsyncBatchTest, SimOverlapNeverReordersPerQueryLevels) {
  const Graph& g = env_->graph();
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);
  for (const uint32_t window : {1u, 2u, 8u}) {
    SCOPED_TRACE("window " + std::to_string(window));
    const RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed, window);
    DecoupledClusterSim sim(g, env_->MakeClusterConfig(opts), env_->MakeStrategy(opts));
    sim.Run(queries);

    // Per query: levels complete 0, 1, 2, ... in nondecreasing virtual
    // time. Any out-of-order batch completion leaking across a level
    // boundary would break the sequence.
    std::map<uint64_t, uint32_t> next_level;
    std::map<uint64_t, SimTimeUs> last_time;
    ASSERT_FALSE(sim.level_completions().empty());
    for (const auto& rec : sim.level_completions()) {
      EXPECT_EQ(rec.level, next_level[rec.query_id])
          << "query " << rec.query_id << " completed level " << rec.level
          << " out of order";
      next_level[rec.query_id] = rec.level + 1;
      EXPECT_GE(rec.time, last_time[rec.query_id]) << "query " << rec.query_id;
      last_time[rec.query_id] = rec.time;
    }
    EXPECT_EQ(next_level.size(), queries.size());
  }
}

// --- shape: monotone-or-flat response in the window -----------------------

TEST_F(AsyncBatchTest, MeanResponseMonotoneOrFlatInWindowAtSmallCache) {
  // The bench_fig_async_batch acceptance shape, pinned as a test: at a
  // small cache on the sim engine, growing the window never makes mean
  // response worse (2 storage servers bound a level's fan-out, so any
  // window >= 2 overlaps every batch a level has).
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed, 1);
  opts.cache_bytes = std::max<uint64_t>(env_->graph().TotalAdjacencyBytes() / 16, 1);
  double prev = 0.0;
  for (const uint32_t window : {1u, 2u, 4u, 8u}) {
    opts.max_inflight_batches = window;
    const ClusterMetrics m = env_->Run(EngineKind::kSimulated, opts);
    SCOPED_TRACE("window " + std::to_string(window));
    EXPECT_GT(m.mean_response_ms, 0.0);
    if (window > 1) {
      EXPECT_LE(m.mean_response_ms, prev * 1.0001)
          << "mean response regressed when the window grew";
      EXPECT_GT(m.fetch_overlap_us, 0.0);
      EXPECT_GE(m.batches_inflight_peak, 1u);
    }
    prev = m.mean_response_ms;
  }
}

TEST_F(AsyncBatchTest, ThreadedAsyncRunReportsOverlap) {
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed, 4);
  opts.cache_bytes = std::max<uint64_t>(env_->graph().TotalAdjacencyBytes() / 16, 1);
  const ClusterMetrics m = env_->Run(EngineKind::kThreaded, opts);
  EXPECT_EQ(m.queries, 20u * 4u);
  // Real fetch threads serviced real handles: some probe/merge work ran
  // while a batch was outstanding, and the window was genuinely occupied.
  EXPECT_GT(m.fetch_overlap_us, 0.0);
  EXPECT_GE(m.batches_inflight_peak, 1u);

  RunOptions sync_opts = opts;
  sync_opts.max_inflight_batches = 1;
  const ClusterMetrics sync_m = env_->Run(EngineKind::kThreaded, sync_opts);
  EXPECT_DOUBLE_EQ(sync_m.fetch_overlap_us, 0.0);
  EXPECT_EQ(sync_m.batches_inflight_peak, 0u);
}

}  // namespace
}  // namespace grouting
