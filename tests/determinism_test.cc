// Seed-determinism regression: the simulated engine is the repo's reference
// implementation, so two runs of the SAME ClusterConfig + seed must produce
// bit-identical ClusterMetrics — every counter and every double, no
// tolerance — for every routing scheme and a spread of seeds, with the full
// adaptive stack (repartitioning + hot-partition replication + async
// fetch + tracing) enabled. Anything nondeterministic snuck into the sim
// (wall-clock reads, RNG without a seeded stream, map iteration order,
// address-keyed containers) shows up here as a single flipped bit.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/grouting.h"

namespace grouting {
namespace {

constexpr RoutingSchemeKind kAllSchemes[] = {
    RoutingSchemeKind::kNoCache, RoutingSchemeKind::kNextReady,
    RoutingSchemeKind::kHash, RoutingSchemeKind::kLandmark,
    RoutingSchemeKind::kEmbed};

constexpr uint64_t kSeeds[] = {1, 7, 23, 31, 4242};

// Every ClusterMetrics field, compared exactly. Doubles use EXPECT_EQ on
// purpose: determinism means the same float ops in the same order, so even
// the last ulp must match.
void ExpectMetricsIdentical(const ClusterMetrics& a, const ClusterMetrics& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.p50_response_ms, b.p50_response_ms);
  EXPECT_EQ(a.p95_response_ms, b.p95_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.p999_response_ms, b.p999_response_ms);
  EXPECT_EQ(a.mean_queue_wait_ms, b.mean_queue_wait_ms);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.bytes_from_storage, b.bytes_from_storage);
  EXPECT_EQ(a.storage_batches, b.storage_batches);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.queries_per_processor, b.queries_per_processor);
  EXPECT_EQ(a.queries_per_router_shard, b.queries_per_router_shard);
  EXPECT_EQ(a.gossip_rounds, b.gossip_rounds);
  EXPECT_EQ(a.router_ema_divergence, b.router_ema_divergence);
  EXPECT_EQ(a.sessions_migrated, b.sessions_migrated);
  EXPECT_EQ(a.sticky_evictions, b.sticky_evictions);
  EXPECT_EQ(a.router_load_imbalance, b.router_load_imbalance);
  EXPECT_EQ(a.batches_inflight_peak, b.batches_inflight_peak);
  EXPECT_EQ(a.fetch_overlap_us, b.fetch_overlap_us);
  EXPECT_EQ(a.partitions_migrated, b.partitions_migrated);
  EXPECT_EQ(a.storage_load_imbalance, b.storage_load_imbalance);
  EXPECT_EQ(a.repartition_stall_us, b.repartition_stall_us);
  EXPECT_EQ(a.partitions_replicated, b.partitions_replicated);
  EXPECT_EQ(a.replica_reads, b.replica_reads);
  EXPECT_EQ(a.replica_demotions, b.replica_demotions);
  EXPECT_EQ(a.adjacency_compression_ratio, b.adjacency_compression_ratio);
  EXPECT_EQ(a.cache_entries, b.cache_entries);
  EXPECT_EQ(a.decompress_us, b.decompress_us);
  EXPECT_EQ(a.trace_events_recorded, b.trace_events_recorded);
  EXPECT_EQ(a.trace_events_dropped, b.trace_events_dropped);
  EXPECT_EQ(a.trace_buffer_high_water, b.trace_buffer_high_water);
  EXPECT_EQ(a.mutations_applied, b.mutations_applied);
  EXPECT_EQ(a.index_refreshes, b.index_refreshes);
  EXPECT_EQ(a.stale_distance_error, b.stale_distance_error);
}

TEST(DeterminismTest, SimMetricsAreBitIdenticalAcrossRuns) {
  for (const uint64_t seed : kSeeds) {
    ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.06, seed);
    const auto queries = env.SkewedWorkload(/*sessions=*/16, /*queries=*/150,
                                            /*zipf_s=*/1.3);
    for (const RoutingSchemeKind scheme : kAllSchemes) {
      RunOptions opts;
      opts.scheme = scheme;
      opts.processors = 3;
      opts.storage_servers = 4;
      opts.num_landmarks = 12;
      opts.min_separation = 2;
      opts.dimensions = 4;
      opts.cache_bytes = 32 << 10;
      opts.max_inflight_batches = 2;
      opts.repartition_threshold = 1.1;
      opts.repartition_cap = 4;
      opts.partitions_per_server = 4;
      opts.replication_top_k = 2;
      opts.max_replicas_per_partition = 2;
      opts.replica_demote_threshold = 0.1;
      opts.gossip_period_us = 50.0;
      opts.arrival_gap_us = 2.0;
      opts.trace_sample_every_n = 3;

      const ClusterMetrics first = env.Run(EngineKind::kSimulated, opts, queries);
      const ClusterMetrics second = env.Run(EngineKind::kSimulated, opts, queries);
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << ", scheme "
                   << RoutingSchemeKindName(scheme));
      EXPECT_EQ(first.queries, queries.size());
      ExpectMetricsIdentical(first, second);
    }
  }
}

TEST(DeterminismTest, SimMetricsAreBitIdenticalUnderOnlineMutations) {
  // Same invariant with the online write path live: timed mutation events
  // interleave with queries, migrations, and replica churn in virtual time,
  // and index maintenance runs on the gossip cadence — two identical runs
  // must still agree on every counter and every double, last ulp included.
  for (const uint64_t seed : kSeeds) {
    ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.06, seed);
    const auto queries = env.SkewedWorkload(/*sessions=*/16, /*queries=*/150,
                                            /*zipf_s=*/1.3);
    for (const RoutingSchemeKind scheme : kAllSchemes) {
      RunOptions opts;
      opts.scheme = scheme;
      opts.processors = 3;
      opts.storage_servers = 4;
      opts.num_landmarks = 12;
      opts.min_separation = 2;
      opts.dimensions = 4;
      opts.cache_bytes = 32 << 10;
      opts.max_inflight_batches = 2;
      opts.repartition_threshold = 1.1;
      opts.repartition_cap = 4;
      opts.partitions_per_server = 4;
      opts.replication_top_k = 2;
      opts.gossip_period_us = 50.0;
      opts.arrival_gap_us = 2.0;
      opts.enable_mutations = true;
      opts.num_mutations = 96;
      opts.mutation_gap_us = 20.0;
      opts.index_refresh_period_us = 100.0;

      const ClusterMetrics first = env.Run(EngineKind::kSimulated, opts, queries);
      const ClusterMetrics second = env.Run(EngineKind::kSimulated, opts, queries);
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << ", scheme "
                   << RoutingSchemeKindName(scheme));
      EXPECT_EQ(first.queries, queries.size());
      EXPECT_EQ(first.mutations_applied, 96u);
      ExpectMetricsIdentical(first, second);
    }
  }
}

}  // namespace
}  // namespace grouting
