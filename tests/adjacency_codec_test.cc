// Tests for the v2 (delta + LEB128 varint) adjacency wire format: round-trip
// identity against the v1 decoder, degenerate node shapes, corruption
// handling (nullptr, never a crash), and the compressed processor cache
// built on top of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/graph/generators.h"
#include "src/proc/processor.h"
#include "src/storage/adjacency.h"
#include "src/storage/storage_tier.h"
#include "src/util/rng.h"
#include "src/workload/datasets.h"

namespace grouting {
namespace {

void ExpectEntriesEqual(const AdjacencyEntry& a, const AdjacencyEntry& b) {
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.node_label, b.node_label);
  ASSERT_EQ(a.out.size(), b.out.size());
  ASSERT_EQ(a.in.size(), b.in.size());
  for (size_t i = 0; i < a.out.size(); ++i) {
    EXPECT_EQ(a.out[i], b.out[i]) << "out edge " << i;
  }
  for (size_t i = 0; i < a.in.size(); ++i) {
    EXPECT_EQ(a.in[i], b.in[i]) << "in edge " << i;
  }
}

// Decoding the v2 blob must yield exactly what decoding the v1 blob yields,
// for every node of the graph. Reports total v1 / v2 bytes for ratio checks.
void ExpectGraphParity(const Graph& g, uint64_t* v1_total = nullptr,
                       uint64_t* v2_total = nullptr) {
  uint64_t v1_bytes = 0;
  uint64_t v2_bytes = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto raw = EncodeAdjacency(g, u, AdjacencyEncoding::kRaw);
    const auto dv = EncodeAdjacency(g, u, AdjacencyEncoding::kDeltaVarint);
    v1_bytes += raw.size();
    v2_bytes += dv.size();
    const AdjacencyPtr from_raw = DecodeAdjacency(raw);
    const AdjacencyPtr from_dv = DecodeAdjacency(dv);
    ASSERT_NE(from_raw, nullptr);
    ASSERT_NE(from_dv, nullptr);
    ExpectEntriesEqual(*from_raw, *from_dv);
    EXPECT_EQ(from_raw->WireBytes(), raw.size());
    EXPECT_EQ(from_dv->WireBytes(), dv.size());
    EXPECT_EQ(from_dv->SerializedBytes(), raw.size());
  }
  if (v1_total != nullptr) {
    *v1_total = v1_bytes;
  }
  if (v2_total != nullptr) {
    *v2_total = v2_bytes;
  }
}

TEST(AdjacencyV2Test, RoundTripGeneratedGraphs) {
  uint64_t v1a = 0, v2a = 0, v1b = 0, v2b = 0;
  ExpectGraphParity(GenerateErdosRenyi(300, 1500, 7), &v1a, &v2a);
  ExpectGraphParity(GenerateBarabasiAlbert(300, 5, 8), &v1b, &v2b);
  // Sorted ids + small deltas: the compressed form must actually be smaller.
  EXPECT_LT(v2a, v1a);
  EXPECT_LT(v2b, v1b);
}

TEST(AdjacencyV2Test, RoundTripDatasetGraph) {
  const Graph g = MakeDataset(DatasetId::kWebGraphLike, 0.05);
  uint64_t v1 = 0, v2 = 0;
  ExpectGraphParity(g, &v1, &v2);
  // The acceptance premise: >= 2x fewer bytes per entry on a real-shaped
  // graph (power-law degrees, sorted CSR neighbours).
  EXPECT_LT(2 * v2, v1 + g.num_nodes() * 2);  // slack for tiny-degree nodes
}

TEST(AdjacencyV2Test, EmptySingletonAndHighDegreeNodes) {
  GraphBuilder b;
  b.AddNode(0, 3);         // isolated
  b.AddEdge(1, 2, 9);      // singleton out / in pair
  for (NodeId v = 3; v < 900; ++v) {
    b.AddEdge(2, v, static_cast<Label>(v % 4));  // high-degree hub
  }
  const Graph g = b.Build();
  ExpectGraphParity(g);
  // Isolated node: header-only blob, well under the 16-byte v1 floor.
  const auto dv = EncodeAdjacency(g, 0, AdjacencyEncoding::kDeltaVarint);
  EXPECT_LT(dv.size(), 16u);
  const AdjacencyPtr decoded = DecodeAdjacency(dv);
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(decoded->out.empty());
  EXPECT_TRUE(decoded->in.empty());
}

TEST(AdjacencyV2Test, UnsortedDynamicEntryRoundTrips) {
  // Entries built directly (dynamic updates) need not have sorted dsts;
  // zigzag deltas must carry negative gaps faithfully.
  AdjacencyEntry entry;
  entry.node = 12345;
  entry.node_label = 7;
  entry.out = {{900, 1}, {3, 2}, {kInvalidNode - 1, 3}, {10, 2}};
  entry.in = {{5, 0}, {5, 0}, {2, 65535}};
  const auto dv = EncodeAdjacency(entry, AdjacencyEncoding::kDeltaVarint);
  const AdjacencyPtr decoded = DecodeAdjacency(dv);
  ASSERT_NE(decoded, nullptr);
  ExpectEntriesEqual(entry, *decoded);
}

TEST(AdjacencyV2Test, TruncatedInputReturnsNullNoCrash) {
  const Graph g = GenerateErdosRenyi(50, 300, 9);
  for (NodeId u = 0; u < 8; ++u) {
    const auto dv = EncodeAdjacency(g, u, AdjacencyEncoding::kDeltaVarint);
    for (size_t len = 0; len < dv.size(); ++len) {
      const std::span<const uint8_t> prefix(dv.data(), len);
      EXPECT_EQ(DecodeAdjacency(prefix), nullptr) << "len=" << len;
    }
  }
}

TEST(AdjacencyV2Test, CorruptInputReturnsNullNoCrash) {
  const Graph g = GenerateBarabasiAlbert(60, 4, 10);
  Rng rng(11);
  for (NodeId u = 0; u < 8; ++u) {
    const auto dv = EncodeAdjacency(g, u, AdjacencyEncoding::kDeltaVarint);
    // Every single-byte corruption either still parses to SOME entry or
    // returns nullptr — it must never crash or over-read (ASan enforces).
    for (size_t pos = 0; pos < dv.size(); ++pos) {
      auto bad = dv;
      bad[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
      (void)DecodeAdjacency(bad);
    }
    // Random garbage of assorted sizes.
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<uint8_t> junk(rng.NextBounded(64));
      for (auto& byte : junk) {
        byte = static_cast<uint8_t>(rng.NextBounded(256));
      }
      (void)DecodeAdjacency(junk);
    }
  }
  // Structured corruption: v2 header with absurd counts must be rejected
  // before any allocation.
  const std::vector<uint8_t> absurd = {0xC2, 0x02, 0x01, 0x00,
                                       0xff, 0xff, 0xff, 0xff, 0x0f,  // out count
                                       0x00};
  EXPECT_EQ(DecodeAdjacency(absurd), nullptr);
}

TEST(AdjacencyV2Test, V1BlobsStillDecode) {
  // Old stores hold v1 blobs; the auto-detecting decoder must keep reading
  // them regardless of the configured encoding.
  const Graph g = GenerateErdosRenyi(80, 400, 12);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto raw = EncodeAdjacency(g, u);  // default = kRaw = v1
    EXPECT_EQ(raw.size(), g.AdjacencyBytes(u));
    const AdjacencyPtr decoded = DecodeAdjacency(raw);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->node, u);
    EXPECT_EQ(decoded->WireBytes(), decoded->SerializedBytes());
  }
}

TEST(AdjacencyV2Test, RetainWireKeepsBlob) {
  const Graph g = GenerateErdosRenyi(20, 100, 13);
  const auto dv = EncodeAdjacency(g, 1, AdjacencyEncoding::kDeltaVarint);
  const AdjacencyPtr plain = DecodeAdjacency(dv);
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(plain->wire, nullptr);
  const AdjacencyPtr retained = DecodeAdjacency(dv, /*retain_wire=*/true);
  ASSERT_NE(retained, nullptr);
  ASSERT_NE(retained->wire, nullptr);
  EXPECT_EQ(*retained->wire, dv);
  EXPECT_EQ(retained->wire_bytes, dv.size());
}

// ---- compressed processor cache over a delta_varint tier ---------------

TEST(CompressedCacheTest, CompressedModeHoldsMoreEntriesAndSameAnswers) {
  const Graph g = GenerateBarabasiAlbert(600, 6, 14);

  auto run = [&](AdjacencyEncoding enc, bool compressed, uint64_t budget,
                 std::vector<AdjacencyPtr>* fetched) {
    StorageTier tier(2);
    tier.set_encoding(enc);
    tier.set_retain_wire(compressed);
    tier.LoadGraph(g);
    NodeCache<CachedAdjacency> cache(budget);
    CachedStorageSource source(&tier, &cache, 1, compressed);
    // Touch every node once (fills the cache), then re-touch to measure hits.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      fetched->push_back(source.FetchOne(u));
    }
    return cache.entry_count();
  };

  const uint64_t budget = g.TotalAdjacencyBytes() / 8;
  std::vector<AdjacencyPtr> raw_entries;
  std::vector<AdjacencyPtr> cc_entries;
  const size_t raw_count =
      run(AdjacencyEncoding::kRaw, false, budget, &raw_entries);
  const size_t cc_count =
      run(AdjacencyEncoding::kDeltaVarint, true, budget, &cc_entries);
  // Same byte budget, >= 2x the resident vertices.
  EXPECT_GE(cc_count, 2 * raw_count);
  // And identical decoded adjacency data either way.
  ASSERT_EQ(raw_entries.size(), cc_entries.size());
  for (size_t i = 0; i < raw_entries.size(); ++i) {
    ASSERT_NE(raw_entries[i], nullptr);
    ASSERT_NE(cc_entries[i], nullptr);
    ExpectEntriesEqual(*raw_entries[i], *cc_entries[i]);
  }
}

TEST(CompressedCacheTest, HitDecodesToSameEntryAndCountsDecompressTime) {
  const Graph g = GenerateErdosRenyi(100, 600, 15);
  StorageTier tier(1);
  tier.set_encoding(AdjacencyEncoding::kDeltaVarint);
  tier.set_retain_wire(true);
  tier.LoadGraph(g);
  NodeCache<CachedAdjacency> cache(1 << 22);
  CachedStorageSource source(&tier, &cache, 1, /*cache_compressed=*/true);
  const AdjacencyPtr miss = source.FetchOne(5);
  ASSERT_NE(miss, nullptr);
  const AdjacencyPtr hit = source.FetchOne(5);
  ASSERT_NE(hit, nullptr);
  ExpectEntriesEqual(*miss, *hit);
  EXPECT_EQ(source.trace().cache_hits, 1u);
  EXPECT_GT(source.trace().decompress_us, 0.0);
  // The cache charged the compressed size, not the logical one.
  EXPECT_LT(cache.size_bytes(), miss->SerializedBytes());
}

}  // namespace
}  // namespace grouting
