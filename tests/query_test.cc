// Tests for the query executors: results cross-checked against brute-force
// references, label-constrained variants, determinism, and trace accounting
// — through both the direct graph source and the cached storage source.

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/graph/generators.h"
#include "src/graph/traversal.h"
#include "src/proc/processor.h"
#include "src/query/query.h"
#include "src/storage/storage_tier.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

Query Agg(NodeId node, int32_t hops) {
  Query q;
  q.type = QueryType::kNeighborAggregation;
  q.node = node;
  q.hops = hops;
  return q;
}

Query Reach(NodeId from, NodeId to, int32_t hops) {
  Query q;
  q.type = QueryType::kReachability;
  q.node = from;
  q.target = to;
  q.hops = hops;
  return q;
}

Query Walk(NodeId node, int32_t steps, uint64_t seed) {
  Query q;
  q.type = QueryType::kRandomWalk;
  q.node = node;
  q.hops = steps;
  q.seed = seed;
  return q;
}

TEST(NeighborAggregationTest, MatchesKHopNeighborhood) {
  Graph g = GenerateErdosRenyi(300, 1200, 1);
  DirectGraphSource source(g);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const int32_t h = 1 + static_cast<int32_t>(rng.NextBounded(3));
    const auto result = ExecuteQuery(Agg(u, h), source);
    EXPECT_EQ(result.aggregate, KHopNeighborhood(g, u, h).size());
  }
}

TEST(NeighborAggregationTest, ZeroHops) {
  Graph g = GenerateErdosRenyi(50, 200, 3);
  DirectGraphSource source(g);
  EXPECT_EQ(ExecuteQuery(Agg(0, 0), source).aggregate, 0u);
}

TEST(NeighborAggregationTest, IsolatedNode) {
  GraphBuilder b;
  b.AddNode();
  b.AddNode();
  Graph g = b.Build();
  DirectGraphSource source(g);
  EXPECT_EQ(ExecuteQuery(Agg(0, 2), source).aggregate, 0u);
}

TEST(NeighborAggregationTest, LabelFilterCountsOnlyMatches) {
  GraphBuilder b;
  b.AddNode(0, 1);
  b.AddNode(1, 2);
  b.AddNode(2, 2);
  b.AddNode(3, 3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  DirectGraphSource source(g);
  Query q = Agg(0, 2);
  q.label_filter = 2;
  // Within 2 hops of 0: nodes 1 (label 2), 2 (label 2), 3 (label 3).
  EXPECT_EQ(ExecuteQuery(q, source).aggregate, 2u);
}

TEST(ReachabilityTest, MatchesBfs) {
  Graph g = GenerateBarabasiAlbert(300, 3, 4);
  DirectGraphSource source(g);
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const int32_t h = 1 + static_cast<int32_t>(rng.NextBounded(4));
    const auto result = ExecuteQuery(Reach(u, v, h), source);
    // Reference: directed BFS distance within h.
    BfsOptions opts;
    opts.bidirected = false;
    opts.max_depth = h;
    auto dist = BfsDistances(g, u, opts);
    const bool expected = dist[v] != kUnreachable && dist[v] <= h;
    EXPECT_EQ(result.reachable, expected) << "u=" << u << " v=" << v << " h=" << h;
    if (result.reachable) {
      EXPECT_EQ(result.distance, dist[v]);
    }
  }
}

TEST(ReachabilityTest, SelfIsReachableAtZero) {
  Graph g = GenerateErdosRenyi(20, 60, 6);
  DirectGraphSource source(g);
  const auto result = ExecuteQuery(Reach(3, 3, 2), source);
  EXPECT_TRUE(result.reachable);
  EXPECT_EQ(result.distance, 0);
}

TEST(ReachabilityTest, DirectedEdgesOnly) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  DirectGraphSource source(g);
  EXPECT_TRUE(ExecuteQuery(Reach(0, 2, 2), source).reachable);
  // The reverse direction has no directed path.
  EXPECT_FALSE(ExecuteQuery(Reach(2, 0, 2), source).reachable);
}

TEST(ReachabilityTest, HopBudgetRespected) {
  Graph g = [] {
    GraphBuilder b;
    for (NodeId u = 0; u < 6; ++u) {
      b.AddEdge(u, u + 1);
    }
    return b.Build();
  }();
  DirectGraphSource source(g);
  EXPECT_FALSE(ExecuteQuery(Reach(0, 6, 5), source).reachable);
  EXPECT_TRUE(ExecuteQuery(Reach(0, 6, 6), source).reachable);
}

TEST(ReachabilityTest, LabelConstrainedPath) {
  GraphBuilder b;
  b.AddNode(0, 1);
  b.AddNode(1, 9);  // intermediate with wrong label
  b.AddNode(2, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  DirectGraphSource source(g);
  Query q = Reach(0, 2, 4);
  q.label_filter = 5;  // node 1 fails the filter -> unreachable
  EXPECT_FALSE(ExecuteQuery(q, source).reachable);
  q.label_filter = 9;  // node 1 passes
  EXPECT_TRUE(ExecuteQuery(q, source).reachable);
}

TEST(RandomWalkTest, DeterministicInSeed) {
  Graph g = GenerateBarabasiAlbert(200, 3, 7);
  DirectGraphSource s1(g);
  DirectGraphSource s2(g);
  const auto r1 = ExecuteQuery(Walk(5, 10, 42), s1);
  const auto r2 = ExecuteQuery(Walk(5, 10, 42), s2);
  EXPECT_EQ(r1.walk_end, r2.walk_end);
  EXPECT_EQ(r1.walk_distinct_nodes, r2.walk_distinct_nodes);
}

TEST(RandomWalkTest, DifferentSeedsDiverge) {
  Graph g = GenerateBarabasiAlbert(500, 4, 8);
  DirectGraphSource source(g);
  int same = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto a = ExecuteQuery(Walk(3, 20, seed), source);
    const auto b = ExecuteQuery(Walk(3, 20, seed + 100), source);
    same += a.walk_end == b.walk_end;
  }
  EXPECT_LT(same, 8);
}

TEST(RandomWalkTest, StaysWithinStepBudget) {
  Graph g = GenerateErdosRenyi(100, 500, 9);
  DirectGraphSource source(g);
  const auto result = ExecuteQuery(Walk(0, 5, 1), source);
  // At most 5 steps => at most 6 distinct nodes.
  EXPECT_LE(result.walk_distinct_nodes, 6u);
  EXPECT_NE(result.walk_end, kInvalidNode);
}

TEST(RandomWalkTest, DeadEndRestartsAtOrigin) {
  GraphBuilder b;
  b.AddEdge(0, 1);  // 1 has only the back-edge in bidirected view
  b.AddNode();      // isolated node 2
  Graph g = b.Build();
  DirectGraphSource source(g);
  const auto result = ExecuteQuery(Walk(2, 4, 3), source);
  EXPECT_EQ(result.walk_end, 2u);  // isolated: every step restarts
}

// ------------------------------------------------ trace accounting ------

TEST(TraceTest, DirectSourceCountsEveryFetchAsMiss) {
  Graph g = GenerateErdosRenyi(100, 400, 10);
  DirectGraphSource source(g);
  ExecuteQuery(Agg(0, 2), source);
  const FetchTrace& t = source.trace();
  EXPECT_EQ(t.cache_hits, 0u);
  EXPECT_GT(t.cache_misses, 0u);
  EXPECT_EQ(t.visited, t.cache_misses);
  EXPECT_GT(t.bytes_fetched, 0u);
  EXPECT_EQ(t.levels, t.level_stats.size());
}

TEST(TraceTest, CachedSourceHitsOnRepeat) {
  Graph g = GenerateErdosRenyi(100, 400, 11);
  StorageTier tier(2);
  tier.LoadGraph(g);
  NodeCache<CachedAdjacency> cache(1 << 20);
  CachedStorageSource source(&tier, &cache);
  ExecuteQuery(Agg(0, 2), source);
  const uint64_t first_misses = source.trace().cache_misses;
  EXPECT_GT(first_misses, 0u);
  EXPECT_EQ(source.trace().cache_hits, 0u);
  source.ResetTrace();
  ExecuteQuery(Agg(0, 2), source);
  EXPECT_EQ(source.trace().cache_misses, 0u);
  EXPECT_EQ(source.trace().cache_hits, first_misses);
}

TEST(TraceTest, BatchesGroupedByServerAndLevel) {
  Graph g = GenerateErdosRenyi(200, 1000, 12);
  StorageTier tier(3);
  tier.LoadGraph(g);
  CachedStorageSource source(&tier, nullptr);  // no-cache mode
  ExecuteQuery(Agg(0, 2), source);
  const FetchTrace& t = source.trace();
  // Each (level, server) pair appears at most once.
  std::unordered_set<uint64_t> seen;
  for (const auto& batch : t.batches) {
    const uint64_t key = (static_cast<uint64_t>(batch.level) << 32) | batch.server;
    EXPECT_TRUE(seen.insert(key).second);
    EXPECT_LT(batch.server, 3u);
    EXPECT_GT(batch.values, 0u);
  }
  // Per-level invariants: lookups = hits + misses; fetched <= misses.
  for (const auto& level : t.level_stats) {
    if (level.lookups > 0) {
      EXPECT_EQ(level.lookups, level.hits + level.misses);
    }
    EXPECT_LE(level.fetched, level.misses);
  }
}

TEST(TraceTest, ResultsIdenticalWithAndWithoutCache) {
  Graph g = GenerateBarabasiAlbert(300, 4, 13);
  StorageTier tier(2);
  tier.LoadGraph(g);
  NodeCache<CachedAdjacency> cache(1 << 22);
  CachedStorageSource cached(&tier, &cache);
  DirectGraphSource direct(g);
  Rng rng(14);
  for (int trial = 0; trial < 15; ++trial) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto agg_a = ExecuteQuery(Agg(u, 2), cached);
    const auto agg_b = ExecuteQuery(Agg(u, 2), direct);
    EXPECT_EQ(agg_a.aggregate, agg_b.aggregate);
    const auto r_a = ExecuteQuery(Reach(u, v, 3), cached);
    const auto r_b = ExecuteQuery(Reach(u, v, 3), direct);
    EXPECT_EQ(r_a.reachable, r_b.reachable);
    const auto w_a = ExecuteQuery(Walk(u, 8, trial), cached);
    const auto w_b = ExecuteQuery(Walk(u, 8, trial), direct);
    EXPECT_EQ(w_a.walk_end, w_b.walk_end);
  }
}

TEST(QueryTypeNameTest, AllNamed) {
  EXPECT_EQ(QueryTypeName(QueryType::kNeighborAggregation), "neighbor_aggregation");
  EXPECT_EQ(QueryTypeName(QueryType::kRandomWalk), "random_walk");
  EXPECT_EQ(QueryTypeName(QueryType::kReachability), "reachability");
}

}  // namespace
}  // namespace grouting
