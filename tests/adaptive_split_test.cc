// Model-checking style property tests for adaptive arrival re-splitting
// (src/frontend/splitter.h + RouterFleet + both engines):
//
//   * the splitter against a trivially-correct reference model of the
//     sticky-assignment spec (least-session shard, FIFO eviction at the
//     bound) under random arrival / rebalance interleavings,
//   * no session is ever double-assigned across a migration storm: between
//     rebalances every arrival of a session lands on exactly one shard,
//   * the fleet dispatches every enqueued query exactly once while
//     migrations are forced between every batch of arrivals,
//   * both engines answer every query exactly once under an aggressive
//     rebalance configuration on a skewed stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/core/grouting.h"

namespace grouting {
namespace {

// ------------------------------------------------ splitter vs reference --

// Reference model of the sticky/adaptive assignment spec: new sessions go
// to the shard with the fewest sessions (lowest index on ties), the oldest
// session is evicted FIFO at capacity, migrations are applied verbatim.
class ReferenceAssignment {
 public:
  ReferenceAssignment(uint32_t num_shards, uint32_t capacity)
      : counts_(num_shards, 0), capacity_(capacity) {}

  uint32_t ShardFor(NodeId node) {
    auto it = table_.find(node);
    if (it != table_.end()) {
      return it->second;
    }
    if (table_.size() >= capacity_) {
      const NodeId victim = fifo_.front();
      fifo_.pop_front();
      counts_[table_.at(victim)] -= 1;
      table_.erase(victim);
      evictions_ += 1;
    }
    uint32_t least = 0;
    for (uint32_t s = 1; s < counts_.size(); ++s) {
      if (counts_[s] < counts_[least]) {
        least = s;
      }
    }
    table_[node] = least;
    counts_[least] += 1;
    fifo_.push_back(node);
    return least;
  }

  void ApplyMigration(const SessionMigration& m) {
    auto it = table_.find(m.session);
    ASSERT_NE(it, table_.end()) << "migrated a dead session " << m.session;
    ASSERT_EQ(it->second, m.from);
    it->second = m.to;
    counts_[m.from] -= 1;
    counts_[m.to] += 1;
  }

  const std::unordered_map<NodeId, uint32_t>& table() const { return table_; }
  uint64_t evictions() const { return evictions_; }

 private:
  std::unordered_map<NodeId, uint32_t> table_;
  std::deque<NodeId> fifo_;
  std::vector<uint64_t> counts_;
  uint32_t capacity_;
  uint64_t evictions_ = 0;
};

class AdaptiveSplitterModelCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdaptiveSplitterModelCheck, AgreesWithReferenceUnderMigrationStorm) {
  Rng rng(GetParam());
  const uint32_t shards = 2 + static_cast<uint32_t>(rng.NextBounded(4));
  const uint32_t capacity = 24;
  ArrivalSplitter splitter(SplitterKind::kAdaptive, shards, capacity);
  ReferenceAssignment reference(shards, capacity);

  RebalanceConfig cfg;
  cfg.threshold = 1.05;  // aggressive: storm on nearly any spread
  cfg.migration_cap = 4;
  cfg.noise_sigmas = 0.0;
  cfg.load_decay = 0.5;

  std::vector<uint64_t> routed(shards, 0);
  Query q;
  for (int step = 0; step < 4000; ++step) {
    if (rng.NextBounded(40) == 0) {
      // Rebalance against the cumulative routed counts, as the engines do.
      const auto migrations = splitter.Rebalance(routed, cfg);
      ASSERT_LE(migrations.size(), cfg.migration_cap);
      for (const SessionMigration& m : migrations) {
        ASSERT_NE(m.from, m.to);
        ASSERT_LT(m.from, shards);
        ASSERT_LT(m.to, shards);
        reference.ApplyMigration(m);
      }
    } else {
      // Zipf-ish arrival from a small node pool (collisions = sessions).
      const auto node = static_cast<NodeId>(rng.NextBounded(1 + rng.NextBounded(48)));
      q.node = node;
      const uint32_t got = splitter.ShardFor(q);
      const uint32_t expected = reference.ShardFor(node);
      ASSERT_EQ(got, expected) << "step " << step << " node " << node;
      routed[got] += 1;
    }
    // Exactly-one-shard invariant: the splitter and the model agree on
    // every live session, and a session is never on two shards (the map is
    // the single source of truth the engines route by).
    for (const auto& [node, shard] : reference.table()) {
      ASSERT_EQ(splitter.SessionShard(node), shard) << "step " << step;
    }
    ASSERT_EQ(splitter.session_count(), reference.table().size());
    ASSERT_EQ(splitter.stats().evictions, reference.evictions());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveSplitterModelCheck,
                         ::testing::Values(2, 17, 29, 101, 977));

// ----------------------------------------------- fleet: exactly-once ----

class FleetMigrationStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FleetMigrationStorm, EveryQueryDispatchedExactlyOnce) {
  // Conservation through the fleet while sessions migrate between every
  // batch of arrivals: queries already queued on the old shard must still
  // dispatch, exactly once, wherever the session now lives.
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 3);
  const uint32_t shards = 2 + static_cast<uint32_t>(rng.NextBounded(3));
  const uint32_t procs = 2 + static_cast<uint32_t>(rng.NextBounded(3));

  FleetConfig fc;
  fc.num_shards = shards;
  fc.splitter = SplitterKind::kAdaptive;
  fc.rebalance.threshold = 1.05;
  fc.rebalance.migration_cap = 16;
  fc.rebalance.noise_sigmas = 0.0;
  RouterFleet fleet(std::make_unique<NextReadyStrategy>(), procs, fc);

  const size_t n = 600;
  std::map<uint64_t, int> dispatched;
  Query q;
  for (uint64_t i = 0; i < n; ++i) {
    q.id = i;
    q.node = static_cast<NodeId>(rng.NextBounded(24));  // few hot sessions
    fleet.Enqueue(q);
    if (i % 25 == 24) {
      fleet.GossipRound();  // migration storm point
    }
    // Random partial drains interleaved with the storm.
    if (rng.NextBounded(3) == 0) {
      const auto p = static_cast<uint32_t>(rng.NextBounded(procs));
      if (auto next = fleet.NextForProcessor(p); next.has_value()) {
        dispatched[next->id] += 1;
      }
    }
  }
  size_t safety = 0;
  while (fleet.HasPending() && safety++ < n * 10) {
    const auto p = static_cast<uint32_t>(rng.NextBounded(procs));
    if (auto next = fleet.NextForProcessor(p); next.has_value()) {
      dispatched[next->id] += 1;
    }
  }
  ASSERT_EQ(dispatched.size(), n);
  for (const auto& [id, count] : dispatched) {
    ASSERT_EQ(count, 1) << "query " << id;
  }
  // The storm configuration really migrated sessions.
  EXPECT_GT(fleet.splitter().stats().migrations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetMigrationStorm, ::testing::Values(1, 5, 23, 71));

// ---------------------------------------------- engines: exactly-once ----

class AdaptiveEngineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new ExperimentEnv(DatasetId::kWebGraphLike, /*scale=*/0.12, /*seed=*/53);
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }
  static ExperimentEnv* env_;
};

ExperimentEnv* AdaptiveEngineFixture::env_ = nullptr;

TEST_F(AdaptiveEngineFixture, BothEnginesAnswerExactlyOnceUnderAggressiveRebalance) {
  const auto queries = env_->SkewedWorkload(/*sessions=*/32, /*queries=*/400,
                                            /*zipf_s=*/1.2);
  for (const EngineKind kind : {EngineKind::kSimulated, EngineKind::kThreaded}) {
    SCOPED_TRACE(EngineKindName(kind));
    RunOptions opts;
    opts.scheme = RoutingSchemeKind::kEmbed;
    opts.processors = 3;
    opts.storage_servers = 2;
    opts.num_landmarks = 24;
    opts.min_separation = 2;
    opts.dimensions = 6;
    opts.router_shards = 4;
    opts.splitter = SplitterKind::kAdaptive;
    opts.rebalance_threshold = 1.05;
    opts.migration_cap = 64;
    opts.gossip_period_us = 25.0;
    opts.arrival_gap_us = 2.0;

    auto engine = MakeClusterEngine(kind, env_->graph(), env_->MakeClusterConfig(opts),
                                    env_->MakeStrategy(opts));
    const ClusterMetrics m = engine->Run(queries);

    EXPECT_EQ(m.queries, queries.size());
    std::set<uint64_t> ids;
    for (const AnsweredQuery& a : engine->answers()) {
      EXPECT_TRUE(ids.insert(a.query_id).second) << "duplicate " << a.query_id;
    }
    EXPECT_EQ(ids.size(), queries.size());
    ASSERT_EQ(m.queries_per_router_shard.size(), 4u);
    uint64_t routed_total = 0;
    for (const uint64_t per_shard : m.queries_per_router_shard) {
      routed_total += per_shard;
    }
    EXPECT_EQ(routed_total, queries.size());
    EXPECT_GE(m.router_load_imbalance, 1.0);
    if (kind == EngineKind::kSimulated) {
      // Deterministic on the simulator: the aggressive config must migrate.
      EXPECT_GT(m.sessions_migrated, 0u);
    }
  }
}

}  // namespace
}  // namespace grouting
