// Query-lifecycle tracing (src/obs/): the invariants the observability
// layer promises.
//
//  * Tracing is passive: a simulated run with tracing on is metric- and
//    answer-identical to the same run with tracing off (bit-exact — the
//    recorder never schedules events or charges virtual time).
//  * Traces are well formed: every sampled query carries exactly one
//    dispatch->completion span, batch spans nest inside their level span,
//    durations are non-negative.
//  * Sampling is deterministic by query id, so both engines trace the SAME
//    queries, and with a sequential cluster (1 processor, 1 router shard,
//    no stealing) the two engines produce the same span structure.
//  * Full rings drop-and-count, never block or corrupt.
//
// The threaded cases double as the TSan workout for the lock-free rings:
// CI runs this binary under -fsanitize=thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/grouting.h"

namespace grouting {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new ExperimentEnv(DatasetId::kWebGraphLike, /*scale=*/0.1, /*seed=*/23);
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  static RunOptions SmallRun(RoutingSchemeKind scheme) {
    RunOptions opts;
    opts.scheme = scheme;
    opts.processors = 3;
    opts.storage_servers = 2;
    opts.num_landmarks = 24;
    opts.min_separation = 2;
    opts.dimensions = 6;
    opts.num_hotspots = 20;
    opts.queries_per_hotspot = 4;
    return opts;
  }

  static std::unique_ptr<ClusterEngine> Build(EngineKind kind,
                                              const RunOptions& opts) {
    return MakeClusterEngine(kind, env_->graph(), env_->MakeClusterConfig(opts),
                             env_->MakeStrategy(opts));
  }

  static std::vector<AnsweredQuery> SortedAnswers(const ClusterEngine& engine) {
    std::vector<AnsweredQuery> answers = engine.answers();
    std::sort(answers.begin(), answers.end(),
              [](const AnsweredQuery& a, const AnsweredQuery& b) {
                return a.query_id < b.query_id;
              });
    return answers;
  }

  static ExperimentEnv* env_;
};

ExperimentEnv* TraceTest::env_ = nullptr;

TEST_F(TraceTest, SimTracingOnIsMetricIdenticalToTracingOff) {
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);

  auto off = Build(EngineKind::kSimulated, opts);
  const ClusterMetrics m_off = off->Run(queries);
  EXPECT_EQ(off->tracer(), nullptr);

  opts.trace_sample_every_n = 1;
  auto on = Build(EngineKind::kSimulated, opts);
  const ClusterMetrics m_on = on->Run(queries);
  ASSERT_NE(on->tracer(), nullptr);

  // Bit-exact equality on every run metric: tracing charged nothing.
  EXPECT_EQ(m_off.queries, m_on.queries);
  EXPECT_EQ(m_off.makespan_us, m_on.makespan_us);
  EXPECT_EQ(m_off.throughput_qps, m_on.throughput_qps);
  EXPECT_EQ(m_off.mean_response_ms, m_on.mean_response_ms);
  EXPECT_EQ(m_off.p50_response_ms, m_on.p50_response_ms);
  EXPECT_EQ(m_off.p95_response_ms, m_on.p95_response_ms);
  EXPECT_EQ(m_off.p99_response_ms, m_on.p99_response_ms);
  EXPECT_EQ(m_off.p999_response_ms, m_on.p999_response_ms);
  EXPECT_EQ(m_off.mean_queue_wait_ms, m_on.mean_queue_wait_ms);
  EXPECT_EQ(m_off.cache_hits, m_on.cache_hits);
  EXPECT_EQ(m_off.cache_misses, m_on.cache_misses);
  EXPECT_EQ(m_off.nodes_visited, m_on.nodes_visited);
  EXPECT_EQ(m_off.bytes_from_storage, m_on.bytes_from_storage);
  EXPECT_EQ(m_off.storage_batches, m_on.storage_batches);
  EXPECT_EQ(m_off.steals, m_on.steals);
  EXPECT_EQ(m_off.queries_per_processor, m_on.queries_per_processor);
  EXPECT_EQ(m_off.queries_per_router_shard, m_on.queries_per_router_shard);

  // Only the trace counters differ.
  EXPECT_EQ(m_off.trace_events_recorded, 0u);
  EXPECT_GT(m_on.trace_events_recorded, 0u);
  EXPECT_EQ(m_on.trace_events_dropped, 0u);

  const auto a = SortedAnswers(*off);
  const auto b = SortedAnswers(*on);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query_id, b[i].query_id);
    EXPECT_EQ(a[i].processor, b[i].processor);
    EXPECT_EQ(a[i].result.aggregate, b[i].result.aggregate);
  }
}

TEST_F(TraceTest, SimTracingStaysMetricIdenticalWithReplicationEnabled) {
  // The tracing-charges-nothing invariant must survive the replication data
  // path: promotion/demotion rounds, p2c read fan-out, and replica-aware
  // batch routing all run identically whether or not the tracer observes
  // them. A skewed stream plus a small cache keeps promotions firing.
  const auto queries = env_->SkewedWorkload(/*sessions=*/6, /*queries=*/400,
                                            /*zipf_s=*/1.5, /*h=*/1);
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  opts.storage_servers = 4;
  opts.cache_bytes = 8 << 10;
  opts.repartition_threshold = 1.1;
  opts.repartition_cap = 4;
  opts.partitions_per_server = 8;
  opts.replication_top_k = 4;
  opts.max_replicas_per_partition = 3;
  opts.replica_demote_threshold = 0.05;
  opts.gossip_period_us = 50.0;
  opts.arrival_gap_us = 1.0;

  auto off = Build(EngineKind::kSimulated, opts);
  const ClusterMetrics m_off = off->Run(queries);
  EXPECT_GT(m_off.partitions_replicated, 0u);

  opts.trace_sample_every_n = 1;
  auto on = Build(EngineKind::kSimulated, opts);
  const ClusterMetrics m_on = on->Run(queries);
  ASSERT_NE(on->tracer(), nullptr);

  EXPECT_EQ(m_off.queries, m_on.queries);
  EXPECT_EQ(m_off.makespan_us, m_on.makespan_us);
  EXPECT_EQ(m_off.throughput_qps, m_on.throughput_qps);
  EXPECT_EQ(m_off.mean_response_ms, m_on.mean_response_ms);
  EXPECT_EQ(m_off.p99_response_ms, m_on.p99_response_ms);
  EXPECT_EQ(m_off.p999_response_ms, m_on.p999_response_ms);
  EXPECT_EQ(m_off.cache_hits, m_on.cache_hits);
  EXPECT_EQ(m_off.cache_misses, m_on.cache_misses);
  EXPECT_EQ(m_off.bytes_from_storage, m_on.bytes_from_storage);
  EXPECT_EQ(m_off.storage_batches, m_on.storage_batches);
  // The replication counters themselves must be tracer-invariant too.
  EXPECT_EQ(m_off.partitions_replicated, m_on.partitions_replicated);
  EXPECT_EQ(m_off.replica_reads, m_on.replica_reads);
  EXPECT_EQ(m_off.replica_demotions, m_on.replica_demotions);
  EXPECT_EQ(m_off.partitions_migrated, m_on.partitions_migrated);
  EXPECT_EQ(m_off.storage_load_imbalance, m_on.storage_load_imbalance);
  EXPECT_EQ(m_off.repartition_stall_us, m_on.repartition_stall_us);

  EXPECT_EQ(m_off.trace_events_recorded, 0u);
  EXPECT_GT(m_on.trace_events_recorded, 0u);

  const auto a = SortedAnswers(*off);
  const auto b = SortedAnswers(*on);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query_id, b[i].query_id);
    EXPECT_EQ(a[i].processor, b[i].processor);
    EXPECT_EQ(a[i].result.aggregate, b[i].result.aggregate);
  }
}

TEST_F(TraceTest, SimSpansAreWellFormed) {
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  opts.trace_sample_every_n = 1;

  auto sim = Build(EngineKind::kSimulated, opts);
  const ClusterMetrics m = sim->Run(queries);
  ASSERT_NE(sim->tracer(), nullptr);

  const std::vector<TraceEvent> events = sim->tracer()->MergedEvents();
  ASSERT_EQ(events.size(), m.trace_events_recorded);
  ASSERT_GT(events.size(), 0u);

  // Merged stream is sorted and every duration is non-negative.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].dur_us, 0.0);
    EXPECT_GE(events[i].ts_us, 0.0);
    if (i > 0) {
      EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
    }
  }

  std::map<uint64_t, std::vector<const TraceEvent*>> by_query;
  for (const TraceEvent& e : events) {
    by_query[e.query_id].push_back(&e);
  }
  EXPECT_EQ(by_query.size(), queries.size());  // every-query sampling

  for (const auto& [qid, evs] : by_query) {
    size_t query_spans = 0;
    size_t queue_waits = 0;
    std::map<uint32_t, std::pair<double, double>> levels;
    for (const TraceEvent* e : evs) {
      if (e->type == TraceEventType::kQuery) {
        ++query_spans;
      } else if (e->type == TraceEventType::kQueueWait) {
        ++queue_waits;
      } else if (e->type == TraceEventType::kLevel) {
        levels[e->level] = {e->ts_us, e->ts_us + e->dur_us};
      }
    }
    EXPECT_EQ(query_spans, 1u) << "query " << qid;
    EXPECT_EQ(queue_waits, 1u) << "query " << qid;
    // On the synchronous sim path a batch lives wholly inside its level.
    for (const TraceEvent* e : evs) {
      if (e->type != TraceEventType::kBatch) {
        continue;
      }
      ASSERT_TRUE(levels.count(e->level))
          << "query " << qid << " batch at level " << e->level;
      const auto [lo, hi] = levels[e->level];
      EXPECT_GE(e->ts_us, lo - 1e-9) << "query " << qid;
      EXPECT_LE(e->ts_us + e->dur_us, hi + 1e-9) << "query " << qid;
    }
  }
}

TEST_F(TraceTest, SamplingIsDeterministicAcrossEngines) {
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);
  RunOptions opts = SmallRun(RoutingSchemeKind::kHash);
  opts.trace_sample_every_n = 4;

  std::set<uint64_t> sampled[2];
  int i = 0;
  for (const EngineKind kind : {EngineKind::kSimulated, EngineKind::kThreaded}) {
    auto engine = Build(kind, opts);
    engine->Run(queries);
    ASSERT_NE(engine->tracer(), nullptr);
    for (const TraceEvent& e : engine->tracer()->MergedEvents()) {
      EXPECT_EQ(e.query_id % 4, 0u) << EngineKindName(kind);
      sampled[i].insert(e.query_id);
    }
    ++i;
  }
  EXPECT_FALSE(sampled[0].empty());
  EXPECT_EQ(sampled[0], sampled[1]);  // same queries traced on both engines
}

TEST_F(TraceTest, ThreadedTracingPreservesAnswersAndCounts) {
  // Also the TSan workout: three processor threads + a router shard thread
  // record into their rings while the main thread only reads post-join.
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);

  auto off = Build(EngineKind::kThreaded, opts);
  const ClusterMetrics m_off = off->Run(queries);

  opts.trace_sample_every_n = 1;
  auto on = Build(EngineKind::kThreaded, opts);
  const ClusterMetrics m_on = on->Run(queries);
  ASSERT_NE(on->tracer(), nullptr);

  EXPECT_EQ(m_on.queries, queries.size());
  EXPECT_GT(m_on.trace_events_recorded, 0u);
  EXPECT_EQ(m_on.trace_events_dropped, 0u);
  EXPECT_GE(m_on.trace_buffer_high_water, 1u);

  // WHAT was answered is tracing-invariant (wall-clock timings are not).
  const auto a = SortedAnswers(*off);
  const auto b = SortedAnswers(*on);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(m_off.queries, m_on.queries);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].query_id, b[i].query_id);
    EXPECT_EQ(a[i].result.aggregate, b[i].result.aggregate);
    EXPECT_EQ(a[i].result.walk_end, b[i].result.walk_end);
  }

  // Every traced query got its dispatch->completion span.
  std::set<uint64_t> with_query_span;
  for (const TraceEvent& e : on->tracer()->MergedEvents()) {
    if (e.type == TraceEventType::kQuery) {
      with_query_span.insert(e.query_id);
    }
  }
  EXPECT_EQ(with_query_span.size(), queries.size());
}

TEST_F(TraceTest, CrossEngineSpanStructureMatchesOnSequentialCluster) {
  // With one processor, one router shard and no stealing, execution order —
  // and therefore cache evolution and the per-level batch split — is
  // deterministic and identical across engines. The structural span counts
  // (arrival/routed/queue-wait/query/level/batch, per query) must match
  // exactly; only timestamps (virtual vs wall) may differ. Timing-derived
  // spans (stall/decode/compute/ship) are engine-specific and excluded.
  const auto queries = env_->HotspotWorkload(2, 2, 10, 3);
  RunOptions opts = SmallRun(RoutingSchemeKind::kHash);
  opts.processors = 1;
  opts.router_shards = 1;
  opts.stealing = false;
  opts.trace_sample_every_n = 1;

  constexpr TraceEventType kStructural[] = {
      TraceEventType::kArrival, TraceEventType::kRouted,
      TraceEventType::kQueueWait, TraceEventType::kQuery,
      TraceEventType::kLevel, TraceEventType::kBatch};

  std::map<std::pair<uint64_t, TraceEventType>, size_t> counts[2];
  int i = 0;
  for (const EngineKind kind : {EngineKind::kSimulated, EngineKind::kThreaded}) {
    auto engine = Build(kind, opts);
    const ClusterMetrics m = engine->Run(queries);
    ASSERT_EQ(m.queries, queries.size()) << EngineKindName(kind);
    ASSERT_EQ(m.trace_events_dropped, 0u) << EngineKindName(kind);
    for (const TraceEvent& e : engine->tracer()->MergedEvents()) {
      if (std::find(std::begin(kStructural), std::end(kStructural), e.type) !=
          std::end(kStructural)) {
        ++counts[i][{e.query_id, e.type}];
      }
    }
    ++i;
  }
  EXPECT_FALSE(counts[0].empty());
  EXPECT_EQ(counts[0], counts[1]);
}

TEST_F(TraceTest, FullRingsDropAndCountInsteadOfGrowing) {
  const auto queries = env_->HotspotWorkload(2, 2, 20, 4);
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);
  opts.trace_sample_every_n = 1;
  opts.trace_buffer_capacity = 8;

  auto sim = Build(EngineKind::kSimulated, opts);
  const ClusterMetrics m = sim->Run(queries);
  EXPECT_EQ(m.queries, queries.size());  // the run itself is unaffected
  EXPECT_GT(m.trace_events_dropped, 0u);
  EXPECT_LE(m.trace_buffer_high_water, 8u);
  EXPECT_EQ(sim->tracer()->MergedEvents().size(), m.trace_events_recorded);
}

TEST_F(TraceTest, ExportTraceWritesChromeJson) {
  const auto queries = env_->HotspotWorkload(2, 2, 10, 3);
  RunOptions opts = SmallRun(RoutingSchemeKind::kEmbed);

  // Tracing off: nothing to export.
  auto off = Build(EngineKind::kSimulated, opts);
  off->Run(queries);
  EXPECT_FALSE(off->ExportTrace(::testing::TempDir() + "/no_trace.json"));

  opts.trace_sample_every_n = 1;
  auto sim = Build(EngineKind::kSimulated, opts);
  sim->Run(queries);
  const std::string path = ::testing::TempDir() + "/trace_test_export.json";
  ASSERT_TRUE(sim->ExportTrace(path, {{"scheme", "embed"}}));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_EQ(content.front(), '{');
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"scheme\": \"embed\""), std::string::npos);
  EXPECT_NE(content.find("\"engine\": \"simulated\""), std::string::npos);
  EXPECT_NE(content.find("\"name\": \"query\""), std::string::npos);
  EXPECT_NE(content.find("\"thread_name\""), std::string::npos);
}

}  // namespace
}  // namespace grouting
