// Cross-engine parity: the promise in threaded_cluster.h — "the simulator
// and the threaded runtime give identical query answers" — enforced as an
// invariant for every routing scheme.
//
// The same hotspot workload runs through EngineKind::kSimulated and
// EngineKind::kThreaded built from one ClusterConfig; the answer sets
// (sorted by query id) must be identical field-for-field, regardless of the
// nondeterministic interleaving real threads introduce. Query execution is
// deterministic given the graph and Query::seed, so any divergence means an
// engine lost, duplicated, or corrupted a query.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/core/grouting.h"

namespace grouting {
namespace {

class CrossEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new ExperimentEnv(DatasetId::kWebGraphLike, /*scale=*/0.12, /*seed=*/19);
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  static RunOptions SmallRun(RoutingSchemeKind scheme) {
    RunOptions opts;
    opts.scheme = scheme;
    opts.processors = 3;
    opts.storage_servers = 2;
    opts.num_landmarks = 24;
    opts.min_separation = 2;
    opts.dimensions = 6;
    opts.num_hotspots = 25;
    opts.queries_per_hotspot = 4;
    return opts;
  }

  static std::vector<AnsweredQuery> SortedAnswers(const ClusterEngine& engine) {
    std::vector<AnsweredQuery> answers = engine.answers();
    std::sort(answers.begin(), answers.end(),
              [](const AnsweredQuery& a, const AnsweredQuery& b) {
                return a.query_id < b.query_id;
              });
    return answers;
  }

  static ExperimentEnv* env_;
};

ExperimentEnv* CrossEngineTest::env_ = nullptr;

constexpr RoutingSchemeKind kAllSchemes[] = {
    RoutingSchemeKind::kNoCache, RoutingSchemeKind::kNextReady,
    RoutingSchemeKind::kHash, RoutingSchemeKind::kLandmark,
    RoutingSchemeKind::kEmbed};

TEST_F(CrossEngineTest, IdenticalAnswersForEveryScheme) {
  const Graph& g = env_->graph();
  const auto queries = env_->HotspotWorkload(2, 2, 25, 4);

  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    const RunOptions opts = SmallRun(scheme);
    const ClusterConfig config = env_->MakeClusterConfig(opts);

    auto sim = MakeClusterEngine(EngineKind::kSimulated, g, config,
                                 env_->MakeStrategy(opts));
    auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, config,
                                      env_->MakeStrategy(opts));
    const ClusterMetrics sim_m = sim->Run(queries);
    const ClusterMetrics thr_m = threaded->Run(queries);

    // Identical total queries, every single one answered.
    ASSERT_EQ(sim_m.queries, queries.size());
    ASSERT_EQ(thr_m.queries, queries.size());

    const auto sim_answers = SortedAnswers(*sim);
    const auto thr_answers = SortedAnswers(*threaded);
    ASSERT_EQ(sim_answers.size(), thr_answers.size());
    for (size_t i = 0; i < sim_answers.size(); ++i) {
      const AnsweredQuery& a = sim_answers[i];
      const AnsweredQuery& b = thr_answers[i];
      ASSERT_EQ(a.query_id, b.query_id) << "answer " << i;
      EXPECT_EQ(a.result.type, b.result.type) << "query " << a.query_id;
      EXPECT_EQ(a.result.aggregate, b.result.aggregate) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_end, b.result.walk_end) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_distinct_nodes, b.result.walk_distinct_nodes)
          << "query " << a.query_id;
      EXPECT_EQ(a.result.reachable, b.result.reachable) << "query " << a.query_id;
      EXPECT_EQ(a.result.distance, b.result.distance) << "query " << a.query_id;
    }
  }
}

TEST_F(CrossEngineTest, ShardedAdaptiveParityForEveryScheme) {
  // Answer parity must survive a sharded frontend with mid-run session
  // migration: the engines migrate at different (virtual vs wall-clock)
  // moments, but WHAT is answered may not change. A Zipf stream keeps the
  // rebalance path genuinely active.
  const Graph& g = env_->graph();
  const auto queries = env_->SkewedWorkload(/*sessions=*/40, /*queries=*/300,
                                            /*zipf_s=*/1.1);

  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    RunOptions opts = SmallRun(scheme);
    opts.router_shards = 3;
    opts.splitter = SplitterKind::kAdaptive;
    opts.rebalance_threshold = 1.2;
    opts.migration_cap = 8;
    opts.gossip_period_us = 50.0;
    opts.arrival_gap_us = 2.0;
    const ClusterConfig config = env_->MakeClusterConfig(opts);

    auto sim = MakeClusterEngine(EngineKind::kSimulated, g, config,
                                 env_->MakeStrategy(opts));
    auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, config,
                                      env_->MakeStrategy(opts));
    const ClusterMetrics sim_m = sim->Run(queries);
    const ClusterMetrics thr_m = threaded->Run(queries);

    ASSERT_EQ(sim_m.queries, queries.size());
    ASSERT_EQ(thr_m.queries, queries.size());

    const auto sim_answers = SortedAnswers(*sim);
    const auto thr_answers = SortedAnswers(*threaded);
    ASSERT_EQ(sim_answers.size(), thr_answers.size());
    for (size_t i = 0; i < sim_answers.size(); ++i) {
      const AnsweredQuery& a = sim_answers[i];
      const AnsweredQuery& b = thr_answers[i];
      ASSERT_EQ(a.query_id, b.query_id) << "answer " << i;
      EXPECT_EQ(a.result.aggregate, b.result.aggregate) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_end, b.result.walk_end) << "query " << a.query_id;
      EXPECT_EQ(a.result.reachable, b.result.reachable) << "query " << a.query_id;
      EXPECT_EQ(a.result.distance, b.result.distance) << "query " << a.query_id;
    }
  }
}

TEST_F(CrossEngineTest, RepartitioningParityForEveryScheme) {
  // Answer parity must survive storage-tier repartitioning: the engines
  // migrate partitions at different (virtual vs wall-clock) moments and the
  // threaded engine's migrations genuinely race in-flight multigets, but
  // WHAT is answered may not change. A Zipf stream plus a small cache keeps
  // storage traffic — and therefore the monitor's migration signal — alive
  // all run.
  const Graph& g = env_->graph();
  const auto queries = env_->SkewedWorkload(/*sessions=*/40, /*queries=*/300,
                                            /*zipf_s=*/1.2);

  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    RunOptions opts = SmallRun(scheme);
    opts.cache_bytes = 64 << 10;
    opts.max_inflight_batches = 3;
    opts.repartition_threshold = 1.1;
    opts.repartition_cap = 4;
    opts.partitions_per_server = 8;
    opts.gossip_period_us = 50.0;
    opts.arrival_gap_us = 2.0;
    const ClusterConfig config = env_->MakeClusterConfig(opts);

    auto sim = MakeClusterEngine(EngineKind::kSimulated, g, config,
                                 env_->MakeStrategy(opts));
    auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, config,
                                      env_->MakeStrategy(opts));
    const ClusterMetrics sim_m = sim->Run(queries);
    const ClusterMetrics thr_m = threaded->Run(queries);

    ASSERT_EQ(sim_m.queries, queries.size());
    ASSERT_EQ(thr_m.queries, queries.size());
    // The path must actually be exercised on the deterministic engine.
    EXPECT_GT(sim_m.partitions_migrated, 0u);

    const auto sim_answers = SortedAnswers(*sim);
    const auto thr_answers = SortedAnswers(*threaded);
    ASSERT_EQ(sim_answers.size(), thr_answers.size());
    for (size_t i = 0; i < sim_answers.size(); ++i) {
      const AnsweredQuery& a = sim_answers[i];
      const AnsweredQuery& b = thr_answers[i];
      ASSERT_EQ(a.query_id, b.query_id) << "answer " << i;
      EXPECT_EQ(a.result.aggregate, b.result.aggregate) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_end, b.result.walk_end) << "query " << a.query_id;
      EXPECT_EQ(a.result.reachable, b.result.reachable) << "query " << a.query_id;
      EXPECT_EQ(a.result.distance, b.result.distance) << "query " << a.query_id;
    }
  }
}

TEST_F(CrossEngineTest, ReplicationParityForEveryScheme) {
  // Hot-partition replication changes WHERE reads are served (p2c across
  // the holder set) and WHEN copies move, never WHAT is answered. Three-way
  // check per scheme: sim-with-replication vs threaded-with-replication
  // (cross-engine parity under real replica churn), and sim-with vs
  // sim-without (turning replication on is answer-invariant). A tiny cache
  // keeps the hot keys hitting storage so promotion actually fires.
  const Graph& g = env_->graph();
  const auto queries = env_->SkewedWorkload(/*sessions=*/6, /*queries=*/500,
                                            /*zipf_s=*/1.5, /*h=*/1);

  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    RunOptions opts = SmallRun(scheme);
    opts.storage_servers = 4;
    opts.cache_bytes = 8 << 10;
    opts.max_inflight_batches = 3;
    opts.repartition_threshold = 1.1;
    opts.repartition_cap = 4;
    opts.partitions_per_server = 8;
    opts.replication_top_k = 4;
    opts.max_replicas_per_partition = 3;
    opts.replica_demote_threshold = 0.05;
    opts.gossip_period_us = 50.0;
    opts.arrival_gap_us = 1.0;
    const ClusterConfig config = env_->MakeClusterConfig(opts);

    RunOptions off = opts;
    off.replication_top_k = 0;

    auto sim = MakeClusterEngine(EngineKind::kSimulated, g, config,
                                 env_->MakeStrategy(opts));
    auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, config,
                                      env_->MakeStrategy(opts));
    auto sim_off = MakeClusterEngine(EngineKind::kSimulated, g,
                                     env_->MakeClusterConfig(off),
                                     env_->MakeStrategy(off));
    const ClusterMetrics sim_m = sim->Run(queries);
    const ClusterMetrics thr_m = threaded->Run(queries);
    const ClusterMetrics off_m = sim_off->Run(queries);

    ASSERT_EQ(sim_m.queries, queries.size());
    ASSERT_EQ(thr_m.queries, queries.size());
    ASSERT_EQ(off_m.queries, queries.size());
    // The path must actually be exercised on the deterministic engine.
    EXPECT_GT(sim_m.partitions_replicated, 0u);
    EXPECT_GT(sim_m.replica_reads, 0u);
    EXPECT_EQ(off_m.partitions_replicated, 0u);
    EXPECT_EQ(off_m.replica_reads, 0u);

    const auto sim_answers = SortedAnswers(*sim);
    const auto thr_answers = SortedAnswers(*threaded);
    const auto off_answers = SortedAnswers(*sim_off);
    ASSERT_EQ(sim_answers.size(), thr_answers.size());
    ASSERT_EQ(sim_answers.size(), off_answers.size());
    for (size_t i = 0; i < sim_answers.size(); ++i) {
      const AnsweredQuery& a = sim_answers[i];
      const AnsweredQuery& b = thr_answers[i];
      const AnsweredQuery& c = off_answers[i];
      ASSERT_EQ(a.query_id, b.query_id) << "answer " << i;
      ASSERT_EQ(a.query_id, c.query_id) << "answer " << i;
      EXPECT_EQ(a.result.aggregate, b.result.aggregate) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_end, b.result.walk_end) << "query " << a.query_id;
      EXPECT_EQ(a.result.reachable, b.result.reachable) << "query " << a.query_id;
      EXPECT_EQ(a.result.distance, b.result.distance) << "query " << a.query_id;
      EXPECT_EQ(a.result.aggregate, c.result.aggregate) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_end, c.result.walk_end) << "query " << a.query_id;
      EXPECT_EQ(a.result.reachable, c.result.reachable) << "query " << a.query_id;
      EXPECT_EQ(a.result.distance, c.result.distance) << "query " << a.query_id;
    }
  }
}

TEST_F(CrossEngineTest, AsyncWindowParityForEveryScheme) {
  // The async storage pipeline (max_inflight_batches > 1) reshapes WHEN
  // fetches happen — per-batch completion events in the sim, per-processor
  // fetch threads in the runtime — but answer parity between the engines
  // must hold exactly as on the synchronous path, and window=1 must stay
  // answer-identical to the async windows.
  const Graph& g = env_->graph();
  const auto queries = env_->HotspotWorkload(2, 2, 25, 4);

  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    RunOptions opts = SmallRun(scheme);
    opts.max_inflight_batches = 4;
    const ClusterConfig config = env_->MakeClusterConfig(opts);

    auto sim = MakeClusterEngine(EngineKind::kSimulated, g, config,
                                 env_->MakeStrategy(opts));
    auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, config,
                                      env_->MakeStrategy(opts));
    const ClusterMetrics sim_m = sim->Run(queries);
    const ClusterMetrics thr_m = threaded->Run(queries);
    ASSERT_EQ(sim_m.queries, queries.size());
    ASSERT_EQ(thr_m.queries, queries.size());
    EXPECT_GE(sim_m.batches_inflight_peak, 1u);

    RunOptions sync_opts = SmallRun(scheme);
    sync_opts.max_inflight_batches = 1;
    auto sync_sim = MakeClusterEngine(EngineKind::kSimulated, g,
                                      env_->MakeClusterConfig(sync_opts),
                                      env_->MakeStrategy(sync_opts));
    sync_sim->Run(queries);

    const auto sim_answers = SortedAnswers(*sim);
    const auto thr_answers = SortedAnswers(*threaded);
    const auto sync_answers = SortedAnswers(*sync_sim);
    ASSERT_EQ(sim_answers.size(), thr_answers.size());
    ASSERT_EQ(sim_answers.size(), sync_answers.size());
    for (size_t i = 0; i < sim_answers.size(); ++i) {
      const AnsweredQuery& a = sim_answers[i];
      const AnsweredQuery& b = thr_answers[i];
      const AnsweredQuery& c = sync_answers[i];
      ASSERT_EQ(a.query_id, b.query_id) << "answer " << i;
      ASSERT_EQ(a.query_id, c.query_id) << "answer " << i;
      EXPECT_EQ(a.result.aggregate, b.result.aggregate) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_end, b.result.walk_end) << "query " << a.query_id;
      EXPECT_EQ(a.result.reachable, b.result.reachable) << "query " << a.query_id;
      EXPECT_EQ(a.result.distance, b.result.distance) << "query " << a.query_id;
      EXPECT_EQ(a.result.aggregate, c.result.aggregate) << "query " << a.query_id;
      EXPECT_EQ(a.result.walk_end, c.result.walk_end) << "query " << a.query_id;
      EXPECT_EQ(a.result.reachable, c.result.reachable) << "query " << a.query_id;
      EXPECT_EQ(a.result.distance, c.result.distance) << "query " << a.query_id;
    }
  }
}

TEST_F(CrossEngineTest, EncodingParityForEveryScheme) {
  // Answers must be invariant to the adjacency wire format and to the
  // compressed-cache mode, on both engines: raw (the reference), compressed
  // blobs with a decoded cache, and compressed blobs cached compressed. A
  // small cache keeps eviction — and thus refetch/decode traffic — alive.
  const Graph& g = env_->graph();
  const auto queries = env_->HotspotWorkload(2, 2, 25, 4);

  struct EncodingMode {
    const char* name;
    AdjacencyEncoding encoding;
    bool cache_compressed;
  };
  constexpr EncodingMode kModes[] = {
      {"delta_varint", AdjacencyEncoding::kDeltaVarint, false},
      {"delta_varint+cc", AdjacencyEncoding::kDeltaVarint, true},
  };

  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    RunOptions raw_opts = SmallRun(scheme);
    raw_opts.cache_bytes = 64 << 10;
    auto raw_sim = MakeClusterEngine(EngineKind::kSimulated, g,
                                     env_->MakeClusterConfig(raw_opts),
                                     env_->MakeStrategy(raw_opts));
    raw_sim->Run(queries);
    const auto reference = SortedAnswers(*raw_sim);
    ASSERT_EQ(reference.size(), queries.size());

    for (const EncodingMode& mode : kModes) {
      SCOPED_TRACE(mode.name);
      RunOptions opts = SmallRun(scheme);
      opts.cache_bytes = 64 << 10;
      opts.adjacency_encoding = mode.encoding;
      opts.cache_compressed = mode.cache_compressed;
      const ClusterConfig config = env_->MakeClusterConfig(opts);

      auto sim = MakeClusterEngine(EngineKind::kSimulated, g, config,
                                   env_->MakeStrategy(opts));
      auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, config,
                                        env_->MakeStrategy(opts));
      const ClusterMetrics sim_m = sim->Run(queries);
      const ClusterMetrics thr_m = threaded->Run(queries);
      ASSERT_EQ(sim_m.queries, queries.size());
      ASSERT_EQ(thr_m.queries, queries.size());
      // Compressed blobs must actually be smaller on this dataset.
      EXPECT_GT(sim_m.adjacency_compression_ratio, 1.0);

      const auto sim_answers = SortedAnswers(*sim);
      const auto thr_answers = SortedAnswers(*threaded);
      ASSERT_EQ(sim_answers.size(), reference.size());
      ASSERT_EQ(thr_answers.size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        const AnsweredQuery& r = reference[i];
        const AnsweredQuery& a = sim_answers[i];
        const AnsweredQuery& b = thr_answers[i];
        ASSERT_EQ(r.query_id, a.query_id) << "answer " << i;
        ASSERT_EQ(r.query_id, b.query_id) << "answer " << i;
        for (const AnsweredQuery* other : {&a, &b}) {
          EXPECT_EQ(r.result.aggregate, other->result.aggregate)
              << "query " << r.query_id;
          EXPECT_EQ(r.result.walk_end, other->result.walk_end)
              << "query " << r.query_id;
          EXPECT_EQ(r.result.walk_distinct_nodes, other->result.walk_distinct_nodes)
              << "query " << r.query_id;
          EXPECT_EQ(r.result.reachable, other->result.reachable)
              << "query " << r.query_id;
          EXPECT_EQ(r.result.distance, other->result.distance)
              << "query " << r.query_id;
        }
      }
    }
  }
}

TEST_F(CrossEngineTest, EnvRunWorksOnBothEnginesForEveryScheme) {
  for (const RoutingSchemeKind scheme : kAllSchemes) {
    SCOPED_TRACE(RoutingSchemeKindName(scheme));
    const RunOptions opts = SmallRun(scheme);
    for (const EngineKind kind : {EngineKind::kSimulated, EngineKind::kThreaded}) {
      const ClusterMetrics m = env_->Run(kind, opts);
      EXPECT_EQ(m.queries, opts.num_hotspots * opts.queries_per_hotspot)
          << EngineKindName(kind);
      EXPECT_GT(m.throughput_qps, 0.0) << EngineKindName(kind);
      EXPECT_GT(m.mean_response_ms, 0.0) << EngineKindName(kind);
      const uint64_t split_total = std::accumulate(
          m.queries_per_processor.begin(), m.queries_per_processor.end(), uint64_t{0});
      EXPECT_EQ(split_total, m.queries) << EngineKindName(kind);
      if (scheme == RoutingSchemeKind::kNoCache) {
        EXPECT_EQ(m.cache_hits, 0u) << EngineKindName(kind);
      }
    }
  }
}

TEST_F(CrossEngineTest, FactoryBuildsTheRequestedKind) {
  const Graph& g = env_->graph();
  ClusterConfig config;
  config.num_processors = 2;
  config.num_storage_servers = 2;
  auto sim = MakeClusterEngine(EngineKind::kSimulated, g, config,
                               std::make_unique<NextReadyStrategy>());
  auto threaded = MakeClusterEngine(EngineKind::kThreaded, g, config,
                                    std::make_unique<NextReadyStrategy>());
  EXPECT_EQ(sim->kind(), EngineKind::kSimulated);
  EXPECT_EQ(threaded->kind(), EngineKind::kThreaded);
  EXPECT_EQ(EngineKindName(sim->kind()), "simulated");
  EXPECT_EQ(EngineKindName(threaded->kind()), "threaded");
}

}  // namespace
}  // namespace grouting
