// Tests for the byte-bounded node cache: exact LRU semantics, capacity
// invariants across all policies (property sweep), stats accounting, and
// edge cases (oversized entries, zero-capacity caches).

#include <gtest/gtest.h>

#include <string>

#include "src/cache/cache.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

using IntCache = NodeCache<int>;

TEST(CacheTest, GetMissOnEmpty) {
  IntCache cache(1024);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CacheTest, PutThenGet) {
  IntCache cache(1024);
  cache.Put(1, 100, 10);
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 100);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size_bytes(), 10u);
}

TEST(CacheTest, OverwriteAdjustsBytes) {
  IntCache cache(1024);
  cache.Put(1, 100, 10);
  cache.Put(1, 200, 30);
  EXPECT_EQ(cache.size_bytes(), 30u);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(*cache.Get(1), 200);
}

TEST(CacheTest, ExactLruEvictionOrder) {
  IntCache cache(30, CachePolicy::kLru);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 10);
  cache.Put(3, 3, 10);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.Get(1).has_value());
  cache.Put(4, 4, 10);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));  // evicted
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(CacheTest, FifoIgnoresRecency) {
  IntCache cache(30, CachePolicy::kFifo);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 10);
  cache.Put(3, 3, 10);
  EXPECT_TRUE(cache.Get(1).has_value());  // touching does not save 1
  cache.Put(4, 4, 10);
  EXPECT_FALSE(cache.Contains(1));  // first in, first out
  EXPECT_TRUE(cache.Contains(2));
}

TEST(CacheTest, LfuEvictsLeastFrequent) {
  IntCache cache(30, CachePolicy::kLfu);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 10);
  cache.Put(3, 3, 10);
  cache.Get(1);
  cache.Get(1);
  cache.Get(3);
  cache.Put(4, 4, 10);  // 2 has the lowest frequency
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(CacheTest, LfuTiesBreakByInsertionOrder) {
  // The ordered LFU index must keep the historical tie-break: among entries
  // with equal frequency, the one inserted first is evicted first.
  IntCache cache(30, CachePolicy::kLfu);
  cache.Put(7, 7, 10);
  cache.Put(8, 8, 10);
  cache.Put(9, 9, 10);  // all at freq 0
  cache.Put(10, 10, 10);
  EXPECT_FALSE(cache.Contains(7));  // oldest of the tied set goes first
  EXPECT_TRUE(cache.Contains(8));
  EXPECT_TRUE(cache.Contains(9));
  EXPECT_TRUE(cache.Contains(10));
  // Erase + re-insert places the key at the back of the tie queue.
  cache.Erase(8);
  cache.Put(8, 8, 10);
  cache.Put(11, 11, 10);
  EXPECT_FALSE(cache.Contains(9));
  EXPECT_TRUE(cache.Contains(8));
}

TEST(CacheTest, LfuEvictionScalesWithManyEntries) {
  // Regression guard for the O(n) eviction scan: a big churny workload over
  // a full cache must stay exact (victim = min (freq, insertion order)).
  IntCache cache(100 * 10, CachePolicy::kLfu);
  for (int i = 0; i < 100; ++i) {
    cache.Put(static_cast<NodeId>(i), i, 10);
  }
  for (int i = 50; i < 100; ++i) {  // bump the upper half
    cache.Get(static_cast<NodeId>(i));
  }
  for (int i = 100; i < 150; ++i) {  // 50 inserts evict exactly the cold half
    cache.Put(static_cast<NodeId>(i), i, 10);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(cache.Contains(static_cast<NodeId>(i))) << i;
  }
  for (int i = 50; i < 150; ++i) {
    EXPECT_TRUE(cache.Contains(static_cast<NodeId>(i))) << i;
  }
}

TEST(CacheTest, ClockSecondChance) {
  IntCache cache(30, CachePolicy::kClock);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 10);
  cache.Put(3, 3, 10);
  // All referenced; the sweep clears bits and evicts the first unreferenced.
  cache.Put(4, 4, 10);
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheTest, LargeEntryEvictsMultiple) {
  IntCache cache(30);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 10);
  cache.Put(3, 3, 10);
  cache.Put(4, 4, 20);  // needs 20 bytes: evicts the two oldest entries
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_LE(cache.size_bytes(), 30u);
}

TEST(CacheTest, OversizedEntryRejected) {
  IntCache cache(20);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 100);  // larger than the whole cache
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_TRUE(cache.Contains(1));  // untouched
}

TEST(CacheTest, OversizedOverwriteErasesOldEntry) {
  IntCache cache(20);
  cache.Put(1, 1, 10);
  cache.Put(1, 2, 100);  // the key's cached copy must not survive stale
  EXPECT_FALSE(cache.Contains(1));
}

TEST(CacheTest, ZeroCapacityNeverStores) {
  IntCache cache(0);
  cache.Put(1, 1, 1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(CacheTest, EraseAndClear) {
  IntCache cache(100);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 10);
  cache.Erase(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size_bytes(), 10u);
  cache.Erase(99);  // no-op
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(CacheTest, StatsAccounting) {
  IntCache cache(20);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 10);
  cache.Get(1);
  cache.Get(3);
  cache.Put(3, 3, 10);  // evicts one entry
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.inserts, 3u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.bytes_evicted, 10u);
  EXPECT_NEAR(s.HitRate(), 0.5, 1e-9);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CacheTest, PolicyNames) {
  EXPECT_EQ(CachePolicyName(CachePolicy::kLru), "lru");
  EXPECT_EQ(CachePolicyName(CachePolicy::kFifo), "fifo");
  EXPECT_EQ(CachePolicyName(CachePolicy::kLfu), "lfu");
  EXPECT_EQ(CachePolicyName(CachePolicy::kClock), "clock");
}

// Property sweep: under random workloads, NO policy ever exceeds capacity,
// entry counts match the map, and byte accounting stays exact.
class CachePolicyPropertyTest : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(CachePolicyPropertyTest, CapacityInvariantUnderRandomWorkload) {
  IntCache cache(500, GetParam());
  Rng rng(99);
  uint64_t expected_bytes = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto key = static_cast<NodeId>(rng.NextBounded(100));
    if (rng.NextBool(0.5)) {
      cache.Put(key, static_cast<int>(key), 1 + rng.NextBounded(60));
    } else {
      cache.Get(key);
    }
    ASSERT_LE(cache.size_bytes(), cache.capacity_bytes());
    (void)expected_bytes;
  }
  // Recompute bytes from scratch via Contains+Erase bookkeeping: clearing
  // must zero everything out consistently.
  const size_t entries = cache.entry_count();
  EXPECT_LE(entries, 500u);
  cache.Clear();
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST_P(CachePolicyPropertyTest, HotKeySurvivesUnderLruLikePolicies) {
  const CachePolicy policy = GetParam();
  IntCache cache(100, policy);
  Rng rng(7);
  // Key 0 is touched constantly; under LRU/LFU/CLOCK it should survive a
  // stream of one-shot keys (FIFO legitimately evicts it).
  cache.Put(0, 0, 10);
  for (int i = 1; i <= 200; ++i) {
    cache.Get(0);
    cache.Put(static_cast<NodeId>(i), i, 10);
  }
  if (policy == CachePolicy::kLru || policy == CachePolicy::kLfu) {
    EXPECT_TRUE(cache.Contains(0));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicyPropertyTest,
                         ::testing::Values(CachePolicy::kLru, CachePolicy::kFifo,
                                           CachePolicy::kLfu, CachePolicy::kClock));

}  // namespace
}  // namespace grouting
