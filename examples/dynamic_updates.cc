// Graph updates without re-preprocessing (paper Sections 3.4 and 4.5).
//
// Preprocess landmarks + embedding on HALF the graph, then stream in the
// other half incrementally: new nodes get neighbour-estimated landmark
// distances and incrementally solved coordinates; an edge insertion
// refreshes its 2-hop surroundings. Queries over the FULL graph keep
// working the whole time, and smart routing keeps beating hash.

#include <cstdio>

#include "src/core/grouting.h"

using namespace grouting;

namespace {

ClusterMetrics RunEmbed(const Graph& g, const GraphEmbedding& embedding,
                        std::span<const Query> queries) {
  ClusterConfig cc;
  cc.num_processors = 4;
  cc.num_storage_servers = 2;
  cc.processor.cache_bytes = g.TotalAdjacencyBytes() + (8 << 20);
  auto engine = MakeClusterEngine(
      EngineKind::kSimulated, g, cc,
      std::make_unique<EmbedStrategy>(&embedding, 0.5, 20.0, cc.num_processors));
  return engine->Run(queries);
}

}  // namespace

int main() {
  LocalityWebConfig cfg;
  cfg.grid_width = 12;
  cfg.grid_height = 12;
  cfg.community_size = 60;
  Graph g = GenerateLocalityWeb(cfg, 21);
  std::printf("graph: %zu nodes, %zu edges\n", g.num_nodes(), g.num_edges());

  // Pretend only 50% of today's graph existed when we preprocessed.
  Rng rng(5);
  std::vector<uint8_t> known(g.num_nodes(), 0);
  size_t known_count = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    known[u] = rng.NextBool(0.5);
    known_count += known[u];
  }
  std::printf("preprocessing on %zu nodes (%.0f%% of the graph)\n", known_count,
              100.0 * static_cast<double>(known_count) / static_cast<double>(g.num_nodes()));

  LandmarkConfig lc;
  lc.num_landmarks = 48;
  lc.seed = 6;
  auto landmarks = LandmarkSet::Select(g, lc, &known);
  EmbedConfig ec;
  ec.seed = 7;
  auto embedding = GraphEmbedding::Build(landmarks, ec);

  WorkloadConfig wc;
  wc.num_hotspots = 60;
  wc.queries_per_hotspot = 8;
  wc.seed = 8;
  auto queries = GenerateHotspotWorkload(g, wc);

  // Queries BEFORE the catch-up: unknown query nodes fall back to
  // next-ready routing inside EmbedStrategy.
  const ClusterMetrics before = RunEmbed(g, embedding, queries);
  std::printf("\n[stale preprocessing]  response %.3f ms, hit rate %.1f%%\n",
              before.mean_response_ms, 100.0 * before.CacheHitRate());

  // Stream in the missing nodes: estimate landmark distances from known
  // neighbours, embed incrementally. No global recompute.
  size_t added = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!known[u]) {
      added += embedding.AddNodeIncremental(g, u, landmarks);
    }
  }
  std::printf("incrementally embedded %zu new nodes\n", added);

  const ClusterMetrics after = RunEmbed(g, embedding, queries);
  std::printf("[incremental catch-up] response %.3f ms, hit rate %.1f%%\n",
              after.mean_response_ms, 100.0 * after.CacheHitRate());

  // An edge insertion: refresh the landmark index around the endpoints
  // (paper: re-estimate endpoints and their <=2-hop neighbours).
  auto index = LandmarkIndex::Build(std::move(landmarks), 4);
  const NodeId a = 10;
  const NodeId b = static_cast<NodeId>(g.num_nodes() - 10);
  index.RefreshAroundEdge(g, a, b, 2);
  std::printf("\nrefreshed landmark index around edge (%u, %u); d(a,p*)=%u\n", a, b,
              index.Distance(a, index.NearestProcessor(a)));
  std::printf(
      "\nSmart routing degrades gracefully under updates and recovers with cheap\n"
      "incremental maintenance — no repartitioning, no offline rebuild (Fig. 10).\n");
  return 0;
}
