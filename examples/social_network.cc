// Ego-centric social-network queries (paper intro, example 2: "user Alice
// may search for her connections within 2-hops who are currently employed
// by Google").
//
// Builds a labeled social graph, wires the decoupled cluster MANUALLY
// (storage tier + processors + router), and runs label-constrained 2-hop
// aggregation queries through the REAL threaded runtime — the closest thing
// to the paper's live cluster in one process.

#include <cstdio>

#include "src/core/grouting.h"

using namespace grouting;

namespace {

constexpr Label kEmployerAcme = 7;  // node label: "works at Acme"

// A social network: friend circles with popular accounts (shared hubs).
Graph BuildSocialGraph() {
  LocalityWebConfig cfg;
  cfg.grid_width = 10;
  cfg.grid_height = 10;
  cfg.community_size = 80;    // friend circles
  cfg.intra_degree = 8;
  cfg.inter_degree = 2;
  cfg.hub_zone = 3;
  cfg.hubs_per_zone = 2;      // popular accounts
  cfg.hub_link_prob = 0.5;
  cfg.labels.num_node_labels = 12;  // employers
  cfg.labels.num_edge_labels = 3;   // friend / colleague / family
  return GenerateLocalityWeb(cfg, 77);
}

}  // namespace

int main() {
  Graph g = BuildSocialGraph();
  std::printf("social graph: %zu users, %zu links\n", g.num_nodes(), g.num_edges());

  // Ego-centric workload: for each "Alice", count 2-hop connections employed
  // by Acme (label-constrained neighbour aggregation).
  Rng rng(3);
  std::vector<Query> queries;
  for (uint64_t id = 0; id < 400; ++id) {
    Query q;
    q.id = id;
    q.type = QueryType::kNeighborAggregation;
    q.node = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    q.hops = 2;
    q.label_filter = kEmployerAcme;
    queries.push_back(q);
  }

  // Manual cluster assembly on the threaded runtime: 4 processor threads,
  // 2 storage servers, 8 MB cache each, embed routing.
  LandmarkConfig lc;
  lc.num_landmarks = 32;
  lc.seed = 5;
  auto landmarks = LandmarkSet::Select(g, lc);
  EmbedConfig ec;
  ec.seed = 6;
  auto embedding = GraphEmbedding::Build(landmarks, ec);
  std::printf("preprocessing: %zu landmarks (BFS %.2fs), embedding %.2fs\n",
              landmarks.count(), landmarks.stats().bfs_seconds,
              embedding.stats().node_embed_seconds);

  ClusterConfig cc;
  cc.num_processors = 4;
  cc.num_storage_servers = 2;
  cc.processor.cache_bytes = 8 << 20;
  auto cluster = MakeClusterEngine(
      EngineKind::kThreaded, g, cc,
      std::make_unique<EmbedStrategy>(&embedding, 0.5, 20.0, cc.num_processors));

  const ClusterMetrics m = cluster->Run(queries);

  uint64_t total_matches = 0;
  uint64_t max_matches = 0;
  for (const auto& a : cluster->answers()) {
    total_matches += a.result.aggregate;
    max_matches = std::max(max_matches, a.result.aggregate);
  }
  std::printf(
      "\nanswered %llu ego-centric queries in %.3fs (%.0f q/s, real threads)\n"
      "response mean %.3f ms / p95 %.3f ms, cache hit rate %.1f%%, %llu steals\n"
      "avg 2-hop contacts at Acme per user: %.1f (max %llu)\n",
      static_cast<unsigned long long>(m.queries), m.WallSeconds(), m.throughput_qps,
      m.mean_response_ms, m.p95_response_ms, 100.0 * m.CacheHitRate(),
      static_cast<unsigned long long>(m.steals),
      static_cast<double>(total_matches) / static_cast<double>(cluster->answers().size()),
      static_cast<unsigned long long>(max_matches));
  return 0;
}
