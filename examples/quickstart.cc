// Quickstart: build a graph, stand up a decoupled gRouting cluster in the
// discrete-event simulator, and compare smart routing against the
// baselines on a hotspot workload.
//
//   $ ./examples/quickstart              # discrete-event simulation
//   $ ./examples/quickstart threaded     # same sweep on real threads
//
// This is the 5-minute tour of the public API: ExperimentEnv hides the
// preprocessing (landmark BFS, graph embedding) and cluster assembly; see
// the other examples for manual wiring.

#include <cstdio>
#include <string>

#include "src/core/grouting.h"

using namespace grouting;  // examples only; library code never does this

int main(int argc, char** argv) {
  // Engine selection: the whole sweep runs identically on the discrete-event
  // simulator (default) or the real threaded runtime.
  const EngineKind engine = (argc > 1 && std::string(argv[1]) == "threaded")
                                ? EngineKind::kThreaded
                                : EngineKind::kSimulated;

  // 1. A scaled-down web-graph-like dataset (communities + shared regional
  //    hubs, heavy degree tail — see DESIGN.md for the substitution).
  ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.25, /*seed=*/2024);
  const Graph& g = env.graph();
  std::printf("graph: %zu nodes, %zu edges (%s as adjacency lists)\n", g.num_nodes(),
              g.num_edges(), Table::Bytes(g.TotalAdjacencyBytes()).c_str());

  // 2. The paper's workload: 100 hotspots x 10 queries, each within 2 hops
  //    of its hotspot centre; a uniform mixture of neighbour aggregation,
  //    random walk, and reachability queries, all 2-hop.
  auto queries = env.HotspotWorkload(/*r=*/2, /*h=*/2);
  std::printf("workload: %zu hotspot-grouped queries\n\n", queries.size());

  // 3. Run the same workload under each routing scheme on a cold cluster:
  //    1 router, 7 query processors, 4 storage servers over Infiniband.
  std::printf("engine: %s\n", EngineKindName(engine).c_str());
  Table t({"routing scheme", "throughput (q/s)", "response (ms)", "cache hit rate"});
  for (auto scheme : {RoutingSchemeKind::kNoCache, RoutingSchemeKind::kNextReady,
                      RoutingSchemeKind::kHash, RoutingSchemeKind::kLandmark,
                      RoutingSchemeKind::kEmbed}) {
    RunOptions opts;
    opts.scheme = scheme;
    const ClusterMetrics m = env.Run(engine, opts, queries);
    t.AddRow({RoutingSchemeKindName(scheme), Table::Num(m.throughput_qps, 1),
              Table::Num(m.mean_response_ms, 3),
              Table::Num(100.0 * m.CacheHitRate(), 1) + "%"});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nSmart routing (landmark/embed) sends queries on nearby nodes to the same\n"
      "processor, so successive hotspot queries find their 2-hop neighbourhoods\n"
      "already cached — with plain hash partitioning across the storage tier.\n");
  return 0;
}
