// Knowledge-graph querying (paper intro, example 3: "find all papers on
// distributed graph systems which are a result of collaboration between
// researchers from UC Berkeley and CMU" — i.e. label/distance-constrained
// reachability).
//
// Runs label-constrained h-hop reachability over a Freebase-like sparse
// labeled graph on the discrete-event cluster, comparing landmark routing
// with hash routing, and demonstrates the bidirectional BFS the paper's
// dual-direction storage layout enables.

#include <cstdio>

#include "src/core/grouting.h"

using namespace grouting;

int main() {
  // Freebase-like: ~50k entities at this scale, sparse, labeled.
  ExperimentEnv env(DatasetId::kFreebaseLike, /*scale=*/0.5, /*seed=*/11);
  const Graph& g = env.graph();
  std::printf("knowledge graph: %zu entities, %zu relations\n", g.num_nodes(),
              g.num_edges());

  // Workload: hotspot-grouped reachability queries, some label-constrained
  // ("path must pass through entities of a given type").
  Rng rng(9);
  std::vector<Query> queries;
  uint64_t id = 0;
  for (int hotspot = 0; hotspot < 80; ++hotspot) {
    const auto center = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto region = KHopNeighborhood(g, center, 2);
    for (int i = 0; i < 8; ++i) {
      Query q;
      q.id = id++;
      q.type = QueryType::kReachability;
      q.node = region.empty() ? center
                              : region[rng.NextBounded(region.size())];
      q.hops = 4;
      // Half the targets are nearby (reachable), half uniform.
      const auto near = KHopNeighborhood(g, q.node, 4);
      q.target = (!near.empty() && rng.NextBool(0.5))
                     ? near[rng.NextBounded(near.size())]
                     : static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
      if (rng.NextBool(0.3)) {
        q.label_filter = static_cast<Label>(1 + rng.NextBounded(64));
      }
      queries.push_back(q);
    }
  }
  std::printf("workload: %zu reachability queries (30%% label-constrained, h=4)\n\n",
              queries.size());

  Table t({"routing", "throughput (q/s)", "response (ms)", "hit rate", "reachable"});
  for (auto scheme : {RoutingSchemeKind::kHash, RoutingSchemeKind::kLandmark}) {
    RunOptions opts;
    opts.scheme = scheme;
    auto engine = MakeClusterEngine(EngineKind::kSimulated, g,
                                    env.MakeClusterConfig(opts), env.MakeStrategy(opts));
    const ClusterMetrics m = engine->Run(queries);
    uint64_t reachable = 0;
    for (const auto& a : engine->answers()) {
      reachable += a.result.reachable;
    }
    t.AddRow({RoutingSchemeKindName(scheme), Table::Num(m.throughput_qps, 1),
              Table::Num(m.mean_response_ms, 3),
              Table::Num(100.0 * m.CacheHitRate(), 1) + "%",
              Table::Int(static_cast<int64_t>(reachable))});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nReachability runs as a BIDIRECTIONAL BFS: forward over out-edges from the\n"
      "source, backward over in-edges from the target — possible because every\n"
      "adjacency entry stores both directions (paper Fig. 3). Label constraints\n"
      "are enforced on intermediate entities during the search.\n");
  return 0;
}
