// gRouting experiment CLI: run any cluster configuration from the command
// line without writing code.
//
//   ./grouting_cli --dataset=webgraph --scale=0.3 --scheme=embed \
//                  --engine=sim --processors=7 --storage=4 --cache=16MB \
//                  --radius=2 --hops=2 --hotspots=100 --per-hotspot=10 \
//                  --network=infiniband --load-factor=20 --alpha=0.5
//
// Prints the run's metrics as a table. `--help` lists everything.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "src/core/grouting.h"

using namespace grouting;

namespace {

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& def) const {
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = values.find(key);
    return it == values.end() ? def : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values.find(key);
    return it == values.end() ? def : std::atoll(it->second.c_str());
  }
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values[arg] = "1";
    } else {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

void PrintHelp() {
  std::printf(
      "gRouting experiment CLI\n"
      "  --dataset=webgraph|friendster|memetracker|freebase   (default webgraph)\n"
      "  --scale=<float>          dataset scale               (default 0.25)\n"
      "  --scheme=no_cache|next_ready|hash|landmark|embed     (default embed)\n"
      "  --engine=sim|threaded    execution engine            (default sim)\n"
      "  --processors=<int>       query processors            (default 7)\n"
      "  --storage=<int>          storage servers             (default 4)\n"
      "  --cache=<size>           per-processor cache, e.g. 16MB; 0 = ample\n"
      "  --policy=lru|fifo|lfu|clock                          (default lru)\n"
      "  --network=infiniband|ethernet                        (default infiniband)\n"
      "  --radius=<int> --hops=<int>                          (defaults 2, 2)\n"
      "  --hotspots=<int> --per-hotspot=<int>                 (defaults 100, 10)\n"
      "  --landmarks=<int> --separation=<int> --dims=<int>\n"
      "  --load-factor=<float> --alpha=<float> --no-stealing\n"
      "  --router-shards=<int>    router frontend shards      (default 1)\n"
      "  --splitter=round_robin|hash|sticky|adaptive          (default round_robin)\n"
      "  --gossip-period=<µs>     0 disables gossip           (default 200)\n"
      "  --gossip-weight=<float>  EMA blend weight            (default 0.5)\n"
      "  --rebalance-threshold=<ratio>  adaptive splitter migration trigger\n"
      "                           (max/min routed load; <=1 disables, default 0)\n"
      "  --migration-cap=<int>    sessions moved per rebalance round (default 8)\n"
      "  --session-capacity=<int> sticky/adaptive session bound (default 65536)\n"
      "  --arrival-gap=<µs>       sim inter-arrival gap       (default 0)\n"
      "  --inflight-batches=<int> async multiget window per processor\n"
      "                           (1 = synchronous level barrier, default 1)\n"
      "  --repartition-threshold=<ratio>  storage-tier repartition trigger\n"
      "                           (max/min server access rate; <=1 disables,\n"
      "                           default 0)\n"
      "  --repartition-cap=<int>  partitions moved per repartition round\n"
      "                           (default 4)\n"
      "  --partitions-per-server=<int>  virtual partitions per storage server\n"
      "                           (migration granularity, default 8)\n"
      "  --replication-top-k=<int>  hot partitions promoted to an extra\n"
      "                           replica per round (0 disables, default 0)\n"
      "  --replica-demote-threshold=<frac>  demote replicas once a\n"
      "                           partition's rate falls to this fraction of\n"
      "                           the average server load (default 0.1)\n"
      "  --max-replicas-per-partition=<int>  extra copies a partition may\n"
      "                           hold beyond its primary (default 2, max 3)\n"
      "  --adjacency-encoding=raw|delta_varint  storage wire format\n"
      "                           (default raw)\n"
      "  --cache-compressed       processor caches admit the compressed blob\n"
      "                           (decode on hit; needs delta_varint to pay off)\n"
      "  --trace-out=<file>       export the query-lifecycle trace as Chrome-\n"
      "                           trace JSON (open in Perfetto / chrome://tracing)\n"
      "  --trace-sample-every-n=<int>  trace every Nth query (default 1 when\n"
      "                           --trace-out is set, else 0 = tracing off)\n"
      "  --trace-buffer-capacity=<int> events per trace ring (default 65536)\n"
      "  --num-tenants=<int>      tenant keyspaces federated over the storage\n"
      "                           tier (default 1)\n"
      "  --tenant-quota-qps=<float>  per-tenant admission quota at the\n"
      "                           splitter (<=0 disables, default 0)\n"
      "  --tenant-quota-burst=<float>  admission token-bucket burst\n"
      "                           (default 32)\n"
      "  --open-loop              open-loop Poisson workload: Query::arrive_us\n"
      "                           timestamps drive arrivals on both engines\n"
      "  --arrivals=<int>         open-loop arrivals          (default 8192)\n"
      "  --arrival-rate=<qps>     open-loop aggregate rate    (default 50000)\n"
      "  --tenant-skew=<float>    Zipf skew of per-tenant rates (default 1.0)\n"
      "  --sessions-per-tenant=<int>  open-loop session universe per tenant\n"
      "                           (default 1000000)\n"
      "  --session-skew=<float>   heavy-tail exponent of session popularity\n"
      "                           (default 1.1)\n"
      "  --tenant-metrics-out=<file>  write per-tenant admission/latency\n"
      "                           metrics + answer checksum as JSON\n"
      "  --mutation-fraction=<frac>  fraction of open-loop arrivals converted\n"
      "                           to live graph writes (enables the versioned\n"
      "                           mutation path; requires --open-loop;\n"
      "                           default 0 = read-only)\n"
      "  --index-refresh-period=<µs>  minimum time between incremental\n"
      "                           index-maintenance passes on the gossip\n"
      "                           cadence (default 0 = every gossip tick)\n"
      "  --seed=<int>\n");
}

// Order-independent checksum over the run's answers: each answer folds its
// id and result fields through a SplitMix64 chain into one 64-bit word, and
// the words XOR together — so the value is identical across engines
// regardless of completion order (the soak pipeline's exactly-once check).
// With `ids_only`, only query ids are folded: under concurrent mutations
// the VALUE a query observes legitimately depends on whether the write
// landed first (engine timing), but the SET of answered ids must still
// match exactly-once across engines.
uint64_t AnswerChecksum(const std::vector<AnsweredQuery>& answers, bool ids_only) {
  uint64_t sum = 0;
  for (const AnsweredQuery& a : answers) {
    SplitMix64 chain(a.query_id);
    if (ids_only) {
      sum ^= chain.Next();
      continue;
    }
    uint64_t w = chain.Next();
    chain = SplitMix64(w ^ static_cast<uint64_t>(a.result.type));
    w = chain.Next();
    chain = SplitMix64(w ^ a.result.aggregate);
    w = chain.Next();
    chain = SplitMix64(w ^ (static_cast<uint64_t>(a.result.walk_end) << 32 |
                            a.result.walk_distinct_nodes));
    w = chain.Next();
    chain = SplitMix64(w ^ (a.result.reachable ? 1u : 0u) ^
                       (static_cast<uint64_t>(static_cast<uint32_t>(a.result.distance))
                        << 8));
    sum ^= chain.Next();
  }
  return sum;
}

// Per-tenant admission/latency metrics as JSON, consumed by
// tools/check_soak.py to gate the CI multi-tenant soak on both engines.
bool WriteTenantMetricsJson(const std::string& path, const std::string& engine,
                            const RunOptions& opts, size_t arrivals,
                            const ClusterMetrics& m, uint64_t checksum) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f,
               "{\n  \"engine\": \"%s\",\n  \"tenants\": %u,\n"
               "  \"quota_qps\": %.6g,\n  \"arrivals\": %zu,\n"
               "  \"answered\": %llu,\n  \"shed_total\": %llu,\n"
               "  \"mutations_applied\": %llu,\n  \"index_refreshes\": %llu,\n"
               "  \"answer_checksum\": \"%016llx\",\n  \"per_tenant\": [",
               engine.c_str(), opts.num_tenants, opts.tenant_quota_qps, arrivals,
               static_cast<unsigned long long>(m.queries),
               static_cast<unsigned long long>(m.queries_shed),
               static_cast<unsigned long long>(m.mutations_applied),
               static_cast<unsigned long long>(m.index_refreshes),
               static_cast<unsigned long long>(checksum));
  for (size_t i = 0; i < m.per_tenant.size(); ++i) {
    const TenantMetrics& t = m.per_tenant[i];
    std::fprintf(f,
                 "%s\n    {\"tenant\": %u, \"queries\": %llu, \"shed\": %llu, "
                 "\"shed_rate\": %.6g, \"mean_response_ms\": %.6g, "
                 "\"p50_response_ms\": %.6g, \"p99_response_ms\": %.6g, "
                 "\"p999_response_ms\": %.6g}",
                 i == 0 ? "" : ",", t.tenant, static_cast<unsigned long long>(t.queries),
                 static_cast<unsigned long long>(t.shed), t.ShedRate(),
                 t.mean_response_ms, t.p50_response_ms, t.p99_response_ms,
                 t.p999_response_ms);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  if (flags.values.count("help")) {
    PrintHelp();
    return 0;
  }

  static const std::map<std::string, DatasetId> kDatasets = {
      {"webgraph", DatasetId::kWebGraphLike},
      {"friendster", DatasetId::kFriendsterLike},
      {"memetracker", DatasetId::kMemetrackerLike},
      {"freebase", DatasetId::kFreebaseLike},
  };
  static const std::map<std::string, RoutingSchemeKind> kSchemes = {
      {"no_cache", RoutingSchemeKind::kNoCache},
      {"next_ready", RoutingSchemeKind::kNextReady},
      {"hash", RoutingSchemeKind::kHash},
      {"landmark", RoutingSchemeKind::kLandmark},
      {"embed", RoutingSchemeKind::kEmbed},
  };
  static const std::map<std::string, CachePolicy> kPolicies = {
      {"lru", CachePolicy::kLru},
      {"fifo", CachePolicy::kFifo},
      {"lfu", CachePolicy::kLfu},
      {"clock", CachePolicy::kClock},
  };

  const std::string dataset_name = flags.Get("dataset", "webgraph");
  const std::string scheme_name = flags.Get("scheme", "embed");
  const std::string engine_name = flags.Get("engine", "sim");
  if (kDatasets.count(dataset_name) == 0 || kSchemes.count(scheme_name) == 0 ||
      (engine_name != "sim" && engine_name != "threaded")) {
    std::fprintf(stderr, "unknown --dataset, --scheme or --engine; see --help\n");
    return 1;
  }
  const EngineKind engine =
      engine_name == "threaded" ? EngineKind::kThreaded : EngineKind::kSimulated;

  ExperimentEnv env(kDatasets.at(dataset_name), flags.GetDouble("scale", 0.25),
                    static_cast<uint64_t>(flags.GetInt("seed", 4242)));

  RunOptions opts;
  opts.scheme = kSchemes.at(scheme_name);
  opts.processors = static_cast<uint32_t>(flags.GetInt("processors", 7));
  opts.storage_servers = static_cast<uint32_t>(flags.GetInt("storage", 4));
  opts.cache_bytes = ParseByteSize(flags.Get("cache", "0"));
  opts.cache_policy = kPolicies.count(flags.Get("policy", "lru"))
                          ? kPolicies.at(flags.Get("policy", "lru"))
                          : CachePolicy::kLru;
  opts.cost = flags.Get("network", "infiniband") == "ethernet"
                  ? CostModel::EthernetDefaults()
                  : CostModel::InfinibandDefaults();
  opts.hotspot_radius = static_cast<int32_t>(flags.GetInt("radius", 2));
  opts.hops = static_cast<int32_t>(flags.GetInt("hops", 2));
  opts.num_hotspots = static_cast<size_t>(flags.GetInt("hotspots", 100));
  opts.queries_per_hotspot = static_cast<size_t>(flags.GetInt("per-hotspot", 10));
  opts.num_landmarks = static_cast<size_t>(flags.GetInt("landmarks", 96));
  opts.min_separation = static_cast<int32_t>(flags.GetInt("separation", 3));
  opts.dimensions = static_cast<size_t>(flags.GetInt("dims", 10));
  opts.load_factor = flags.GetDouble("load-factor", 20.0);
  opts.alpha = flags.GetDouble("alpha", 0.5);
  opts.stealing = flags.values.count("no-stealing") == 0;
  static const std::map<std::string, SplitterKind> kSplitters = {
      {"round_robin", SplitterKind::kRoundRobin},
      {"hash", SplitterKind::kHash},
      {"sticky", SplitterKind::kSticky},
      {"adaptive", SplitterKind::kAdaptive},
  };
  opts.router_shards = static_cast<uint32_t>(flags.GetInt("router-shards", 1));
  const std::string splitter_name = flags.Get("splitter", "round_robin");
  if (kSplitters.count(splitter_name) == 0) {
    std::fprintf(stderr, "unknown --splitter '%s'; see --help\n", splitter_name.c_str());
    return 1;
  }
  opts.splitter = kSplitters.at(splitter_name);
  opts.gossip_period_us = flags.GetDouble("gossip-period", 200.0);
  opts.gossip_merge_weight = flags.GetDouble("gossip-weight", 0.5);
  opts.rebalance_threshold = flags.GetDouble("rebalance-threshold", 0.0);
  opts.migration_cap = static_cast<uint32_t>(flags.GetInt("migration-cap", 8));
  opts.session_capacity =
      static_cast<uint32_t>(flags.GetInt("session-capacity", 1 << 16));
  opts.arrival_gap_us = flags.GetDouble("arrival-gap", 0.0);
  opts.max_inflight_batches =
      static_cast<uint32_t>(flags.GetInt("inflight-batches", 1));
  opts.repartition_threshold = flags.GetDouble("repartition-threshold", 0.0);
  opts.repartition_cap = static_cast<uint32_t>(flags.GetInt("repartition-cap", 4));
  opts.partitions_per_server =
      static_cast<uint32_t>(flags.GetInt("partitions-per-server", 8));
  opts.replication_top_k =
      static_cast<uint32_t>(flags.GetInt("replication-top-k", 0));
  opts.replica_demote_threshold =
      flags.GetDouble("replica-demote-threshold", 0.1);
  opts.max_replicas_per_partition =
      static_cast<uint32_t>(flags.GetInt("max-replicas-per-partition", 2));
  const std::string encoding_name = flags.Get("adjacency-encoding", "raw");
  if (encoding_name != "raw" && encoding_name != "delta_varint") {
    std::fprintf(stderr, "unknown --adjacency-encoding '%s'; see --help\n",
                 encoding_name.c_str());
    return 1;
  }
  opts.adjacency_encoding = encoding_name == "delta_varint"
                                ? AdjacencyEncoding::kDeltaVarint
                                : AdjacencyEncoding::kRaw;
  opts.cache_compressed = flags.values.count("cache-compressed") > 0;
  const std::string trace_out = flags.Get("trace-out", "");
  opts.trace_sample_every_n = static_cast<uint32_t>(
      flags.GetInt("trace-sample-every-n", trace_out.empty() ? 0 : 1));
  opts.trace_buffer_capacity =
      static_cast<uint32_t>(flags.GetInt("trace-buffer-capacity", 1 << 16));
  if (!trace_out.empty() && opts.trace_sample_every_n == 0) {
    std::fprintf(stderr, "--trace-out requires --trace-sample-every-n >= 1\n");
    return 1;
  }
  opts.num_tenants = static_cast<uint32_t>(flags.GetInt("num-tenants", 1));
  opts.tenant_quota_qps = flags.GetDouble("tenant-quota-qps", 0.0);
  opts.tenant_quota_burst = flags.GetDouble("tenant-quota-burst", 32.0);
  opts.open_loop = flags.values.count("open-loop") > 0;
  const std::string tenant_metrics_out = flags.Get("tenant-metrics-out", "");
  if (opts.num_tenants == 0) {
    std::fprintf(stderr, "--num-tenants must be >= 1\n");
    return 1;
  }
  const double mutation_fraction = flags.GetDouble("mutation-fraction", 0.0);
  if (mutation_fraction < 0.0 || mutation_fraction > 1.0) {
    std::fprintf(stderr, "--mutation-fraction must be in [0, 1]\n");
    return 1;
  }
  if (mutation_fraction > 0.0 && !opts.open_loop) {
    std::fprintf(stderr, "--mutation-fraction requires --open-loop\n");
    return 1;
  }
  opts.enable_mutations = mutation_fraction > 0.0;
  opts.index_refresh_period_us = flags.GetDouble("index-refresh-period", 0.0);

  const Graph& g = env.graph();
  std::printf("dataset %s (scale %.2f): %zu nodes, %zu edges\n", dataset_name.c_str(),
              flags.GetDouble("scale", 0.25), g.num_nodes(), g.num_edges());
  std::printf("running %s on %u processors / %u storage servers (%s, %s engine)...\n",
              scheme_name.c_str(), opts.processors, opts.storage_servers,
              opts.cost.net.name.c_str(), EngineKindName(engine).c_str());

  // Assembled by hand (rather than env.Run) so the engine outlives the run:
  // the trace export reads the recorder after the metrics come back.
  std::vector<Query> workload;
  std::vector<GraphMutation> mutations;
  if (opts.open_loop) {
    OpenLoopConfig ol;
    ol.num_tenants = opts.num_tenants;
    ol.num_arrivals = static_cast<size_t>(flags.GetInt("arrivals", 8192));
    ol.arrival_rate_qps = flags.GetDouble("arrival-rate", 50000.0);
    ol.tenant_skew = flags.GetDouble("tenant-skew", 1.0);
    ol.sessions_per_tenant =
        static_cast<size_t>(flags.GetInt("sessions-per-tenant", 1000000));
    ol.session_skew = flags.GetDouble("session-skew", 1.1);
    ol.hops = opts.hops;
    ol.seed = env.seed() ^ 0x99;
    if (mutation_fraction > 0.0) {
      // Mixed read/write stream from one arrival process: a deterministic
      // slice of the arrivals becomes live edge writes at the same instants.
      MutationScheduleConfig mc;
      mc.seed = env.seed() ^ 0x66;
      MixedWorkload mixed =
          GenerateMixedOpenLoopWorkload(env.graph(), ol, mutation_fraction, mc);
      workload = std::move(mixed.queries);
      mutations = std::move(mixed.mutations);
    } else {
      workload = GenerateOpenLoopWorkload(env.graph(), ol);
    }
  } else {
    workload = env.HotspotWorkload(opts.hotspot_radius, opts.hops, opts.num_hotspots,
                                   opts.queries_per_hotspot);
  }
  auto cluster = MakeClusterEngine(engine, env.graph(), env.MakeClusterConfig(opts),
                                   env.MakeStrategy(opts));
  if (!mutations.empty()) {
    cluster->set_mutation_schedule(std::move(mutations));
  }
  const ClusterMetrics m = cluster->Run(workload);

  if (!trace_out.empty()) {
    TraceMetadata metadata;
    metadata.emplace_back("dataset", dataset_name);
    metadata.emplace_back("scheme", scheme_name);
    metadata.emplace_back("scale", flags.Get("scale", "0.25"));
    if (cluster->ExportTrace(trace_out, metadata)) {
      std::printf("wrote trace: %s (%llu events, %llu dropped)\n", trace_out.c_str(),
                  static_cast<unsigned long long>(m.trace_events_recorded),
                  static_cast<unsigned long long>(m.trace_events_dropped));
    } else {
      std::fprintf(stderr, "trace export to %s failed\n", trace_out.c_str());
      return 1;
    }
  }

  Table t({"metric", "value"});
  t.AddRow({"engine", EngineKindName(engine)});
  t.AddRow({"queries", Table::Int(static_cast<int64_t>(m.queries))});
  t.AddRow({"throughput", Table::Num(m.throughput_qps, 1) + " q/s"});
  t.AddRow({"mean response", Table::Num(m.mean_response_ms, 3) + " ms"});
  t.AddRow({"p50 response", Table::Num(m.p50_response_ms, 3) + " ms"});
  t.AddRow({"p95 response", Table::Num(m.p95_response_ms, 3) + " ms"});
  t.AddRow({"p99 response", Table::Num(m.p99_response_ms, 3) + " ms"});
  t.AddRow({"p99.9 response", Table::Num(m.p999_response_ms, 3) + " ms"});
  t.AddRow({"mean queue wait", Table::Num(m.mean_queue_wait_ms, 3) + " ms"});
  t.AddRow({"cache hit rate", Table::Num(100.0 * m.CacheHitRate(), 1) + " %"});
  t.AddRow({"cache hits / misses", Table::Int(static_cast<int64_t>(m.cache_hits)) + " / " +
                                       Table::Int(static_cast<int64_t>(m.cache_misses))});
  t.AddRow({"bytes from storage", Table::Bytes(m.bytes_from_storage)});
  t.AddRow({"storage batches", Table::Int(static_cast<int64_t>(m.storage_batches))});
  if (opts.adjacency_encoding != AdjacencyEncoding::kRaw || opts.cache_compressed) {
    t.AddRow({"adjacency encoding", AdjacencyEncodingName(opts.adjacency_encoding) +
                                        (opts.cache_compressed ? " (compressed cache)"
                                                               : "")});
    t.AddRow({"compression ratio", Table::Num(m.adjacency_compression_ratio, 2) + "x"});
    t.AddRow({"cache entries", Table::Int(static_cast<int64_t>(m.cache_entries))});
    t.AddRow({"decompress time", Table::Num(m.decompress_us / 1000.0, 3) + " ms"});
  }
  t.AddRow({"storage load imbalance",
            Table::Num(m.storage_load_imbalance, 2) + " max/min"});
  t.AddRow({"steals", Table::Int(static_cast<int64_t>(m.steals))});
  const RepartitionConfig repartition =
      env.MakeClusterConfig(opts).MakeRepartitionConfig();
  if (repartition.active()) {
    t.AddRow({"partitions migrated",
              Table::Int(static_cast<int64_t>(m.partitions_migrated))});
    t.AddRow(
        {"repartition stall", Table::Num(m.repartition_stall_us / 1000.0, 3) + " ms"});
  }
  if (repartition.replication_enabled()) {
    t.AddRow({"partitions replicated",
              Table::Int(static_cast<int64_t>(m.partitions_replicated))});
    t.AddRow({"replica reads", Table::Int(static_cast<int64_t>(m.replica_reads))});
    t.AddRow({"replica demotions",
              Table::Int(static_cast<int64_t>(m.replica_demotions))});
  }
  if (opts.max_inflight_batches > 1) {
    t.AddRow({"inflight batch peak",
              Table::Int(static_cast<int64_t>(m.batches_inflight_peak))});
    t.AddRow({"fetch overlap", Table::Num(m.fetch_overlap_us / 1000.0, 3) + " ms"});
  }
  if (opts.trace_sample_every_n > 0) {
    t.AddRow({"trace events", Table::Int(static_cast<int64_t>(m.trace_events_recorded)) +
                                  " (" +
                                  Table::Int(static_cast<int64_t>(m.trace_events_dropped)) +
                                  " dropped)"});
    t.AddRow({"trace ring high-water",
              Table::Int(static_cast<int64_t>(m.trace_buffer_high_water))});
  }
  if (opts.router_shards > 1) {
    t.AddRow({"router shards", Table::Int(static_cast<int64_t>(opts.router_shards)) +
                                   " (" + SplitterKindName(opts.splitter) + ")"});
    t.AddRow({"gossip rounds", Table::Int(static_cast<int64_t>(m.gossip_rounds))});
    t.AddRow({"ema divergence", Table::Num(m.router_ema_divergence, 4)});
    t.AddRow({"load imbalance", Table::Num(m.router_load_imbalance, 2) + " max/min"});
    t.AddRow({"sessions migrated",
              Table::Int(static_cast<int64_t>(m.sessions_migrated))});
    if (m.sticky_evictions > 0) {
      t.AddRow({"session evictions",
                Table::Int(static_cast<int64_t>(m.sticky_evictions))});
    }
  }
  if (opts.enable_mutations) {
    t.AddRow({"mutations applied",
              Table::Int(static_cast<int64_t>(m.mutations_applied))});
    t.AddRow({"index refreshes",
              Table::Int(static_cast<int64_t>(m.index_refreshes))});
    t.AddRow({"stale distance error", Table::Num(m.stale_distance_error, 4)});
  }
  if (opts.num_tenants > 1 || opts.tenant_quota_qps > 0.0) {
    t.AddRow({"tenants", Table::Int(static_cast<int64_t>(opts.num_tenants))});
    t.AddRow({"queries shed", Table::Int(static_cast<int64_t>(m.queries_shed))});
    for (const TenantMetrics& tm : m.per_tenant) {
      t.AddRow({"tenant " + Table::Int(tm.tenant),
                Table::Int(static_cast<int64_t>(tm.queries)) + " q / " +
                    Table::Int(static_cast<int64_t>(tm.shed)) + " shed / p99 " +
                    Table::Num(tm.p99_response_ms, 3) + " ms"});
    }
  }
  std::printf("%s", t.ToString().c_str());

  if (!tenant_metrics_out.empty()) {
    // Under concurrent mutations the observed values depend on engine
    // timing; exactly-once is then asserted over the answered-id set.
    const uint64_t checksum =
        AnswerChecksum(cluster->answers(), /*ids_only=*/opts.enable_mutations);
    if (WriteTenantMetricsJson(tenant_metrics_out, engine_name, opts, workload.size(),
                               m, checksum)) {
      std::printf("wrote tenant metrics: %s\n", tenant_metrics_out.c_str());
    } else {
      std::fprintf(stderr, "tenant metrics export to %s failed\n",
                   tenant_metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}
