#!/usr/bin/env python3
"""Bench-trajectory regression gate.

Compares the BENCH_<name>.json files a CI bench run just produced against
the checked-in baselines under bench/baselines/ and fails (exit 1) when any
row's mean latency regressed by more than the threshold (default 25%).

Rows are joined on (group, label). Rows that only exist on one side are
reported but do not fail the gate (sweeps evolve); a bench with a baseline
but no current file fails, so a silently-dropped bench cannot pass.

Only deterministic metrics should be gated: CI runs this on the simulated
engine (virtual time), never on threaded wall-clock numbers.

Three metrics are gated per row: the mean (--metric, default
mean_response_ms, --threshold 25%), the tail (p99_response_ms,
--p99-threshold, default 40% — looser because log-bucketed histogram
percentiles carry up to ~3.2% bucket error on top of genuine tail noise),
and the extreme tail (p999_response_ms, --p999-threshold, default 50% —
loosest: at bench sample sizes p999 sits on a handful of queries). Rows
whose baseline predates a tail field skip that check.

Usage:
  tools/check_bench_regression.py --current <dir> [--baseline bench/baselines]
      [--threshold 0.25] [--metric mean_response_ms] [--p99-threshold 0.40]
      [--p999-threshold 0.50]
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def rows_by_key(doc):
    return {(r.get("group", ""), r["label"]): r for r in doc.get("results", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current", required=True, help="directory with fresh BENCH_*.json")
    ap.add_argument("--baseline", default="bench/baselines")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fail when metric > baseline * (1 + threshold)")
    ap.add_argument("--metric", default="mean_response_ms")
    ap.add_argument("--p99-metric", default="p99_response_ms")
    ap.add_argument("--p99-threshold", type=float, default=0.40,
                    help="tail-latency tolerance (0 disables the p99 gate)")
    ap.add_argument("--p999-metric", default="p999_response_ms")
    ap.add_argument("--p999-threshold", type=float, default=0.50,
                    help="extreme-tail tolerance (0 disables the p999 gate)")
    args = ap.parse_args()

    gates = [(args.metric, args.threshold)]
    if args.p99_threshold > 0:
        gates.append((args.p99_metric, args.p99_threshold))
    if args.p999_threshold > 0:
        gates.append((args.p999_metric, args.p999_threshold))

    baselines = sorted(glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not baselines:
        print(f"no baselines under {args.baseline}; nothing to gate")
        return 0

    failures = []
    compared = 0
    skipped = {}  # (file, metric) -> row count, for baselines predating a field
    for base_path in baselines:
        name = os.path.basename(base_path)
        cur_path = os.path.join(args.current, name)
        if not os.path.exists(cur_path):
            failures.append(f"{name}: baseline exists but the bench produced no result")
            continue
        base_doc, cur_doc = load(base_path), load(cur_path)
        if base_doc.get("engine") != cur_doc.get("engine"):
            print(f"{name}: engine mismatch ({base_doc.get('engine')} vs "
                  f"{cur_doc.get('engine')}); skipping")
            continue
        base_rows, cur_rows = rows_by_key(base_doc), rows_by_key(cur_doc)
        for key, base_row in sorted(base_rows.items()):
            cur_row = cur_rows.get(key)
            if cur_row is None:
                print(f"{name}: row {key} missing from current run (sweep changed?)")
                continue
            for metric, threshold in gates:
                base_v, cur_v = base_row.get(metric), cur_row.get(metric)
                if base_v is None or cur_v is None or base_v <= 0:
                    if base_v is None:
                        skipped[(name, metric)] = skipped.get((name, metric), 0) + 1
                    continue
                compared += 1
                ratio = cur_v / base_v
                if ratio > 1.0 + threshold:
                    failures.append(
                        f"{name}: {'/'.join(key)}: {metric} {cur_v:.4g} vs "
                        f"baseline {base_v:.4g} (+{100 * (ratio - 1):.1f}%, "
                        f"limit +{100 * threshold:.0f}%)")
        extra = set(cur_rows) - set(base_rows)
        for key in sorted(extra):
            print(f"{name}: new row {key} (no baseline yet)")

    for (name, metric), count in sorted(skipped.items()):
        print(f"{name}: {metric} absent from baseline on {count} row(s); "
              f"skipped (reseed the baseline to gate it)")
    print(f"compared {compared} row-metrics against {len(baselines)} baseline files")
    if failures:
        print("\nREGRESSION GATE FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
