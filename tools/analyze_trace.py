#!/usr/bin/env python3
"""Critical-path analyzer for gRouting Chrome-trace exports.

Reads trace JSON files written by `--trace-out` (both engines share the span
schema, see docs/OBSERVABILITY.md) and attributes each traced query's
response time into four components:

  queue    time between router enqueue and processor dispatch (queue_wait
           spans; reported alongside, not inside, the response breakdown —
           the engines measure response from dispatch)
  network  time the query's processor spent shipped to or stalled on the
           storage tier (ship + stall spans)
  decode   adjacency decompression (decode spans)
  compute  everything else inside the query span (remainder)

Per file it prints the mean and p99 response with the component breakdown,
keyed by the trace's embedded metadata (engine, scheme, dataset). Pass
several files to compare schemes side by side.

  tools/analyze_trace.py trace_embed.json trace_hash.json
  tools/analyze_trace.py --validate trace.json   # structural checks only
"""

import argparse
import json
import sys

SPAN_TYPES = {"queue_wait", "ship", "query", "level", "batch", "stall",
              "decode", "compute"}
INSTANT_TYPES = {"arrival", "routed"}
EPS_US = 0.5  # wall-clock jitter allowance for nesting checks


def load(path):
    with open(path) as f:
        return json.load(f)


def events_by_query(doc):
    """Groups non-metadata trace events by query id."""
    queries = {}
    for e in doc.get("traceEvents", []):
        if e.get("ph") == "M":
            continue
        qid = e.get("args", {}).get("query_id")
        if qid is None:
            continue
        queries.setdefault(qid, []).append(e)
    return queries


def percentile(values, p):
    if not values:
        return 0.0
    s = sorted(values)
    rank = p / 100.0 * (len(s) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(s) - 1)
    return s[lo] + (s[hi] - s[lo]) * (rank - lo)


def validate(path, doc):
    """Structural well-formedness checks; returns a list of errors."""
    errors = []
    warnings = []
    if "traceEvents" not in doc:
        return [f"{path}: no traceEvents array"], []
    meta = doc.get("metadata", {})
    dropped = int(meta.get("events_dropped", "0"))

    for i, e in enumerate(doc["traceEvents"]):
        where = f"{path}: event {i}"
        for field in ("name", "ph", "pid", "tid"):
            if field not in e:
                errors.append(f"{where}: missing '{field}'")
        ph = e.get("ph")
        if ph == "M":
            continue
        if "ts" not in e or e["ts"] < 0:
            errors.append(f"{where}: missing or negative ts")
        if ph == "X" and e.get("dur", -1) < 0:
            errors.append(f"{where}: complete span with missing/negative dur")
        name = e.get("name")
        if name not in SPAN_TYPES and name not in INSTANT_TYPES:
            errors.append(f"{where}: unknown event name '{name}'")
        if "args" not in e or "query_id" not in e.get("args", {}):
            errors.append(f"{where}: missing args.query_id")
        if len(errors) > 20:
            errors.append(f"{path}: ... further errors suppressed")
            return errors, warnings

    # Per-query structure. When the rings dropped events the lifecycle is
    # legitimately incomplete, so these demote to warnings.
    def report(msg):
        (warnings if dropped > 0 else errors).append(msg)

    for qid, events in sorted(events_by_query(doc).items()):
        spans = [e for e in events if e.get("ph") == "X"]
        query_spans = [e for e in spans if e["name"] == "query"]
        if any(e["name"] not in ("queue_wait",) for e in spans):
            if len(query_spans) == 0:
                report(f"{path}: query {qid} has spans but no 'query' span")
                continue
        if len(query_spans) > 1:
            errors.append(f"{path}: query {qid} has {len(query_spans)} 'query' spans")
            continue
        levels = {}
        for e in spans:
            if e["name"] == "level":
                levels[e["args"]["level"]] = (e["ts"], e["ts"] + e["dur"])
        for e in spans:
            if e["name"] != "batch":
                continue
            lvl = e["args"]["level"]
            if lvl not in levels:
                report(f"{path}: query {qid} batch at level {lvl} has no level span")
                continue
            lo, hi = levels[lvl]
            # Batches are issued inside their level; with async windows a
            # batch may *complete* after the window rolls, so only the start
            # is required to nest.
            if not (lo - EPS_US <= e["ts"] <= hi + EPS_US):
                report(f"{path}: query {qid} batch start {e['ts']:.3f} outside "
                       f"level {lvl} span [{lo:.3f}, {hi:.3f}]")
    return errors, warnings


def attribute(doc):
    """Returns per-query component dicts (µs) for queries with a query span."""
    rows = []
    for qid, events in events_by_query(doc).items():
        spans = [e for e in events if e.get("ph") == "X"]
        query_spans = [e for e in spans if e["name"] == "query"]
        if len(query_spans) != 1:
            continue
        total = query_spans[0]["dur"]
        comp = {"queue": 0.0, "network": 0.0, "decode": 0.0}
        for e in spans:
            if e["name"] == "queue_wait":
                comp["queue"] += e["dur"]
            elif e["name"] in ("ship", "stall"):
                comp["network"] += e["dur"]
            elif e["name"] == "decode":
                comp["decode"] += e["dur"]
        comp["compute"] = max(0.0, total - comp["network"] - comp["decode"])
        comp["response"] = total
        comp["query_id"] = qid
        rows.append(comp)
    return rows


def print_breakdown(path, doc, rows):
    meta = doc.get("metadata", {})
    label = " ".join(f"{k}={meta[k]}" for k in ("engine", "scheme", "dataset")
                     if k in meta)
    print(f"\n{path}: {label or 'no metadata'} ({len(rows)} traced queries)")
    if not rows:
        return True
    mean_resp = sum(r["response"] for r in rows) / len(rows)
    p99_resp = percentile([r["response"] for r in rows], 99.0)
    print(f"  {'component':<10} {'mean (ms)':>12} {'p99 (ms)':>12} {'% of mean':>10}")
    sum_of_means = 0.0
    for key in ("network", "decode", "compute"):
        vals = [r[key] for r in rows]
        mean = sum(vals) / len(vals)
        sum_of_means += mean
        share = 100.0 * mean / mean_resp if mean_resp > 0 else 0.0
        print(f"  {key:<10} {mean / 1000.0:>12.4f} "
              f"{percentile(vals, 99.0) / 1000.0:>12.4f} {share:>9.1f}%")
    print(f"  {'response':<10} {mean_resp / 1000.0:>12.4f} {p99_resp / 1000.0:>12.4f}")
    queue_vals = [r["queue"] for r in rows]
    print(f"  {'(queue)':<10} {sum(queue_vals) / len(queue_vals) / 1000.0:>12.4f} "
          f"{percentile(queue_vals, 99.0) / 1000.0:>12.4f}   pre-dispatch")
    if mean_resp > 0:
        gap = abs(sum_of_means - mean_resp) / mean_resp
        print(f"  components sum to {100.0 * sum_of_means / mean_resp:.1f}% "
              f"of mean response")
        if gap > 0.05:
            print(f"  WARNING: component sum off by {100 * gap:.1f}% (> 5%)")
            return False
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("traces", nargs="+", help="Chrome-trace JSON files")
    ap.add_argument("--validate", action="store_true",
                    help="run structural checks only; exit 1 on any error")
    args = ap.parse_args()

    ok = True
    for path in args.traces:
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable: {e}")
            ok = False
            continue
        if args.validate:
            errors, warnings = validate(path, doc)
            for w in warnings:
                print(f"warning: {w}")
            for e in errors:
                print(f"error: {e}")
            n = len([e for e in doc.get("traceEvents", []) if e.get("ph") != "M"])
            print(f"{path}: {n} events, {len(errors)} errors, "
                  f"{len(warnings)} warnings")
            ok = ok and not errors
        else:
            ok = print_breakdown(path, doc, attribute(doc)) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
