#!/usr/bin/env python3
"""Docs gate: markdown links resolve, and the shared config/metrics structs
stay documented.

Two checks, both designed to fail on UNDOCUMENTED ADDITIONS rather than to
police prose:

1. Every relative markdown link in README.md, docs/*.md and
   bench/baselines/README.md must point at a file that exists (external
   http(s) links are not fetched — CI must not depend on the network).

2. Every field of `ClusterConfig` and `ClusterMetrics`
   (src/core/cluster_engine.h) must carry a `//` doc comment — trailing on
   the field's line, or on the line directly above it. These two structs
   are the contract every bench, example and test programs against, and
   docs/METRICS.md mirrors them; an uncommented field is a field the next
   reader cannot interpret.

Usage: tools/check_docs.py [--root <repo root>]
"""

import argparse
import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
STRUCTS = ("ClusterConfig", "ClusterMetrics")
HEADER = os.path.join("src", "core", "cluster_engine.h")

# A field declaration: ends in ';', is not a method/using/friend line.
FIELD_RE = re.compile(r"^\s*[A-Za-z_][\w:<>,\s*&\]\[]*\s+(\w+)\s*(=[^;]*|\{[^;]*\})?;")


def check_links(root):
    failures = []
    files = [os.path.join(root, "README.md"),
             os.path.join(root, "bench", "baselines", "README.md")]
    files += sorted(glob.glob(os.path.join(root, "docs", "**", "*.md"), recursive=True))
    checked = 0
    for path in files:
        if not os.path.exists(path):
            failures.append(f"{os.path.relpath(path, root)}: file missing")
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue  # pure in-page anchor
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
            checked += 1
            if not os.path.exists(resolved):
                failures.append(
                    f"{os.path.relpath(path, root)}: broken link -> {target}")
    print(f"link check: {checked} relative links across {len(files)} files")
    return failures


def struct_body(lines, name):
    """Lines of the struct's top-level body (nested method bodies elided)."""
    start = None
    for i, line in enumerate(lines):
        if re.match(rf"\s*struct {name}\b", line) and "{" in line:
            start = i
            break
    if start is None:
        return None
    depth = 0
    body = []
    for line in lines[start:]:
        opens, closes = line.count("{"), line.count("}")
        if depth == 1 and not (line.strip().startswith("}")):
            body.append(line)
        depth += opens - closes
        if depth == 0 and line is not lines[start]:
            break
    return body


def check_field_comments(root):
    path = os.path.join(root, HEADER)
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    failures = []
    fields = 0
    for name in STRUCTS:
        body = struct_body(lines, name)
        if body is None:
            failures.append(f"{HEADER}: struct {name} not found")
            continue
        prev_was_comment = False
        depth = 0
        for line in body:
            stripped = line.strip()
            in_method_body = depth > 0
            depth += line.count("{") - line.count("}")
            if in_method_body or not stripped:
                prev_was_comment = False
                continue
            if stripped.startswith("//"):
                prev_was_comment = True
                continue
            m = FIELD_RE.match(line)
            if m is None or "(" in line.split("//")[0].rsplit(";", 1)[0].split("=")[0]:
                # method, constructor, using-decl, ... — not a field
                prev_was_comment = False
                continue
            fields += 1
            documented = prev_was_comment or "//" in line
            if not documented:
                failures.append(
                    f"{HEADER}: {name}::{m.group(1)} has no // doc comment")
            prev_was_comment = False
    print(f"doc-comment check: {fields} fields across {len(STRUCTS)} structs")
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    args = ap.parse_args()

    failures = check_links(args.root) + check_field_comments(args.root)
    if failures:
        print("\nDOCS GATE FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("docs gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
