#!/usr/bin/env python3
"""Multi-tenant soak gate.

Consumes the per-tenant metrics JSON files grouting_cli writes with
--tenant-metrics-out (one per engine) and fails (exit 1) unless admission
control behaved exactly as specified on every run:

  * in-quota tenants (every tenant NOT listed in --expect-shed-tenants)
    shed exactly 0 arrivals — quotas must never drop admitted-tier traffic,
  * every expected over-quota tenant actually shed (> 0) and stayed under
    --max-shed-rate — shedding is bounded, not a collapse,
  * the per-file ledger balances: answered + shed_total == arrivals and
    answered == sum(per-tenant queries),
  * across files (engines), per-tenant admitted/shed counts and the
    order-independent answer checksum are identical — both engines executed
    the same admission plan and produced the same answers exactly once,
  * with --require-mutations, every run applied that exact number of online
    mutations and the count is identical across engines — the write path
    dropped nothing and duplicated nothing while queries were in flight.

Usage:
  tools/check_soak.py soak/tenant_metrics_sim.json \
      soak/tenant_metrics_threaded.json \
      [--expect-shed-tenants 0] [--max-shed-rate 0.6] \
      [--require-mutations 2000]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def check_file(doc, path, expect_shed, max_shed_rate, failures):
    arrivals = doc["arrivals"]
    answered = doc["answered"]
    shed_total = doc["shed_total"]
    per_tenant = doc["per_tenant"]

    if answered + shed_total != arrivals:
        failures.append(f"{path}: answered {answered} + shed {shed_total} != "
                        f"arrivals {arrivals}")
    if sum(t["queries"] for t in per_tenant) != answered:
        failures.append(f"{path}: per-tenant queries do not sum to answered "
                        f"{answered}")
    if sum(t["shed"] for t in per_tenant) != shed_total:
        failures.append(f"{path}: per-tenant sheds do not sum to shed_total "
                        f"{shed_total}")

    for t in per_tenant:
        tid, shed, rate = t["tenant"], t["shed"], t["shed_rate"]
        if tid in expect_shed:
            if shed == 0:
                failures.append(f"{path}: tenant {tid} was expected over quota "
                                f"but shed nothing")
            if rate > max_shed_rate:
                failures.append(f"{path}: tenant {tid} shed rate {rate:.3f} "
                                f"exceeds bound {max_shed_rate}")
        elif shed != 0:
            failures.append(f"{path}: in-quota tenant {tid} shed {shed} "
                            f"arrivals (must be exactly 0)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("files", nargs="+", help="tenant metrics JSON, one per engine")
    ap.add_argument("--expect-shed-tenants", default="",
                    help="comma-separated tenant ids allowed (and required) to shed")
    ap.add_argument("--max-shed-rate", type=float, default=0.6,
                    help="shed-rate bound for each expected over-quota tenant")
    ap.add_argument("--require-mutations", type=int, default=None,
                    help="exact mutations_applied every run must report "
                         "(exactly-once writes under load)")
    args = ap.parse_args()

    expect_shed = {int(t) for t in args.expect_shed_tenants.split(",") if t != ""}
    docs = [(path, load(path)) for path in args.files]

    failures = []
    for path, doc in docs:
        check_file(doc, path, expect_shed, args.max_shed_rate, failures)
        if args.require_mutations is not None:
            applied = doc.get("mutations_applied")
            if applied != args.require_mutations:
                failures.append(f"{path}: mutations_applied {applied} != "
                                f"required {args.require_mutations} "
                                f"(lost or duplicated writes)")

    # Cross-engine exactly-once: identical admission plan and answer set.
    ref_path, ref = docs[0]
    for path, doc in docs[1:]:
        if doc["answer_checksum"] != ref["answer_checksum"]:
            failures.append(f"{path}: answer checksum {doc['answer_checksum']} != "
                            f"{ref_path}'s {ref['answer_checksum']}")
        ref_counts = {t["tenant"]: (t["queries"], t["shed"]) for t in ref["per_tenant"]}
        counts = {t["tenant"]: (t["queries"], t["shed"]) for t in doc["per_tenant"]}
        if counts != ref_counts:
            failures.append(f"{path}: per-tenant admitted/shed counts diverge "
                            f"from {ref_path}")
        if doc.get("mutations_applied") != ref.get("mutations_applied"):
            failures.append(f"{path}: mutations_applied "
                            f"{doc.get('mutations_applied')} != {ref_path}'s "
                            f"{ref.get('mutations_applied')}")

    for path, doc in docs:
        shed = doc["shed_total"]
        rate = shed / doc["arrivals"] if doc["arrivals"] else 0.0
        print(f"{path}: engine={doc['engine']} tenants={doc['tenants']} "
              f"arrivals={doc['arrivals']} answered={doc['answered']} "
              f"shed={shed} ({100 * rate:.1f}%) "
              f"mutations={doc.get('mutations_applied', 0)} "
              f"checksum={doc['answer_checksum']}")

    if failures:
        print("\nSOAK GATE FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("soak gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
