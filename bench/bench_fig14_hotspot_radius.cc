// Figure 14: r-hop hotspot, 2-hop traversal workloads for r in {1, 2} —
// response time plus cache hits/misses for all five schemes (webgraph-like).
//
// Paper: smart routing beats the baselines for both radii; tighter hotspots
// (r=1) overlap more, widening the gap.

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow> rows;
  return rows;
}

void BM_Fig14(benchmark::State& state) {
  const auto scheme = AllSchemes()[static_cast<size_t>(state.range(0))];
  const auto r = static_cast<int32_t>(state.range(1));
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.hotspot_radius = r;
  opts.hops = 2;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  char label[96];
  std::snprintf(label, sizeof(label), "%s r=%d", RoutingSchemeKindName(scheme).c_str(), r);
  Rows().push_back({label, m});
}

BENCHMARK(BM_Fig14)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Figure 14: r-hop hotspot, 2-hop traversal (response + hits/misses)",
      grouting::bench::Rows());
  grouting::bench::PrintPaperShape(
      "landmark/embed obtain far more cache hits and lower response than "
      "next_ready/hash for both r=1 and r=2; no_cache is the upper response bound.");
  grouting::bench::WriteBenchJson("fig14_hotspot_radius",
                                  {{"hotspot_radius", &grouting::bench::Rows()}});
  return 0;
}
