// Figure 8: deployment-flexibility scaling on the webgraph-like dataset.
//   (a) throughput vs number of query processors (1..7, 4 storage servers)
//   (b) cache hits vs number of query processors
//   (c) throughput vs number of storage servers (1..7, 4 processors)
//
// Paper: Embed sustains its cache-hit count as processors are added and
// scales near-linearly; baselines' hits decay and their throughput
// saturates at 3-5 processors. Storage-tier scaling saturates at ~4 servers
// (the bottleneck moves back to the processors).

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& ProcRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& StorageRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

void BM_Fig8a_Processors(benchmark::State& state) {
  const auto scheme = AllSchemes()[static_cast<size_t>(state.range(0))];
  const auto procs = static_cast<uint32_t>(state.range(1));
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.processors = procs;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  ProcRows().push_back(
      {RoutingSchemeKindName(scheme) + " P=" + std::to_string(procs), m});
}

void BM_Fig8c_StorageServers(benchmark::State& state) {
  const auto scheme = AllSchemes()[static_cast<size_t>(state.range(0))];
  const auto servers = static_cast<uint32_t>(state.range(1));
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.processors = 4;
  opts.storage_servers = servers;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  StorageRows().push_back(
      {RoutingSchemeKindName(scheme) + " M=" + std::to_string(servers), m});
}

BENCHMARK(BM_Fig8a_Processors)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 2, 3, 4, 5, 6, 7}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig8c_StorageServers)
    ->ArgsProduct({{0, 2, 4}, {1, 2, 3, 4, 5, 6, 7}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable("Figure 8(a,b): vary query processors (4 storage servers)",
                                     grouting::bench::ProcRows());
  grouting::bench::PrintPaperShape(
      "embed/landmark sustain cache hits (and scale throughput) to 7 processors; "
      "next_ready/hash hit counts decay and throughput flattens by 3-5 processors.");
  grouting::bench::PrintMetricsTable("Figure 8(c): vary storage servers (4 processors)",
                                     grouting::bench::StorageRows());
  grouting::bench::PrintPaperShape(
      "1-2 storage servers bottleneck the tier; throughput saturates at ~4 servers "
      "as the bottleneck moves back to the processing tier.");
  grouting::bench::WriteBenchJson("fig8_scalability",
                                  {{"processors", &grouting::bench::ProcRows()},
                                   {"storage_servers", &grouting::bench::StorageRows()}});
  return 0;
}
