// Figure 15: 2-hop hotspot, h-hop traversal workloads for h in {1, 2, 3} —
// response time for all five schemes (webgraph-like).
//
// Paper: the smart-routing advantage holds at every h, but narrows at h=3
// because computation over ~367K-node neighbourhoods dominates the benefit
// of cache hits (ours scales the same way on the stand-in).

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow> rows;
  return rows;
}

void BM_Fig15(benchmark::State& state) {
  const auto scheme = AllSchemes()[static_cast<size_t>(state.range(0))];
  const auto h = static_cast<int32_t>(state.range(1));
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.hotspot_radius = 2;
  opts.hops = h;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  char label[96];
  std::snprintf(label, sizeof(label), "%s h=%d", RoutingSchemeKindName(scheme).c_str(), h);
  Rows().push_back({label, m});
}

BENCHMARK(BM_Fig15)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Figure 15: 2-hop hotspot, h-hop traversal (h = 1, 2, 3)", grouting::bench::Rows());
  grouting::bench::PrintPaperShape(
      "smart routing wins at every h; at h=3 the gap narrows (compute on the much "
      "larger neighbourhood dominates; paper: ~15% advantage remains).");
  grouting::bench::WriteBenchJson("fig15_traversal_depth",
                                  {{"traversal_depth", &grouting::bench::Rows()}});
  return 0;
}
