// Figure 16: efficiency on the other datasets — memetracker-like and
// friendster-like — with the 2-hop hotspot, 2-hop traversal workload.
//
// Paper: on Memetracker, caching cuts ~30% vs no-cache and smart routing
// another ~10% vs the baselines. On Friendster the gains shrink (~7% and
// ~3%): 2-hop neighbourhoods are huge (compute-bound) and hotspot overlap
// is low, so caching is least effective there.

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env(int dataset) {
  static ExperimentEnv envs[] = {
      ExperimentEnv(DatasetId::kMemetrackerLike, BenchScale()),
      ExperimentEnv(DatasetId::kFriendsterLike, BenchScale() * 0.5),
  };
  return envs[dataset];
}

std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow> rows;
  return rows;
}

void BM_Fig16(benchmark::State& state) {
  const int dataset = static_cast<int>(state.range(0));
  const auto scheme = AllSchemes()[static_cast<size_t>(state.range(1))];
  ExperimentEnv& env = Env(dataset);
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  ClusterMetrics m;
  for (auto _ : state) {
    m = env.Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  Rows().push_back({env.spec().name + " " + RoutingSchemeKindName(scheme), m});
}

BENCHMARK(BM_Fig16)
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Figure 16: response time on memetracker-like and friendster-like",
      grouting::bench::Rows());
  grouting::bench::PrintPaperShape(
      "memetracker: baselines ~30% under no-cache, smart routing ~10% more; "
      "friendster: much smaller gains (low overlap, compute-dominated).");
  grouting::bench::WriteBenchJson("fig16_other_datasets",
                                  {{"datasets", &grouting::bench::Rows()}});
  return 0;
}
