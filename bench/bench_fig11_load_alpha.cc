// Figure 11: sensitivity to (a) the load factor that trades cache locality
// against query stealing, and (b) the EMA smoothing parameter alpha.
//
// Paper: throughput peaks at load factor 10-20 (small values degenerate to
// load balancing, large values to pure locality with imbalance); response
// time is best for alpha in [0.25, 0.75].

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& LoadRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& AlphaRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

const std::vector<double>& LoadFactors() {
  static const std::vector<double> kLf = {0.01, 0.1, 1, 10, 20, 100, 1000, 10000};
  return kLf;
}

void BM_Fig11a_LoadFactor(benchmark::State& state) {
  static const RoutingSchemeKind kSchemes[] = {
      RoutingSchemeKind::kEmbed, RoutingSchemeKind::kLandmark, RoutingSchemeKind::kHash};
  const auto scheme = kSchemes[static_cast<size_t>(state.range(0))];
  const double lf = LoadFactors()[static_cast<size_t>(state.range(1))];
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.load_factor = lf;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  char label[96];
  std::snprintf(label, sizeof(label), "%s lf=%g", RoutingSchemeKindName(scheme).c_str(), lf);
  LoadRows().push_back({label, m});
}

void BM_Fig11b_Alpha(benchmark::State& state) {
  const bool embed = state.range(0) == 0;
  const double alpha = static_cast<double>(state.range(1)) / 100.0;
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = embed ? RoutingSchemeKind::kEmbed : RoutingSchemeKind::kHash;
  opts.alpha = alpha;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  char label[96];
  std::snprintf(label, sizeof(label), "%s alpha=%.2f",
                RoutingSchemeKindName(opts.scheme).c_str(), alpha);
  AlphaRows().push_back({label, m});
}

BENCHMARK(BM_Fig11a_LoadFactor)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5, 6, 7}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig11b_Alpha)
    ->ArgsProduct({{0}, {1, 25, 50, 75, 99}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig11b_Alpha)->Args({1, 50})->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable("Figure 11(a): throughput vs load factor",
                                     grouting::bench::LoadRows());
  grouting::bench::PrintPaperShape(
      "tiny load factors degenerate smart routing into load balancing; huge ones lose "
      "stealing and suffer imbalance; the peak sits around 10-20.");
  grouting::bench::PrintMetricsTable("Figure 11(b): response time vs alpha (embed EMA)",
                                     grouting::bench::AlphaRows());
  grouting::bench::PrintPaperShape("response is best for alpha in [0.25, 0.75].");
  grouting::bench::WriteBenchJson("fig11_load_alpha",
                                  {{"load_factor", &grouting::bench::LoadRows()},
                                   {"alpha", &grouting::bench::AlphaRows()}});
  return 0;
}
