// Hot-partition replication (beyond the paper): tail latency and per-server
// load balance under Zipf-skewed session streams, migration-only
// repartitioning vs migration + replication (PlanReplication +
// StorageTier::AddReplica/RemoveReplica + p2c read fan-out,
// src/partition/ + src/storage/).
//
//   (a) zipf skew x mode {static, migration-only, migration+replication} on
//       the no-cache scheme (hot session traffic must reach the storage
//       tier — a processor cache absorbs exactly the keys replication would
//       spread) with 1-hop traversals and few sessions, so the top session
//       concentrates a fixed hot key set: migration alone plateaus at high
//       skew because relocating a hot partition only moves its heat, while
//       a replica set splits it across holders,
//   (b) replication_top_k sweep at fixed high skew: more replicated
//       partitions buy flatter storage load at the cost of more replica
//       copies; top_k=0 is exactly migration-only.
//
// Expected shape: at zipf >= 1.4 migration-only leaves
// storage_load_imbalance near its static plateau while
// migration+replication pushes it toward 1.0 and lowers p99 response, on
// BOTH engines. Runs on either engine via GROUTING_BENCH_ENGINE.

#include "bench/bench_common.h"

#include <algorithm>

namespace grouting {
namespace bench {
namespace {

// The query stream honours GROUTING_BENCH_SCALE (defaults reproduce a
// 9600-query sweep at the standard scale 0.5). Sessions stay fixed at a
// handful: the point of the figure is a few scorching sessions, and scaling
// the session count would dilute the very skew being measured.
size_t ScaledQueries() {
  return std::max<size_t>(960, static_cast<size_t>(9600.0 * BenchScale()));
}

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& SkewRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& TopKRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

RunOptions ReplicationOpts(double threshold, uint32_t top_k) {
  RunOptions opts;
  // No-cache routing keeps every hot read on the storage tier; 8 processors
  // keep enough queries in flight for per-server queueing to show up in the
  // tail.
  opts.scheme = RoutingSchemeKind::kNoCache;
  opts.processors = 8;
  opts.storage_servers = 4;
  opts.max_inflight_batches = 2;
  opts.repartition_threshold = threshold;
  opts.repartition_cap = 4;
  opts.partitions_per_server = 8;
  opts.replication_top_k = top_k;
  opts.max_replicas_per_partition = 3;
  opts.replica_demote_threshold = 0.05;
  opts.gossip_period_us = 100.0;
  opts.arrival_gap_us = 0.5;
  // 1-hop traversals: deeper hops fan the hot sessions' reads across the
  // whole key space and hash placement balances them on its own.
  opts.hops = 1;
  return opts;
}

std::string Num2(double v) { return Table::Num(v, 2); }

void ReplicationCounters(benchmark::State& state, const ClusterMetrics& m) {
  state.counters["storage_load_imbalance"] = m.storage_load_imbalance;
  state.counters["partitions_migrated"] = static_cast<double>(m.partitions_migrated);
  state.counters["partitions_replicated"] =
      static_cast<double>(m.partitions_replicated);
  state.counters["replica_reads"] = static_cast<double>(m.replica_reads);
  state.counters["replica_demotions"] = static_cast<double>(m.replica_demotions);
  state.counters["repartition_stall_us"] = m.repartition_stall_us;
}

// mode: 0 = static placement, 1 = migration-only, 2 = migration+replication.
void BM_Replication_SkewXMode(benchmark::State& state) {
  static const double kSkews[] = {1.0, 1.4, 1.8};
  const double zipf_s = kSkews[static_cast<size_t>(state.range(0))];
  const int mode = static_cast<int>(state.range(1));
  const RunOptions opts =
      ReplicationOpts(mode >= 1 ? 1.15 : 0.0, mode >= 2 ? 4 : 0);
  const auto queries =
      Env().SkewedWorkload(/*sessions=*/4, ScaledQueries(), zipf_s, /*h=*/1);
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts, queries);
  }
  SetCounters(state, m);
  ReplicationCounters(state, m);
  // Labels are parameter-only: they are the regression gate's join key, so
  // measured values (imbalance, replica counts) stay in the counters above.
  static const char* kModes[] = {"static", "migration", "migration+replication"};
  SkewRows().push_back({std::string(kModes[mode]) + " zipf=" + Num2(zipf_s), m});
}

void BM_Replication_TopK(benchmark::State& state) {
  static const uint32_t kTopK[] = {0, 1, 2, 4};  // 0 = migration-only
  const uint32_t top_k = kTopK[static_cast<size_t>(state.range(0))];
  const RunOptions opts = ReplicationOpts(1.15, top_k);
  const auto queries =
      Env().SkewedWorkload(/*sessions=*/4, ScaledQueries(), /*zipf_s=*/1.4,
                           /*h=*/1);
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts, queries);
  }
  SetCounters(state, m);
  ReplicationCounters(state, m);
  TopKRows().push_back(
      {"replication top_k=" + std::to_string(top_k) +
           (top_k == 0 ? std::string(" (off)") : std::string()),
       m});
}

BENCHMARK(BM_Replication_SkewXMode)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Replication_TopK)
    ->ArgsProduct({{0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Hot-partition replication: zipf skew x mode (4 storage servers, "
      "no-cache routing, 1-hop; storage_load_imbalance + replica counters in "
      "the benchmark counters)",
      grouting::bench::SkewRows());
  grouting::bench::PrintPaperShape(
      "at zipf >= 1.4 a few sessions re-read one fixed hot key set and "
      "migration-only plateaus: relocating the hot partitions just moves the "
      "heat. Promoting them to replica sets splits each partition's reads "
      "across its holders (p2c), pushing max/min served load toward 1.0 and "
      "cutting the p99 tail, on both engines.");
  grouting::bench::PrintMetricsTable(
      "Hot-partition replication: top_k sweep at zipf=1.4",
      grouting::bench::TopKRows());
  grouting::bench::PrintPaperShape(
      "top_k=0 is exactly migration-only; raising top_k replicates more of "
      "the hot partitions and flattens per-server storage load, with "
      "diminishing returns once every scorching partition holds a replica "
      "set (the imbalance gate stops further copies).");
  grouting::bench::WriteBenchJson(
      "fig_replication", {{"skew_x_mode", &grouting::bench::SkewRows()},
                          {"top_k", &grouting::bench::TopKRows()}});
  return 0;
}
