// Multi-tenant graph federation (beyond the paper): tenant-striped storage
// keyspaces under an open-loop Poisson arrival stream (src/workload/
// open_loop.h) with per-tenant admission control at the splitter
// (src/frontend/admission.h).
//
//   (a) tenant count x tenant-rate skew, quotas off: federation overhead —
//       every tenant traverses its own keyspace slice, so cache capacity
//       fragments with the tenant count while the merged arrival schedule
//       stays fixed,
//   (b) per-tenant quota on/off at 4 tenants, high skew: the Zipf-heavy
//       tenant 0 exceeds its qps quota and is shed at the splitter; the
//       in-quota tenants keep a zero shed count and their response tails.
//
// Expected shape: quota off sheds nothing at any tenant count; quota on
// sheds only tenant 0's over-quota arrivals (queries_shed > 0, bounded
// shed_rate) and pulls max_tenant_p99_ms down versus the unthrottled run.
// Runs on either engine via GROUTING_BENCH_ENGINE; both engines compute the
// same admission plan from the same schedule.

#include "bench/bench_common.h"

#include <algorithm>

#include "src/workload/open_loop.h"

namespace grouting {
namespace bench {
namespace {

constexpr double kArrivalRateQps = 50000.0;
constexpr double kQuotaQps = 18000.0;

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

// The arrival stream honours GROUTING_BENCH_SCALE so the CI small-scale run
// shrinks the schedule; the default scale (0.5) keeps a 10k-arrival stream.
size_t ScaledArrivals() {
  return std::max<size_t>(2000, static_cast<size_t>(20000.0 * BenchScale()));
}

std::vector<ResultRow>& TenantRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& QuotaRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

std::vector<Query> MultitenantWorkload(uint32_t tenants, double skew) {
  OpenLoopConfig config;
  config.num_tenants = tenants;
  config.num_arrivals = ScaledArrivals();
  config.arrival_rate_qps = kArrivalRateQps;
  config.tenant_skew = skew;
  config.seed = Env().seed() ^ 0x77;
  return GenerateOpenLoopWorkload(Env().graph(), config);
}

RunOptions MultitenantOpts(uint32_t tenants, double quota_qps) {
  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.num_tenants = tenants;
  opts.tenant_quota_qps = quota_qps;
  opts.open_loop = true;
  return opts;
}

std::string Pct(double v) { return Table::Num(v, 2); }

void BM_Multitenant_TenantsXSkew(benchmark::State& state) {
  static const uint32_t kTenants[] = {1, 4, 8};
  static const double kSkews[] = {0.6, 1.2};
  const uint32_t tenants = kTenants[static_cast<size_t>(state.range(0))];
  const double skew = kSkews[static_cast<size_t>(state.range(1))];
  const RunOptions opts = MultitenantOpts(tenants, /*quota_qps=*/0.0);
  const auto queries = MultitenantWorkload(tenants, skew);
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts, queries);
  }
  SetCounters(state, m);
  state.counters["queries_shed"] = static_cast<double>(m.queries_shed);
  state.counters["max_tenant_p99_ms"] = MaxTenantPercentile(m, /*p999=*/false);
  // Labels are parameter-only: they are the regression gate's join key.
  TenantRows().push_back(
      {"tenants=" + std::to_string(tenants) + " skew=" + Pct(skew), m});
}

void BM_Multitenant_Quota(benchmark::State& state) {
  const bool quota_on = state.range(0) != 0;
  const RunOptions opts = MultitenantOpts(/*tenants=*/4,
                                          quota_on ? kQuotaQps : 0.0);
  const auto queries = MultitenantWorkload(/*tenants=*/4, /*skew=*/1.2);
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts, queries);
  }
  SetCounters(state, m);
  state.counters["queries_shed"] = static_cast<double>(m.queries_shed);
  state.counters["shed_rate"] = ShedRateOf(m);
  state.counters["max_tenant_p99_ms"] = MaxTenantPercentile(m, /*p999=*/false);
  QuotaRows().push_back({quota_on ? "quota=on" : "quota=off", m});
}

BENCHMARK(BM_Multitenant_TenantsXSkew)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Multitenant_Quota)
    ->ArgsProduct({{0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Multi-tenant federation: tenant count x rate skew (open-loop Poisson "
      "arrivals, quotas off; queries_shed + max_tenant_p99_ms in the "
      "benchmark counters)",
      grouting::bench::TenantRows());
  grouting::bench::PrintPaperShape(
      "with quotas off nothing is shed at any tenant count; adding tenants "
      "fragments the shared cache across keyspace slices, so hit rate drifts "
      "down and response up while the arrival schedule stays fixed.");
  grouting::bench::PrintMetricsTable(
      "Multi-tenant federation: per-tenant quota on/off (4 tenants, "
      "skew=1.2, Zipf-heavy tenant 0 over quota)",
      grouting::bench::QuotaRows());
  grouting::bench::PrintPaperShape(
      "quota on sheds only tenant 0's over-quota arrivals (bounded "
      "shed_rate, zero sheds for in-quota tenants) and trims the worst "
      "per-tenant p99 versus the unthrottled run.");
  grouting::bench::WriteBenchJson("fig_multitenant",
                                  {{"tenants_x_skew", &grouting::bench::TenantRows()},
                                   {"quota", &grouting::bench::QuotaRows()}});
  return 0;
}
