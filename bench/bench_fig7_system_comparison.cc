// Figure 7: query throughput of SEDGE/Giraph-like (BSP, multilevel
// partitioning), PowerGraph-like (GAS, vertex cut), gRouting-E (decoupled,
// Ethernet) and gRouting (decoupled, Infiniband) on the webgraph-like,
// memetracker-like and freebase-like datasets.
//
// Paper: gRouting-E is 5-10x the coupled systems; gRouting (Infiniband) is
// 10-35x — despite hash storage partitioning vs their expensive schemes.

#include "bench/bench_common.h"

#include <chrono>

namespace grouting {
namespace bench {
namespace {

struct Fig7Row {
  std::string dataset;
  double sedge_qps = 0;
  double powergraph_qps = 0;
  double grouting_e_qps = 0;
  double grouting_qps = 0;
  double sedge_partition_s = 0;
  double powergraph_partition_s = 0;
};

std::vector<Fig7Row>& Rows() {
  static std::vector<Fig7Row> rows;
  return rows;
}

ExperimentEnv& Env(int dataset) {
  static ExperimentEnv envs[] = {
      ExperimentEnv(DatasetId::kWebGraphLike, BenchScale()),
      ExperimentEnv(DatasetId::kMemetrackerLike, BenchScale()),
      ExperimentEnv(DatasetId::kFreebaseLike, BenchScale()),
  };
  return envs[dataset];
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// system: 0 = SEDGE-like, 1 = PowerGraph-like, 2 = gRouting-E, 3 = gRouting.
void BM_Fig7(benchmark::State& state) {
  const int dataset = static_cast<int>(state.range(0));
  const int system = static_cast<int>(state.range(1));
  ExperimentEnv& env = Env(dataset);
  auto queries = env.HotspotWorkload(/*r=*/2, /*h=*/2, ScaledHotspots());

  if (Rows().size() <= static_cast<size_t>(dataset)) {
    Rows().resize(dataset + 1);
    Rows()[dataset].dataset = env.spec().name;
  }
  Fig7Row& row = Rows()[dataset];

  for (auto _ : state) {
    switch (system) {
      case 0: {  // SEDGE-like: coupled BSP over 12 servers, METIS-like parts
        CoupledConfig cfg;
        cfg.num_servers = 12;
        const auto t0 = std::chrono::steady_clock::now();
        auto parts = MultilevelPartitioner().Partition(env.graph(), 12);
        const double part_s = Seconds(t0);
        SedgeLikeSystem sys(env.graph(), cfg, std::move(parts), part_s);
        const auto m = sys.Run(queries);
        row.sedge_qps = m.throughput_qps;
        row.sedge_partition_s = part_s;
        state.counters["throughput_qps"] = m.throughput_qps;
        break;
      }
      case 1: {  // PowerGraph-like: coupled GAS over 12 servers, vertex cut
        CoupledConfig cfg;
        cfg.num_servers = 12;
        const auto t0 = std::chrono::steady_clock::now();
        auto cut = GreedyVertexCut(env.graph(), 12, 7);
        const double part_s = Seconds(t0);
        PowerGraphLikeSystem sys(env.graph(), cfg, std::move(cut), part_s);
        const auto m = sys.Run(queries);
        row.powergraph_qps = m.throughput_qps;
        row.powergraph_partition_s = part_s;
        state.counters["throughput_qps"] = m.throughput_qps;
        break;
      }
      case 2:    // gRouting-E: decoupled 1 router / 7 proc / 4 storage, Ethernet
      case 3: {  // gRouting: same over Infiniband RDMA
        RunOptions opts;
        opts.scheme = RoutingSchemeKind::kEmbed;
        opts.cost = system == 2 ? CostModel::EthernetDefaults()
                                : CostModel::InfinibandDefaults();
        const auto m = env.Run(BenchEngine(), opts, queries);
        (system == 2 ? row.grouting_e_qps : row.grouting_qps) = m.throughput_qps;
        SetCounters(state, m);
        break;
      }
    }
  }
}

BENCHMARK(BM_Fig7)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFig7() {
  Table t({"dataset", "SEDGE-like (q/s)", "PowerGraph-like (q/s)", "gRouting-E (q/s)",
           "gRouting (q/s)", "E vs best coupled", "IB vs best coupled",
           "SEDGE part (s)", "PG part (s)"});
  for (const auto& r : Rows()) {
    const double best_coupled = std::max(r.sedge_qps, r.powergraph_qps);
    t.AddRow({r.dataset, Table::Num(r.sedge_qps, 1), Table::Num(r.powergraph_qps, 1),
              Table::Num(r.grouting_e_qps, 1), Table::Num(r.grouting_qps, 1),
              Table::Num(best_coupled > 0 ? r.grouting_e_qps / best_coupled : 0, 1) + "x",
              Table::Num(best_coupled > 0 ? r.grouting_qps / best_coupled : 0, 1) + "x",
              Table::Num(r.sedge_partition_s, 2), Table::Num(r.powergraph_partition_s, 2)});
  }
  std::printf("\n=== Figure 7: throughput, coupled baselines vs gRouting ===\n%s",
              t.ToString().c_str());
  PrintPaperShape(
      "gRouting-E ~5-10x the coupled systems, gRouting (Infiniband) ~10-35x; "
      "gRouting needs only hash partitioning (baselines paid partitioning offline: "
      "paper ~1h ParMETIS / ~30min PowerGraph).");
}

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintFig7();
  // Flatten the per-dataset system comparison into the shared JSON schema
  // (one row per dataset x system, throughput is the figure's metric).
  std::vector<grouting::bench::ResultRow> rows;
  for (const auto& r : grouting::bench::Rows()) {
    const std::pair<const char*, double> systems[] = {
        {"sedge_like", r.sedge_qps},
        {"powergraph_like", r.powergraph_qps},
        {"grouting_e", r.grouting_e_qps},
        {"grouting_ib", r.grouting_qps},
    };
    for (const auto& [system, qps] : systems) {
      grouting::ClusterMetrics m;
      m.throughput_qps = qps;
      rows.push_back({r.dataset + " " + system, m});
    }
  }
  grouting::bench::WriteBenchJson("fig7_system_comparison", {{"systems", &rows}});
  return 0;
}
