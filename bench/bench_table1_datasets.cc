// Table 1: dataset statistics — the paper's four graphs next to this repo's
// synthetic stand-ins (nodes, edges, adjacency-list file size, plus the
// structural features the substitution preserves).

#include "bench/bench_common.h"

#include "src/graph/graph_stats.h"

namespace grouting {
namespace bench {
namespace {

void BM_DatasetStats(benchmark::State& state) {
  const auto id = static_cast<DatasetId>(state.range(0));
  Graph g;
  for (auto _ : state) {
    g = MakeDataset(id, BenchScale(), 4242);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["adj_file_mb"] =
      static_cast<double>(g.AdjacencyListFileBytes()) / (1 << 20);
}

BENCHMARK(BM_DatasetStats)
    ->DenseRange(0, 3, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintTable1() {
  Table t({"dataset", "paper nodes", "paper edges", "paper size", "ours nodes",
           "ours edges", "ours adj-file", "avg 2-hop", "2-hop overlap", "top1% deg"});
  for (const auto& spec : AllDatasets()) {
    Graph g = MakeDataset(spec.id, BenchScale(), 4242);
    Rng r1(1);
    Rng r2(2);
    const double two_hop = AverageKHopNeighborhoodSize(g, 2, 60, r1);
    const double overlap = HotspotNeighborhoodOverlap(g, 2, 2, 40, r2);
    const auto ds = ComputeDegreeStats(g);
    t.AddRow({spec.name, Table::Int(static_cast<int64_t>(spec.paper_nodes)),
              Table::Int(static_cast<int64_t>(spec.paper_edges)), spec.paper_size_on_disk,
              Table::Int(static_cast<int64_t>(g.num_nodes())),
              Table::Int(static_cast<int64_t>(g.num_edges())),
              Table::Bytes(g.AdjacencyListFileBytes()), Table::Num(two_hop, 0),
              Table::Num(overlap, 2), Table::Num(ds.top1pct_degree_share, 2)});
  }
  std::printf("\n=== Table 1: datasets (paper vs synthetic stand-ins, scale=%.2f) ===\n%s",
              BenchScale(), t.ToString().c_str());
  PrintPaperShape(
      "webgraph: dense + high overlap; friendster: big 2-hop, LOW overlap; "
      "memetracker: sparse; freebase: very sparse, labeled.");
}

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintTable1();
  return 0;
}
