// Adaptive arrival re-splitting (beyond the paper): router-shard load
// balance under skewed session streams, static splitters vs the adaptive
// splitter at different migration thresholds (RouterFleet + ArrivalSplitter
// ::Rebalance, src/frontend/).
//
//   (a) splitter x session skew at 4 shards, embed routing: a Zipf session
//       stream concentrates arrivals on a few hot sessions; hash pins each
//       hot session to its hash shard and sticky to its first-touch shard,
//       so both stay imbalanced, while adaptive migrates hot sessions off
//       the loaded shard every gossip round,
//   (b) adaptive threshold sweep at fixed high skew: tighter thresholds buy
//       flatter load at the cost of more migrations; threshold <= 1
//       (disabled) reproduces sticky exactly.
//
// Expected shape: router_load_imbalance (max/min routed per shard) grows
// with skew for hash/sticky and stays near 1 for adaptive; the threshold
// sweep trades sessions_migrated against final imbalance. Runs on either
// engine via GROUTING_BENCH_ENGINE.

#include "bench/bench_common.h"

#include <algorithm>

namespace grouting {
namespace bench {
namespace {

constexpr uint32_t kShards = 4;

// The session stream honours GROUTING_BENCH_SCALE so the CI small-scale run
// actually shrinks these legs; the default scale (0.5) reproduces the
// original 96-session x 3000-query sweep.
size_t ScaledSessions() {
  return std::max<size_t>(12, static_cast<size_t>(192.0 * BenchScale()));
}
size_t ScaledQueries() {
  return std::max<size_t>(240, static_cast<size_t>(6000.0 * BenchScale()));
}

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& SkewRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& ThresholdRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

RunOptions AdaptiveOpts(SplitterKind splitter, double threshold) {
  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.router_shards = kShards;
  opts.splitter = splitter;
  opts.rebalance_threshold = threshold;
  opts.migration_cap = 8;
  // Spread arrivals so rebalance rounds interleave with the stream (with a
  // back-to-back stream every arrival is assigned before the first gossip
  // event) and give each round a ~40-arrival window — enough signal for the
  // controller's noise floor to separate skew from sampling jitter.
  opts.gossip_period_us = 400.0;
  opts.arrival_gap_us = 10.0;
  return opts;
}

std::string Pct(double v) { return Table::Num(v, 2); }

void BM_AdaptiveSplit_SkewXSplitter(benchmark::State& state) {
  static const SplitterKind kSplitters[] = {
      SplitterKind::kHash, SplitterKind::kSticky, SplitterKind::kAdaptive};
  static const double kSkews[] = {0.0, 0.8, 1.2};
  const SplitterKind splitter = kSplitters[static_cast<size_t>(state.range(0))];
  const double zipf_s = kSkews[static_cast<size_t>(state.range(1))];
  const RunOptions opts = AdaptiveOpts(splitter, /*threshold=*/1.3);
  const auto queries = Env().SkewedWorkload(ScaledSessions(), ScaledQueries(), zipf_s);
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts, queries);
  }
  SetCounters(state, m);
  state.counters["load_imbalance"] = m.router_load_imbalance;
  state.counters["sessions_migrated"] = static_cast<double>(m.sessions_migrated);
  // Labels are parameter-only: they are the regression gate's join key, so
  // measured values (imbalance, migrations) stay in the counters above.
  SkewRows().push_back({SplitterKindName(splitter) + " zipf=" + Pct(zipf_s), m});
}

void BM_AdaptiveSplit_Threshold(benchmark::State& state) {
  static const double kThresholds[] = {0.0, 2.0, 1.5, 1.2};  // 0 = disabled
  const double threshold = kThresholds[static_cast<size_t>(state.range(0))];
  const RunOptions opts = AdaptiveOpts(SplitterKind::kAdaptive, threshold);
  const auto queries =
      Env().SkewedWorkload(ScaledSessions(), ScaledQueries(), /*zipf_s=*/1.2);
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts, queries);
  }
  SetCounters(state, m);
  state.counters["load_imbalance"] = m.router_load_imbalance;
  state.counters["sessions_migrated"] = static_cast<double>(m.sessions_migrated);
  ThresholdRows().push_back(
      {"adaptive thr=" + (threshold > 1.0 ? Pct(threshold) : std::string("off")), m});
}

BENCHMARK(BM_AdaptiveSplit_SkewXSplitter)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_AdaptiveSplit_Threshold)
    ->ArgsProduct({{0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Adaptive re-splitting: splitter kind x session skew (4 router shards, "
      "embed; load_imbalance + sessions_migrated in the benchmark counters)",
      grouting::bench::SkewRows());
  grouting::bench::PrintPaperShape(
      "hash/sticky splitters stay imbalanced as Zipf skew grows (hot sessions "
      "pin to one shard); the adaptive splitter migrates hot sessions at gossip "
      "rounds and holds max/min routed load near 1.");
  grouting::bench::PrintMetricsTable(
      "Adaptive re-splitting: migration threshold sweep at zipf=1.2",
      grouting::bench::ThresholdRows());
  grouting::bench::PrintPaperShape(
      "threshold off reproduces sticky (imbalanced, zero migrations); "
      "tightening the threshold trades more session migrations for flatter "
      "per-shard load.");
  grouting::bench::WriteBenchJson("fig_adaptive_split",
                                  {{"skew_x_splitter", &grouting::bench::SkewRows()},
                                   {"threshold", &grouting::bench::ThresholdRows()}});
  return 0;
}
