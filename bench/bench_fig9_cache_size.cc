// Figure 9: impact of per-processor cache capacity (webgraph-like).
//   (a) response time vs cache capacity, against the no-cache line
//   (b) cache hits vs cache capacity
//   (c) minimum cache needed to reach the no-cache response time
//
// Paper: below a threshold (~64 MB of their 4 GB working set) the cache is
// a net LOSS (maintenance + eviction churn with no reuse); smart routings
// reach the break-even response time with far less cache than baselines.

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

double& NoCacheResponseMs() {
  static double v = 0.0;
  return v;
}

std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow> rows;
  return rows;
}

// Cache sizes as fractions of the dataset's total adjacency bytes; the
// paper's 16MB..4GB axis scaled to our working set.
const std::vector<double>& CacheFractions() {
  static const std::vector<double> kFractions = {0.004, 0.016, 0.0625, 0.25, 1.25};
  return kFractions;
}

void BM_Fig9_NoCache(benchmark::State& state) {
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = RoutingSchemeKind::kNoCache;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  NoCacheResponseMs() = m.mean_response_ms;
  Rows().push_back({"no_cache (break-even line)", m});
}

void BM_Fig9_CacheSweep(benchmark::State& state) {
  static const RoutingSchemeKind kSchemes[] = {
      RoutingSchemeKind::kNextReady, RoutingSchemeKind::kHash,
      RoutingSchemeKind::kLandmark, RoutingSchemeKind::kEmbed};
  const auto scheme = kSchemes[static_cast<size_t>(state.range(0))];
  const double fraction = CacheFractions()[static_cast<size_t>(state.range(1))];
  const auto bytes = static_cast<uint64_t>(
      fraction * static_cast<double>(Env().graph().TotalAdjacencyBytes()));
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.cache_bytes = std::max<uint64_t>(bytes, 1);
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  state.counters["cache_mb"] = static_cast<double>(opts.cache_bytes) / (1 << 20);
  char label[128];
  std::snprintf(label, sizeof(label), "%s cache=%.1f%% (%s)",
                RoutingSchemeKindName(scheme).c_str(), 100.0 * fraction,
                Table::Bytes(opts.cache_bytes).c_str());
  Rows().push_back({label, m});
}

BENCHMARK(BM_Fig9_NoCache)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig9_CacheSweep)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Fig 9(c): bisection over cache size for the break-even response time.
void PrintFig9c() {
  Table t({"scheme", "min cache to reach no-cache response", "% of dataset"});
  const uint64_t total = Env().graph().TotalAdjacencyBytes();
  for (auto scheme : {RoutingSchemeKind::kNextReady, RoutingSchemeKind::kHash,
                      RoutingSchemeKind::kLandmark, RoutingSchemeKind::kEmbed}) {
    uint64_t lo = total / 512;
    uint64_t hi = total * 2;
    uint64_t best = hi;
    for (int iter = 0; iter < 7; ++iter) {
      const uint64_t mid = (lo + hi) / 2;
      RunOptions opts;
      opts.num_hotspots = ScaledHotspots();
      opts.scheme = scheme;
      opts.cache_bytes = mid;
      const auto m = Env().Run(BenchEngine(), opts);
      if (m.mean_response_ms <= NoCacheResponseMs()) {
        best = mid;
        hi = mid;
      } else {
        lo = mid;
      }
    }
    t.AddRow({RoutingSchemeKindName(scheme), Table::Bytes(best),
              Table::Num(100.0 * static_cast<double>(best) / static_cast<double>(total), 1)});
  }
  std::printf("\n=== Figure 9(c): minimum cache to reach no-cache response (%.3f ms) ===\n%s",
              NoCacheResponseMs(), t.ToString().c_str());
  PrintPaperShape(
      "smart routings reach break-even with a much smaller cache than the baselines "
      "(paper: ~50MB vs ~150-200MB of a 4GB working set).");
}

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable("Figure 9(a,b): response time & hits vs cache capacity",
                                     grouting::bench::Rows());
  grouting::bench::PrintPaperShape(
      "tiny caches are WORSE than no cache (maintenance + churn); response improves "
      "with capacity until the working set fits, then flattens.");
  grouting::bench::PrintFig9c();
  grouting::bench::WriteBenchJson("fig9_cache_size",
                                  {{"cache_capacity", &grouting::bench::Rows()}});
  return 0;
}
