// Figure 13: impact of (a) the number of landmarks and (b) their minimum
// hop separation on both smart routing schemes.
//
// Paper: more landmarks generally help (96 is the sweet spot against
// preprocessing cost); separation has only a mild effect (best ~3-4 hops).

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& CountRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& SepRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

void BM_Fig13a_LandmarkCount(benchmark::State& state) {
  static const RoutingSchemeKind kSchemes[] = {
      RoutingSchemeKind::kEmbed, RoutingSchemeKind::kLandmark, RoutingSchemeKind::kHash};
  const auto scheme = kSchemes[static_cast<size_t>(state.range(0))];
  const auto count = static_cast<size_t>(state.range(1));
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.num_landmarks = count;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  char label[96];
  std::snprintf(label, sizeof(label), "%s |L|=%zu", RoutingSchemeKindName(scheme).c_str(),
                count);
  CountRows().push_back({label, m});
}

void BM_Fig13b_Separation(benchmark::State& state) {
  static const RoutingSchemeKind kSchemes[] = {RoutingSchemeKind::kEmbed,
                                               RoutingSchemeKind::kLandmark};
  const auto scheme = kSchemes[static_cast<size_t>(state.range(0))];
  const auto separation = static_cast<int32_t>(state.range(1));
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.min_separation = separation;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  char label[96];
  std::snprintf(label, sizeof(label), "%s sep=%d hops", RoutingSchemeKindName(scheme).c_str(),
                separation);
  SepRows().push_back({label, m});
}

BENCHMARK(BM_Fig13a_LandmarkCount)
    ->ArgsProduct({{0, 1}, {4, 8, 16, 32, 64, 96, 128}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig13a_LandmarkCount)->Args({2, 96})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig13b_Separation)
    ->ArgsProduct({{0, 1}, {1, 2, 3, 4, 5}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable("Figure 13(a): response time vs number of landmarks",
                                     grouting::bench::CountRows());
  grouting::bench::PrintPaperShape(
      "more landmarks improve response (sharper d(u,p) / coordinates); 96 balances "
      "quality against preprocessing cost.");
  grouting::bench::PrintMetricsTable("Figure 13(b): response time vs landmark separation",
                                     grouting::bench::SepRows());
  grouting::bench::PrintPaperShape("separation has only a mild effect (best around 3-4 hops).");
  grouting::bench::WriteBenchJson("fig13_landmarks",
                                  {{"landmark_count", &grouting::bench::CountRows()},
                                   {"separation", &grouting::bench::SepRows()}});
  return 0;
}
