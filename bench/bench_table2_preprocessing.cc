// Tables 2 & 3: preprocessing time and storage of the smart routing schemes
// on the webgraph-like dataset.
//
// Paper (WebGraph, 105.9M nodes): BFS ~35s per landmark; landmark embedding
// 36s; ~1s per node embedding (parallelisable). Storage: landmark index
// 2.8 GB, embedding 4 GB, vs 60.3 GB graph.

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

void BM_LandmarkBfs(benchmark::State& state) {
  for (auto _ : state) {
    LandmarkConfig cfg;
    cfg.seed = 7;
    auto lms = LandmarkSet::Select(Env().graph(), cfg);
    benchmark::DoNotOptimize(lms.count());
    state.counters["bfs_seconds_total"] = lms.stats().bfs_seconds;
    state.counters["bfs_seconds_per_landmark"] =
        lms.stats().bfs_seconds / static_cast<double>(lms.count());
  }
}

void BM_EmbedLandmarks(benchmark::State& state) {
  const auto& lms = Env().landmarks();
  for (auto _ : state) {
    EmbedConfig cfg;
    cfg.seed = 8;
    auto emb = GraphEmbedding::Build(lms, cfg);
    benchmark::DoNotOptimize(emb.num_nodes());
    state.counters["landmark_embed_seconds"] = emb.stats().landmark_embed_seconds;
    state.counters["node_embed_seconds_total"] = emb.stats().node_embed_seconds;
    state.counters["node_embed_us_per_node"] =
        1e6 * emb.stats().node_embed_seconds / static_cast<double>(emb.num_nodes());
  }
}

BENCHMARK(BM_LandmarkBfs)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmbedLandmarks)->Iterations(1)->Unit(benchmark::kMillisecond);

void PrintTables() {
  auto& env = Env();
  const auto& lms = env.landmarks();
  const auto& emb = env.embedding();
  const auto& index = env.landmark_index(PaperDefaults::kProcessors);
  const Graph& g = env.graph();

  Table t2({"step", "paper (WebGraph)", "ours"});
  t2.AddRow({"BFS per landmark", "35 s",
             Table::Num(lms.stats().bfs_seconds / static_cast<double>(lms.count()) * 1000.0, 1) +
                 " ms"});
  t2.AddRow({"BFS all landmarks (96)", "~56 min (parallelisable)",
             Table::Num(lms.stats().bfs_seconds, 2) + " s"});
  t2.AddRow({"embed landmarks", "36 s",
             Table::Num(emb.stats().landmark_embed_seconds, 2) + " s"});
  t2.AddRow({"embed per node", "1 s (parallelisable)",
             Table::Num(1e6 * emb.stats().node_embed_seconds /
                            static_cast<double>(emb.num_nodes()), 1) +
                 " us"});
  t2.AddRow({"embed all nodes", "-", Table::Num(emb.stats().node_embed_seconds, 2) + " s"});
  std::printf("\n=== Table 2: preprocessing times ===\n%s", t2.ToString().c_str());
  PrintPaperShape("both preprocessing steps are modest and parallelise per landmark / per node.");

  Table t3({"structure", "paper", "ours", "% of graph"});
  const double graph_bytes = static_cast<double>(g.AdjacencyListFileBytes());
  t3.AddRow({"landmark d(u,p) router table", "2.8 GB",
             Table::Bytes(index.RouterStorageBytes()),
             Table::Num(100.0 * static_cast<double>(index.RouterStorageBytes()) / graph_bytes, 1)});
  t3.AddRow({"embedding coordinates", "4 GB", Table::Bytes(emb.MemoryBytes()),
             Table::Num(100.0 * static_cast<double>(emb.MemoryBytes()) / graph_bytes, 1)});
  t3.AddRow({"original graph (adj-list file)", "60.3 GB",
             Table::Bytes(g.AdjacencyListFileBytes()), "100"});
  std::printf("\n=== Table 3: preprocessing storage ===\n%s", t3.ToString().c_str());
  PrintPaperShape("router state is a small fraction of the graph (O(nP) / O(nD) vs O(m)).");
}

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintTables();
  return 0;
}
