// Async storage batches (beyond the paper): response time as the per-
// processor multiget window grows, overlapping next-level cache probes with
// outstanding storage fetches (CachedStorageSource issue/probe/complete
// pipeline; sim: per-batch completion events, threaded: per-processor fetch
// threads).
//
//   (a) window x cache capacity at 2 storage servers, embed routing: the
//       smaller the cache the more miss batches a level has to hide, so the
//       async win is largest exactly where the paper's decoupling tax is
//       worst. Two storage servers bound a level at two batches, so the
//       sweep is structurally monotone: window 1 (synchronous barrier) is
//       the ceiling, any window >= 2 overlaps every batch a level has.
//   (b) window x routing scheme at a small cache: the overlap is orthogonal
//       to routing quality — every scheme keeps its relative order while
//       all of them shave the probe-side work off the fetch path.
//
// Expected shape: mean response improves monotonically-or-flat as the
// window grows, saturating once the window covers a level's batch fan-out;
// fetch_overlap_us grows with the window while hit rates stay put (the
// pipeline is answer- and cache-state-identical for every window). Runs on
// either engine via GROUTING_BENCH_ENGINE.

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

constexpr uint32_t kStorageServers = 2;

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& CacheRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& SchemeRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

// Cache sizes as fractions of the dataset's adjacency bytes (fig 9 axis).
const std::vector<double>& CacheFractions() {
  static const std::vector<double> kFractions = {0.004, 0.0625, 1.25};
  return kFractions;
}

const std::vector<uint32_t>& Windows() {
  static const std::vector<uint32_t> kWindows = {1, 2, 4, 8};
  return kWindows;
}

uint64_t CacheBytesFor(double fraction) {
  const auto bytes = static_cast<uint64_t>(
      fraction * static_cast<double>(Env().graph().TotalAdjacencyBytes()));
  return std::max<uint64_t>(bytes, 1);
}

void SetAsyncCounters(benchmark::State& state, const ClusterMetrics& m) {
  SetCounters(state, m);
  state.counters["fetch_overlap_us"] = m.fetch_overlap_us;
  state.counters["batches_inflight_peak"] =
      static_cast<double>(m.batches_inflight_peak);
}

void BM_AsyncBatch_WindowXCache(benchmark::State& state) {
  const uint32_t window = Windows()[static_cast<size_t>(state.range(0))];
  const double fraction = CacheFractions()[static_cast<size_t>(state.range(1))];
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.storage_servers = kStorageServers;
  opts.cache_bytes = CacheBytesFor(fraction);
  opts.max_inflight_batches = window;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetAsyncCounters(state, m);
  char label[128];
  std::snprintf(label, sizeof(label), "embed W=%u cache=%.1f%%", window,
                100.0 * fraction);
  CacheRows().push_back({label, m});
}

void BM_AsyncBatch_WindowXScheme(benchmark::State& state) {
  const auto scheme = AllSchemes()[static_cast<size_t>(state.range(0))];
  const uint32_t window = state.range(1) == 0 ? 1 : 4;
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.storage_servers = kStorageServers;
  opts.cache_bytes = CacheBytesFor(/*fraction=*/0.0625);
  opts.max_inflight_batches = window;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetAsyncCounters(state, m);
  SchemeRows().push_back(
      {RoutingSchemeKindName(scheme) + " W=" + std::to_string(window), m});
}

BENCHMARK(BM_AsyncBatch_WindowXCache)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_AsyncBatch_WindowXScheme)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Async storage batches: multiget window x cache capacity (embed, 2 "
      "storage servers)",
      grouting::bench::CacheRows());
  grouting::bench::PrintPaperShape(
      "mean response improves monotonically-or-flat as the window grows — "
      "probe/merge work hides under outstanding fetch round trips — with the "
      "largest gain at small caches (most miss batches to hide) and "
      "saturation once the window covers a level's per-server fan-out.");
  grouting::bench::PrintMetricsTable(
      "Async storage batches: window 1 vs 4 across routing schemes (small cache)",
      grouting::bench::SchemeRows());
  grouting::bench::PrintPaperShape(
      "the async pipeline is orthogonal to routing quality: every scheme "
      "keeps its relative order and hit rate (cache state is window-"
      "invariant), while response drops for all of them.");
  grouting::bench::WriteBenchJson("fig_async_batch",
                                  {{"window_x_cache", &grouting::bench::CacheRows()},
                                   {"window_x_scheme", &grouting::bench::SchemeRows()}});
  return 0;
}
