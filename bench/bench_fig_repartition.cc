// Storage-tier adaptive repartitioning (beyond the paper): per-server load
// balance under Zipf-skewed session streams, static hash placement vs the
// repartitioning overlay (PartitionMonitor + PlanRepartition +
// StorageTier::MigratePartition, src/partition/ + src/storage/).
//
//   (a) zipf skew x repartition on/off at 4 storage servers, embed routing,
//       a deliberately small processor cache (so hot neighbourhoods keep
//       hitting storage and the access monitor sees the skew all run) and
//       an async window of 2: hash placement spreads KEYS evenly but not
//       LOAD — the hot sessions' neighbourhoods land unevenly, and the
//       static tier has no answer; the repartitioner migrates hot
//       partitions to the cold servers at gossip-aligned rounds,
//   (b) repartition threshold sweep at fixed high skew: tighter thresholds
//       buy flatter storage load at the cost of more partition copies
//       (repartition_stall_us); threshold <= 1 (off) is the exact static
//       tier.
//
// Expected shape: storage_load_imbalance (max/min served gets per server)
// grows with skew for the static tier and is strictly lower with
// repartitioning on, on BOTH engines; mean response improves alongside,
// since multiget batches stop queueing behind one hot server. Runs on
// either engine via GROUTING_BENCH_ENGINE.

#include "bench/bench_common.h"

#include <algorithm>

namespace grouting {
namespace bench {
namespace {

// The session stream honours GROUTING_BENCH_SCALE so the CI small-scale run
// actually shrinks these legs (defaults reproduce a 96-session x 3000-query
// sweep at the standard scale 0.5).
size_t ScaledSessions() {
  return std::max<size_t>(12, static_cast<size_t>(192.0 * BenchScale()));
}
size_t ScaledQueries() {
  return std::max<size_t>(240, static_cast<size_t>(6000.0 * BenchScale()));
}

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& SkewRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& ThresholdRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

RunOptions RepartitionOpts(double threshold) {
  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.processors = 3;
  opts.repartition_threshold = threshold;
  opts.repartition_cap = 4;
  opts.partitions_per_server = 8;
  // Small cache + few processors: the skewed hot set must keep missing into
  // storage, or the tier never sees the skew (with an ample cache every key
  // is fetched at most once per processor, the residual miss traffic is
  // cold and hash placement balances it on its own — the paper's point).
  opts.cache_bytes = 64 << 10;
  opts.max_inflight_batches = 2;
  // Spread arrivals so repartition rounds interleave with the stream, and
  // give each round a window wide enough for the monitor's noise floor to
  // separate real skew from sampling jitter.
  opts.gossip_period_us = 400.0;
  opts.arrival_gap_us = 10.0;
  return opts;
}

std::string Num2(double v) { return Table::Num(v, 2); }

void RepartitionCounters(benchmark::State& state, const ClusterMetrics& m) {
  state.counters["storage_load_imbalance"] = m.storage_load_imbalance;
  state.counters["partitions_migrated"] = static_cast<double>(m.partitions_migrated);
  state.counters["repartition_stall_us"] = m.repartition_stall_us;
}

void BM_Repartition_SkewXOnOff(benchmark::State& state) {
  static const double kSkews[] = {0.0, 1.0, 1.4};
  const double zipf_s = kSkews[static_cast<size_t>(state.range(0))];
  const bool on = state.range(1) != 0;
  const RunOptions opts = RepartitionOpts(on ? 1.15 : 0.0);
  const auto queries = Env().SkewedWorkload(ScaledSessions(), ScaledQueries(), zipf_s);
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts, queries);
  }
  SetCounters(state, m);
  RepartitionCounters(state, m);
  // Labels are parameter-only: they are the regression gate's join key, so
  // measured values (imbalance, migrations) stay in the counters above.
  SkewRows().push_back({std::string(on ? "repartition" : "static") +
                            " zipf=" + Num2(zipf_s),
                        m});
}

void BM_Repartition_Threshold(benchmark::State& state) {
  static const double kThresholds[] = {0.0, 2.0, 1.5, 1.15};  // 0 = disabled
  const double threshold = kThresholds[static_cast<size_t>(state.range(0))];
  const RunOptions opts = RepartitionOpts(threshold);
  const auto queries =
      Env().SkewedWorkload(ScaledSessions(), ScaledQueries(), /*zipf_s=*/1.4);
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts, queries);
  }
  SetCounters(state, m);
  RepartitionCounters(state, m);
  ThresholdRows().push_back(
      {"repartition thr=" + (threshold > 1.0 ? Num2(threshold) : std::string("off")),
       m});
}

BENCHMARK(BM_Repartition_SkewXOnOff)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Repartition_Threshold)
    ->ArgsProduct({{0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Storage repartitioning: zipf skew x on/off (4 storage servers, embed, "
      "small cache; storage_load_imbalance + partitions_migrated in the "
      "benchmark counters)",
      grouting::bench::SkewRows());
  grouting::bench::PrintPaperShape(
      "the static hash-placed tier ends skewed runs with max/min served load "
      "well above 1 (hot neighbourhoods land unevenly and nothing can move); "
      "with repartitioning on, hot partitions migrate to cold servers at "
      "gossip-aligned rounds and the final imbalance is strictly lower, on "
      "both engines.");
  grouting::bench::PrintMetricsTable(
      "Storage repartitioning: threshold sweep at zipf=1.4",
      grouting::bench::ThresholdRows());
  grouting::bench::PrintPaperShape(
      "threshold off is the exact static tier (zero migrations); tightening "
      "the threshold trades more partition copies (repartition_stall_us) for "
      "flatter per-server storage load.");
  grouting::bench::WriteBenchJson(
      "fig_repartition", {{"skew_x_repartition", &grouting::bench::SkewRows()},
                          {"threshold", &grouting::bench::ThresholdRows()}});
  return 0;
}
