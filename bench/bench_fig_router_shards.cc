// Router-tier scaling (beyond the paper): throughput and routing quality as
// the router frontend is sharded 1 -> N (RouterFleet, src/frontend/).
//
//   (a) shards x routing scheme at the paper's 7/4 tier split, round-robin
//       splitter, default gossip — does smart routing survive a sharded
//       frontend?
//   (b) embed routing at 4 shards across splitter kinds and gossip on/off —
//       how much of the EMA signal does gossip recover?
//
// Expected shape: stateless schemes (next_ready, hash) are shard-invariant;
// embed loses cache hits as shards fragment its EMA view, and gossip claws
// most of that back (divergence shrinks every round). Runs on either engine
// via GROUTING_BENCH_ENGINE.

#include "bench/bench_common.h"

#include <algorithm>

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& ShardRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& GossipRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

void BM_RouterShards_Scheme(benchmark::State& state) {
  const auto scheme = AllSchemes()[static_cast<size_t>(state.range(0))];
  const auto shards = static_cast<uint32_t>(state.range(1));
  RunOptions opts;
  opts.scheme = scheme;
  opts.router_shards = shards;
  opts.num_hotspots = ScaledHotspots();
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  state.counters["gossip_rounds"] = static_cast<double>(m.gossip_rounds);
  state.counters["ema_divergence"] = m.router_ema_divergence;
  ShardRows().push_back(
      {RoutingSchemeKindName(scheme) + " S=" + std::to_string(shards), m});
}

void BM_RouterShards_SplitterGossip(benchmark::State& state) {
  static const SplitterKind kSplitters[] = {
      SplitterKind::kRoundRobin, SplitterKind::kHash, SplitterKind::kSticky};
  const SplitterKind splitter = kSplitters[static_cast<size_t>(state.range(0))];
  const bool gossip = state.range(1) != 0;
  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.router_shards = 4;
  opts.splitter = splitter;
  opts.gossip_period_us = gossip ? 200.0 : 0.0;
  // Spread arrivals so gossip rounds interleave with routing decisions;
  // with the paper's back-to-back stream every route happens before the
  // first gossip event and the comparison degenerates.
  opts.arrival_gap_us = 25.0;
  opts.num_hotspots = ScaledHotspots();
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  state.counters["gossip_rounds"] = static_cast<double>(m.gossip_rounds);
  state.counters["ema_divergence"] = m.router_ema_divergence;
  GossipRows().push_back({"embed S=4 " + SplitterKindName(splitter) +
                              (gossip ? " +gossip" : " -gossip"),
                          m});
}

BENCHMARK(BM_RouterShards_Scheme)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_RouterShards_SplitterGossip)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Router-tier scaling: router shards x routing scheme",
      grouting::bench::ShardRows());
  grouting::bench::PrintPaperShape(
      "next_ready/hash are shard-invariant; embed's hit rate dips as shards "
      "fragment the EMA view, with gossip recovering most of the single-router "
      "quality.");
  grouting::bench::PrintMetricsTable(
      "Embed at 4 router shards: splitter kind x gossip",
      grouting::bench::GossipRows());
  grouting::bench::PrintPaperShape(
      "sticky/hash splitters keep hotspot runs on one shard (less EMA "
      "fragmentation than round-robin); enabling gossip lowers cross-shard "
      "divergence and lifts hit rate toward the 1-shard baseline.");
  grouting::bench::WriteBenchJson("fig_router_shards",
                                  {{"shards_x_scheme", &grouting::bench::ShardRows()},
                                   {"splitter_x_gossip", &grouting::bench::GossipRows()}});
  return 0;
}
