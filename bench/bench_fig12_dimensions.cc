// Figure 12: impact of embedding dimensionality.
//   (a) relative error of 2-hop-hotspot node-pair distances vs dimensions
//   (b) response time vs dimensions (embed routing)
//
// Paper: error shrinks with dimensions and saturates around D=10; response
// time is minimised near D=10 (better routing) and rises slightly beyond
// (router decision cost grows with D).

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow> rows;
  return rows;
}

struct ErrorRow {
  size_t dims;
  double relative_error;
};
std::vector<ErrorRow>& Errors() {
  static std::vector<ErrorRow> rows;
  return rows;
}

void BM_Fig12a_RelativeError(benchmark::State& state) {
  const auto dims = static_cast<size_t>(state.range(0));
  double err = 0.0;
  for (auto _ : state) {
    const auto& emb = Env().embedding(dims);
    Rng rng(17);
    err = emb.MeasureRelativeError(Env().graph(), 300, 2, rng);
  }
  state.counters["relative_error"] = err;
  Errors().push_back({dims, err});
}

void BM_Fig12b_ResponseTime(benchmark::State& state) {
  const auto dims = static_cast<size_t>(state.range(0));
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.dimensions = dims;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  Rows().push_back({"embed D=" + std::to_string(dims), m});
}

void BM_Fig12b_HashReference(benchmark::State& state) {
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = RoutingSchemeKind::kHash;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  Rows().push_back({"hash (reference)", m});
}

BENCHMARK(BM_Fig12a_RelativeError)
    ->Arg(2)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig12b_ResponseTime)
    ->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(30)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig12b_HashReference)->Iterations(1)->Unit(benchmark::kMillisecond);

void PrintFig12a() {
  Table t({"dimensions", "relative error (2-hop hotspot pairs)"});
  for (const auto& row : Errors()) {
    t.AddRow({Table::Int(static_cast<int64_t>(row.dims)), Table::Num(row.relative_error, 3)});
  }
  std::printf("\n=== Figure 12(a): embedding relative error vs dimensionality ===\n%s",
              t.ToString().c_str());
  PrintPaperShape("error decreases with dimensions and saturates around D=10.");
}

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintFig12a();
  grouting::bench::PrintMetricsTable("Figure 12(b): response time vs dimensionality",
                                     grouting::bench::Rows());
  grouting::bench::PrintPaperShape(
      "response improves up to ~D=10 (better routing) then flattens/rises slightly "
      "(routing decision cost grows with D).");
  grouting::bench::WriteBenchJson("fig12_dimensions",
                                  {{"dimensionality", &grouting::bench::Rows()}});
  return 0;
}
