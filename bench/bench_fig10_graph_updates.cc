// Figure 10: robustness to graph updates. Preprocessing (landmarks,
// embedding) runs on an induced subgraph of X% of the nodes; the remaining
// nodes are added incrementally (neighbour-estimated landmark distances,
// incremental embedding) WITHOUT recomputing anything; queries always run
// over the full graph.
//
// Paper: embed's response time degrades only ~3ms from 100%->80%
// preprocessing, approaching hash routing's level at 20%.

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow> rows;
  return rows;
}

ClusterMetrics RunWithPreprocessedFraction(RoutingSchemeKind scheme, double fraction) {
  const Graph& g = Env().graph();
  auto queries = Env().HotspotWorkload(/*r=*/2, /*h=*/2, ScaledHotspots());

  // Unified engine config at the paper's defaults (ample cache).
  const ClusterConfig cc = Env().MakeClusterConfig(RunOptions{});

  if (scheme == RoutingSchemeKind::kHash) {
    return MakeClusterEngine(BenchEngine(), g, cc, std::make_unique<HashStrategy>())
        ->Run(queries);
  }

  // Preprocess on the induced subgraph of `fraction` of nodes.
  Rng rng(31);
  std::vector<uint8_t> keep(g.num_nodes(), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    keep[u] = rng.NextBool(fraction);
  }
  LandmarkConfig lc;
  lc.seed = 7;
  auto lms = LandmarkSet::Select(g, lc, &keep);

  if (scheme == RoutingSchemeKind::kLandmark) {
    auto index = std::make_unique<LandmarkIndex>(
        LandmarkIndex::Build(std::move(lms), cc.num_processors));
    // Incrementally add the hidden nodes in random order, estimates only.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!keep[u]) {
        index->AddNodeIncremental(g, u);
      }
    }
    auto strategy =
        std::make_unique<LandmarkStrategy>(index.get(), PaperDefaults::kLoadFactor);
    return MakeClusterEngine(BenchEngine(), g, cc, std::move(strategy))->Run(queries);
  }

  // Embed scheme.
  EmbedConfig ec;
  ec.seed = 8;
  auto emb = std::make_unique<GraphEmbedding>(GraphEmbedding::Build(lms, ec));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!keep[u]) {
      emb->AddNodeIncremental(g, u, lms);
    }
  }
  auto strategy = std::make_unique<EmbedStrategy>(
      emb.get(), PaperDefaults::kAlpha, PaperDefaults::kLoadFactor, cc.num_processors);
  return MakeClusterEngine(BenchEngine(), g, cc, std::move(strategy))->Run(queries);
}

void BM_Fig10(benchmark::State& state) {
  static const RoutingSchemeKind kSchemes[] = {
      RoutingSchemeKind::kEmbed, RoutingSchemeKind::kLandmark, RoutingSchemeKind::kHash};
  const auto scheme = kSchemes[static_cast<size_t>(state.range(0))];
  const double fraction = static_cast<double>(state.range(1)) / 100.0;
  ClusterMetrics m;
  for (auto _ : state) {
    m = RunWithPreprocessedFraction(scheme, fraction);
  }
  SetCounters(state, m);
  char label[96];
  std::snprintf(label, sizeof(label), "%s preprocessed=%d%%",
                RoutingSchemeKindName(scheme).c_str(), static_cast<int>(state.range(1)));
  Rows().push_back({label, m});
}

BENCHMARK(BM_Fig10)
    ->ArgsProduct({{0, 1}, {20, 40, 60, 80, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
// Hash doesn't depend on preprocessing; one reference point.
BENCHMARK(BM_Fig10)->Args({2, 100})->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Figure 10: response vs fraction of graph available at preprocessing",
      grouting::bench::Rows());
  grouting::bench::PrintPaperShape(
      "smart routing degrades gracefully: ~100%->80% costs only a few percent; at 20% "
      "it approaches (but still matches) hash routing.");
  grouting::bench::WriteBenchJson("fig10_graph_updates",
                                  {{"preprocess_fraction", &grouting::bench::Rows()}});
  return 0;
}
