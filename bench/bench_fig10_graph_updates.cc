// Figure 10: robustness to graph updates, on the REAL write path.
// Preprocessing (landmarks, embedding) runs on an induced subgraph of X% of
// the nodes; the storage tier preloads only those nodes
// (ClusterConfig::mutation_preload_keep) and the remaining nodes stream in
// as live kAddVertex mutations WHILE the workload runs — versioned blob
// writes, compressed-cache invalidation, and incremental index maintenance
// (neighbour-estimated landmark distances / incremental embedding
// coordinates) on the gossip cadence. Queries always run over the full
// graph, so early queries can land on not-yet-materialised nodes exactly as
// in a live ingest.
//
// Paper: embed's response time degrades only ~3ms from 100%->80%
// preprocessing, approaching hash routing's level at 20%.

#include <algorithm>
#include <memory>
#include <span>

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow> rows;
  return rows;
}

// Deterministic keep mask: ~`fraction` of the nodes are preloaded and
// preprocessed; the rest stream in as live vertex adds.
std::vector<uint8_t> KeepMask(const Graph& g, double fraction) {
  Rng rng(31);
  std::vector<uint8_t> keep(g.num_nodes(), 1);
  if (fraction < 1.0) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      keep[u] = rng.NextBool(fraction);
    }
  }
  return keep;
}

// Vertex-add-only schedule materialising every withheld node, one every
// 50us of run time (virtual on sim, wall on threaded).
std::vector<GraphMutation> IngestSchedule(const Graph& g,
                                          const std::vector<uint8_t>& keep) {
  MutationScheduleConfig mc;
  mc.num_mutations = static_cast<size_t>(
      std::count(keep.begin(), keep.end(), static_cast<uint8_t>(0)));
  mc.gap_us = 50.0;
  mc.weight_add_edge = 0.0;
  mc.weight_remove_edge = 0.0;
  mc.seed = 1031;
  return GenerateMutationSchedule(g, keep, mc);
}

ClusterMetrics RunWithPreprocessedFraction(RoutingSchemeKind scheme, double fraction) {
  const Graph& g = Env().graph();
  auto queries = Env().HotspotWorkload(/*r=*/2, /*h=*/2, ScaledHotspots());

  // Unified engine config at the paper's defaults (ample cache) with the
  // online write path on: the tier preloads only the kept nodes.
  RunOptions opts;
  opts.enable_mutations = true;
  ClusterConfig cc = Env().MakeClusterConfig(opts);
  const std::vector<uint8_t> keep = KeepMask(g, fraction);
  cc.mutation_preload_keep = keep;
  const auto schedule = IngestSchedule(g, keep);

  if (scheme == RoutingSchemeKind::kHash) {
    auto engine =
        MakeClusterEngine(BenchEngine(), g, cc, std::make_unique<HashStrategy>());
    engine->set_mutation_schedule(schedule);
    return engine->Run(queries);
  }

  // Preprocess on the induced subgraph of the kept nodes only.
  LandmarkConfig lc;
  lc.seed = 7;
  auto lms = LandmarkSet::Select(g, lc, &keep);

  if (scheme == RoutingSchemeKind::kLandmark) {
    auto index = std::make_unique<LandmarkIndex>(
        LandmarkIndex::Build(std::move(lms), cc.num_processors));
    auto strategy =
        std::make_unique<LandmarkStrategy>(index.get(), PaperDefaults::kLoadFactor);
    auto engine = MakeClusterEngine(BenchEngine(), g, cc, std::move(strategy));
    engine->set_mutation_schedule(schedule);
    engine->set_index_maintainer(
        [idx = index.get(), &g](std::span<const NodeId> nodes) {
          IndexRefreshResult r;
          r.nodes_refreshed = idx->RefreshNodes(g, nodes);
          return r;
        });
    return engine->Run(queries);
  }

  // Embed scheme: incremental coordinates for streamed-in nodes, plus a
  // small relative-error probe per refresh pass (the run's
  // stale_distance_error is the mean over these samples).
  EmbedConfig ec;
  ec.seed = 8;
  auto emb = std::make_unique<GraphEmbedding>(GraphEmbedding::Build(lms, ec));
  auto strategy = std::make_unique<EmbedStrategy>(
      emb.get(), PaperDefaults::kAlpha, PaperDefaults::kLoadFactor, cc.num_processors);
  auto engine = MakeClusterEngine(BenchEngine(), g, cc, std::move(strategy));
  engine->set_mutation_schedule(schedule);
  auto lms_box = std::make_shared<LandmarkSet>(std::move(lms));
  engine->set_index_maintainer(
      [e = emb.get(), lms_box, &g, pass = uint64_t{0}](
          std::span<const NodeId> nodes) mutable {
        IndexRefreshResult r;
        r.nodes_refreshed = e->RefreshNodes(g, nodes, *lms_box);
        constexpr size_t kErrorSamples = 16;
        Rng err_rng(977 + ++pass);
        const double mean =
            e->MeasureRelativeError(g, kErrorSamples, /*radius=*/2, err_rng);
        r.error_sum = mean * static_cast<double>(kErrorSamples);
        r.error_samples = kErrorSamples;
        return r;
      });
  return engine->Run(queries);
}

void BM_Fig10(benchmark::State& state) {
  static const RoutingSchemeKind kSchemes[] = {
      RoutingSchemeKind::kEmbed, RoutingSchemeKind::kLandmark, RoutingSchemeKind::kHash};
  const auto scheme = kSchemes[static_cast<size_t>(state.range(0))];
  const double fraction = static_cast<double>(state.range(1)) / 100.0;
  ClusterMetrics m;
  for (auto _ : state) {
    m = RunWithPreprocessedFraction(scheme, fraction);
  }
  SetCounters(state, m);
  state.counters["mutations_applied"] = static_cast<double>(m.mutations_applied);
  state.counters["index_refreshes"] = static_cast<double>(m.index_refreshes);
  char label[96];
  std::snprintf(label, sizeof(label), "%s preprocessed=%d%%",
                RoutingSchemeKindName(scheme).c_str(), static_cast<int>(state.range(1)));
  Rows().push_back({label, m});
}

BENCHMARK(BM_Fig10)
    ->ArgsProduct({{0, 1}, {20, 40, 60, 80, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
// Hash doesn't depend on preprocessing; one reference point (still runs the
// same live-ingest schedule so throughput is comparable).
BENCHMARK(BM_Fig10)->Args({2, 100})->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "Figure 10: response vs fraction of graph available at preprocessing "
      "(remaining nodes stream in as live mutations)",
      grouting::bench::Rows());
  grouting::bench::PrintPaperShape(
      "smart routing degrades gracefully: ~100%->80% costs only a few percent; at 20% "
      "it approaches (but still matches) hash routing.");
  grouting::bench::WriteBenchJson("fig10_graph_updates",
                                  {{"preprocess_fraction", &grouting::bench::Rows()}});
  return 0;
}
