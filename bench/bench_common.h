// Shared plumbing for the per-table / per-figure benchmark binaries.
//
// Every bench binary:
//   * builds (lazily, once) an ExperimentEnv for its dataset at the bench
//     scale (override with GROUTING_BENCH_SCALE, default 0.5),
//   * runs its cluster configurations on the engine selected by
//     GROUTING_BENCH_ENGINE (sim | threaded, default sim) — the same sweep
//     re-runs on real threads with one flag,
//   * registers one google-benchmark per configuration point, carrying the
//     paper's metrics (throughput, response time, cache hit rate) as
//     counters — wall time of a benchmark iteration is the simulation's
//     execution cost, NOT the reproduced metric,
//   * prints a paper-style results table plus the expected shape from the
//     paper after the benchmark run, so bench_output.txt reads as an
//     EXPERIMENTS log.

#ifndef GROUTING_BENCH_BENCH_COMMON_H_
#define GROUTING_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/core/grouting.h"
#include "src/util/table.h"

namespace grouting {
namespace bench {

inline double BenchScale() {
  if (const char* s = std::getenv("GROUTING_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) {
      return v;
    }
  }
  return 0.5;
}

// Which ClusterEngine the bench sweeps run on: GROUTING_BENCH_ENGINE=threaded
// reruns every figure on real threads; anything else (or unset) keeps the
// paper's deterministic discrete-event simulation.
inline EngineKind BenchEngine() {
  if (const char* s = std::getenv("GROUTING_BENCH_ENGINE")) {
    if (std::string(s) == "threaded") {
      return EngineKind::kThreaded;
    }
  }
  return EngineKind::kSimulated;
}

inline const std::vector<RoutingSchemeKind>& AllSchemes() {
  static const std::vector<RoutingSchemeKind> kSchemes = {
      RoutingSchemeKind::kNoCache, RoutingSchemeKind::kNextReady,
      RoutingSchemeKind::kHash, RoutingSchemeKind::kLandmark,
      RoutingSchemeKind::kEmbed};
  return kSchemes;
}

inline void SetCounters(benchmark::State& state, const ClusterMetrics& m) {
  state.counters["throughput_qps"] = m.throughput_qps;
  state.counters["response_ms"] = m.mean_response_ms;
  state.counters["p50_response_ms"] = m.p50_response_ms;
  state.counters["p95_response_ms"] = m.p95_response_ms;
  state.counters["p99_response_ms"] = m.p99_response_ms;
  state.counters["p999_response_ms"] = m.p999_response_ms;
  state.counters["hit_rate_pct"] = 100.0 * m.CacheHitRate();
  state.counters["cache_hits"] = static_cast<double>(m.cache_hits);
  state.counters["cache_misses"] = static_cast<double>(m.cache_misses);
  state.counters["steals"] = static_cast<double>(m.steals);
  state.counters["compression_ratio"] = m.adjacency_compression_ratio;
  state.counters["cache_entries"] = static_cast<double>(m.cache_entries);
  state.counters["decompress_us"] = m.decompress_us;
}

// One collected row for the post-run summary table.
struct ResultRow {
  std::string label;
  ClusterMetrics metrics;
};

inline void PrintMetricsTable(const std::string& title,
                              const std::vector<ResultRow>& rows) {
  Table t({"configuration", "throughput (q/s)", "response (ms)", "hit rate (%)",
           "cache hits", "cache misses", "steals"});
  for (const auto& row : rows) {
    t.AddRow({row.label, Table::Num(row.metrics.throughput_qps, 1),
              Table::Num(row.metrics.mean_response_ms, 3),
              Table::Num(100.0 * row.metrics.CacheHitRate(), 1),
              Table::Int(static_cast<int64_t>(row.metrics.cache_hits)),
              Table::Int(static_cast<int64_t>(row.metrics.cache_misses)),
              Table::Int(static_cast<int64_t>(row.metrics.steals))});
  }
  std::printf("\n=== %s [engine: %s] ===\n%s", title.c_str(),
              EngineKindName(BenchEngine()).c_str(), t.ToString().c_str());
  std::fflush(stdout);
}

inline void PrintPaperShape(const char* shape) {
  std::printf("--- paper shape: %s\n", shape);
  std::fflush(stdout);
}

// --- machine-readable results: BENCH_<name>.json ------------------------
//
// Every bench binary ends its main() with WriteBenchJson, emitting one JSON
// document per bench run into GROUTING_BENCH_JSON_DIR (default: the working
// directory). CI uploads these as artifacts — the bench trajectory — and
// tools/check_bench_regression.py gates pushes against the checked-in
// bench/baselines/*.json on the deterministic simulated engine.

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One named group of result rows (a bench's summary tables map 1:1).
struct JsonGroup {
  const char* group;
  const std::vector<ResultRow>* rows;
};

inline void WriteBenchJson(const std::string& name,
                           std::initializer_list<JsonGroup> groups) {
  const char* dir = std::getenv("GROUTING_BENCH_JSON_DIR");
  const std::string path = std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
                           "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WriteBenchJson: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"engine\": \"%s\",\n  \"scale\": %g,\n",
               JsonEscape(name).c_str(), EngineKindName(BenchEngine()).c_str(),
               BenchScale());
  std::fprintf(f, "  \"results\": [");
  bool first = true;
  for (const JsonGroup& g : groups) {
    for (const ResultRow& row : *g.rows) {
      const ClusterMetrics& m = row.metrics;
      std::fprintf(f, "%s\n    {\"group\": \"%s\", \"label\": \"%s\", ", first ? "" : ",",
                   JsonEscape(g.group).c_str(), JsonEscape(row.label).c_str());
      std::fprintf(f,
                   "\"throughput_qps\": %.6g, \"mean_response_ms\": %.6g, "
                   "\"p50_response_ms\": %.6g, \"p95_response_ms\": %.6g, "
                   "\"p99_response_ms\": %.6g, \"p999_response_ms\": %.6g, "
                   "\"hit_rate\": %.6g, "
                   "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                   "\"storage_batches\": %llu, \"steals\": %llu, "
                   "\"batches_inflight_peak\": %u, \"fetch_overlap_us\": %.6g, "
                   "\"storage_load_imbalance\": %.6g, \"partitions_migrated\": %llu, "
                   "\"repartition_stall_us\": %.6g, "
                   "\"partitions_replicated\": %llu, \"replica_reads\": %llu, "
                   "\"replica_demotions\": %llu, "
                   "\"adjacency_compression_ratio\": %.6g, \"cache_entries\": %llu, "
                   "\"decompress_us\": %.6g, \"bytes_from_storage\": %llu}",
                   m.throughput_qps, m.mean_response_ms, m.p50_response_ms,
                   m.p95_response_ms, m.p99_response_ms, m.p999_response_ms,
                   m.CacheHitRate(), static_cast<unsigned long long>(m.cache_hits),
                   static_cast<unsigned long long>(m.cache_misses),
                   static_cast<unsigned long long>(m.storage_batches),
                   static_cast<unsigned long long>(m.steals), m.batches_inflight_peak,
                   m.fetch_overlap_us, m.storage_load_imbalance,
                   static_cast<unsigned long long>(m.partitions_migrated),
                   m.repartition_stall_us,
                   static_cast<unsigned long long>(m.partitions_replicated),
                   static_cast<unsigned long long>(m.replica_reads),
                   static_cast<unsigned long long>(m.replica_demotions),
                   m.adjacency_compression_ratio,
                   static_cast<unsigned long long>(m.cache_entries), m.decompress_us,
                   static_cast<unsigned long long>(m.bytes_from_storage));
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("--- wrote %s\n", path.c_str());
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace grouting

#endif  // GROUTING_BENCH_BENCH_COMMON_H_
