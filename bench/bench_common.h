// Shared plumbing for the per-table / per-figure benchmark binaries.
//
// Every bench binary:
//   * builds (lazily, once) an ExperimentEnv for its dataset at the bench
//     scale (override with GROUTING_BENCH_SCALE, default 0.5),
//   * runs its cluster configurations on the engine selected by
//     GROUTING_BENCH_ENGINE (sim | threaded, default sim) — the same sweep
//     re-runs on real threads with one flag,
//   * registers one google-benchmark per configuration point, carrying the
//     paper's metrics (throughput, response time, cache hit rate) as
//     counters — wall time of a benchmark iteration is the simulation's
//     execution cost, NOT the reproduced metric,
//   * prints a paper-style results table plus the expected shape from the
//     paper after the benchmark run, so bench_output.txt reads as an
//     EXPERIMENTS log.

#ifndef GROUTING_BENCH_BENCH_COMMON_H_
#define GROUTING_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/core/grouting.h"
#include "src/util/table.h"

namespace grouting {
namespace bench {

inline double BenchScale() {
  if (const char* s = std::getenv("GROUTING_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) {
      return v;
    }
  }
  return 0.5;
}

// Which ClusterEngine the bench sweeps run on: GROUTING_BENCH_ENGINE=threaded
// reruns every figure on real threads; anything else (or unset) keeps the
// paper's deterministic discrete-event simulation.
inline EngineKind BenchEngine() {
  if (const char* s = std::getenv("GROUTING_BENCH_ENGINE")) {
    if (std::string(s) == "threaded") {
      return EngineKind::kThreaded;
    }
  }
  return EngineKind::kSimulated;
}

// Paper-shaped hotspot count scaled to the bench size: the figure benches
// replay the paper's 100-hotspot workload, but at the CI scale
// (GROUTING_BENCH_SCALE=0.08) the full count swamps the shrunken graphs.
// At the default scale (0.5) this returns `paper_hotspots` unchanged, so
// local runs reproduce the paper exactly; smaller scales shrink the
// workload proportionally with a floor of 10 hotspots.
inline size_t ScaledHotspots(size_t paper_hotspots = 100) {
  return std::max<size_t>(
      10, static_cast<size_t>(static_cast<double>(paper_hotspots) * BenchScale() / 0.5));
}

inline const std::vector<RoutingSchemeKind>& AllSchemes() {
  static const std::vector<RoutingSchemeKind> kSchemes = {
      RoutingSchemeKind::kNoCache, RoutingSchemeKind::kNextReady,
      RoutingSchemeKind::kHash, RoutingSchemeKind::kLandmark,
      RoutingSchemeKind::kEmbed};
  return kSchemes;
}

inline void SetCounters(benchmark::State& state, const ClusterMetrics& m) {
  state.counters["throughput_qps"] = m.throughput_qps;
  state.counters["response_ms"] = m.mean_response_ms;
  state.counters["p50_response_ms"] = m.p50_response_ms;
  state.counters["p95_response_ms"] = m.p95_response_ms;
  state.counters["p99_response_ms"] = m.p99_response_ms;
  state.counters["p999_response_ms"] = m.p999_response_ms;
  state.counters["hit_rate_pct"] = 100.0 * m.CacheHitRate();
  state.counters["cache_hits"] = static_cast<double>(m.cache_hits);
  state.counters["cache_misses"] = static_cast<double>(m.cache_misses);
  state.counters["steals"] = static_cast<double>(m.steals);
  state.counters["compression_ratio"] = m.adjacency_compression_ratio;
  state.counters["cache_entries"] = static_cast<double>(m.cache_entries);
  state.counters["decompress_us"] = m.decompress_us;
}

// One collected row for the post-run summary table.
struct ResultRow {
  std::string label;
  ClusterMetrics metrics;
};

inline void PrintMetricsTable(const std::string& title,
                              const std::vector<ResultRow>& rows) {
  Table t({"configuration", "throughput (q/s)", "response (ms)", "hit rate (%)",
           "cache hits", "cache misses", "steals"});
  for (const auto& row : rows) {
    t.AddRow({row.label, Table::Num(row.metrics.throughput_qps, 1),
              Table::Num(row.metrics.mean_response_ms, 3),
              Table::Num(100.0 * row.metrics.CacheHitRate(), 1),
              Table::Int(static_cast<int64_t>(row.metrics.cache_hits)),
              Table::Int(static_cast<int64_t>(row.metrics.cache_misses)),
              Table::Int(static_cast<int64_t>(row.metrics.steals))});
  }
  std::printf("\n=== %s [engine: %s] ===\n%s", title.c_str(),
              EngineKindName(BenchEngine()).c_str(), t.ToString().c_str());
  std::fflush(stdout);
}

inline void PrintPaperShape(const char* shape) {
  std::printf("--- paper shape: %s\n", shape);
  std::fflush(stdout);
}

// --- machine-readable results: BENCH_<name>.json ------------------------
//
// Every bench binary ends its main() with WriteBenchJson, emitting one JSON
// document per bench run into GROUTING_BENCH_JSON_DIR (default: the working
// directory). CI uploads these as artifacts — the bench trajectory — and
// tools/check_bench_regression.py gates pushes against the checked-in
// bench/baselines/*.json on the deterministic simulated engine.

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Fraction of arrivals refused by per-tenant admission control (0 when
// quotas are off or nothing arrived).
inline double ShedRateOf(const ClusterMetrics& m) {
  const uint64_t arrivals = m.queries + m.queries_shed;
  return arrivals == 0 ? 0.0
                       : static_cast<double>(m.queries_shed) / static_cast<double>(arrivals);
}

// Worst per-tenant response-time tail across the run's tenants (ms);
// p999 when `p999`, else p99. 0 when per-tenant metrics are absent.
inline double MaxTenantPercentile(const ClusterMetrics& m, bool p999) {
  double worst = 0.0;
  for (const TenantMetrics& t : m.per_tenant) {
    worst = std::max(worst, p999 ? t.p999_response_ms : t.p99_response_ms);
  }
  return worst;
}

// One named group of result rows (a bench's summary tables map 1:1).
struct JsonGroup {
  const char* group;
  const std::vector<ResultRow>* rows;
};

inline void WriteBenchJson(const std::string& name,
                           std::initializer_list<JsonGroup> groups) {
  const char* dir = std::getenv("GROUTING_BENCH_JSON_DIR");
  const std::string path = std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
                           "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WriteBenchJson: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"engine\": \"%s\",\n  \"scale\": %g,\n",
               JsonEscape(name).c_str(), EngineKindName(BenchEngine()).c_str(),
               BenchScale());
  std::fprintf(f, "  \"results\": [");
  bool first = true;
  for (const JsonGroup& g : groups) {
    for (const ResultRow& row : *g.rows) {
      const ClusterMetrics& m = row.metrics;
      std::fprintf(f, "%s\n    {\"group\": \"%s\", \"label\": \"%s\", ", first ? "" : ",",
                   JsonEscape(g.group).c_str(), JsonEscape(row.label).c_str());
      std::fprintf(f,
                   "\"throughput_qps\": %.6g, \"mean_response_ms\": %.6g, "
                   "\"p50_response_ms\": %.6g, \"p95_response_ms\": %.6g, "
                   "\"p99_response_ms\": %.6g, \"p999_response_ms\": %.6g, "
                   "\"hit_rate\": %.6g, "
                   "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                   "\"storage_batches\": %llu, \"steals\": %llu, "
                   "\"batches_inflight_peak\": %u, \"fetch_overlap_us\": %.6g, "
                   "\"storage_load_imbalance\": %.6g, \"partitions_migrated\": %llu, "
                   "\"repartition_stall_us\": %.6g, "
                   "\"partitions_replicated\": %llu, \"replica_reads\": %llu, "
                   "\"replica_demotions\": %llu, "
                   "\"adjacency_compression_ratio\": %.6g, \"cache_entries\": %llu, "
                   "\"decompress_us\": %.6g, \"bytes_from_storage\": %llu, "
                   "\"tenants\": %u, \"queries_shed\": %llu, \"shed_rate\": %.6g, "
                   "\"max_tenant_p99_ms\": %.6g, \"max_tenant_p999_ms\": %.6g, "
                   "\"mutations_applied\": %llu, \"index_refreshes\": %llu, "
                   "\"stale_distance_error\": %.6g}",
                   m.throughput_qps, m.mean_response_ms, m.p50_response_ms,
                   m.p95_response_ms, m.p99_response_ms, m.p999_response_ms,
                   m.CacheHitRate(), static_cast<unsigned long long>(m.cache_hits),
                   static_cast<unsigned long long>(m.cache_misses),
                   static_cast<unsigned long long>(m.storage_batches),
                   static_cast<unsigned long long>(m.steals), m.batches_inflight_peak,
                   m.fetch_overlap_us, m.storage_load_imbalance,
                   static_cast<unsigned long long>(m.partitions_migrated),
                   m.repartition_stall_us,
                   static_cast<unsigned long long>(m.partitions_replicated),
                   static_cast<unsigned long long>(m.replica_reads),
                   static_cast<unsigned long long>(m.replica_demotions),
                   m.adjacency_compression_ratio,
                   static_cast<unsigned long long>(m.cache_entries), m.decompress_us,
                   static_cast<unsigned long long>(m.bytes_from_storage),
                   static_cast<unsigned>(std::max<size_t>(1, m.per_tenant.size())),
                   static_cast<unsigned long long>(m.queries_shed), ShedRateOf(m),
                   MaxTenantPercentile(m, false), MaxTenantPercentile(m, true),
                   static_cast<unsigned long long>(m.mutations_applied),
                   static_cast<unsigned long long>(m.index_refreshes),
                   m.stale_distance_error);
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("--- wrote %s\n", path.c_str());
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace grouting

#endif  // GROUTING_BENCH_BENCH_COMMON_H_
