// Compressed adjacency × cache-size sweep (extends the Figure 9 axis).
//
// Three modes at each cache budget, all answering the same workload:
//   raw        — v1 fixed-width blobs, decoded entries in cache (pre-PR
//                behaviour; the metric-identity baseline)
//   dv         — v2 delta+varint blobs on the wire, decoded entries in
//                cache (network win only)
//   dv+cc      — v2 blobs on the wire AND in the cache (cache_compressed):
//                the byte budget holds several times more vertices, every
//                hit pays the decode
//
// Expected shape: at small/medium cache budgets dv+cc holds >= 2x the
// entries, hits more, and answers faster than raw despite the decode tax;
// once everything fits, compression only saves wire time.

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow> rows;
  return rows;
}

struct Mode {
  const char* name;
  AdjacencyEncoding encoding;
  bool cache_compressed;
};

const std::vector<Mode>& Modes() {
  static const std::vector<Mode> kModes = {
      {"raw", AdjacencyEncoding::kRaw, false},
      {"dv", AdjacencyEncoding::kDeltaVarint, false},
      {"dv+cc", AdjacencyEncoding::kDeltaVarint, true},
  };
  return kModes;
}

// Small and medium budgets (fractions of the logical working set) — where
// the compressed cache's extra entries matter — plus one ample point where
// every mode's hit rate saturates.
const std::vector<double>& CacheFractions() {
  static const std::vector<double> kFractions = {0.016, 0.0625, 0.25, 1.25};
  return kFractions;
}

void BM_CompressedCache(benchmark::State& state) {
  const Mode& mode = Modes()[static_cast<size_t>(state.range(0))];
  const double fraction = CacheFractions()[static_cast<size_t>(state.range(1))];
  const auto bytes = static_cast<uint64_t>(
      fraction * static_cast<double>(Env().graph().TotalAdjacencyBytes()));
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = RoutingSchemeKind::kEmbed;
  // The paper's 10 Gbps Ethernet profile: compression is a wire-economics
  // trade, and this is the regime where the wire actually costs something
  // (on RDMA-class Infiniband the per-KB term is nearly free and the
  // decode tax has nothing to pay for).
  opts.cost = CostModel::EthernetDefaults();
  opts.cache_bytes = std::max<uint64_t>(bytes, 1);
  opts.adjacency_encoding = mode.encoding;
  opts.cache_compressed = mode.cache_compressed;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  state.counters["cache_mb"] = static_cast<double>(opts.cache_bytes) / (1 << 20);
  char label[128];
  std::snprintf(label, sizeof(label), "%s cache=%.1f%% (%s)", mode.name,
                100.0 * fraction, Table::Bytes(opts.cache_bytes).c_str());
  Rows().push_back({label, m});
}

BENCHMARK(BM_CompressedCache)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The acceptance view: raw vs dv+cc at each budget — entry capacity, hit
// rate, response.
void PrintCapacityComparison() {
  Table t({"cache budget", "raw entries", "dv+cc entries", "capacity x",
           "raw hit %", "dv+cc hit %", "raw resp (ms)", "dv+cc resp (ms)"});
  const size_t num_modes = Modes().size();
  for (size_t c = 0; c < CacheFractions().size(); ++c) {
    // Rows land in benchmark execution order: all modes at a fraction, then
    // the next fraction (see the main table).
    const ResultRow* raw = &Rows()[c * num_modes + 0];
    const ResultRow* cc = &Rows()[c * num_modes + 2];
    const double capacity_x =
        raw->metrics.cache_entries == 0
            ? 0.0
            : static_cast<double>(cc->metrics.cache_entries) /
                  static_cast<double>(raw->metrics.cache_entries);
    t.AddRow({Table::Num(100.0 * CacheFractions()[c], 1) + "%",
              Table::Int(static_cast<int64_t>(raw->metrics.cache_entries)),
              Table::Int(static_cast<int64_t>(cc->metrics.cache_entries)),
              Table::Num(capacity_x, 2),
              Table::Num(100.0 * raw->metrics.CacheHitRate(), 1),
              Table::Num(100.0 * cc->metrics.CacheHitRate(), 1),
              Table::Num(raw->metrics.mean_response_ms, 3),
              Table::Num(cc->metrics.mean_response_ms, 3)});
  }
  std::printf("\n=== compressed cache: capacity / hit rate / response vs raw ===\n%s",
              t.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable(
      "compressed adjacency x cache budget (embed routing)",
      grouting::bench::Rows());
  grouting::bench::PrintCapacityComparison();
  grouting::bench::PrintPaperShape(
      "delta+varint cuts bytes/entry ~2-3x; caching the compressed blob turns "
      "that into >=2x cached vertices per byte, so small/medium caches hit more "
      "and answer faster than raw despite paying a decode on every hit.");
  grouting::bench::WriteBenchJson("fig_compressed_cache",
                                  {{"compressed_cache", &grouting::bench::Rows()}});
  return 0;
}
