// Ablations for the design choices DESIGN.md calls out (not in the paper's
// figures, but direct tests of its design arguments):
//
//   1. CACHE POLICY    — the paper picks LRU "because it favors recent
//                        queries, which performs well with smart routing";
//                        compare LRU / FIFO / LFU / CLOCK under a
//                        capacity-constrained cache.
//   2. QUERY STEALING  — Requirement 2's throughput-vs-locality trade:
//                        stealing on/off for both smart schemes.
//   3. STORAGE PARTITIONING — the headline claim: with smart routing, the
//                        storage tier's partitioning scheme barely matters
//                        (hash vs METIS-like multilevel vs range), whereas
//                        the coupled baseline lives and dies by it.

#include "bench/bench_common.h"

namespace grouting {
namespace bench {
namespace {

ExperimentEnv& Env() {
  static ExperimentEnv env(DatasetId::kWebGraphLike, BenchScale());
  return env;
}

std::vector<ResultRow>& PolicyRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& StealRows() {
  static std::vector<ResultRow> rows;
  return rows;
}
std::vector<ResultRow>& PartitionRows() {
  static std::vector<ResultRow> rows;
  return rows;
}

void BM_CachePolicy(benchmark::State& state) {
  static const CachePolicy kPolicies[] = {CachePolicy::kLru, CachePolicy::kFifo,
                                          CachePolicy::kLfu, CachePolicy::kClock};
  const CachePolicy policy = kPolicies[static_cast<size_t>(state.range(0))];
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = RoutingSchemeKind::kEmbed;
  opts.cache_policy = policy;
  // Constrain capacity to 1/16 of the working set so eviction policy matters.
  opts.cache_bytes = Env().graph().TotalAdjacencyBytes() / 16;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  PolicyRows().push_back({"embed + " + CachePolicyName(policy) + " (1/16 capacity)", m});
}

void BM_Stealing(benchmark::State& state) {
  static const RoutingSchemeKind kSchemes[] = {RoutingSchemeKind::kEmbed,
                                               RoutingSchemeKind::kLandmark};
  const auto scheme = kSchemes[static_cast<size_t>(state.range(0))];
  const bool stealing = state.range(1) != 0;
  RunOptions opts;
  opts.num_hotspots = ScaledHotspots();
  opts.scheme = scheme;
  opts.stealing = stealing;
  ClusterMetrics m;
  for (auto _ : state) {
    m = Env().Run(BenchEngine(), opts);
  }
  SetCounters(state, m);
  StealRows().push_back({RoutingSchemeKindName(scheme) +
                             (stealing ? " stealing=on" : " stealing=off"),
                         m});
}

void BM_StoragePartitioning(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const Graph& g = Env().graph();
  auto queries = Env().HotspotWorkload(/*r=*/2, /*h=*/2, ScaledHotspots());

  PartitionAssignment placement;
  std::string label;
  switch (which) {
    case 0:
      placement = HashPartitioner().Partition(g, PaperDefaults::kStorageServers);
      label = "embed + hash storage partitioning";
      break;
    case 1:
      placement = MultilevelPartitioner().Partition(g, PaperDefaults::kStorageServers);
      label = "embed + multilevel (METIS-like) storage partitioning";
      break;
    default:
      placement = RangePartitioner().Partition(g, PaperDefaults::kStorageServers);
      label = "embed + range storage partitioning";
      break;
  }

  RunOptions opts;
  opts.scheme = RoutingSchemeKind::kEmbed;
  ClusterMetrics m;
  for (auto _ : state) {
    auto engine = MakeClusterEngine(BenchEngine(), g, Env().MakeClusterConfig(opts),
                                    Env().MakeStrategy(opts), &placement);
    m = engine->Run(queries);
  }
  SetCounters(state, m);
  PartitionRows().push_back({label, m});
}

BENCHMARK(BM_CachePolicy)->DenseRange(0, 3, 1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Stealing)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoragePartitioning)
    ->DenseRange(0, 2, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace grouting

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  grouting::bench::PrintMetricsTable("Ablation 1: cache eviction policy (constrained cache)",
                                     grouting::bench::PolicyRows());
  grouting::bench::PrintPaperShape(
      "LRU favours the recent queries smart routing groups together; FIFO/CLOCK trail, "
      "LFU can pin stale hubs.");
  grouting::bench::PrintMetricsTable("Ablation 2: query stealing on/off",
                                     grouting::bench::StealRows());
  grouting::bench::PrintPaperShape(
      "stealing trades a few points of hit rate for balance; net throughput is higher "
      "with stealing on (Requirement 2).");
  grouting::bench::PrintMetricsTable("Ablation 3: storage-tier partitioning under smart routing",
                                     grouting::bench::PartitionRows());
  grouting::bench::PrintPaperShape(
      "with embed routing the storage partitioning scheme barely moves the needle — "
      "the paper's core argument for skipping expensive partitioning.");
  grouting::bench::WriteBenchJson("ablation_design",
                                  {{"cache_policy", &grouting::bench::PolicyRows()},
                                   {"stealing", &grouting::bench::StealRows()},
                                   {"partitioning", &grouting::bench::PartitionRows()}});
  return 0;
}
