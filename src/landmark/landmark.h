// Landmark machinery (paper Section 3.4.1 preprocessing).
//
// Landmarks are selected by degree with a minimum pairwise hop separation;
// a BFS from each landmark yields distance vectors over all nodes. These
// distances power (a) landmark routing's d(u,p) table and (b) the graph
// embedding (src/embed). uint16 distances keep the tables compact (the
// paper stresses O(n) router storage).

#ifndef GROUTING_SRC_LANDMARK_LANDMARK_H_
#define GROUTING_SRC_LANDMARK_LANDMARK_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace grouting {

inline constexpr uint16_t kUnreachableU16 = 0xFFFF;

struct LandmarkConfig {
  size_t num_landmarks = 96;     // paper default
  int32_t min_separation = 3;    // paper default: >= 3 hops apart
  // Candidate pool size = num_landmarks * candidate_factor highest-degree
  // nodes; if separation filtering exhausts the pool, the constraint is
  // relaxed so the requested count is still met when possible.
  size_t candidate_factor = 6;
  uint64_t seed = 7;
};

struct LandmarkSelectionStats {
  double selection_seconds = 0.0;  // pure candidate filtering
  double bfs_seconds = 0.0;        // distance computation (Table 2 column 1)
  size_t separation_relaxed = 0;   // landmarks accepted below min_separation
};

class LandmarkSet {
 public:
  // Selects landmarks and computes all distance vectors. If `allowed` is
  // non-null, selection and BFS are restricted to that induced node set
  // (the graph-update experiments preprocess on a subgraph).
  static LandmarkSet Select(const Graph& g, const LandmarkConfig& config,
                            const std::vector<uint8_t>* allowed = nullptr);

  size_t count() const { return landmarks_.size(); }
  NodeId landmark_node(size_t l) const { return landmarks_[l]; }
  const std::vector<NodeId>& landmark_nodes() const { return landmarks_; }

  // Hop distance from landmark l to node u (kUnreachableU16 if unknown).
  uint16_t Distance(size_t l, NodeId u) const { return distances_[l][u]; }
  const std::vector<uint16_t>& DistanceVector(size_t l) const { return distances_[l]; }

  // Distance between two landmarks.
  uint16_t LandmarkDistance(size_t l1, size_t l2) const {
    return distances_[l1][landmarks_[l2]];
  }

  // Estimates a (possibly new/unknown) node's distance to every landmark as
  // 1 + min over its neighbours' known distances — the incremental update
  // path for node insertion. Returns all-unreachable if no neighbour is
  // known. Does NOT modify the set; call Assimilate to persist.
  std::vector<uint16_t> EstimateDistances(const Graph& g, NodeId u) const;

  // Persists estimated distances for node u (marks it known).
  void Assimilate(NodeId u, const std::vector<uint16_t>& dists);

  bool IsKnown(NodeId u) const { return known_[u] != 0; }

  uint64_t MemoryBytes() const;
  const LandmarkSelectionStats& stats() const { return stats_; }

 private:
  std::vector<NodeId> landmarks_;
  std::vector<std::vector<uint16_t>> distances_;  // [landmark][node]
  std::vector<uint8_t> known_;                    // node had real/estimated BFS data
  LandmarkSelectionStats stats_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_LANDMARK_LANDMARK_H_
