#include "src/landmark/landmark.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "src/graph/traversal.h"

namespace grouting {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::vector<uint16_t> ToU16(const std::vector<int32_t>& dist) {
  std::vector<uint16_t> out(dist.size());
  for (size_t i = 0; i < dist.size(); ++i) {
    out[i] = dist[i] == kUnreachable || dist[i] > 0xFFFE
                 ? kUnreachableU16
                 : static_cast<uint16_t>(dist[i]);
  }
  return out;
}

}  // namespace

LandmarkSet LandmarkSet::Select(const Graph& g, const LandmarkConfig& config,
                                const std::vector<uint8_t>* allowed) {
  GROUTING_CHECK(config.num_landmarks > 0);
  LandmarkSet set;
  const size_t n = g.num_nodes();
  set.known_.assign(n, allowed == nullptr ? 1 : 0);
  if (allowed != nullptr) {
    for (NodeId u = 0; u < n; ++u) {
      set.known_[u] = (*allowed)[u];
    }
  }
  if (n == 0) {
    return set;
  }

  const auto select_start = std::chrono::steady_clock::now();

  // Candidate pool: highest-degree nodes first (paper: "considering the
  // highest degree nodes ... spread over the entire graph").
  std::vector<NodeId> by_degree;
  by_degree.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    // Isolated nodes cannot anchor anything — never select them.
    if ((allowed == nullptr || (*allowed)[u]) && g.Degree(u) > 0) {
      by_degree.push_back(u);
    }
  }
  std::sort(by_degree.begin(), by_degree.end(),
            [&](NodeId a, NodeId b) { return g.Degree(a) > g.Degree(b); });
  const size_t pool =
      std::min(by_degree.size(), config.num_landmarks * config.candidate_factor);

  set.stats_.selection_seconds = SecondsSince(select_start);
  const auto bfs_start = std::chrono::steady_clock::now();

  BfsOptions opts;
  opts.bidirected = true;
  opts.allowed = allowed;

  auto try_add = [&](NodeId candidate, int32_t min_sep) {
    for (size_t l = 0; l < set.landmarks_.size(); ++l) {
      const uint16_t d = set.distances_[l][candidate];
      if (d != kUnreachableU16 && static_cast<int32_t>(d) < min_sep) {
        return false;  // too close to landmark l; lower-degree candidate loses
      }
    }
    set.landmarks_.push_back(candidate);
    set.distances_.push_back(ToU16(BfsDistances(g, candidate, opts)));
    return true;
  };

  for (size_t i = 0; i < pool && set.landmarks_.size() < config.num_landmarks; ++i) {
    try_add(by_degree[i], config.min_separation);
  }
  // Relaxation pass: if separation filtering starved us, fill from the full
  // degree-ordered list ignoring separation.
  for (size_t i = 0;
       i < by_degree.size() && set.landmarks_.size() < config.num_landmarks; ++i) {
    const NodeId candidate = by_degree[i];
    if (std::find(set.landmarks_.begin(), set.landmarks_.end(), candidate) !=
        set.landmarks_.end()) {
      continue;
    }
    if (try_add(candidate, 1)) {
      ++set.stats_.separation_relaxed;
    }
  }
  set.stats_.bfs_seconds = SecondsSince(bfs_start);
  return set;
}

std::vector<uint16_t> LandmarkSet::EstimateDistances(const Graph& g, NodeId u) const {
  std::vector<uint16_t> est(count(), kUnreachableU16);
  auto consider = [&](NodeId v) {
    if (v >= known_.size() || !known_[v]) {
      return;
    }
    for (size_t l = 0; l < count(); ++l) {
      const uint16_t dv = distances_[l][v];
      if (dv != kUnreachableU16 && dv + 1 < est[l]) {
        est[l] = static_cast<uint16_t>(dv + 1);
      }
    }
  };
  for (const Edge& e : g.OutNeighbors(u)) {
    consider(e.dst);
  }
  for (const Edge& e : g.InNeighbors(u)) {
    consider(e.dst);
  }
  return est;
}

void LandmarkSet::Assimilate(NodeId u, const std::vector<uint16_t>& dists) {
  GROUTING_CHECK(dists.size() == count());
  GROUTING_CHECK(u < known_.size());
  for (size_t l = 0; l < count(); ++l) {
    distances_[l][u] = dists[l];
  }
  known_[u] = 1;
}

uint64_t LandmarkSet::MemoryBytes() const {
  uint64_t total = landmarks_.size() * sizeof(NodeId) + known_.size();
  for (const auto& d : distances_) {
    total += d.size() * sizeof(uint16_t);
  }
  return total;
}

}  // namespace grouting
