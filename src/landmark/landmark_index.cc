#include "src/landmark/landmark_index.h"

#include <algorithm>
#include <chrono>
#include <deque>

namespace grouting {
namespace {

// Farthest-point pivot selection over the landmark-to-landmark distance
// matrix: first two pivots are the farthest pair; each next pivot maximises
// its minimum distance to the chosen pivots.
std::vector<size_t> SelectPivots(const LandmarkSet& lms, uint32_t num_pivots) {
  const size_t L = lms.count();
  std::vector<size_t> pivots;
  if (L == 0 || num_pivots == 0) {
    return pivots;
  }
  if (num_pivots >= L) {
    pivots.resize(L);
    for (size_t i = 0; i < L; ++i) {
      pivots[i] = i;
    }
    return pivots;
  }

  auto dist = [&](size_t a, size_t b) -> uint32_t {
    const uint16_t d = lms.LandmarkDistance(a, b);
    return d == kUnreachableU16 ? 1u << 20 : d;  // disconnected = very far
  };

  size_t best_a = 0;
  size_t best_b = L > 1 ? 1 : 0;
  uint32_t best_d = 0;
  for (size_t a = 0; a < L; ++a) {
    for (size_t b = a + 1; b < L; ++b) {
      const uint32_t d = dist(a, b);
      if (d > best_d) {
        best_d = d;
        best_a = a;
        best_b = b;
      }
    }
  }
  pivots.push_back(best_a);
  if (num_pivots > 1 && L > 1) {
    pivots.push_back(best_b);
  }
  while (pivots.size() < num_pivots) {
    size_t best = SIZE_MAX;
    uint32_t best_min = 0;
    for (size_t cand = 0; cand < L; ++cand) {
      if (std::find(pivots.begin(), pivots.end(), cand) != pivots.end()) {
        continue;
      }
      uint32_t min_d = UINT32_MAX;
      for (size_t p : pivots) {
        min_d = std::min(min_d, dist(cand, p));
      }
      if (best == SIZE_MAX || min_d > best_min) {
        best_min = min_d;
        best = cand;
      }
    }
    if (best == SIZE_MAX) {
      break;
    }
    pivots.push_back(best);
  }
  return pivots;
}

}  // namespace

LandmarkIndex LandmarkIndex::Build(LandmarkSet landmarks, uint32_t num_processors) {
  GROUTING_CHECK(num_processors > 0);
  const auto start = std::chrono::steady_clock::now();

  LandmarkIndex index;
  index.landmarks_ = std::move(landmarks);
  index.num_processors_ = num_processors;
  const LandmarkSet& lms = index.landmarks_;
  const size_t L = lms.count();
  index.node_count_ = L > 0 ? lms.DistanceVector(0).size() : 0;

  // Pivots and landmark -> processor assignment.
  index.pivots_ = SelectPivots(lms, num_processors);
  index.landmark_processor_.assign(L, 0);
  for (size_t l = 0; l < L; ++l) {
    uint32_t best_p = 0;
    uint32_t best_d = UINT32_MAX;
    for (size_t pi = 0; pi < index.pivots_.size(); ++pi) {
      const uint16_t d16 = lms.LandmarkDistance(l, index.pivots_[pi]);
      const uint32_t d = d16 == kUnreachableU16 ? 1u << 20 : d16;
      if (d < best_d) {
        best_d = d;
        best_p = static_cast<uint32_t>(pi % num_processors);
      }
    }
    index.landmark_processor_[l] = best_p;
  }

  // d(u,p) table.
  index.dist_.assign(index.node_count_ * num_processors, kUnreachableU16);
  for (NodeId u = 0; u < index.node_count_; ++u) {
    index.FillRow(u);
  }

  index.build_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return index;
}

void LandmarkIndex::FillRow(NodeId u) {
  uint16_t* row = dist_.data() + static_cast<size_t>(u) * num_processors_;
  std::fill(row, row + num_processors_, kUnreachableU16);
  for (size_t l = 0; l < landmarks_.count(); ++l) {
    const uint16_t d = landmarks_.Distance(l, u);
    const uint32_t p = landmark_processor_[l];
    if (d < row[p]) {
      row[p] = d;
    }
  }
}

uint32_t LandmarkIndex::NearestProcessor(NodeId u) const {
  uint32_t best = 0;
  uint16_t best_d = kUnreachableU16;
  for (uint32_t p = 0; p < num_processors_; ++p) {
    const uint16_t d = Distance(u, p);
    if (d < best_d) {
      best_d = d;
      best = p;
    }
  }
  return best;
}

bool LandmarkIndex::AddNodeIncremental(const Graph& g, NodeId u) {
  GROUTING_CHECK(u < node_count_);
  const auto est = landmarks_.EstimateDistances(g, u);
  const bool any_known =
      std::any_of(est.begin(), est.end(), [](uint16_t d) { return d != kUnreachableU16; });
  landmarks_.Assimilate(u, est);
  FillRow(u);
  return any_known;
}

void LandmarkIndex::RefreshAroundEdge(const Graph& g, NodeId u, NodeId v, int32_t hops) {
  // Collect the <= hops neighbourhood of both endpoints (bi-directed) and
  // re-estimate each affected node from its current neighbours.
  std::vector<NodeId> affected;
  std::vector<uint8_t> seen(g.num_nodes(), 0);
  std::deque<std::pair<NodeId, int32_t>> frontier;
  for (NodeId s : {u, v}) {
    if (s < g.num_nodes() && !seen[s]) {
      seen[s] = 1;
      frontier.emplace_back(s, 0);
      affected.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const auto [x, d] = frontier.front();
    frontier.pop_front();
    if (d >= hops) {
      continue;
    }
    auto visit = [&](NodeId y) {
      if (!seen[y]) {
        seen[y] = 1;
        affected.push_back(y);
        frontier.emplace_back(y, d + 1);
      }
    };
    for (const Edge& e : g.OutNeighbors(x)) {
      visit(e.dst);
    }
    for (const Edge& e : g.InNeighbors(x)) {
      visit(e.dst);
    }
  }
  for (NodeId x : affected) {
    const auto est = landmarks_.EstimateDistances(g, x);
    // Keep the better of old and estimated distance per landmark: an edge
    // insertion can only shorten paths; deletions are handled by periodic
    // offline recompute (as in the paper).
    std::vector<uint16_t> merged(est.size());
    for (size_t l = 0; l < est.size(); ++l) {
      merged[l] = std::min(est[l], landmarks_.Distance(l, x));
    }
    landmarks_.Assimilate(x, merged);
    FillRow(x);
  }
}

size_t LandmarkIndex::RefreshNodes(const Graph& g, std::span<const NodeId> nodes) {
  size_t refreshed = 0;
  for (const NodeId u : nodes) {
    if (u >= node_count_) {
      continue;
    }
    const auto est = landmarks_.EstimateDistances(g, u);
    std::vector<uint16_t> merged(est.size());
    bool any_known = false;
    for (size_t l = 0; l < est.size(); ++l) {
      merged[l] = std::min(est[l], landmarks_.Distance(l, u));
      any_known = any_known || merged[l] != kUnreachableU16;
    }
    landmarks_.Assimilate(u, merged);
    FillRow(u);
    if (any_known) {
      ++refreshed;
    }
  }
  return refreshed;
}

}  // namespace grouting
