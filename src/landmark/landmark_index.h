// Landmark routing's router-side index (paper Section 3.4.1):
//
//   1. pick P pivot landmarks by farthest-point traversal,
//   2. assign every other landmark to its nearest pivot (= processor),
//   3. store d(u,p) = min over landmarks of processor p of dist(u, landmark)
//      for every node u — O(n*P) router storage, O(P) routing decisions.
//
// The index also supports the incremental node-insertion path used by the
// graph-update experiments.

#ifndef GROUTING_SRC_LANDMARK_LANDMARK_INDEX_H_
#define GROUTING_SRC_LANDMARK_LANDMARK_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/landmark/landmark.h"

namespace grouting {

class LandmarkIndex {
 public:
  // Builds the full index. `landmarks` must outlive the index only during
  // this call (distances are copied into the d(u,p) table); the set is moved
  // in so incremental updates can reuse it.
  static LandmarkIndex Build(LandmarkSet landmarks, uint32_t num_processors);

  uint32_t num_processors() const { return num_processors_; }
  size_t num_nodes() const { return node_count_; }

  // d(u,p): distance from node u to processor p (kUnreachableU16 if unknown).
  uint16_t Distance(NodeId u, uint32_t p) const {
    GROUTING_DCHECK(u < node_count_ && p < num_processors_);
    return dist_[static_cast<size_t>(u) * num_processors_ + p];
  }

  // argmin_p d(u,p), ties to the lower processor id.
  uint32_t NearestProcessor(NodeId u) const;

  // Processor that each landmark was assigned to, and the pivot landmarks
  // (indices into the landmark set) — exposed for tests and diagnostics.
  const std::vector<uint32_t>& landmark_processor() const { return landmark_processor_; }
  const std::vector<size_t>& pivots() const { return pivots_; }
  const LandmarkSet& landmarks() const { return landmarks_; }

  // Incremental node insertion: estimates the new node's landmark distances
  // from already-known neighbours, persists them, and fills its d(u,p) row.
  // Returns false if no neighbour was known (row stays unreachable).
  bool AddNodeIncremental(const Graph& g, NodeId u);

  // Incremental edge insertion/deletion support: re-estimates distances for
  // the endpoint nodes and their neighbours up to `hops` away (paper: "their
  // neighbors up to a certain number of hops, e.g. 2-hops").
  void RefreshAroundEdge(const Graph& g, NodeId u, NodeId v, int32_t hops = 2);

  // Batch refresh for the engine's index-maintenance hook: re-estimates
  // each listed node from its current neighbours, min-merging with what is
  // already known (same rule as RefreshAroundEdge — estimates can only
  // improve stored distances), and refills its d(u,p) row. Unknown nodes
  // take the plain incremental-insertion path. Returns how many nodes
  // ended up with at least one known landmark distance.
  size_t RefreshNodes(const Graph& g, std::span<const NodeId> nodes);

  // Router-resident storage (Table 3): the n x P distance table.
  uint64_t RouterStorageBytes() const {
    return static_cast<uint64_t>(node_count_) * num_processors_ * sizeof(uint16_t);
  }
  // Preprocessing-side storage (landmark distance vectors).
  uint64_t PreprocessStorageBytes() const { return landmarks_.MemoryBytes(); }

  double build_seconds() const { return build_seconds_; }

 private:
  void FillRow(NodeId u);

  LandmarkSet landmarks_;
  uint32_t num_processors_ = 0;
  size_t node_count_ = 0;
  std::vector<uint16_t> dist_;  // n x P row-major
  std::vector<uint32_t> landmark_processor_;
  std::vector<size_t> pivots_;
  double build_seconds_ = 0.0;
};

}  // namespace grouting

#endif  // GROUTING_SRC_LANDMARK_LANDMARK_INDEX_H_
