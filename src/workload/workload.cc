#include "src/workload/workload.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/graph/traversal.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

QueryType DrawType(const WorkloadConfig& config, Rng& rng) {
  const double total =
      config.weight_aggregation + config.weight_random_walk + config.weight_reachability;
  GROUTING_CHECK(total > 0.0);
  const double r = rng.NextDouble() * total;
  if (r < config.weight_aggregation) {
    return QueryType::kNeighborAggregation;
  }
  if (r < config.weight_aggregation + config.weight_random_walk) {
    return QueryType::kRandomWalk;
  }
  return QueryType::kReachability;
}

Query MakeQuery(const Graph& g, NodeId query_node, uint64_t id,
                const WorkloadConfig& config, Rng& rng) {
  Query q;
  q.id = id;
  q.node = query_node;
  q.hops = config.hops;
  q.restart_prob = config.restart_prob;
  q.seed = rng.Next();
  q.type = DrawType(config, rng);
  if (q.type == QueryType::kReachability) {
    // Target within 2h hops half the time (bidirectional search does real
    // work), otherwise uniform (usually unreachable within h).
    if (rng.NextBool(0.5)) {
      const auto near = KHopNeighborhood(g, query_node, 2 * config.hops);
      if (!near.empty()) {
        q.target = near[rng.NextBounded(near.size())];
      }
    }
    if (q.target == kInvalidNode) {
      q.target = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    }
  }
  return q;
}

}  // namespace

std::vector<Query> GenerateHotspotWorkload(const Graph& g, const WorkloadConfig& config) {
  GROUTING_CHECK(g.num_nodes() > 0);
  Rng rng(config.seed);
  std::vector<Query> queries;
  queries.reserve(config.num_hotspots * config.queries_per_hotspot);
  uint64_t id = 0;
  for (size_t hs = 0; hs < config.num_hotspots; ++hs) {
    const auto center = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto region = KHopNeighborhood(g, center, config.hotspot_radius);
    for (size_t i = 0; i < config.queries_per_hotspot; ++i) {
      // Query nodes at most r hops from the center (the center itself when
      // the region is empty, e.g. isolated nodes).
      const NodeId node =
          region.empty() ? center : region[rng.NextBounded(region.size())];
      queries.push_back(MakeQuery(g, node, id++, config, rng));
    }
  }
  return queries;
}

std::vector<Query> GenerateSkewedSessionWorkload(const Graph& g,
                                                 const SkewedWorkloadConfig& config) {
  GROUTING_CHECK(g.num_nodes() > 0);
  GROUTING_CHECK(config.num_sessions > 0);
  GROUTING_CHECK(config.zipf_s >= 0.0);
  Rng rng(config.seed ^ 0x5ca1ab1eULL);

  // Session keys: distinct query nodes where the graph allows it (a session
  // is a sticky key, so duplicates would silently merge sessions).
  std::vector<NodeId> sessions;
  sessions.reserve(config.num_sessions);
  std::unordered_set<NodeId> used;
  for (size_t i = 0; i < config.num_sessions; ++i) {
    auto node = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    for (int attempt = 0; attempt < 64 && used.count(node) > 0; ++attempt) {
      node = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    }
    used.insert(node);
    sessions.push_back(node);
  }

  // Zipf CDF over session ranks: weight(i) = 1 / (i+1)^s.
  std::vector<double> cdf(sessions.size(), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < sessions.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), config.zipf_s);
    cdf[i] = total;
  }

  WorkloadConfig wl;
  wl.hops = config.hops;
  wl.weight_aggregation = config.weight_aggregation;
  wl.weight_random_walk = config.weight_random_walk;
  wl.weight_reachability = config.weight_reachability;
  wl.restart_prob = config.restart_prob;

  std::vector<Query> queries;
  queries.reserve(config.num_queries);
  for (uint64_t id = 0; id < config.num_queries; ++id) {
    const double r = rng.NextDouble() * total;
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), r) - cdf.begin());
    const NodeId node = sessions[std::min(rank, sessions.size() - 1)];
    queries.push_back(MakeQuery(g, node, id, wl, rng));
  }
  return queries;
}

std::vector<Query> GenerateUniformWorkload(const Graph& g, size_t count,
                                           const WorkloadConfig& config) {
  GROUTING_CHECK(g.num_nodes() > 0);
  Rng rng(config.seed ^ 0xabcdef12345ULL);
  std::vector<Query> queries;
  queries.reserve(count);
  for (uint64_t id = 0; id < count; ++id) {
    const auto node = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    queries.push_back(MakeQuery(g, node, id, config, rng));
  }
  return queries;
}

}  // namespace grouting
