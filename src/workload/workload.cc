#include "src/workload/workload.h"

#include "src/graph/traversal.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

QueryType DrawType(const WorkloadConfig& config, Rng& rng) {
  const double total =
      config.weight_aggregation + config.weight_random_walk + config.weight_reachability;
  GROUTING_CHECK(total > 0.0);
  const double r = rng.NextDouble() * total;
  if (r < config.weight_aggregation) {
    return QueryType::kNeighborAggregation;
  }
  if (r < config.weight_aggregation + config.weight_random_walk) {
    return QueryType::kRandomWalk;
  }
  return QueryType::kReachability;
}

Query MakeQuery(const Graph& g, NodeId query_node, uint64_t id,
                const WorkloadConfig& config, Rng& rng) {
  Query q;
  q.id = id;
  q.node = query_node;
  q.hops = config.hops;
  q.restart_prob = config.restart_prob;
  q.seed = rng.Next();
  q.type = DrawType(config, rng);
  if (q.type == QueryType::kReachability) {
    // Target within 2h hops half the time (bidirectional search does real
    // work), otherwise uniform (usually unreachable within h).
    if (rng.NextBool(0.5)) {
      const auto near = KHopNeighborhood(g, query_node, 2 * config.hops);
      if (!near.empty()) {
        q.target = near[rng.NextBounded(near.size())];
      }
    }
    if (q.target == kInvalidNode) {
      q.target = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    }
  }
  return q;
}

}  // namespace

std::vector<Query> GenerateHotspotWorkload(const Graph& g, const WorkloadConfig& config) {
  GROUTING_CHECK(g.num_nodes() > 0);
  Rng rng(config.seed);
  std::vector<Query> queries;
  queries.reserve(config.num_hotspots * config.queries_per_hotspot);
  uint64_t id = 0;
  for (size_t hs = 0; hs < config.num_hotspots; ++hs) {
    const auto center = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto region = KHopNeighborhood(g, center, config.hotspot_radius);
    for (size_t i = 0; i < config.queries_per_hotspot; ++i) {
      // Query nodes at most r hops from the center (the center itself when
      // the region is empty, e.g. isolated nodes).
      const NodeId node =
          region.empty() ? center : region[rng.NextBounded(region.size())];
      queries.push_back(MakeQuery(g, node, id++, config, rng));
    }
  }
  return queries;
}

std::vector<Query> GenerateUniformWorkload(const Graph& g, size_t count,
                                           const WorkloadConfig& config) {
  GROUTING_CHECK(g.num_nodes() > 0);
  Rng rng(config.seed ^ 0xabcdef12345ULL);
  std::vector<Query> queries;
  queries.reserve(count);
  for (uint64_t id = 0; id < count; ++id) {
    const auto node = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    queries.push_back(MakeQuery(g, node, id, config, rng));
  }
  return queries;
}

}  // namespace grouting
