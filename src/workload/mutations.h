// Mutation-schedule generators for the online write path (beyond the
// paper's fig 10 protocol; ROADMAP's "online graph mutations with index
// maintenance" axis):
//
//   * GenerateMutationSchedule — a standalone write schedule over the
//     graph: vertex adds materialise withheld nodes of a keep mask in a
//     deterministic shuffled order (the fig10 "preprocess X%, stream the
//     rest" protocol), edge inserts/deletes toggle real universe edges so
//     incremental index maintenance always reasons about edges the graph
//     actually has.
//   * GenerateMixedOpenLoopWorkload — the mixed read/write open-loop
//     stream: a deterministic `mutation_fraction` of an open-loop arrival
//     schedule is converted into writes at the same arrive_us instants,
//     leaving the read arrivals' timestamps untouched.
//
// Both are pure and deterministic in their seeds; both engines consume the
// same schedule (the sim as virtual-time events, the threaded runtime via
// its writer thread), which is what the cross-engine mutation tests pin.

#ifndef GROUTING_SRC_WORKLOAD_MUTATIONS_H_
#define GROUTING_SRC_WORKLOAD_MUTATIONS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/query/query.h"
#include "src/storage/storage_tier.h"
#include "src/workload/open_loop.h"

namespace grouting {

struct MutationScheduleConfig {
  // Schedule length. With a keep mask, vertex adds are capped at the number
  // of withheld nodes (each is materialised exactly once).
  size_t num_mutations = 256;
  // Gap between consecutive timed entries: entry i applies at
  // (i + 1) * gap_us (virtual µs on the sim, wall µs from the run epoch on
  // the threaded engine). <= 0 = a fully quiesced schedule (every entry
  // applies at the start of the run, before any query dispatch).
  double gap_us = 50.0;
  // Relative weights of the three mutation kinds. Vertex adds fall back to
  // edge mutations once the keep mask's withheld nodes are exhausted (or
  // when there is no mask — every node is then already materialised, and a
  // kAddVertex would only rewrite an identical blob).
  double weight_add_vertex = 1.0;
  double weight_add_edge = 1.0;
  double weight_remove_edge = 1.0;
  uint64_t seed = 2024;
};

// Generates a deterministic mutation schedule over `g`. `keep` (optional,
// same mask as ClusterConfig::mutation_preload_keep, sized num_nodes or
// empty) marks the preloaded nodes: withheld ones (keep[u] == 0) are drawn
// without replacement, in seeded shuffled order, as kAddVertex entries.
// Edge entries pick a real edge of `g` (uniform endpoint with retry, then a
// uniform out-edge) and carry its label, so a kRemoveEdge/kAddEdge pair
// round-trips the stored adjacency exactly.
std::vector<GraphMutation> GenerateMutationSchedule(
    const Graph& g, std::span<const uint8_t> keep,
    const MutationScheduleConfig& config);

// Mixed read/write open-loop stream. One query/mutation schedule pair from
// one arrival process: GenerateOpenLoopWorkload's arrivals are walked in
// order and each becomes a write with probability `mutation_fraction`
// (deterministic in `mutation_seed`), applying at that arrival's arrive_us;
// the rest stay read queries with their original ids and timestamps. Kind
// weights follow `mutation` (its num_mutations/gap_us are ignored — count
// and timing come from the arrival process).
struct MixedWorkload {
  std::vector<Query> queries;
  std::vector<GraphMutation> mutations;
};
MixedWorkload GenerateMixedOpenLoopWorkload(const Graph& g,
                                            const OpenLoopConfig& config,
                                            double mutation_fraction,
                                            const MutationScheduleConfig& mutation);

}  // namespace grouting

#endif  // GROUTING_SRC_WORKLOAD_MUTATIONS_H_
