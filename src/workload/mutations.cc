#include "src/workload/mutations.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

// Draws a real edge of `g`: a uniform node with out-degree > 0 (bounded
// retry — generated graphs are connected-ish, so a handful of probes
// suffices; a degenerate edgeless graph falls back to a self-loop add,
// which the tier treats as an ordinary insert). Returns {u, edge-index}.
bool DrawUniverseEdge(const Graph& g, Rng& rng, NodeId* u, size_t* edge_index) {
  const uint64_t n = g.num_nodes();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const NodeId cand = static_cast<NodeId>(rng.NextBounded(n));
    const auto out = g.OutNeighbors(cand);
    if (!out.empty()) {
      *u = cand;
      *edge_index = rng.NextBounded(out.size());
      return true;
    }
  }
  return false;
}

GraphMutation::Kind DrawKind(const MutationScheduleConfig& config,
                             bool vertex_adds_left, Rng& rng) {
  const double wv = vertex_adds_left ? config.weight_add_vertex : 0.0;
  const double total = wv + config.weight_add_edge + config.weight_remove_edge;
  GROUTING_CHECK_MSG(total > 0.0, "mutation kind weights must not all be zero");
  const double r = rng.NextDouble() * total;
  if (r < wv) {
    return GraphMutation::Kind::kAddVertex;
  }
  if (r < wv + config.weight_add_edge) {
    return GraphMutation::Kind::kAddEdge;
  }
  return GraphMutation::Kind::kRemoveEdge;
}

GraphMutation DrawEdgeMutation(const Graph& g, GraphMutation::Kind kind, Rng& rng) {
  GraphMutation m;
  m.kind = kind;
  NodeId u = 0;
  size_t edge_index = 0;
  if (DrawUniverseEdge(g, rng, &u, &edge_index)) {
    const Edge e = g.OutNeighbors(u)[edge_index];
    m.u = u;
    m.v = e.dst;
    m.label = e.label;
  } else {
    m.u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    m.v = m.u;  // edgeless graph: a self-loop keeps the schedule total
  }
  return m;
}

}  // namespace

std::vector<GraphMutation> GenerateMutationSchedule(
    const Graph& g, std::span<const uint8_t> keep,
    const MutationScheduleConfig& config) {
  GROUTING_CHECK(g.num_nodes() > 0);
  GROUTING_CHECK(keep.empty() || keep.size() == g.num_nodes());
  Rng rng(config.seed);

  // Withheld nodes, seeded-shuffled: each is materialised exactly once, in
  // an order independent of how the kinds interleave.
  std::vector<NodeId> hidden;
  for (size_t u = 0; u < keep.size(); ++u) {
    if (keep[u] == 0) {
      hidden.push_back(static_cast<NodeId>(u));
    }
  }
  std::shuffle(hidden.begin(), hidden.end(), rng);
  size_t next_hidden = 0;

  std::vector<GraphMutation> schedule;
  schedule.reserve(config.num_mutations);
  for (size_t i = 0; i < config.num_mutations; ++i) {
    const GraphMutation::Kind kind =
        DrawKind(config, next_hidden < hidden.size(), rng);
    GraphMutation m;
    if (kind == GraphMutation::Kind::kAddVertex) {
      m.kind = kind;
      m.u = hidden[next_hidden++];
    } else {
      m = DrawEdgeMutation(g, kind, rng);
    }
    m.apply_us =
        config.gap_us > 0.0 ? config.gap_us * static_cast<double>(i + 1) : 0.0;
    schedule.push_back(m);
  }
  return schedule;
}

MixedWorkload GenerateMixedOpenLoopWorkload(const Graph& g,
                                            const OpenLoopConfig& config,
                                            double mutation_fraction,
                                            const MutationScheduleConfig& mutation) {
  GROUTING_CHECK(mutation_fraction >= 0.0 && mutation_fraction <= 1.0);
  MixedWorkload out;
  const std::vector<Query> arrivals = GenerateOpenLoopWorkload(g, config);
  out.queries.reserve(arrivals.size());
  Rng rng(mutation.seed);
  for (const Query& q : arrivals) {
    if (rng.NextDouble() < mutation_fraction) {
      // No keep mask on the mixed stream — every node is preloaded, so a
      // vertex add would rewrite an identical blob; the write mix is edge
      // inserts/deletes over real universe edges.
      const GraphMutation::Kind kind =
          rng.NextDouble() * (mutation.weight_add_edge + mutation.weight_remove_edge) <
                  mutation.weight_add_edge
              ? GraphMutation::Kind::kAddEdge
              : GraphMutation::Kind::kRemoveEdge;
      GraphMutation m = DrawEdgeMutation(g, kind, rng);
      m.apply_us = q.arrive_us;
      out.mutations.push_back(m);
    } else {
      out.queries.push_back(q);
    }
  }
  return out;
}

}  // namespace grouting
