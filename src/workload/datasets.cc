#include "src/workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "src/graph/generators.h"
#include "src/util/check.h"

namespace grouting {

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec> kSpecs = {
      {DatasetId::kWebGraphLike, "webgraph-like", "WebGraph (uk-2007-05)", 105'896'555ULL,
       3'738'733'648ULL, "60.3 GB", 100'000, 24.0},
      {DatasetId::kFriendsterLike, "friendster-like", "Friendster", 65'608'366ULL,
       1'806'067'135ULL, "33.5 GB", 66'000, 28.0},
      {DatasetId::kMemetrackerLike, "memetracker-like", "Memetracker", 96'608'034ULL,
       418'237'269ULL, "8.2 GB", 96'000, 4.3},
      {DatasetId::kFreebaseLike, "freebase-like", "Freebase", 49'731'389ULL,
       46'708'421ULL, "1.3 GB", 50'000, 1.0},
  };
  return kSpecs;
}

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  for (const auto& spec : AllDatasets()) {
    if (spec.id == id) {
      return spec;
    }
  }
  GROUTING_CHECK_MSG(false, "unknown dataset id");
  return AllDatasets().front();
}

namespace {

// Scales a square community grid so total nodes track `scale` linearly.
size_t ScaledGridSide(size_t base_side, double scale) {
  const double side = static_cast<double>(base_side) * std::sqrt(scale);
  return std::max<size_t>(3, static_cast<size_t>(side + 0.5));
}

}  // namespace

Graph MakeDataset(DatasetId id, double scale, uint64_t seed) {
  GROUTING_CHECK(scale > 0.0);
  const DatasetSpec& spec = GetDatasetSpec(id);

  switch (id) {
    case DatasetId::kWebGraphLike: {
      // Web crawl: site communities with shared regional portal hubs.
      // High 2-hop overlap (~0.9) between nearby pages, heavy degree tail,
      // large effective diameter — the regime where smart routing shines
      // (caching very effective; paper Sections 4.2-4.7).
      LocalityWebConfig cfg;
      cfg.grid_width = cfg.grid_height = ScaledGridSide(32, scale);
      cfg.community_size = 150;
      cfg.intra_degree = 10;
      cfg.inter_degree = 1;
      cfg.hub_zone = 3;
      cfg.hubs_per_zone = 2;
      cfg.hub_link_prob = 0.9;
      return GenerateLocalityWeb(cfg, seed);
    }
    case DatasetId::kFriendsterLike: {
      // Social network: preferential attachment. Giant global hubs, huge
      // 2-hop balls, LOW overlap between nearby users' neighbourhoods —
      // caching is least effective here (paper Section 4.8, Fig 16b).
      const auto nodes = static_cast<size_t>(
          std::max(64.0, static_cast<double>(spec.base_nodes) * scale));
      return GenerateBarabasiAlbert(nodes, static_cast<size_t>(spec.avg_degree), seed);
    }
    case DatasetId::kMemetrackerLike: {
      // News/blog hyperlinks: sparse (avg degree ~4.3) with moderate
      // locality and smaller shared hubs — the "baselines gain 30%, smart
      // routing another 10%" middle ground (paper Fig 16a).
      LocalityWebConfig cfg;
      cfg.grid_width = cfg.grid_height = ScaledGridSide(36, scale);
      cfg.community_size = 75;
      cfg.intra_degree = 3;
      cfg.inter_degree = 1;
      cfg.hub_zone = 3;
      cfg.hubs_per_zone = 1;
      cfg.hub_link_prob = 0.35;
      return GenerateLocalityWeb(cfg, seed);
    }
    case DatasetId::kFreebaseLike: {
      // Knowledge graph: very sparse (avg degree ~1), labeled entities and
      // relations, tiny h-hop neighbourhoods — queries are cheap and the
      // cache matters less, but routing flexibility still pays (Fig 7c).
      LocalityWebConfig cfg;
      cfg.grid_width = cfg.grid_height = ScaledGridSide(32, scale);
      cfg.community_size = 50;
      cfg.intra_degree = 1;
      cfg.inter_degree = 1;
      cfg.hub_zone = 4;
      cfg.hubs_per_zone = 1;
      cfg.hub_link_prob = 0.10;
      cfg.labels.num_node_labels = 64;   // entity types
      cfg.labels.num_edge_labels = 256;  // relation types
      return GenerateLocalityWeb(cfg, seed);
    }
  }
  GROUTING_CHECK_MSG(false, "unknown dataset id");
  return Graph{};
}

}  // namespace grouting
