// Open-loop multi-tenant workload generator (beyond the paper; ROADMAP's
// "heavy traffic from millions of users" north star):
//
// Arrivals follow a merged Poisson process — exponential gaps at the
// aggregate rate — and each arrival is attributed to a tenant with
// probability proportional to normalised Zipf(tenant_skew) weights, so
// tenant rates are heavy-tailed (tenant 0 is the hottest). Within a tenant
// the arrival belongs to one of `sessions_per_tenant` lightweight sessions
// (a millions-sized implicit space — no per-session state is materialised),
// drawn bounded-Pareto so a few sessions dominate; the session determines
// the query node by hashing, so hot sessions re-read hot nodes.
//
// Each query carries an absolute `Query::arrive_us` timestamp. Both engines
// consume the same schedule deterministically when
// ClusterConfig::open_loop_arrivals is set: the simulator fires arrival
// events at arrive_us in virtual time, the threaded feeder paces them in
// wall time from the run's epoch. The generator itself is pure and
// deterministic in OpenLoopConfig::seed.

#ifndef GROUTING_SRC_WORKLOAD_OPEN_LOOP_H_
#define GROUTING_SRC_WORKLOAD_OPEN_LOOP_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/query/query.h"

namespace grouting {

struct OpenLoopConfig {
  uint32_t num_tenants = 4;
  size_t num_arrivals = 8192;
  // Aggregate arrival rate across all tenants, queries per second of
  // schedule time.
  double arrival_rate_qps = 50000.0;
  // Zipf exponent over per-tenant rates: tenant t's share of the aggregate
  // rate is proportional to 1/(t+1)^tenant_skew. 0 = uniform shares.
  double tenant_skew = 1.0;
  // Size of each tenant's implicit session space and the bounded-Pareto
  // exponent concentrating traffic on its low-rank sessions.
  uint64_t sessions_per_tenant = 1000000;
  double session_skew = 1.1;
  int32_t hops = 2;
  // Relative weights of the three query types (default: uniform mixture).
  double weight_aggregation = 1.0;
  double weight_random_walk = 1.0;
  double weight_reachability = 1.0;
  double restart_prob = 0.15;
  uint64_t seed = 2024;
};

// Expected per-tenant shares of the aggregate arrival rate (normalised
// Zipf(skew) weights, summing to 1). This is what quota sizing and the CI
// soak checker reason against: tenant t's offered rate is
// share[t] * arrival_rate_qps.
std::vector<double> TenantRateShares(uint32_t num_tenants, double skew);

// Generates num_arrivals queries with strictly increasing arrive_us and
// sequential ids. Deterministic in config.seed.
std::vector<Query> GenerateOpenLoopWorkload(const Graph& g,
                                            const OpenLoopConfig& config);

}  // namespace grouting

#endif  // GROUTING_SRC_WORKLOAD_OPEN_LOOP_H_
