// Synthetic stand-ins for the paper's four datasets (Table 1), scaled ~1000x
// down for this environment. Each stand-in matches the *relative* structural
// features the paper's analysis depends on, not the raw sizes:
//
//   WebGraph     105.9M nodes, 3.74B edges — strong power law, dense,
//                high hotspot-neighbourhood overlap (caching very effective)
//                -> R-MAT (a=0.57) with avg degree ~24.
//   Friendster    65.6M nodes, 1.81B edges — social, huge 2-hop
//                neighbourhoods, LOW hotspot overlap (caching less
//                effective; paper Sec 4.8) -> Barabasi-Albert, avg deg ~28.
//   Memetracker   96.6M nodes, 418M edges — sparse (avg deg 4.3), skewed
//                -> R-MAT, avg degree ~4.
//   Freebase      49.7M nodes, 46.7M edges — very sparse knowledge graph
//                (avg deg ~0.94), labeled -> R-MAT, avg degree ~1, labels.

#ifndef GROUTING_SRC_WORKLOAD_DATASETS_H_
#define GROUTING_SRC_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace grouting {

enum class DatasetId {
  kWebGraphLike,
  kFriendsterLike,
  kMemetrackerLike,
  kFreebaseLike,
};

struct DatasetSpec {
  DatasetId id;
  std::string name;        // e.g. "webgraph-like"
  std::string paper_name;  // e.g. "WebGraph (uk-2007-05)"
  // Paper's Table 1 values (for side-by-side reporting).
  uint64_t paper_nodes;
  uint64_t paper_edges;
  const char* paper_size_on_disk;
  // Stand-in base size at scale = 1.0.
  size_t base_nodes;
  double avg_degree;
};

const std::vector<DatasetSpec>& AllDatasets();
const DatasetSpec& GetDatasetSpec(DatasetId id);

// Builds the stand-in graph. `scale` multiplies the node count (tests use
// ~0.1, benches 1.0). Deterministic in (id, scale, seed).
Graph MakeDataset(DatasetId id, double scale = 1.0, uint64_t seed = 4242);

}  // namespace grouting

#endif  // GROUTING_SRC_WORKLOAD_DATASETS_H_
