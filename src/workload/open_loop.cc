#include "src/workload/open_loop.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

QueryType DrawOpenLoopType(const OpenLoopConfig& config, Rng& rng) {
  const double total = config.weight_aggregation + config.weight_random_walk +
                       config.weight_reachability;
  GROUTING_CHECK(total > 0.0);
  const double r = rng.NextDouble() * total;
  if (r < config.weight_aggregation) {
    return QueryType::kNeighborAggregation;
  }
  if (r < config.weight_aggregation + config.weight_random_walk) {
    return QueryType::kRandomWalk;
  }
  return QueryType::kReachability;
}

// Bounded-Pareto session rank: P(rank >= k) ~ (k+1)^-skew, clamped to the
// tenant's session space. Rank 0 is the tenant's hottest session.
uint64_t DrawSessionRank(uint64_t sessions, double skew, Rng& rng) {
  if (sessions <= 1 || skew <= 0.0) {
    return sessions <= 1 ? 0 : rng.NextBounded(sessions);
  }
  double u = rng.NextDouble();
  if (u < 1e-12) {
    u = 1e-12;
  }
  const double rank = std::pow(u, -1.0 / skew) - 1.0;
  if (rank >= static_cast<double>(sessions - 1)) {
    return sessions - 1;
  }
  return static_cast<uint64_t>(rank);
}

// Stable (tenant, session) -> query node mapping: hot sessions re-read the
// same node for the whole run, which is what makes per-tenant heat real to
// the cache/placement layers below.
NodeId SessionNode(uint32_t tenant, uint64_t session, uint64_t seed,
                   uint64_t num_nodes) {
  SplitMix64 h(seed ^ (static_cast<uint64_t>(tenant) * 0x9e3779b97f4a7c15ULL) ^
               (session * 0xbf58476d1ce4e5b9ULL));
  return static_cast<NodeId>(h.Next() % num_nodes);
}

}  // namespace

std::vector<double> TenantRateShares(uint32_t num_tenants, double skew) {
  GROUTING_CHECK(num_tenants > 0);
  std::vector<double> shares(num_tenants);
  double total = 0.0;
  for (uint32_t t = 0; t < num_tenants; ++t) {
    shares[t] = 1.0 / std::pow(static_cast<double>(t + 1), skew);
    total += shares[t];
  }
  for (auto& s : shares) {
    s /= total;
  }
  return shares;
}

std::vector<Query> GenerateOpenLoopWorkload(const Graph& g,
                                            const OpenLoopConfig& config) {
  GROUTING_CHECK(g.num_nodes() > 0);
  GROUTING_CHECK(config.num_tenants > 0);
  GROUTING_CHECK(config.arrival_rate_qps > 0.0);
  GROUTING_CHECK(config.sessions_per_tenant > 0);

  const auto shares = TenantRateShares(config.num_tenants, config.tenant_skew);
  std::vector<double> cdf(shares.size());
  double acc = 0.0;
  for (size_t t = 0; t < shares.size(); ++t) {
    acc += shares[t];
    cdf[t] = acc;
  }
  cdf.back() = 1.0;

  Rng rng(config.seed ^ 0x0be7a10adULL);
  std::vector<Query> queries;
  queries.reserve(config.num_arrivals);
  double now_us = 0.0;
  for (size_t i = 0; i < config.num_arrivals; ++i) {
    // Exponential inter-arrival gap of the merged process; the tiny floor
    // keeps timestamps strictly increasing.
    double u = rng.NextDouble();
    if (u > 1.0 - 1e-12) {
      u = 1.0 - 1e-12;
    }
    const double gap_us =
        std::max(1e-6, -std::log(1.0 - u) / config.arrival_rate_qps * 1e6);
    now_us += gap_us;

    const double pick = rng.NextDouble();
    const uint32_t tenant = static_cast<uint32_t>(
        std::lower_bound(cdf.begin(), cdf.end(), pick) - cdf.begin());

    const uint64_t session =
        DrawSessionRank(config.sessions_per_tenant, config.session_skew, rng);

    Query q;
    q.type = DrawOpenLoopType(config, rng);
    q.node = SessionNode(tenant, session, config.seed, g.num_nodes());
    q.hops = config.hops;
    q.restart_prob = config.restart_prob;
    q.seed = rng.Next();
    q.id = i;
    q.tenant = tenant;
    q.arrive_us = now_us;
    if (q.type == QueryType::kReachability) {
      // Uniform targets (no neighbourhood bias): reachability cost stays
      // independent of session heat, and generation stays O(1) per arrival
      // so millions-session schedules are cheap to produce.
      q.target = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    }
    queries.push_back(q);
  }
  return queries;
}

}  // namespace grouting
