// Hotspot query workload generator (paper Section 4.1):
//
//   "we select 100 nodes from the graph uniformly at random. Then, for each
//    of these nodes, we select 10 different query nodes which are at most
//    r-hops away ... every 10 of them are from one hotspot region ... all
//    queries from the same hotspot are grouped together and sent
//    consecutively."
//
// Query types are drawn as a uniform mixture of the three h-hop queries.

#ifndef GROUTING_SRC_WORKLOAD_WORKLOAD_H_
#define GROUTING_SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/query/query.h"

namespace grouting {

struct WorkloadConfig {
  size_t num_hotspots = 100;
  size_t queries_per_hotspot = 10;
  int32_t hotspot_radius = 2;  // r
  int32_t hops = 2;            // h
  // Relative weights of the three query types (default: uniform mixture).
  double weight_aggregation = 1.0;
  double weight_random_walk = 1.0;
  double weight_reachability = 1.0;
  double restart_prob = 0.15;
  uint64_t seed = 2024;
};

// Generates num_hotspots * queries_per_hotspot queries, hotspot-grouped.
std::vector<Query> GenerateHotspotWorkload(const Graph& g, const WorkloadConfig& config);

// Uniform-random query nodes (no hotspot structure) — used by ablations.
std::vector<Query> GenerateUniformWorkload(const Graph& g, size_t count,
                                           const WorkloadConfig& config);

}  // namespace grouting

#endif  // GROUTING_SRC_WORKLOAD_WORKLOAD_H_
