// Hotspot query workload generator (paper Section 4.1):
//
//   "we select 100 nodes from the graph uniformly at random. Then, for each
//    of these nodes, we select 10 different query nodes which are at most
//    r-hops away ... every 10 of them are from one hotspot region ... all
//    queries from the same hotspot are grouped together and sent
//    consecutively."
//
// Query types are drawn as a uniform mixture of the three h-hop queries.

#ifndef GROUTING_SRC_WORKLOAD_WORKLOAD_H_
#define GROUTING_SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/query/query.h"

namespace grouting {

struct WorkloadConfig {
  size_t num_hotspots = 100;
  size_t queries_per_hotspot = 10;
  int32_t hotspot_radius = 2;  // r
  int32_t hops = 2;            // h
  // Relative weights of the three query types (default: uniform mixture).
  double weight_aggregation = 1.0;
  double weight_random_walk = 1.0;
  double weight_reachability = 1.0;
  double restart_prob = 0.15;
  uint64_t seed = 2024;
};

// Generates num_hotspots * queries_per_hotspot queries, hotspot-grouped.
std::vector<Query> GenerateHotspotWorkload(const Graph& g, const WorkloadConfig& config);

// Uniform-random query nodes (no hotspot structure) — used by ablations.
std::vector<Query> GenerateUniformWorkload(const Graph& g, size_t count,
                                           const WorkloadConfig& config);

// Skewed session stream (beyond the paper): num_sessions session keys, each
// a fixed query node, with per-query session choice drawn Zipf(zipf_s) —
// session rank i gets weight 1/(i+1)^s. zipf_s = 0 degenerates to a uniform
// session mix; larger s concentrates the stream on a few hot sessions. This
// is the arrival pattern that breaks static splitters (a sticky/hash split
// keeps feeding a hot session's shard) and that adaptive re-splitting is
// measured against. Query ids are sequential; deterministic in config.seed.
struct SkewedWorkloadConfig {
  size_t num_sessions = 64;
  size_t num_queries = 2048;
  double zipf_s = 1.0;
  int32_t hops = 2;
  double weight_aggregation = 1.0;
  double weight_random_walk = 1.0;
  double weight_reachability = 1.0;
  double restart_prob = 0.15;
  uint64_t seed = 2024;
};

std::vector<Query> GenerateSkewedSessionWorkload(const Graph& g,
                                                 const SkewedWorkloadConfig& config);

}  // namespace grouting

#endif  // GROUTING_SRC_WORKLOAD_WORKLOAD_H_
