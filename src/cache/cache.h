// Byte-bounded node cache for query processors.
//
// The paper uses LRU ("usually implemented as the default cache replacement
// policy, and it favors recent queries — thus it performs well with our smart
// routing schemes"). We implement LRU plus FIFO / LFU / CLOCK alternatives
// for the cache-policy ablation bench, behind one eviction-strategy seam.
//
// Capacity is measured in BYTES (each entry is charged its serialised
// adjacency size), matching the paper's "4 GB cache per processor" framing.

#ifndef GROUTING_SRC_CACHE_CACHE_H_
#define GROUTING_SRC_CACHE_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/check.h"

namespace grouting {

enum class CachePolicy {
  kLru,
  kFifo,
  kLfu,
  kClock,
};

std::string CachePolicyName(CachePolicy policy);

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;  // entries larger than the whole cache
  uint64_t bytes_evicted = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// Single-owner (per-processor) cache mapping NodeId -> V.
// V must be cheaply copyable (we store shared_ptr-like handles).
template <typename V>
class NodeCache {
 public:
  explicit NodeCache(uint64_t capacity_bytes, CachePolicy policy = CachePolicy::kLru)
      : capacity_bytes_(capacity_bytes), policy_(policy) {}

  // Looks up a node, updating recency/frequency state and hit/miss counters.
  std::optional<V> Get(NodeId key);

  // Probe without touching stats or policy state (for tests / introspection).
  bool Contains(NodeId key) const { return map_.count(key) > 0; }

  // Inserts (or overwrites) an entry charged `bytes`, evicting per policy
  // until the entry fits. Oversized entries are rejected, not cached.
  void Put(NodeId key, V value, uint64_t bytes);

  void Erase(NodeId key);
  void Clear();

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t size_bytes() const { return size_bytes_; }
  size_t entry_count() const { return map_.size(); }
  CachePolicy policy() const { return policy_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Entry {
    NodeId key;
    V value;
    uint64_t bytes;
    uint64_t freq = 1;       // LFU
    uint64_t seq = 0;        // LFU tie-break: monotonic insertion order
    bool referenced = true;  // CLOCK
  };
  using EntryList = std::list<Entry>;
  // LFU victim index, ordered by (frequency, insertion seq, key): begin() is
  // the least-frequently-used entry, oldest-inserted first — the same victim
  // the historical O(n) full-list scan picked, found in O(log n).
  using LfuIndex = std::set<std::tuple<uint64_t, uint64_t, NodeId>>;

  void EvictOne();

  // LFU bookkeeping around a frequency bump (no-op for other policies).
  void BumpFreq(Entry& entry) {
    if (policy_ == CachePolicy::kLfu) {
      lfu_index_.erase({entry.freq, entry.seq, entry.key});
      lfu_index_.insert({entry.freq + 1, entry.seq, entry.key});
    }
    entry.freq += 1;
  }

  uint64_t capacity_bytes_;
  CachePolicy policy_;
  uint64_t size_bytes_ = 0;
  CacheStats stats_;
  // entries_ order semantics: front = next eviction candidate region.
  //   LRU  : most-recent at back; evict front.
  //   FIFO : insertion order; evict front.
  //   LFU  : insertion order; eviction via lfu_index_.
  //   CLOCK: circular scan with hand_ and reference bits.
  EntryList entries_;
  std::unordered_map<NodeId, typename EntryList::iterator> map_;
  typename EntryList::iterator hand_ = entries_.end();  // CLOCK hand
  LfuIndex lfu_index_;
  uint64_t next_seq_ = 0;
};

// ---- implementation ----

template <typename V>
std::optional<V> NodeCache<V>::Get(NodeId key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  auto entry_it = it->second;
  BumpFreq(*entry_it);
  entry_it->referenced = true;
  if (policy_ == CachePolicy::kLru) {
    entries_.splice(entries_.end(), entries_, entry_it);  // move to back (MRU)
  }
  return entry_it->value;
}

template <typename V>
void NodeCache<V>::Put(NodeId key, V value, uint64_t bytes) {
  if (bytes > capacity_bytes_) {
    ++stats_.rejected;
    Erase(key);
    return;
  }
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Overwrite in place, adjusting the byte charge. An overwrite is a use:
    // refresh recency/frequency state like a hit would.
    size_bytes_ -= it->second->bytes;
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    it->second->referenced = true;
    BumpFreq(*it->second);
    size_bytes_ += bytes;
    if (policy_ == CachePolicy::kLru) {
      entries_.splice(entries_.end(), entries_, it->second);
    }
  } else {
    entries_.push_back(Entry{key, std::move(value), bytes});
    entries_.back().seq = next_seq_++;
    map_[key] = std::prev(entries_.end());
    if (policy_ == CachePolicy::kLfu) {
      lfu_index_.insert({entries_.back().freq, entries_.back().seq, key});
    }
    size_bytes_ += bytes;
    ++stats_.inserts;
  }
  while (size_bytes_ > capacity_bytes_) {
    EvictOne();
  }
}

template <typename V>
void NodeCache<V>::EvictOne() {
  GROUTING_CHECK(!entries_.empty());
  typename EntryList::iterator victim;
  switch (policy_) {
    case CachePolicy::kLru:
    case CachePolicy::kFifo:
      victim = entries_.begin();
      break;
    case CachePolicy::kLfu: {
      GROUTING_CHECK(!lfu_index_.empty());
      victim = map_.at(std::get<2>(*lfu_index_.begin()));
      break;
    }
    case CachePolicy::kClock: {
      if (hand_ == entries_.end()) {
        hand_ = entries_.begin();
      }
      // Sweep, clearing reference bits, until an unreferenced entry appears.
      while (hand_->referenced) {
        hand_->referenced = false;
        ++hand_;
        if (hand_ == entries_.end()) {
          hand_ = entries_.begin();
        }
      }
      victim = hand_;
      ++hand_;
      if (hand_ == entries_.end() && entries_.size() > 1) {
        hand_ = entries_.begin();
      }
      break;
    }
  }
  size_bytes_ -= victim->bytes;
  stats_.bytes_evicted += victim->bytes;
  ++stats_.evictions;
  if (policy_ == CachePolicy::kLfu) {
    lfu_index_.erase({victim->freq, victim->seq, victim->key});
  }
  map_.erase(victim->key);
  if (hand_ == victim) {
    hand_ = entries_.end();
  }
  entries_.erase(victim);
}

template <typename V>
void NodeCache<V>::Erase(NodeId key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return;
  }
  if (hand_ == it->second) {
    hand_ = entries_.end();
  }
  if (policy_ == CachePolicy::kLfu) {
    lfu_index_.erase({it->second->freq, it->second->seq, key});
  }
  size_bytes_ -= it->second->bytes;
  entries_.erase(it->second);
  map_.erase(it);
}

template <typename V>
void NodeCache<V>::Clear() {
  entries_.clear();
  map_.clear();
  lfu_index_.clear();
  size_bytes_ = 0;
  hand_ = entries_.end();
}

}  // namespace grouting

#endif  // GROUTING_SRC_CACHE_CACHE_H_
