#include "src/cache/cache.h"

namespace grouting {

std::string CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kFifo:
      return "fifo";
    case CachePolicy::kLfu:
      return "lfu";
    case CachePolicy::kClock:
      return "clock";
  }
  return "unknown";
}

}  // namespace grouting
