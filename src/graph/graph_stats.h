// Structural statistics used to characterise datasets (paper Table 1 and the
// per-dataset discussion of neighbourhood sizes in Sections 4.2 / 4.8).

#ifndef GROUTING_SRC_GRAPH_GRAPH_STATS_H_
#define GROUTING_SRC_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace grouting {

struct DegreeStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  double avg_out_degree = 0.0;
  size_t max_out_degree = 0;
  size_t max_total_degree = 0;  // out + in
  // Fraction of total degree owned by the top 1% highest-degree nodes; a
  // cheap skew indicator (≈0.01 for uniform graphs, ≫0.1 for power laws).
  double top1pct_degree_share = 0.0;
};

DegreeStats ComputeDegreeStats(const Graph& g);

// Average |N_h(u)| over `samples` uniformly random source nodes. The paper
// quotes this per dataset (e.g. "average 2-hop neighbourhood size 52K for
// WebGraph, 0.3M for Friendster").
double AverageKHopNeighborhoodSize(const Graph& g, int32_t h, size_t samples, Rng& rng);

// Mean Jaccard overlap of h-hop neighbourhoods between random node pairs at
// hop distance <= r (the paper's "overlap across 2-hop neighbourhoods for
// queries from the same hotspot"). Returns 0 when no valid pair is found.
double HotspotNeighborhoodOverlap(const Graph& g, int32_t h, int32_t r, size_t samples,
                                  Rng& rng);

}  // namespace grouting

#endif  // GROUTING_SRC_GRAPH_GRAPH_STATS_H_
