#include "src/graph/traversal.h"

#include <deque>

namespace grouting {
namespace {

// Visits the (possibly bi-directed, possibly filtered) neighbours of u.
template <typename Fn>
void ForEachNeighbor(const Graph& g, NodeId u, bool bidirected,
                     const std::vector<uint8_t>* allowed, Fn&& fn) {
  for (const Edge& e : g.OutNeighbors(u)) {
    if (allowed == nullptr || (*allowed)[e.dst]) {
      fn(e.dst);
    }
  }
  if (bidirected) {
    for (const Edge& e : g.InNeighbors(u)) {
      if (allowed == nullptr || (*allowed)[e.dst]) {
        fn(e.dst);
      }
    }
  }
}

}  // namespace

std::vector<int32_t> BfsDistances(const Graph& g, NodeId source, const BfsOptions& opts) {
  GROUTING_CHECK(source < g.num_nodes());
  if (opts.allowed != nullptr) {
    GROUTING_CHECK(opts.allowed->size() == g.num_nodes());
    GROUTING_CHECK((*opts.allowed)[source]);
  }
  std::vector<int32_t> dist(g.num_nodes(), kUnreachable);
  dist[source] = 0;
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const int32_t du = dist[u];
    if (opts.max_depth >= 0 && du >= opts.max_depth) {
      continue;
    }
    ForEachNeighbor(g, u, opts.bidirected, opts.allowed, [&](NodeId v) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        frontier.push_back(v);
      }
    });
  }
  return dist;
}

std::vector<NodeId> KHopNeighborhood(const Graph& g, NodeId source, int32_t h,
                                     bool bidirected) {
  GROUTING_CHECK(source < g.num_nodes());
  std::vector<NodeId> result;
  if (h <= 0) {
    return result;
  }
  // Visited bitmap sized lazily via hash set would be slower; the graphs here
  // are small enough that a byte map is the right trade.
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  visited[source] = 1;
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  for (int32_t depth = 0; depth < h && !frontier.empty(); ++depth) {
    next.clear();
    for (NodeId u : frontier) {
      ForEachNeighbor(g, u, bidirected, nullptr, [&](NodeId v) {
        if (!visited[v]) {
          visited[v] = 1;
          next.push_back(v);
          result.push_back(v);
        }
      });
    }
    frontier.swap(next);
  }
  return result;
}

int32_t HopDistance(const Graph& g, NodeId from, NodeId to, int32_t max_depth,
                    bool bidirected) {
  GROUTING_CHECK(from < g.num_nodes() && to < g.num_nodes());
  if (from == to) {
    return 0;
  }
  BfsOptions opts;
  opts.bidirected = bidirected;
  opts.max_depth = max_depth;
  // Plain BFS with early exit on target discovery.
  std::vector<int32_t> dist(g.num_nodes(), kUnreachable);
  dist[from] = 0;
  std::deque<NodeId> frontier{from};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const int32_t du = dist[u];
    if (max_depth >= 0 && du >= max_depth) {
      continue;
    }
    int32_t found = kUnreachable;
    ForEachNeighbor(g, u, bidirected, nullptr, [&](NodeId v) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        if (v == to) {
          found = du + 1;
        }
        frontier.push_back(v);
      }
    });
    if (found != kUnreachable) {
      return found;
    }
  }
  return kUnreachable;
}

}  // namespace grouting
