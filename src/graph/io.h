// Graph (de)serialisation: a human-readable edge-list text format and a
// compact binary snapshot format for fast reload of generated datasets.

#ifndef GROUTING_SRC_GRAPH_IO_H_
#define GROUTING_SRC_GRAPH_IO_H_

#include <optional>
#include <string>

#include "src/graph/graph.h"

namespace grouting {

// Text format, one edge per line: "<src> <dst> <edge_label>", preceded by a
// header line "# grouting-edgelist <num_nodes>" and one "L <node> <label>"
// line per labeled node. Returns false on I/O failure.
bool WriteEdgeListText(const Graph& g, const std::string& path);

// Parses the format above. Unlabeled plain "<src> <dst>" lines are accepted
// too (label 0). Returns nullopt on parse or I/O failure.
std::optional<Graph> ReadEdgeListText(const std::string& path);

// Binary snapshot (magic + counts + raw CSR arrays). Not portable across
// endianness; intended for local caching only.
bool WriteBinary(const Graph& g, const std::string& path);
std::optional<Graph> ReadBinary(const std::string& path);

}  // namespace grouting

#endif  // GROUTING_SRC_GRAPH_IO_H_
