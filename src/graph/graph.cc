#include "src/graph/graph.h"

#include <algorithm>
#include <numeric>

namespace grouting {
namespace {

// Number of base-10 digits in v, for adjacency-list file size accounting.
uint64_t DigitCount(uint64_t v) {
  uint64_t digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

// Builds a CSR (offsets, edges) from (src, edge) pairs via counting sort.
// Neighbours of each node end up sorted by dst (then label) for determinism.
void BuildCsr(size_t n, const std::vector<NodeId>& srcs, const std::vector<Edge>& dsts,
              bool dedupe, std::vector<uint32_t>* offsets, std::vector<Edge>* edges) {
  offsets->assign(n + 1, 0);
  for (NodeId s : srcs) {
    (*offsets)[s + 1] += 1;
  }
  std::partial_sum(offsets->begin(), offsets->end(), offsets->begin());
  edges->resize(srcs.size());
  std::vector<uint32_t> cursor(offsets->begin(), offsets->end() - 1);
  for (size_t i = 0; i < srcs.size(); ++i) {
    (*edges)[cursor[srcs[i]]++] = dsts[i];
  }
  // Sort each adjacency run and optionally dedupe parallel edges.
  size_t write = 0;
  size_t read_base = 0;
  for (size_t u = 0; u < n; ++u) {
    const size_t begin = read_base;
    const size_t end = (*offsets)[u + 1];
    read_base = end;
    auto first = edges->begin() + static_cast<ptrdiff_t>(begin);
    auto last = edges->begin() + static_cast<ptrdiff_t>(end);
    std::sort(first, last, [](const Edge& a, const Edge& b) {
      return a.dst != b.dst ? a.dst < b.dst : a.label < b.label;
    });
    const size_t run_start = write;
    for (size_t i = begin; i < end; ++i) {
      const Edge& e = (*edges)[i];
      if (dedupe && write > run_start && (*edges)[write - 1].dst == e.dst) {
        continue;  // parallel edge; keep first label
      }
      (*edges)[write++] = e;
    }
    (*offsets)[u + 1] = static_cast<uint32_t>(write);
  }
  edges->resize(write);
}

}  // namespace

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v,
                             [](const Edge& e, NodeId target) { return e.dst < target; });
  return it != nbrs.end() && it->dst == v;
}

uint64_t Graph::TotalAdjacencyBytes() const {
  uint64_t total = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    total += AdjacencyBytes(u);
  }
  return total;
}

uint64_t Graph::AdjacencyListFileBytes() const {
  // Format per node: "<id> <out...> | <in...>\n" with space separators.
  uint64_t total = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    total += DigitCount(u) + 3;  // id, " | ", newline share
    for (const Edge& e : OutNeighbors(u)) {
      total += DigitCount(e.dst) + 1;
    }
    for (const Edge& e : InNeighbors(u)) {
      total += DigitCount(e.dst) + 1;
    }
  }
  return total;
}

uint64_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(uint32_t) + out_edges_.size() * sizeof(Edge) +
         in_offsets_.size() * sizeof(uint32_t) + in_edges_.size() * sizeof(Edge) +
         node_labels_.size() * sizeof(Label);
}

NodeId GraphBuilder::AddNode(NodeId u, Label label) {
  EnsureNode(u);
  node_labels_[u] = label;
  return u;
}

NodeId GraphBuilder::AddNode(Label label) {
  node_labels_.push_back(label);
  return static_cast<NodeId>(node_labels_.size() - 1);
}

void GraphBuilder::AddEdge(NodeId src, NodeId dst, Label label) {
  EnsureNode(std::max(src, dst));
  srcs_.push_back(src);
  dsts_.push_back(Edge{dst, label});
}

void GraphBuilder::SetNodeLabel(NodeId u, Label label) {
  EnsureNode(u);
  node_labels_[u] = label;
}

void GraphBuilder::EnsureNode(NodeId u) {
  if (u >= node_labels_.size()) {
    node_labels_.resize(u + 1, kNoLabel);
  }
}

Graph GraphBuilder::Build() {
  Graph g;
  const size_t n = node_labels_.size();
  g.node_labels_ = std::move(node_labels_);
  BuildCsr(n, srcs_, dsts_, !keep_parallel_edges_, &g.out_offsets_, &g.out_edges_);

  // Reverse edges for the in-CSR. The in-edge label is the label of the
  // original edge (the paper's "inverse relationship", e.g. founded_by).
  std::vector<NodeId> rev_srcs;
  std::vector<Edge> rev_dsts;
  rev_srcs.reserve(g.out_edges_.size());
  rev_dsts.reserve(g.out_edges_.size());
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : g.OutNeighbors(u)) {
      rev_srcs.push_back(e.dst);
      rev_dsts.push_back(Edge{u, e.label});
    }
  }
  // The out-CSR already deduped; reverse pairs are therefore unique.
  BuildCsr(n, rev_srcs, rev_dsts, /*dedupe=*/false, &g.in_offsets_, &g.in_edges_);

  srcs_.clear();
  dsts_.clear();
  node_labels_.clear();
  return g;
}

Graph InducedSubgraph(const Graph& g, const std::vector<uint8_t>& keep) {
  GROUTING_CHECK(keep.size() == g.num_nodes());
  GraphBuilder builder(g.num_nodes());
  if (g.num_nodes() > 0) {
    builder.AddNode(static_cast<NodeId>(g.num_nodes() - 1));  // preserve node-id space
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    builder.SetNodeLabel(u, g.node_label(u));
    if (!keep[u]) {
      continue;
    }
    for (const Edge& e : g.OutNeighbors(u)) {
      if (keep[e.dst]) {
        builder.AddEdge(u, e.dst, e.label);
      }
    }
  }
  return builder.Build();
}

}  // namespace grouting
