#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace grouting {
namespace {

void AssignLabels(GraphBuilder& builder, const LabelConfig& cfg, Rng& rng, size_t n) {
  if (cfg.num_node_labels == 0) {
    return;
  }
  for (NodeId u = 0; u < n; ++u) {
    builder.SetNodeLabel(u, static_cast<Label>(1 + rng.NextBounded(cfg.num_node_labels)));
  }
}

Label RandomEdgeLabel(const LabelConfig& cfg, Rng& rng) {
  if (cfg.num_edge_labels == 0) {
    return kNoLabel;
  }
  return static_cast<Label>(1 + rng.NextBounded(cfg.num_edge_labels));
}

}  // namespace

Graph GenerateErdosRenyi(size_t num_nodes, size_t num_edges, uint64_t seed,
                         LabelConfig labels) {
  GROUTING_CHECK(num_nodes > 0);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.AddNode(static_cast<NodeId>(num_nodes - 1));
  for (size_t i = 0; i < num_edges; ++i) {
    const auto u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    auto v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) {
      v = static_cast<NodeId>((v + 1) % num_nodes);
    }
    builder.AddEdge(u, v, RandomEdgeLabel(labels, rng));
  }
  AssignLabels(builder, labels, rng, num_nodes);
  return builder.Build();
}

Graph GenerateBarabasiAlbert(size_t num_nodes, size_t edges_per_node, uint64_t seed,
                             LabelConfig labels) {
  GROUTING_CHECK(num_nodes > 0);
  GROUTING_CHECK(edges_per_node > 0);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.AddNode(static_cast<NodeId>(num_nodes - 1));

  // Endpoint multiset for preferential attachment: sampling a uniform element
  // of `endpoints` is sampling proportional to degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * num_nodes * edges_per_node);

  const size_t seed_nodes = std::min(num_nodes, edges_per_node + 1);
  for (NodeId u = 1; u < seed_nodes; ++u) {
    builder.AddEdge(u, u - 1, RandomEdgeLabel(labels, rng));
    endpoints.push_back(u);
    endpoints.push_back(u - 1);
  }
  for (NodeId u = static_cast<NodeId>(seed_nodes); u < num_nodes; ++u) {
    for (size_t k = 0; k < edges_per_node; ++k) {
      const NodeId target = endpoints[rng.NextBounded(endpoints.size())];
      if (target == u) {
        continue;
      }
      builder.AddEdge(u, target, RandomEdgeLabel(labels, rng));
      endpoints.push_back(u);
      endpoints.push_back(target);
    }
  }
  AssignLabels(builder, labels, rng, num_nodes);
  return builder.Build();
}

Graph GenerateRMat(size_t num_nodes, size_t num_edges, double a, double b, double c,
                   uint64_t seed, LabelConfig labels) {
  GROUTING_CHECK(num_nodes > 0);
  GROUTING_CHECK(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0 + 1e-9);
  Rng rng(seed);

  int levels = 0;
  size_t scale = 1;
  while (scale < num_nodes) {
    scale <<= 1;
    ++levels;
  }

  GraphBuilder builder(num_nodes);
  builder.AddNode(static_cast<NodeId>(num_nodes - 1));
  // Mild per-level probability noise, as in the original R-MAT paper, to
  // avoid artefactual grid patterns.
  for (size_t i = 0; i < num_edges; ++i) {
    size_t row = 0;
    size_t col = 0;
    for (int level = 0; level < levels; ++level) {
      const double noise = 0.9 + 0.2 * rng.NextDouble();
      const double aa = a * noise;
      const double bb = b * noise;
      const double cc = c * noise;
      const double norm = aa + bb + cc + (1.0 - a - b - c) * noise;
      const double r = rng.NextDouble() * norm;
      const size_t half = scale >> (level + 1);
      if (r < aa) {
        // top-left quadrant
      } else if (r < aa + bb) {
        col += half;
      } else if (r < aa + bb + cc) {
        row += half;
      } else {
        row += half;
        col += half;
      }
    }
    const auto u = static_cast<NodeId>(row % num_nodes);
    const auto v = static_cast<NodeId>(col % num_nodes);
    if (u == v) {
      continue;
    }
    builder.AddEdge(u, v, RandomEdgeLabel(labels, rng));
  }
  AssignLabels(builder, labels, rng, num_nodes);
  return builder.Build();
}

Graph GenerateGrid(size_t rows, size_t cols, LabelConfig labels, uint64_t seed) {
  GROUTING_CHECK(rows > 0 && cols > 0);
  Rng rng(seed);
  const size_t n = rows * cols;
  GraphBuilder builder(n);
  builder.AddNode(static_cast<NodeId>(n - 1));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t col = 0; col < cols; ++col) {
      const auto u = static_cast<NodeId>(r * cols + col);
      if (col + 1 < cols) {
        builder.AddEdge(u, u + 1, RandomEdgeLabel(labels, rng));
      }
      if (r + 1 < rows) {
        builder.AddEdge(u, static_cast<NodeId>(u + cols), RandomEdgeLabel(labels, rng));
      }
    }
  }
  AssignLabels(builder, labels, rng, n);
  return builder.Build();
}

Graph GenerateCommunityGraph(size_t num_communities, size_t community_size,
                             size_t intra_degree, size_t inter_degree, uint64_t seed,
                             LabelConfig labels) {
  GROUTING_CHECK(num_communities > 0 && community_size > 1);
  Rng rng(seed);
  const size_t n = num_communities * community_size;
  GraphBuilder builder(n);
  builder.AddNode(static_cast<NodeId>(n - 1));
  for (size_t comm = 0; comm < num_communities; ++comm) {
    const size_t base = comm * community_size;
    for (size_t i = 0; i < community_size; ++i) {
      const auto u = static_cast<NodeId>(base + i);
      for (size_t k = 0; k < intra_degree; ++k) {
        auto v = static_cast<NodeId>(base + rng.NextBounded(community_size));
        if (v == u) {
          v = static_cast<NodeId>(base + (i + 1) % community_size);
        }
        builder.AddEdge(u, v, RandomEdgeLabel(labels, rng));
      }
      for (size_t k = 0; k < inter_degree; ++k) {
        const auto v = static_cast<NodeId>(rng.NextBounded(n));
        if (v != u) {
          builder.AddEdge(u, v, RandomEdgeLabel(labels, rng));
        }
      }
    }
  }
  AssignLabels(builder, labels, rng, n);
  return builder.Build();
}

Graph GenerateLocalityWeb(const LocalityWebConfig& config, uint64_t seed) {
  GROUTING_CHECK(config.grid_width > 0 && config.grid_height > 0);
  GROUTING_CHECK(config.community_size > 1);
  Rng rng(seed);
  const size_t communities = config.grid_width * config.grid_height;
  const size_t n = communities * config.community_size;
  GraphBuilder builder(n);
  builder.AddNode(static_cast<NodeId>(n - 1));

  auto node_in = [&](size_t community) {
    return static_cast<NodeId>(community * config.community_size +
                               rng.NextBounded(config.community_size));
  };
  auto community_at = [&](size_t gx, size_t gy) { return gy * config.grid_width + gx; };

  for (size_t gy = 0; gy < config.grid_height; ++gy) {
    for (size_t gx = 0; gx < config.grid_width; ++gx) {
      const size_t comm = community_at(gx, gy);
      const size_t base = comm * config.community_size;
      for (size_t i = 0; i < config.community_size; ++i) {
        const auto u = static_cast<NodeId>(base + i);
        for (size_t k = 0; k < config.intra_degree; ++k) {
          auto v = node_in(comm);
          if (v == u) {
            v = static_cast<NodeId>(base + (i + 1) % config.community_size);
          }
          builder.AddEdge(u, v, RandomEdgeLabel(config.labels, rng));
        }
        for (size_t k = 0; k < config.inter_degree; ++k) {
          // Uniform neighbour community (4-neighbourhood, clamped at edges).
          size_t tx = gx;
          size_t ty = gy;
          switch (rng.NextBounded(4)) {
            case 0:
              tx = gx + 1 < config.grid_width ? gx + 1 : gx;
              break;
            case 1:
              tx = gx > 0 ? gx - 1 : gx;
              break;
            case 2:
              ty = gy + 1 < config.grid_height ? gy + 1 : gy;
              break;
            default:
              ty = gy > 0 ? gy - 1 : gy;
              break;
          }
          builder.AddEdge(u, node_in(community_at(tx, ty)),
                          RandomEdgeLabel(config.labels, rng));
        }
      }
    }
  }

  // Regional shared hubs: all nodes of a hub zone attach to the zone's
  // designated hubs. This produces a heavy degree tail without collapsing
  // the graph diameter, and — crucially — makes the hub-dominated part of
  // nearby nodes' neighbourhoods IDENTICAL, reproducing the high h-hop
  // overlap of real web graphs.
  if (config.hub_zone > 0 && config.hubs_per_zone > 0 && config.hub_link_prob > 0.0) {
    const size_t zones_x = (config.grid_width + config.hub_zone - 1) / config.hub_zone;
    const size_t zones_y = (config.grid_height + config.hub_zone - 1) / config.hub_zone;
    std::vector<std::vector<NodeId>> zone_hubs(zones_x * zones_y);
    for (size_t zy = 0; zy < zones_y; ++zy) {
      for (size_t zx = 0; zx < zones_x; ++zx) {
        auto& hubs = zone_hubs[zy * zones_x + zx];
        for (size_t h = 0; h < config.hubs_per_zone; ++h) {
          // A hub is a random node of a random community inside the zone.
          const size_t gx =
              std::min(zx * config.hub_zone + rng.NextBounded(config.hub_zone),
                       config.grid_width - 1);
          const size_t gy =
              std::min(zy * config.hub_zone + rng.NextBounded(config.hub_zone),
                       config.grid_height - 1);
          hubs.push_back(node_in(community_at(gx, gy)));
        }
      }
    }
    for (size_t gy = 0; gy < config.grid_height; ++gy) {
      for (size_t gx = 0; gx < config.grid_width; ++gx) {
        const auto& hubs =
            zone_hubs[(gy / config.hub_zone) * zones_x + gx / config.hub_zone];
        const size_t base = community_at(gx, gy) * config.community_size;
        for (size_t i = 0; i < config.community_size; ++i) {
          const auto u = static_cast<NodeId>(base + i);
          for (NodeId hub : hubs) {
            if (hub != u && rng.NextBool(config.hub_link_prob)) {
              // Pages link portals; portals link back half the time.
              builder.AddEdge(u, hub, RandomEdgeLabel(config.labels, rng));
              if (rng.NextBool(0.5)) {
                builder.AddEdge(hub, u, RandomEdgeLabel(config.labels, rng));
              }
            }
          }
        }
      }
    }
  }
  AssignLabels(builder, config.labels, rng, n);
  return builder.Build();
}

Graph GenerateStar(size_t num_spokes, LabelConfig labels) {
  Rng rng(7);
  GraphBuilder builder(num_spokes + 1);
  builder.AddNode(static_cast<NodeId>(num_spokes));
  for (NodeId s = 1; s <= num_spokes; ++s) {
    builder.AddEdge(0, s, RandomEdgeLabel(labels, rng));
  }
  AssignLabels(builder, labels, rng, num_spokes + 1);
  return builder.Build();
}

}  // namespace grouting
