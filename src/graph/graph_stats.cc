#include "src/graph/graph_stats.h"

#include <algorithm>
#include <unordered_set>

#include "src/graph/traversal.h"

namespace grouting {

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  if (g.num_nodes() == 0) {
    return s;
  }
  std::vector<size_t> degrees(g.num_nodes());
  uint64_t total_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    s.max_out_degree = std::max(s.max_out_degree, g.OutDegree(u));
    degrees[u] = g.Degree(u);
    s.max_total_degree = std::max(s.max_total_degree, degrees[u]);
    total_degree += degrees[u];
  }
  s.avg_out_degree = static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const size_t top = std::max<size_t>(1, g.num_nodes() / 100);
  uint64_t top_degree = 0;
  for (size_t i = 0; i < top; ++i) {
    top_degree += degrees[i];
  }
  s.top1pct_degree_share =
      total_degree == 0 ? 0.0
                        : static_cast<double>(top_degree) / static_cast<double>(total_degree);
  return s;
}

double AverageKHopNeighborhoodSize(const Graph& g, int32_t h, size_t samples, Rng& rng) {
  if (g.num_nodes() == 0 || samples == 0) {
    return 0.0;
  }
  uint64_t total = 0;
  for (size_t i = 0; i < samples; ++i) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    total += KHopNeighborhood(g, u, h).size();
  }
  return static_cast<double>(total) / static_cast<double>(samples);
}

double HotspotNeighborhoodOverlap(const Graph& g, int32_t h, int32_t r, size_t samples,
                                  Rng& rng) {
  if (g.num_nodes() == 0 || samples == 0) {
    return 0.0;
  }
  double overlap_sum = 0.0;
  size_t valid = 0;
  for (size_t i = 0; i < samples; ++i) {
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    // Pick a partner within r hops of u (if any).
    auto near = KHopNeighborhood(g, u, r);
    if (near.empty()) {
      continue;
    }
    const NodeId v = near[rng.NextBounded(near.size())];
    auto nu = KHopNeighborhood(g, u, h);
    auto nv = KHopNeighborhood(g, v, h);
    if (nu.empty() && nv.empty()) {
      continue;
    }
    std::unordered_set<NodeId> su(nu.begin(), nu.end());
    size_t inter = 0;
    for (NodeId x : nv) {
      inter += su.count(x);
    }
    const size_t uni = su.size() + nv.size() - inter;
    if (uni > 0) {
      overlap_sum += static_cast<double>(inter) / static_cast<double>(uni);
      ++valid;
    }
  }
  return valid == 0 ? 0.0 : overlap_sum / static_cast<double>(valid);
}

}  // namespace grouting
