// Labeled directed graph, the data model of Section 2.1 of the paper.
//
// A heterogeneous network G = (V, E, L): nodes carry a label, edges carry a
// label, and — matching the paper's key-value storage layout — every node's
// adjacency entry contains BOTH its outgoing and incoming edges ("both
// incoming and outgoing edges of a node can be important from the context of
// different queries").
//
// The Graph is an immutable CSR snapshot produced by GraphBuilder. Dynamic
// behaviour (the paper's graph-update experiments) is modelled either by
// rebuilding or by the landmark/embedding incremental-update paths, which
// operate on a "known node" subset of a full graph (see src/landmark).

#ifndef GROUTING_SRC_GRAPH_GRAPH_H_
#define GROUTING_SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/check.h"

namespace grouting {

using NodeId = uint32_t;
using Label = uint16_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr Label kNoLabel = 0;

// A directed edge endpoint with its edge label. 8 bytes.
struct Edge {
  NodeId dst = kInvalidNode;
  Label label = kNoLabel;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.dst == b.dst && a.label == b.label;
  }
};

// Immutable CSR graph with both edge directions materialised.
class Graph {
 public:
  Graph() = default;

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges() const { return out_edges_.size(); }

  Label node_label(NodeId u) const {
    GROUTING_DCHECK(u < num_nodes());
    return node_labels_[u];
  }

  std::span<const Edge> OutNeighbors(NodeId u) const {
    GROUTING_DCHECK(u < num_nodes());
    return {out_edges_.data() + out_offsets_[u], out_offsets_[u + 1] - out_offsets_[u]};
  }

  std::span<const Edge> InNeighbors(NodeId u) const {
    GROUTING_DCHECK(u < num_nodes());
    return {in_edges_.data() + in_offsets_[u], in_offsets_[u + 1] - in_offsets_[u]};
  }

  size_t OutDegree(NodeId u) const { return out_offsets_[u + 1] - out_offsets_[u]; }
  size_t InDegree(NodeId u) const { return in_offsets_[u + 1] - in_offsets_[u]; }
  // Degree in the bi-directed view used by smart routing (out + in).
  size_t Degree(NodeId u) const { return OutDegree(u) + InDegree(u); }

  // True if edge u->v exists (binary search; neighbours are sorted by dst).
  bool HasEdge(NodeId u, NodeId v) const;

  // Byte size of node u's serialised key-value entry in the storage tier:
  // 16-byte header + 6 bytes (4-byte id + 2-byte label) per out- and in-edge.
  // This is the unit the processor caches are charged in.
  size_t AdjacencyBytes(NodeId u) const { return 16 + 6 * Degree(u); }

  // Total bytes of all adjacency entries (the "graph size" the cache-size
  // experiments are expressed against).
  uint64_t TotalAdjacencyBytes() const;

  // Size of the graph written as an adjacency-list text file, matching the
  // paper's Table 1 "Size on Disk (Adj. List File)" column (exact digit
  // count, space separators, newline per node, both directions).
  uint64_t AdjacencyListFileBytes() const;

  // In-memory footprint of this CSR structure.
  uint64_t MemoryBytes() const;

 private:
  friend class GraphBuilder;

  std::vector<uint32_t> out_offsets_;  // size n+1
  std::vector<Edge> out_edges_;
  std::vector<uint32_t> in_offsets_;  // size n+1
  std::vector<Edge> in_edges_;
  std::vector<Label> node_labels_;  // size n
};

// Accumulates nodes and edges, then produces an immutable Graph.
//
// Node ids are dense [0, n). AddEdge implicitly grows the node set. Duplicate
// parallel edges are deduplicated at Build() time (keeping the first label)
// unless keep_parallel_edges(true) is set; self-loops are allowed.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(size_t expected_nodes) { node_labels_.reserve(expected_nodes); }

  // Ensures node u exists; returns u for chaining.
  NodeId AddNode(NodeId u, Label label = kNoLabel);
  // Appends a fresh node and returns its id.
  NodeId AddNode(Label label = kNoLabel);

  void AddEdge(NodeId src, NodeId dst, Label label = kNoLabel);

  void SetNodeLabel(NodeId u, Label label);

  GraphBuilder& keep_parallel_edges(bool keep) {
    keep_parallel_edges_ = keep;
    return *this;
  }

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges() const { return srcs_.size(); }

  // Builds the CSR snapshot. The builder is left empty afterwards.
  Graph Build();

 private:
  void EnsureNode(NodeId u);

  std::vector<NodeId> srcs_;
  std::vector<Edge> dsts_;
  std::vector<Label> node_labels_;
  bool keep_parallel_edges_ = false;
};

// Subgraph induced by `keep[u] != 0`, preserving ORIGINAL node ids (nodes not
// kept become isolated). This matches the paper's graph-update experiment,
// where preprocessing runs on an induced subgraph but queries run on the full
// graph with unchanged ids.
Graph InducedSubgraph(const Graph& g, const std::vector<uint8_t>& keep);

}  // namespace grouting

#endif  // GROUTING_SRC_GRAPH_GRAPH_H_
