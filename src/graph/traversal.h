// Breadth-first traversal utilities shared by landmark preprocessing,
// embedding preprocessing, query executors, and tests.
//
// Smart routing treats the graph as bi-directed ("we assume a bi-directed
// edge corresponding to every directed edge"), so BFS defaults to following
// both out- and in-edges; query semantics that need directed traversal set
// bidirected = false.

#ifndef GROUTING_SRC_GRAPH_TRAVERSAL_H_
#define GROUTING_SRC_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/graph/graph.h"

namespace grouting {

inline constexpr int32_t kUnreachable = -1;

struct BfsOptions {
  bool bidirected = true;
  // Stop expanding beyond this depth (inclusive). Negative = unlimited.
  int32_t max_depth = -1;
  // If non-null, traversal is restricted to nodes u with (*allowed)[u] != 0.
  // The source must be allowed. Used for induced-subgraph preprocessing.
  const std::vector<uint8_t>* allowed = nullptr;
};

// Hop distances from `source` to every node; kUnreachable where unreached.
std::vector<int32_t> BfsDistances(const Graph& g, NodeId source, const BfsOptions& opts = {});

// All nodes within h hops of `source` (excluding the source itself),
// deduplicated, in BFS order. This is N_h(q) from the paper's cache-hit
// metric.
std::vector<NodeId> KHopNeighborhood(const Graph& g, NodeId source, int32_t h,
                                     bool bidirected = true);

// Exact hop distance between two nodes with early termination once the
// frontier exceeds max_depth; kUnreachable if farther / disconnected.
int32_t HopDistance(const Graph& g, NodeId from, NodeId to, int32_t max_depth,
                    bool bidirected = true);

}  // namespace grouting

#endif  // GROUTING_SRC_GRAPH_TRAVERSAL_H_
