#include "src/graph/io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

namespace grouting {
namespace {

constexpr uint64_t kBinaryMagic = 0x47524F5554473031ULL;  // "GROUTG01"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBlob(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

bool ReadBlob(std::FILE* f, void* data, size_t bytes) {
  return std::fread(data, 1, bytes, f) == bytes;
}

}  // namespace

bool WriteEdgeListText(const Graph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return false;
  }
  if (std::fprintf(f.get(), "# grouting-edgelist %zu\n", g.num_nodes()) < 0) {
    return false;
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.node_label(u) != kNoLabel) {
      std::fprintf(f.get(), "L %u %u\n", u, g.node_label(u));
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Edge& e : g.OutNeighbors(u)) {
      std::fprintf(f.get(), "%u %u %u\n", u, e.dst, e.label);
    }
  }
  return true;
}

std::optional<Graph> ReadEdgeListText(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return std::nullopt;
  }
  GraphBuilder builder;
  char line[256];
  bool first = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (line[0] == '#') {
      if (first) {
        size_t declared_nodes = 0;
        if (std::sscanf(line, "# grouting-edgelist %zu", &declared_nodes) == 1 &&
            declared_nodes > 0) {
          builder.AddNode(static_cast<NodeId>(declared_nodes - 1));
        }
      }
      first = false;
      continue;
    }
    first = false;
    if (line[0] == 'L') {
      unsigned node = 0;
      unsigned label = 0;
      if (std::sscanf(line, "L %u %u", &node, &label) != 2) {
        return std::nullopt;
      }
      builder.AddNode(static_cast<NodeId>(node), static_cast<Label>(label));
      continue;
    }
    unsigned src = 0;
    unsigned dst = 0;
    unsigned label = 0;
    const int fields = std::sscanf(line, "%u %u %u", &src, &dst, &label);
    if (fields < 2) {
      if (line[0] == '\n' || line[0] == '\0') {
        continue;  // blank line
      }
      return std::nullopt;
    }
    builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst),
                    static_cast<Label>(label));
  }
  return builder.Build();
}

bool WriteBinary(const Graph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return false;
  }
  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  if (!WriteBlob(f.get(), &kBinaryMagic, sizeof(kBinaryMagic)) ||
      !WriteBlob(f.get(), &n, sizeof(n)) || !WriteBlob(f.get(), &m, sizeof(m))) {
    return false;
  }
  for (NodeId u = 0; u < n; ++u) {
    const Label l = g.node_label(u);
    if (!WriteBlob(f.get(), &l, sizeof(l))) {
      return false;
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t deg = static_cast<uint32_t>(g.OutDegree(u));
    if (!WriteBlob(f.get(), &deg, sizeof(deg))) {
      return false;
    }
    auto nbrs = g.OutNeighbors(u);
    if (!nbrs.empty() && !WriteBlob(f.get(), nbrs.data(), nbrs.size() * sizeof(Edge))) {
      return false;
    }
  }
  return true;
}

std::optional<Graph> ReadBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return std::nullopt;
  }
  uint64_t magic = 0;
  uint64_t n = 0;
  uint64_t m = 0;
  if (!ReadBlob(f.get(), &magic, sizeof(magic)) || magic != kBinaryMagic ||
      !ReadBlob(f.get(), &n, sizeof(n)) || !ReadBlob(f.get(), &m, sizeof(m))) {
    return std::nullopt;
  }
  GraphBuilder builder(n);
  if (n > 0) {
    builder.AddNode(static_cast<NodeId>(n - 1));
  }
  for (NodeId u = 0; u < n; ++u) {
    Label l = kNoLabel;
    if (!ReadBlob(f.get(), &l, sizeof(l))) {
      return std::nullopt;
    }
    builder.SetNodeLabel(u, l);
  }
  uint64_t edges_seen = 0;
  std::vector<Edge> buf;
  for (NodeId u = 0; u < n; ++u) {
    uint32_t deg = 0;
    if (!ReadBlob(f.get(), &deg, sizeof(deg))) {
      return std::nullopt;
    }
    buf.resize(deg);
    if (deg > 0 && !ReadBlob(f.get(), buf.data(), deg * sizeof(Edge))) {
      return std::nullopt;
    }
    for (const Edge& e : buf) {
      builder.AddEdge(u, e.dst, e.label);
    }
    edges_seen += deg;
  }
  if (edges_seen != m) {
    return std::nullopt;
  }
  return builder.Build();
}

}  // namespace grouting
