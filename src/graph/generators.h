// Synthetic graph generators.
//
// The paper evaluates on four public graphs (WebGraph, Friendster,
// Memetracker, Freebase) that are far too large for this environment; the
// workload module (src/workload/datasets.h) composes the generators below
// into scaled-down stand-ins with matching structural character (degree
// skew, 2-hop neighbourhood size, hotspot overlap). Every generator is
// deterministic in its seed.

#ifndef GROUTING_SRC_GRAPH_GENERATORS_H_
#define GROUTING_SRC_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/graph.h"

namespace grouting {

// Shared knobs for label assignment. num_node_labels/num_edge_labels == 0
// leaves everything unlabeled (kNoLabel).
struct LabelConfig {
  uint16_t num_node_labels = 0;
  uint16_t num_edge_labels = 0;
};

// G(n, m) Erdos-Renyi: m directed edges drawn uniformly (no self loops).
Graph GenerateErdosRenyi(size_t num_nodes, size_t num_edges, uint64_t seed,
                         LabelConfig labels = {});

// Barabasi-Albert preferential attachment: each new node attaches
// `edges_per_node` out-edges to existing nodes chosen proportionally to
// degree. Produces a heavy power-law tail (social-network-like).
Graph GenerateBarabasiAlbert(size_t num_nodes, size_t edges_per_node, uint64_t seed,
                             LabelConfig labels = {});

// R-MAT (recursive matrix) generator, the standard model for web-scale
// power-law graphs. num_nodes is rounded up to a power of two internally and
// truncated back. Probabilities (a, b, c) with d = 1-a-b-c; a >> d produces
// strong skew (web-graph-like).
Graph GenerateRMat(size_t num_nodes, size_t num_edges, double a, double b, double c,
                   uint64_t seed, LabelConfig labels = {});

// 2D grid with edges to right/down neighbours; high locality, no skew.
// Useful in tests as the polar opposite of a power-law graph.
Graph GenerateGrid(size_t rows, size_t cols, LabelConfig labels = {}, uint64_t seed = 1);

// Stochastic block model: `num_communities` blocks of `community_size` nodes;
// each node gets `intra_degree` edges inside its block and `inter_degree`
// edges to random other blocks. High intra-hotspot neighbourhood overlap —
// this is what makes topology-aware routing shine.
Graph GenerateCommunityGraph(size_t num_communities, size_t community_size,
                             size_t intra_degree, size_t inter_degree, uint64_t seed,
                             LabelConfig labels = {});

// Star of `num_spokes` around node 0 (degenerate hub; adversarial tests).
Graph GenerateStar(size_t num_spokes, LabelConfig labels = {});

// Locality-preserving web-like graph: communities ("sites") arranged on a
// grid_w x grid_h grid; nodes link mostly within their community, some to
// adjacent communities, and a small fraction become REGIONAL hubs with many
// edges into nearby communities. This yields the three properties the
// paper's evaluation graphs combine and that smart routing exploits:
//   * large effective diameter with regional structure (landmark distances
//     and embeddings carry signal — unlike a globally-shortcut small world),
//   * heavy degree skew (hub tail),
//   * high h-hop neighbourhood overlap between nearby nodes.
// Hubs are REGIONAL and SHARED: every `hub_zone x hub_zone` block of
// communities designates `hubs_per_zone` hub nodes, and all nodes of the
// block attach to those same hubs with probability `hub_link_prob` (like
// pages of related sites linking the same portals). Shared hubs are what
// give nearby nodes their dominant common neighbourhood mass.
struct LocalityWebConfig {
  size_t grid_width = 32;
  size_t grid_height = 32;
  size_t community_size = 150;
  size_t intra_degree = 10;     // edges inside own community per node
  size_t inter_degree = 1;      // edges to adjacent communities per node
  size_t hub_zone = 3;          // zone side length, in communities
  size_t hubs_per_zone = 2;     // shared hubs designated per zone
  double hub_link_prob = 0.75;  // probability a node links each zone hub
  LabelConfig labels;
};

Graph GenerateLocalityWeb(const LocalityWebConfig& config, uint64_t seed);

}  // namespace grouting

#endif  // GROUTING_SRC_GRAPH_GENERATORS_H_
