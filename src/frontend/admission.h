// Per-tenant admission control at the arrival splitter (multi-tenant
// federation): one token bucket per tenant, driven by the arrival
// schedule's own timestamps rather than any clock — so the simulated and
// threaded engines, handed the same schedule, shed exactly the same
// arrivals. In-quota arrivals are never dropped; over-quota arrivals are
// shed before reaching a router shard, and counted per tenant.

#ifndef GROUTING_SRC_FRONTEND_ADMISSION_H_
#define GROUTING_SRC_FRONTEND_ADMISSION_H_

#include <cstdint>
#include <vector>

namespace grouting {

struct AdmissionConfig {
  uint32_t num_tenants = 1;
  // Sustained admitted rate per tenant, queries per second of schedule
  // time. <= 0 disables admission control (everything is admitted).
  double quota_qps = 0.0;
  // Token-bucket depth, in queries: bursts this deep above the quota are
  // absorbed before shedding starts.
  double burst = 32.0;

  bool enabled() const { return quota_qps > 0.0; }
};

class TenantAdmission {
 public:
  explicit TenantAdmission(const AdmissionConfig& config);

  // Decides the arrival of `tenant` at schedule time `arrive_us`.
  // Timestamps must be non-decreasing per tenant (arrival schedules are
  // time-ordered). Returns true when the arrival is admitted.
  bool Admit(uint32_t tenant, double arrive_us);

  uint64_t admitted(uint32_t tenant) const { return admitted_[tenant]; }
  uint64_t shed(uint32_t tenant) const { return shed_[tenant]; }

 private:
  AdmissionConfig config_;
  std::vector<double> tokens_;
  std::vector<double> last_us_;
  std::vector<uint64_t> admitted_;
  std::vector<uint64_t> shed_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_FRONTEND_ADMISSION_H_
