// Arrival splitter for the sharded router frontend (src/frontend/): decides
// which RouterShard owns each query of the arrival stream.
//
//   * round-robin — perfectly even slices, no affinity,
//   * hash        — MurmurHash3(query node) mod N: repeats of a node always
//                   hit the same shard, so that shard's EMA sees them all,
//   * sticky      — session affinity: the first query for a node picks the
//                   least-assigned shard and later queries for that node
//                   stick to it (hotspot runs stay on one shard while the
//                   assignment stays balanced across hotspots).
//
// The splitter is deliberately stateless across runs (deterministic given
// the arrival order), so the simulated and threaded engines slice one
// workload identically.

#ifndef GROUTING_SRC_FRONTEND_SPLITTER_H_
#define GROUTING_SRC_FRONTEND_SPLITTER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/query/query.h"
#include "src/util/murmur3.h"

namespace grouting {

enum class SplitterKind {
  kRoundRobin,
  kHash,
  kSticky,
};

std::string SplitterKindName(SplitterKind kind);

class ArrivalSplitter {
 public:
  ArrivalSplitter(SplitterKind kind, uint32_t num_shards,
                  uint32_t hash_seed = 0x7f4a7c15u);

  SplitterKind kind() const { return kind_; }
  uint32_t num_shards() const { return num_shards_; }

  // Assigns the arrival to a shard in [0, num_shards). Mutates splitter
  // state (rotor / sticky table), so call it once per arrival, in order.
  uint32_t ShardFor(const Query& q);

 private:
  SplitterKind kind_;
  uint32_t num_shards_;
  uint32_t hash_seed_;
  uint64_t rotor_ = 0;
  std::unordered_map<NodeId, uint32_t> sticky_;
  std::vector<uint64_t> sticky_counts_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_FRONTEND_SPLITTER_H_
