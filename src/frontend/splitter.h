// Arrival splitter for the sharded router frontend (src/frontend/): decides
// which RouterShard owns each query of the arrival stream.
//
//   * round-robin — perfectly even slices, no affinity,
//   * hash        — MurmurHash3(query node) mod N: repeats of a node always
//                   hit the same shard, so that shard's EMA sees them all,
//   * sticky      — session affinity: the first query for a node picks the
//                   least-assigned shard and later queries for that node
//                   stick to it (hotspot runs stay on one shard while the
//                   assignment stays balanced across hotspots),
//   * adaptive    — sticky assignment plus feedback: Rebalance() consumes
//                   the gossip round's per-shard routed-load snapshot and
//                   migrates the hottest sessions from the most- to the
//                   least-loaded shard once the max/min load ratio exceeds
//                   RebalanceConfig::threshold (PHD-Store-style dynamic
//                   repartitioning, applied to the arrival stream).
//
// Sessions (sticky/adaptive) are keyed by query node and bounded: at
// session_capacity the oldest session is evicted FIFO (cheap, O(1)), so a
// long-lived frontend cannot grow the table without bound. An evicted node
// that reappears simply starts a fresh session.
//
// The splitter is deliberately deterministic given the arrival order and
// the Rebalance() call points, so the simulated and threaded engines slice
// one workload identically when driven identically.

#ifndef GROUTING_SRC_FRONTEND_SPLITTER_H_
#define GROUTING_SRC_FRONTEND_SPLITTER_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/query/query.h"
#include "src/util/murmur3.h"

namespace grouting {

enum class SplitterKind {
  kRoundRobin,
  kHash,
  kSticky,
  kAdaptive,
};

std::string SplitterKindName(SplitterKind kind);

// Adaptive re-splitting policy (kAdaptive only; ignored otherwise).
struct RebalanceConfig {
  // Trigger: migrate when (max+1)/(min+1) over the shards' effective routed
  // loads exceeds this ratio. <= 1 (or infinity) disables migration, which
  // makes kAdaptive decision-identical to kSticky.
  double threshold = 0.0;
  // At most this many sessions move per Rebalance() round.
  uint32_t migration_cap = 8;
  // Once triggered, migrate down to hysteresis * threshold (a lower water
  // mark in (0, 1]) so the next round does not immediately re-trigger.
  double hysteresis = 0.9;
  // Per-round decay of the load signal, in [0, 1). Each Rebalance() rolls
  // the snapshot's per-shard delta into an EWMA — the controller reacts to
  // recent ARRIVAL RATE, not to the whole run's cumulative counts (which
  // would make it ever less sensitive as the run grows).
  double load_decay = 0.8;
  // Noise floor: migrate only while the hot-cold gap exceeds this many
  // Poisson sigmas (sqrt of the hottest shard's recent load). Short gossip
  // windows carry mostly sampling noise; without the floor the controller
  // thrashes sessions chasing it.
  double noise_sigmas = 3.0;
  // Strategy-state carry on migration: the destination shard merges the
  // source shard's gossip state with this weight (MergeRemoteState), so an
  // EmbedStrategy receiving a migrated session does not restart cold.
  double state_carry_weight = 0.5;

  bool enabled() const {
    return threshold > 1.0 && threshold < 1e30 && migration_cap > 0;
  }
};

struct SplitterStats {
  uint64_t evictions = 0;         // sessions dropped at the capacity bound
  uint64_t migrations = 0;        // sessions moved by Rebalance()
  uint64_t rebalance_rounds = 0;  // Rebalance() calls that evaluated loads
};

// One session moved by a Rebalance() round.
struct SessionMigration {
  NodeId session = kInvalidNode;
  uint32_t from = 0;
  uint32_t to = 0;
};

class ArrivalSplitter {
 public:
  static constexpr uint32_t kDefaultSessionCapacity = 1u << 16;

  ArrivalSplitter(SplitterKind kind, uint32_t num_shards,
                  uint32_t session_capacity = kDefaultSessionCapacity,
                  uint32_t hash_seed = 0x7f4a7c15u);

  SplitterKind kind() const { return kind_; }
  uint32_t num_shards() const { return num_shards_; }

  // Assigns the arrival to a shard in [0, num_shards). Mutates splitter
  // state (rotor / session table), so call it once per arrival, in order.
  uint32_t ShardFor(const Query& q);

  // Adaptive re-splitting round: given the cumulative per-shard routed-load
  // snapshot from the gossip channel, rolls the delta since the previous
  // round into a decayed per-shard rate estimate, then moves the hottest
  // sessions off the most-loaded shard until the max/min rate ratio drops
  // below the hysteresis water mark, the migration cap is hit, or no
  // session can move without widening the spread. A migrating session
  // carries its own decayed rate from source to destination accumulator, so
  // already-corrected skew does not re-trigger. Returns the migrations
  // applied (empty unless kind == kAdaptive and config.enabled()).
  std::vector<SessionMigration> Rebalance(std::span<const uint64_t> shard_loads,
                                          const RebalanceConfig& config);

  // Current shard of a live session, or num_shards() if unknown/evicted.
  uint32_t SessionShard(NodeId session) const;

  size_t session_count() const { return sessions_.size(); }
  uint32_t session_capacity() const { return session_capacity_; }
  const SplitterStats& stats() const { return stats_; }

 private:
  struct Session {
    uint32_t shard = 0;
    // Arrivals since the last Rebalance() round, and the decayed per-round
    // rate estimate they roll into (the session's migration "mass").
    uint64_t window = 0;
    double rate = 0.0;
  };

  uint32_t AssignNewSession(NodeId node);

  SplitterKind kind_;
  uint32_t num_shards_;
  uint32_t session_capacity_;
  uint32_t hash_seed_;
  uint64_t rotor_ = 0;
  std::unordered_map<NodeId, Session> sessions_;
  std::vector<uint64_t> sessions_per_shard_;
  // FIFO eviction ring over live sessions, oldest at ring_[ring_next_].
  std::vector<NodeId> ring_;
  size_t ring_next_ = 0;
  // Rate estimation across Rebalance() rounds: the cumulative snapshot seen
  // last round, and the decayed per-shard rate the deltas roll into.
  std::vector<uint64_t> last_loads_;
  std::vector<double> recent_load_;
  SplitterStats stats_;
};

// Max/min ratio over per-shard routed counts (min clamped to 1); 1.0 for a
// single shard. The ClusterMetrics::router_load_imbalance definition.
double RoutedLoadImbalance(std::span<const uint64_t> routed);

}  // namespace grouting

#endif  // GROUTING_SRC_FRONTEND_SPLITTER_H_
