// Load/EMA gossip between router shards (src/frontend/).
//
// Shards are shared-nothing: each routes its own arrival slice with its own
// strategy instance and only its own queues in view. Left alone their
// adaptive state drifts apart — two shards build different EMA pictures of
// the same processor caches and fight each other's placement. A gossip
// round reconciles them:
//
//   1. every shard snapshots its per-processor queue lengths and strategy
//      state (via RoutingStrategy::Clone), so the round is symmetric and
//      order-independent,
//   2. every shard receives the sum of its siblings' queue snapshots as a
//      remote-load view (Router::SetRemoteLoad),
//   3. every shard blends each sibling's state snapshot in with weight
//      merge_weight / num_shards (RoutingStrategy::MergeRemoteState) — the
//      1/num_shards scaling keeps the blend a contraction for any
//      merge_weight in (0, 1], so divergence shrinks instead of
//      oscillating.
//
// The engines drive the period: the simulated engine schedules gossip as
// discrete events in virtual time, the threaded runtime runs a wall-clock
// gossip tick under per-shard mutexes.

#ifndef GROUTING_SRC_FRONTEND_GOSSIP_H_
#define GROUTING_SRC_FRONTEND_GOSSIP_H_

#include <cstdint>
#include <span>

#include "src/frontend/splitter.h"
#include "src/routing/strategy.h"

namespace grouting {

struct GossipConfig {
  // Time between gossip rounds (virtual µs on the simulated engine,
  // wall-clock µs on the threaded one). 0 disables gossip.
  double period_us = 200.0;
  // Blend weight for sibling state at a gossip round, in [0, 1].
  double merge_weight = 0.5;
};

struct GossipStats {
  uint64_t rounds = 0;
  // Cross-shard state divergence around the most recent round.
  double last_divergence_before = 0.0;
  double last_divergence_after = 0.0;
};

// Mean pairwise L2 distance between the shards' GossipState vectors.
// 0.0 for stateless strategies or fewer than two shards.
double CrossShardStateDivergence(std::span<const RoutingStrategy* const> shards);

// One state-blend round over the shard strategies: snapshot all shards via
// Clone(), then merge every sibling snapshot into every shard with an
// effective uniform weight of merge_weight / shards.size() each. No-op when
// every shard's GossipState is empty (stateless strategies).
void GossipBlendStrategies(std::span<RoutingStrategy* const> shards,
                           double merge_weight);

// Strategy-state carry for a rebalance round's session migrations: the
// destination shard merges the source shard's state ONCE per unique
// (from, to) pair — merging per migrated session would compound the blend
// and a storm of same-pair migrations would wipe the destination's own
// adaptive state. Shared by RouterFleet::RebalanceRound and the threaded
// engine's gossip tick so the two engines' carry semantics cannot drift.
void ApplyMigrationCarry(std::span<RoutingStrategy* const> shards,
                         std::span<const SessionMigration> migrations,
                         double weight);

}  // namespace grouting

#endif  // GROUTING_SRC_FRONTEND_GOSSIP_H_
