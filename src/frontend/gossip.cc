#include "src/frontend/gossip.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace grouting {

double CrossShardStateDivergence(std::span<const RoutingStrategy* const> shards) {
  if (shards.size() < 2) {
    return 0.0;
  }
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    const auto a = shards[i]->GossipState();
    if (a.empty()) {
      return 0.0;  // stateless strategy: nothing to diverge
    }
    for (size_t j = i + 1; j < shards.size(); ++j) {
      const auto b = shards[j]->GossipState();
      GROUTING_CHECK(a.size() == b.size());
      double sq = 0.0;
      for (size_t k = 0; k < a.size(); ++k) {
        const double d = a[k] - b[k];
        sq += d * d;
      }
      total += std::sqrt(sq);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

void GossipBlendStrategies(std::span<RoutingStrategy* const> shards,
                           double merge_weight) {
  if (shards.size() < 2 || merge_weight <= 0.0) {
    return;
  }
  GROUTING_CHECK(merge_weight <= 1.0);
  bool stateful = false;
  for (const RoutingStrategy* s : shards) {
    stateful |= !s->GossipState().empty();
  }
  if (!stateful) {
    return;  // stateless strategies: nothing to blend, skip the clones
  }
  std::vector<std::unique_ptr<RoutingStrategy>> snapshots;
  snapshots.reserve(shards.size());
  for (const RoutingStrategy* s : shards) {
    auto snap = s->Clone();
    GROUTING_CHECK_MSG(snap != nullptr, "gossip requires a Clone()-able strategy");
    snapshots.push_back(std::move(snap));
  }
  // Target blend for shard i: (1 - (N-1)w) * own + w * sum(sibling snapshots)
  // with uniform w = merge_weight / N. MergeRemoteState is pairwise and
  // sequential, which left alone would weight later siblings geometrically
  // more; merging sibling k of m with corrected weight w / (1 - (m-k)w)
  // yields exactly the uniform target (and is what keeps the round
  // symmetric and order-independent, as gossip.h promises).
  const double w = merge_weight / static_cast<double>(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    const size_t m = shards.size() - 1;
    size_t k = 1;
    for (size_t j = 0; j < shards.size(); ++j) {
      if (j != i) {
        const double corrected = w / (1.0 - static_cast<double>(m - k) * w);
        shards[i]->MergeRemoteState(*snapshots[j], corrected);
        ++k;
      }
    }
  }
}

void ApplyMigrationCarry(std::span<RoutingStrategy* const> shards,
                         std::span<const SessionMigration> migrations,
                         double weight) {
  if (migrations.empty() || weight <= 0.0) {
    return;
  }
  GROUTING_CHECK(weight <= 1.0);
  std::vector<std::pair<uint32_t, uint32_t>> pairs;  // tiny: linear dedupe
  for (const SessionMigration& m : migrations) {
    const auto pair = std::make_pair(m.from, m.to);
    if (std::find(pairs.begin(), pairs.end(), pair) == pairs.end()) {
      pairs.push_back(pair);
    }
  }
  for (const auto& [from, to] : pairs) {
    shards[to]->MergeRemoteState(*shards[from], weight);
  }
}

}  // namespace grouting
