#include "src/frontend/router_fleet.h"

#include <algorithm>
#include <utility>

namespace grouting {

RouterFleet::RouterFleet(std::unique_ptr<RoutingStrategy> strategy,
                         uint32_t num_processors, FleetConfig config)
    : config_(config),
      num_processors_(num_processors),
      splitter_(config.splitter, config.num_shards, config.session_capacity) {
  GROUTING_CHECK(strategy != nullptr);
  GROUTING_CHECK(config_.num_shards > 0);
  std::vector<std::unique_ptr<RoutingStrategy>> strategies;
  strategies.reserve(config_.num_shards);
  for (uint32_t s = 1; s < config_.num_shards; ++s) {
    auto clone = strategy->Clone();
    GROUTING_CHECK_MSG(clone != nullptr,
                       "num_router_shards > 1 requires a Clone()-able strategy");
    strategies.push_back(std::move(clone));
  }
  strategies.insert(strategies.begin(), std::move(strategy));
  shards_.reserve(config_.num_shards);
  for (auto& s : strategies) {
    shards_.push_back(
        std::make_unique<Router>(std::move(s), num_processors_, config_.router));
  }
  remote_scratch_.assign(num_processors_, 0);
  order_scratch_.resize(config_.num_shards);
}

RouterFleet::RoutedArrival RouterFleet::Enqueue(const Query& q) {
  RoutedArrival routed;
  routed.shard = splitter_.ShardFor(q);
  routed.processor = shards_[routed.shard]->Enqueue(q);
  return routed;
}

std::optional<Query> RouterFleet::NextForProcessor(uint32_t p) {
  GROUTING_CHECK(p < num_processors_);
  // Try shards hottest-first for this processor (stable on ties, so a
  // single shard degenerates to exactly the classic router call).
  for (uint32_t s = 0; s < num_shards(); ++s) {
    order_scratch_[s] = s;
  }
  std::stable_sort(order_scratch_.begin(), order_scratch_.end(),
                   [&](uint32_t a, uint32_t b) {
                     return shards_[a]->QueueLengths()[p] >
                            shards_[b]->QueueLengths()[p];
                   });
  for (const uint32_t s : order_scratch_) {
    if (auto q = shards_[s]->NextForProcessor(p); q.has_value()) {
      return q;
    }
  }
  return std::nullopt;
}

bool RouterFleet::HasPending() const {
  for (const auto& shard : shards_) {
    if (shard->HasPending()) {
      return true;
    }
  }
  return false;
}

size_t RouterFleet::pending() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->pending();
  }
  return total;
}

void RouterFleet::GossipRound() {
  if (num_shards() < 2) {
    return;
  }
  gossip_stats_.last_divergence_before = CurrentEmaDivergence();

  // Remote-load exchange: every shard learns the sum of its siblings'
  // per-processor queue lengths as of this round.
  for (uint32_t i = 0; i < num_shards(); ++i) {
    std::fill(remote_scratch_.begin(), remote_scratch_.end(), 0u);
    for (uint32_t j = 0; j < num_shards(); ++j) {
      if (j == i) {
        continue;
      }
      const auto lengths = shards_[j]->QueueLengths();
      for (uint32_t p = 0; p < num_processors_; ++p) {
        remote_scratch_[p] += lengths[p];
      }
    }
    shards_[i]->SetRemoteLoad(remote_scratch_);
  }

  // EMA (adaptive state) blend.
  std::vector<RoutingStrategy*> strategies;
  strategies.reserve(num_shards());
  for (auto& shard : shards_) {
    strategies.push_back(&shard->strategy());
  }
  GossipBlendStrategies(strategies, config_.gossip.merge_weight);

  gossip_stats_.last_divergence_after = CurrentEmaDivergence();
  gossip_stats_.rounds += 1;

  // Adaptive re-splitting rides the same round: the routed-count snapshot it
  // consumes is exactly what this round just exchanged.
  RebalanceRound();
}

size_t RouterFleet::RebalanceRound() {
  if (num_shards() < 2 || splitter_.kind() != SplitterKind::kAdaptive ||
      !config_.rebalance.enabled()) {
    return 0;
  }
  const std::vector<uint64_t> routed = RoutedPerShard();
  const auto migrations = splitter_.Rebalance(routed, config_.rebalance);
  // Migration carries strategy state: the destination shard pulls in the
  // source shard's view (EMA for Embed; no-op for stateless strategies) so
  // the moved session's history is not lost to a cold strategy.
  std::vector<RoutingStrategy*> strategies;
  strategies.reserve(shards_.size());
  for (auto& shard : shards_) {
    strategies.push_back(&shard->strategy());
  }
  ApplyMigrationCarry(strategies, migrations, config_.rebalance.state_carry_weight);
  return migrations.size();
}

std::vector<uint64_t> RouterFleet::RoutedPerShard() const {
  std::vector<uint64_t> routed(shards_.size(), 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    routed[s] = shards_[s]->stats().routed;
  }
  return routed;
}

double RouterFleet::CurrentEmaDivergence() const {
  const auto views = StrategyViews();
  return CrossShardStateDivergence(views);
}

std::vector<const RoutingStrategy*> RouterFleet::StrategyViews() const {
  std::vector<const RoutingStrategy*> views;
  views.reserve(shards_.size());
  for (const auto& shard : shards_) {
    views.push_back(&shard->strategy());
  }
  return views;
}

RouterStats RouterFleet::AggregateRouterStats() const {
  RouterStats total;
  total.per_processor.assign(num_processors_, 0);
  for (const auto& shard : shards_) {
    const RouterStats& s = shard->stats();
    total.routed += s.routed;
    total.dispatched += s.dispatched;
    total.steals += s.steals;
    for (uint32_t p = 0; p < num_processors_; ++p) {
      total.per_processor[p] += s.per_processor[p];
    }
  }
  return total;
}

}  // namespace grouting
