// RouterFleet: the sharded router frontend.
//
//   arrivals -> ArrivalSplitter -> N shared-nothing RouterShards -> P procs
//                                   each: own Router (queues) + own
//                                   RoutingStrategy clone (own EMA view)
//                                        ^
//                                        | periodic LoadGossip (queue
//                                        v  snapshots + EMA blend)
//
// The paper's smart router sees every arrival; a fleet splits the stream so
// no single router bounds ingest throughput. Each shard routes its slice
// against its own queues plus the remote-load view from the last gossip
// round, and dispatch stays acknowledgement-driven: a ready processor
// drains the shard holding its longest queue first, falling back to the
// shards' own steal logic.
//
// With num_shards == 1 the fleet IS the classic single router — same
// strategy instance, same call sequence — which tests/frontend_test.cc
// pins down as answer-identical for every scheme.
//
// The fleet is engine-agnostic like Router: the simulated engine drives
// GossipRound() from virtual-time events, the threaded runtime from a
// wall-clock tick (see src/sim/ and src/runtime/).

#ifndef GROUTING_SRC_FRONTEND_ROUTER_FLEET_H_
#define GROUTING_SRC_FRONTEND_ROUTER_FLEET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/frontend/gossip.h"
#include "src/frontend/splitter.h"
#include "src/routing/router.h"

namespace grouting {

struct FleetConfig {
  uint32_t num_shards = 1;
  SplitterKind splitter = SplitterKind::kRoundRobin;
  uint32_t session_capacity = ArrivalSplitter::kDefaultSessionCapacity;
  RouterConfig router;  // per-shard router config (stealing)
  GossipConfig gossip;
  // Adaptive re-splitting of the arrival stream (splitter == kAdaptive):
  // each gossip round may migrate hot sessions off the most-loaded shard.
  RebalanceConfig rebalance;
};


class RouterFleet {
 public:
  // Shard 0 keeps `strategy`; shards 1..N-1 get strategy->Clone() (checked:
  // sharding a non-cloneable strategy is a config error).
  RouterFleet(std::unique_ptr<RoutingStrategy> strategy, uint32_t num_processors,
              FleetConfig config);

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t num_processors() const { return num_processors_; }
  bool gossip_enabled() const {
    return num_shards() > 1 && config_.gossip.period_us > 0.0;
  }
  const FleetConfig& config() const { return config_; }

  struct RoutedArrival {
    uint32_t shard = 0;
    uint32_t processor = 0;
  };

  // Splits the arrival onto its shard and routes it there.
  RoutedArrival Enqueue(const Query& q);

  // Next query for a ready processor. Shards are tried hottest-first (the
  // longest local queue for p); a shard with pending work elsewhere serves
  // via its own steal path, so no processor idles while any shard has work.
  std::optional<Query> NextForProcessor(uint32_t p);

  bool HasPending() const;
  size_t pending() const;

  // One load/EMA gossip round (see src/frontend/gossip.h): refreshes every
  // shard's remote-load view, blends the strategies' adaptive state, and —
  // with the adaptive splitter — runs a RebalanceRound() off the same load
  // snapshot.
  void GossipRound();

  // Adaptive arrival re-splitting: feeds the shards' routed counts to the
  // splitter and migrates hot sessions per FleetConfig::rebalance. A moved
  // session carries strategy state: the destination shard merges the source
  // shard's gossip state (MergeRemoteState) so EmbedStrategy's EMA does not
  // restart cold. Returns the number of sessions migrated this round.
  size_t RebalanceRound();

  // Mean pairwise L2 distance between shard strategies' gossip state, right
  // now (0 for stateless strategies or a single shard).
  double CurrentEmaDivergence() const;

  Router& shard(uint32_t s) { return *shards_[s]; }
  const Router& shard(uint32_t s) const { return *shards_[s]; }
  const GossipStats& gossip_stats() const { return gossip_stats_; }
  const ArrivalSplitter& splitter() const { return splitter_; }

  // Arrival split across shards, derived from the shard routers' own
  // counters (single source of truth).
  std::vector<uint64_t> RoutedPerShard() const;

  // Max/min routed-load ratio across shards right now (1.0 for one shard).
  double LoadImbalance() const { return RoutedLoadImbalance(RoutedPerShard()); }

  // Fleet-wide router stats: summed routed/dispatched/steals and the
  // per-processor dispatch split across all shards.
  RouterStats AggregateRouterStats() const;

 private:
  std::vector<const RoutingStrategy*> StrategyViews() const;

  FleetConfig config_;
  uint32_t num_processors_;
  ArrivalSplitter splitter_;
  std::vector<std::unique_ptr<Router>> shards_;
  GossipStats gossip_stats_;
  std::vector<uint32_t> remote_scratch_;
  std::vector<uint32_t> order_scratch_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_FRONTEND_ROUTER_FLEET_H_
