#include "src/frontend/admission.h"

#include <algorithm>

#include "src/util/check.h"

namespace grouting {

TenantAdmission::TenantAdmission(const AdmissionConfig& config)
    : config_(config),
      tokens_(config.num_tenants, config.burst),
      last_us_(config.num_tenants, 0.0),
      admitted_(config.num_tenants, 0),
      shed_(config.num_tenants, 0) {
  GROUTING_CHECK(config_.num_tenants > 0);
  GROUTING_CHECK(config_.burst >= 1.0);
}

bool TenantAdmission::Admit(uint32_t tenant, double arrive_us) {
  GROUTING_CHECK(tenant < config_.num_tenants);
  if (!config_.enabled()) {
    ++admitted_[tenant];
    return true;
  }
  const double elapsed_us = std::max(0.0, arrive_us - last_us_[tenant]);
  last_us_[tenant] = std::max(last_us_[tenant], arrive_us);
  tokens_[tenant] = std::min(
      config_.burst, tokens_[tenant] + elapsed_us * config_.quota_qps / 1e6);
  if (tokens_[tenant] >= 1.0) {
    tokens_[tenant] -= 1.0;
    ++admitted_[tenant];
    return true;
  }
  ++shed_[tenant];
  return false;
}

}  // namespace grouting
