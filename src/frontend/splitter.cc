#include "src/frontend/splitter.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace grouting {

std::string SplitterKindName(SplitterKind kind) {
  switch (kind) {
    case SplitterKind::kRoundRobin:
      return "round_robin";
    case SplitterKind::kHash:
      return "hash";
    case SplitterKind::kSticky:
      return "sticky";
    case SplitterKind::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

ArrivalSplitter::ArrivalSplitter(SplitterKind kind, uint32_t num_shards,
                                 uint32_t session_capacity, uint32_t hash_seed)
    : kind_(kind),
      num_shards_(num_shards),
      session_capacity_(session_capacity),
      hash_seed_(hash_seed) {
  GROUTING_CHECK(num_shards_ > 0);
  GROUTING_CHECK(session_capacity_ > 0);
  if (kind_ == SplitterKind::kSticky || kind_ == SplitterKind::kAdaptive) {
    sessions_per_shard_.assign(num_shards_, 0);
    last_loads_.assign(num_shards_, 0);
    recent_load_.assign(num_shards_, 0.0);
  }
}

uint32_t ArrivalSplitter::AssignNewSession(NodeId node) {
  if (sessions_.size() >= session_capacity_) {
    // FIFO eviction: drop the oldest live session; its slot takes the new one.
    const NodeId victim = ring_[ring_next_];
    auto vit = sessions_.find(victim);
    GROUTING_CHECK(vit != sessions_.end());
    sessions_per_shard_[vit->second.shard] -= 1;
    sessions_.erase(vit);
    stats_.evictions += 1;
  } else {
    ring_.resize(sessions_.size() + 1);
  }
  uint32_t least = 0;
  for (uint32_t s = 1; s < num_shards_; ++s) {
    if (sessions_per_shard_[s] < sessions_per_shard_[least]) {
      least = s;
    }
  }
  ring_[ring_next_] = node;
  ring_next_ = (ring_next_ + 1) % session_capacity_;
  sessions_.emplace(node, Session{least, 0});
  sessions_per_shard_[least] += 1;
  return least;
}

uint32_t ArrivalSplitter::ShardFor(const Query& q) {
  if (num_shards_ == 1) {
    return 0;
  }
  switch (kind_) {
    case SplitterKind::kRoundRobin:
      return static_cast<uint32_t>(rotor_++ % num_shards_);
    case SplitterKind::kHash:
      return static_cast<uint32_t>(Murmur3Hash64(q.node, hash_seed_) % num_shards_);
    case SplitterKind::kSticky:
    case SplitterKind::kAdaptive: {
      auto it = sessions_.find(q.node);
      if (it == sessions_.end()) {
        const uint32_t shard = AssignNewSession(q.node);
        it = sessions_.find(q.node);
        GROUTING_CHECK(it != sessions_.end() && it->second.shard == shard);
      }
      it->second.window += 1;
      return it->second.shard;
    }
  }
  GROUTING_CHECK_MSG(false, "unknown splitter kind");
  return 0;
}

std::vector<SessionMigration> ArrivalSplitter::Rebalance(
    std::span<const uint64_t> shard_loads, const RebalanceConfig& config) {
  std::vector<SessionMigration> migrations;
  if (kind_ != SplitterKind::kAdaptive || num_shards_ < 2 || !config.enabled()) {
    return migrations;
  }
  GROUTING_CHECK(shard_loads.size() == num_shards_);
  GROUTING_CHECK(config.hysteresis > 0.0 && config.hysteresis <= 1.0);
  GROUTING_CHECK(config.load_decay >= 0.0 && config.load_decay < 1.0);
  stats_.rebalance_rounds += 1;

  // Roll this round's delta into the decayed rate estimates — the shards'
  // from the gossip snapshot, the sessions' from their arrival windows.
  // Cumulative counters monotonically dilute skew; the decayed view keeps
  // the controller sensitive to the CURRENT arrival rate all run long.
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const uint64_t delta =
        shard_loads[s] >= last_loads_[s] ? shard_loads[s] - last_loads_[s] : 0;
    recent_load_[s] = config.load_decay * recent_load_[s] + static_cast<double>(delta);
    last_loads_[s] = shard_loads[s];
  }
  for (auto& [node, session] : sessions_) {
    session.rate =
        config.load_decay * session.rate + static_cast<double>(session.window);
    session.window = 0;
  }

  const auto ratio = [&](uint32_t hi, uint32_t lo) {
    return (recent_load_[hi] + 1.0) / (recent_load_[lo] + 1.0);
  };
  const double stop_ratio = std::max(1.0, config.hysteresis * config.threshold);

  bool triggered = false;
  while (migrations.size() < config.migration_cap) {
    uint32_t hottest = 0;
    uint32_t coolest = 0;
    for (uint32_t s = 1; s < num_shards_; ++s) {
      if (recent_load_[s] > recent_load_[hottest]) {
        hottest = s;
      }
      if (recent_load_[s] < recent_load_[coolest]) {
        coolest = s;
      }
    }
    const double r = ratio(hottest, coolest);
    const double gap_floor =
        config.noise_sigmas * std::sqrt(std::max(recent_load_[hottest], 1.0));
    if (recent_load_[hottest] - recent_load_[coolest] <= gap_floor) {
      break;  // the spread is within sampling noise: not actionable skew
    }
    if (!triggered) {
      if (r <= config.threshold) {
        return migrations;  // hysteresis: below the trigger, leave it alone
      }
      triggered = true;
    } else if (r <= stop_ratio) {
      break;  // drained below the water mark
    }

    // Move the session that lands the pair closest to even: resulting
    // spread |gap - 2a|, candidates restricted to a < gap so every move
    // strictly narrows the spread — a session hotter than the whole gap
    // would only relocate the hotspot and invite the next round to move it
    // straight back (thrash).
    const double gap = recent_load_[hottest] - recent_load_[coolest];
    NodeId victim = kInvalidNode;
    double victim_spread = gap;
    double victim_rate = 0.0;
    for (const auto& [node, session] : sessions_) {
      if (session.shard != hottest || session.rate <= 0.0) {
        continue;
      }
      if (session.rate >= gap) {
        continue;
      }
      const double spread = std::abs(gap - 2.0 * session.rate);
      if (victim == kInvalidNode || spread < victim_spread ||
          (spread == victim_spread && node < victim)) {
        victim = node;
        victim_spread = spread;
        victim_rate = session.rate;
      }
    }
    if (victim == kInvalidNode) {
      break;  // nothing movable without widening the spread
    }

    // The session's rate moves with it, so the corrected skew is already
    // reflected when the next round's snapshot arrives.
    Session& moved = sessions_.at(victim);
    moved.shard = coolest;
    sessions_per_shard_[hottest] -= 1;
    sessions_per_shard_[coolest] += 1;
    recent_load_[hottest] -= victim_rate;
    recent_load_[coolest] += victim_rate;
    migrations.push_back({victim, hottest, coolest});
    stats_.migrations += 1;
  }
  return migrations;
}

uint32_t ArrivalSplitter::SessionShard(NodeId session) const {
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? num_shards_ : it->second.shard;
}

double RoutedLoadImbalance(std::span<const uint64_t> routed) {
  return MaxMinLoadRatio(routed);
}

}  // namespace grouting
