#include "src/frontend/splitter.h"

#include "src/util/check.h"

namespace grouting {

std::string SplitterKindName(SplitterKind kind) {
  switch (kind) {
    case SplitterKind::kRoundRobin:
      return "round_robin";
    case SplitterKind::kHash:
      return "hash";
    case SplitterKind::kSticky:
      return "sticky";
  }
  return "unknown";
}

ArrivalSplitter::ArrivalSplitter(SplitterKind kind, uint32_t num_shards,
                                 uint32_t hash_seed)
    : kind_(kind), num_shards_(num_shards), hash_seed_(hash_seed) {
  GROUTING_CHECK(num_shards_ > 0);
  if (kind_ == SplitterKind::kSticky) {
    sticky_counts_.assign(num_shards_, 0);
  }
}

uint32_t ArrivalSplitter::ShardFor(const Query& q) {
  if (num_shards_ == 1) {
    return 0;
  }
  switch (kind_) {
    case SplitterKind::kRoundRobin:
      return static_cast<uint32_t>(rotor_++ % num_shards_);
    case SplitterKind::kHash:
      return static_cast<uint32_t>(Murmur3Hash64(q.node, hash_seed_) % num_shards_);
    case SplitterKind::kSticky: {
      auto it = sticky_.find(q.node);
      if (it == sticky_.end()) {
        uint32_t least = 0;
        for (uint32_t s = 1; s < num_shards_; ++s) {
          if (sticky_counts_[s] < sticky_counts_[least]) {
            least = s;
          }
        }
        it = sticky_.emplace(q.node, least).first;
        sticky_counts_[least] += 1;
      }
      return it->second;
    }
  }
  GROUTING_CHECK_MSG(false, "unknown splitter kind");
  return 0;
}

}  // namespace grouting
