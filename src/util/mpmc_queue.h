// Unbounded multi-producer multi-consumer queue built on mutex + condition
// variable. Used as the message channel between router, processor, and
// storage threads in the real (non-simulated) runtime.
//
// Close() wakes all blocked consumers; Pop() then drains remaining items
// before reporting closure, so no message is ever lost on shutdown.

#ifndef GROUTING_SRC_UTIL_MPMC_QUEUE_H_
#define GROUTING_SRC_UTIL_MPMC_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace grouting {

template <typename T>
class MpmcQueue {
 public:
  MpmcQueue() = default;
  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Returns false if the queue is already closed (item is dropped).
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns nullopt only on closed-and-empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace grouting

#endif  // GROUTING_SRC_UTIL_MPMC_QUEUE_H_
