// Streaming statistics helpers used throughout metrics collection:
// RunningStat (Welford mean/variance), Histogram (log2-bucketed, for latency
// distributions), and simple percentile extraction over collected samples.

#ifndef GROUTING_SRC_UTIL_STATS_H_
#define GROUTING_SRC_UTIL_STATS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace grouting {

// Max/min ratio over per-entity load counts, the shared "imbalance" metric
// definition (ClusterMetrics::router_load_imbalance over router shards,
// ::storage_load_imbalance over storage servers): 1.0 = perfectly balanced,
// the min clamped to 1 so an idle entity reads as the max count rather than
// infinity. Fewer than two entities is vacuously balanced (0.0 for none).
inline double MaxMinLoadRatio(std::span<const uint64_t> loads) {
  if (loads.size() < 2) {
    return loads.empty() ? 0.0 : 1.0;
  }
  uint64_t lo = loads[0];
  uint64_t hi = loads[0];
  for (const uint64_t v : loads) {
    lo = lo < v ? lo : v;
    hi = hi > v ? hi : v;
  }
  return static_cast<double>(hi) / static_cast<double>(lo > 0 ? lo : 1);
}

// Numerically stable single-pass mean / variance / min / max.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  void Merge(const RunningStat& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Log2-bucketed histogram for non-negative integer measurements (e.g.
// microsecond latencies). Bucket i covers [2^i, 2^(i+1)).
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  int64_t count() const { return count_; }
  // Approximate quantile (q in [0,1]) using bucket midpoints.
  double Quantile(double q) const;
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  int64_t buckets_[kBuckets];
  int64_t count_ = 0;
  double sum_ = 0.0;
};

// Exact percentile over a sample vector (sorts a copy). p in [0, 100].
double Percentile(std::vector<double> samples, double p);

// O(1)-memory latency distribution: log-linear buckets (HDR-histogram
// style) over non-negative double microseconds — every power-of-two octave
// is split into kSubBuckets linear sub-buckets, so any quantile is read in
// one pass with a relative bucket error of at most 1/kSubBuckets (~3%).
// This replaces the engines' raw per-query sample vectors: memory no longer
// grows with the run length, and p50/p95/p99/p999 all come from the same
// single pass instead of a full sort per percentile.
//
// The mean is NOT bucketed: an embedded RunningStat accumulates the exact
// samples in Add order, so a histogram-backed mean is bit-identical to the
// pre-histogram sample-vector mean for the same Add sequence.
class LatencyHistogram {
 public:
  // Sub-buckets per power-of-two octave (the quantile resolution knob).
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 32 -> <=3.2% rel. error
  // Octave range: 2^kMinExp .. 2^(kMinExp + kOctaves) µs; values outside
  // clamp into the first/last bucket.
  static constexpr int kMinExp = -16;  // ~15 ns resolution floor
  static constexpr int kOctaves = 56;  // up to ~2^40 µs (= years)
  static constexpr int kBuckets = kOctaves * kSubBuckets;

  LatencyHistogram();

  void Add(double us);
  void Merge(const LatencyHistogram& other);

  int64_t count() const { return exact_.count(); }
  double mean() const { return exact_.mean(); }
  double min() const { return exact_.min(); }
  double max() const { return exact_.max(); }

  // Bucket-interpolated percentile, p in [0, 100]; within one bucket width
  // of the exact sorted-sample percentile (tests/util_test.cc pins this).
  double Percentile(double p) const;

  // [lower, upper) value bounds of the bucket holding `us` — the error bar
  // any quantile read out of this histogram carries.
  static double BucketLowerBound(double us);
  static double BucketUpperBound(double us);

 private:
  static int BucketIndex(double us);
  static double BucketLower(int index);

  std::vector<uint64_t> buckets_;
  RunningStat exact_;  // exact mean/min/max in Add order
};

}  // namespace grouting

#endif  // GROUTING_SRC_UTIL_STATS_H_
