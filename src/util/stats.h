// Streaming statistics helpers used throughout metrics collection:
// RunningStat (Welford mean/variance), Histogram (log2-bucketed, for latency
// distributions), and simple percentile extraction over collected samples.

#ifndef GROUTING_SRC_UTIL_STATS_H_
#define GROUTING_SRC_UTIL_STATS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace grouting {

// Max/min ratio over per-entity load counts, the shared "imbalance" metric
// definition (ClusterMetrics::router_load_imbalance over router shards,
// ::storage_load_imbalance over storage servers): 1.0 = perfectly balanced,
// the min clamped to 1 so an idle entity reads as the max count rather than
// infinity. Fewer than two entities is vacuously balanced (0.0 for none).
inline double MaxMinLoadRatio(std::span<const uint64_t> loads) {
  if (loads.size() < 2) {
    return loads.empty() ? 0.0 : 1.0;
  }
  uint64_t lo = loads[0];
  uint64_t hi = loads[0];
  for (const uint64_t v : loads) {
    lo = lo < v ? lo : v;
    hi = hi > v ? hi : v;
  }
  return static_cast<double>(hi) / static_cast<double>(lo > 0 ? lo : 1);
}

// Numerically stable single-pass mean / variance / min / max.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  void Merge(const RunningStat& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Log2-bucketed histogram for non-negative integer measurements (e.g.
// microsecond latencies). Bucket i covers [2^i, 2^(i+1)).
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  int64_t count() const { return count_; }
  // Approximate quantile (q in [0,1]) using bucket midpoints.
  double Quantile(double q) const;
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  int64_t buckets_[kBuckets];
  int64_t count_ = 0;
  double sum_ = 0.0;
};

// Exact percentile over a sample vector (sorts a copy). p in [0, 100].
double Percentile(std::vector<double> samples, double p);

}  // namespace grouting

#endif  // GROUTING_SRC_UTIL_STATS_H_
