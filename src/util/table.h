// Console table formatting for benchmark output. Benches print the same
// rows/series the paper's tables and figures report; this gives them an
// aligned, greppable textual form.

#ifndef GROUTING_SRC_UTIL_TABLE_H_
#define GROUTING_SRC_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace grouting {

// A simple column-aligned text table:
//   Table t({"scheme", "throughput (q/s)"});
//   t.AddRow({"embed", Table::Num(171.2)});
//   std::cout << t.ToString();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Formats a double with the given precision, trimming trailing zeros.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);
  // Human-readable byte size, e.g. "2.8 GB".
  static std::string Bytes(uint64_t bytes);

  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Parses byte-size strings such as "16MB", "4GB", "512" (bytes).
// Returns 0 on malformed input.
uint64_t ParseByteSize(const std::string& text);

}  // namespace grouting

#endif  // GROUTING_SRC_UTIL_TABLE_H_
