// Lightweight precondition / invariant checking macros.
//
// Following the Core Guidelines (I.6 "Prefer Expects() for preconditions"), but
// without pulling in GSL: GROUTING_CHECK is always on, GROUTING_DCHECK only in
// debug builds. Failures print the expression and location, then abort — in a
// systems library a violated invariant means continuing would corrupt state.

#ifndef GROUTING_SRC_UTIL_CHECK_H_
#define GROUTING_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace grouting {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal
}  // namespace grouting

#define GROUTING_CHECK(expr)                                       \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::grouting::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                              \
  } while (false)

#define GROUTING_CHECK_MSG(expr, msg)                                          \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::grouting::internal::CheckFailed(#expr " (" msg ")", __FILE__, __LINE__); \
    }                                                                          \
  } while (false)

#ifdef NDEBUG
#define GROUTING_DCHECK(expr) \
  do {                        \
  } while (false)
#else
#define GROUTING_DCHECK(expr) GROUTING_CHECK(expr)
#endif

#endif  // GROUTING_SRC_UTIL_CHECK_H_
