// MurmurHash3 — the hash family RAMCloud (and therefore our storage tier)
// uses to place keys onto storage servers, and the hash the paper's "hash
// routing" baseline applies to query node ids.
//
// Reimplemented from Austin Appleby's public-domain reference. We provide
// the x86 32-bit variant (used for partitioning decisions, where we only
// need a bucket index) and the x64 128-bit variant (used where collision
// resistance matters, e.g. KV store internal hashing).

#ifndef GROUTING_SRC_UTIL_MURMUR3_H_
#define GROUTING_SRC_UTIL_MURMUR3_H_

#include <cstddef>
#include <cstdint>

namespace grouting {

// 32-bit MurmurHash3 of an arbitrary byte buffer.
uint32_t Murmur3_x86_32(const void* key, size_t len, uint32_t seed);

// 128-bit MurmurHash3; writes two 64-bit halves into out[0], out[1].
void Murmur3_x64_128(const void* key, size_t len, uint32_t seed, uint64_t out[2]);

// Convenience: hash a 64-bit key (e.g. a node id) to 32 bits.
inline uint32_t Murmur3Hash64(uint64_t key, uint32_t seed = 0x9747b28cu) {
  return Murmur3_x86_32(&key, sizeof(key), seed);
}

}  // namespace grouting

#endif  // GROUTING_SRC_UTIL_MURMUR3_H_
