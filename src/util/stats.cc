#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/util/check.h"

namespace grouting {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram() { std::memset(buckets_, 0, sizeof(buckets_)); }

void Histogram::Add(uint64_t value) {
  const int bucket = value == 0 ? 0 : 64 - __builtin_clzll(value);
  buckets_[std::min(bucket, kBuckets - 1)] += 1;
  ++count_;
  sum_ += static_cast<double>(value);
}

double Histogram::Quantile(double q) const {
  GROUTING_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) {
    return 0.0;
  }
  const auto target = static_cast<int64_t>(q * static_cast<double>(count_ - 1));
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      const double lo = i == 0 ? 0.0 : std::pow(2.0, i - 1);
      const double hi = std::pow(2.0, i);
      return (lo + hi) / 2.0;
    }
  }
  return std::pow(2.0, kBuckets - 1);
}

std::string Histogram::ToString() const {
  std::string out;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[2^%d): %lld  ", i, static_cast<long long>(buckets_[i]));
    out += buf;
  }
  return out;
}

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

int LatencyHistogram::BucketIndex(double us) {
  if (!(us > 0.0)) {
    return 0;  // zero / negative / NaN clamp into the first bucket
  }
  int exp = 0;
  const double m = std::frexp(us, &exp);  // us = m * 2^exp, m in [0.5, 1)
  const int octave = (exp - 1) - kMinExp;
  if (octave < 0) {
    return 0;
  }
  if (octave >= kOctaves) {
    return kBuckets - 1;
  }
  int sub = static_cast<int>((m * 2.0 - 1.0) * kSubBuckets);
  sub = std::min(std::max(sub, 0), kSubBuckets - 1);
  return octave * kSubBuckets + sub;
}

double LatencyHistogram::BucketLower(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, kMinExp + octave);
}

double LatencyHistogram::BucketLowerBound(double us) {
  return BucketLower(BucketIndex(us));
}

double LatencyHistogram::BucketUpperBound(double us) {
  return BucketLower(BucketIndex(us) + 1);
}

void LatencyHistogram::Add(double us) {
  buckets_[BucketIndex(us)] += 1;
  exact_.Add(us);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  exact_.Merge(other.exact_);
}

double LatencyHistogram::Percentile(double p) const {
  GROUTING_CHECK(p >= 0.0 && p <= 100.0);
  const int64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  // Same rank convention as the exact Percentile() above, so the two agree
  // up to bucket resolution on identical samples.
  const double rank = p / 100.0 * static_cast<double>(n - 1);
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const auto in_bucket = static_cast<int64_t>(buckets_[i]);
    if (static_cast<double>(seen + in_bucket) > rank) {
      // Interpolate within the bucket by rank position, then clamp into the
      // observed value range so extreme quantiles never exceed the true
      // min/max.
      const double frac =
          in_bucket <= 1 ? 0.5
                         : (rank - static_cast<double>(seen)) /
                               static_cast<double>(in_bucket - 1);
      const double lo = BucketLower(i);
      const double hi = BucketLower(i + 1);
      const double v = lo + frac * (hi - lo);
      return std::min(std::max(v, min()), max());
    }
    seen += in_bucket;
  }
  return max();
}

double Percentile(std::vector<double> samples, double p) {
  GROUTING_CHECK(p >= 0.0 && p <= 100.0);
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace grouting
