#include "src/util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "src/util/check.h"

namespace grouting {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GROUTING_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  GROUTING_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  return s;
}

std::string Table::Int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return std::string(buf);
}

std::string Table::Bytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  return std::string(buf);
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " | ";
    }
    line.pop_back();
    line += "\n";
    return line;
  };

  std::string sep = "+";
  for (size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "+";
  }
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += sep;
  return out;
}

uint64_t ParseByteSize(const std::string& text) {
  if (text.empty()) {
    return 0;
  }
  size_t i = 0;
  uint64_t value = 0;
  bool any_digit = false;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<uint64_t>(text[i] - '0');
    any_digit = true;
    ++i;
  }
  if (!any_digit) {
    return 0;
  }
  std::string unit = text.substr(i);
  std::transform(unit.begin(), unit.end(), unit.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (unit.empty() || unit == "B") {
    return value;
  }
  if (unit == "KB" || unit == "K") {
    return value << 10;
  }
  if (unit == "MB" || unit == "M") {
    return value << 20;
  }
  if (unit == "GB" || unit == "G") {
    return value << 30;
  }
  if (unit == "TB" || unit == "T") {
    return value << 40;
  }
  return 0;
}

}  // namespace grouting
