// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (graph generators, workload
// generators, random-walk queries, Nelder-Mead restarts) take an explicit
// seed so that every experiment is exactly reproducible. We implement
// SplitMix64 (for seeding) and Xoshiro256** (for bulk generation) rather
// than using std::mt19937 because their state is small, they are much
// faster, and their output is stable across standard library versions.

#ifndef GROUTING_SRC_UTIL_RNG_H_
#define GROUTING_SRC_UTIL_RNG_H_

#include <cstdint>
#include <limits>

#include "src/util/check.h"

namespace grouting {

// SplitMix64: tiny generator used to expand a 64-bit seed into larger state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: general-purpose generator. Satisfies the subset of
// UniformRandomBitGenerator we need.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    GROUTING_DCHECK(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    GROUTING_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller (sufficient quality for embedding init).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-12) {
      u1 = NextDouble();
    }
    constexpr double kTwoPi = 6.283185307179586476925;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) * __builtin_cos(kTwoPi * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Fisher-Yates shuffle of a random-access container.
template <typename Container>
void Shuffle(Container& c, Rng& rng) {
  const size_t n = c.size();
  for (size_t i = n; i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace grouting

#endif  // GROUTING_SRC_UTIL_RNG_H_
