// Real multi-threaded execution of the decoupled architecture, running the
// SAME strategies, caches, executors and storage tier as the simulator —
// but on actual threads with actual concurrency:
//
//   router thread  : routes arrivals onto per-processor channels using live
//                    queue lengths as load,
//   P processor threads : drain their channel; when empty they STEAL from
//                    the longest sibling channel,
//   storage tier   : shared, internally synchronised per server.
//
// The simulator answers "what would the paper's cluster do"; this runtime
// answers "does the system actually work under real concurrency" — examples
// and integration tests run on it, and the cross-engine parity test
// enforces that both give identical query answers.
//
// This is the EngineKind::kThreaded implementation of ClusterEngine. Every
// query carries wall-clock timestamps (routed, dispatched, completed), so
// the runtime reports the same response-time and queue-wait statistics as
// the simulator.

#ifndef GROUTING_SRC_RUNTIME_THREADED_CLUSTER_H_
#define GROUTING_SRC_RUNTIME_THREADED_CLUSTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/util/mpmc_queue.h"

namespace grouting {

class ThreadedCluster : public ClusterEngine {
 public:
  ThreadedCluster(const Graph& graph, const ClusterConfig& config,
                  std::unique_ptr<RoutingStrategy> strategy,
                  const PartitionAssignment* placement = nullptr);
  ~ThreadedCluster() override;

  EngineKind kind() const override { return EngineKind::kThreaded; }

  // Runs the workload to completion; answers (in completion order) are
  // available via answers() afterwards. May be called once per instance.
  ClusterMetrics Run(std::span<const Query> queries) override;

 private:
  using Clock = std::chrono::steady_clock;

  // A query travelling through a processor channel, stamped at routing time
  // so the dispatching processor can account the queue wait.
  struct Routed {
    Query query;
    Clock::time_point routed_at;
  };

  // Per-processor latency samples (µs), written only by the owning thread
  // and read after all threads joined. Response times keep raw samples for
  // the percentile; queue waits only feed a mean, so a RunningStat suffices.
  struct LatencySamples {
    std::vector<double> response_us;
    RunningStat queue_wait_us;
  };

  void ProcessorLoop(uint32_t p);
  bool StealInto(uint32_t thief, Routed* out);

  std::unique_ptr<RoutingStrategy> strategy_;
  std::vector<std::unique_ptr<MpmcQueue<Routed>>> channels_;
  std::vector<LatencySamples> samples_;
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> remaining_{0};
  MpmcQueue<AnsweredQuery> completions_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace grouting

#endif  // GROUTING_SRC_RUNTIME_THREADED_CLUSTER_H_
