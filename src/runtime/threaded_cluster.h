// Real multi-threaded execution of the decoupled architecture, running the
// SAME strategies, caches, executors and storage tier as the simulator —
// but on actual threads with actual concurrency:
//
//   router thread  : routes arrivals onto per-processor channels using live
//                    queue lengths as load,
//   P processor threads : drain their channel; when empty they STEAL from
//                    the longest sibling channel,
//   storage tier   : shared, internally synchronised per server.
//
// The simulator answers "what would the paper's cluster do"; this runtime
// answers "does the system actually work under real concurrency" — examples
// and integration tests run on it, and cross-engine tests assert both give
// identical query answers.

#ifndef GROUTING_SRC_RUNTIME_THREADED_CLUSTER_H_
#define GROUTING_SRC_RUNTIME_THREADED_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/proc/processor.h"
#include "src/query/query.h"
#include "src/routing/strategy.h"
#include "src/storage/storage_tier.h"
#include "src/util/mpmc_queue.h"

namespace grouting {

struct ThreadedConfig {
  uint32_t num_processors = 4;
  uint32_t num_storage_servers = 2;
  ProcessorConfig processor;
  bool enable_stealing = true;
  // Optional injected one-way network delay per storage batch (busy-wait,
  // microseconds). 0 = run at memory speed.
  double injected_network_us = 0.0;
};

struct ThreadedMetrics {
  uint64_t queries = 0;
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t steals = 0;
  std::vector<uint64_t> queries_per_processor;
};

class ThreadedCluster {
 public:
  ThreadedCluster(const Graph& graph, ThreadedConfig config,
                  std::unique_ptr<RoutingStrategy> strategy);
  ~ThreadedCluster();

  ThreadedCluster(const ThreadedCluster&) = delete;
  ThreadedCluster& operator=(const ThreadedCluster&) = delete;

  // Runs the workload to completion. Results are returned in completion
  // order along with the id of the query that produced each.
  struct AnsweredQuery {
    uint64_t query_id;
    uint32_t processor;
    QueryResult result;
  };
  ThreadedMetrics Run(std::span<const Query> queries, std::vector<AnsweredQuery>* answers);

 private:
  void ProcessorLoop(uint32_t p);
  bool StealInto(uint32_t thief, Query* out);

  ThreadedConfig config_;
  std::unique_ptr<StorageTier> storage_;
  std::unique_ptr<RoutingStrategy> strategy_;
  std::vector<std::unique_ptr<QueryProcessor>> processors_;
  std::vector<std::unique_ptr<MpmcQueue<Query>>> channels_;
  std::vector<std::unique_ptr<std::mutex>> processor_mutexes_;  // serialise Execute
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> remaining_{0};
  MpmcQueue<AnsweredQuery> answers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace grouting

#endif  // GROUTING_SRC_RUNTIME_THREADED_CLUSTER_H_
