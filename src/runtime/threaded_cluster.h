// Real multi-threaded execution of the decoupled architecture, running the
// SAME strategies, caches, executors and storage tier as the simulator —
// but on actual threads with actual concurrency:
//
//   feeder thread  : (adaptive splitter, or arrival_gap_us > 0) walks the
//                    arrival stream in order — pacing the configured gap in
//                    wall time — and hands each query to its CURRENT shard
//                    via a per-shard arrival channel, so the assignment can
//                    change mid-run as sessions migrate. Static unpaced
//                    splitters keep the PR-2 path: slices cut up front, no
//                    feeder.
//   N router-shard threads : each routes its slice of the arrival stream
//                    onto per-processor channels with its OWN strategy
//                    instance, using live channel lengths as load,
//   gossip thread  : when sharded, periodically blends the shards' EMA
//                    state (mutex-light: one short lock per shard per tick)
//                    and — with the adaptive splitter — runs the arrival
//                    rebalance off the same tick: hot sessions migrate from
//                    the most- to the least-loaded shard, carrying strategy
//                    state via MergeRemoteState,
//   P processor threads : drain their channel; when empty they STEAL from
//                    the longest sibling channel; every dispatch is fed
//                    back to the routing shard's strategy (steal-aware),
//   P fetch threads : (max_inflight_batches > 1) each processor's async
//                    multiget handles are serviced on its own fetch thread:
//                    the gets run against the shared storage tier while the
//                    processor keeps probing its cache and merging earlier
//                    batches, and the handle completes only once the
//                    injected network round trip has elapsed — so up to
//                    `window` round trips overlap instead of serialising
//                    after execution as on the synchronous path,
//   storage tier   : shared, internally synchronised per server.
//
// The simulator answers "what would the paper's cluster do"; this runtime
// answers "does the system actually work under real concurrency" — examples
// and integration tests run on it, and the cross-engine parity test
// enforces that both give identical query answers.
//
// This is the EngineKind::kThreaded implementation of ClusterEngine. Every
// query carries wall-clock timestamps (routed, dispatched, completed), so
// the runtime reports the same response-time and queue-wait statistics as
// the simulator.

#ifndef GROUTING_SRC_RUNTIME_THREADED_CLUSTER_H_
#define GROUTING_SRC_RUNTIME_THREADED_CLUSTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/frontend/gossip.h"
#include "src/frontend/splitter.h"
#include "src/util/mpmc_queue.h"

namespace grouting {

class ThreadedCluster : public ClusterEngine {
 public:
  ThreadedCluster(const Graph& graph, const ClusterConfig& config,
                  std::unique_ptr<RoutingStrategy> strategy,
                  const PartitionAssignment* placement = nullptr);
  ~ThreadedCluster() override;

  EngineKind kind() const override { return EngineKind::kThreaded; }

  // Runs the workload to completion; answers (in completion order) are
  // available via answers() afterwards. May be called once per instance.
  ClusterMetrics Run(std::span<const Query> queries) override;

 private:
  using Clock = std::chrono::steady_clock;

  // A query travelling through a processor channel, stamped at routing time
  // so the dispatching processor can account the queue wait and feed the
  // dispatch decision back to the shard that routed it.
  struct Routed {
    Query query;
    Clock::time_point routed_at;
    uint32_t shard = 0;   // router shard that routed it
    uint32_t target = 0;  // processor the shard chose (pre-stealing)
  };

  // Per-processor latency samples (µs), written only by the owning thread
  // and read after all threads joined. Response times feed a log-bucketed
  // histogram (O(1) memory, mergeable across processors); queue waits only
  // feed a mean, so a RunningStat suffices.
  struct LatencySamples {
    LatencyHistogram response_us;
    RunningStat queue_wait_us;
    // Per-tenant completion tracking (multi-tenant federation); sized
    // config.num_tenants per processor, merged post-join.
    std::vector<LatencyHistogram> tenant_response_us;
    std::vector<uint64_t> tenant_queries;
  };

  void FeederLoop(std::span<const Query> queries);
  void RouterShardLoop(uint32_t shard, std::span<const Query> slice);
  void GossipLoop();
  void ProcessorLoop(uint32_t p);
  void FetchLoop(uint32_t p);
  // Mutation writer thread (config.enable_mutations with a timed schedule):
  // walks the schedule's apply_us > 0 entries in order, pacing each to its
  // offset from the run epoch — the wall-clock counterpart of the sim's
  // virtual-time mutation events — and applies it against the live tier
  // while processor / fetch / gossip threads keep serving. Once the run has
  // drained, remaining entries apply immediately (unpaced), so every
  // schedule entry is applied exactly once on both engines.
  void WriterLoop(Clock::time_point epoch);
  bool StealInto(uint32_t thief, Routed* out);

  // One router shard: its own strategy instance behind its own mutex. The
  // mutex is uncontended outside gossip ticks and steal feedback.
  struct RouterShard {
    std::unique_ptr<RoutingStrategy> strategy;
    std::mutex mu;
    // Written by the owning shard thread, read by the gossip/rebalance tick.
    std::atomic<uint64_t> routed{0};
  };

  std::vector<std::unique_ptr<RouterShard>> shards_;
  std::vector<std::unique_ptr<MpmcQueue<Routed>>> channels_;
  std::vector<LatencySamples> samples_;
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> remaining_{0};
  MpmcQueue<AnsweredQuery> completions_;
  std::vector<std::thread> threads_;
  std::vector<std::thread> router_threads_;
  std::thread gossip_thread_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> gossip_stop_{false};
  GossipStats gossip_stats_;  // written by the gossip thread, read post-join
  // Router-shard gossip actually has state to blend (vs the tick existing
  // only to drive storage repartitioning). Decided in Run().
  bool router_gossip_ = false;
  // Wall time the gossip tick spent migrating partitions (copy + drain +
  // delete); written by the gossip thread, read post-join.
  double repartition_stall_us_ = 0.0;

  // Arrival splitter. Static splitters consume it single-threaded in Run();
  // the adaptive splitter is shared between the feeder thread (ShardFor) and
  // the gossip tick (Rebalance) behind splitter_mu_.
  ArrivalSplitter splitter_;
  std::mutex splitter_mu_;
  RebalanceConfig rebalance_;
  bool adaptive_;    // adaptive splitter: rebalance at gossip ticks
  bool use_feeder_;  // feeder + arrival-channel mode (adaptive, paced, or
                     // open-loop)
  // Per-tenant admission decisions for the run's schedule, computed in
  // Run() before any thread spawns (so feeder and pre-slice agree) and
  // identical to the simulated engine's plan for the same schedule.
  AdmissionPlan admission_plan_;
  std::vector<std::unique_ptr<MpmcQueue<Query>>> arrival_channels_;
  std::thread feeder_thread_;
  std::thread writer_thread_;
  std::atomic<bool> arrivals_done_{false};
  std::atomic<uint64_t> sessions_migrated_{0};

  // Wall-clock tracers, one per processor thread and one per router-shard
  // thread (each written only by its owning thread into its own ring).
  // Constructed in Run() — all sharing the run's epoch — before any thread
  // spawns; empty when tracing is off.
  std::vector<WallTracer> proc_tracers_;
  std::vector<WallTracer> shard_tracers_;

  // Async fetch pipeline (config.processor.max_inflight_batches > 1): a
  // per-processor request queue + fetch thread pair; executors are installed
  // on the processors' sources only while the fetch threads run.
  bool async_fetch_;
  std::vector<std::unique_ptr<MpmcQueue<std::shared_ptr<MultiGetHandle>>>> fetch_queues_;
  std::vector<std::unique_ptr<BatchFetchExecutor>> fetch_executors_;
  std::vector<std::thread> fetch_threads_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_RUNTIME_THREADED_CLUSTER_H_
