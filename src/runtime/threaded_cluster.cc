#include "src/runtime/threaded_cluster.h"

#include <utility>

namespace grouting {
namespace {

void BusyWaitUs(double us) {
  if (us <= 0.0) {
    return;
  }
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(static_cast<int64_t>(us * 1000.0));
  while (std::chrono::steady_clock::now() < until) {
    // spin: injected delays are microseconds; sleeping would oversleep 100x
  }
}

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

ThreadedCluster::ThreadedCluster(const Graph& graph, const ClusterConfig& config,
                                 std::unique_ptr<RoutingStrategy> strategy,
                                 const PartitionAssignment* placement)
    : ClusterEngine(graph, config, placement), strategy_(std::move(strategy)) {
  GROUTING_CHECK(strategy_ != nullptr);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    channels_.push_back(std::make_unique<MpmcQueue<Routed>>());
  }
  samples_.resize(config_.num_processors);
}

ThreadedCluster::~ThreadedCluster() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& ch : channels_) {
    ch->Close();
  }
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

bool ThreadedCluster::StealInto(uint32_t thief, Routed* out) {
  // Scan for the longest sibling channel; take its oldest pending query.
  // (The DES router steals the newest; with MPMC channels the oldest is the
  // lock-free-friendly end. The balance property is identical.)
  uint32_t victim = thief;
  size_t longest = 0;
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    if (p == thief) {
      continue;
    }
    const size_t len = channels_[p]->Size();
    if (len > longest) {
      longest = len;
      victim = p;
    }
  }
  if (victim == thief) {
    return false;
  }
  auto stolen = channels_[victim]->TryPop();
  if (!stolen.has_value()) {
    return false;
  }
  *out = *stolen;
  steals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadedCluster::ProcessorLoop(uint32_t p) {
  LatencySamples& samples = samples_[p];
  while (!shutdown_.load(std::memory_order_acquire) &&
         remaining_.load(std::memory_order_acquire) > 0) {
    Routed routed;
    auto own = channels_[p]->TryPop();
    if (own.has_value()) {
      routed = *own;
    } else if (!config_.enable_stealing || !StealInto(p, &routed)) {
      std::this_thread::yield();
      continue;
    }
    const auto dispatched = Clock::now();
    samples.queue_wait_us.Add(ElapsedUs(routed.routed_at, dispatched));
    QueryResult result = processors_[p]->Execute(routed.query);
    if (config_.injected_network_us > 0.0) {
      // Two one-way hops per storage batch of the query just executed.
      const auto batches = processors_[p]->last_trace().batches.size();
      BusyWaitUs(2.0 * config_.injected_network_us * static_cast<double>(batches));
    }
    samples.response_us.push_back(ElapsedUs(dispatched, Clock::now()));
    completions_.Push(AnsweredQuery{routed.query.id, p, result});
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

ClusterMetrics ThreadedCluster::Run(std::span<const Query> queries) {
  GROUTING_CHECK_MSG(!ran_, "ThreadedCluster::Run may only be called once");
  ran_ = true;
  answers_.reserve(queries.size());
  remaining_.store(queries.size(), std::memory_order_release);

  const auto start = Clock::now();
  threads_.reserve(config_.num_processors);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    threads_.emplace_back([this, p] { ProcessorLoop(p); });
  }

  // This thread is the router: route every arrival using live channel
  // lengths as the load signal.
  std::vector<uint32_t> lengths(config_.num_processors, 0);
  RouterContext ctx;
  ctx.num_processors = config_.num_processors;
  for (const Query& q : queries) {
    for (uint32_t p = 0; p < config_.num_processors; ++p) {
      lengths[p] = static_cast<uint32_t>(channels_[p]->Size());
    }
    ctx.queue_lengths = lengths;
    const uint32_t target = strategy_->Route(q.node, ctx);
    GROUTING_CHECK(target < config_.num_processors);
    strategy_->OnDispatch(q.node, target);
    channels_[target]->Push(Routed{q, Clock::now()});
  }

  // Wait for completion, collecting answers as they arrive.
  while (answers_.size() < queries.size()) {
    auto a = completions_.Pop();
    if (!a.has_value()) {
      break;
    }
    answers_.push_back(*a);
  }
  const auto end = Clock::now();

  shutdown_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    t.join();
  }
  threads_.clear();

  ClusterMetrics m;
  m.queries = answers_.size();
  m.makespan_us = ElapsedUs(start, end);
  m.throughput_qps =
      m.makespan_us > 0.0 ? static_cast<double>(m.queries) / (m.makespan_us / 1e6) : 0.0;
  std::vector<double> response_us;
  RunningStat queue_wait_us;
  m.queries_per_processor.assign(config_.num_processors, 0);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    response_us.insert(response_us.end(), samples_[p].response_us.begin(),
                       samples_[p].response_us.end());
    queue_wait_us.Merge(samples_[p].queue_wait_us);
    m.queries_per_processor[p] = processors_[p]->stats().queries_executed;
  }
  FillLatencyStats(&m, std::move(response_us), queue_wait_us);
  AddProcessorStats(&m);
  m.steals = steals_.load(std::memory_order_relaxed);
  return m;
}

}  // namespace grouting
