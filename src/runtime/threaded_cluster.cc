#include "src/runtime/threaded_cluster.h"

#include <deque>
#include <utility>

namespace grouting {
namespace {

// Routes a processor's multiget handles onto its fetch thread. If the queue
// is already closed (shutdown), the handle is serviced inline so no waiter
// is ever stranded.
class QueueFetchExecutor : public BatchFetchExecutor {
 public:
  explicit QueueFetchExecutor(MpmcQueue<std::shared_ptr<MultiGetHandle>>* queue)
      : queue_(queue) {}

  void Submit(std::shared_ptr<MultiGetHandle> handle) override {
    if (!queue_->Push(handle)) {
      handle->Execute();
    }
  }

 private:
  MpmcQueue<std::shared_ptr<MultiGetHandle>>* queue_;
};

void BusyWaitUs(double us) {
  if (us <= 0.0) {
    return;
  }
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(static_cast<int64_t>(us * 1000.0));
  while (std::chrono::steady_clock::now() < until) {
    // spin: injected delays are microseconds; sleeping would oversleep 100x
  }
}

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

ThreadedCluster::ThreadedCluster(const Graph& graph, const ClusterConfig& config,
                                 std::unique_ptr<RoutingStrategy> strategy,
                                 const PartitionAssignment* placement)
    : ClusterEngine(graph, config, placement),
      splitter_(config.router_splitter, config.num_router_shards,
                config.router_session_capacity) {
  GROUTING_CHECK(strategy != nullptr);
  rebalance_.threshold = config_.router_rebalance_threshold;
  rebalance_.migration_cap = config_.router_migration_cap;
  adaptive_ = config_.num_router_shards > 1 &&
              config_.router_splitter == SplitterKind::kAdaptive;
  // The feeder thread is what lets the assignment change mid-run (adaptive)
  // or arrivals be paced in wall time (arrival_gap_us, or the open-loop
  // schedule's own arrive_us timestamps); otherwise the PR-2 pre-sliced
  // path is kept byte-for-byte.
  use_feeder_ =
      adaptive_ || config_.arrival_gap_us > 0.0 || config_.open_loop_arrivals;
  shards_.reserve(config_.num_router_shards);
  for (uint32_t s = 1; s < config_.num_router_shards; ++s) {
    auto clone = strategy->Clone();
    GROUTING_CHECK_MSG(clone != nullptr,
                       "num_router_shards > 1 requires a Clone()-able strategy");
    auto shard = std::make_unique<RouterShard>();
    shard->strategy = std::move(clone);
    shards_.push_back(std::move(shard));
  }
  auto shard0 = std::make_unique<RouterShard>();
  shard0->strategy = std::move(strategy);
  shards_.insert(shards_.begin(), std::move(shard0));
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    channels_.push_back(std::make_unique<MpmcQueue<Routed>>());
  }
  if (use_feeder_) {
    for (uint32_t s = 0; s < config_.num_router_shards; ++s) {
      arrival_channels_.push_back(std::make_unique<MpmcQueue<Query>>());
    }
  }
  async_fetch_ = config_.processor.max_inflight_batches > 1;
  if (async_fetch_) {
    for (uint32_t p = 0; p < config_.num_processors; ++p) {
      fetch_queues_.push_back(
          std::make_unique<MpmcQueue<std::shared_ptr<MultiGetHandle>>>());
      fetch_executors_.push_back(
          std::make_unique<QueueFetchExecutor>(fetch_queues_.back().get()));
    }
  }
  samples_.resize(config_.num_processors);
  for (auto& s : samples_) {
    s.tenant_response_us.resize(config_.num_tenants);
    s.tenant_queries.assign(config_.num_tenants, 0);
  }
}

ThreadedCluster::~ThreadedCluster() {
  shutdown_.store(true, std::memory_order_release);
  gossip_stop_.store(true, std::memory_order_release);
  for (auto& ch : arrival_channels_) {
    ch->Close();
  }
  for (auto& ch : channels_) {
    ch->Close();
  }
  // Closing the fetch queues before joining the processors is what keeps
  // shutdown deadlock-free: queued handles are still drained (and completed)
  // by their fetch thread, and submissions after the close run inline.
  for (auto& q : fetch_queues_) {
    q->Close();
  }
  if (feeder_thread_.joinable()) {
    feeder_thread_.join();
  }
  if (writer_thread_.joinable()) {
    writer_thread_.join();
  }
  for (auto& t : router_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (gossip_thread_.joinable()) {
    gossip_thread_.join();
  }
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  for (auto& t : fetch_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

bool ThreadedCluster::StealInto(uint32_t thief, Routed* out) {
  // Scan for the longest sibling channel; take its oldest pending query.
  // (The DES router steals the newest; with MPMC channels the oldest is the
  // lock-free-friendly end. The balance property is identical.)
  uint32_t victim = thief;
  size_t longest = 0;
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    if (p == thief) {
      continue;
    }
    const size_t len = channels_[p]->Size();
    if (len > longest) {
      longest = len;
      victim = p;
    }
  }
  if (victim == thief) {
    return false;
  }
  auto stolen = channels_[victim]->TryPop();
  if (!stolen.has_value()) {
    return false;
  }
  *out = *stolen;
  steals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadedCluster::FeederLoop(std::span<const Query> queries) {
  // The splitter is sequential state, so one thread walks the arrival stream
  // in order; between any two arrivals the gossip tick may migrate sessions
  // under the same mutex, changing where the NEXT arrival of a session goes.
  // A configured arrival gap is paced here in wall time — the threaded
  // counterpart of the simulator's virtual-time arrival events, and what
  // lets gossip/rebalance ticks interleave with the stream on real threads.
  // Open-loop schedules pace to each query's absolute arrive_us from the
  // loop's epoch instead (sleep coarse, spin the last stretch), so the wall
  // clock replays the same Poisson schedule the simulator fires in virtual
  // time. Shed arrivals are paced but never handed to a shard — admission
  // happens at the splitter, and the schedule's timing is unaffected.
  const auto epoch = Clock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    if (shutdown_.load(std::memory_order_acquire)) {
      break;
    }
    if (config_.open_loop_arrivals && q.arrive_us >= 0.0) {
      const auto target =
          epoch + std::chrono::nanoseconds(
                      static_cast<int64_t>(q.arrive_us * 1000.0));
      auto now = Clock::now();
      if (target - now > std::chrono::microseconds(200)) {
        std::this_thread::sleep_until(target - std::chrono::microseconds(100));
        now = Clock::now();
      }
      while (now < target) {
        now = Clock::now();
      }
    } else {
      BusyWaitUs(config_.arrival_gap_us);
    }
    if (!admission_plan_.Admitted(i)) {
      continue;
    }
    uint32_t shard;
    {
      std::lock_guard<std::mutex> lock(splitter_mu_);
      shard = splitter_.ShardFor(q);
    }
    arrival_channels_[shard]->Push(q);
  }
  arrivals_done_.store(true, std::memory_order_release);
  for (auto& ch : arrival_channels_) {
    ch->Close();  // shard threads drain what remains, then exit
  }
}

void ThreadedCluster::RouterShardLoop(uint32_t shard, std::span<const Query> slice) {
  RouterShard& rs = *shards_[shard];
  WallTracer* tracer = shard_tracers_.empty() ? nullptr : &shard_tracers_[shard];
  std::vector<uint32_t> lengths(config_.num_processors, 0);
  RouterContext ctx;
  ctx.num_processors = config_.num_processors;
  const auto route_one = [&](const Query& q) {
    const bool traced = tracer != nullptr && tracer->Sample(q.id);
    if (traced) {
      tracer->Instant(TraceEventType::kArrival, tracer->NowUs(), q.id, shard);
    }
    // Live channel lengths are the shared load signal: unlike the simulated
    // shards (which see only their own queues between gossip rounds), real
    // shards share the processor channels and read their depth directly.
    for (uint32_t p = 0; p < config_.num_processors; ++p) {
      lengths[p] = static_cast<uint32_t>(channels_[p]->Size());
    }
    ctx.queue_lengths = lengths;
    uint32_t target;
    {
      std::lock_guard<std::mutex> lock(rs.mu);
      target = rs.strategy->Route(q.node, ctx);
    }
    GROUTING_CHECK(target < config_.num_processors);
    rs.routed.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
      tracer->Instant(TraceEventType::kRouted, tracer->NowUs(), q.id, target);
    }
    channels_[target]->Push(Routed{q, Clock::now(), shard, target});
  };
  if (use_feeder_) {
    while (auto q = arrival_channels_[shard]->Pop()) {
      route_one(*q);
    }
  } else {
    for (const Query& q : slice) {
      route_one(q);
    }
  }
}

void ThreadedCluster::WriterLoop(Clock::time_point epoch) {
  for (const GraphMutation& m : mutation_schedule()) {
    if (m.apply_us <= 0.0) {
      continue;  // applied quiesced in Run(), before any thread spawned
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      break;  // destructor teardown mid-run: abandon the schedule
    }
    if (remaining_.load(std::memory_order_acquire) > 0) {
      // Same pacing discipline as the feeder: sleep coarse, spin the last
      // stretch to the entry's offset from the run epoch. A drained run
      // (remaining_ == 0) stops pacing — the tail of the schedule applies
      // back to back so both engines still apply every entry.
      const auto target =
          epoch +
          std::chrono::nanoseconds(static_cast<int64_t>(m.apply_us * 1000.0));
      auto now = Clock::now();
      if (target - now > std::chrono::microseconds(200)) {
        std::this_thread::sleep_until(target - std::chrono::microseconds(100));
        now = Clock::now();
      }
      while (now < target && remaining_.load(std::memory_order_acquire) > 0) {
        now = Clock::now();
      }
    }
    ApplyOneMutation(m);
  }
}

void ThreadedCluster::GossipLoop() {
  const auto period =
      std::chrono::duration<double, std::micro>(config_.gossip_period_us);
  const bool rebalance = adaptive_ && rebalance_.enabled();
  // Time base for the index-refresh period gate (wall µs since the loop
  // started — only differences are compared, so the epoch choice is free).
  const auto gossip_epoch = Clock::now();
  std::vector<RoutingStrategy*> views;
  std::vector<const RoutingStrategy*> const_views;
  std::vector<uint64_t> loads(shards_.size(), 0);
  views.reserve(shards_.size());
  const_views.reserve(shards_.size());
  for (auto& shard : shards_) {
    views.push_back(shard->strategy.get());
    const_views.push_back(shard->strategy.get());
  }
  while (!gossip_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    if (gossip_stop_.load(std::memory_order_acquire)) {
      break;
    }
    if (router_gossip_) {
      // One tick: take every shard's mutex (fixed order — other threads
      // only ever hold one at a time, so no deadlock) and run the SAME
      // blend the sim fleet runs, so the two engines' gossip semantics
      // cannot drift.
      std::vector<std::unique_lock<std::mutex>> locks;
      locks.reserve(shards_.size());
      for (auto& shard : shards_) {
        locks.emplace_back(shard->mu);
      }
      gossip_stats_.last_divergence_before = CrossShardStateDivergence(const_views);
      GossipBlendStrategies(views, config_.gossip_merge_weight);
      gossip_stats_.last_divergence_after = CrossShardStateDivergence(const_views);
      gossip_stats_.rounds += 1;
    }
    if (repartition_enabled()) {
      // Storage-tier repartitioning folded into the same tick, exactly like
      // the arrival rebalance: the round plans against the monitor's
      // decayed rates and physically migrates partitions while processor /
      // fetch threads keep serving — MigratePartition's copy-flip-drain-
      // delete order plus the processor-side miss re-resolution keep every
      // answer exactly-once. The stall metric is the tick's wall time spent
      // moving data.
      const auto mig_start = Clock::now();
      const auto executed = RepartitionRound();
      if (!executed.empty()) {
        repartition_stall_us_ += ElapsedUs(mig_start, Clock::now());
      }
    }
    if (config_.enable_mutations) {
      // Incremental index maintenance rides the same tick, like every
      // other controller. The maintainer may touch routing-strategy index
      // state (landmark distances, embedding coordinates), so the pass
      // runs with EVERY shard mutex held — race-free against Route() on
      // the shard threads, same fixed-order locking as the blend above.
      std::vector<std::unique_lock<std::mutex>> locks;
      locks.reserve(shards_.size());
      for (auto& shard : shards_) {
        locks.emplace_back(shard->mu);
      }
      RunIndexMaintenance(ElapsedUs(gossip_epoch, Clock::now()));
    }
    if (rebalance && !arrivals_done_.load(std::memory_order_acquire)) {
      // Adaptive re-splitting folded into the same tick: snapshot the
      // shards' routed counts and migrate hot sessions. The O(sessions)
      // rebalance scan holds only the splitter mutex (stalling at most the
      // feeder, never the routing threads); the shard mutexes are retaken
      // briefly for the deduped strategy-state carry. Once the stream has
      // drained there is nothing left to re-split, so the tick stops
      // migrating — the simulator's gossip chain stops the same way.
      for (size_t s = 0; s < shards_.size(); ++s) {
        loads[s] = shards_[s]->routed.load(std::memory_order_relaxed);
      }
      std::vector<SessionMigration> migrations;
      {
        std::lock_guard<std::mutex> splitter_lock(splitter_mu_);
        migrations = splitter_.Rebalance(loads, rebalance_);
      }
      if (!migrations.empty()) {
        std::vector<std::unique_lock<std::mutex>> locks;
        locks.reserve(shards_.size());
        for (auto& shard : shards_) {
          locks.emplace_back(shard->mu);
        }
        ApplyMigrationCarry(views, migrations, rebalance_.state_carry_weight);
        sessions_migrated_.fetch_add(migrations.size(), std::memory_order_relaxed);
      }
    }
  }
}

void ThreadedCluster::FetchLoop(uint32_t p) {
  // The fetch thread plays the wire + remote server for its processor: it
  // services each multiget against the (internally synchronised) storage
  // tier as soon as the request is popped, but completes the handle only
  // once the injected round trip has elapsed. Because execution and
  // completion are decoupled, up to `window` round trips ripen
  // concurrently while the processor probes its cache — the wall-clock
  // overlap the async pipeline exists for. Completion order is FIFO, which
  // matches the processor's oldest-first Wait() order.
  std::deque<std::pair<std::shared_ptr<MultiGetHandle>, Clock::time_point>> pending;
  const auto rtt_base = std::chrono::nanoseconds(
      static_cast<int64_t>(2.0 * config_.injected_network_us * 1000.0));
  // Transfer time scales with the reply's wire bytes (the cost model's
  // per-KB term), so a compressed adjacency encoding genuinely shortens
  // the trip. Gated like the base term: injected_network_us == 0 keeps the
  // engine at memory speed.
  const double per_kb_us =
      config_.injected_network_us > 0.0 ? config_.cost.net.per_kb_us : 0.0;
  const auto ripen = [&pending] {
    while (!pending.empty() && Clock::now() >= pending.front().second) {
      pending.front().first->MarkDone();
      pending.pop_front();
    }
  };
  while (true) {
    std::optional<std::shared_ptr<MultiGetHandle>> request;
    if (pending.empty()) {
      request = fetch_queues_[p]->Pop();  // blocks; nullopt = closed + drained
      if (!request.has_value()) {
        break;
      }
    } else {
      // Keep servicing new requests while earlier round trips ripen — a
      // batch submitted during another's flight must start its own trip
      // immediately, or the window degenerates back to serial RTTs.
      request = fetch_queues_[p]->TryPop();
      if (!request.has_value()) {
        ripen();
        // Yield rather than hard-spin: ripening is dead time, and on a
        // core-starved host the processor thread needs the cycles more
        // than the completion needs sub-microsecond precision.
        std::this_thread::yield();
        continue;
      }
    }
    const auto sent_at = Clock::now();
    (*request)->ExecuteOnly();
    const auto transfer = std::chrono::nanoseconds(static_cast<int64_t>(
        per_kb_us * static_cast<double>((*request)->payload_bytes()) / 1024.0 *
        1000.0));
    pending.emplace_back(std::move(*request), sent_at + rtt_base + transfer);
    ripen();
  }
  while (!pending.empty()) {
    std::this_thread::yield();
    ripen();
  }
}

void ThreadedCluster::ProcessorLoop(uint32_t p) {
  LatencySamples& samples = samples_[p];
  WallTracer* tracer = proc_tracers_.empty() ? nullptr : &proc_tracers_[p];
  while (!shutdown_.load(std::memory_order_acquire) &&
         remaining_.load(std::memory_order_acquire) > 0) {
    Routed routed;
    auto own = channels_[p]->TryPop();
    if (own.has_value()) {
      routed = *own;
    } else if (!config_.enable_stealing || !StealInto(p, &routed)) {
      std::this_thread::yield();
      continue;
    }
    const auto dispatched = Clock::now();
    samples.queue_wait_us.Add(ElapsedUs(routed.routed_at, dispatched));
    if (tracer != nullptr && tracer->BeginQuery(routed.query.id)) {
      tracer->Span(TraceEventType::kQueueWait, tracer->AtUs(routed.routed_at),
                   tracer->AtUs(dispatched), 0, 0, routed.shard);
    }
    {
      // Dispatch feedback to the shard that routed this query: on a steal
      // (p != routed.target) the strategy learns the thief's cache is the
      // one actually being warmed. The hook fires for EVERY dispatch (the
      // contract tests/frontend_test.cc pins down); the mostly-uncontended
      // lock is nanoseconds against the microseconds each query costs.
      RouterShard& rs = *shards_[routed.shard];
      std::lock_guard<std::mutex> lock(rs.mu);
      rs.strategy->OnDispatch(routed.query.node, p, routed.target);
    }
    QueryResult result = processors_[p]->Execute(routed.query);
    if (config_.injected_network_us > 0.0 && !async_fetch_) {
      // Synchronous path: two one-way hops plus the per-KB transfer of each
      // storage batch of the query just executed, serialised after the
      // fact. The async pipeline incurs the same per-batch round trip
      // inside FetchLoop instead, where the trips overlap with each other
      // and with the processor's cache work.
      const auto& batches = processors_[p]->last_trace().batches;
      uint64_t wire_bytes = 0;
      for (const auto& b : batches) {
        wire_bytes += b.bytes;
      }
      const auto wait_start = Clock::now();
      BusyWaitUs(2.0 * config_.injected_network_us *
                     static_cast<double>(batches.size()) +
                 config_.cost.net.per_kb_us *
                     static_cast<double>(wire_bytes) / 1024.0);
      if (tracer != nullptr && tracer->active()) {
        // The post-hoc injected round trips are network exposure, not CPU.
        tracer->Span(TraceEventType::kStall, tracer->AtUs(wait_start),
                     tracer->NowUs(), 0, 0, batches.size());
      }
    }
    const auto completed = Clock::now();
    const double response_us = ElapsedUs(dispatched, completed);
    samples.response_us.Add(response_us);
    samples.tenant_response_us[routed.query.tenant].Add(response_us);
    ++samples.tenant_queries[routed.query.tenant];
    if (tracer != nullptr && tracer->active()) {
      tracer->Span(TraceEventType::kQuery, tracer->AtUs(dispatched),
                   tracer->AtUs(completed), 0, 0,
                   processors_[p]->last_trace().level_stats.size());
      tracer->EndQuery();
    }
    completions_.Push(AnsweredQuery{routed.query.id, p, result});
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

ClusterMetrics ThreadedCluster::Run(std::span<const Query> queries) {
  GROUTING_CHECK_MSG(!ran_, "ThreadedCluster::Run may only be called once");
  ran_ = true;

  // Per-tenant admission decisions, computed from the schedule's own
  // timestamps before any thread spawns — identical to the simulated
  // engine's plan for the same schedule, so both engines shed the same
  // arrivals. Only admitted queries count towards run completion.
  admission_plan_ = PlanAdmission(queries);
  answers_.reserve(admission_plan_.admitted);
  remaining_.store(admission_plan_.admitted, std::memory_order_release);

  // Quiesced mutation entries (apply_us <= 0) land now, before any worker
  // thread exists — the deterministic mode the cross-engine parity tests
  // run in. Timed entries are paced by the writer thread below.
  ApplyQuiescedMutations();

  // Static splitters cut the arrival stream into per-shard slices up front
  // (deterministic in arrival order, same cut the simulated engine's fleet
  // makes). The adaptive splitter cannot pre-slice — session migrations
  // re-route arrivals mid-run — so a feeder thread walks the stream instead.
  const uint32_t num_shards = static_cast<uint32_t>(shards_.size());
  std::vector<std::vector<Query>> slices(num_shards);
  if (!use_feeder_) {
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!admission_plan_.Admitted(i)) {
        continue;
      }
      slices[splitter_.ShardFor(queries[i])].push_back(queries[i]);
    }
  }

  // Spawn the gossip tick only when it has work: EMA state to blend, an
  // adaptive rebalance to drive, or storage-tier repartition rounds to run.
  // Stateless strategies under a static splitter would pay the per-tick
  // locks and clones for a guaranteed no-op. Decided before any thread can
  // touch the strategies.
  router_gossip_ = num_shards > 1 && config_.gossip_period_us > 0.0 &&
                   (!shards_[0]->strategy->GossipState().empty() ||
                    (adaptive_ && rebalance_.enabled()));
  const bool gossip =
      router_gossip_ || ((repartition_enabled() || config_.enable_mutations) &&
                         config_.gossip_period_us > 0.0);

  const auto start = Clock::now();
  if (tracer_ != nullptr) {
    // One tracer per thread-owned ring, all sharing the run epoch. Built
    // before ANY worker spawns so the vectors never reallocate while a
    // thread holds a pointer into them.
    proc_tracers_.reserve(config_.num_processors);
    shard_tracers_.reserve(num_shards);
    for (uint32_t p = 0; p < config_.num_processors; ++p) {
      proc_tracers_.emplace_back(&tracer_->processor_ring(p), p,
                                 tracer_->sample_every_n(), start);
      processors_[p]->set_tracer(&proc_tracers_[p]);
    }
    for (uint32_t s = 0; s < num_shards; ++s) {
      shard_tracers_.emplace_back(&tracer_->shard_ring(s),
                                  tracer_->num_processors() + s,
                                  tracer_->sample_every_n(), start);
    }
  }
  if (async_fetch_) {
    // Fetch threads first, and only then the executor seam: a processor
    // must never submit a handle nobody will service.
    fetch_threads_.reserve(config_.num_processors);
    for (uint32_t p = 0; p < config_.num_processors; ++p) {
      fetch_threads_.emplace_back([this, p] { FetchLoop(p); });
      processors_[p]->set_fetch_executor(fetch_executors_[p].get());
    }
  }
  threads_.reserve(config_.num_processors);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    threads_.emplace_back([this, p] { ProcessorLoop(p); });
  }
  router_threads_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    router_threads_.emplace_back(
        [this, s, &slices] { RouterShardLoop(s, slices[s]); });
  }
  if (use_feeder_) {
    feeder_thread_ = std::thread([this, queries] { FeederLoop(queries); });
  }
  if (config_.enable_mutations && !mutation_schedule().empty()) {
    writer_thread_ = std::thread([this, start] { WriterLoop(start); });
  }
  if (gossip) {
    gossip_thread_ = std::thread([this] { GossipLoop(); });
  }

  // Wait for completion, collecting answers as they arrive. Shed arrivals
  // never produce an answer, so completion is the admitted count.
  while (answers_.size() < admission_plan_.admitted) {
    auto a = completions_.Pop();
    if (!a.has_value()) {
      break;
    }
    answers_.push_back(*a);
  }
  const auto end = Clock::now();

  if (feeder_thread_.joinable()) {
    feeder_thread_.join();
  }
  if (writer_thread_.joinable()) {
    // The writer applies its remaining entries unpaced once the run has
    // drained (remaining_ == 0 above), so this join is prompt and every
    // schedule entry has been applied exactly once.
    writer_thread_.join();
  }
  for (auto& t : router_threads_) {
    t.join();
  }
  router_threads_.clear();
  gossip_stop_.store(true, std::memory_order_release);
  if (gossip_thread_.joinable()) {
    gossip_thread_.join();
  }
  shutdown_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    t.join();
  }
  threads_.clear();
  for (auto& q : fetch_queues_) {
    q->Close();
  }
  for (auto& t : fetch_threads_) {
    t.join();
  }
  fetch_threads_.clear();

  ClusterMetrics m;
  m.queries = answers_.size();
  m.makespan_us = ElapsedUs(start, end);
  m.throughput_qps =
      m.makespan_us > 0.0 ? static_cast<double>(m.queries) / (m.makespan_us / 1e6) : 0.0;
  LatencyHistogram response_us;
  RunningStat queue_wait_us;
  std::vector<LatencyHistogram> tenant_response_us(config_.num_tenants);
  std::vector<uint64_t> tenant_queries(config_.num_tenants, 0);
  m.queries_per_processor.assign(config_.num_processors, 0);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    response_us.Merge(samples_[p].response_us);
    queue_wait_us.Merge(samples_[p].queue_wait_us);
    for (uint32_t t = 0; t < config_.num_tenants; ++t) {
      tenant_response_us[t].Merge(samples_[p].tenant_response_us[t]);
      tenant_queries[t] += samples_[p].tenant_queries[t];
    }
    m.queries_per_processor[p] = processors_[p]->stats().queries_executed;
  }
  FillLatencyStats(&m, response_us, queue_wait_us);
  AddProcessorStats(&m);
  AddTraceStats(&m);
  m.steals = steals_.load(std::memory_order_relaxed);
  m.queries_per_router_shard.assign(num_shards, 0);
  std::vector<const RoutingStrategy*> views;
  views.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    m.queries_per_router_shard[s] = shards_[s]->routed.load(std::memory_order_relaxed);
    views.push_back(shards_[s]->strategy.get());
  }
  m.gossip_rounds = gossip_stats_.rounds;
  m.router_ema_divergence = CrossShardStateDivergence(views);
  m.sessions_migrated = sessions_migrated_.load(std::memory_order_relaxed);
  m.sticky_evictions = splitter_.stats().evictions;
  m.router_load_imbalance = RoutedLoadImbalance(m.queries_per_router_shard);
  AddStorageTierStats(&m);
  m.repartition_stall_us = repartition_stall_us_;
  AddMutationStats(&m);
  FillTenantMetrics(&m, tenant_response_us, tenant_queries, admission_plan_);
  return m;
}

}  // namespace grouting
