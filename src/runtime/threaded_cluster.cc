#include "src/runtime/threaded_cluster.h"

#include <chrono>

namespace grouting {
namespace {

void BusyWaitUs(double us) {
  if (us <= 0.0) {
    return;
  }
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(static_cast<int64_t>(us * 1000.0));
  while (std::chrono::steady_clock::now() < until) {
    // spin: injected delays are microseconds; sleeping would oversleep 100x
  }
}

}  // namespace

ThreadedCluster::ThreadedCluster(const Graph& graph, ThreadedConfig config,
                                 std::unique_ptr<RoutingStrategy> strategy)
    : config_(config), strategy_(std::move(strategy)) {
  GROUTING_CHECK(config_.num_processors > 0);
  GROUTING_CHECK(config_.num_storage_servers > 0);
  GROUTING_CHECK(strategy_ != nullptr);
  storage_ = std::make_unique<StorageTier>(config_.num_storage_servers);
  storage_->LoadGraph(graph);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    processors_.push_back(
        std::make_unique<QueryProcessor>(p, storage_.get(), config_.processor));
    channels_.push_back(std::make_unique<MpmcQueue<Query>>());
  }
}

ThreadedCluster::~ThreadedCluster() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& ch : channels_) {
    ch->Close();
  }
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

bool ThreadedCluster::StealInto(uint32_t thief, Query* out) {
  // Scan for the longest sibling channel; take its oldest pending query.
  // (The DES router steals the newest; with MPMC channels the oldest is the
  // lock-free-friendly end. The balance property is identical.)
  uint32_t victim = thief;
  size_t longest = 0;
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    if (p == thief) {
      continue;
    }
    const size_t len = channels_[p]->Size();
    if (len > longest) {
      longest = len;
      victim = p;
    }
  }
  if (victim == thief) {
    return false;
  }
  auto stolen = channels_[victim]->TryPop();
  if (!stolen.has_value()) {
    return false;
  }
  *out = *stolen;
  steals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadedCluster::ProcessorLoop(uint32_t p) {
  while (!shutdown_.load(std::memory_order_acquire) &&
         remaining_.load(std::memory_order_acquire) > 0) {
    Query q;
    auto own = channels_[p]->TryPop();
    if (own.has_value()) {
      q = *own;
    } else if (!config_.enable_stealing || !StealInto(p, &q)) {
      std::this_thread::yield();
      continue;
    }
    QueryResult result = processors_[p]->Execute(q);
    if (config_.injected_network_us > 0.0) {
      // Two one-way hops per storage batch of the query just executed.
      const auto batches = processors_[p]->last_trace().batches.size();
      BusyWaitUs(2.0 * config_.injected_network_us * static_cast<double>(batches));
    }
    answers_.Push(AnsweredQuery{q.id, p, result});
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

ThreadedMetrics ThreadedCluster::Run(std::span<const Query> queries,
                                     std::vector<AnsweredQuery>* answers) {
  GROUTING_CHECK_MSG(threads_.empty(), "Run may only be called once");
  remaining_.store(queries.size(), std::memory_order_release);

  const auto start = std::chrono::steady_clock::now();
  threads_.reserve(config_.num_processors);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    threads_.emplace_back([this, p] { ProcessorLoop(p); });
  }

  // This thread is the router: route every arrival using live channel
  // lengths as the load signal.
  std::vector<uint32_t> lengths(config_.num_processors, 0);
  RouterContext ctx;
  ctx.num_processors = config_.num_processors;
  for (const Query& q : queries) {
    for (uint32_t p = 0; p < config_.num_processors; ++p) {
      lengths[p] = static_cast<uint32_t>(channels_[p]->Size());
    }
    ctx.queue_lengths = lengths;
    const uint32_t target = strategy_->Route(q.node, ctx);
    GROUTING_CHECK(target < config_.num_processors);
    channels_[target]->Push(q);
  }

  // Wait for completion, collecting answers as they arrive.
  uint64_t collected = 0;
  while (collected < queries.size()) {
    auto a = answers_.Pop();
    if (!a.has_value()) {
      break;
    }
    if (answers != nullptr) {
      answers->push_back(*a);
    }
    ++collected;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  shutdown_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    t.join();
  }
  threads_.clear();

  ThreadedMetrics m;
  m.queries = collected;
  m.wall_seconds = wall;
  m.throughput_qps = wall > 0.0 ? static_cast<double>(collected) / wall : 0.0;
  m.queries_per_processor.assign(config_.num_processors, 0);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    m.cache_hits += processors_[p]->stats().cache_hits;
    m.cache_misses += processors_[p]->stats().cache_misses;
    m.queries_per_processor[p] = processors_[p]->stats().queries_executed;
  }
  m.steals = steals_.load(std::memory_order_relaxed);
  return m;
}

}  // namespace grouting
