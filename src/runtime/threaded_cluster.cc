#include "src/runtime/threaded_cluster.h"

#include <utility>

namespace grouting {
namespace {

void BusyWaitUs(double us) {
  if (us <= 0.0) {
    return;
  }
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(static_cast<int64_t>(us * 1000.0));
  while (std::chrono::steady_clock::now() < until) {
    // spin: injected delays are microseconds; sleeping would oversleep 100x
  }
}

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

ThreadedCluster::ThreadedCluster(const Graph& graph, const ClusterConfig& config,
                                 std::unique_ptr<RoutingStrategy> strategy,
                                 const PartitionAssignment* placement)
    : ClusterEngine(graph, config, placement) {
  GROUTING_CHECK(strategy != nullptr);
  shards_.reserve(config_.num_router_shards);
  for (uint32_t s = 1; s < config_.num_router_shards; ++s) {
    auto clone = strategy->Clone();
    GROUTING_CHECK_MSG(clone != nullptr,
                       "num_router_shards > 1 requires a Clone()-able strategy");
    auto shard = std::make_unique<RouterShard>();
    shard->strategy = std::move(clone);
    shards_.push_back(std::move(shard));
  }
  auto shard0 = std::make_unique<RouterShard>();
  shard0->strategy = std::move(strategy);
  shards_.insert(shards_.begin(), std::move(shard0));
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    channels_.push_back(std::make_unique<MpmcQueue<Routed>>());
  }
  samples_.resize(config_.num_processors);
}

ThreadedCluster::~ThreadedCluster() {
  shutdown_.store(true, std::memory_order_release);
  gossip_stop_.store(true, std::memory_order_release);
  for (auto& ch : channels_) {
    ch->Close();
  }
  for (auto& t : router_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (gossip_thread_.joinable()) {
    gossip_thread_.join();
  }
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

bool ThreadedCluster::StealInto(uint32_t thief, Routed* out) {
  // Scan for the longest sibling channel; take its oldest pending query.
  // (The DES router steals the newest; with MPMC channels the oldest is the
  // lock-free-friendly end. The balance property is identical.)
  uint32_t victim = thief;
  size_t longest = 0;
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    if (p == thief) {
      continue;
    }
    const size_t len = channels_[p]->Size();
    if (len > longest) {
      longest = len;
      victim = p;
    }
  }
  if (victim == thief) {
    return false;
  }
  auto stolen = channels_[victim]->TryPop();
  if (!stolen.has_value()) {
    return false;
  }
  *out = *stolen;
  steals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadedCluster::RouterShardLoop(uint32_t shard, std::span<const Query> slice) {
  RouterShard& rs = *shards_[shard];
  std::vector<uint32_t> lengths(config_.num_processors, 0);
  RouterContext ctx;
  ctx.num_processors = config_.num_processors;
  for (const Query& q : slice) {
    // Live channel lengths are the shared load signal: unlike the simulated
    // shards (which see only their own queues between gossip rounds), real
    // shards share the processor channels and read their depth directly.
    for (uint32_t p = 0; p < config_.num_processors; ++p) {
      lengths[p] = static_cast<uint32_t>(channels_[p]->Size());
    }
    ctx.queue_lengths = lengths;
    uint32_t target;
    {
      std::lock_guard<std::mutex> lock(rs.mu);
      target = rs.strategy->Route(q.node, ctx);
    }
    GROUTING_CHECK(target < config_.num_processors);
    rs.routed += 1;
    channels_[target]->Push(Routed{q, Clock::now(), shard, target});
  }
}

void ThreadedCluster::GossipLoop() {
  const auto period =
      std::chrono::duration<double, std::micro>(config_.gossip_period_us);
  std::vector<RoutingStrategy*> views;
  std::vector<const RoutingStrategy*> const_views;
  views.reserve(shards_.size());
  const_views.reserve(shards_.size());
  for (auto& shard : shards_) {
    views.push_back(shard->strategy.get());
    const_views.push_back(shard->strategy.get());
  }
  while (!gossip_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    if (gossip_stop_.load(std::memory_order_acquire)) {
      break;
    }
    // One tick: take every shard's mutex (fixed order — other threads only
    // ever hold one at a time, so no deadlock) and run the SAME blend the
    // sim fleet runs, so the two engines' gossip semantics cannot drift.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto& shard : shards_) {
      locks.emplace_back(shard->mu);
    }
    gossip_stats_.last_divergence_before = CrossShardStateDivergence(const_views);
    GossipBlendStrategies(views, config_.gossip_merge_weight);
    gossip_stats_.last_divergence_after = CrossShardStateDivergence(const_views);
    gossip_stats_.rounds += 1;
  }
}

void ThreadedCluster::ProcessorLoop(uint32_t p) {
  LatencySamples& samples = samples_[p];
  while (!shutdown_.load(std::memory_order_acquire) &&
         remaining_.load(std::memory_order_acquire) > 0) {
    Routed routed;
    auto own = channels_[p]->TryPop();
    if (own.has_value()) {
      routed = *own;
    } else if (!config_.enable_stealing || !StealInto(p, &routed)) {
      std::this_thread::yield();
      continue;
    }
    const auto dispatched = Clock::now();
    samples.queue_wait_us.Add(ElapsedUs(routed.routed_at, dispatched));
    {
      // Dispatch feedback to the shard that routed this query: on a steal
      // (p != routed.target) the strategy learns the thief's cache is the
      // one actually being warmed. The hook fires for EVERY dispatch (the
      // contract tests/frontend_test.cc pins down); the mostly-uncontended
      // lock is nanoseconds against the microseconds each query costs.
      RouterShard& rs = *shards_[routed.shard];
      std::lock_guard<std::mutex> lock(rs.mu);
      rs.strategy->OnDispatch(routed.query.node, p, routed.target);
    }
    QueryResult result = processors_[p]->Execute(routed.query);
    if (config_.injected_network_us > 0.0) {
      // Two one-way hops per storage batch of the query just executed.
      const auto batches = processors_[p]->last_trace().batches.size();
      BusyWaitUs(2.0 * config_.injected_network_us * static_cast<double>(batches));
    }
    samples.response_us.push_back(ElapsedUs(dispatched, Clock::now()));
    completions_.Push(AnsweredQuery{routed.query.id, p, result});
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

ClusterMetrics ThreadedCluster::Run(std::span<const Query> queries) {
  GROUTING_CHECK_MSG(!ran_, "ThreadedCluster::Run may only be called once");
  ran_ = true;
  answers_.reserve(queries.size());
  remaining_.store(queries.size(), std::memory_order_release);

  // Cut the arrival stream into per-shard slices (deterministic in arrival
  // order, same cut the simulated engine's fleet makes).
  const uint32_t num_shards = static_cast<uint32_t>(shards_.size());
  ArrivalSplitter splitter(config_.router_splitter, num_shards);
  std::vector<std::vector<Query>> slices(num_shards);
  for (const Query& q : queries) {
    slices[splitter.ShardFor(q)].push_back(q);
  }

  // Only spawn the gossip tick when there is state to gossip: unlike the
  // simulated fleet (whose rounds also refresh remote-load views), real
  // shards read live channel lengths, so stateless strategies would pay
  // the per-tick locks and clones for a guaranteed no-op. Decided before
  // any thread can touch the strategies.
  const bool gossip = num_shards > 1 && config_.gossip_period_us > 0.0 &&
                      !shards_[0]->strategy->GossipState().empty();

  const auto start = Clock::now();
  threads_.reserve(config_.num_processors);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    threads_.emplace_back([this, p] { ProcessorLoop(p); });
  }
  router_threads_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    router_threads_.emplace_back(
        [this, s, &slices] { RouterShardLoop(s, slices[s]); });
  }
  if (gossip) {
    gossip_thread_ = std::thread([this] { GossipLoop(); });
  }

  // Wait for completion, collecting answers as they arrive.
  while (answers_.size() < queries.size()) {
    auto a = completions_.Pop();
    if (!a.has_value()) {
      break;
    }
    answers_.push_back(*a);
  }
  const auto end = Clock::now();

  for (auto& t : router_threads_) {
    t.join();
  }
  router_threads_.clear();
  gossip_stop_.store(true, std::memory_order_release);
  if (gossip_thread_.joinable()) {
    gossip_thread_.join();
  }
  shutdown_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    t.join();
  }
  threads_.clear();

  ClusterMetrics m;
  m.queries = answers_.size();
  m.makespan_us = ElapsedUs(start, end);
  m.throughput_qps =
      m.makespan_us > 0.0 ? static_cast<double>(m.queries) / (m.makespan_us / 1e6) : 0.0;
  std::vector<double> response_us;
  RunningStat queue_wait_us;
  m.queries_per_processor.assign(config_.num_processors, 0);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    response_us.insert(response_us.end(), samples_[p].response_us.begin(),
                       samples_[p].response_us.end());
    queue_wait_us.Merge(samples_[p].queue_wait_us);
    m.queries_per_processor[p] = processors_[p]->stats().queries_executed;
  }
  FillLatencyStats(&m, std::move(response_us), queue_wait_us);
  AddProcessorStats(&m);
  m.steals = steals_.load(std::memory_order_relaxed);
  m.queries_per_router_shard.assign(num_shards, 0);
  std::vector<const RoutingStrategy*> views;
  views.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    m.queries_per_router_shard[s] = shards_[s]->routed;
    views.push_back(shards_[s]->strategy.get());
  }
  m.gossip_rounds = gossip_stats_.rounds;
  m.router_ema_divergence = CrossShardStateDivergence(views);
  return m;
}

}  // namespace grouting
