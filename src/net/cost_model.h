// Cost model for the simulated cluster.
//
// The paper's cluster runs 40 Gbps Infiniband with RDMA (5-10 µs per
// RAMCloud get) and 10 Gbps Ethernet. We reproduce both as network profiles
// and add calibrated service/compute costs. Absolute values are documented
// constants — EXPERIMENTS.md compares result *shapes*, which depend on the
// ratios (network vs compute vs cache maintenance), not on the absolute
// microsecond numbers.

#ifndef GROUTING_SRC_NET_COST_MODEL_H_
#define GROUTING_SRC_NET_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace grouting {

// Simulated virtual time is measured in microseconds.
using SimTimeUs = double;

struct NetworkProfile {
  std::string name;
  // One-way propagation + protocol latency for a message (µs). A fetch round
  // trip costs 2x this plus serialisation.
  double one_way_us = 3.0;
  // Transfer cost per kilobyte of payload (µs/KB).
  double per_kb_us = 0.25;

  // 40 Gbps Infiniband with RDMA: RAMCloud-style ~6 µs round trip.
  static NetworkProfile Infiniband();
  // 10 Gbps Ethernet with kernel TCP stack: ~60 µs round trip.
  static NetworkProfile Ethernet();

  double RoundTripUs(uint64_t payload_bytes) const {
    return 2.0 * one_way_us + per_kb_us * static_cast<double>(payload_bytes) / 1024.0;
  }
};

struct CostModel {
  NetworkProfile net = NetworkProfile::Infiniband();

  // --- Storage tier (RAMCloud-like) ---
  // Fixed cost a storage server pays to service one (multi)get request.
  double storage_request_base_us = 2.0;
  // Marginal cost per value (adjacency entry) looked up and shipped. In
  // RAMCloud a pipelined get costs ~2-5 us per key end to end; this is the
  // dominant term of a cache miss, which is what makes hit rate translate
  // into response time (paper Figs. 9/14).
  double storage_per_value_us = 1.2;

  // --- Storage-tier repartitioning (src/partition/repartition.h) ---
  // Fixed cost to set up one partition migration (plan message, ownership
  // handshake), charged to both ends of the move on the simulated storage
  // timeline.
  double migration_base_us = 5.0;
  // Per-key cost to copy one value from the old to the new owner during a
  // migration. Together with migration_base_us this is what
  // ClusterMetrics::repartition_stall_us accumulates in virtual time.
  double migration_per_key_us = 0.3;

  // --- Online mutations (StorageTier::ApplyMutation) ---
  // Fixed cost to apply one mutation (version bump, write-path handshake),
  // charged in virtual time to the mutated key's owning server; with
  // replicas, every copy is written inside the same charge.
  double mutation_base_us = 3.0;
  // Per-blob cost of one versioned adjacency write (re-encode + store).
  // An edge mutation rewrites two blobs (both endpoint halves), a vertex
  // add one per tenant.
  double mutation_per_write_us = 0.8;
  // Incremental index maintenance (landmark re-estimate + embedding
  // coordinate solve), charged on the gossip cadence: fixed cost per
  // refresh pass plus a per-refreshed-node term.
  double index_refresh_base_us = 2.0;
  double index_refresh_per_node_us = 0.5;

  // --- Processing tier ---
  // Traversal compute per visited node (neighbour iteration, aggregation).
  double compute_per_node_us = 0.40;
  // Cost to open one async multiget batch (build request, doorbell) on the
  // issuing processor. Charged only on the async pipeline
  // (max_inflight_batches > 1); kept below cache_lookup_us-scale work so a
  // single-batch level loses almost nothing to going async.
  double batch_issue_us = 0.1;
  // Cache maintenance: probe cost per lookup, and insert cost (including
  // possible eviction) per miss brought into cache. These are what make a
  // too-small cache WORSE than no cache at all (paper Fig. 9).
  double cache_lookup_us = 0.05;
  double cache_insert_us = 0.15;
  // Decoding a delta+varint (v2) adjacency blob back into edge arrays:
  // fixed per-entry cost plus a per-edge term (varint decode + prefix sum).
  // Charged on every compressed cache hit and on every compressed blob
  // fetched from storage; zero-cost in raw mode by construction.
  double decompress_base_us = 0.1;
  double decompress_per_edge_us = 0.005;

  // --- Router ---
  // Fixed routing decision cost plus per-processor scan cost; Embed routing
  // additionally pays per-dimension (handled via RoutingDecisionUs).
  double route_base_us = 0.5;
  double route_per_proc_us = 0.02;

  // Named defaults.
  static CostModel InfinibandDefaults();
  static CostModel EthernetDefaults();
};

}  // namespace grouting

#endif  // GROUTING_SRC_NET_COST_MODEL_H_
