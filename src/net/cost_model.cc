#include "src/net/cost_model.h"

namespace grouting {

NetworkProfile NetworkProfile::Infiniband() {
  NetworkProfile p;
  p.name = "infiniband";
  p.one_way_us = 3.0;    // RDMA read ~6 µs round trip
  p.per_kb_us = 0.25;    // ~40 Gbps effective
  return p;
}

NetworkProfile NetworkProfile::Ethernet() {
  NetworkProfile p;
  p.name = "ethernet";
  p.one_way_us = 30.0;   // kernel TCP stack ~60 µs round trip
  p.per_kb_us = 0.85;    // ~10 Gbps effective
  return p;
}

CostModel CostModel::InfinibandDefaults() {
  CostModel m;
  m.net = NetworkProfile::Infiniband();
  return m;
}

CostModel CostModel::EthernetDefaults() {
  CostModel m;
  m.net = NetworkProfile::Ethernet();
  return m;
}

}  // namespace grouting
