// Query-lifecycle tracing: the observability layer both execution engines
// feed (docs/OBSERVABILITY.md).
//
// One TraceEvent schema covers the whole lifecycle of a query —
//
//   arrival -> splitter assignment -> routing decision -> queue wait ->
//   dispatch (ship) -> per-level multiget batch issue/complete ->
//   decompress -> hit/miss compute -> completion
//
// — on either engine: the simulator stamps spans with virtual time during
// replay, the threaded runtime with steady_clock (µs since the run's
// epoch). Events land in per-track ring buffers (one per processor plus
// one per router shard), each written by exactly one thread, so recording
// is lock-free: a relaxed bump of the single-producer cursor, no CAS, no
// mutex. Buffers are drained only after the run (post-join); when a buffer
// fills, new events are dropped and COUNTED (ClusterMetrics::
// trace_events_dropped) — sampling loss is visible, never silent.
//
// Tracing is opt-in per run: ClusterConfig::trace_sample_every_n == 0
// builds no recorder at all (the hot paths test one null pointer), and a
// positive N records every Nth query by id. A simulated run with tracing
// on is metric-identical to one with tracing off — recording is purely
// passive, it never schedules events or charges time.

#ifndef GROUTING_SRC_OBS_TRACE_H_
#define GROUTING_SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace grouting {

// One lifecycle phase. Spans carry a duration; instants a zero duration.
enum class TraceEventType : uint8_t {
  kArrival,    // instant: query entered the frontend (value = router shard)
  kRouted,     // instant: routing decision made (value = target processor)
  kQueueWait,  // span: routed/arrived -> dispatched to a processor
  kShip,       // span: routing decision cost + query shipping to the processor
  kQuery,      // span: dispatch -> completion (the paper's response time)
  kLevel,      // span: one traversal level (probe + fetch + compute)
  kBatch,      // span: one multiget batch, issue -> reply landed
  kStall,      // span: processor CPU idle, waiting on storage replies
  kDecode,     // span: decoding compressed adjacency blobs
  kCompute,    // span: probe/merge/insert/aggregate CPU work
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  double ts_us = 0.0;   // span start (virtual µs on sim, wall µs since epoch)
  double dur_us = 0.0;  // span duration; 0 for instants
  uint64_t query_id = 0;
  uint64_t value = 0;  // type-specific payload (shard, processor, batch values)
  uint32_t track = 0;  // owning track (see TraceRecorder's track layout)
  uint32_t server = 0;  // storage server (kBatch), else 0
  uint32_t level = 0;   // traversal level (kLevel/kBatch/kStall/kDecode)
  TraceEventType type = TraceEventType::kArrival;
};

// Bounded single-producer event log ("ring"): exactly one thread records
// into a given ring; readers only look after that thread quiesced (the sim's
// event loop returned / the threaded engine joined). Full ring = drop-newest
// (a truncated-at-the-end trace stays well formed; overwriting the oldest
// would orphan completion spans from their dispatches).
class TraceRing {
 public:
  explicit TraceRing(uint32_t capacity);

  // Lock-free, wait-free; drops (and counts) when the ring is full.
  void Record(const TraceEvent& e) {
    const uint64_t n = size_.load(std::memory_order_relaxed);
    if (n >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[n] = e;
    size_.store(n + 1, std::memory_order_release);
  }

  // Post-run accessors (not safe concurrently with Record).
  uint64_t recorded() const { return size_.load(std::memory_order_acquire); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  const TraceEvent* data() const { return slots_.data(); }

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> dropped_{0};
};

// Aggregate recording counters, surfaced as ClusterMetrics fields so a
// clipped trace is always detectable from the metrics alone.
struct TraceCounters {
  uint64_t recorded = 0;    // events stored across all rings
  uint64_t dropped = 0;     // events lost to full rings
  uint64_t high_water = 0;  // max events resident in any single ring
};

// The engine-owned trace sink: one ring per track. Track layout is
// [0, num_processors) for processor timelines and [num_processors,
// num_processors + num_shards) for router-shard timelines.
class TraceRecorder {
 public:
  TraceRecorder(uint32_t sample_every_n, uint32_t ring_capacity,
                uint32_t num_processors, uint32_t num_shards);

  // Deterministic sampling: query ids are workload-assigned, so both
  // engines (and repeat runs) sample the SAME queries.
  bool Sample(uint64_t query_id) const { return query_id % sample_every_n_ == 0; }
  uint32_t sample_every_n() const { return sample_every_n_; }

  uint32_t num_processors() const { return num_processors_; }
  uint32_t num_shards() const { return num_shards_; }
  TraceRing& processor_ring(uint32_t p) { return *rings_[p]; }
  TraceRing& shard_ring(uint32_t s) { return *rings_[num_processors_ + s]; }

  TraceCounters counters() const;

  // All recorded events, merged across rings and sorted by start time.
  // Post-run only.
  std::vector<TraceEvent> MergedEvents() const;

 private:
  uint32_t sample_every_n_;
  uint32_t num_processors_;
  uint32_t num_shards_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

// Wall-clock span recording for ONE track, used by exactly one thread of
// the threaded runtime (a processor thread, including the storage-source
// code it runs, or a router-shard thread). Wraps the track's ring with the
// run epoch and the per-query sampling state, so instrumentation sites
// reduce to `if (tracer && tracer->active()) { ... }`.
class WallTracer {
 public:
  using Clock = std::chrono::steady_clock;

  WallTracer(TraceRing* ring, uint32_t track, uint32_t sample_every_n,
             Clock::time_point epoch)
      : ring_(ring), track_(track), sample_every_n_(sample_every_n), epoch_(epoch) {}

  double NowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_).count();
  }
  double AtUs(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  bool Sample(uint64_t query_id) const { return query_id % sample_every_n_ == 0; }

  // Per-query scope (processor tracks): spans recorded between BeginQuery
  // and EndQuery carry the active query id.
  bool BeginQuery(uint64_t query_id) {
    active_ = Sample(query_id);
    query_id_ = query_id;
    return active_;
  }
  void EndQuery() { active_ = false; }
  bool active() const { return active_; }
  uint64_t query_id() const { return query_id_; }

  void Span(TraceEventType type, double start_us, double end_us, uint32_t level = 0,
            uint32_t server = 0, uint64_t value = 0) {
    TraceEvent e;
    e.ts_us = start_us;
    e.dur_us = end_us > start_us ? end_us - start_us : 0.0;
    e.query_id = query_id_;
    e.value = value;
    e.track = track_;
    e.server = server;
    e.level = level;
    e.type = type;
    ring_->Record(e);
  }

  // Instant events (router-shard tracks) carry an explicit query id: shard
  // threads have no Begin/End scope.
  void Instant(TraceEventType type, double ts_us, uint64_t query_id, uint64_t value) {
    TraceEvent e;
    e.ts_us = ts_us;
    e.query_id = query_id;
    e.value = value;
    e.track = track_;
    e.type = type;
    ring_->Record(e);
  }

 private:
  TraceRing* ring_;
  uint32_t track_;
  uint32_t sample_every_n_;
  Clock::time_point epoch_;
  bool active_ = false;
  uint64_t query_id_ = 0;
};

}  // namespace grouting

#endif  // GROUTING_SRC_OBS_TRACE_H_
