#include "src/obs/trace_export.h"

#include <cstdio>

namespace grouting {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool WriteChromeTrace(const std::string& path, std::span<const TraceEvent> events,
                      uint32_t num_processors, uint32_t num_shards,
                      const TraceMetadata& metadata) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WriteChromeTrace: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"displayTimeUnit\": \"ms\",\n  \"metadata\": {");
  bool first = true;
  for (const auto& [key, value] : metadata) {
    std::fprintf(f, "%s\n    \"%s\": \"%s\"", first ? "" : ",",
                 JsonEscape(key).c_str(), JsonEscape(value).c_str());
    first = false;
  }
  std::fprintf(f, "\n  },\n  \"traceEvents\": [");

  // Track naming: one fake process, one named thread per track. The sort
  // index keeps processors above router shards in the Perfetto timeline.
  first = true;
  for (uint32_t t = 0; t < num_processors + num_shards; ++t) {
    char name[48];
    if (t < num_processors) {
      std::snprintf(name, sizeof(name), "processor %u", t);
    } else {
      std::snprintf(name, sizeof(name), "router shard %u", t - num_processors);
    }
    std::fprintf(f,
                 "%s\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                 "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                 first ? "" : ",", t, name);
    std::fprintf(f,
                 ",\n    {\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, "
                 "\"tid\": %u, \"args\": {\"sort_index\": %u}}",
                 t, t);
    first = false;
  }

  for (const TraceEvent& e : events) {
    const bool span = e.dur_us > 0.0 || e.type == TraceEventType::kQueueWait ||
                      e.type == TraceEventType::kShip ||
                      e.type == TraceEventType::kQuery ||
                      e.type == TraceEventType::kLevel ||
                      e.type == TraceEventType::kBatch ||
                      e.type == TraceEventType::kStall ||
                      e.type == TraceEventType::kDecode ||
                      e.type == TraceEventType::kCompute;
    std::fprintf(f, "%s\n    {\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f, ",
                 first ? "" : ",", TraceEventTypeName(e.type), span ? "X" : "i",
                 e.ts_us);
    if (span) {
      std::fprintf(f, "\"dur\": %.3f, ", e.dur_us);
    } else {
      std::fprintf(f, "\"s\": \"t\", ");
    }
    std::fprintf(f,
                 "\"pid\": 1, \"tid\": %u, \"args\": {\"query_id\": %llu, "
                 "\"level\": %u, \"server\": %u, \"value\": %llu}}",
                 e.track, static_cast<unsigned long long>(e.query_id), e.level,
                 e.server, static_cast<unsigned long long>(e.value));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace grouting
