// Chrome-trace / Perfetto JSON export of a recorded query trace.
//
// The output is the Trace Event Format's JSON object form:
//
//   { "displayTimeUnit": "ms",
//     "metadata": { "engine": "...", "scheme": "...", ... },
//     "traceEvents": [ thread_name metadata, then one "X" (complete) event
//                      per span and one "i" (instant) event per instant ] }
//
// Timestamps are microseconds (virtual µs from the simulator, wall µs since
// the run epoch from the threaded runtime), which is exactly the unit the
// format expects. Load the file in ui.perfetto.dev or chrome://tracing;
// tools/analyze_trace.py consumes the same file for the latency-attribution
// breakdown (and schema validation with --validate).

#ifndef GROUTING_SRC_OBS_TRACE_EXPORT_H_
#define GROUTING_SRC_OBS_TRACE_EXPORT_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace.h"

namespace grouting {

// Free-form run description carried in the file's "metadata" object (scheme,
// engine, dataset, sampling) — what the analyzer keys its per-run rows on.
using TraceMetadata = std::vector<std::pair<std::string, std::string>>;

// Writes `events` (any order; typically TraceRecorder::MergedEvents) as a
// Chrome-trace JSON file. Tracks [0, num_processors) become "processor P"
// threads, [num_processors, ...) become "router shard S" threads. Returns
// false when the file cannot be opened.
bool WriteChromeTrace(const std::string& path, std::span<const TraceEvent> events,
                      uint32_t num_processors, uint32_t num_shards,
                      const TraceMetadata& metadata);

}  // namespace grouting

#endif  // GROUTING_SRC_OBS_TRACE_EXPORT_H_
