#include "src/obs/trace.h"

#include <algorithm>

#include "src/util/check.h"

namespace grouting {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kArrival:
      return "arrival";
    case TraceEventType::kRouted:
      return "routed";
    case TraceEventType::kQueueWait:
      return "queue_wait";
    case TraceEventType::kShip:
      return "ship";
    case TraceEventType::kQuery:
      return "query";
    case TraceEventType::kLevel:
      return "level";
    case TraceEventType::kBatch:
      return "batch";
    case TraceEventType::kStall:
      return "stall";
    case TraceEventType::kDecode:
      return "decode";
    case TraceEventType::kCompute:
      return "compute";
  }
  return "unknown";
}

TraceRing::TraceRing(uint32_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

TraceRecorder::TraceRecorder(uint32_t sample_every_n, uint32_t ring_capacity,
                             uint32_t num_processors, uint32_t num_shards)
    : sample_every_n_(sample_every_n),
      num_processors_(num_processors),
      num_shards_(num_shards) {
  GROUTING_CHECK_MSG(sample_every_n_ > 0,
                     "TraceRecorder requires trace_sample_every_n >= 1");
  rings_.reserve(num_processors_ + num_shards_);
  for (uint32_t t = 0; t < num_processors_ + num_shards_; ++t) {
    rings_.push_back(std::make_unique<TraceRing>(ring_capacity));
  }
}

TraceCounters TraceRecorder::counters() const {
  TraceCounters c;
  for (const auto& ring : rings_) {
    const uint64_t n = ring->recorded();
    c.recorded += n;
    c.dropped += ring->dropped();
    c.high_water = std::max(c.high_water, n);
  }
  return c;
}

std::vector<TraceEvent> TraceRecorder::MergedEvents() const {
  std::vector<TraceEvent> events;
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->recorded();
  }
  events.reserve(total);
  for (const auto& ring : rings_) {
    const uint64_t n = ring->recorded();
    events.insert(events.end(), ring->data(), ring->data() + n);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

}  // namespace grouting
