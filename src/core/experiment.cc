#include "src/core/experiment.h"

namespace grouting {

ExperimentEnv::ExperimentEnv(DatasetId dataset, double scale, uint64_t seed)
    : spec_(GetDatasetSpec(dataset)), scale_(scale), seed_(seed) {}

const Graph& ExperimentEnv::graph() {
  if (!graph_.has_value()) {
    graph_ = MakeDataset(spec_.id, scale_, seed_);
  }
  return *graph_;
}

const LandmarkSet& ExperimentEnv::landmarks(size_t count, int32_t separation) {
  const auto key = std::make_tuple(count, separation);
  auto it = landmark_sets_.find(key);
  if (it == landmark_sets_.end()) {
    LandmarkConfig config;
    config.num_landmarks = count;
    config.min_separation = separation;
    config.seed = seed_ ^ 0x11;
    auto set = std::make_unique<LandmarkSet>(LandmarkSet::Select(graph(), config));
    it = landmark_sets_.emplace(key, std::move(set)).first;
  }
  return *it->second;
}

const LandmarkIndex& ExperimentEnv::landmark_index(uint32_t processors, size_t count,
                                                   int32_t separation) {
  const auto key = std::make_tuple(count, separation, processors);
  auto it = indexes_.find(key);
  if (it == indexes_.end()) {
    // Build from a copy of the landmark set: the index owns its set so its
    // incremental updates never mutate the shared one.
    auto index = std::make_unique<LandmarkIndex>(
        LandmarkIndex::Build(landmarks(count, separation), processors));
    it = indexes_.emplace(key, std::move(index)).first;
  }
  return *it->second;
}

const GraphEmbedding& ExperimentEnv::embedding(size_t dims, size_t count,
                                               int32_t separation) {
  const auto key = std::make_tuple(dims, count, separation);
  auto it = embeddings_.find(key);
  if (it == embeddings_.end()) {
    EmbedConfig config;
    config.dimensions = dims;
    config.seed = seed_ ^ 0x22;
    auto emb = std::make_unique<GraphEmbedding>(
        GraphEmbedding::Build(landmarks(count, separation), config));
    it = embeddings_.emplace(key, std::move(emb)).first;
  }
  return *it->second;
}

std::vector<Query> ExperimentEnv::HotspotWorkload(int32_t r, int32_t h, size_t hotspots,
                                                  size_t per_hotspot) {
  WorkloadConfig config;
  config.num_hotspots = hotspots;
  config.queries_per_hotspot = per_hotspot;
  config.hotspot_radius = r;
  config.hops = h;
  config.seed = seed_ ^ 0x33;
  return GenerateHotspotWorkload(graph(), config);
}

std::vector<Query> ExperimentEnv::SkewedWorkload(size_t sessions, size_t queries,
                                                 double zipf_s, int32_t h) {
  SkewedWorkloadConfig config;
  config.num_sessions = sessions;
  config.num_queries = queries;
  config.zipf_s = zipf_s;
  config.hops = h;
  config.seed = seed_ ^ 0x55;
  return GenerateSkewedSessionWorkload(graph(), config);
}

uint64_t ExperimentEnv::AmpleCacheBytes() {
  if (!ample_cache_.has_value()) {
    ample_cache_ = graph().TotalAdjacencyBytes() + (16u << 20);
  }
  return *ample_cache_;
}

std::unique_ptr<RoutingStrategy> ExperimentEnv::MakeStrategy(const RunOptions& options) {
  switch (options.scheme) {
    case RoutingSchemeKind::kNextReady:
    case RoutingSchemeKind::kNoCache:
      return std::make_unique<NextReadyStrategy>();
    case RoutingSchemeKind::kHash:
      return std::make_unique<HashStrategy>();
    case RoutingSchemeKind::kLandmark:
      return std::make_unique<LandmarkStrategy>(
          &landmark_index(options.processors, options.num_landmarks,
                          options.min_separation),
          options.load_factor);
    case RoutingSchemeKind::kEmbed:
      return std::make_unique<EmbedStrategy>(
          &embedding(options.dimensions, options.num_landmarks, options.min_separation),
          options.alpha, options.load_factor, options.processors, seed_ ^ 0x44);
  }
  GROUTING_CHECK_MSG(false, "unknown routing scheme");
  return nullptr;
}

ClusterConfig ExperimentEnv::MakeClusterConfig(const RunOptions& options) {
  ClusterConfig config;
  config.num_processors = options.processors;
  config.num_storage_servers = options.storage_servers;
  config.processor.cache_bytes =
      options.cache_bytes == 0 ? AmpleCacheBytes() : options.cache_bytes;
  config.processor.cache_policy = options.cache_policy;
  config.processor.use_cache = options.scheme != RoutingSchemeKind::kNoCache;
  config.processor.max_inflight_batches = options.max_inflight_batches;
  config.processor.cache_compressed = options.cache_compressed;
  config.adjacency_encoding = options.adjacency_encoding;
  config.cost = options.cost;
  // The threaded engine cannot pace virtual time, but carrying the network
  // profile's propagation delay as an injected per-batch wait keeps
  // cost-model sweeps (Ethernet vs Infiniband) meaningful on real threads.
  config.injected_network_us = options.cost.net.one_way_us;
  config.enable_stealing = options.stealing;
  config.num_router_shards = options.router_shards;
  config.router_splitter = options.splitter;
  config.gossip_period_us = options.gossip_period_us;
  config.gossip_merge_weight = options.gossip_merge_weight;
  config.router_rebalance_threshold = options.rebalance_threshold;
  config.router_migration_cap = options.migration_cap;
  config.router_session_capacity = options.session_capacity;
  config.repartition_threshold = options.repartition_threshold;
  config.repartition_cap = options.repartition_cap;
  config.partitions_per_server = options.partitions_per_server;
  config.replication_top_k = options.replication_top_k;
  config.replica_demote_threshold = options.replica_demote_threshold;
  config.max_replicas_per_partition = options.max_replicas_per_partition;
  config.trace_sample_every_n = options.trace_sample_every_n;
  config.trace_buffer_capacity = options.trace_buffer_capacity;
  config.arrival_gap_us = options.arrival_gap_us;
  config.num_tenants = options.num_tenants;
  config.tenant_quota_qps = options.tenant_quota_qps;
  config.tenant_quota_burst = options.tenant_quota_burst;
  config.open_loop_arrivals = options.open_loop;
  config.enable_mutations = options.enable_mutations;
  config.index_refresh_period_us = options.index_refresh_period_us;
  return config;
}

ClusterMetrics ExperimentEnv::Run(EngineKind engine, const RunOptions& options,
                                  std::span<const Query> queries) {
  std::vector<Query> generated;
  if (queries.empty()) {
    generated = HotspotWorkload(options.hotspot_radius, options.hops,
                                options.num_hotspots, options.queries_per_hotspot);
    queries = generated;
  }

  auto cluster = MakeClusterEngine(engine, graph(), MakeClusterConfig(options),
                                   MakeStrategy(options));
  if (options.enable_mutations && options.num_mutations > 0) {
    MutationScheduleConfig mc;
    mc.num_mutations = options.num_mutations;
    mc.gap_us = options.mutation_gap_us;
    mc.seed = seed_ ^ 0x66;
    cluster->set_mutation_schedule(GenerateMutationSchedule(graph(), {}, mc));
  }
  return cluster->Run(queries);
}

ClusterMetrics ExperimentEnv::RunDecoupled(const RunOptions& options,
                                           std::span<const Query> queries) {
  return Run(EngineKind::kSimulated, options, queries);
}

}  // namespace grouting
