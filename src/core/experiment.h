// ExperimentEnv: the shared harness behind every bench and example.
//
// It lazily builds and memoises the expensive per-dataset artefacts (graph,
// landmark sets, landmark indexes, embeddings) so that a parameter sweep —
// say response time across 7 processor counts x 5 routing schemes — pays
// for preprocessing once, exactly like the paper's experimental setup.
//
// Run() assembles a fresh cluster (cold caches, as in the paper) on the
// requested engine — EngineKind::kSimulated for the paper's modelled
// cluster, EngineKind::kThreaded for real threads — and runs the hotspot
// workload. RunDecoupled() is the historical simulated-engine shim.

#ifndef GROUTING_SRC_CORE_EXPERIMENT_H_
#define GROUTING_SRC_CORE_EXPERIMENT_H_

#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/embed/embedding.h"
#include "src/landmark/landmark_index.h"
#include "src/routing/strategy.h"
#include "src/workload/datasets.h"
#include "src/workload/mutations.h"
#include "src/workload/workload.h"

namespace grouting {

// The paper's Section 4.1 parameter settings.
struct PaperDefaults {
  static constexpr size_t kNumLandmarks = 96;
  static constexpr int32_t kMinSeparation = 3;
  static constexpr size_t kDimensions = 10;
  static constexpr double kLoadFactor = 20.0;
  static constexpr double kAlpha = 0.5;
  static constexpr uint32_t kProcessors = 7;
  static constexpr uint32_t kStorageServers = 4;
  static constexpr size_t kHotspots = 100;
  static constexpr size_t kQueriesPerHotspot = 10;
};

struct RunOptions {
  RoutingSchemeKind scheme = RoutingSchemeKind::kEmbed;
  uint32_t processors = PaperDefaults::kProcessors;
  uint32_t storage_servers = PaperDefaults::kStorageServers;
  // 0 = "ample" (everything fits; the paper's 4 GB setting never evicts).
  uint64_t cache_bytes = 0;
  CachePolicy cache_policy = CachePolicy::kLru;
  bool stealing = true;
  // Async storage pipeline: bound on outstanding multiget batches per
  // processor. 1 = the classic synchronous level barrier.
  uint32_t max_inflight_batches = 1;
  // Adjacency wire format the storage tier stores and ships
  // (src/storage/adjacency.h), and whether processor caches admit the
  // compressed blob instead of the decoded entry.
  AdjacencyEncoding adjacency_encoding = AdjacencyEncoding::kRaw;
  bool cache_compressed = false;
  // Router frontend tier: shards of the arrival stream, splitter kind, and
  // the load/EMA gossip between them (see src/frontend/).
  uint32_t router_shards = 1;
  SplitterKind splitter = SplitterKind::kRoundRobin;
  double gossip_period_us = 200.0;
  double gossip_merge_weight = 0.5;
  // Adaptive arrival re-splitting (splitter == kAdaptive): migration trigger
  // ratio (<= 1 disables — adaptive then equals sticky), per-round session
  // cap, and the sticky/adaptive session-table bound.
  double rebalance_threshold = 0.0;
  uint32_t migration_cap = 8;
  uint32_t session_capacity = 1u << 16;
  // Storage-tier adaptive repartitioning (src/partition/repartition.h):
  // migration trigger ratio over per-server decayed access rates (<= 1
  // disables — the tier then keeps the paper's static hash placement),
  // per-round partition cap, and the virtual-partition granularity.
  double repartition_threshold = 0.0;
  uint32_t repartition_cap = 4;
  uint32_t partitions_per_server = 8;
  // Hot-partition replication riding the same planner rounds: promote the
  // top-k hottest partitions to an extra replica (0 disables), demote
  // replicas whose rate falls to or below this fraction of the average
  // per-server load, and cap the extra copies a partition may hold.
  uint32_t replication_top_k = 0;
  double replica_demote_threshold = 0.1;
  uint32_t max_replicas_per_partition = 2;
  // Query-lifecycle tracing (src/obs/): record every Nth query's spans into
  // the engine's trace rings; 0 disables tracing, 1 traces every query.
  uint32_t trace_sample_every_n = 0;
  // Capacity (events) of each per-processor / per-router-shard trace ring.
  uint32_t trace_buffer_capacity = 1u << 16;
  // Simulated engine: inter-arrival gap (µs). The paper's workload is
  // back-to-back (0); a positive gap interleaves arrivals with execution
  // and gossip rounds, which is what makes inter-shard gossip observable
  // in routing decisions.
  double arrival_gap_us = 0.0;
  double load_factor = PaperDefaults::kLoadFactor;
  double alpha = PaperDefaults::kAlpha;
  size_t dimensions = PaperDefaults::kDimensions;
  size_t num_landmarks = PaperDefaults::kNumLandmarks;
  int32_t min_separation = PaperDefaults::kMinSeparation;
  CostModel cost = CostModel::InfinibandDefaults();
  // Workload shape (r-hop hotspots, h-hop traversals).
  int32_t hotspot_radius = 2;
  int32_t hops = 2;
  size_t num_hotspots = PaperDefaults::kHotspots;
  size_t queries_per_hotspot = PaperDefaults::kQueriesPerHotspot;
  // Multi-tenant graph federation: tenant keyspace count, per-tenant
  // admission quota (qps of schedule time; <= 0 = no quota) with its token
  // burst, and whether Query::arrive_us open-loop timestamps drive arrivals
  // instead of arrival_gap_us pacing.
  uint32_t num_tenants = 1;
  double tenant_quota_qps = 0.0;
  double tenant_quota_burst = 32.0;
  bool open_loop = false;
  // Online graph mutations (src/workload/mutations.h): enable the storage
  // tier's versioned write path, and — when num_mutations > 0 — generate a
  // deterministic edge-mutation schedule (seed = env seed ^ 0x66) spaced
  // mutation_gap_us apart and install it on the engine before Run().
  bool enable_mutations = false;
  size_t num_mutations = 0;
  double mutation_gap_us = 50.0;
  // Minimum virtual/wall time between index-maintenance passes on the
  // gossip cadence; 0 = refresh on every gossip tick.
  double index_refresh_period_us = 0.0;
};

class ExperimentEnv {
 public:
  explicit ExperimentEnv(DatasetId dataset, double scale = 1.0, uint64_t seed = 4242);

  const DatasetSpec& spec() const { return spec_; }
  const Graph& graph();

  // Memoised preprocessing artefacts.
  const LandmarkSet& landmarks(size_t count = PaperDefaults::kNumLandmarks,
                               int32_t separation = PaperDefaults::kMinSeparation);
  const LandmarkIndex& landmark_index(uint32_t processors,
                                      size_t count = PaperDefaults::kNumLandmarks,
                                      int32_t separation = PaperDefaults::kMinSeparation);
  const GraphEmbedding& embedding(size_t dims = PaperDefaults::kDimensions,
                                  size_t count = PaperDefaults::kNumLandmarks,
                                  int32_t separation = PaperDefaults::kMinSeparation);

  // The paper's hotspot workload for this graph (deterministic in the env
  // seed and the workload shape).
  std::vector<Query> HotspotWorkload(int32_t r = 2, int32_t h = 2,
                                     size_t hotspots = PaperDefaults::kHotspots,
                                     size_t per_hotspot = PaperDefaults::kQueriesPerHotspot);

  // Zipf-skewed session stream for this graph (deterministic in the env
  // seed): the arrival pattern adaptive re-splitting is measured against.
  std::vector<Query> SkewedWorkload(size_t sessions, size_t queries, double zipf_s,
                                    int32_t h = 2);

  // Cache size at which nothing is ever evicted (the "4 GB" setting).
  uint64_t AmpleCacheBytes();

  // Builds the routing strategy an options struct asks for. The returned
  // strategy references env-owned preprocessing (index/embedding), which
  // stays valid for the env's lifetime.
  std::unique_ptr<RoutingStrategy> MakeStrategy(const RunOptions& options);

  // Lowers an options struct into the unified engine config (resolving
  // "ample" cache to a concrete byte count and the no-cache scheme to a
  // cache-less processor). Benches that assemble engines manually (custom
  // strategies, explicit storage placements) start from this.
  ClusterConfig MakeClusterConfig(const RunOptions& options);

  // Assembles a cold decoupled cluster on the requested engine and runs the
  // workload implied by `options` (or `queries` if provided).
  ClusterMetrics Run(EngineKind engine, const RunOptions& options,
                     std::span<const Query> queries = {});

  // Thin shim: Run(EngineKind::kSimulated, ...).
  ClusterMetrics RunDecoupled(const RunOptions& options,
                              std::span<const Query> queries = {});

  uint64_t seed() const { return seed_; }

 private:
  DatasetSpec spec_;
  double scale_;
  uint64_t seed_;
  std::optional<Graph> graph_;
  std::map<std::tuple<size_t, int32_t>, std::unique_ptr<LandmarkSet>> landmark_sets_;
  std::map<std::tuple<size_t, int32_t, uint32_t>, std::unique_ptr<LandmarkIndex>> indexes_;
  std::map<std::tuple<size_t, size_t, int32_t>, std::unique_ptr<GraphEmbedding>> embeddings_;
  std::optional<uint64_t> ample_cache_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_CORE_EXPERIMENT_H_
