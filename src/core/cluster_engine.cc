#include "src/core/cluster_engine.h"

#include <algorithm>
#include <utility>

#include "src/frontend/admission.h"
#include "src/runtime/threaded_cluster.h"
#include "src/sim/decoupled_sim.h"

namespace grouting {

std::string EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSimulated:
      return "simulated";
    case EngineKind::kThreaded:
      return "threaded";
  }
  GROUTING_CHECK_MSG(false, "unknown engine kind");
  return "";
}

ClusterEngine::ClusterEngine(const Graph& graph, const ClusterConfig& config,
                             const PartitionAssignment* placement)
    : config_(config) {
  GROUTING_CHECK(config_.num_processors > 0);
  GROUTING_CHECK(config_.num_storage_servers > 0);
  GROUTING_CHECK(config_.num_router_shards > 0);
  GROUTING_CHECK(config_.gossip_merge_weight >= 0.0 &&
                 config_.gossip_merge_weight <= 1.0);
  GROUTING_CHECK(config_.router_session_capacity > 0);
  GROUTING_CHECK_MSG(config_.processor.max_inflight_batches > 0,
                     "max_inflight_batches must be >= 1");
  GROUTING_CHECK(config_.num_tenants > 0);
  GROUTING_CHECK(config_.tenant_quota_burst >= 1.0);
  repartition_config_ = config_.MakeRepartitionConfig();
  storage_ = std::make_unique<StorageTier>(config_.num_storage_servers);
  if (config_.num_tenants > 1) {
    GROUTING_CHECK_MSG(placement == nullptr,
                       "multi-tenant federation is incompatible with an "
                       "explicit storage placement");
    // Federated keyspaces: the tier stores one copy of the graph per tenant
    // and the processors offset their keys by tenant * num_nodes. Must be
    // set before LoadGraph below.
    storage_->set_num_tenants(config_.num_tenants);
    config_.processor.tenant_stride = static_cast<NodeId>(graph.num_nodes());
  }
  storage_->set_encoding(config_.adjacency_encoding);
  if (config_.processor.cache_compressed) {
    // Compressed processor caches admit the wire blob, so every decode must
    // keep it attached to the entry.
    storage_->set_retain_wire(true);
  }
  if (repartition_config_.active()) {
    GROUTING_CHECK_MSG(placement == nullptr,
                       "storage repartitioning/replication is incompatible with "
                       "an explicit storage placement");
    storage_->EnableRepartitioning(repartition_config_.partitions_per_server);
    if (repartition_config_.replication_enabled()) {
      GROUTING_CHECK_MSG(
          repartition_config_.max_replicas_per_partition <= PartitionMap::kMaxReplicas,
          "max_replicas_per_partition exceeds the map's packing limit");
      storage_->EnableReplication();
    }
  }
  if (config_.enable_mutations) {
    // Versioned write path: counters must exist before the load below so
    // LoadGraphSubset can register withheld keys. The graph reference is
    // the mutation universe (kAddVertex materialises from it), so callers
    // keep it alive across Run — same lifetime rule every engine already
    // has for traversal.
    storage_->EnableMutations(graph);
  } else {
    GROUTING_CHECK_MSG(config_.mutation_preload_keep.empty(),
                       "mutation_preload_keep requires enable_mutations");
  }
  if (placement != nullptr) {
    GROUTING_CHECK_MSG(config_.mutation_preload_keep.empty(),
                       "a preload keep mask is incompatible with an explicit "
                       "storage placement");
    storage_->LoadGraph(graph, *placement);
  } else if (!config_.mutation_preload_keep.empty()) {
    GROUTING_CHECK_MSG(config_.mutation_preload_keep.size() == graph.num_nodes(),
                       "mutation_preload_keep must be sized num_nodes");
    storage_->LoadGraphSubset(graph, config_.mutation_preload_keep);
  } else {
    storage_->LoadGraph(graph);
  }
  processors_.reserve(config_.num_processors);
  for (uint32_t p = 0; p < config_.num_processors; ++p) {
    processors_.push_back(
        std::make_unique<QueryProcessor>(p, storage_.get(), config_.processor));
  }
  if (config_.trace_sample_every_n > 0) {
    tracer_ = std::make_unique<TraceRecorder>(
        config_.trace_sample_every_n, config_.trace_buffer_capacity,
        config_.num_processors, config_.num_router_shards);
  }
}

void ClusterEngine::AddTraceStats(ClusterMetrics* m) const {
  if (tracer_ == nullptr) {
    return;
  }
  const TraceCounters c = tracer_->counters();
  m->trace_events_recorded = c.recorded;
  m->trace_events_dropped = c.dropped;
  m->trace_buffer_high_water = c.high_water;
}

bool ClusterEngine::ExportTrace(const std::string& path, TraceMetadata metadata) const {
  if (tracer_ == nullptr) {
    return false;
  }
  const TraceCounters c = tracer_->counters();
  metadata.emplace_back("engine", EngineKindName(kind()));
  metadata.emplace_back("trace_sample_every_n",
                        std::to_string(tracer_->sample_every_n()));
  metadata.emplace_back("num_processors", std::to_string(config_.num_processors));
  metadata.emplace_back("num_router_shards",
                        std::to_string(config_.num_router_shards));
  metadata.emplace_back("events_recorded", std::to_string(c.recorded));
  metadata.emplace_back("events_dropped", std::to_string(c.dropped));
  metadata.emplace_back("time_unit", "us");
  return WriteChromeTrace(path, tracer_->MergedEvents(), config_.num_processors,
                          config_.num_router_shards, metadata);
}

void ClusterEngine::AddProcessorStats(ClusterMetrics* m) const {
  for (const auto& proc : processors_) {
    m->cache_hits += proc->stats().cache_hits;
    m->cache_misses += proc->stats().cache_misses;
    m->nodes_visited += proc->stats().nodes_visited;
    m->bytes_from_storage += proc->stats().bytes_fetched;
    m->storage_batches += proc->stats().storage_batches;
    m->batches_inflight_peak =
        std::max(m->batches_inflight_peak, proc->stats().batches_inflight_peak);
    m->fetch_overlap_us += proc->stats().fetch_overlap_us;
    m->decompress_us += proc->stats().decompress_us;
    if (proc->cache_enabled()) {
      m->cache_entries += proc->cache()->entry_count();
    }
  }
}

void ClusterEngine::AddStorageTierStats(ClusterMetrics* m) const {
  m->storage_load_imbalance = StorageLoadImbalance(storage_->GetRequestsPerServer());
  m->partitions_migrated = partitions_migrated_;
  m->adjacency_compression_ratio = storage_->AdjacencyCompressionRatio();
  m->partitions_replicated = replica_promotions_;
  m->replica_demotions = replica_demotions_;
  m->replica_reads = storage_->replica_reads();
}

std::vector<StorageTier::MigrationResult> ClusterEngine::RepartitionRound() {
  std::vector<StorageTier::MigrationResult> executed;
  PartitionMonitor* monitor = storage_->partition_monitor();
  if (monitor == nullptr) {
    return executed;
  }
  monitor->RollWindow(repartition_config_.load_decay);
  if (repartition_config_.replication_enabled()) {
    const ReplicationPlan plan = PlanReplication(
        *storage_->partition_map(), monitor->rates(), repartition_config_);
    for (const ReplicaChange& d : plan.demote) {
      executed.push_back(storage_->RemoveReplica(d.partition, d.server));
      ++replica_demotions_;
    }
    for (const ReplicaChange& p : plan.promote) {
      executed.push_back(storage_->AddReplica(p.partition, p.server));
      ++replica_promotions_;
    }
  }
  if (repartition_config_.enabled()) {
    // Planned after the replica changes landed, so replicated partitions
    // are excluded as migration victims against the freshest replica sets.
    const std::vector<PartitionMigration> plan = PlanRepartition(
        *storage_->partition_map(), monitor->rates(), repartition_config_);
    for (const PartitionMigration& mig : plan) {
      executed.push_back(storage_->MigratePartition(mig.partition, mig.to));
      ++partitions_migrated_;
    }
  }
  return executed;
}

void ClusterEngine::set_mutation_schedule(std::vector<GraphMutation> schedule) {
  GROUTING_CHECK_MSG(config_.enable_mutations,
                     "set_mutation_schedule requires enable_mutations");
  GROUTING_CHECK_MSG(!ran_, "set the mutation schedule before Run()");
  mutation_schedule_ = std::move(schedule);
  // Stable by apply_us: entries at the same offset keep schedule order, so
  // both engines apply identical sequences.
  std::stable_sort(mutation_schedule_.begin(), mutation_schedule_.end(),
                   [](const GraphMutation& a, const GraphMutation& b) {
                     return a.apply_us < b.apply_us;
                   });
}

void ClusterEngine::set_index_maintainer(IndexMaintainer maintainer) {
  GROUTING_CHECK_MSG(config_.enable_mutations,
                     "set_index_maintainer requires enable_mutations");
  GROUTING_CHECK_MSG(!ran_, "set the index maintainer before Run()");
  index_maintainer_ = std::move(maintainer);
}

uint64_t ClusterEngine::ApplyOneMutation(const GraphMutation& m) {
  const uint64_t writes = storage_->ApplyMutation(m);
  std::lock_guard<std::mutex> lock(mutation_mu_);
  ++mutations_applied_;
  pending_refresh_.push_back(m.u);
  if (m.v != kInvalidNode) {
    pending_refresh_.push_back(m.v);
  }
  return writes;
}

void ClusterEngine::ApplyQuiescedMutations() {
  for (const GraphMutation& m : mutation_schedule_) {
    if (m.apply_us <= 0.0) {
      ApplyOneMutation(m);
    }
  }
}

uint64_t ClusterEngine::RunIndexMaintenance(double now_us) {
  if (!config_.enable_mutations) {
    return 0;
  }
  if (config_.index_refresh_period_us > 0.0 &&
      now_us - last_index_refresh_us_ < config_.index_refresh_period_us) {
    return 0;  // gated: dirty nodes stay pending for a later tick
  }
  std::vector<NodeId> dirty;
  {
    std::lock_guard<std::mutex> lock(mutation_mu_);
    dirty.swap(pending_refresh_);
  }
  if (dirty.empty()) {
    return 0;
  }
  last_index_refresh_us_ = now_us;
  // Canonical order regardless of which thread dirtied what first, so the
  // maintainer sees an engine-independent node list.
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  ++index_refreshes_;
  if (index_maintainer_) {
    const IndexRefreshResult r = index_maintainer_(dirty);
    stale_error_sum_ += r.error_sum;
    stale_error_samples_ += r.error_samples;
  }
  return dirty.size();
}

void ClusterEngine::AddMutationStats(ClusterMetrics* m) const {
  m->mutations_applied = mutations_applied_;
  m->index_refreshes = index_refreshes_;
  m->stale_distance_error =
      stale_error_sum_ /
      static_cast<double>(std::max<uint64_t>(1, stale_error_samples_));
}

double ClusterEngine::ArrivalTimeUs(const Query& q, size_t index) const {
  if (config_.open_loop_arrivals && q.arrive_us >= 0.0) {
    return q.arrive_us;
  }
  return config_.arrival_gap_us * static_cast<double>(index);
}

ClusterEngine::AdmissionPlan ClusterEngine::PlanAdmission(
    std::span<const Query> queries) const {
  AdmissionPlan plan;
  plan.shed_per_tenant.assign(config_.num_tenants, 0);
  for (const Query& q : queries) {
    GROUTING_CHECK_MSG(q.tenant < config_.num_tenants,
                       "query tenant id out of range");
  }
  if (config_.tenant_quota_qps <= 0.0) {
    plan.admitted = queries.size();
    return plan;
  }
  AdmissionConfig admission;
  admission.num_tenants = config_.num_tenants;
  admission.quota_qps = config_.tenant_quota_qps;
  admission.burst = config_.tenant_quota_burst;
  TenantAdmission buckets(admission);
  plan.admit.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const bool ok = buckets.Admit(queries[i].tenant, ArrivalTimeUs(queries[i], i));
    plan.admit[i] = ok ? 1 : 0;
    if (ok) {
      ++plan.admitted;
    } else {
      ++plan.shed;
      ++plan.shed_per_tenant[queries[i].tenant];
    }
  }
  return plan;
}

void ClusterEngine::FillTenantMetrics(
    ClusterMetrics* m, std::span<const LatencyHistogram> tenant_response_us,
    std::span<const uint64_t> tenant_queries, const AdmissionPlan& plan) const {
  m->queries_shed = plan.shed;
  m->per_tenant.clear();
  m->per_tenant.reserve(config_.num_tenants);
  for (uint32_t t = 0; t < config_.num_tenants; ++t) {
    TenantMetrics tm;
    tm.tenant = t;
    tm.queries = tenant_queries[t];
    tm.shed = t < plan.shed_per_tenant.size() ? plan.shed_per_tenant[t] : 0;
    const LatencyHistogram& h = tenant_response_us[t];
    if (h.count() > 0) {
      tm.mean_response_ms = h.mean() / 1000.0;
      tm.p50_response_ms = h.Percentile(50.0) / 1000.0;
      tm.p99_response_ms = h.Percentile(99.0) / 1000.0;
      tm.p999_response_ms = h.Percentile(99.9) / 1000.0;
    }
    m->per_tenant.push_back(tm);
  }
}

void ClusterEngine::FillLatencyStats(ClusterMetrics* m,
                                     const LatencyHistogram& response_us,
                                     const RunningStat& queue_wait_us) {
  // The histogram's embedded RunningStat keeps the mean exact (identical to
  // the historical sample-vector mean); every percentile is one bucket walk
  // instead of a full sort per quantile.
  m->mean_response_ms = response_us.mean() / 1000.0;
  m->p50_response_ms = response_us.Percentile(50.0) / 1000.0;
  m->p95_response_ms = response_us.Percentile(95.0) / 1000.0;
  m->p99_response_ms = response_us.Percentile(99.0) / 1000.0;
  m->p999_response_ms = response_us.Percentile(99.9) / 1000.0;
  m->mean_queue_wait_ms = queue_wait_us.mean() / 1000.0;
}

std::unique_ptr<ClusterEngine> MakeClusterEngine(
    EngineKind kind, const Graph& graph, const ClusterConfig& config,
    std::unique_ptr<RoutingStrategy> strategy, const PartitionAssignment* placement) {
  GROUTING_CHECK(strategy != nullptr);
  switch (kind) {
    case EngineKind::kSimulated:
      return std::make_unique<DecoupledClusterSim>(graph, config, std::move(strategy),
                                                   placement);
    case EngineKind::kThreaded:
      return std::make_unique<ThreadedCluster>(graph, config, std::move(strategy),
                                               placement);
  }
  GROUTING_CHECK_MSG(false, "unknown engine kind");
  return nullptr;
}

}  // namespace grouting
