// gRouting — public umbrella header.
//
// A from-scratch reproduction of "On Smart Query Routing: For Distributed
// Graph Querying with Decoupled Storage" (Khan, Segovia, Kossmann).
//
// Typical usage (see examples/quickstart.cc):
//
//   Graph g = GenerateCommunityGraph(...);
//   ExperimentEnv env(DatasetId::kWebGraphLike, /*scale=*/0.5);
//   RunOptions opts;
//   opts.scheme = RoutingSchemeKind::kEmbed;
//   auto metrics = env.Run(EngineKind::kSimulated, opts);   // virtual time
//   auto real = env.Run(EngineKind::kThreaded, opts);       // real threads
//
// or assemble an engine manually from the unified config:
//
//   auto engine = MakeClusterEngine(EngineKind::kThreaded, g, ClusterConfig{},
//                                   std::make_unique<HashStrategy>());
//   auto metrics = engine->Run(queries);

#ifndef GROUTING_SRC_CORE_GROUTING_H_
#define GROUTING_SRC_CORE_GROUTING_H_

#include "src/baselines/coupled.h"
#include "src/cache/cache.h"
#include "src/core/cluster_engine.h"
#include "src/core/experiment.h"
#include "src/embed/embedding.h"
#include "src/frontend/gossip.h"
#include "src/frontend/router_fleet.h"
#include "src/frontend/splitter.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/graph_stats.h"
#include "src/graph/io.h"
#include "src/graph/traversal.h"
#include "src/landmark/landmark.h"
#include "src/landmark/landmark_index.h"
#include "src/net/cost_model.h"
#include "src/partition/metrics.h"
#include "src/partition/multilevel.h"
#include "src/partition/partitioner.h"
#include "src/partition/repartition.h"
#include "src/partition/vertex_cut.h"
#include "src/proc/processor.h"
#include "src/query/query.h"
#include "src/routing/router.h"
#include "src/routing/strategy.h"
#include "src/runtime/threaded_cluster.h"
#include "src/sim/decoupled_sim.h"
#include "src/storage/storage_tier.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/datasets.h"
#include "src/workload/mutations.h"
#include "src/workload/open_loop.h"
#include "src/workload/workload.h"

#endif  // GROUTING_SRC_CORE_GROUTING_H_
