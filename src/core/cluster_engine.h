// ClusterEngine: the single abstraction both execution engines implement.
//
// The paper's claim is that smart routing pays off in *both* a modelled
// decoupled cluster (the discrete-event simulator, virtual time) and a real
// one (the threaded runtime, wall time). This header gives them one shared
// vocabulary so every bench, example and test can target either engine:
//
//   * ClusterConfig  — processors, storage servers, per-processor cache,
//                      stealing, cost model / injected network delay,
//   * ClusterMetrics — throughput, mean/p95 response, queue wait, cache
//                      hits/misses, storage bytes/batches, steals, and the
//                      per-processor load split,
//   * EngineKind     — kSimulated | kThreaded, resolved by the
//                      MakeClusterEngine factory.
//
// The base class owns the assembly that used to be duplicated in both
// engine constructors: loading the graph into the storage tier (hash
// placement or an explicit assignment) and standing up the processors.

#ifndef GROUTING_SRC_CORE_CLUSTER_ENGINE_H_
#define GROUTING_SRC_CORE_CLUSTER_ENGINE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/frontend/splitter.h"
#include "src/net/cost_model.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "src/proc/processor.h"
#include "src/query/query.h"
#include "src/routing/strategy.h"
#include "src/storage/storage_tier.h"
#include "src/util/stats.h"

namespace grouting {

enum class EngineKind {
  kSimulated,  // discrete-event simulation, deterministic virtual time
  kThreaded,   // real threads, wall-clock time
};

std::string EngineKindName(EngineKind kind);

// One configuration for either engine. Fields a given engine cannot honour
// are documented as such rather than split into per-engine structs — the
// whole point is that a sweep can flip EngineKind without rebuilding its
// config.
struct ClusterConfig {
  uint32_t num_processors = 7;  // paper default tier split: 1 / 7 / 4
  // Storage servers in the decoupled tier (paper default: 4).
  uint32_t num_storage_servers = 4;
  // Per-processor settings, including the async fetch pipeline's
  // processor.max_inflight_batches window (1 = synchronous level barrier;
  // > 1 = overlap cache probes with outstanding multiget batches).
  ProcessorConfig processor;
  // Idle processors steal queued queries from the longest sibling queue.
  bool enable_stealing = true;
  // Virtual-time cost model. Drives the simulated engine; the threaded
  // engine runs at memory speed and honours only the network terms: a
  // 2 x injected_network_us round trip plus cost.net.per_kb_us on each
  // batch's wire bytes (both skipped when injected_network_us is 0).
  CostModel cost = CostModel::InfinibandDefaults();
  // Inter-arrival gap between queries at the router (µs); the paper sends
  // queries back to back. The simulated engine schedules arrivals in
  // virtual time; the threaded engine paces its feeder thread in wall time.
  double arrival_gap_us = 0.0;
  // Threaded engine: injected one-way network delay per storage batch
  // (busy-wait, µs). 0 = memory speed.
  double injected_network_us = 0.0;
  // Wire format the storage tier stores and ships adjacency blobs in
  // (src/storage/adjacency.h). kDeltaVarint compresses sorted neighbour
  // ids to delta varints, cutting per-KB network transfer; decoding
  // auto-detects, so either setting reads either format.
  AdjacencyEncoding adjacency_encoding = AdjacencyEncoding::kRaw;

  // --- Router frontend tier (src/frontend/) ---
  // Shared-nothing router shards fed by the arrival splitter; each owns a
  // slice of the arrival stream and its own strategy state. 1 = the paper's
  // single smart router.
  uint32_t num_router_shards = 1;
  // How arrivals are split across shards.
  SplitterKind router_splitter = SplitterKind::kRoundRobin;
  // Period of the load/EMA gossip between shards (virtual µs on the
  // simulated engine, wall-clock µs on the threaded one). 0 disables gossip.
  double gossip_period_us = 200.0;
  // Blend weight for sibling EMA state at a gossip round, in [0, 1].
  double gossip_merge_weight = 0.5;
  // Adaptive arrival re-splitting (router_splitter == kAdaptive): at each
  // gossip round, migrate hot sessions from the most- to the least-loaded
  // shard once the max/min routed-load ratio exceeds this threshold. <= 1
  // (or infinity) disables migration — kAdaptive then behaves exactly like
  // kSticky. Requires gossip_period_us > 0 (rebalance rides the gossip
  // round).
  double router_rebalance_threshold = 0.0;
  // At most this many sessions migrate per rebalance round (anti-thrash cap,
  // paired with a 0.9-of-threshold hysteresis water mark).
  uint32_t router_migration_cap = 8;
  // Bound on the sticky/adaptive splitter's session table; the oldest
  // session is evicted FIFO beyond it (ClusterMetrics::sticky_evictions).
  uint32_t router_session_capacity = 1u << 16;

  // --- Storage-tier adaptive repartitioning (src/partition/repartition.h) ---
  // At each gossip-aligned round, migrate hot partitions from the most- to
  // the least-loaded storage server once the max/min decayed access-rate
  // ratio exceeds this threshold. <= 1 (or infinity) disables repartitioning
  // — the storage tier is then byte-identical to the static hash-placement
  // design. Requires gossip_period_us > 0 (rounds ride the gossip tick) and
  // is incompatible with an explicit storage placement.
  double repartition_threshold = 0.0;
  // At most this many partitions migrate per repartition round (anti-thrash
  // cap, paired with the controller's hysteresis water mark + noise floor).
  uint32_t repartition_cap = 4;
  // Virtual partitions per storage server: the migration granularity. The
  // initial partition->server layout reproduces hash placement exactly.
  uint32_t partitions_per_server = 8;

  // --- Hot-partition replication (rides the repartition planner rounds) ---
  // Promote up to this many of the hottest partitions to one extra replica
  // per round; reads then fan across {primary + replicas} via
  // power-of-two-choices on server load. 0 disables replication — the read
  // path is then bit-identical to the migration-only tier. Shares the
  // repartition machinery, so it also needs gossip_period_us > 0 and no
  // explicit storage placement (partitions_per_server applies too).
  uint32_t replication_top_k = 0;
  // Demote one replica per round from any replicated partition whose
  // decayed access rate fell to or below this fraction of the average
  // per-server load (cold replicas are reclaimed).
  double replica_demote_threshold = 0.1;
  // Extra copies beyond the primary a partition may hold (capped at
  // PartitionMap::kMaxReplicas = 3).
  uint32_t max_replicas_per_partition = 2;

  // --- Observability (src/obs/) ---
  // Per-query lifecycle tracing: record every Nth query's spans (arrival,
  // routing, queue wait, levels, batches, stalls, decode) into per-track
  // ring buffers. 0 disables tracing entirely — no recorder is built and a
  // simulated run is metric-identical to one without the subsystem; 1
  // traces every query. Virtual timestamps on the simulated engine, wall
  // clock on the threaded one.
  uint32_t trace_sample_every_n = 0;
  // Capacity (events) of each per-processor / per-router-shard trace ring.
  // A full ring drops new events and counts them (trace_events_dropped).
  uint32_t trace_buffer_capacity = 1u << 16;

  // --- Multi-tenant graph federation (src/storage/ keyspaces + admission) ---
  // Tenant count: the storage tier loads one keyspace copy of the graph per
  // tenant (tenant t's node u lives at global key u + t * num_nodes), so
  // placement, repartitioning, and replication keep working per tenant with
  // no special cases below the keyspace mapping. 1 = the classic
  // single-tenant cluster, metric-identical to the pre-federation engine.
  // Incompatible with an explicit storage placement.
  uint32_t num_tenants = 1;
  // Per-tenant admission quota at the arrival splitter, in queries per
  // second of schedule time (virtual µs on the simulated engine; the same
  // schedule paced in wall time on the threaded one). Over-quota arrivals
  // are shed before reaching a router shard and counted
  // (ClusterMetrics::queries_shed); in-quota arrivals are never dropped.
  // <= 0 disables admission control.
  double tenant_quota_qps = 0.0;
  // Token-bucket depth per tenant, in queries: bursts this deep above the
  // quota are absorbed before shedding starts.
  double tenant_quota_burst = 32.0;
  // Honour each query's Query::arrive_us open-loop timestamp (Poisson
  // schedules from GenerateOpenLoopWorkload) instead of pacing arrivals
  // arrival_gap_us apart. Both engines consume the same schedule: the sim
  // fires arrival events at arrive_us in virtual time, the threaded feeder
  // paces them in wall time from the run's epoch.
  bool open_loop_arrivals = false;

  // --- Online graph mutations (StorageTier::ApplyMutation) ---
  // Versioned write path: the tier allocates one monotonic version counter
  // per global key, processor caches re-validate hits against it, and the
  // engine accepts a mutation schedule (set_mutation_schedule) that both
  // engines apply identically — the sim as virtual-time events charging
  // CostModel::mutation_* terms, the threaded runtime via a writer thread
  // pacing each entry's apply_us from the run epoch. false keeps every
  // read path metric-identical to the read-only engine.
  bool enable_mutations = false;
  // Nodes preloaded before the run when mutations are on: keep[u] != 0
  // loads node u's adjacency up front, keep[u] == 0 withholds it until a
  // kAddVertex mutation materialises it (the fig10 "X% preprocessed"
  // protocol). Sized num_nodes, or empty = preload everything. Requires
  // enable_mutations and no explicit storage placement.
  std::vector<uint8_t> mutation_preload_keep;
  // Minimum gap between incremental index-refresh passes (virtual µs on
  // the simulated engine, wall µs on the threaded one). Refresh rides the
  // gossip cadence: at each gossip tick at least this far from the last
  // pass, nodes dirtied by mutations since then are drained to the
  // registered index maintainer. 0 = refresh at every gossip tick.
  double index_refresh_period_us = 0.0;

  // The storage-rebalancer policy the knobs above lower to. enabled() /
  // replication_enabled() / active() on the result are the single source of
  // truth for whether migration and/or replication run — the engine and
  // every display/consumer derive it from here, never by re-testing the
  // raw knobs.
  RepartitionConfig MakeRepartitionConfig() const {
    RepartitionConfig repartition;
    repartition.threshold = repartition_threshold;
    repartition.migration_cap = repartition_cap;
    repartition.partitions_per_server = partitions_per_server;
    repartition.replication_top_k = replication_top_k;
    repartition.replica_demote_threshold = replica_demote_threshold;
    repartition.max_replicas_per_partition = max_replicas_per_partition;
    return repartition;
  }
};

// One tenant's slice of a run (multi-tenant federation). Response
// percentiles come from a per-tenant LatencyHistogram, same time base and
// bucket error as the run-level percentiles.
struct TenantMetrics {
  // Tenant id (index into ClusterConfig::num_tenants).
  uint32_t tenant = 0;
  // Queries from this tenant answered over the run.
  uint64_t queries = 0;
  // Arrivals from this tenant shed by admission control.
  uint64_t shed = 0;
  // Mean dispatch -> completion time for this tenant's queries (ms).
  double mean_response_ms = 0.0;
  // Median of the same distribution (ms).
  double p50_response_ms = 0.0;
  // 99th percentile (ms) — the per-tenant SLO tail.
  double p99_response_ms = 0.0;
  // 99.9th percentile (ms).
  double p999_response_ms = 0.0;

  // Shed arrivals as a fraction of this tenant's offered arrivals.
  double ShedRate() const {
    const uint64_t offered = queries + shed;
    return offered == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(offered);
  }
};

// One metrics struct for either engine. Times are virtual µs for the
// simulated engine and wall-clock µs for the threaded one; the shape of the
// numbers (ratios between schemes) is what experiments compare.
struct ClusterMetrics {
  // Queries answered over the run (every workload query, exactly once).
  uint64_t queries = 0;
  double makespan_us = 0.0;  // arrival of first query -> last completion
  // queries / makespan, in queries per second.
  double throughput_qps = 0.0;
  double mean_response_ms = 0.0;  // dispatch -> completion (paper's metric)
  // Response-time percentiles over the per-query dispatch -> completion
  // time, read from the log-bucketed LatencyHistogram (within one bucket
  // width, ~3%, of the exact sorted-sample percentile). The tail pair
  // (p99/p999) is what run-level means cannot show and what the CI
  // regression gate additionally watches.
  double p50_response_ms = 0.0;
  // 95th percentile of the per-query dispatch -> completion time.
  double p95_response_ms = 0.0;
  // 99th percentile of the per-query dispatch -> completion time.
  double p99_response_ms = 0.0;
  // 99.9th percentile of the per-query dispatch -> completion time.
  double p999_response_ms = 0.0;
  double mean_queue_wait_ms = 0.0;  // routed -> dispatched
  // Processor-cache probe outcomes summed over all processors.
  uint64_t cache_hits = 0;
  // Probes that missed (every probe is a miss in no-cache mode).
  uint64_t cache_misses = 0;
  // Adjacency entries consumed by traversals (hits + fetched).
  uint64_t nodes_visited = 0;
  // Payload bytes shipped from the storage tier to the processors.
  uint64_t bytes_from_storage = 0;
  // Per-server multiget batches issued (the cost model's queueing unit).
  uint64_t storage_batches = 0;
  // Queries executed by a processor other than the router's pick.
  uint64_t steals = 0;
  // Post-stealing execution split across processors (sums to `queries`).
  std::vector<uint64_t> queries_per_processor;
  // Router frontend tier: how the arrival stream split across router shards.
  std::vector<uint64_t> queries_per_router_shard;
  // Completed load/EMA gossip rounds between router shards.
  uint64_t gossip_rounds = 0;
  // Cross-shard EMA divergence at the end of the run (mean pairwise L2
  // between shard strategies' state; 0 for stateless strategies).
  double router_ema_divergence = 0.0;
  // Adaptive re-splitting: sessions moved between router shards over the run.
  uint64_t sessions_migrated = 0;
  // Sessions dropped at the sticky/adaptive splitter's capacity bound.
  uint64_t sticky_evictions = 0;
  // Final max/min routed-load ratio across router shards (1.0 = perfectly
  // balanced or a single shard).
  double router_load_imbalance = 0.0;
  // Async storage pipeline: peak concurrently outstanding multiget batches
  // on any processor. Time base for the overlap below: virtual µs on the
  // simulated engine, wall µs on the threaded one.
  uint32_t batches_inflight_peak = 0;
  // Useful processor work overlapped with in-flight fetches (µs).
  double fetch_overlap_us = 0.0;
  // Storage-tier repartitioning: partitions physically moved between
  // storage servers over the run (0 when repartitioning is off).
  uint64_t partitions_migrated = 0;
  // Max/min ratio of per-server served get counts at the end of the run
  // (1.0 = perfectly balanced; reported whether or not repartitioning ran).
  double storage_load_imbalance = 0.0;
  // Storage-server time consumed by migrations: added virtual busy time on
  // the simulated engine, wall-clock time the gossip tick spent copying /
  // draining / deleting on the threaded one (µs).
  double repartition_stall_us = 0.0;
  // Hot-partition replication: replica copies created by promotion rounds
  // over the run (a partition promoted to two replicas counts twice; 0
  // when replication is off).
  uint64_t partitions_replicated = 0;
  // Reads served by a non-primary replica under power-of-two-choices
  // routing (the replication fan-out actually used).
  uint64_t replica_reads = 0;
  // Replica copies torn down by the cold-partition demotion rule.
  uint64_t replica_demotions = 0;
  // Logical (v1) bytes / encoded wire bytes across the loaded graph; 1.0
  // under raw encoding.
  double adjacency_compression_ratio = 1.0;
  // Adjacency entries resident across all processor caches at run end —
  // the compressed-cache win is this count at a fixed byte budget.
  uint64_t cache_entries = 0;
  // Time spent decoding compressed blobs on cache hits: the cost model's
  // virtual charge on the simulated engine (hits + fetched installs), wall
  // decode time on the threaded one (µs). 0 in raw/uncompressed mode.
  double decompress_us = 0.0;
  // Query-lifecycle tracing (trace_sample_every_n > 0): events stored
  // across all trace rings over the run (0 when tracing is off).
  uint64_t trace_events_recorded = 0;
  // Events lost to full trace rings — nonzero means the exported trace is
  // clipped and trace_buffer_capacity should be raised (never silent).
  uint64_t trace_events_dropped = 0;
  // Peak events resident in any single trace ring (capacity head-room).
  uint64_t trace_buffer_high_water = 0;
  // Multi-tenant federation: arrivals refused by per-tenant admission
  // control at the splitter. Shed queries never reach a router shard and
  // are not counted in `queries` (0 when quotas are off).
  uint64_t queries_shed = 0;
  // Online mutations: schedule entries applied over the run (each entry
  // counts once, however many tenant keyspaces / blobs it rewrote; 0 with
  // mutations off).
  uint64_t mutations_applied = 0;
  // Incremental index-maintenance passes that drained at least one dirty
  // node to the maintainer on the gossip cadence (counted even when no
  // maintainer is registered — the drain itself is the pass).
  uint64_t index_refreshes = 0;
  // Mean stale-index distance error reported by the maintainer across all
  // refresh passes (paper fig 12(a)'s relative-error metric when the
  // embedding maintainer is wired; 0 with no maintainer or no samples).
  double stale_distance_error = 0.0;
  // Per-tenant slice of the run, indexed by tenant id; a single-tenant run
  // reports one row mirroring the run totals.
  std::vector<TenantMetrics> per_tenant;

  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
  double WallSeconds() const { return makespan_us / 1e6; }
};

// One answered query, in completion order. `processor` is the processor
// that executed it (post-stealing).
struct AnsweredQuery {
  uint64_t query_id = 0;
  uint32_t processor = 0;
  QueryResult result;
};

// What one incremental index-refresh pass did: how many dirty nodes the
// maintainer re-estimated, plus an optional staleness measurement (summed
// error over `error_samples` probes) that aggregates into
// ClusterMetrics::stale_distance_error.
struct IndexRefreshResult {
  uint64_t nodes_refreshed = 0;
  double error_sum = 0.0;
  uint64_t error_samples = 0;
};

// Incremental index maintenance hook: called on the gossip cadence with the
// sorted, deduplicated node ids dirtied by mutations since the last pass
// (tenant-local universe ids). Implementations typically call
// LandmarkIndex::AddNodeIncremental / RefreshAroundEdge and
// GraphEmbedding::AddNodeIncremental. Invoked with all router-shard
// strategy locks held on the threaded engine, so it may touch the routing
// strategy's index state race-free.
using IndexMaintainer = std::function<IndexRefreshResult(std::span<const NodeId>)>;

class ClusterEngine {
 public:
  virtual ~ClusterEngine() = default;

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  virtual EngineKind kind() const = 0;

  // Runs the workload to completion (cold caches) and returns the metrics.
  // May be called once per instance.
  virtual ClusterMetrics Run(std::span<const Query> queries) = 0;

  // Completion-order answers from Run.
  const std::vector<AnsweredQuery>& answers() const { return answers_; }

  const ClusterConfig& config() const { return config_; }
  StorageTier& storage() { return *storage_; }
  QueryProcessor& processor(uint32_t p) { return *processors_[p]; }

  // The query-lifecycle trace recorder; nullptr when tracing is disabled
  // (config.trace_sample_every_n == 0). Read the events only after Run().
  TraceRecorder* tracer() { return tracer_.get(); }
  const TraceRecorder* tracer() const { return tracer_.get(); }

  // Exports the recorded trace as Chrome-trace/Perfetto JSON
  // (src/obs/trace_export.h), appending engine/sampling entries to
  // `metadata`. Returns false when tracing was off or the write failed.
  bool ExportTrace(const std::string& path, TraceMetadata metadata = {}) const;

  // Installs the mutation schedule Run() applies (requires
  // config.enable_mutations; call before Run). Entries with apply_us <= 0
  // are applied quiesced at the start of the run, before any query is
  // dispatched — that is the deterministic, parity-testable mode. Timed
  // entries are stably sorted by apply_us and applied at that offset: as
  // virtual-time events on the simulated engine, by a wall-clock writer
  // thread on the threaded one.
  void set_mutation_schedule(std::vector<GraphMutation> schedule);

  // Registers the incremental index-maintenance hook driven on the gossip
  // cadence (see IndexMaintainer; call before Run). Optional: without it,
  // dirty nodes are still drained and counted as index_refreshes.
  void set_index_maintainer(IndexMaintainer maintainer);

 protected:
  // Shared cluster assembly: validates the config, loads the graph into a
  // fresh storage tier (hash placement unless `placement` is given; the
  // tier's repartitioning overlay is enabled when the config asks for it),
  // and stands up the query processors.
  ClusterEngine(const Graph& graph, const ClusterConfig& config,
                const PartitionAssignment* placement);

  // Sums per-processor execution stats (cache interaction, visited nodes,
  // storage bytes/batches) into `m`.
  void AddProcessorStats(ClusterMetrics* m) const;

  // Storage-tier stats: the per-server served-load spread and the
  // repartition counters accumulated by RepartitionRound.
  void AddStorageTierStats(ClusterMetrics* m) const;

  // Derives the mean and the p50/p95/p99/p999 response percentiles (ms)
  // from the histogram — one pass for every quantile, O(1) memory — plus
  // the mean queue wait.
  static void FillLatencyStats(ClusterMetrics* m, const LatencyHistogram& response_us,
                               const RunningStat& queue_wait_us);

  // Trace-subsystem counters (recorded/dropped/high-water) into `m`.
  void AddTraceStats(ClusterMetrics* m) const;

  // Deterministic per-tenant admission decisions for one arrival schedule.
  // Computed once, up front, by BOTH engines from the schedule's own
  // timestamps — so they shed exactly the same arrivals. An empty `admit`
  // vector means no quota: everything is admitted.
  struct AdmissionPlan {
    std::vector<uint8_t> admit;  // parallel to the schedule; empty = all
    uint64_t admitted = 0;
    uint64_t shed = 0;
    std::vector<uint64_t> shed_per_tenant;  // sized config.num_tenants

    bool Admitted(size_t i) const { return admit.empty() || admit[i] != 0; }
  };
  AdmissionPlan PlanAdmission(std::span<const Query> queries) const;

  // Schedule time (µs) of the i-th arrival: the query's open-loop
  // timestamp when open_loop_arrivals is on, else i * arrival_gap_us.
  double ArrivalTimeUs(const Query& q, size_t index) const;

  // Fills the per-tenant rows and the shed counter from per-tenant response
  // histograms / answer counts (both indexed by tenant id, sized
  // config.num_tenants) plus the run's admission plan.
  void FillTenantMetrics(ClusterMetrics* m,
                         std::span<const LatencyHistogram> tenant_response_us,
                         std::span<const uint64_t> tenant_queries,
                         const AdmissionPlan& plan) const;

  // Whether the config enables storage-tier repartition rounds at all —
  // hot-partition migration, replication, or both.
  bool repartition_enabled() const { return repartition_config_.active(); }

  // One storage-tier repartition round, shared by both engines: rolls the
  // access monitor's window into decayed rates, then (replication on)
  // executes planned replica demotions and promotions and (migration on)
  // plans hot-partition moves (threshold + hysteresis + cap + noise floor)
  // and executes each against the tier (copy -> flip -> drain -> delete).
  // Replica changes execute BEFORE the migration plan is computed, so
  // PlanRepartition sees the fresh replica sets and never picks a
  // just-promoted partition as a migration victim. Returns what
  // physically moved so the caller can charge engine-specific time for it.
  // Thread-safe against concurrent query execution, but rounds themselves
  // must be serialised (the sim's event loop / the threaded gossip tick
  // are).
  std::vector<StorageTier::MigrationResult> RepartitionRound();

  // Applies one schedule entry against the tier, counts it, and marks the
  // touched nodes dirty for the next index-refresh pass. Returns the blob
  // writes the tier performed (the sim's mutation_per_write_us multiplier).
  // Thread-safe (the tier serialises writes; the dirty list is locked).
  uint64_t ApplyOneMutation(const GraphMutation& m);

  // Applies every apply_us <= 0 schedule entry. Engines call this at the
  // start of Run(), before any query dispatch or worker thread exists.
  void ApplyQuiescedMutations();

  // One index-maintenance pass at schedule time `now_us`: honours
  // config.index_refresh_period_us against the previous pass, drains the
  // dirty-node list (sorted, deduplicated) into the registered maintainer,
  // and accumulates the refresh/staleness counters. Returns the number of
  // nodes drained (0 when gated or clean) — the sim's
  // index_refresh_per_node_us multiplier. Must be called from the engine's
  // serialised controller context (sim event loop / threaded gossip tick).
  uint64_t RunIndexMaintenance(double now_us);

  // Mutation counters into `m` (mutations_applied, index_refreshes,
  // stale_distance_error).
  void AddMutationStats(ClusterMetrics* m) const;

  // The installed schedule, stably sorted by apply_us (empty without
  // mutations). Timed entries are the ones with apply_us > 0.
  const std::vector<GraphMutation>& mutation_schedule() const {
    return mutation_schedule_;
  }

  ClusterConfig config_;
  std::unique_ptr<StorageTier> storage_;
  std::vector<std::unique_ptr<QueryProcessor>> processors_;
  std::vector<AnsweredQuery> answers_;
  // Built in the base ctor when config.trace_sample_every_n > 0; engines
  // record lifecycle spans into its per-track rings.
  std::unique_ptr<TraceRecorder> tracer_;
  // Lowered from config_: the storage rebalancer's controller policy.
  RepartitionConfig repartition_config_;
  // Partitions moved / replica copies created / replica copies torn down so
  // far (written only by RepartitionRound's caller).
  uint64_t partitions_migrated_ = 0;
  uint64_t replica_promotions_ = 0;
  uint64_t replica_demotions_ = 0;
  // Online mutations: the installed schedule, the dirty-node list awaiting
  // the next index-refresh pass (guarded by mutation_mu_ — the threaded
  // writer thread appends while the gossip tick drains), and the counters
  // behind AddMutationStats.
  std::vector<GraphMutation> mutation_schedule_;
  IndexMaintainer index_maintainer_;
  std::mutex mutation_mu_;
  std::vector<NodeId> pending_refresh_;
  uint64_t mutations_applied_ = 0;
  uint64_t index_refreshes_ = 0;
  double stale_error_sum_ = 0.0;
  uint64_t stale_error_samples_ = 0;
  double last_index_refresh_us_ = -std::numeric_limits<double>::infinity();
  bool ran_ = false;
};

// Builds the requested engine over a cold cluster. The strategy must route
// into [0, config.num_processors); `placement` (optional) pins each node's
// adjacency entry to an explicit storage server.
std::unique_ptr<ClusterEngine> MakeClusterEngine(
    EngineKind kind, const Graph& graph, const ClusterConfig& config,
    std::unique_ptr<RoutingStrategy> strategy,
    const PartitionAssignment* placement = nullptr);

}  // namespace grouting

#endif  // GROUTING_SRC_CORE_CLUSTER_ENGINE_H_
