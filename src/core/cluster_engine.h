// ClusterEngine: the single abstraction both execution engines implement.
//
// The paper's claim is that smart routing pays off in *both* a modelled
// decoupled cluster (the discrete-event simulator, virtual time) and a real
// one (the threaded runtime, wall time). This header gives them one shared
// vocabulary so every bench, example and test can target either engine:
//
//   * ClusterConfig  — processors, storage servers, per-processor cache,
//                      stealing, cost model / injected network delay,
//   * ClusterMetrics — throughput, mean/p95 response, queue wait, cache
//                      hits/misses, storage bytes/batches, steals, and the
//                      per-processor load split,
//   * EngineKind     — kSimulated | kThreaded, resolved by the
//                      MakeClusterEngine factory.
//
// The base class owns the assembly that used to be duplicated in both
// engine constructors: loading the graph into the storage tier (hash
// placement or an explicit assignment) and standing up the processors.

#ifndef GROUTING_SRC_CORE_CLUSTER_ENGINE_H_
#define GROUTING_SRC_CORE_CLUSTER_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/frontend/splitter.h"
#include "src/net/cost_model.h"
#include "src/proc/processor.h"
#include "src/query/query.h"
#include "src/routing/strategy.h"
#include "src/storage/storage_tier.h"
#include "src/util/stats.h"

namespace grouting {

enum class EngineKind {
  kSimulated,  // discrete-event simulation, deterministic virtual time
  kThreaded,   // real threads, wall-clock time
};

std::string EngineKindName(EngineKind kind);

// One configuration for either engine. Fields a given engine cannot honour
// are documented as such rather than split into per-engine structs — the
// whole point is that a sweep can flip EngineKind without rebuilding its
// config.
struct ClusterConfig {
  uint32_t num_processors = 7;  // paper default tier split: 1 / 7 / 4
  uint32_t num_storage_servers = 4;
  // Per-processor settings, including the async fetch pipeline's
  // processor.max_inflight_batches window (1 = synchronous level barrier;
  // > 1 = overlap cache probes with outstanding multiget batches).
  ProcessorConfig processor;
  bool enable_stealing = true;
  // Virtual-time cost model. Drives the simulated engine; the threaded
  // engine runs at memory speed and only honours injected_network_us.
  CostModel cost = CostModel::InfinibandDefaults();
  // Inter-arrival gap between queries at the router (µs); the paper sends
  // queries back to back. The simulated engine schedules arrivals in
  // virtual time; the threaded engine paces its feeder thread in wall time.
  double arrival_gap_us = 0.0;
  // Threaded engine: injected one-way network delay per storage batch
  // (busy-wait, µs). 0 = memory speed.
  double injected_network_us = 0.0;

  // --- Router frontend tier (src/frontend/) ---
  // Shared-nothing router shards fed by the arrival splitter; each owns a
  // slice of the arrival stream and its own strategy state. 1 = the paper's
  // single smart router.
  uint32_t num_router_shards = 1;
  // How arrivals are split across shards.
  SplitterKind router_splitter = SplitterKind::kRoundRobin;
  // Period of the load/EMA gossip between shards (virtual µs on the
  // simulated engine, wall-clock µs on the threaded one). 0 disables gossip.
  double gossip_period_us = 200.0;
  // Blend weight for sibling EMA state at a gossip round, in [0, 1].
  double gossip_merge_weight = 0.5;
  // Adaptive arrival re-splitting (router_splitter == kAdaptive): at each
  // gossip round, migrate hot sessions from the most- to the least-loaded
  // shard once the max/min routed-load ratio exceeds this threshold. <= 1
  // (or infinity) disables migration — kAdaptive then behaves exactly like
  // kSticky. Requires gossip_period_us > 0 (rebalance rides the gossip
  // round).
  double router_rebalance_threshold = 0.0;
  // At most this many sessions migrate per rebalance round (anti-thrash cap,
  // paired with a 0.9-of-threshold hysteresis water mark).
  uint32_t router_migration_cap = 8;
  // Bound on the sticky/adaptive splitter's session table; the oldest
  // session is evicted FIFO beyond it (ClusterMetrics::sticky_evictions).
  uint32_t router_session_capacity = 1u << 16;
};

// One metrics struct for either engine. Times are virtual µs for the
// simulated engine and wall-clock µs for the threaded one; the shape of the
// numbers (ratios between schemes) is what experiments compare.
struct ClusterMetrics {
  uint64_t queries = 0;
  double makespan_us = 0.0;  // arrival of first query -> last completion
  double throughput_qps = 0.0;
  double mean_response_ms = 0.0;  // dispatch -> completion (paper's metric)
  double p95_response_ms = 0.0;
  double mean_queue_wait_ms = 0.0;  // routed -> dispatched
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t nodes_visited = 0;
  uint64_t bytes_from_storage = 0;
  uint64_t storage_batches = 0;
  uint64_t steals = 0;
  std::vector<uint64_t> queries_per_processor;
  // Router frontend tier: arrival split across router shards, completed
  // gossip rounds, and the cross-shard EMA divergence (mean pairwise L2
  // between shard strategies' state; 0 for stateless strategies) at the end
  // of the run.
  std::vector<uint64_t> queries_per_router_shard;
  uint64_t gossip_rounds = 0;
  double router_ema_divergence = 0.0;
  // Adaptive re-splitting: sessions moved between router shards over the
  // run, sessions dropped at the splitter's capacity bound, and the final
  // max/min routed-load ratio across shards (1.0 = perfectly balanced or a
  // single shard).
  uint64_t sessions_migrated = 0;
  uint64_t sticky_evictions = 0;
  double router_load_imbalance = 0.0;
  // Async storage pipeline: peak concurrently outstanding multiget batches
  // on any processor, and total time processors spent doing useful work
  // (cache probes, merges, inserts) while at least one batch was in flight
  // (virtual µs on the simulated engine, wall µs on the threaded one).
  uint32_t batches_inflight_peak = 0;
  double fetch_overlap_us = 0.0;

  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
  double WallSeconds() const { return makespan_us / 1e6; }
};

// One answered query, in completion order. `processor` is the processor
// that executed it (post-stealing).
struct AnsweredQuery {
  uint64_t query_id = 0;
  uint32_t processor = 0;
  QueryResult result;
};

class ClusterEngine {
 public:
  virtual ~ClusterEngine() = default;

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  virtual EngineKind kind() const = 0;

  // Runs the workload to completion (cold caches) and returns the metrics.
  // May be called once per instance.
  virtual ClusterMetrics Run(std::span<const Query> queries) = 0;

  // Completion-order answers from Run.
  const std::vector<AnsweredQuery>& answers() const { return answers_; }

  const ClusterConfig& config() const { return config_; }
  StorageTier& storage() { return *storage_; }
  QueryProcessor& processor(uint32_t p) { return *processors_[p]; }

 protected:
  // Shared cluster assembly: validates the config, loads the graph into a
  // fresh storage tier (hash placement unless `placement` is given), and
  // stands up the query processors.
  ClusterEngine(const Graph& graph, const ClusterConfig& config,
                const PartitionAssignment* placement);

  // Sums per-processor execution stats (cache interaction, visited nodes,
  // storage bytes/batches) into `m`.
  void AddProcessorStats(ClusterMetrics* m) const;

  // Derives mean/p95 response and mean queue wait (ms) from µs samples.
  static void FillLatencyStats(ClusterMetrics* m, std::vector<double> response_us,
                               const RunningStat& queue_wait_us);

  ClusterConfig config_;
  std::unique_ptr<StorageTier> storage_;
  std::vector<std::unique_ptr<QueryProcessor>> processors_;
  std::vector<AnsweredQuery> answers_;
  bool ran_ = false;
};

// Builds the requested engine over a cold cluster. The strategy must route
// into [0, config.num_processors); `placement` (optional) pins each node's
// adjacency entry to an explicit storage server.
std::unique_ptr<ClusterEngine> MakeClusterEngine(
    EngineKind kind, const Graph& graph, const ClusterConfig& config,
    std::unique_ptr<RoutingStrategy> strategy,
    const PartitionAssignment* placement = nullptr);

}  // namespace grouting

#endif  // GROUTING_SRC_CORE_CLUSTER_ENGINE_H_
