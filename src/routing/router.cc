#include "src/routing/router.h"

#include <algorithm>

namespace grouting {

Router::Router(std::unique_ptr<RoutingStrategy> strategy, uint32_t num_processors,
               RouterConfig config)
    : strategy_(std::move(strategy)), num_processors_(num_processors), config_(config) {
  GROUTING_CHECK(strategy_ != nullptr);
  GROUTING_CHECK(num_processors_ > 0);
  queues_.resize(num_processors_);
  lengths_.assign(num_processors_, 0);
  remote_load_.assign(num_processors_, 0);
  combined_load_.assign(num_processors_, 0);
  stats_.per_processor.assign(num_processors_, 0);
}

void Router::SetRemoteLoad(std::span<const uint32_t> remote) {
  GROUTING_CHECK(remote.size() == num_processors_);
  has_remote_load_ = false;
  for (uint32_t p = 0; p < num_processors_; ++p) {
    remote_load_[p] = remote[p];
    has_remote_load_ |= remote[p] != 0;
  }
}

uint32_t Router::Enqueue(const Query& q) {
  RouterContext ctx;
  ctx.num_processors = num_processors_;
  if (has_remote_load_) {
    for (uint32_t p = 0; p < num_processors_; ++p) {
      combined_load_[p] = lengths_[p] + remote_load_[p];
    }
    ctx.queue_lengths = combined_load_;
  } else {
    ctx.queue_lengths = lengths_;
  }
  const uint32_t p = strategy_->Route(q.node, ctx);
  GROUTING_CHECK(p < num_processors_);
  queues_[p].push_back(q);
  ++lengths_[p];
  ++pending_;
  ++stats_.routed;
  return p;
}

std::optional<Query> Router::NextForProcessor(uint32_t p) {
  GROUTING_CHECK(p < num_processors_);
  uint32_t source = p;
  if (queues_[p].empty()) {
    if (!config_.enable_stealing) {
      return std::nullopt;
    }
    // Steal the OLDEST query of the longest queue: the head has waited the
    // longest, and the victim's newer entries are the hotspot run whose
    // locality its cache is currently being warmed for.
    uint32_t longest = p;
    for (uint32_t i = 0; i < num_processors_; ++i) {
      if (lengths_[i] > lengths_[longest]) {
        longest = i;
      }
    }
    if (queues_[longest].empty()) {
      return std::nullopt;
    }
    source = longest;
  }

  Query q = queues_[source].front();
  queues_[source].pop_front();
  if (source != p) {
    ++stats_.steals;
  }
  --lengths_[source];
  --pending_;
  ++stats_.dispatched;
  stats_.per_processor[p] += 1;
  // `source` is the queue the query was routed onto, so the strategy sees
  // both the executor and the original target (they differ on a steal).
  strategy_->OnDispatch(q.node, p, source);
  return q;
}

}  // namespace grouting
