// The query router (paper Sections 2.3 / 3.2):
//
//   * one queue per processor connection; a query is routed on arrival by
//     the active RoutingStrategy using current queue lengths as load,
//   * dispatch is acknowledgement-driven — the engine asks for the next
//     query for processor p only when p finished its previous one,
//   * QUERY STEALING (Requirement 2): an idle processor whose queue is empty
//     takes a query from the longest queue, so no processor idles while
//     work is pending.

#ifndef GROUTING_SRC_ROUTING_ROUTER_H_
#define GROUTING_SRC_ROUTING_ROUTER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/query/query.h"
#include "src/routing/strategy.h"

namespace grouting {

struct RouterStats {
  uint64_t routed = 0;
  uint64_t dispatched = 0;
  uint64_t steals = 0;
  // Queries per processor, post-stealing (load balance diagnostics).
  std::vector<uint64_t> per_processor;
};

struct RouterConfig {
  bool enable_stealing = true;
};

class Router {
 public:
  Router(std::unique_ptr<RoutingStrategy> strategy, uint32_t num_processors,
         RouterConfig config = {});

  uint32_t num_processors() const { return num_processors_; }

  // Routes the query onto a processor queue; returns the chosen processor.
  uint32_t Enqueue(const Query& q);

  // Next query for a ready processor: its own queue first, else stolen from
  // the longest queue. Records the dispatch with the strategy (EMA etc.).
  std::optional<Query> NextForProcessor(uint32_t p);

  bool HasPending() const { return pending_ > 0; }
  size_t pending() const { return pending_; }
  // View over the maintained per-processor lengths — valid until the next
  // Enqueue/NextForProcessor call, never a copy (this is on the hot path).
  std::span<const uint32_t> QueueLengths() const { return lengths_; }

  // Router sharding (src/frontend/): per-processor queue lengths reported by
  // sibling router shards at the last gossip round. Added on top of the
  // local lengths when building the strategy's load context, so a shard
  // routes against its best estimate of cluster-wide load. Empty = none.
  void SetRemoteLoad(std::span<const uint32_t> remote);

  RoutingStrategy& strategy() { return *strategy_; }
  const RoutingStrategy& strategy() const { return *strategy_; }
  const RouterStats& stats() const { return stats_; }

 private:
  std::unique_ptr<RoutingStrategy> strategy_;
  uint32_t num_processors_;
  RouterConfig config_;
  std::vector<std::deque<Query>> queues_;
  std::vector<uint32_t> lengths_;
  std::vector<uint32_t> remote_load_;    // gossip snapshot, zeros when unsharded
  std::vector<uint32_t> combined_load_;  // scratch: lengths_ + remote_load_
  bool has_remote_load_ = false;
  size_t pending_ = 0;
  RouterStats stats_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_ROUTING_ROUTER_H_
