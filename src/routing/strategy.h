// Routing strategies (paper Section 3): given a query node and the current
// router-visible load (per-processor queue lengths), pick a processor.
//
// Baselines:  NextReady (least-loaded), Hash (modulo MurmurHash3).
// Smart:      Landmark  (argmin d(u,p) + load/load_factor),
//             Embed     (argmin ||EMA_p - coord(u)|| + load/load_factor).
//
// Strategies are engine-agnostic: the discrete-event simulator and the real
// threaded runtime both drive the same objects.

#ifndef GROUTING_SRC_ROUTING_STRATEGY_H_
#define GROUTING_SRC_ROUTING_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/embed/embedding.h"
#include "src/graph/graph.h"
#include "src/landmark/landmark_index.h"
#include "src/net/cost_model.h"
#include "src/util/murmur3.h"
#include "src/util/rng.h"

namespace grouting {

struct RouterContext {
  uint32_t num_processors = 0;
  // Pending queries per processor (the paper's router-side load measure).
  std::span<const uint32_t> queue_lengths;
};

class RoutingStrategy {
 public:
  virtual ~RoutingStrategy() = default;

  virtual std::string name() const = 0;

  // Chooses a processor in [0, ctx.num_processors).
  virtual uint32_t Route(NodeId query_node, const RouterContext& ctx) = 0;

  // Observes the final dispatch decision (post query stealing), letting
  // stateful strategies (Embed's EMA) track actual cache contents.
  // `processor` is the executor; `routed_processor` is the one Route chose —
  // they differ exactly when the query was stolen.
  virtual void OnDispatch(NodeId query_node, uint32_t processor,
                          uint32_t routed_processor) {
    (void)query_node;
    (void)processor;
    (void)routed_processor;
  }

  // Router-sharding hooks (src/frontend/): a RouterFleet gives every shard
  // its own strategy instance via Clone() and reconciles their adaptive
  // state at gossip rounds via MergeRemoteState(). Stateless strategies get
  // the defaults; only Clone() must be overridden to opt a strategy into
  // sharded frontends (the fleet checks for it when num_shards > 1).
  virtual std::unique_ptr<RoutingStrategy> Clone() const { return nullptr; }

  // Blends a sibling shard's adaptive state into this one with the given
  // weight in [0, 1]. No-op for stateless strategies; EMA blend for Embed.
  virtual void MergeRemoteState(const RoutingStrategy& remote, double weight) {
    (void)remote;
    (void)weight;
  }

  // Flat view of the adaptive state MergeRemoteState reconciles, used by the
  // fleet's cross-shard divergence metric. Empty for stateless strategies.
  virtual std::span<const double> GossipState() const { return {}; }

  // Virtual-time cost of one routing decision under the cost model.
  virtual SimTimeUs DecisionCostUs(const CostModel& cm, uint32_t num_processors) const {
    return cm.route_base_us + cm.route_per_proc_us * num_processors;
  }
};

// Least-loaded processor; ties broken round-robin. Constant-time, no state,
// perfectly balanced — and cache-oblivious.
class NextReadyStrategy : public RoutingStrategy {
 public:
  std::string name() const override { return "next_ready"; }
  uint32_t Route(NodeId query_node, const RouterContext& ctx) override;
  std::unique_ptr<RoutingStrategy> Clone() const override {
    return std::make_unique<NextReadyStrategy>(*this);
  }

 private:
  uint32_t rotor_ = 0;
};

// Target = MurmurHash3(node) mod P (paper Eq. 1 with a better hash than
// plain modulo). Repeats of the same query node hit the same processor, but
// neighbouring nodes scatter.
class HashStrategy : public RoutingStrategy {
 public:
  explicit HashStrategy(uint32_t hash_seed = 0x9747b28cu) : hash_seed_(hash_seed) {}
  std::string name() const override { return "hash"; }
  uint32_t Route(NodeId query_node, const RouterContext& ctx) override;
  std::unique_ptr<RoutingStrategy> Clone() const override {
    return std::make_unique<HashStrategy>(*this);
  }

 private:
  uint32_t hash_seed_;
};

// Landmark routing (paper Eq. 3): d_LB(u,p) = d(u,p) + load(p)/load_factor.
class LandmarkStrategy : public RoutingStrategy {
 public:
  LandmarkStrategy(const LandmarkIndex* index, double load_factor)
      : index_(index), load_factor_(load_factor) {
    GROUTING_CHECK(index_ != nullptr);
    GROUTING_CHECK(load_factor_ > 0.0);
  }
  std::string name() const override { return "landmark"; }
  uint32_t Route(NodeId query_node, const RouterContext& ctx) override;
  std::unique_ptr<RoutingStrategy> Clone() const override {
    // Shards share the (immutable at routing time) landmark index.
    return std::make_unique<LandmarkStrategy>(*this);
  }

 private:
  const LandmarkIndex* index_;
  double load_factor_;
};

// Embed routing (paper Eqs. 5-7): router keeps an exponential moving average
// of the coordinates dispatched to each processor as a proxy for its cache
// contents; d1_LB(u,p) = ||EMA_p - coord(u)|| + load(p)/load_factor.
class EmbedStrategy : public RoutingStrategy {
 public:
  EmbedStrategy(const GraphEmbedding* embedding, double alpha, double load_factor,
                uint32_t num_processors, uint64_t seed = 99);

  std::string name() const override { return "embed"; }
  uint32_t Route(NodeId query_node, const RouterContext& ctx) override;
  void OnDispatch(NodeId query_node, uint32_t processor,
                  uint32_t routed_processor) override;
  std::unique_ptr<RoutingStrategy> Clone() const override {
    // Clones share the embedding but own their EMA view; fleet shards start
    // identical and diverge with their arrival slices until gossip re-blends.
    return std::make_unique<EmbedStrategy>(*this);
  }
  void MergeRemoteState(const RoutingStrategy& remote, double weight) override;
  std::span<const double> GossipState() const override { return ema_; }
  SimTimeUs DecisionCostUs(const CostModel& cm, uint32_t num_processors) const override;

  std::span<const double> MeanCoordinates(uint32_t processor) const {
    return {ema_.data() + static_cast<size_t>(processor) * dims_, dims_};
  }

 private:
  void UpdateMean(NodeId query_node, uint32_t processor);

  const GraphEmbedding* embedding_;
  double alpha_;
  double load_factor_;
  size_t dims_;
  std::vector<double> ema_;  // P x D
  NextReadyStrategy fallback_;  // for unembedded query nodes
};

// Factory helper used by configs/benches.
enum class RoutingSchemeKind {
  kNextReady,
  kHash,
  kLandmark,
  kEmbed,
  kNoCache,  // next-ready routing + processors run without cache
};

std::string RoutingSchemeKindName(RoutingSchemeKind kind);

}  // namespace grouting

#endif  // GROUTING_SRC_ROUTING_STRATEGY_H_
