#include "src/routing/strategy.h"

#include <algorithm>
#include <cmath>

namespace grouting {

std::string RoutingSchemeKindName(RoutingSchemeKind kind) {
  switch (kind) {
    case RoutingSchemeKind::kNextReady:
      return "next_ready";
    case RoutingSchemeKind::kHash:
      return "hash";
    case RoutingSchemeKind::kLandmark:
      return "landmark";
    case RoutingSchemeKind::kEmbed:
      return "embed";
    case RoutingSchemeKind::kNoCache:
      return "no_cache";
  }
  return "unknown";
}

uint32_t NextReadyStrategy::Route(NodeId query_node, const RouterContext& ctx) {
  (void)query_node;
  GROUTING_CHECK(ctx.num_processors > 0);
  uint32_t best = rotor_ % ctx.num_processors;
  for (uint32_t i = 0; i < ctx.num_processors; ++i) {
    const uint32_t p = (rotor_ + i) % ctx.num_processors;
    if (ctx.queue_lengths[p] < ctx.queue_lengths[best]) {
      best = p;
    }
  }
  ++rotor_;
  return best;
}

uint32_t HashStrategy::Route(NodeId query_node, const RouterContext& ctx) {
  GROUTING_CHECK(ctx.num_processors > 0);
  return Murmur3Hash64(query_node, hash_seed_) % ctx.num_processors;
}

uint32_t LandmarkStrategy::Route(NodeId query_node, const RouterContext& ctx) {
  GROUTING_CHECK(ctx.num_processors > 0);
  uint32_t best = 0;
  double best_score = 0.0;
  for (uint32_t p = 0; p < ctx.num_processors; ++p) {
    const uint16_t d16 =
        query_node < index_->num_nodes() ? index_->Distance(query_node, p) : kUnreachableU16;
    // Unknown distance = "very far" but finite, so the load term still
    // discriminates between overloaded processors.
    const double d = d16 == kUnreachableU16 ? 1e5 : static_cast<double>(d16);
    const double score = d + static_cast<double>(ctx.queue_lengths[p]) / load_factor_;
    if (p == 0 || score < best_score) {
      best_score = score;
      best = p;
    }
  }
  return best;
}

EmbedStrategy::EmbedStrategy(const GraphEmbedding* embedding, double alpha,
                             double load_factor, uint32_t num_processors, uint64_t seed)
    : embedding_(embedding),
      alpha_(alpha),
      load_factor_(load_factor),
      dims_(embedding->dimensions()) {
  GROUTING_CHECK(embedding_ != nullptr);
  GROUTING_CHECK(alpha_ >= 0.0 && alpha_ <= 1.0);
  GROUTING_CHECK(load_factor_ > 0.0);
  GROUTING_CHECK(num_processors > 0);
  // Paper: "Initially, the mean co-ordinates for each processor are assigned
  // uniformly at random" — seed each EMA with the coordinates of a random
  // embedded node so the initial means live in the coordinate space.
  ema_.assign(static_cast<size_t>(num_processors) * dims_, 0.0);
  Rng rng(seed);
  const size_t n = embedding_->num_nodes();
  for (uint32_t p = 0; p < num_processors; ++p) {
    for (size_t attempt = 0; attempt < 64 && n > 0; ++attempt) {
      const auto u = static_cast<NodeId>(rng.NextBounded(n));
      if (embedding_->IsEmbedded(u)) {
        const auto coords = embedding_->Coords(u);
        for (size_t k = 0; k < dims_; ++k) {
          ema_[static_cast<size_t>(p) * dims_ + k] = coords[k];
        }
        break;
      }
    }
  }
}

uint32_t EmbedStrategy::Route(NodeId query_node, const RouterContext& ctx) {
  GROUTING_CHECK(ctx.num_processors > 0);
  if (query_node >= embedding_->num_nodes() || !embedding_->IsEmbedded(query_node)) {
    return fallback_.Route(query_node, ctx);
  }
  const auto coords = embedding_->Coords(query_node);
  uint32_t best = 0;
  double best_score = 0.0;
  for (uint32_t p = 0; p < ctx.num_processors; ++p) {
    const double* mean = ema_.data() + static_cast<size_t>(p) * dims_;
    double sq = 0.0;
    for (size_t k = 0; k < dims_; ++k) {
      const double diff = mean[k] - static_cast<double>(coords[k]);
      sq += diff * diff;
    }
    const double score =
        std::sqrt(sq) + static_cast<double>(ctx.queue_lengths[p]) / load_factor_;
    if (p == 0 || score < best_score) {
      best_score = score;
      best = p;
    }
  }
  // Paper: "keeping an average of the query nodes' co-ordinates that it SENT
  // to each processor" — the mean updates when the router routes the query,
  // so it always reflects the full routing history even while earlier
  // queries are still queued.
  UpdateMean(query_node, best);
  return best;
}

void EmbedStrategy::OnDispatch(NodeId query_node, uint32_t processor,
                               uint32_t routed_processor) {
  if (processor == routed_processor) {
    // EMA already updated at routing time (see Route).
    return;
  }
  // Stolen query: the thief's cache — not the routed target's — is the one
  // being warmed with this neighbourhood, so pull its mean toward the query.
  // The routed target keeps its route-time update; EMA decay washes that
  // distortion out, and correcting the thief is what keeps the proxy honest
  // under sustained stealing.
  UpdateMean(query_node, processor);
}

void EmbedStrategy::MergeRemoteState(const RoutingStrategy& remote, double weight) {
  GROUTING_CHECK(weight >= 0.0 && weight <= 1.0);
  const auto* other = dynamic_cast<const EmbedStrategy*>(&remote);
  GROUTING_CHECK_MSG(other != nullptr && other->ema_.size() == ema_.size(),
                     "EmbedStrategy can only merge state from an equal-shape peer");
  // Gossip blend: pull this shard's per-processor means toward the sibling's
  // view. Weight < 1 keeps some local signal so shards converge rather than
  // oscillate.
  for (size_t i = 0; i < ema_.size(); ++i) {
    ema_[i] = (1.0 - weight) * ema_[i] + weight * other->ema_[i];
  }
}

void EmbedStrategy::UpdateMean(NodeId query_node, uint32_t processor) {
  if (query_node >= embedding_->num_nodes() || !embedding_->IsEmbedded(query_node)) {
    return;
  }
  // Paper Eq. 5: Mean(p) = alpha * Mean(p) + (1 - alpha) * Coords(v).
  const auto coords = embedding_->Coords(query_node);
  double* mean = ema_.data() + static_cast<size_t>(processor) * dims_;
  for (size_t k = 0; k < dims_; ++k) {
    mean[k] = alpha_ * mean[k] + (1.0 - alpha_) * static_cast<double>(coords[k]);
  }
}

SimTimeUs EmbedStrategy::DecisionCostUs(const CostModel& cm,
                                        uint32_t num_processors) const {
  // O(P * D) distance arithmetic: charge the per-processor scan cost per
  // 4-dimension block (SIMD-ish), so high dimensionality shows up in the
  // router's decision latency (paper Fig. 12b).
  const double dim_blocks = std::max(1.0, static_cast<double>(dims_) / 4.0);
  return cm.route_base_us + cm.route_per_proc_us * num_processors * dim_blocks;
}

}  // namespace grouting
