// Landmark-based graph embedding into D-dimensional Euclidean space (paper
// Section 3.4.2, following Orion/Vivaldi):
//
//   1. landmarks are embedded first, minimising pairwise RELATIVE distance
//      error with Simplex Downhill (relative error favours nearby pairs,
//      which is what routing cares about),
//   2. every other node is embedded independently (and in parallel) against
//      its nearest landmarks' coordinates,
//   3. new nodes can be embedded incrementally from estimated landmark
//      distances without touching existing coordinates.
//
// Router storage is O(n*D) floats (Table 3).

#ifndef GROUTING_SRC_EMBED_EMBEDDING_H_
#define GROUTING_SRC_EMBED_EMBEDDING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/landmark/landmark.h"
#include "src/util/rng.h"

namespace grouting {

struct EmbedConfig {
  size_t dimensions = 10;  // paper default (error saturates at ~10)
  // Nelder-Mead budget per node; landmarks get 4x this.
  int max_evals_per_node = 320;
  // Each node is optimised against its `landmarks_per_node` nearest
  // landmarks (all landmarks would be ~4x slower for <1% error gain).
  size_t landmarks_per_node = 24;
  // Cyclic refinement rounds over the landmark coordinates.
  int landmark_refine_rounds = 3;
  size_t num_threads = 0;  // 0 = hardware concurrency
  uint64_t seed = 11;
};

struct EmbeddingStats {
  double landmark_embed_seconds = 0.0;  // Table 2 column 2
  double node_embed_seconds = 0.0;      // Table 2 column 3 (total, all nodes)
  double mean_landmark_relative_error = 0.0;
};

class GraphEmbedding {
 public:
  // Embeds all nodes known to `landmarks`. Nodes with no known landmark
  // distances (outside the preprocessed subgraph) stay unembedded until
  // AddNodeIncremental.
  static GraphEmbedding Build(const LandmarkSet& landmarks, const EmbedConfig& config);

  size_t dimensions() const { return dims_; }
  size_t num_nodes() const { return embedded_.size(); }

  bool IsEmbedded(NodeId u) const { return embedded_[u] != 0; }

  std::span<const float> Coords(NodeId u) const {
    GROUTING_DCHECK(u < num_nodes());
    return {coords_.data() + static_cast<size_t>(u) * dims_, dims_};
  }

  // L2 distance between a node's coordinates and an arbitrary point.
  double DistanceToPoint(NodeId u, std::span<const double> point) const;

  // Embeds node u from landmark-distance estimates derived from already-
  // embedded neighbours (incremental insertion path). Returns false if no
  // neighbour was known.
  bool AddNodeIncremental(const Graph& g, NodeId u, LandmarkSet& landmarks);

  // Batch refresh for the engine's index-maintenance hook: embeds every
  // not-yet-embedded node of `nodes` incrementally from its neighbours'
  // estimates. Already-embedded nodes keep their coordinates — drift from
  // edge churn is reconciled by periodic offline recomputes, as in the
  // paper — so the pass stays cheap and stale-bounded. Returns how many
  // nodes were newly embedded.
  size_t RefreshNodes(const Graph& g, std::span<const NodeId> nodes,
                      LandmarkSet& landmarks);

  // Mean relative error |d_graph - d_embed| / d_graph over sampled node
  // pairs within `radius` hops of each other (Figure 12(a)'s metric).
  double MeasureRelativeError(const Graph& g, size_t samples, int32_t radius,
                              Rng& rng) const;

  uint64_t MemoryBytes() const { return coords_.size() * sizeof(float) + embedded_.size(); }
  const EmbeddingStats& stats() const { return stats_; }

 private:
  // Embeds one node against the given landmark coordinate rows; writes into
  // coords row u.
  void EmbedNode(NodeId u, const LandmarkSet& landmarks,
                 std::span<const uint16_t> landmark_dists, const EmbedConfig& config,
                 uint64_t salt);

  size_t dims_ = 0;
  std::vector<float> coords_;          // n x D row-major
  std::vector<float> landmark_coords_;  // L x D row-major
  std::vector<uint8_t> embedded_;
  EmbeddingStats stats_;
  EmbedConfig config_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_EMBED_EMBEDDING_H_
