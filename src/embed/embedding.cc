#include "src/embed/embedding.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/embed/nelder_mead.h"
#include "src/graph/traversal.h"

namespace grouting {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double L2(std::span<const double> a, std::span<const float> b) {
  double sum = 0.0;
  for (size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - static_cast<double>(b[k]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

double L2f(std::span<const float> a, std::span<const float> b) {
  double sum = 0.0;
  for (size_t k = 0; k < a.size(); ++k) {
    const double d = static_cast<double>(a[k]) - static_cast<double>(b[k]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

// Relative-error objective against a set of (coordinate row, graph distance)
// anchors. Unreachable anchors are skipped; zero-distance anchors pin the
// point with an absolute penalty instead (relative error is undefined at 0).
struct RelativeErrorObjective {
  std::span<const float> anchor_coords;  // A x D row-major
  std::span<const uint16_t> anchor_dists;
  size_t dims;

  double operator()(std::span<const double> x) const {
    double total = 0.0;
    const size_t anchors = anchor_dists.size();
    for (size_t a = 0; a < anchors; ++a) {
      const uint16_t d = anchor_dists[a];
      if (d == kUnreachableU16) {
        continue;
      }
      const double embed_dist =
          L2(x, anchor_coords.subspan(a * dims, dims));
      if (d == 0) {
        total += embed_dist;  // co-located anchor
      } else {
        total += std::abs(static_cast<double>(d) - embed_dist) / static_cast<double>(d);
      }
    }
    return total;
  }
};

}  // namespace

GraphEmbedding GraphEmbedding::Build(const LandmarkSet& landmarks,
                                     const EmbedConfig& config) {
  GROUTING_CHECK(config.dimensions > 0);
  GraphEmbedding emb;
  emb.config_ = config;
  emb.dims_ = config.dimensions;
  const size_t L = landmarks.count();
  const size_t n = L > 0 ? landmarks.DistanceVector(0).size() : 0;
  emb.coords_.assign(n * emb.dims_, 0.0f);
  emb.embedded_.assign(n, 0);
  emb.landmark_coords_.assign(L * emb.dims_, 0.0f);
  if (L == 0 || n == 0) {
    return emb;
  }

  Rng rng(config.seed);
  const auto lm_start = std::chrono::steady_clock::now();

  // --- Phase 1: embed the landmarks against each other. ---
  // Incremental placement: each landmark is optimised against the ones
  // already placed, then a few cyclic refinement rounds polish all of them.
  std::vector<double> x(emb.dims_);
  std::vector<uint16_t> placed_dists;
  NelderMeadOptions lm_opts;
  lm_opts.max_evals = config.max_evals_per_node * 4;
  lm_opts.initial_step = 1.0;

  for (size_t l = 0; l < L; ++l) {
    if (l == 0) {
      std::fill(x.begin(), x.end(), 0.0);
    } else {
      // Start near the first placed landmark, offset by the graph distance
      // in a random direction.
      const double d0 = landmarks.LandmarkDistance(l, 0) == kUnreachableU16
                            ? 4.0
                            : landmarks.LandmarkDistance(l, 0);
      for (size_t k = 0; k < emb.dims_; ++k) {
        x[k] = static_cast<double>(emb.landmark_coords_[k]) +
               rng.NextGaussian() * std::max(1.0, d0) / std::sqrt(static_cast<double>(emb.dims_));
      }
      placed_dists.resize(l);
      for (size_t j = 0; j < l; ++j) {
        placed_dists[j] = landmarks.LandmarkDistance(l, j);
      }
      RelativeErrorObjective obj{
          std::span<const float>(emb.landmark_coords_.data(), l * emb.dims_),
          placed_dists, emb.dims_};
      NelderMead(obj, std::span<double>(x), lm_opts);
    }
    for (size_t k = 0; k < emb.dims_; ++k) {
      emb.landmark_coords_[l * emb.dims_ + k] = static_cast<float>(x[k]);
    }
  }

  // Cyclic refinement: re-optimise each landmark against all others.
  std::vector<uint16_t> all_dists(L);
  std::vector<float> others_coords((L - 1) * emb.dims_);
  std::vector<uint16_t> others_dists(L - 1);
  for (int round = 0; round < config.landmark_refine_rounds; ++round) {
    for (size_t l = 0; l < L; ++l) {
      size_t w = 0;
      for (size_t j = 0; j < L; ++j) {
        if (j == l) {
          continue;
        }
        std::copy_n(emb.landmark_coords_.data() + j * emb.dims_, emb.dims_,
                    others_coords.data() + w * emb.dims_);
        others_dists[w] = landmarks.LandmarkDistance(l, j);
        ++w;
      }
      for (size_t k = 0; k < emb.dims_; ++k) {
        x[k] = emb.landmark_coords_[l * emb.dims_ + k];
      }
      RelativeErrorObjective obj{std::span<const float>(others_coords), others_dists,
                                 emb.dims_};
      NelderMead(obj, std::span<double>(x), lm_opts);
      for (size_t k = 0; k < emb.dims_; ++k) {
        emb.landmark_coords_[l * emb.dims_ + k] = static_cast<float>(x[k]);
      }
    }
  }

  // Landmark-pair relative error (diagnostic, also used by Fig 12a).
  double err_sum = 0.0;
  size_t err_count = 0;
  for (size_t a = 0; a < L; ++a) {
    for (size_t b = a + 1; b < L; ++b) {
      const uint16_t d = landmarks.LandmarkDistance(a, b);
      if (d == kUnreachableU16 || d == 0) {
        continue;
      }
      const double de = L2f({emb.landmark_coords_.data() + a * emb.dims_, emb.dims_},
                            {emb.landmark_coords_.data() + b * emb.dims_, emb.dims_});
      err_sum += std::abs(static_cast<double>(d) - de) / static_cast<double>(d);
      ++err_count;
    }
  }
  emb.stats_.mean_landmark_relative_error =
      err_count > 0 ? err_sum / static_cast<double>(err_count) : 0.0;
  emb.stats_.landmark_embed_seconds = SecondsSince(lm_start);

  // --- Phase 2: embed every known node, in parallel. ---
  const auto node_start = std::chrono::steady_clock::now();
  size_t threads = config.num_threads == 0
                       ? std::max(1u, std::thread::hardware_concurrency())
                       : config.num_threads;
  threads = std::min<size_t>(threads, 64);
  std::atomic<size_t> next{0};
  auto worker = [&emb, &landmarks, &next, n, L](const EmbedConfig& cfg) {
    std::vector<uint16_t> dists(L);
    while (true) {
      const size_t u = next.fetch_add(1, std::memory_order_relaxed);
      if (u >= n) {
        break;
      }
      if (!landmarks.IsKnown(static_cast<NodeId>(u))) {
        continue;
      }
      for (size_t l = 0; l < L; ++l) {
        dists[l] = landmarks.Distance(l, static_cast<NodeId>(u));
      }
      emb.EmbedNode(static_cast<NodeId>(u), landmarks, dists, cfg, cfg.seed);
    }
  };
  if (threads <= 1) {
    worker(config);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back(worker, config);
    }
    for (auto& t : pool) {
      t.join();
    }
  }
  emb.stats_.node_embed_seconds = SecondsSince(node_start);
  return emb;
}

void GraphEmbedding::EmbedNode(NodeId u, const LandmarkSet& landmarks,
                               std::span<const uint16_t> landmark_dists,
                               const EmbedConfig& config, uint64_t salt) {
  const size_t L = landmarks.count();
  // Pick the nearest `landmarks_per_node` reachable landmarks as anchors.
  std::vector<size_t> order;
  order.reserve(L);
  for (size_t l = 0; l < L; ++l) {
    if (landmark_dists[l] != kUnreachableU16) {
      order.push_back(l);
    }
  }
  if (order.empty()) {
    return;  // disconnected from every landmark: stays unembedded
  }
  const size_t keep = std::min(config.landmarks_per_node, order.size());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](size_t a, size_t b) { return landmark_dists[a] < landmark_dists[b]; });
  order.resize(keep);

  // If the node IS a landmark, reuse its phase-1 coordinates.
  if (landmark_dists[order[0]] == 0) {
    const size_t l = order[0];
    if (landmarks.landmark_node(l) == u) {
      std::copy_n(landmark_coords_.data() + l * dims_, dims_,
                  coords_.data() + static_cast<size_t>(u) * dims_);
      embedded_[u] = 1;
      return;
    }
  }

  std::vector<float> anchor_coords(keep * dims_);
  std::vector<uint16_t> anchor_dists(keep);
  for (size_t i = 0; i < keep; ++i) {
    std::copy_n(landmark_coords_.data() + order[i] * dims_, dims_,
                anchor_coords.data() + i * dims_);
    anchor_dists[i] = landmark_dists[order[i]];
  }

  // Initial guess: inverse-distance-weighted anchor centroid. Nodes with
  // near-identical landmark-distance vectors (e.g. same community) start at
  // near-identical points and converge to near-identical coordinates —
  // exactly the locality the router needs. The tiny deterministic jitter
  // only breaks exact simplex degeneracy.
  Rng rng(salt ^ (0x9e3779b97f4a7c15ULL * (u + 1)));
  std::vector<double> x(dims_, 0.0);
  double weight_sum = 0.0;
  for (size_t i = 0; i < keep; ++i) {
    const double w = 1.0 / (1.0 + static_cast<double>(anchor_dists[i]));
    weight_sum += w;
    for (size_t k = 0; k < dims_; ++k) {
      x[k] += w * static_cast<double>(anchor_coords[i * dims_ + k]);
    }
  }
  const double scale = std::max<double>(1.0, anchor_dists[0]);
  for (size_t k = 0; k < dims_; ++k) {
    x[k] = x[k] / weight_sum + rng.NextGaussian() * 0.05;
  }

  RelativeErrorObjective obj{std::span<const float>(anchor_coords), anchor_dists, dims_};
  NelderMeadOptions opts;
  opts.max_evals = config.max_evals_per_node;
  opts.initial_step = 0.25 * scale;
  NelderMead(obj, std::span<double>(x), opts);

  float* row = coords_.data() + static_cast<size_t>(u) * dims_;
  for (size_t k = 0; k < dims_; ++k) {
    row[k] = static_cast<float>(x[k]);
  }
  embedded_[u] = 1;
}

double GraphEmbedding::DistanceToPoint(NodeId u, std::span<const double> point) const {
  GROUTING_DCHECK(point.size() == dims_);
  return L2(point, Coords(u));
}

bool GraphEmbedding::AddNodeIncremental(const Graph& g, NodeId u, LandmarkSet& landmarks) {
  GROUTING_CHECK(u < num_nodes());
  const auto est = landmarks.EstimateDistances(g, u);
  const bool any_known =
      std::any_of(est.begin(), est.end(), [](uint16_t d) { return d != kUnreachableU16; });
  landmarks.Assimilate(u, est);
  if (!any_known) {
    return false;
  }
  EmbedNode(u, landmarks, est, config_, config_.seed);
  return true;
}

size_t GraphEmbedding::RefreshNodes(const Graph& g, std::span<const NodeId> nodes,
                                    LandmarkSet& landmarks) {
  size_t embedded = 0;
  for (const NodeId u : nodes) {
    if (u >= num_nodes() || IsEmbedded(u)) {
      continue;
    }
    if (AddNodeIncremental(g, u, landmarks)) {
      ++embedded;
    }
  }
  return embedded;
}

double GraphEmbedding::MeasureRelativeError(const Graph& g, size_t samples,
                                            int32_t radius, Rng& rng) const {
  if (num_nodes() == 0 || samples == 0) {
    return 0.0;
  }
  double total = 0.0;
  size_t valid = 0;
  size_t attempts = 0;
  while (valid < samples && attempts < samples * 20) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    if (!IsEmbedded(u)) {
      continue;
    }
    const auto near = KHopNeighborhood(g, u, radius);
    if (near.empty()) {
      continue;
    }
    const NodeId v = near[rng.NextBounded(near.size())];
    if (v == u || !IsEmbedded(v)) {
      continue;
    }
    const int32_t d = HopDistance(g, u, v, radius + 1);
    if (d <= 0) {
      continue;
    }
    const double de = L2f(Coords(u), Coords(v));
    total += std::abs(static_cast<double>(d) - de) / static_cast<double>(d);
    ++valid;
  }
  return valid == 0 ? 0.0 : total / static_cast<double>(valid);
}

}  // namespace grouting
