// Simplex Downhill (Nelder-Mead) derivative-free minimiser — the exact
// algorithm the paper uses for graph embedding ("could be approximately
// solved by many off-the-shelf techniques, e.g., the Simplex Downhill
// algorithm that we apply in this work").
//
// Header-only template so the per-node objective (millions of calls during
// embedding) inlines.

#ifndef GROUTING_SRC_EMBED_NELDER_MEAD_H_
#define GROUTING_SRC_EMBED_NELDER_MEAD_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/check.h"

namespace grouting {

struct NelderMeadOptions {
  int max_evals = 400;
  // Converged when the simplex's best-worst objective spread drops below
  // tol * (|f_best| + epsilon).
  double tolerance = 1e-4;
  // Initial simplex step per coordinate.
  double initial_step = 0.5;
  // Standard coefficients: reflection, expansion, contraction, shrink.
  double alpha = 1.0;
  double gamma = 2.0;
  double rho = 0.5;
  double sigma = 0.5;
};

// Minimises f over x (in place); returns the best objective value found.
// F: double(std::span<const double>).
template <typename F>
double NelderMead(F&& f, std::span<double> x, const NelderMeadOptions& opts = {}) {
  const size_t d = x.size();
  GROUTING_CHECK(d > 0);

  // Simplex of d+1 points.
  std::vector<std::vector<double>> pts(d + 1, std::vector<double>(x.begin(), x.end()));
  for (size_t i = 0; i < d; ++i) {
    pts[i + 1][i] += opts.initial_step;
  }
  std::vector<double> fv(d + 1);
  int evals = 0;
  auto eval = [&](const std::vector<double>& p) {
    ++evals;
    return f(std::span<const double>(p));
  };
  for (size_t i = 0; i <= d; ++i) {
    fv[i] = eval(pts[i]);
  }

  std::vector<size_t> order(d + 1);
  std::vector<double> centroid(d);
  std::vector<double> candidate(d);

  while (evals < opts.max_evals) {
    for (size_t i = 0; i <= d; ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return fv[a] < fv[b]; });
    const size_t best = order[0];
    const size_t worst = order[d];
    const size_t second_worst = order[d - 1];

    if (fv[worst] - fv[best] <= opts.tolerance * (std::abs(fv[best]) + 1e-12)) {
      break;
    }

    // Centroid of all points except the worst.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (size_t i = 0; i <= d; ++i) {
      if (i == worst) {
        continue;
      }
      for (size_t k = 0; k < d; ++k) {
        centroid[k] += pts[i][k];
      }
    }
    for (size_t k = 0; k < d; ++k) {
      centroid[k] /= static_cast<double>(d);
    }

    auto blend = [&](double coef) {
      for (size_t k = 0; k < d; ++k) {
        candidate[k] = centroid[k] + coef * (centroid[k] - pts[worst][k]);
      }
    };

    blend(opts.alpha);  // reflection
    const double f_reflect = eval(candidate);
    if (f_reflect < fv[best]) {
      blend(opts.alpha * opts.gamma);  // expansion
      const double f_expand = eval(candidate);
      if (f_expand < f_reflect) {
        pts[worst] = candidate;
        fv[worst] = f_expand;
      } else {
        blend(opts.alpha);
        pts[worst] = candidate;
        fv[worst] = f_reflect;
      }
    } else if (f_reflect < fv[second_worst]) {
      pts[worst] = candidate;
      fv[worst] = f_reflect;
    } else {
      // Contraction (outside if the reflection improved on the worst).
      if (f_reflect < fv[worst]) {
        blend(opts.alpha * opts.rho);
      } else {
        blend(-opts.rho);
      }
      const double f_contract = eval(candidate);
      if (f_contract < std::min(f_reflect, fv[worst])) {
        pts[worst] = candidate;
        fv[worst] = f_contract;
      } else {
        // Shrink towards the best point.
        for (size_t i = 0; i <= d; ++i) {
          if (i == best) {
            continue;
          }
          for (size_t k = 0; k < d; ++k) {
            pts[i][k] = pts[best][k] + opts.sigma * (pts[i][k] - pts[best][k]);
          }
          fv[i] = eval(pts[i]);
        }
      }
    }
  }

  size_t best = 0;
  for (size_t i = 1; i <= d; ++i) {
    if (fv[i] < fv[best]) {
      best = i;
    }
  }
  std::copy(pts[best].begin(), pts[best].end(), x.begin());
  return fv[best];
}

}  // namespace grouting

#endif  // GROUTING_SRC_EMBED_NELDER_MEAD_H_
