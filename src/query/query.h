// Online h-hop traversal queries (paper Section 2.2):
//
//   1. h-hop Neighbour Aggregation — count the h-hop neighbours of a query
//      node (optionally only those with a given label).
//   2. h-step Random Walk with Restart — h steps, each jumping to a uniform
//      neighbour or back to the origin with restart probability.
//   3. h-hop Reachability — is `target` within h hops of `node`? Executed as
//      a bidirectional BFS (we store both edge directions), optionally
//      label-constrained on intermediate nodes.
//
// Queries execute against a NodeDataSource — the processor-side seam that
// hides "cache over partitioned storage". Executors are deterministic given
// Query::seed.

#ifndef GROUTING_SRC_QUERY_QUERY_H_
#define GROUTING_SRC_QUERY_QUERY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/storage/adjacency.h"

namespace grouting {

enum class QueryType : uint8_t {
  kNeighborAggregation,
  kRandomWalk,
  kReachability,
};

std::string QueryTypeName(QueryType type);

struct Query {
  QueryType type = QueryType::kNeighborAggregation;
  NodeId node = 0;                 // query node (source)
  NodeId target = kInvalidNode;    // reachability target
  int32_t hops = 2;                // h
  Label label_filter = kNoLabel;   // aggregation: count only this label;
                                   // reachability: constrain intermediate nodes
  double restart_prob = 0.15;      // random walk restart probability
  uint64_t seed = 0;               // per-query determinism (random walk)
  uint64_t id = 0;                 // workload-assigned id (for tracing)
  uint32_t tenant = 0;             // tenant keyspace (multi-tenant federation)
  double arrive_us = -1.0;         // open-loop arrival timestamp (µs); < 0 =
                                   // closed-loop pacing via arrival_gap_us
};

struct QueryResult {
  QueryType type = QueryType::kNeighborAggregation;
  // Aggregation: number of h-hop neighbours (or label matches).
  uint64_t aggregate = 0;
  // Random walk: node where the walk ended and number of distinct visits.
  NodeId walk_end = kInvalidNode;
  uint64_t walk_distinct_nodes = 0;
  // Reachability.
  bool reachable = false;
  int32_t distance = -1;  // hop distance if reachable (-1 otherwise)
};

// Everything the execution engines need to account for one query's work:
// cache interaction counts (the paper's Eq. 8/9 hit/miss metric), visited
// node count (compute cost), and the per-server miss batches (storage and
// network cost). Batches are recorded in traversal-level order.
struct FetchTrace {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_lookups = 0;  // hits + misses when cache enabled, else 0
  uint64_t visited = 0;        // adjacency entries consumed
  uint64_t bytes_fetched = 0;  // shipped from the storage tier (wire bytes)
  // Wall time spent decoding compressed blobs on cache hits (threaded
  // runtime, cache_compressed mode). The simulator charges its virtual
  // equivalent from CostModel::decompress_* during replay instead.
  double decompress_us = 0.0;

  struct Batch {
    uint32_t server = 0;
    uint32_t values = 0;
    uint64_t bytes = 0;
    uint64_t edges = 0;  // total edges across the batch's values
    uint32_t level = 0;  // traversal round the batch belongs to
  };
  std::vector<Batch> batches;
  uint32_t levels = 0;  // number of synchronous fetch rounds

  // Per traversal round: cache interaction and fetch counts. The simulator
  // replays these to charge compute/cache/storage time level by level.
  struct Level {
    uint32_t lookups = 0;
    uint32_t hits = 0;
    uint32_t misses = 0;
    uint32_t fetched = 0;        // values actually returned by storage
    uint64_t hit_edges = 0;      // edges across cache-hit entries
    uint64_t fetched_edges = 0;  // edges across storage-fetched entries
  };
  std::vector<Level> level_stats;

  // Async fetch pipeline (max_inflight_batches > 1, threaded runtime): peak
  // number of concurrently outstanding multiget batches, and wall time the
  // processor spent doing useful work (probes, merges, cache inserts) while
  // at least one batch was in flight. Zero on the inline/synchronous path;
  // the simulator computes its virtual-time equivalents during replay.
  uint32_t max_batches_inflight = 0;
  double async_overlap_us = 0.0;

  void Clear() { *this = FetchTrace{}; }
};

// The processor-side data access seam. FetchBatch must return entries
// positionally matching `nodes` (nullptr where the node does not exist).
class NodeDataSource {
 public:
  virtual ~NodeDataSource() = default;

  virtual std::vector<AdjacencyPtr> FetchBatch(std::span<const NodeId> nodes) = 0;

  AdjacencyPtr FetchOne(NodeId node) {
    const NodeId ids[1] = {node};
    auto fetched = FetchBatch(ids);
    return fetched.empty() ? nullptr : fetched[0];
  }

  virtual const FetchTrace& trace() const = 0;
  virtual void ResetTrace() = 0;
};

// Executes any query type. All traversal is over the bi-directed view
// (out + in edges), matching the paper's storage and routing model.
QueryResult ExecuteQuery(const Query& q, NodeDataSource& source);

QueryResult ExecuteNeighborAggregation(const Query& q, NodeDataSource& source);
QueryResult ExecuteRandomWalk(const Query& q, NodeDataSource& source);
QueryResult ExecuteReachability(const Query& q, NodeDataSource& source);

// Test/reference data source reading the graph directly (no cache, no
// storage); traces count every fetch as a miss from server 0.
class DirectGraphSource : public NodeDataSource {
 public:
  explicit DirectGraphSource(const Graph& g) : graph_(g) {}

  std::vector<AdjacencyPtr> FetchBatch(std::span<const NodeId> nodes) override;
  const FetchTrace& trace() const override { return trace_; }
  void ResetTrace() override { trace_.Clear(); }

 private:
  const Graph& graph_;
  FetchTrace trace_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_QUERY_QUERY_H_
