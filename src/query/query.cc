#include "src/query/query.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/util/rng.h"

namespace grouting {
namespace {

// Appends all bi-directed neighbours of `entry` to `out`.
void CollectNeighbors(const AdjacencyEntry& entry, std::vector<NodeId>* out) {
  for (const Edge& e : entry.out) {
    out->push_back(e.dst);
  }
  for (const Edge& e : entry.in) {
    out->push_back(e.dst);
  }
}

}  // namespace

std::string QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kNeighborAggregation:
      return "neighbor_aggregation";
    case QueryType::kRandomWalk:
      return "random_walk";
    case QueryType::kReachability:
      return "reachability";
  }
  return "unknown";
}

QueryResult ExecuteQuery(const Query& q, NodeDataSource& source) {
  switch (q.type) {
    case QueryType::kNeighborAggregation:
      return ExecuteNeighborAggregation(q, source);
    case QueryType::kRandomWalk:
      return ExecuteRandomWalk(q, source);
    case QueryType::kReachability:
      return ExecuteReachability(q, source);
  }
  GROUTING_CHECK_MSG(false, "unknown query type");
  return {};
}

QueryResult ExecuteNeighborAggregation(const Query& q, NodeDataSource& source) {
  QueryResult result;
  result.type = QueryType::kNeighborAggregation;

  // Level-synchronous BFS. Every node within h hops is *fetched* (the paper's
  // queries retrieve all h-hop neighbours — labels live in their entries),
  // but only levels < h are expanded.
  std::unordered_set<NodeId> seen{q.node};
  std::vector<NodeId> frontier{q.node};
  std::vector<AdjacencyPtr> entries = source.FetchBatch(frontier);
  std::vector<NodeId> next;
  for (int32_t depth = 0; depth < q.hops && !frontier.empty(); ++depth) {
    next.clear();
    for (const AdjacencyPtr& entry : entries) {
      if (entry == nullptr) {
        continue;
      }
      std::vector<NodeId> nbrs;
      CollectNeighbors(*entry, &nbrs);
      for (NodeId v : nbrs) {
        if (seen.insert(v).second) {
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    if (frontier.empty()) {
      break;
    }
    entries = source.FetchBatch(frontier);
    if (q.label_filter == kNoLabel) {
      result.aggregate += frontier.size();
    } else {
      for (const AdjacencyPtr& entry : entries) {
        if (entry != nullptr && entry->node_label == q.label_filter) {
          ++result.aggregate;
        }
      }
    }
  }
  return result;
}

QueryResult ExecuteRandomWalk(const Query& q, NodeDataSource& source) {
  QueryResult result;
  result.type = QueryType::kRandomWalk;
  Rng rng(q.seed ^ 0x5bd1e995u);

  std::unordered_set<NodeId> distinct{q.node};
  NodeId current = q.node;
  std::vector<NodeId> nbrs;
  for (int32_t step = 0; step < q.hops; ++step) {
    const AdjacencyPtr entry = source.FetchOne(current);
    if (entry == nullptr) {
      break;
    }
    if (step > 0 && rng.NextBool(q.restart_prob)) {
      current = q.node;
      distinct.insert(current);
      continue;
    }
    nbrs.clear();
    CollectNeighbors(*entry, &nbrs);
    if (nbrs.empty()) {
      current = q.node;  // dead end: restart
      continue;
    }
    current = nbrs[rng.NextBounded(nbrs.size())];
    distinct.insert(current);
  }
  result.walk_end = current;
  result.walk_distinct_nodes = distinct.size();
  return result;
}

QueryResult ExecuteReachability(const Query& q, NodeDataSource& source) {
  QueryResult result;
  result.type = QueryType::kReachability;
  GROUTING_CHECK(q.target != kInvalidNode);

  if (q.node == q.target) {
    result.reachable = true;
    result.distance = 0;
    return result;
  }
  if (q.hops <= 0) {
    return result;
  }

  // Bidirectional BFS: forward over out-edges from the source, backward over
  // in-edges from the target (feasible because each adjacency entry stores
  // both directions). Each round expands the smaller frontier.
  std::unordered_map<NodeId, int32_t> fwd_dist{{q.node, 0}};
  std::unordered_map<NodeId, int32_t> bwd_dist{{q.target, 0}};
  std::vector<NodeId> fwd_frontier{q.node};
  std::vector<NodeId> bwd_frontier{q.target};
  int32_t fwd_depth = 0;
  int32_t bwd_depth = 0;

  auto passes_filter = [&](const AdjacencyEntry& entry, NodeId v) {
    // Endpoints are exempt from the label constraint.
    if (q.label_filter == kNoLabel || v == q.node || v == q.target) {
      return true;
    }
    return entry.node_label == q.label_filter;
  };

  while (!fwd_frontier.empty() && !bwd_frontier.empty() &&
         fwd_depth + bwd_depth < q.hops) {
    const bool expand_fwd = fwd_frontier.size() <= bwd_frontier.size();
    auto& frontier = expand_fwd ? fwd_frontier : bwd_frontier;
    auto& dist = expand_fwd ? fwd_dist : bwd_dist;
    auto& other_dist = expand_fwd ? bwd_dist : fwd_dist;
    int32_t& depth = expand_fwd ? fwd_depth : bwd_depth;

    const auto entries = source.FetchBatch(frontier);
    std::vector<NodeId> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      if (entries[i] == nullptr) {
        continue;
      }
      const auto& edges = expand_fwd ? entries[i]->out : entries[i]->in;
      for (const Edge& e : edges) {
        if (dist.count(e.dst) > 0) {
          continue;
        }
        dist[e.dst] = depth + 1;
        auto hit = other_dist.find(e.dst);
        if (hit != other_dist.end()) {
          const int32_t total = depth + 1 + hit->second;
          if (total <= q.hops) {
            result.reachable = true;
            result.distance = total;
            return result;
          }
        }
        next.push_back(e.dst);
      }
    }
    // Apply the label filter to the next frontier (requires their entries).
    if (q.label_filter != kNoLabel && !next.empty()) {
      const auto next_entries = source.FetchBatch(next);
      std::vector<NodeId> kept;
      for (size_t i = 0; i < next.size(); ++i) {
        if (next_entries[i] != nullptr && passes_filter(*next_entries[i], next[i])) {
          kept.push_back(next[i]);
        }
      }
      next.swap(kept);
    }
    frontier = std::move(next);
    ++depth;
  }
  return result;
}

std::vector<AdjacencyPtr> DirectGraphSource::FetchBatch(std::span<const NodeId> nodes) {
  std::vector<AdjacencyPtr> result;
  result.reserve(nodes.size());
  trace_.level_stats.emplace_back();
  FetchTrace::Level& level = trace_.level_stats.back();
  FetchTrace::Batch batch;
  batch.server = 0;
  batch.level = trace_.levels;
  for (NodeId u : nodes) {
    if (u >= graph_.num_nodes()) {
      result.push_back(nullptr);
      continue;
    }
    auto entry = std::make_shared<AdjacencyEntry>();
    entry->node = u;
    entry->node_label = graph_.node_label(u);
    const auto out = graph_.OutNeighbors(u);
    const auto in = graph_.InNeighbors(u);
    entry->out.assign(out.begin(), out.end());
    entry->in.assign(in.begin(), in.end());
    trace_.bytes_fetched += entry->SerializedBytes();
    batch.bytes += entry->SerializedBytes();
    batch.values += 1;
    ++trace_.cache_misses;
    ++level.misses;
    ++level.fetched;
    ++trace_.visited;
    result.push_back(std::move(entry));
  }
  if (batch.values > 0) {
    trace_.batches.push_back(batch);
  }
  ++trace_.levels;
  return result;
}

}  // namespace grouting
