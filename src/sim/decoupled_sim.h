// Discrete-event simulation of the decoupled gRouting cluster:
//
//     arrivals -> RouterFleet (N shards: strategy + stealing) -> P processors
//                     ^  gossip events                             |  miss
//                     |  (load/EMA, virtual time)                  v  batches
//                     +----------------------------- M storage servers (FIFO)
//
// Each query executes FUNCTIONALLY at dispatch (real cache state, real
// traversal, real storage lookups) producing a FetchTrace; the trace is then
// replayed in virtual time: per traversal level, cache probes are charged,
// per-server multiget batches contend in the storage servers' FIFO queues
// over the configured network profile, and compute + cache-insert costs
// close the level. This keeps functional behaviour (what is in which cache)
// and temporal behaviour (who waits for whom) consistent while staying
// deterministic.
//
// Two level-replay models share the storage/network events:
//   * max_inflight_batches == 1 — the classic synchronous barrier: probes
//     first, then every miss batch fans out and the level blocks on the
//     slowest reply before inserts + compute close it.
//   * max_inflight_batches  > 1 — the async pipeline: up to `window` batches
//     are issued eagerly (batch_issue_us each) BEFORE the probe work, cache
//     probes + hit compute run while they are in flight, each reply's
//     inserts/compute are processed as it lands (FIFO on the processor's
//     CPU timeline), and a freed window slot immediately issues the next
//     batch. The level closes when probe-side and every batch's post-
//     processing are done — a per-batch completion structure instead of one
//     barrier, which is exactly what hides probe/merge work under fetch
//     round trips. (The membership test that forms the miss batches is
//     treated as free; the charged probe work is the per-hit recency/
//     materialisation/merge cost a real processor defers until the batches
//     are on the wire.)
//
// This is the EngineKind::kSimulated implementation of ClusterEngine; the
// threaded runtime (src/runtime/) is its wall-clock twin.

#ifndef GROUTING_SRC_SIM_DECOUPLED_SIM_H_
#define GROUTING_SRC_SIM_DECOUPLED_SIM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/frontend/router_fleet.h"
#include "src/sim/event_queue.h"

namespace grouting {

// One simulated cluster. The graph is loaded into the storage tier at
// construction (hash placement by default, or an explicit assignment).
class DecoupledClusterSim : public ClusterEngine {
 public:
  DecoupledClusterSim(const Graph& graph, const ClusterConfig& config,
                      std::unique_ptr<RoutingStrategy> strategy,
                      const PartitionAssignment* placement = nullptr);

  EngineKind kind() const override { return EngineKind::kSimulated; }

  // Runs the workload to completion (cold caches) and returns the metrics.
  // May be called once per instance.
  ClusterMetrics Run(std::span<const Query> queries) override;

  RouterFleet& fleet() { return *fleet_; }
  // The classic single-router view (shard 0) — fleet().shard(s) for others.
  Router& router() { return fleet_->shard(0); }

  // Replay audit: every (query, level) completion in virtual-time order.
  // Model-check tests use it to prove the async pipeline never reorders a
  // query's level semantics, whatever the window.
  struct LevelCompletion {
    uint64_t query_id = 0;
    uint32_t processor = 0;
    uint32_t level = 0;
    SimTimeUs time = 0.0;
  };
  const std::vector<LevelCompletion>& level_completions() const {
    return level_completions_;
  }

 private:
  // Asks the router fleet for work for processor p; begins execution or idles.
  void TryDispatch(uint32_t p);
  // Advances the in-flight query on processor p to its next traversal level
  // (or completes it), dispatching to the sync or async level model.
  void AdvanceLevel(uint32_t p);
  void StartLevelSync(uint32_t p);
  void StartLevelAsync(uint32_t p);
  // Async pipeline: departure of one issued batch towards its server, and
  // the reply landing back at the processor. `depart_ts` is when the CPU
  // finished issuing the batch (the trace's batch-span start).
  void DepartBatchAsync(uint32_t p, size_t batch_index);
  void ReplyBatchAsync(uint32_t p, size_t batch_index, SimTimeUs depart_ts);
  // Closes the current level once probe-side and batch post-processing are
  // done; records the audit entry and schedules the next AdvanceLevel.
  void FinishLevelAsync(uint32_t p);
  // Self-rescheduling load/EMA gossip event (stops once the run drains).
  // Also drives the storage-tier repartition round: migrations execute
  // functionally at the event (the event loop is the only executor, so no
  // multiget is ever in flight) and their copy cost is charged to both
  // storage servers' virtual timelines.
  void GossipTick(size_t total_queries);

  struct InFlight {
    Query query;
    QueryResult result;
    FetchTrace trace;  // copied from the processor after functional execution
    size_t next_level = 0;
    size_t next_batch = 0;  // index into trace.batches
    uint32_t batches_outstanding = 0;
    SimTimeUs level_fetch_done = 0.0;
    SimTimeUs dispatch_time = 0.0;
    SimTimeUs arrival_time = 0.0;
    // Tracing state: whether this query is sampled, and the virtual anchors
    // the span emissions need (recording is passive — replay timing never
    // reads these).
    bool traced = false;
    SimTimeUs level_start = 0.0;
    SimTimeUs level_probe_done = 0.0;
    // Async pipeline state for the level being replayed.
    size_t level_batch_end = 0;   // one past this level's last batch index
    size_t next_unissued = 0;     // next batch index awaiting a window slot
    SimTimeUs issue_done = 0.0;   // CPU done issuing the first wave
    SimTimeUs hit_work_done = 0.0;  // probes + hit-compute finished
    SimTimeUs cpu_free = 0.0;     // processor CPU timeline (post-processing)
    SimTimeUs last_reply = 0.0;
    uint32_t level_inflight_peak = 0;
  };

  // Virtual-time span recording into the engine's TraceRecorder for the
  // query in flight on processor p. No-op unless that query is sampled.
  void EmitSpan(uint32_t p, TraceEventType type, SimTimeUs start, SimTimeUs end,
                uint32_t level = 0, uint32_t server = 0, uint64_t value = 0);

  EventQueue events_;
  std::function<void(const Query&, uint32_t)> dispatch_wait_hook_;
  std::unique_ptr<RouterFleet> fleet_;
  std::vector<InFlight> in_flight_;  // per processor
  std::vector<uint8_t> processor_idle_;
  std::vector<SimTimeUs> server_busy_until_;
  RunningStat queue_wait_us_;
  LatencyHistogram response_us_;
  // Per-tenant completion tracking (multi-tenant federation); sized
  // config.num_tenants, single-tenant runs use index 0 only.
  std::vector<LatencyHistogram> tenant_response_us_;
  std::vector<uint64_t> tenant_queries_;
  // Time of the last completion ack back at the router: the run's makespan.
  // Tracked explicitly so trailing gossip events cannot inflate it.
  SimTimeUs last_ack_us_ = 0.0;
  // Replay-model async metrics (authoritative for the sim: the functional
  // layer executes inline, so its wall-clock overlap is meaningless here).
  double total_fetch_overlap_us_ = 0.0;
  uint32_t batches_inflight_peak_ = 0;
  // Virtual storage-server busy time added by partition migrations.
  double repartition_stall_us_ = 0.0;
  // Virtual decode time charged for compressed adjacency blobs (cache hits
  // under cache_compressed, fetched values under delta_varint). Overrides
  // the processors' wall-clock decompress_us in the reported metrics.
  double decompress_us_ = 0.0;
  std::vector<LevelCompletion> level_completions_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_SIM_DECOUPLED_SIM_H_
