// Discrete-event simulation of the decoupled gRouting cluster:
//
//     arrivals -> RouterFleet (N shards: strategy + stealing) -> P processors
//                     ^  gossip events                             |  miss
//                     |  (load/EMA, virtual time)                  v  batches
//                     +----------------------------- M storage servers (FIFO)
//
// Each query executes FUNCTIONALLY at dispatch (real cache state, real
// traversal, real storage lookups) producing a FetchTrace; the trace is then
// replayed in virtual time: per traversal level, cache probes are charged,
// per-server multiget batches contend in the storage servers' FIFO queues
// over the configured network profile, and compute + cache-insert costs
// close the level. This keeps functional behaviour (what is in which cache)
// and temporal behaviour (who waits for whom) consistent while staying
// deterministic.
//
// This is the EngineKind::kSimulated implementation of ClusterEngine; the
// threaded runtime (src/runtime/) is its wall-clock twin.

#ifndef GROUTING_SRC_SIM_DECOUPLED_SIM_H_
#define GROUTING_SRC_SIM_DECOUPLED_SIM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/frontend/router_fleet.h"
#include "src/sim/event_queue.h"

namespace grouting {

// One simulated cluster. The graph is loaded into the storage tier at
// construction (hash placement by default, or an explicit assignment).
class DecoupledClusterSim : public ClusterEngine {
 public:
  DecoupledClusterSim(const Graph& graph, const ClusterConfig& config,
                      std::unique_ptr<RoutingStrategy> strategy,
                      const PartitionAssignment* placement = nullptr);

  EngineKind kind() const override { return EngineKind::kSimulated; }

  // Runs the workload to completion (cold caches) and returns the metrics.
  // May be called once per instance.
  ClusterMetrics Run(std::span<const Query> queries) override;

  RouterFleet& fleet() { return *fleet_; }
  // The classic single-router view (shard 0) — fleet().shard(s) for others.
  Router& router() { return fleet_->shard(0); }

 private:
  // Asks the router fleet for work for processor p; begins execution or idles.
  void TryDispatch(uint32_t p);
  // Advances the in-flight query on processor p to its next traversal level.
  void AdvanceLevel(uint32_t p);
  // Self-rescheduling load/EMA gossip event (stops once the run drains).
  void GossipTick(size_t total_queries);

  struct InFlight {
    Query query;
    QueryResult result;
    FetchTrace trace;  // copied from the processor after functional execution
    size_t next_level = 0;
    size_t next_batch = 0;  // index into trace.batches
    uint32_t batches_outstanding = 0;
    SimTimeUs level_fetch_done = 0.0;
    SimTimeUs dispatch_time = 0.0;
    SimTimeUs arrival_time = 0.0;
  };

  EventQueue events_;
  std::function<void(const Query&)> dispatch_wait_hook_;
  std::unique_ptr<RouterFleet> fleet_;
  std::vector<InFlight> in_flight_;  // per processor
  std::vector<uint8_t> processor_idle_;
  std::vector<SimTimeUs> server_busy_until_;
  RunningStat queue_wait_us_;
  std::vector<double> response_samples_us_;
  // Time of the last completion ack back at the router: the run's makespan.
  // Tracked explicitly so trailing gossip events cannot inflate it.
  SimTimeUs last_ack_us_ = 0.0;
};

}  // namespace grouting

#endif  // GROUTING_SRC_SIM_DECOUPLED_SIM_H_
