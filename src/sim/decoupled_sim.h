// Discrete-event simulation of the decoupled gRouting cluster:
//
//     arrivals -> Router (strategy + stealing) -> P query processors
//                                                   |  miss batches
//                                                   v
//                                       M storage servers (FIFO queues)
//
// Each query executes FUNCTIONALLY at dispatch (real cache state, real
// traversal, real storage lookups) producing a FetchTrace; the trace is then
// replayed in virtual time: per traversal level, cache probes are charged,
// per-server multiget batches contend in the storage servers' FIFO queues
// over the configured network profile, and compute + cache-insert costs
// close the level. This keeps functional behaviour (what is in which cache)
// and temporal behaviour (who waits for whom) consistent while staying
// deterministic.

#ifndef GROUTING_SRC_SIM_DECOUPLED_SIM_H_
#define GROUTING_SRC_SIM_DECOUPLED_SIM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/net/cost_model.h"
#include "src/proc/processor.h"
#include "src/query/query.h"
#include "src/routing/router.h"
#include "src/sim/event_queue.h"
#include "src/storage/storage_tier.h"
#include "src/util/stats.h"

namespace grouting {

struct SimConfig {
  uint32_t num_processors = 7;       // paper default tier split: 1 / 7 / 4
  uint32_t num_storage_servers = 4;
  ProcessorConfig processor;
  CostModel cost = CostModel::InfinibandDefaults();
  RouterConfig router;
  // Inter-arrival gap between consecutive queries at the router (µs); the
  // paper sends queries back to back, so the default keeps arrivals dense
  // enough to saturate the processors.
  double arrival_gap_us = 0.0;
};

struct SimMetrics {
  uint64_t queries = 0;
  SimTimeUs makespan_us = 0.0;
  double throughput_qps = 0.0;
  double mean_response_ms = 0.0;  // dispatch -> completion (paper's metric)
  double p95_response_ms = 0.0;
  double mean_queue_wait_ms = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t nodes_visited = 0;
  uint64_t bytes_from_storage = 0;
  uint64_t storage_batches = 0;
  uint64_t steals = 0;
  std::vector<uint64_t> queries_per_processor;
  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
};

// One simulated cluster. The graph is loaded into the storage tier at
// construction (hash placement by default, or an explicit assignment).
class DecoupledClusterSim {
 public:
  DecoupledClusterSim(const Graph& graph, SimConfig config,
                      std::unique_ptr<RoutingStrategy> strategy);
  DecoupledClusterSim(const Graph& graph, SimConfig config,
                      std::unique_ptr<RoutingStrategy> strategy,
                      const PartitionAssignment& storage_placement);

  // Runs the workload to completion (cold caches) and returns the metrics.
  // May be called once per instance.
  SimMetrics Run(std::span<const Query> queries);

  Router& router() { return *router_; }
  QueryProcessor& processor(uint32_t p) { return *processors_[p]; }
  StorageTier& storage() { return *storage_; }
  const std::vector<QueryResult>& results() const { return results_; }

 private:
  void Init(const Graph& graph, std::unique_ptr<RoutingStrategy> strategy,
            const PartitionAssignment* placement);
  // Asks the router for work for processor p; begins execution or idles.
  void TryDispatch(uint32_t p);
  // Advances the in-flight query on processor p to its next traversal level.
  void AdvanceLevel(uint32_t p);

  struct InFlight {
    Query query;
    QueryResult result;
    FetchTrace trace;  // copied from the processor after functional execution
    size_t next_level = 0;
    size_t next_batch = 0;  // index into trace.batches
    uint32_t batches_outstanding = 0;
    SimTimeUs level_fetch_done = 0.0;
    SimTimeUs dispatch_time = 0.0;
    SimTimeUs arrival_time = 0.0;
  };

  SimConfig config_;
  EventQueue events_;
  std::function<void(const Query&)> dispatch_wait_hook_;
  std::unique_ptr<StorageTier> storage_;
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<QueryProcessor>> processors_;
  std::vector<InFlight> in_flight_;     // per processor
  std::vector<uint8_t> processor_idle_;
  std::vector<SimTimeUs> server_busy_until_;
  std::vector<QueryResult> results_;
  RunningStat response_us_;
  RunningStat queue_wait_us_;
  std::vector<double> response_samples_us_;
  bool ran_ = false;
};

}  // namespace grouting

#endif  // GROUTING_SRC_SIM_DECOUPLED_SIM_H_
