#include "src/sim/decoupled_sim.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace grouting {

DecoupledClusterSim::DecoupledClusterSim(const Graph& graph, const ClusterConfig& config,
                                         std::unique_ptr<RoutingStrategy> strategy,
                                         const PartitionAssignment* placement)
    : ClusterEngine(graph, config, placement) {
  FleetConfig fc;
  fc.num_shards = config_.num_router_shards;
  fc.splitter = config_.router_splitter;
  fc.session_capacity = config_.router_session_capacity;
  fc.router.enable_stealing = config_.enable_stealing;
  fc.gossip.period_us = config_.gossip_period_us;
  fc.gossip.merge_weight = config_.gossip_merge_weight;
  fc.rebalance.threshold = config_.router_rebalance_threshold;
  fc.rebalance.migration_cap = config_.router_migration_cap;
  fleet_ = std::make_unique<RouterFleet>(std::move(strategy), config_.num_processors, fc);
  in_flight_.resize(config_.num_processors);
  processor_idle_.assign(config_.num_processors, 1);
  server_busy_until_.assign(config_.num_storage_servers, 0.0);
}

ClusterMetrics DecoupledClusterSim::Run(std::span<const Query> queries) {
  GROUTING_CHECK_MSG(!ran_, "DecoupledClusterSim::Run may only be called once");
  ran_ = true;

  // Per-tenant admission decisions, shared with the threaded engine: shed
  // arrivals never get an arrival event, so they never reach a router shard.
  const AdmissionPlan plan = PlanAdmission(queries);
  tenant_response_us_.resize(config_.num_tenants);
  tenant_queries_.assign(config_.num_tenants, 0);
  answers_.reserve(plan.admitted);

  // Mutation schedule: quiesced entries (apply_us <= 0) land before the
  // first arrival event exists; timed entries become virtual-time events
  // that apply functionally at their instant (the event loop is the only
  // executor) and charge the write cost to the mutated key's owning
  // server — queries whose batches land there queue behind the write.
  ApplyQuiescedMutations();
  for (const GraphMutation& mut : mutation_schedule()) {
    if (mut.apply_us <= 0.0) {
      continue;
    }
    events_.ScheduleAt(mut.apply_us, [this, mut] {
      const uint64_t writes = ApplyOneMutation(mut);
      const CostModel& cm = config_.cost;
      const SimTimeUs cost =
          cm.mutation_base_us +
          cm.mutation_per_write_us * static_cast<double>(writes);
      const uint32_t s = storage_->ServerOf(mut.u);
      const SimTimeUs start = std::max(events_.now(), server_busy_until_[s]);
      server_busy_until_[s] = start + cost;
    });
  }

  std::unordered_map<uint64_t, SimTimeUs> arrival_time;
  arrival_time.reserve(plan.admitted);

  // Arrivals: the splitter hands each query of the stream to its router
  // shard, which routes it on arrival; dispatch to a processor happens on
  // that processor's ack. Open-loop schedules arrive at their own
  // arrive_us timestamps instead of the uniform arrival_gap_us pacing.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!plan.Admitted(i)) {
      continue;
    }
    const Query q = queries[i];
    const SimTimeUs t = ArrivalTimeUs(q, i);
    events_.ScheduleAt(t, [this, q, &arrival_time] {
      arrival_time[q.id] = events_.now();
      const RouterFleet::RoutedArrival routed = fleet_->Enqueue(q);
      if (tracer_ != nullptr && tracer_->Sample(q.id)) {
        // The sim routes on arrival, so arrival and routing-decision
        // instants share a timestamp on the shard's track.
        TraceEvent e;
        e.ts_us = events_.now();
        e.query_id = q.id;
        e.track = tracer_->num_processors() + routed.shard;
        e.type = TraceEventType::kArrival;
        e.value = routed.shard;
        tracer_->shard_ring(routed.shard).Record(e);
        e.type = TraceEventType::kRouted;
        e.value = routed.processor;
        tracer_->shard_ring(routed.shard).Record(e);
      }
      const uint32_t preferred = routed.processor;
      if (processor_idle_[preferred]) {
        TryDispatch(preferred);
        return;
      }
      // Another idle processor can steal it right away.
      for (uint32_t p = 0; p < config_.num_processors; ++p) {
        if (processor_idle_[p]) {
          TryDispatch(p);
          break;
        }
      }
    });
  }

  // Track arrival->dispatch wait through a small shim in TryDispatch: we
  // capture it via the arrival_time map when the query is dispatched.
  dispatch_wait_hook_ = [&arrival_time, this](const Query& q, uint32_t p) {
    auto it = arrival_time.find(q.id);
    if (it != arrival_time.end()) {
      queue_wait_us_.Add(events_.now() - it->second);
      EmitSpan(p, TraceEventType::kQueueWait, it->second, events_.now());
    }
  };

  // Load/EMA gossip between router shards — and the storage-tier
  // repartition rounds that ride the same cadence — as recurring
  // virtual-time events. Repartitioning alone (single router shard) still
  // needs the tick chain, gated on a positive period exactly like gossip;
  // so does incremental index maintenance, which drains mutation-dirtied
  // nodes at each tick.
  if (fleet_->gossip_enabled() ||
      ((repartition_enabled() || config_.enable_mutations) &&
       config_.gossip_period_us > 0.0)) {
    // The tick chain stops when the ADMITTED queries drain — shed arrivals
    // never produce an answer.
    events_.ScheduleAt(config_.gossip_period_us,
                       [this, total = plan.admitted] { GossipTick(total); });
  }

  events_.RunUntilEmpty(/*max_events=*/2'000'000'000ULL);
  dispatch_wait_hook_ = nullptr;

  ClusterMetrics m;
  m.queries = answers_.size();
  m.makespan_us = last_ack_us_;
  m.throughput_qps =
      m.makespan_us > 0.0 ? static_cast<double>(m.queries) / (m.makespan_us / 1e6) : 0.0;
  FillLatencyStats(&m, response_us_, queue_wait_us_);
  AddProcessorStats(&m);
  AddTraceStats(&m);
  const RouterStats router_stats = fleet_->AggregateRouterStats();
  m.steals = router_stats.steals;
  m.queries_per_processor = router_stats.per_processor;
  m.queries_per_router_shard = fleet_->RoutedPerShard();
  m.gossip_rounds = fleet_->gossip_stats().rounds;
  m.router_ema_divergence = fleet_->CurrentEmaDivergence();
  m.sessions_migrated = fleet_->splitter().stats().migrations;
  m.sticky_evictions = fleet_->splitter().stats().evictions;
  m.router_load_imbalance = RoutedLoadImbalance(m.queries_per_router_shard);
  // The replay model's numbers are authoritative here: the functional layer
  // executed inline, so the wall-clock overlap AddProcessorStats summed is
  // meaningless for the simulated engine.
  m.batches_inflight_peak = batches_inflight_peak_;
  m.fetch_overlap_us = total_fetch_overlap_us_;
  m.decompress_us = decompress_us_;
  AddStorageTierStats(&m);
  m.repartition_stall_us = repartition_stall_us_;
  AddMutationStats(&m);
  FillTenantMetrics(&m, tenant_response_us_, tenant_queries_, plan);
  return m;
}

void DecoupledClusterSim::GossipTick(size_t total_queries) {
  if (answers_.size() >= total_queries) {
    return;  // run drained: stop the gossip chain
  }
  if (fleet_->gossip_enabled()) {
    fleet_->GossipRound();
  }
  if (repartition_enabled()) {
    // Execute the round's migrations and replica changes now (functionally
    // instantaneous and race-free: the event loop is the only thread), then
    // charge the copy cost on the storage timeline — queries whose batches
    // land on an affected server queue behind the move. Migrations and
    // replica promotions charge base + per-key copy cost to both ends; a
    // demotion only drains and deletes on the replica server, so it is
    // charged base cost there alone.
    const CostModel& cm = config_.cost;
    for (const StorageTier::MigrationResult& mig : RepartitionRound()) {
      if (mig.from == mig.to) {
        continue;
      }
      const bool demote = mig.kind == StorageTier::MigrationResult::Kind::kDemote;
      const SimTimeUs cost =
          demote ? cm.migration_base_us
                 : cm.migration_base_us +
                       cm.migration_per_key_us * static_cast<double>(mig.keys_moved);
      for (const uint32_t s : {mig.from, mig.to}) {
        const SimTimeUs start = std::max(events_.now(), server_busy_until_[s]);
        server_busy_until_[s] = start + cost;
        repartition_stall_us_ += cost;
        if (demote) {
          break;  // only the replica server (`from`) pays for its teardown
        }
      }
    }
  }
  // Incremental index maintenance rides the same tick: drain the nodes
  // mutations dirtied since the last pass and model the controller being
  // busy re-estimating by pushing the NEXT tick out by the refresh cost —
  // deterministic, and off every query's critical path (the paper's
  // controllers gossip asynchronously).
  SimTimeUs refresh_delay = 0.0;
  if (config_.enable_mutations) {
    const uint64_t refreshed = RunIndexMaintenance(events_.now());
    if (refreshed > 0) {
      refresh_delay =
          config_.cost.index_refresh_base_us +
          config_.cost.index_refresh_per_node_us * static_cast<double>(refreshed);
    }
  }
  events_.ScheduleAfter(config_.gossip_period_us + refresh_delay,
                        [this, total_queries] { GossipTick(total_queries); });
}

void DecoupledClusterSim::TryDispatch(uint32_t p) {
  if (!processor_idle_[p]) {
    return;
  }
  auto next = fleet_->NextForProcessor(p);
  if (!next.has_value()) {
    processor_idle_[p] = 1;
    return;
  }
  processor_idle_[p] = 0;

  InFlight& f = in_flight_[p];
  f = InFlight{};
  f.query = *next;
  f.dispatch_time = events_.now();
  f.traced = tracer_ != nullptr && tracer_->Sample(f.query.id);
  if (dispatch_wait_hook_) {
    dispatch_wait_hook_(f.query, p);
  }

  // Functional execution happens now: per-processor queries are sequential,
  // so executing at dispatch keeps every cache byte-accurate.
  f.result = processors_[p]->Execute(f.query);
  f.trace = processors_[p]->last_trace();

  // Router decision + query shipping to the processor. All shards run the
  // same strategy type, so shard 0's decision cost stands in for the fleet.
  const SimTimeUs start_delay =
      fleet_->shard(0).strategy().DecisionCostUs(config_.cost, config_.num_processors) +
      config_.cost.net.one_way_us;
  EmitSpan(p, TraceEventType::kShip, f.dispatch_time, f.dispatch_time + start_delay);
  events_.ScheduleAfter(start_delay, [this, p] { AdvanceLevel(p); });
}

void DecoupledClusterSim::EmitSpan(uint32_t p, TraceEventType type, SimTimeUs start,
                                   SimTimeUs end, uint32_t level, uint32_t server,
                                   uint64_t value) {
  const InFlight& f = in_flight_[p];
  if (!f.traced) {
    return;
  }
  TraceEvent e;
  e.ts_us = start;
  e.dur_us = end > start ? end - start : 0.0;
  e.query_id = f.query.id;
  e.value = value;
  e.track = p;
  e.server = server;
  e.level = level;
  e.type = type;
  tracer_->processor_ring(p).Record(e);
}

void DecoupledClusterSim::AdvanceLevel(uint32_t p) {
  InFlight& f = in_flight_[p];

  if (f.next_level >= f.trace.level_stats.size()) {
    // Query complete: result travels back to the router (the ack that lets
    // the router send the next query to this processor).
    const SimTimeUs response = events_.now() - f.dispatch_time;
    response_us_.Add(response);
    tenant_response_us_[f.query.tenant].Add(response);
    ++tenant_queries_[f.query.tenant];
    EmitSpan(p, TraceEventType::kQuery, f.dispatch_time, events_.now(), 0, 0,
             f.trace.level_stats.size());
    answers_.push_back(AnsweredQuery{f.query.id, p, f.result});
    const SimTimeUs ack = events_.now() + config_.cost.net.one_way_us;
    last_ack_us_ = std::max(last_ack_us_, ack);
    events_.ScheduleAt(ack, [this, p] {
      processor_idle_[p] = 1;
      TryDispatch(p);
    });
    return;
  }

  if (config_.processor.max_inflight_batches > 1) {
    StartLevelAsync(p);
  } else {
    StartLevelSync(p);
  }
}

void DecoupledClusterSim::StartLevelSync(uint32_t p) {
  InFlight& f = in_flight_[p];
  const FetchTrace& trace = f.trace;
  const FetchTrace::Level& level = trace.level_stats[f.next_level];
  const CostModel& cost = config_.cost;
  f.level_start = events_.now();
  SimTimeUs probes_done =
      events_.now() + cost.cache_lookup_us * static_cast<double>(level.lookups);
  if (config_.processor.cache_compressed) {
    // Compressed cache slots decode on every hit; the decode is probe-side
    // work, serial with the lookups.
    const SimTimeUs hit_decode =
        cost.decompress_base_us * static_cast<double>(level.hits) +
        cost.decompress_per_edge_us * static_cast<double>(level.hit_edges);
    EmitSpan(p, TraceEventType::kDecode, probes_done, probes_done + hit_decode,
             static_cast<uint32_t>(f.next_level), 0, level.hits);
    probes_done += hit_decode;
    decompress_us_ += hit_decode;
  }
  EmitSpan(p, TraceEventType::kCompute, f.level_start,
           f.level_start + cost.cache_lookup_us * static_cast<double>(level.lookups),
           static_cast<uint32_t>(f.next_level), 0, level.lookups);

  // Collect this level's miss batches (they were recorded level-ordered).
  const size_t batch_begin = f.next_batch;
  size_t batch_end = batch_begin;
  while (batch_end < trace.batches.size() &&
         trace.batches[batch_end].level == f.next_level) {
    ++batch_end;
  }
  // No inflight-peak recording here: like the threaded engine, the
  // synchronous path reports 0 — the barrier model predates the window and
  // its per-level fan-out is not bounded by max_inflight_batches.
  f.next_batch = batch_end;
  f.batches_outstanding = static_cast<uint32_t>(batch_end - batch_begin);
  f.level_fetch_done = probes_done;
  f.level_probe_done = probes_done;

  auto finish_level = [this, p] {
    InFlight& fl = in_flight_[p];
    const FetchTrace::Level& lvl = fl.trace.level_stats[fl.next_level];
    const auto level_idx = static_cast<uint32_t>(fl.next_level);
    const CostModel& cm = config_.cost;
    const bool cached = processors_[p]->cache_enabled();
    // CPU sat idle from the end of the probe pass until the slowest reply
    // landed — the level's exposed fetch latency.
    if (fl.level_fetch_done > fl.level_probe_done) {
      EmitSpan(p, TraceEventType::kStall, fl.level_probe_done, fl.level_fetch_done,
               level_idx);
    }
    SimTimeUs t = fl.level_fetch_done;
    if (cached) {
      t += cm.cache_insert_us * static_cast<double>(lvl.fetched);
    }
    if (config_.adjacency_encoding == AdjacencyEncoding::kDeltaVarint) {
      // Every fetched value arrived as a compressed blob and is decoded
      // before the level's inserts/compute can consume it.
      const SimTimeUs fetch_decode =
          cm.decompress_base_us * static_cast<double>(lvl.fetched) +
          cm.decompress_per_edge_us * static_cast<double>(lvl.fetched_edges);
      EmitSpan(p, TraceEventType::kDecode, t, t + fetch_decode, level_idx, 0,
               lvl.fetched);
      t += fetch_decode;
      decompress_us_ += fetch_decode;
    }
    const SimTimeUs compute_us =
        cm.compute_per_node_us * static_cast<double>(lvl.hits + lvl.fetched);
    EmitSpan(p, TraceEventType::kCompute, t, t + compute_us, level_idx, 0,
             lvl.hits + lvl.fetched);
    t += compute_us;
    fl.next_level += 1;
    const SimTimeUs close = std::max(t, events_.now());
    EmitSpan(p, TraceEventType::kLevel, fl.level_start, close, level_idx, 0,
             lvl.lookups);
    level_completions_.push_back(LevelCompletion{
        fl.query.id, p, static_cast<uint32_t>(fl.next_level - 1), close});
    events_.ScheduleAt(close, [this, p] { AdvanceLevel(p); });
  };

  if (f.batches_outstanding == 0) {
    f.level_fetch_done = probes_done;
    events_.ScheduleAt(probes_done, [finish_level] { finish_level(); });
    return;
  }

  // Dispatch all of this level's batches in parallel to their servers.
  for (size_t b = batch_begin; b < batch_end; ++b) {
    const FetchTrace::Batch batch = trace.batches[b];
    const SimTimeUs issued = probes_done;  // batch-span start: left the CPU
    const SimTimeUs arrive = probes_done + cost.net.one_way_us;
    events_.ScheduleAt(arrive, [this, p, batch, issued, finish_level] {
      const CostModel& cm = config_.cost;
      // FIFO service at the storage server.
      const SimTimeUs start = std::max(events_.now(), server_busy_until_[batch.server]);
      const SimTimeUs done = start + cm.storage_request_base_us +
                             cm.storage_per_value_us * static_cast<double>(batch.values);
      server_busy_until_[batch.server] = done;
      const SimTimeUs reply = done + cm.net.one_way_us +
                              cm.net.per_kb_us * static_cast<double>(batch.bytes) / 1024.0;
      events_.ScheduleAt(reply, [this, p, batch, issued, finish_level] {
        InFlight& fl = in_flight_[p];
        fl.level_fetch_done = std::max(fl.level_fetch_done, events_.now());
        EmitSpan(p, TraceEventType::kBatch, issued, events_.now(), batch.level,
                 batch.server, batch.values);
        GROUTING_CHECK(fl.batches_outstanding > 0);
        if (--fl.batches_outstanding == 0) {
          finish_level();
        }
      });
    });
  }
}

void DecoupledClusterSim::StartLevelAsync(uint32_t p) {
  InFlight& f = in_flight_[p];
  const FetchTrace& trace = f.trace;
  const FetchTrace::Level& level = trace.level_stats[f.next_level];
  const CostModel& cost = config_.cost;

  const size_t batch_begin = f.next_batch;
  size_t batch_end = batch_begin;
  while (batch_end < trace.batches.size() &&
         trace.batches[batch_end].level == f.next_level) {
    ++batch_end;
  }
  f.next_batch = batch_end;
  f.level_batch_end = batch_end;
  f.level_start = events_.now();
  const size_t num_batches = batch_end - batch_begin;
  const size_t first_wave =
      std::min<size_t>(config_.processor.max_inflight_batches, num_batches);

  // Issue phase: the CPU opens the first window of batches back to back,
  // each departing the moment its issue work is done — BEFORE the probe
  // pass, which is the whole point of the async pipeline.
  SimTimeUs t = events_.now();
  for (size_t j = 0; j < first_wave; ++j) {
    t += cost.batch_issue_us;
    const size_t b = batch_begin + j;
    events_.ScheduleAt(t, [this, p, b] { DepartBatchAsync(p, b); });
  }
  f.issue_done = t;
  // Probe phase + hit-side compute overlap with the outstanding batches.
  f.hit_work_done = t + cost.cache_lookup_us * static_cast<double>(level.lookups) +
                    cost.compute_per_node_us * static_cast<double>(level.hits);
  EmitSpan(p, TraceEventType::kCompute, f.issue_done, f.hit_work_done,
           static_cast<uint32_t>(f.next_level), 0, level.lookups + level.hits);
  if (config_.processor.cache_compressed) {
    const SimTimeUs hit_decode =
        cost.decompress_base_us * static_cast<double>(level.hits) +
        cost.decompress_per_edge_us * static_cast<double>(level.hit_edges);
    EmitSpan(p, TraceEventType::kDecode, f.hit_work_done, f.hit_work_done + hit_decode,
             static_cast<uint32_t>(f.next_level), 0, level.hits);
    f.hit_work_done += hit_decode;
    decompress_us_ += hit_decode;
  }
  f.cpu_free = f.hit_work_done;
  f.next_unissued = batch_begin + first_wave;
  f.batches_outstanding = static_cast<uint32_t>(first_wave);
  f.last_reply = events_.now();
  f.level_inflight_peak = static_cast<uint32_t>(first_wave);

  if (num_batches == 0) {
    events_.ScheduleAt(f.hit_work_done, [this, p] { FinishLevelAsync(p); });
  }
}

void DecoupledClusterSim::DepartBatchAsync(uint32_t p, size_t batch_index) {
  const FetchTrace::Batch batch = in_flight_[p].trace.batches[batch_index];
  const SimTimeUs depart = events_.now();  // batch-span start: left the CPU
  const SimTimeUs arrive = depart + config_.cost.net.one_way_us;
  events_.ScheduleAt(arrive, [this, p, batch_index, batch, depart] {
    const CostModel& cm = config_.cost;
    // FIFO service at the storage server — shared with the sync model, so
    // async batches contend with every other processor's identically.
    const SimTimeUs start = std::max(events_.now(), server_busy_until_[batch.server]);
    const SimTimeUs done = start + cm.storage_request_base_us +
                           cm.storage_per_value_us * static_cast<double>(batch.values);
    server_busy_until_[batch.server] = done;
    const SimTimeUs reply = done + cm.net.one_way_us +
                            cm.net.per_kb_us * static_cast<double>(batch.bytes) / 1024.0;
    events_.ScheduleAt(reply, [this, p, batch_index, depart] {
      ReplyBatchAsync(p, batch_index, depart);
    });
  });
}

void DecoupledClusterSim::ReplyBatchAsync(uint32_t p, size_t batch_index,
                                          SimTimeUs depart_ts) {
  InFlight& f = in_flight_[p];
  const FetchTrace::Batch& batch = f.trace.batches[batch_index];
  const CostModel& cm = config_.cost;

  EmitSpan(p, TraceEventType::kBatch, depart_ts, events_.now(), batch.level,
           batch.server, batch.values);
  if (events_.now() > f.cpu_free) {
    // The CPU drained its probe/post-processing work before this reply
    // landed: the gap is exposed fetch latency the pipeline failed to hide.
    EmitSpan(p, TraceEventType::kStall, f.cpu_free, events_.now(), batch.level,
             batch.server);
  }
  f.last_reply = std::max(f.last_reply, events_.now());
  GROUTING_CHECK(f.batches_outstanding > 0);
  --f.batches_outstanding;

  // A freed window slot immediately issues the next pending batch.
  if (f.next_unissued < f.level_batch_end) {
    const size_t next = f.next_unissued++;
    ++f.batches_outstanding;
    f.level_inflight_peak = std::max(f.level_inflight_peak, f.batches_outstanding);
    events_.ScheduleAfter(cm.batch_issue_us,
                          [this, p, next] { DepartBatchAsync(p, next); });
  }

  // This reply's inserts + compute join the processor's CPU timeline (the
  // CPU is busy with probes/earlier replies until cpu_free).
  const SimTimeUs post_start = std::max(events_.now(), f.cpu_free);
  const SimTimeUs compute_us =
      cm.compute_per_node_us * static_cast<double>(batch.values);
  SimTimeUs post_us = compute_us;
  SimTimeUs insert_us = 0.0;
  if (processors_[p]->cache_enabled()) {
    insert_us = cm.cache_insert_us * static_cast<double>(batch.values);
    post_us += insert_us;
  }
  SimTimeUs fetch_decode = 0.0;
  if (config_.adjacency_encoding == AdjacencyEncoding::kDeltaVarint) {
    fetch_decode = cm.decompress_base_us * static_cast<double>(batch.values) +
                   cm.decompress_per_edge_us * static_cast<double>(batch.edges);
    post_us += fetch_decode;
    decompress_us_ += fetch_decode;
    EmitSpan(p, TraceEventType::kDecode, post_start + insert_us,
             post_start + insert_us + fetch_decode, batch.level, batch.server,
             batch.values);
  }
  EmitSpan(p, TraceEventType::kCompute, post_start + insert_us + fetch_decode,
           post_start + insert_us + fetch_decode + compute_us, batch.level,
           batch.server, batch.values);
  f.cpu_free = post_start + post_us;

  if (f.batches_outstanding == 0 && f.next_unissued >= f.level_batch_end) {
    events_.ScheduleAt(std::max(f.cpu_free, f.hit_work_done),
                       [this, p] { FinishLevelAsync(p); });
  }
}

void DecoupledClusterSim::FinishLevelAsync(uint32_t p) {
  InFlight& f = in_flight_[p];
  // Probe/hit work that ran while at least one batch was in flight.
  total_fetch_overlap_us_ +=
      std::max(0.0, std::min(f.hit_work_done, f.last_reply) - f.issue_done);
  batches_inflight_peak_ = std::max(batches_inflight_peak_, f.level_inflight_peak);
  EmitSpan(p, TraceEventType::kLevel, f.level_start, events_.now(),
           static_cast<uint32_t>(f.next_level));
  level_completions_.push_back(LevelCompletion{
      f.query.id, p, static_cast<uint32_t>(f.next_level), events_.now()});
  f.next_level += 1;
  AdvanceLevel(p);
}

}  // namespace grouting
