// Minimal deterministic discrete-event simulation core: a virtual clock in
// microseconds and a time-ordered queue of callbacks. Ties are broken by
// insertion sequence so runs are exactly reproducible.

#ifndef GROUTING_SRC_SIM_EVENT_QUEUE_H_
#define GROUTING_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/net/cost_model.h"
#include "src/util/check.h"

namespace grouting {

class EventQueue {
 public:
  using Action = std::function<void()>;

  SimTimeUs now() const { return now_; }

  // Schedules `action` at absolute virtual time `t` (must be >= now).
  void ScheduleAt(SimTimeUs t, Action action) {
    GROUTING_DCHECK(t >= now_);
    heap_.push(Event{t, next_seq_++, std::move(action)});
  }

  void ScheduleAfter(SimTimeUs delay, Action action) {
    GROUTING_DCHECK(delay >= 0.0);
    ScheduleAt(now_ + delay, std::move(action));
  }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

  // Pops and runs the earliest event; returns false when drained.
  bool RunNext() {
    if (heap_.empty()) {
      return false;
    }
    // std::priority_queue::top() is const; move out via const_cast is UB-free
    // here because we pop immediately and Event's action is the only mutable
    // payload. Copying the handler instead keeps it simple and safe.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.time;
    ev.action();
    return true;
  }

  // Runs to completion; returns the number of events processed.
  // `max_events` guards against runaway self-scheduling loops.
  uint64_t RunUntilEmpty(uint64_t max_events = UINT64_MAX) {
    uint64_t processed = 0;
    while (processed < max_events && RunNext()) {
      ++processed;
    }
    GROUTING_CHECK_MSG(heap_.empty() || processed < max_events,
                       "event budget exhausted; likely a scheduling loop");
    return processed;
  }

 private:
  struct Event {
    SimTimeUs time;
    uint64_t seq;
    Action action;

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTimeUs now_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace grouting

#endif  // GROUTING_SRC_SIM_EVENT_QUEUE_H_
