// METIS-like multilevel k-way graph partitioner.
//
// The SEDGE baseline in the paper uses ParMETIS; we reimplement the classic
// multilevel scheme from scratch:
//   1. COARSEN   — repeated heavy-edge matching (HEM) contracts the graph
//                  until it is small,
//   2. PARTITION — greedy gain-aware initial assignment on the coarsest graph,
//   3. UNCOARSEN — project back level by level, running boundary FM-style
//                  refinement (positive-gain moves under a balance cap).
//
// This is a real partitioner (typically cutting 3-20x fewer edges than hash
// on community-structured graphs) — exactly the kind of "expensive,
// sophisticated partitioning" the paper argues smart routing lets you skip.

#ifndef GROUTING_SRC_PARTITION_MULTILEVEL_H_
#define GROUTING_SRC_PARTITION_MULTILEVEL_H_

#include <cstdint>

#include "src/partition/partitioner.h"

namespace grouting {

struct MultilevelConfig {
  // Coarsening stops once the graph has at most `coarsest_nodes_per_part * k`
  // nodes, or when a round shrinks the graph by less than 10%.
  size_t coarsest_nodes_per_part = 30;
  // Maximum allowed partition weight = ideal * (1 + imbalance).
  double imbalance = 0.05;
  // FM refinement passes per uncoarsening level.
  int refine_passes = 4;
  uint64_t seed = 12345;
};

class MultilevelPartitioner : public Partitioner {
 public:
  explicit MultilevelPartitioner(MultilevelConfig config = {}) : config_(config) {}
  std::string name() const override { return "multilevel"; }
  PartitionAssignment Partition(const Graph& g, uint32_t k) override;

 private:
  MultilevelConfig config_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_PARTITION_MULTILEVEL_H_
