// Node partitioners: map every node to one of k partitions.
//
// gRouting itself only needs the inexpensive hash partitioner (that is the
// paper's headline: smart routing makes storage partitioning unimportant).
// The sophisticated partitioners here exist to (a) drive the SEDGE-like
// coupled baseline the paper compares against, and (b) support the ablation
// benches that show partition quality matters far less under smart routing.

#ifndef GROUTING_SRC_PARTITION_PARTITIONER_H_
#define GROUTING_SRC_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace grouting {

using PartitionId = uint32_t;
using PartitionAssignment = std::vector<PartitionId>;  // node -> partition

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::string name() const = 0;
  // Returns a size-n assignment with values in [0, k).
  virtual PartitionAssignment Partition(const Graph& g, uint32_t k) = 0;
};

// MurmurHash3(node id) mod k — RAMCloud-style placement, O(1) per node,
// oblivious to topology. This is what the decoupled storage tier uses.
class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(uint32_t hash_seed = 0x9747b28cu) : hash_seed_(hash_seed) {}
  std::string name() const override { return "hash"; }
  PartitionAssignment Partition(const Graph& g, uint32_t k) override;

  // The same function applied to a single node, usable without a Graph.
  PartitionId Place(NodeId u, uint32_t k) const;

  uint32_t seed() const { return hash_seed_; }

 private:
  uint32_t hash_seed_;
};

// Contiguous id ranges of (near-)equal size. Captures locality only when node
// ids happen to correlate with topology.
class RangePartitioner : public Partitioner {
 public:
  std::string name() const override { return "range"; }
  PartitionAssignment Partition(const Graph& g, uint32_t k) override;
};

// Linear Deterministic Greedy streaming partitioner (Stanton & Kliot, KDD'12):
// one pass over nodes; each node goes to the partition holding most of its
// already-placed neighbours, damped by a capacity penalty (1 - size/capacity).
class LdgPartitioner : public Partitioner {
 public:
  explicit LdgPartitioner(uint64_t seed = 42, double capacity_slack = 1.05)
      : seed_(seed), capacity_slack_(capacity_slack) {}
  std::string name() const override { return "ldg"; }
  PartitionAssignment Partition(const Graph& g, uint32_t k) override;

 private:
  uint64_t seed_;
  double capacity_slack_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_PARTITION_PARTITIONER_H_
