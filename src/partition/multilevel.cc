#include "src/partition/multilevel.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "src/util/rng.h"

namespace grouting {
namespace {

// Undirected weighted graph used across coarsening levels.
struct WeightedGraph {
  std::vector<int64_t> node_weight;
  // adjacency: (neighbor, edge weight); no self loops; symmetric.
  std::vector<std::vector<std::pair<uint32_t, int64_t>>> adj;

  size_t size() const { return node_weight.size(); }
};

// Collapses the directed input into an undirected weighted graph, merging
// duplicate/bidirectional edges into weights.
WeightedGraph FromGraph(const Graph& g) {
  WeightedGraph wg;
  const size_t n = g.num_nodes();
  wg.node_weight.assign(n, 1);
  wg.adj.resize(n);
  std::unordered_map<uint32_t, int64_t> row;
  for (NodeId u = 0; u < n; ++u) {
    row.clear();
    for (const Edge& e : g.OutNeighbors(u)) {
      if (e.dst != u) {
        row[e.dst] += 1;
      }
    }
    for (const Edge& e : g.InNeighbors(u)) {
      if (e.dst != u) {
        row[e.dst] += 1;
      }
    }
    auto& out = wg.adj[u];
    out.reserve(row.size());
    for (const auto& [v, w] : row) {
      out.emplace_back(v, w);
    }
    std::sort(out.begin(), out.end());
  }
  return wg;
}

// One round of heavy-edge matching. Returns the coarse graph and fills
// fine_to_coarse. Unmatched nodes map to singleton coarse nodes.
WeightedGraph CoarsenOnce(const WeightedGraph& g, Rng& rng,
                          std::vector<uint32_t>* fine_to_coarse) {
  const size_t n = g.size();
  std::vector<uint32_t> match(n, static_cast<uint32_t>(n));  // n = unmatched
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Shuffle(order, rng);

  for (uint32_t u : order) {
    if (match[u] != n) {
      continue;
    }
    int64_t best_w = -1;
    uint32_t best_v = n;
    for (const auto& [v, w] : g.adj[u]) {
      if (match[v] == n && w > best_w) {
        best_w = w;
        best_v = v;
      }
    }
    if (best_v != n) {
      match[u] = best_v;
      match[best_v] = u;
    } else {
      match[u] = u;  // singleton
    }
  }

  fine_to_coarse->assign(n, 0);
  uint32_t next_coarse = 0;
  for (uint32_t u = 0; u < n; ++u) {
    if (match[u] >= u || match[u] == u) {
      // u is the representative of its pair (or singleton).
      if (match[u] == u || match[u] > u) {
        (*fine_to_coarse)[u] = next_coarse;
        if (match[u] != u && match[u] > u) {
          (*fine_to_coarse)[match[u]] = next_coarse;
        }
        ++next_coarse;
      }
    }
  }
  // Second pass for pairs where the partner had the smaller id.
  for (uint32_t u = 0; u < n; ++u) {
    if (match[u] < u && match[u] != u) {
      (*fine_to_coarse)[u] = (*fine_to_coarse)[match[u]];
    }
  }

  WeightedGraph coarse;
  coarse.node_weight.assign(next_coarse, 0);
  coarse.adj.resize(next_coarse);
  for (uint32_t u = 0; u < n; ++u) {
    coarse.node_weight[(*fine_to_coarse)[u]] += g.node_weight[u];
  }
  std::unordered_map<uint32_t, int64_t> row;
  // Aggregate edges per coarse node. We iterate fine nodes grouped by their
  // coarse id via a bucket pass to keep this O(m).
  std::vector<std::vector<uint32_t>> members(next_coarse);
  for (uint32_t u = 0; u < n; ++u) {
    members[(*fine_to_coarse)[u]].push_back(u);
  }
  for (uint32_t cu = 0; cu < next_coarse; ++cu) {
    row.clear();
    for (uint32_t u : members[cu]) {
      for (const auto& [v, w] : g.adj[u]) {
        const uint32_t cv = (*fine_to_coarse)[v];
        if (cv != cu) {
          row[cv] += w;
        }
      }
    }
    auto& out = coarse.adj[cu];
    out.reserve(row.size());
    for (const auto& [v, w] : row) {
      out.emplace_back(v, w);
    }
    std::sort(out.begin(), out.end());
  }
  return coarse;
}

// Greedy gain-aware initial partition of the coarsest graph: place nodes in
// decreasing weight order onto the partition with the highest connectivity
// gain among those under the balance cap.
PartitionAssignment InitialPartition(const WeightedGraph& g, uint32_t k, int64_t cap,
                                     Rng& rng) {
  const size_t n = g.size();
  PartitionAssignment part(n, k);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return g.node_weight[a] > g.node_weight[b];
  });

  std::vector<int64_t> load(k, 0);
  std::vector<int64_t> gain(k, 0);
  for (uint32_t u : order) {
    std::fill(gain.begin(), gain.end(), 0);
    for (const auto& [v, w] : g.adj[u]) {
      if (part[v] < k) {
        gain[part[v]] += w;
      }
    }
    int64_t best_gain = -1;
    uint32_t best = rng.NextBounded(k);
    int64_t best_load = load[best];
    for (uint32_t p = 0; p < k; ++p) {
      if (load[p] + g.node_weight[u] > cap) {
        continue;
      }
      if (gain[p] > best_gain || (gain[p] == best_gain && load[p] < best_load)) {
        best_gain = gain[p];
        best = p;
        best_load = load[p];
      }
    }
    part[u] = best;
    load[best] += g.node_weight[u];
  }
  return part;
}

// Boundary FM-style refinement: repeated passes of positive-gain single-node
// moves subject to the balance cap.
void Refine(const WeightedGraph& g, uint32_t k, int64_t cap, int passes,
            PartitionAssignment* part) {
  const size_t n = g.size();
  std::vector<int64_t> load(k, 0);
  for (uint32_t u = 0; u < n; ++u) {
    load[(*part)[u]] += g.node_weight[u];
  }
  std::vector<int64_t> conn(k, 0);
  for (int pass = 0; pass < passes; ++pass) {
    size_t moves = 0;
    for (uint32_t u = 0; u < n; ++u) {
      const uint32_t from = (*part)[u];
      std::fill(conn.begin(), conn.end(), 0);
      bool boundary = false;
      for (const auto& [v, w] : g.adj[u]) {
        conn[(*part)[v]] += w;
        if ((*part)[v] != from) {
          boundary = true;
        }
      }
      if (!boundary) {
        continue;
      }
      int64_t best_gain = 0;
      uint32_t best = from;
      for (uint32_t p = 0; p < k; ++p) {
        if (p == from || load[p] + g.node_weight[u] > cap) {
          continue;
        }
        const int64_t g_move = conn[p] - conn[from];
        if (g_move > best_gain ||
            (g_move == best_gain && g_move > 0 && load[p] < load[best])) {
          best_gain = g_move;
          best = p;
        }
      }
      if (best != from && best_gain > 0) {
        load[from] -= g.node_weight[u];
        load[best] += g.node_weight[u];
        (*part)[u] = best;
        ++moves;
      }
    }
    if (moves == 0) {
      break;
    }
  }
}

}  // namespace

PartitionAssignment MultilevelPartitioner::Partition(const Graph& g, uint32_t k) {
  GROUTING_CHECK(k > 0);
  const size_t n = g.num_nodes();
  if (n == 0) {
    return {};
  }
  if (k == 1) {
    return PartitionAssignment(n, 0);
  }

  Rng rng(config_.seed);

  // Phase 1: coarsen.
  std::vector<WeightedGraph> levels;
  std::vector<std::vector<uint32_t>> mappings;  // fine -> coarse per level
  levels.push_back(FromGraph(g));
  const size_t target = std::max<size_t>(config_.coarsest_nodes_per_part * k, 2 * k);
  while (levels.back().size() > target) {
    std::vector<uint32_t> mapping;
    WeightedGraph coarse = CoarsenOnce(levels.back(), rng, &mapping);
    if (coarse.size() > levels.back().size() * 9 / 10) {
      break;  // matching stalled (e.g. star graphs)
    }
    mappings.push_back(std::move(mapping));
    levels.push_back(std::move(coarse));
  }

  const int64_t total_weight = static_cast<int64_t>(n);
  const auto cap = static_cast<int64_t>(
      static_cast<double>(total_weight) / k * (1.0 + config_.imbalance) + 1.0);

  // Phase 2: initial partition on the coarsest level.
  PartitionAssignment part = InitialPartition(levels.back(), k, cap, rng);
  Refine(levels.back(), k, cap, config_.refine_passes, &part);

  // Phase 3: uncoarsen with refinement.
  for (size_t level = mappings.size(); level-- > 0;) {
    const auto& mapping = mappings[level];
    PartitionAssignment finer(mapping.size());
    for (size_t u = 0; u < mapping.size(); ++u) {
      finer[u] = part[mapping[u]];
    }
    part = std::move(finer);
    Refine(levels[level], k, cap, config_.refine_passes, &part);
  }
  return part;
}

}  // namespace grouting
