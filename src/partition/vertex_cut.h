// Greedy vertex-cut edge partitioner, as used by PowerGraph (Gonzalez et
// al., OSDI'12). Edges — not nodes — are assigned to partitions; a node is
// replicated ("mirrored") on every partition that owns one of its edges.
// Power-law hubs get split across machines, which is what lets PowerGraph
// balance natural graphs.

#ifndef GROUTING_SRC_PARTITION_VERTEX_CUT_H_
#define GROUTING_SRC_PARTITION_VERTEX_CUT_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace grouting {

struct VertexCutResult {
  // Partition of each out-edge, indexed in CSR order (same order as
  // iterating u ascending, then Graph::OutNeighbors(u)).
  std::vector<uint32_t> edge_partition;
  // For each node, the sorted set of partitions holding at least one of its
  // edges (its replicas). Nodes with no edges get their hash partition.
  std::vector<std::vector<uint32_t>> node_replicas;
  // Master partition per node (first replica).
  std::vector<uint32_t> master;
  // Edge count per partition.
  std::vector<uint64_t> edges_per_partition;

  // Average number of replicas per node — PowerGraph's headline metric.
  double ReplicationFactor() const;
};

// The PowerGraph greedy heuristic:
//   both endpoints share a partition      -> least-loaded shared partition
//   endpoints placed on disjoint sets     -> least-loaded partition of the
//                                            higher-(remaining-)degree node
//   one endpoint placed                   -> one of its partitions
//   neither placed                        -> globally least-loaded partition
VertexCutResult GreedyVertexCut(const Graph& g, uint32_t k, uint64_t seed);

}  // namespace grouting

#endif  // GROUTING_SRC_PARTITION_VERTEX_CUT_H_
