#include "src/partition/metrics.h"

#include <algorithm>

namespace grouting {

std::vector<size_t> PartitionSizes(const PartitionAssignment& assignment, uint32_t k) {
  std::vector<size_t> sizes(k, 0);
  for (PartitionId p : assignment) {
    GROUTING_CHECK(p < k);
    sizes[p] += 1;
  }
  return sizes;
}

PartitionMetrics EvaluatePartition(const Graph& g, const PartitionAssignment& assignment,
                                   uint32_t k) {
  GROUTING_CHECK(assignment.size() == g.num_nodes());
  PartitionMetrics m;
  m.num_partitions = k;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Edge& e : g.OutNeighbors(u)) {
      if (assignment[u] != assignment[e.dst]) {
        ++m.cut_edges;
      }
    }
  }
  m.cut_fraction = g.num_edges() == 0
                       ? 0.0
                       : static_cast<double>(m.cut_edges) / static_cast<double>(g.num_edges());
  const auto sizes = PartitionSizes(assignment, k);
  m.max_partition_size = *std::max_element(sizes.begin(), sizes.end());
  m.min_partition_size = *std::min_element(sizes.begin(), sizes.end());
  const double ideal = static_cast<double>(g.num_nodes()) / static_cast<double>(k);
  m.balance = ideal == 0.0 ? 1.0 : static_cast<double>(m.max_partition_size) / ideal;
  return m;
}

}  // namespace grouting
