// Partition quality metrics: edge cut (what SEDGE-style coupled systems pay
// as network messages) and balance (what limits their parallelism).

#ifndef GROUTING_SRC_PARTITION_METRICS_H_
#define GROUTING_SRC_PARTITION_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/partition/partitioner.h"

namespace grouting {

struct PartitionMetrics {
  uint32_t num_partitions = 0;
  uint64_t cut_edges = 0;
  double cut_fraction = 0.0;  // cut_edges / num_edges
  size_t max_partition_size = 0;
  size_t min_partition_size = 0;
  double balance = 0.0;  // max size / (n / k); 1.0 is perfect
};

PartitionMetrics EvaluatePartition(const Graph& g, const PartitionAssignment& assignment,
                                   uint32_t k);

// Per-partition node counts.
std::vector<size_t> PartitionSizes(const PartitionAssignment& assignment, uint32_t k);

}  // namespace grouting

#endif  // GROUTING_SRC_PARTITION_METRICS_H_
