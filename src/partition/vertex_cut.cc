#include "src/partition/vertex_cut.h"

#include <algorithm>

#include "src/util/murmur3.h"
#include "src/util/rng.h"

namespace grouting {
namespace {

void Insert(std::vector<uint32_t>* sorted, uint32_t value) {
  auto it = std::lower_bound(sorted->begin(), sorted->end(), value);
  if (it == sorted->end() || *it != value) {
    sorted->insert(it, value);
  }
}

bool Contains(const std::vector<uint32_t>& sorted, uint32_t value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

}  // namespace

double VertexCutResult::ReplicationFactor() const {
  if (node_replicas.empty()) {
    return 0.0;
  }
  uint64_t total = 0;
  for (const auto& reps : node_replicas) {
    total += reps.size();
  }
  return static_cast<double>(total) / static_cast<double>(node_replicas.size());
}

VertexCutResult GreedyVertexCut(const Graph& g, uint32_t k, uint64_t seed) {
  GROUTING_CHECK(k > 0);
  const size_t n = g.num_nodes();
  VertexCutResult result;
  result.edge_partition.resize(g.num_edges());
  result.node_replicas.assign(n, {});
  result.master.assign(n, 0);
  result.edges_per_partition.assign(k, 0);

  Rng rng(seed);

  // PowerGraph's greedy objective (Gonzalez et al., OSDI'12, Sec. 4.2.1):
  // place edge (u,v) on the machine maximising
  //     [m in A(u)] + [m in A(v)] + balance(m)
  // where balance(m) = (maxload - load(m)) / (eps + maxload - minload),
  // subject to a hard per-machine capacity (as production ingress does).
  // The capacity bound is what forces hub vertices to SPLIT across machines
  // once their preferred machine fills up — without it, membership (>= 1)
  // always beats the bounded balance term and chains monopolise a machine.
  const uint64_t capacity = std::max<uint64_t>(
      1, static_cast<uint64_t>(1.1 * static_cast<double>(g.num_edges()) / k) + 1);
  size_t edge_index = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : g.OutNeighbors(u)) {
      const NodeId v = e.dst;
      auto& au = result.node_replicas[u];
      auto& av = result.node_replicas[v];

      uint64_t max_load = 0;
      uint64_t min_load = UINT64_MAX;
      for (uint32_t m = 0; m < k; ++m) {
        max_load = std::max(max_load, result.edges_per_partition[m]);
        min_load = std::min(min_load, result.edges_per_partition[m]);
      }
      const double spread = 1.0 + static_cast<double>(max_load - min_load);

      uint32_t chosen = static_cast<uint32_t>(rng.NextBounded(k));
      double best_score = -1.0;
      for (uint32_t m = 0; m < k; ++m) {
        if (result.edges_per_partition[m] >= capacity) {
          continue;  // machine full
        }
        const double membership = static_cast<double>(Contains(au, m)) +
                                  static_cast<double>(Contains(av, m));
        const double balance =
            static_cast<double>(max_load - result.edges_per_partition[m]) / spread;
        const double score = membership + balance;
        if (score > best_score) {
          best_score = score;
          chosen = m;
        }
      }
      if (best_score < 0.0) {
        // All at capacity (rounding corner): fall back to least loaded.
        for (uint32_t m = 0; m < k; ++m) {
          if (result.edges_per_partition[m] < result.edges_per_partition[chosen]) {
            chosen = m;
          }
        }
      }

      result.edge_partition[edge_index++] = chosen;
      result.edges_per_partition[chosen] += 1;
      Insert(&au, chosen);
      Insert(&av, chosen);
    }
  }

  // Isolated nodes fall back to hash placement so every node has a master.
  for (NodeId u = 0; u < n; ++u) {
    if (result.node_replicas[u].empty()) {
      result.node_replicas[u].push_back(Murmur3Hash64(u) % k);
    }
    result.master[u] = result.node_replicas[u][0];
  }
  return result;
}

}  // namespace grouting
