#include "src/partition/partitioner.h"

#include <algorithm>

#include "src/util/murmur3.h"
#include "src/util/rng.h"

namespace grouting {

PartitionAssignment HashPartitioner::Partition(const Graph& g, uint32_t k) {
  GROUTING_CHECK(k > 0);
  PartitionAssignment assignment(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    assignment[u] = Place(u, k);
  }
  return assignment;
}

PartitionId HashPartitioner::Place(NodeId u, uint32_t k) const {
  GROUTING_DCHECK(k > 0);
  return Murmur3Hash64(u, hash_seed_) % k;
}

PartitionAssignment RangePartitioner::Partition(const Graph& g, uint32_t k) {
  GROUTING_CHECK(k > 0);
  const size_t n = g.num_nodes();
  PartitionAssignment assignment(n);
  // ceil-sized leading ranges so every partition is within one node of even.
  const size_t base = n / k;
  const size_t extra = n % k;
  size_t next = 0;
  for (uint32_t p = 0; p < k; ++p) {
    const size_t size = base + (p < extra ? 1 : 0);
    for (size_t i = 0; i < size; ++i) {
      assignment[next++] = p;
    }
  }
  return assignment;
}

PartitionAssignment LdgPartitioner::Partition(const Graph& g, uint32_t k) {
  GROUTING_CHECK(k > 0);
  const size_t n = g.num_nodes();
  PartitionAssignment assignment(n, k);  // k = unassigned sentinel
  if (n == 0) {
    return assignment;
  }
  const double capacity =
      capacity_slack_ * static_cast<double>(n) / static_cast<double>(k) + 1.0;

  std::vector<NodeId> order(n);
  for (NodeId u = 0; u < n; ++u) {
    order[u] = u;
  }
  Rng rng(seed_);
  Shuffle(order, rng);

  std::vector<size_t> load(k, 0);
  std::vector<size_t> neighbor_count(k, 0);
  for (NodeId u : order) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (const Edge& e : g.OutNeighbors(u)) {
      if (assignment[e.dst] < k) {
        neighbor_count[assignment[e.dst]] += 1;
      }
    }
    for (const Edge& e : g.InNeighbors(u)) {
      if (assignment[e.dst] < k) {
        neighbor_count[assignment[e.dst]] += 1;
      }
    }
    double best_score = -1.0;
    PartitionId best = 0;
    for (uint32_t p = 0; p < k; ++p) {
      const double penalty = 1.0 - static_cast<double>(load[p]) / capacity;
      // +1 so empty-neighbour nodes still spread by capacity penalty.
      const double score = (static_cast<double>(neighbor_count[p]) + 1.0) * penalty;
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    assignment[u] = best;
    load[best] += 1;
  }
  return assignment;
}

}  // namespace grouting
