#include "src/partition/repartition.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace grouting {

PartitionMap::PartitionMap(uint32_t num_partitions, uint32_t num_servers,
                           uint32_t hash_seed)
    : num_partitions_(num_partitions), num_servers_(num_servers), hash_seed_(hash_seed) {
  GROUTING_CHECK(num_partitions_ > 0 && num_servers_ > 0);
  GROUTING_CHECK_MSG(num_partitions_ % num_servers_ == 0,
                     "num_partitions must be a multiple of num_servers so the "
                     "initial map reproduces hash placement exactly");
  owners_ = std::make_unique<std::atomic<uint64_t>[]>(num_partitions_);
  replicas_ = std::make_unique<std::atomic<uint64_t>[]>(num_partitions_);
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    // (h % cM) % M == h % M: partition q starts on server q % M, which makes
    // OwnerOf(node) identical to HashPartitioner::Place(node, M).
    owners_[q].store(q % num_servers_, std::memory_order_relaxed);
    replicas_[q].store(0, std::memory_order_relaxed);
  }
}

std::vector<uint32_t> PartitionMap::OwnerSnapshot() const {
  std::vector<uint32_t> snapshot(num_partitions_);
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    snapshot[q] = owner(q);
  }
  return snapshot;
}

void PartitionMap::AddReplica(uint32_t partition, uint32_t server) {
  GROUTING_CHECK(partition < num_partitions_ && server < num_servers_);
  GROUTING_CHECK_MSG(server < 256, "replica stamps pack 8-bit server ids");
  const uint64_t stamp = replicas_[partition].load(std::memory_order_relaxed);
  const uint32_t count = StampReplicaCount(stamp);
  GROUTING_CHECK_MSG(count < kMaxReplicas, "replica set full");
  GROUTING_CHECK_MSG(server != owner(partition),
                     "the primary is not a replica of itself");
  for (uint32_t i = 0; i < count; ++i) {
    GROUTING_CHECK_MSG(StampReplica(stamp, i) != server, "duplicate replica");
  }
  const uint64_t version = (stamp >> 32) + 1;
  uint64_t next = stamp & 0x00ffffffull;  // keep the existing server bytes
  next |= static_cast<uint64_t>(server) << (8 * count);
  next |= static_cast<uint64_t>(count + 1) << 24;
  next |= version << 32;
  replicas_[partition].store(next, std::memory_order_release);
}

void PartitionMap::RemoveReplica(uint32_t partition, uint32_t server) {
  GROUTING_CHECK(partition < num_partitions_);
  const uint64_t stamp = replicas_[partition].load(std::memory_order_relaxed);
  const uint32_t count = StampReplicaCount(stamp);
  uint64_t next = 0;
  uint32_t kept = 0;
  bool found = false;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t r = StampReplica(stamp, i);
    if (r == server) {
      found = true;
      continue;
    }
    next |= static_cast<uint64_t>(r) << (8 * kept);
    ++kept;
  }
  GROUTING_CHECK_MSG(found, "server is not a replica of this partition");
  next |= static_cast<uint64_t>(kept) << 24;
  next |= ((stamp >> 32) + 1) << 32;
  replicas_[partition].store(next, std::memory_order_release);
}

uint32_t PartitionMap::ReplicatedPartitionCount() const {
  uint32_t n = 0;
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    if (replica_count(q) > 0) {
      ++n;
    }
  }
  return n;
}

std::vector<std::vector<uint32_t>> PartitionMap::ReplicaSnapshot() const {
  std::vector<std::vector<uint32_t>> snapshot(num_partitions_);
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    const uint64_t stamp = ReplicaStamp(q);
    const uint32_t count = StampReplicaCount(stamp);
    snapshot[q].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      snapshot[q].push_back(StampReplica(stamp, i));
    }
  }
  return snapshot;
}

PartitionMonitor::PartitionMonitor(uint32_t num_partitions)
    : num_partitions_(num_partitions), rates_(num_partitions, 0.0) {
  GROUTING_CHECK(num_partitions_ > 0);
  windows_ = std::make_unique<std::atomic<uint64_t>[]>(num_partitions_);
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    windows_[q].store(0, std::memory_order_relaxed);
  }
}

void PartitionMonitor::RollWindow(double decay) {
  GROUTING_CHECK(decay >= 0.0 && decay < 1.0);
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    const uint64_t window = windows_[q].exchange(0, std::memory_order_relaxed);
    rates_[q] = decay * rates_[q] + static_cast<double>(window);
    total_recorded_.fetch_add(window, std::memory_order_relaxed);
  }
}

std::vector<PartitionMigration> PlanRepartition(const PartitionMap& map,
                                                std::span<const double> rates,
                                                const RepartitionConfig& config) {
  std::vector<PartitionMigration> migrations;
  const uint32_t num_servers = map.num_servers();
  if (!config.enabled() || num_servers < 2) {
    return migrations;
  }
  GROUTING_CHECK(rates.size() == map.num_partitions());
  GROUTING_CHECK(config.hysteresis > 0.0 && config.hysteresis <= 1.0);

  // Working copy: planned moves shift load between servers immediately, so
  // one round never double-moves against a stale picture. A replicated
  // partition's rate splits evenly across its holders (p2c read fan-out);
  // x / 1.0 is exact, so with no replicas the sums are bit-identical to the
  // pre-replication planner.
  std::vector<uint32_t> owner = map.OwnerSnapshot();
  const std::vector<std::vector<uint32_t>> replicas = map.ReplicaSnapshot();
  std::vector<double> server_load(num_servers, 0.0);
  for (uint32_t q = 0; q < map.num_partitions(); ++q) {
    const double share = rates[q] / static_cast<double>(1 + replicas[q].size());
    server_load[owner[q]] += share;
    for (const uint32_t r : replicas[q]) {
      server_load[r] += share;
    }
  }

  const auto ratio = [&](uint32_t hi, uint32_t lo) {
    return (server_load[hi] + 1.0) / (server_load[lo] + 1.0);
  };
  const double stop_ratio = std::max(1.0, config.hysteresis * config.threshold);

  bool triggered = false;
  while (migrations.size() < config.migration_cap) {
    uint32_t hottest = 0;
    uint32_t coolest = 0;
    for (uint32_t s = 1; s < num_servers; ++s) {
      if (server_load[s] > server_load[hottest]) {
        hottest = s;
      }
      if (server_load[s] < server_load[coolest]) {
        coolest = s;
      }
    }
    const double r = ratio(hottest, coolest);
    const double gap = server_load[hottest] - server_load[coolest];
    const double gap_floor =
        config.noise_sigmas * std::sqrt(std::max(server_load[hottest], 1.0));
    if (gap <= gap_floor) {
      break;  // the spread is within sampling noise: not actionable skew
    }
    if (!triggered) {
      if (r <= config.threshold) {
        return migrations;  // below the trigger, leave the map alone
      }
      triggered = true;
    } else if (r <= stop_ratio) {
      break;  // drained below the hysteresis water mark
    }

    // Victim rule (mirrors the router rebalancer): move the partition that
    // lands the pair closest to even, restricted to rate < gap so every
    // move strictly narrows the spread — a partition hotter than the whole
    // gap would only relocate the hotspot and invite thrash. Ties fall to
    // the lowest partition id (the ascending scan keeps the first).
    // Replicated partitions are never migration victims: their heat is
    // already being split across replicas, and excluding them keeps the
    // single-primary invariant MigratePartition relies on simple.
    uint32_t victim = map.num_partitions();
    double victim_spread = gap;
    double victim_rate = 0.0;
    for (uint32_t q = 0; q < map.num_partitions(); ++q) {
      if (owner[q] != hottest || rates[q] <= 0.0 || rates[q] >= gap ||
          !replicas[q].empty()) {
        continue;
      }
      const double spread = std::abs(gap - 2.0 * rates[q]);
      if (victim == map.num_partitions() || spread < victim_spread) {
        victim = q;
        victim_spread = spread;
        victim_rate = rates[q];
      }
    }
    if (victim == map.num_partitions()) {
      break;  // nothing movable without widening the spread
    }

    owner[victim] = coolest;
    server_load[hottest] -= victim_rate;
    server_load[coolest] += victim_rate;
    migrations.push_back({victim, hottest, coolest});
  }
  return migrations;
}

ReplicationPlan PlanReplication(const PartitionMap& map,
                                std::span<const double> rates,
                                const RepartitionConfig& config) {
  ReplicationPlan plan;
  const uint32_t num_servers = map.num_servers();
  const uint32_t num_partitions = map.num_partitions();
  if (!config.replication_enabled() || num_servers < 2) {
    return plan;
  }
  GROUTING_CHECK(rates.size() == num_partitions);
  const uint32_t max_replicas =
      std::min(config.max_replicas_per_partition, PartitionMap::kMaxReplicas);

  // Working copies, with each partition's rate split evenly across its
  // holders (the p2c read path spreads replicated reads near-evenly).
  const std::vector<uint32_t> owner = map.OwnerSnapshot();
  std::vector<std::vector<uint32_t>> replicas = map.ReplicaSnapshot();
  std::vector<double> server_load(num_servers, 0.0);
  double total = 0.0;
  for (uint32_t q = 0; q < num_partitions; ++q) {
    const double share = rates[q] / static_cast<double>(1 + replicas[q].size());
    server_load[owner[q]] += share;
    for (const uint32_t r : replicas[q]) {
      server_load[r] += share;
    }
    total += rates[q];
  }
  const double avg_server = total / static_cast<double>(num_servers);

  // Demotions first: one replica per cold replicated partition per round,
  // torn off the most-loaded holder (ties to the lowest server id). "<="
  // via rates[q] > floor guard, so fully idle clusters (avg 0) still
  // reclaim their replicas.
  const double demote_floor = config.replica_demote_threshold * avg_server;
  for (uint32_t q = 0; q < num_partitions; ++q) {
    if (replicas[q].empty() || rates[q] > demote_floor) {
      continue;
    }
    uint32_t victim = replicas[q][0];
    for (const uint32_t r : replicas[q]) {
      if (server_load[r] > server_load[victim] ||
          (server_load[r] == server_load[victim] && r < victim)) {
        victim = r;
      }
    }
    plan.demote.push_back({q, victim});
    const double oh = static_cast<double>(1 + replicas[q].size());
    replicas[q].erase(std::find(replicas[q].begin(), replicas[q].end(), victim));
    // The victim sheds its share; the surviving holders absorb it.
    server_load[victim] -= rates[q] / oh;
    const double delta = rates[q] / (oh - 1.0) - rates[q] / oh;
    server_load[owner[q]] += delta;
    for (const uint32_t r : replicas[q]) {
      server_load[r] += delta;
    }
  }

  // Promotions: top-k hottest qualifying partitions (descending rate, ties
  // to the lowest id), one extra replica each on the least-loaded server
  // not already holding the partition. The hot floor plus the noise floor
  // keep tiny workloads from replicating sampling jitter, and the imbalance
  // gate terminates the controller: once the projected per-server loads sit
  // within the migration trigger ratio, another copy buys nothing — without
  // the gate, steady skew would eventually replicate every warm partition
  // everywhere, paying copy stalls for flatness nobody measures.
  const double imbalance_gate = std::max(config.threshold, 1.0);
  const double avg_partition = total / static_cast<double>(num_partitions);
  const double hot_floor =
      std::max(config.noise_sigmas, config.replica_hot_fraction * avg_partition);
  std::vector<uint32_t> order(num_partitions);
  for (uint32_t q = 0; q < num_partitions; ++q) {
    order[q] = q;
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (rates[a] != rates[b]) {
      return rates[a] > rates[b];
    }
    return a < b;
  });
  for (const uint32_t q : order) {
    if (plan.promote.size() >= config.replication_top_k) {
      break;
    }
    if (rates[q] < hot_floor) {
      break;  // sorted descending: nothing below is hot either
    }
    if (avg_server <= 0.0 ||
        *std::max_element(server_load.begin(), server_load.end()) <=
            imbalance_gate * avg_server) {
      break;  // projected loads already flat enough; stop copying
    }
    if (replicas[q].size() >= max_replicas) {
      continue;
    }
    uint32_t target = num_servers;
    for (uint32_t s = 0; s < num_servers; ++s) {
      if (s == owner[q] ||
          std::find(replicas[q].begin(), replicas[q].end(), s) !=
              replicas[q].end()) {
        continue;
      }
      if (target == num_servers || server_load[s] < server_load[target]) {
        target = s;
      }
    }
    if (target == num_servers) {
      continue;  // every server already holds this partition
    }
    plan.promote.push_back({q, target});
    // The existing holders each shed some share to the new replica.
    const double oh = static_cast<double>(1 + replicas[q].size());
    const double delta = rates[q] / (oh + 1.0) - rates[q] / oh;
    server_load[owner[q]] += delta;
    for (const uint32_t r : replicas[q]) {
      server_load[r] += delta;
    }
    replicas[q].push_back(target);
    server_load[target] += rates[q] / (oh + 1.0);
  }
  return plan;
}

double StorageLoadImbalance(std::span<const uint64_t> per_server) {
  return MaxMinLoadRatio(per_server);
}

}  // namespace grouting
