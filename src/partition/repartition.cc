#include "src/partition/repartition.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace grouting {

PartitionMap::PartitionMap(uint32_t num_partitions, uint32_t num_servers,
                           uint32_t hash_seed)
    : num_partitions_(num_partitions), num_servers_(num_servers), hash_seed_(hash_seed) {
  GROUTING_CHECK(num_partitions_ > 0 && num_servers_ > 0);
  GROUTING_CHECK_MSG(num_partitions_ % num_servers_ == 0,
                     "num_partitions must be a multiple of num_servers so the "
                     "initial map reproduces hash placement exactly");
  owners_ = std::make_unique<std::atomic<uint64_t>[]>(num_partitions_);
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    // (h % cM) % M == h % M: partition q starts on server q % M, which makes
    // OwnerOf(node) identical to HashPartitioner::Place(node, M).
    owners_[q].store(q % num_servers_, std::memory_order_relaxed);
  }
}

std::vector<uint32_t> PartitionMap::OwnerSnapshot() const {
  std::vector<uint32_t> snapshot(num_partitions_);
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    snapshot[q] = owner(q);
  }
  return snapshot;
}

PartitionMonitor::PartitionMonitor(uint32_t num_partitions)
    : num_partitions_(num_partitions), rates_(num_partitions, 0.0) {
  GROUTING_CHECK(num_partitions_ > 0);
  windows_ = std::make_unique<std::atomic<uint64_t>[]>(num_partitions_);
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    windows_[q].store(0, std::memory_order_relaxed);
  }
}

void PartitionMonitor::RollWindow(double decay) {
  GROUTING_CHECK(decay >= 0.0 && decay < 1.0);
  for (uint32_t q = 0; q < num_partitions_; ++q) {
    const uint64_t window = windows_[q].exchange(0, std::memory_order_relaxed);
    rates_[q] = decay * rates_[q] + static_cast<double>(window);
    total_recorded_.fetch_add(window, std::memory_order_relaxed);
  }
}

std::vector<PartitionMigration> PlanRepartition(const PartitionMap& map,
                                                std::span<const double> rates,
                                                const RepartitionConfig& config) {
  std::vector<PartitionMigration> migrations;
  const uint32_t num_servers = map.num_servers();
  if (!config.enabled() || num_servers < 2) {
    return migrations;
  }
  GROUTING_CHECK(rates.size() == map.num_partitions());
  GROUTING_CHECK(config.hysteresis > 0.0 && config.hysteresis <= 1.0);

  // Working copy: planned moves shift load between servers immediately, so
  // one round never double-moves against a stale picture.
  std::vector<uint32_t> owner = map.OwnerSnapshot();
  std::vector<double> server_load(num_servers, 0.0);
  for (uint32_t q = 0; q < map.num_partitions(); ++q) {
    server_load[owner[q]] += rates[q];
  }

  const auto ratio = [&](uint32_t hi, uint32_t lo) {
    return (server_load[hi] + 1.0) / (server_load[lo] + 1.0);
  };
  const double stop_ratio = std::max(1.0, config.hysteresis * config.threshold);

  bool triggered = false;
  while (migrations.size() < config.migration_cap) {
    uint32_t hottest = 0;
    uint32_t coolest = 0;
    for (uint32_t s = 1; s < num_servers; ++s) {
      if (server_load[s] > server_load[hottest]) {
        hottest = s;
      }
      if (server_load[s] < server_load[coolest]) {
        coolest = s;
      }
    }
    const double r = ratio(hottest, coolest);
    const double gap = server_load[hottest] - server_load[coolest];
    const double gap_floor =
        config.noise_sigmas * std::sqrt(std::max(server_load[hottest], 1.0));
    if (gap <= gap_floor) {
      break;  // the spread is within sampling noise: not actionable skew
    }
    if (!triggered) {
      if (r <= config.threshold) {
        return migrations;  // below the trigger, leave the map alone
      }
      triggered = true;
    } else if (r <= stop_ratio) {
      break;  // drained below the hysteresis water mark
    }

    // Victim rule (mirrors the router rebalancer): move the partition that
    // lands the pair closest to even, restricted to rate < gap so every
    // move strictly narrows the spread — a partition hotter than the whole
    // gap would only relocate the hotspot and invite thrash. Ties fall to
    // the lowest partition id (the ascending scan keeps the first).
    uint32_t victim = map.num_partitions();
    double victim_spread = gap;
    double victim_rate = 0.0;
    for (uint32_t q = 0; q < map.num_partitions(); ++q) {
      if (owner[q] != hottest || rates[q] <= 0.0 || rates[q] >= gap) {
        continue;
      }
      const double spread = std::abs(gap - 2.0 * rates[q]);
      if (victim == map.num_partitions() || spread < victim_spread) {
        victim = q;
        victim_spread = spread;
        victim_rate = rates[q];
      }
    }
    if (victim == map.num_partitions()) {
      break;  // nothing movable without widening the spread
    }

    owner[victim] = coolest;
    server_load[hottest] -= victim_rate;
    server_load[coolest] += victim_rate;
    migrations.push_back({victim, hottest, coolest});
  }
  return migrations;
}

double StorageLoadImbalance(std::span<const uint64_t> per_server) {
  return MaxMinLoadRatio(per_server);
}

}  // namespace grouting
