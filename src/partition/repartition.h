// Adaptive repartitioning of the storage tier under skew (PHD-Store-style
// dynamic repartitioning, Al-Harbi et al., applied to the decoupled tier).
//
// The paper keeps the storage tier's partitioning static — MurmurHash3 over
// node ids — and pushes all adaptivity into the routers. That works until a
// Zipf-skewed workload concentrates traversal traffic on keys that happen
// to live on one storage server: router-side re-splitting (src/frontend/)
// cannot help, because the hot vertices physically live there. This module
// closes that gap with three pieces, mirroring the arrival-stream
// rebalancer's controller design (ArrivalSplitter::Rebalance):
//
//   * PartitionMap     — the key space is cut into P = partitions_per_server
//                        x num_servers virtual partitions by the SAME
//                        MurmurHash3 the tier places keys with; each
//                        partition has a current owner server. The initial
//                        owner of partition q is q % num_servers, which makes
//                        the map's placement BYTE-IDENTICAL to the tier's
//                        classic hash placement ((h % cM) % M == h % M) —
//                        enabling repartitioning changes nothing until the
//                        first migration actually fires.
//   * PartitionMonitor — per-partition decayed access-rate estimates, fed
//                        with one Record() per key from the StorageTier
//                        get/multiget paths and rolled into rates at
//                        planner rounds.
//   * PlanRepartition  — the controller: at gossip-aligned rounds, propose
//                        hot-partition migrations from the most- to the
//                        least-loaded storage server once the max/min load
//                        ratio exceeds a threshold, with hysteresis, a
//                        per-round migration cap, a Poisson noise floor and
//                        a strict-improvement victim rule.
//
// The physical move (copy keys -> flip owner -> drain in-flight multigets
// against the old owner -> delete) is the storage tier's job:
// StorageTier::MigratePartition.
//
// Hot-partition REPLICATION rides the same skeleton: when a single scorching
// partition saturates its owner even after migration (migration can only
// relocate the hotspot, never split it), PlanReplication promotes the top-k
// hottest partitions to an extra replica on the least-loaded server. Readers
// then fan across {owner + replicas} with power-of-two-choices on server
// load (StorageTier::ReadServerOf), and a demotion rule on the same decayed
// rates reclaims replicas once a partition cools. Replica sets live in the
// map as packed versioned stamps next to the owner stamps; creation and
// teardown reuse the copy -> flip -> drain -> delete epoch machinery.

#ifndef GROUTING_SRC_PARTITION_REPARTITION_H_
#define GROUTING_SRC_PARTITION_REPARTITION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/murmur3.h"

namespace grouting {

// Controller policy for the storage-tier rebalancer. Threshold and cap are
// surfaced as ClusterConfig / CLI knobs; the rest are tuned defaults shared
// with the router rebalancer's controller.
struct RepartitionConfig {
  // Trigger: migrate when (max+1)/(min+1) over the servers' decayed access
  // rates exceeds this ratio. <= 1 (or infinity) disables repartitioning
  // entirely — the tier then behaves exactly as before this subsystem.
  double threshold = 0.0;
  // At most this many partitions move per repartition round.
  uint32_t migration_cap = 4;
  // Virtual partitions per storage server (P = this x num_servers). More
  // partitions = finer-grained moves at a larger map.
  uint32_t partitions_per_server = 8;
  // Once triggered, migrate down to hysteresis * threshold (a lower water
  // mark in (0, 1]) so the next round does not immediately re-trigger.
  double hysteresis = 0.9;
  // Per-round decay of the monitor's rate estimates, in [0, 1): the
  // controller reacts to the RECENT access rate, not cumulative counts.
  double load_decay = 0.8;
  // Noise floor: migrate only while the hot-cold server gap exceeds this
  // many Poisson sigmas (sqrt of the hottest server's recent load), so
  // short windows of sampling jitter never thrash partitions.
  double noise_sigmas = 3.0;

  // --- Hot-partition replication (PlanReplication) ----------------------
  // Promote up to this many of the hottest partitions to one extra replica
  // per round. 0 disables replication entirely — the read path then reduces
  // to plain owner routing, bit-identical to the pre-replication tier.
  uint32_t replication_top_k = 0;
  // Demote one replica per round from any replicated partition whose
  // decayed rate has fallen to or below this fraction of the average
  // per-server load (cold replicas are reclaimed, not kept forever).
  double replica_demote_threshold = 0.1;
  // Extra copies beyond the primary a partition may hold, capped at
  // PartitionMap::kMaxReplicas.
  uint32_t max_replicas_per_partition = 2;
  // Promotion floor: only partitions whose rate is at least this multiple
  // of the average per-PARTITION rate qualify as "hot". Partition-relative
  // (not server-relative) so the floor separates skew from uniform traffic
  // at any partitions_per_server: a uniform workload sits at 1.0x by
  // construction. The gap between this and replica_demote_threshold is the
  // promotion/demotion hysteresis band.
  double replica_hot_fraction = 2.0;

  bool enabled() const {
    return threshold > 1.0 && threshold < 1e30 && migration_cap > 0 &&
           partitions_per_server > 0;
  }
  bool replication_enabled() const {
    return replication_top_k > 0 && max_replicas_per_partition > 0 &&
           partitions_per_server > 0;
  }
  // Whether the engine needs the partition map / monitor / gossip rounds at
  // all: migration, replication, or both.
  bool active() const { return enabled() || replication_enabled(); }
};

// One planned partition move.
struct PartitionMigration {
  uint32_t partition = 0;
  uint32_t from = 0;
  uint32_t to = 0;
};

// One planned replica creation (promote) or teardown (demote).
struct ReplicaChange {
  uint32_t partition = 0;
  uint32_t server = 0;  // where the replica is created / destroyed
};

// One round's replication decisions. Demotions are executed before
// promotions so a round never holds more replicas than the cap in flight.
struct ReplicationPlan {
  std::vector<ReplicaChange> promote;
  std::vector<ReplicaChange> demote;
};

// partition -> owning storage server, consulted by StorageTier::ServerOf on
// every key lookup (and therefore by CachedStorageSource when it groups
// misses into per-server batches). Owners are atomics: the threaded
// engine's gossip tick flips them while processor and fetch threads read.
// Each entry packs (version << 32 | server); the version increments on
// every flip, so a reader can detect that a partition moved — even away
// and back (ABA) — across one of its reads.
class PartitionMap {
 public:
  PartitionMap(uint32_t num_partitions, uint32_t num_servers, uint32_t hash_seed);

  uint32_t num_partitions() const { return num_partitions_; }
  uint32_t num_servers() const { return num_servers_; }

  // Which partition a key falls in — the tier's placement hash mod P, so
  // the initial owner layout reproduces classic hash placement exactly.
  uint32_t PartitionOf(NodeId node) const {
    return Murmur3Hash64(node, hash_seed_) % num_partitions_;
  }

  // The server half of a packed owner stamp.
  static uint32_t StampOwner(uint64_t stamp) {
    return static_cast<uint32_t>(stamp & 0xffffffffu);
  }

  // Versioned owner stamp: compares equal across two reads iff no flip of
  // the partition happened in between.
  uint64_t OwnerStamp(uint32_t partition) const {
    return owners_[partition].load(std::memory_order_acquire);
  }
  uint64_t OwnerStampOf(NodeId node) const { return OwnerStamp(PartitionOf(node)); }

  uint32_t owner(uint32_t partition) const { return StampOwner(OwnerStamp(partition)); }
  uint32_t OwnerOf(NodeId node) const { return owner(PartitionOf(node)); }

  // Rebinds a partition to a new owner (the flip step of a migration),
  // bumping the stamp version. Written only by the engine's repartition
  // round; readers see either the old or the new stamp, never a torn value.
  void SetOwner(uint32_t partition, uint32_t server) {
    const uint64_t version = (owners_[partition].load(std::memory_order_relaxed) >> 32) + 1;
    owners_[partition].store((version << 32) | server, std::memory_order_release);
  }

  // Plain snapshot of all owners (planner working copy).
  std::vector<uint32_t> OwnerSnapshot() const;

  // --- Replica sets (hot-partition replication) -------------------------
  //
  // Each partition carries a second packed atomic stamp describing its
  // replica set: bits 0-23 hold up to kMaxReplicas 8-bit replica server
  // ids, bits 24-25 the replica count, bits 32-63 a version that bumps on
  // every add/remove. One acquire load hands a reader the WHOLE replica
  // set consistently — no torn half-updated sets, and stamp comparison
  // detects churn (even away-and-back) across two reads, exactly like the
  // owner stamps.

  // Most replicas a partition can hold beyond its primary (packing limit).
  static constexpr uint32_t kMaxReplicas = 3;

  static uint32_t StampReplicaCount(uint64_t stamp) {
    return static_cast<uint32_t>((stamp >> 24) & 0x3u);
  }
  static uint32_t StampReplica(uint64_t stamp, uint32_t i) {
    return static_cast<uint32_t>((stamp >> (8 * i)) & 0xffu);
  }

  uint64_t ReplicaStamp(uint32_t partition) const {
    return replicas_[partition].load(std::memory_order_acquire);
  }
  uint64_t ReplicaStampOf(NodeId node) const {
    return ReplicaStamp(PartitionOf(node));
  }
  uint32_t replica_count(uint32_t partition) const {
    return StampReplicaCount(ReplicaStamp(partition));
  }

  // Adds / removes one replica server, bumping the stamp version. Written
  // only by the engine's repartition round (single planner thread);
  // concurrent readers see the old or the new set, never a torn one.
  void AddReplica(uint32_t partition, uint32_t server);
  void RemoveReplica(uint32_t partition, uint32_t server);

  // Partitions currently holding at least one replica.
  uint32_t ReplicatedPartitionCount() const;

  // Plain snapshot of every partition's replica list (planner working copy).
  std::vector<std::vector<uint32_t>> ReplicaSnapshot() const;

 private:
  uint32_t num_partitions_;
  uint32_t num_servers_;
  uint32_t hash_seed_;
  std::unique_ptr<std::atomic<uint64_t>[]> owners_;
  std::unique_ptr<std::atomic<uint64_t>[]> replicas_;
};

// Per-partition access-rate monitor. Record() is called from the tier's
// get/multiget paths (any thread, relaxed atomics); RollWindow() is called
// by the single planner thread at repartition rounds and folds the window
// counts into decayed rate estimates, exactly like the arrival splitter's
// per-session rate estimator.
class PartitionMonitor {
 public:
  explicit PartitionMonitor(uint32_t num_partitions);

  uint32_t num_partitions() const { return num_partitions_; }

  void Record(uint32_t partition) {
    windows_[partition].fetch_add(1, std::memory_order_relaxed);
  }

  // Rolls the current windows into the decayed rates and zeroes them.
  // Planner-thread only.
  void RollWindow(double decay);

  // Decayed per-partition access rates, valid between RollWindow() calls.
  std::span<const double> rates() const { return rates_; }

  uint64_t total_recorded() const {
    return total_recorded_.load(std::memory_order_relaxed);
  }

 private:
  uint32_t num_partitions_;
  std::unique_ptr<std::atomic<uint64_t>[]> windows_;
  std::vector<double> rates_;
  std::atomic<uint64_t> total_recorded_{0};
};

// The repartition controller: given the current map and the monitor's
// decayed per-partition rates, plan up to migration_cap hot-partition moves
// from the most- to the least-loaded server. Pure — the map is NOT mutated
// (the executor flips owners as each physical move lands); planned moves
// are reflected in a local working copy so one round stays consistent.
std::vector<PartitionMigration> PlanRepartition(const PartitionMap& map,
                                                std::span<const double> rates,
                                                const RepartitionConfig& config);

// The replication controller: demote one replica from every replicated
// partition that has gone cold (rate <= replica_demote_threshold x average
// per-server load), then promote the top replication_top_k hottest
// partitions (rate >= replica_hot_fraction x the average per-partition
// rate, above the noise floor) to one extra replica each on the
// least-loaded server not already
// holding them. Pure, like PlanRepartition: the map is not mutated; server
// loads account replicated partitions as their rate split evenly across
// all holders (power-of-two-choices spreads reads near-evenly).
ReplicationPlan PlanReplication(const PartitionMap& map,
                                std::span<const double> rates,
                                const RepartitionConfig& config);

// Max/min ratio over per-server load sums (min clamped to 1); the
// ClusterMetrics::storage_load_imbalance definition.
double StorageLoadImbalance(std::span<const uint64_t> per_server);

}  // namespace grouting

#endif  // GROUTING_SRC_PARTITION_REPARTITION_H_
