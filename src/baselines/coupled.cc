#include "src/baselines/coupled.h"

#include <algorithm>
#include <unordered_set>

namespace grouting {
namespace {

// Frontier-recording data source: runs the real executor over the graph
// while remembering which node ids were fetched at each traversal level.
class RecordingSource : public NodeDataSource {
 public:
  explicit RecordingSource(const Graph& g) : inner_(g) {}

  std::vector<AdjacencyPtr> FetchBatch(std::span<const NodeId> nodes) override {
    levels_.emplace_back(nodes.begin(), nodes.end());
    return inner_.FetchBatch(nodes);
  }
  const FetchTrace& trace() const override { return inner_.trace(); }
  void ResetTrace() override { inner_.ResetTrace(); }

  std::vector<std::vector<NodeId>> TakeLevels() { return std::move(levels_); }

 private:
  DirectGraphSource inner_;
  std::vector<std::vector<NodeId>> levels_;
};

}  // namespace

LevelFrontiers TraceQueryLevels(const Graph& g, const Query& q) {
  RecordingSource source(g);
  LevelFrontiers lf;
  lf.result = ExecuteQuery(q, source);
  lf.levels = source.TakeLevels();
  return lf;
}

// ---------------------------------------------------------------- SEDGE --

SedgeLikeSystem::SedgeLikeSystem(const Graph& g, CoupledConfig config,
                                 PartitionAssignment assignment,
                                 double partition_seconds)
    : graph_(g),
      config_(config),
      assignment_(std::move(assignment)),
      partition_seconds_(partition_seconds) {
  GROUTING_CHECK(assignment_.size() == g.num_nodes());
  GROUTING_CHECK(config_.num_servers > 0);
}

SimTimeUs SedgeLikeSystem::SimulateQuery(const LevelFrontiers& lf,
                                         CoupledMetrics* m) const {
  SimTimeUs t = 0.0;
  std::vector<uint32_t> per_server(config_.num_servers, 0);
  std::unordered_set<NodeId> next_level_set;

  for (size_t level = 0; level < lf.levels.size(); ++level) {
    const auto& frontier = lf.levels[level];
    if (frontier.empty()) {
      continue;
    }
    // One global superstep per traversal level.
    t += config_.superstep_overhead_us;
    ++m->supersteps;

    // Compute happens in parallel across servers; the barrier waits for the
    // slowest (max per-server frontier share).
    std::fill(per_server.begin(), per_server.end(), 0);
    for (NodeId u : frontier) {
      per_server[assignment_[u] % config_.num_servers] += 1;
    }
    const uint32_t slowest = *std::max_element(per_server.begin(), per_server.end());
    t += config_.compute_per_node_us * static_cast<double>(slowest);

    // Cross-partition edges from this frontier into the next one become
    // messages, flushed pairwise at the superstep boundary.
    if (level + 1 < lf.levels.size()) {
      next_level_set.clear();
      next_level_set.insert(lf.levels[level + 1].begin(), lf.levels[level + 1].end());
      uint64_t messages = 0;
      std::unordered_set<uint64_t> pairs;
      for (NodeId u : frontier) {
        const uint32_t pu = assignment_[u] % config_.num_servers;
        auto consider = [&](NodeId v) {
          if (next_level_set.count(v) == 0) {
            return;
          }
          const uint32_t pv = assignment_[v] % config_.num_servers;
          if (pu != pv) {
            ++messages;
            pairs.insert(static_cast<uint64_t>(pu) << 32 | pv);
          }
        };
        for (const Edge& e : graph_.OutNeighbors(u)) {
          consider(e.dst);
        }
        for (const Edge& e : graph_.InNeighbors(u)) {
          consider(e.dst);
        }
      }
      m->network_messages += messages;
      t += config_.per_message_us * static_cast<double>(messages) +
           config_.message_flush_base_us * static_cast<double>(pairs.size()) +
           config_.net.one_way_us;
    }
  }
  return t;
}

CoupledMetrics SedgeLikeSystem::Run(std::span<const Query> queries) {
  CoupledMetrics m;
  m.partition_seconds = partition_seconds_;
  results_.clear();
  results_.reserve(queries.size());
  double total_response_us = 0.0;
  // Vertex-centric jobs run one at a time over the whole cluster (each query
  // is a Pregel-style job occupying every superstep barrier).
  for (const Query& q : queries) {
    const LevelFrontiers lf = TraceQueryLevels(graph_, q);
    const SimTimeUs response = SimulateQuery(lf, &m);
    total_response_us += response;
    results_.push_back(lf.result);
  }
  m.queries = queries.size();
  // The engine keeps bsp_pipeline_overlap jobs in flight.
  m.makespan_us = total_response_us / std::max(1.0, config_.bsp_pipeline_overlap);
  m.throughput_qps =
      m.makespan_us > 0.0 ? static_cast<double>(m.queries) / (m.makespan_us / 1e6) : 0.0;
  m.mean_response_ms =
      m.queries > 0 ? total_response_us / static_cast<double>(m.queries) / 1000.0 : 0.0;
  return m;
}

// ----------------------------------------------------------- PowerGraph --

PowerGraphLikeSystem::PowerGraphLikeSystem(const Graph& g, CoupledConfig config,
                                           VertexCutResult cut, double partition_seconds)
    : graph_(g),
      config_(config),
      cut_(std::move(cut)),
      partition_seconds_(partition_seconds) {
  GROUTING_CHECK(cut_.node_replicas.size() == g.num_nodes());
  GROUTING_CHECK(config_.num_servers > 0);
}

SimTimeUs PowerGraphLikeSystem::SimulateQuery(const LevelFrontiers& lf,
                                              CoupledMetrics* m) const {
  SimTimeUs t = 0.0;
  std::vector<uint64_t> edges_per_server(config_.num_servers, 0);

  // Edge partition indices are aligned with out-CSR order; rebuild the CSR
  // offset per frontier node on the fly.
  for (const auto& frontier : lf.levels) {
    if (frontier.empty()) {
      continue;
    }
    t += config_.gas_round_overhead_us;
    ++m->supersteps;

    std::fill(edges_per_server.begin(), edges_per_server.end(), 0);
    uint64_t mirror_syncs = 0;
    for (NodeId u : frontier) {
      mirror_syncs += cut_.node_replicas[u].size();
    }
    // Mirror synchronisation: master exchanges state with each replica of
    // every active vertex (2 messages per mirror).
    m->network_messages += 2 * mirror_syncs;
    t += config_.per_mirror_sync_us * static_cast<double>(mirror_syncs) +
         config_.net.one_way_us;

    // Edge work balanced by the vertex cut: charge the slowest server.
    for (NodeId u : frontier) {
      edges_per_server[cut_.master[u] % config_.num_servers] +=
          graph_.Degree(u);
    }
    const uint64_t slowest =
        *std::max_element(edges_per_server.begin(), edges_per_server.end());
    t += config_.per_edge_us * static_cast<double>(slowest) +
         config_.compute_per_node_us * static_cast<double>(frontier.size()) /
             static_cast<double>(config_.num_servers);
  }
  return t;
}

CoupledMetrics PowerGraphLikeSystem::Run(std::span<const Query> queries) {
  CoupledMetrics m;
  m.partition_seconds = partition_seconds_;
  results_.clear();
  results_.reserve(queries.size());
  double total_response_us = 0.0;
  for (const Query& q : queries) {
    const LevelFrontiers lf = TraceQueryLevels(graph_, q);
    const SimTimeUs response = SimulateQuery(lf, &m);
    total_response_us += response;
    results_.push_back(lf.result);
  }
  m.queries = queries.size();
  // The asynchronous engine overlaps more in-flight queries than BSP.
  m.makespan_us = total_response_us / std::max(1.0, config_.gas_pipeline_overlap);
  m.throughput_qps =
      m.makespan_us > 0.0 ? static_cast<double>(m.queries) / (m.makespan_us / 1e6) : 0.0;
  m.mean_response_ms =
      m.queries > 0 ? total_response_us / static_cast<double>(m.queries) / 1000.0 : 0.0;
  return m;
}

}  // namespace grouting
