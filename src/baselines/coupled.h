// Coupled (non-decoupled) baseline systems the paper compares against
// (Section 4.2): each of the 12 servers stores a graph partition AND
// processes the queries whose query node lives in its partition — a fixed
// routing table, no stealing, no decoupling.
//
//   SedgeLikeSystem      — SEDGE/Giraph: vertex-centric BULK-SYNCHRONOUS
//                          PARALLEL. Every traversal hop is a global
//                          superstep with a barrier; frontier nodes compute
//                          on their owning servers; edges that cross
//                          partitions become network messages. Partitioned
//                          with our METIS-like multilevel partitioner
//                          (standing in for ParMETIS).
//   PowerGraphLikeSystem — PowerGraph: GAS over a greedy vertex-cut. No
//                          global barrier (asynchronous engine), but every
//                          hop synchronises the mirrors of active vertices.
//
// Query answers are computed with the shared executors (so correctness is
// cross-checked against the decoupled engine); timing replays the recorded
// per-level frontiers against each system's cost model.

#ifndef GROUTING_SRC_BASELINES_COUPLED_H_
#define GROUTING_SRC_BASELINES_COUPLED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/net/cost_model.h"
#include "src/partition/partitioner.h"
#include "src/partition/vertex_cut.h"
#include "src/query/query.h"

namespace grouting {

// Cost knobs. These are scaled to THIS repo's ~1000x-smaller graphs: in the
// paper a Giraph superstep barrier (~10-30 ms) is of the same order as one
// whole query (~30-90 ms); here queries finish in ~0.1-1 ms, so the barrier
// is scaled to a few hundred microseconds to preserve that ratio (see
// EXPERIMENTS.md, calibration notes).
struct CoupledConfig {
  uint32_t num_servers = 12;  // paper: 12-machine configurations
  NetworkProfile net = NetworkProfile::Ethernet();
  double compute_per_node_us = 0.40;  // same work as the decoupled processors

  // BSP knobs (Giraph-like).
  double superstep_overhead_us = 350.0;  // global barrier + superstep setup
  double per_message_us = 0.3;           // per cross-partition message
  double message_flush_base_us = 25.0;   // per communicating server pair/superstep

  // GAS knobs (PowerGraph-like).
  double gas_round_overhead_us = 130.0;  // per-hop engine scheduling (no barrier)
  double per_mirror_sync_us = 0.25;      // master<->mirror sync per replica
  double per_edge_us = 0.03;             // gather/scatter per edge

  // Concurrent queries the engine keeps in flight (throughput overlaps in a
  // pipeline; per-query response time is unchanged). Giraph-style BSP can
  // overlap a couple of jobs; PowerGraph's asynchronous engine a few more.
  double bsp_pipeline_overlap = 2.0;
  double gas_pipeline_overlap = 3.0;
};

struct CoupledMetrics {
  uint64_t queries = 0;
  SimTimeUs makespan_us = 0.0;
  double throughput_qps = 0.0;
  double mean_response_ms = 0.0;
  uint64_t network_messages = 0;
  uint64_t supersteps = 0;
  double partition_seconds = 0.0;  // offline partitioning cost (reported)
};

// Records the per-level frontier node ids of a query execution; shared by
// both baseline cost models.
struct LevelFrontiers {
  std::vector<std::vector<NodeId>> levels;
  QueryResult result;
};

LevelFrontiers TraceQueryLevels(const Graph& g, const Query& q);

class SedgeLikeSystem {
 public:
  // `partition_seconds` is the measured offline cost of building
  // `assignment` (reported alongside throughput, as the paper does).
  SedgeLikeSystem(const Graph& g, CoupledConfig config, PartitionAssignment assignment,
                  double partition_seconds);

  CoupledMetrics Run(std::span<const Query> queries);
  const std::vector<QueryResult>& results() const { return results_; }

 private:
  SimTimeUs SimulateQuery(const LevelFrontiers& lf, CoupledMetrics* m) const;

  const Graph& graph_;
  CoupledConfig config_;
  PartitionAssignment assignment_;
  double partition_seconds_;
  std::vector<QueryResult> results_;
};

class PowerGraphLikeSystem {
 public:
  PowerGraphLikeSystem(const Graph& g, CoupledConfig config, VertexCutResult cut,
                       double partition_seconds);

  CoupledMetrics Run(std::span<const Query> queries);
  const std::vector<QueryResult>& results() const { return results_; }

 private:
  SimTimeUs SimulateQuery(const LevelFrontiers& lf, CoupledMetrics* m) const;

  const Graph& graph_;
  CoupledConfig config_;
  VertexCutResult cut_;
  double partition_seconds_;
  std::vector<QueryResult> results_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_BASELINES_COUPLED_H_
