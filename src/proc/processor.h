// Query processor: the processing-tier worker. Owns an LRU (by default)
// cache of adjacency entries and a connection to the storage tier. Executes
// h-hop queries through a CachedStorageSource that (a) serves hits from the
// cache and (b) groups misses into per-storage-server multiget batches —
// the unit the cost model charges network and service time for.
//
// Processors never talk to each other (paper Section 2.3); they only receive
// queries and fetch from storage.

#ifndef GROUTING_SRC_PROC_PROCESSOR_H_
#define GROUTING_SRC_PROC_PROCESSOR_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/cache/cache.h"
#include "src/query/query.h"
#include "src/storage/storage_tier.h"

namespace grouting {

struct ProcessorConfig {
  uint64_t cache_bytes = 4ULL << 30;  // paper default: 4 GB per processor
  CachePolicy cache_policy = CachePolicy::kLru;
  bool use_cache = true;  // false = the paper's "no-cache" comparison scheme
};

// NodeDataSource that fronts the storage tier with a processor-local cache.
class CachedStorageSource : public NodeDataSource {
 public:
  CachedStorageSource(StorageTier* storage, NodeCache<AdjacencyPtr>* cache)
      : storage_(storage), cache_(cache) {
    GROUTING_CHECK(storage_ != nullptr);
  }

  std::vector<AdjacencyPtr> FetchBatch(std::span<const NodeId> nodes) override;
  const FetchTrace& trace() const override { return trace_; }
  void ResetTrace() override { trace_.Clear(); }

 private:
  StorageTier* storage_;
  NodeCache<AdjacencyPtr>* cache_;  // nullptr = no-cache mode
  FetchTrace trace_;
};

struct ProcessorStats {
  uint64_t queries_executed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t nodes_visited = 0;
  uint64_t bytes_fetched = 0;
  uint64_t storage_batches = 0;
};

class QueryProcessor {
 public:
  QueryProcessor(uint32_t id, StorageTier* storage, const ProcessorConfig& config);

  uint32_t id() const { return id_; }

  // Executes the query; the per-query FetchTrace is available via
  // last_trace() until the next call.
  QueryResult Execute(const Query& q);

  const FetchTrace& last_trace() const { return source_->trace(); }
  const ProcessorStats& stats() const { return stats_; }
  bool cache_enabled() const { return cache_ != nullptr; }
  NodeCache<AdjacencyPtr>* cache() { return cache_.get(); }
  const NodeCache<AdjacencyPtr>* cache() const { return cache_.get(); }
  void ResetStats();

 private:
  uint32_t id_;
  std::unique_ptr<NodeCache<AdjacencyPtr>> cache_;  // null in no-cache mode
  std::unique_ptr<CachedStorageSource> source_;
  ProcessorStats stats_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_PROC_PROCESSOR_H_
