// Query processor: the processing-tier worker. Owns an LRU (by default)
// cache of adjacency entries and a connection to the storage tier. Executes
// h-hop queries through a CachedStorageSource that (a) serves hits from the
// cache and (b) groups misses into per-storage-server multiget batches —
// the unit the cost model charges network and service time for.
//
// Per traversal level the source runs an issue / probe / complete pipeline:
// miss batches are opened as async multiget handles (StorageTier::
// StartMultiGet) with at most `max_inflight_batches` outstanding, hits are
// merged while batches are in flight, and completions install fetched
// values into the cache in issue order. With max_inflight_batches == 1 and
// no executor this degenerates to the classic synchronous path — byte-
// identical cache state, stats and trace for every window, which is what
// lets the window be a pure timing/overlap knob.
//
// Processors never talk to each other (paper Section 2.3); they only receive
// queries and fetch from storage.

#ifndef GROUTING_SRC_PROC_PROCESSOR_H_
#define GROUTING_SRC_PROC_PROCESSOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/cache/cache.h"
#include "src/obs/trace.h"
#include "src/query/query.h"
#include "src/storage/storage_tier.h"

namespace grouting {

// One processor-cache slot. Normal mode holds the decoded entry; compressed
// mode (ProcessorConfig::cache_compressed) holds the wire blob instead —
// charged at its encoded size against the byte budget, and decoded again on
// every hit. Exactly one of the two pointers is set. `version` is the
// adjacency version snapshot taken BEFORE the blob was fetched (always 0
// with mutations off): a probe re-validates it against the tier's current
// NodeVersion, so a hit can never serve a list from before a mutation —
// the snapshot may under-claim (forcing a spurious refetch) but never
// over-claim.
struct CachedAdjacency {
  AdjacencyPtr decoded;
  std::shared_ptr<const std::vector<uint8_t>> encoded;
  uint64_t version = 0;
};

// Re-resolves multiget misses that raced a partition migration: a batch
// formed against a server that lost its keys between the ServerOf lookup
// and StartMultiGet comes back with nullptr slots; each null slot is
// re-fetched through the tier's current partition map, retrying until BOTH
// the owner stamp and the key's mutation version are stable around the
// read, so the answer is still delivered exactly once — whatever
// migrations, promotions, or mutations ran (or re-ran) meanwhile. The
// version half matters for a node mutated (or materialised) during a
// migration or replica promotion: its owner stamp can be stable while the
// blob only just landed. Returns the number of keys re-resolved; no-op
// when repartitioning is off.
size_t ResolveMigratedMisses(StorageTier* storage, std::span<const NodeId> keys,
                             std::vector<AdjacencyPtr>* values);

struct ProcessorConfig {
  uint64_t cache_bytes = 4ULL << 30;  // paper default: 4 GB per processor
  CachePolicy cache_policy = CachePolicy::kLru;
  bool use_cache = true;  // false = the paper's "no-cache" comparison scheme
  // Bound on concurrently outstanding multiget batches per processor.
  // 1 = the synchronous level-barrier path; > 1 = async issue/probe/complete
  // pipeline (the sim replays it with per-batch completion events; the
  // threaded runtime services handles on a per-processor fetch thread).
  uint32_t max_inflight_batches = 1;
  // Cache the ENCODED wire blob instead of the decoded entry: the byte
  // budget holds several times more vertices under delta_varint encoding,
  // at the price of a decode (CostModel::decompress_*) on every hit.
  // Requires the storage tier to run in retain-wire mode.
  bool cache_compressed = false;
  // Multi-tenant federation: keyspace stride (the graph's node count; set
  // by the engine when ClusterConfig::num_tenants > 1). A query from tenant
  // t reads storage and cache under keys node + t * stride while traversal,
  // results, and batch positions stay in the tenant-local id space.
  // 0 = single tenant, identity mapping.
  NodeId tenant_stride = 0;
};

// NodeDataSource that fronts the storage tier with a processor-local cache.
class CachedStorageSource : public NodeDataSource {
 public:
  CachedStorageSource(StorageTier* storage, NodeCache<CachedAdjacency>* cache,
                      uint32_t max_inflight_batches = 1, bool cache_compressed = false,
                      NodeId tenant_stride = 0)
      : storage_(storage),
        cache_(cache),
        window_(max_inflight_batches == 0 ? 1 : max_inflight_batches),
        cache_compressed_(cache_compressed),
        tenant_stride_(tenant_stride) {
    GROUTING_CHECK(storage_ != nullptr);
  }

  std::vector<AdjacencyPtr> FetchBatch(std::span<const NodeId> nodes) override;
  const FetchTrace& trace() const override { return trace_; }
  void ResetTrace() override { trace_.Clear(); }

  // Installs the async seam: handles are submitted here instead of being
  // executed inline, and completion overlap is measured in wall time.
  // nullptr (the default) = inline execution on the calling thread.
  void set_fetch_executor(BatchFetchExecutor* executor) { executor_ = executor; }
  uint32_t window() const { return window_; }

  // Wall-clock tracer for the owning processor thread (threaded runtime
  // only; the sim stamps virtual time itself during replay). nullptr (the
  // default) records nothing.
  void set_tracer(WallTracer* tracer) { tracer_ = tracer; }

  // Selects the tenant keyspace for subsequent fetches: storage and cache
  // keys become node + tenant * tenant_stride. Tenant 0 (or stride 0) is
  // the identity mapping — the classic single-tenant path.
  void set_tenant(uint32_t tenant) {
    tenant_offset_ = static_cast<NodeId>(tenant) * tenant_stride_;
  }

 private:
  // Global storage/cache key of a tenant-local node id.
  NodeId Key(NodeId node) const { return node + tenant_offset_; }
  // One outstanding multiget batch plus what is needed to install it.
  struct Inflight {
    std::shared_ptr<MultiGetHandle> handle;
    std::vector<size_t> positions;  // result slots, parallel to handle keys
    // Per-key NodeVersion snapshots taken at batch formation, parallel to
    // positions; empty with mutations off. Fetched values install into the
    // cache under these (pre-fetch) snapshots so a mutation that lands
    // while the batch is in flight invalidates the entry, never the
    // reverse.
    std::vector<uint64_t> versions;
    double issue_ts_us = 0.0;  // tracer timestamp at issue (if tracing)
  };

  // Waits for the oldest in-flight batch and merges its values into
  // `result`, the cache and the trace (issue order keeps this deterministic).
  void CompleteOldest(std::vector<Inflight>* inflight, std::span<const NodeId> nodes,
                      std::vector<AdjacencyPtr>* result, FetchTrace::Level* level,
                      double* blocked_us);

  StorageTier* storage_;
  NodeCache<CachedAdjacency>* cache_;  // nullptr = no-cache mode
  uint32_t window_;
  bool cache_compressed_;
  NodeId tenant_stride_ = 0;
  NodeId tenant_offset_ = 0;
  BatchFetchExecutor* executor_ = nullptr;
  WallTracer* tracer_ = nullptr;
  FetchTrace trace_;
};

struct ProcessorStats {
  uint64_t queries_executed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t nodes_visited = 0;
  uint64_t bytes_fetched = 0;
  uint64_t storage_batches = 0;
  // Async fetch pipeline (see FetchTrace): peak outstanding batches and
  // accumulated overlap between in-flight fetches and processor-side work.
  uint32_t batches_inflight_peak = 0;
  double fetch_overlap_us = 0.0;
  // Wall time decoding compressed blobs on cache hits (threaded runtime;
  // the sim replaces it with the cost model's virtual charge).
  double decompress_us = 0.0;
};

class QueryProcessor {
 public:
  QueryProcessor(uint32_t id, StorageTier* storage, const ProcessorConfig& config);

  uint32_t id() const { return id_; }

  // Executes the query; the per-query FetchTrace is available via
  // last_trace() until the next call.
  QueryResult Execute(const Query& q);

  const FetchTrace& last_trace() const { return source_->trace(); }
  const ProcessorStats& stats() const { return stats_; }
  // Async fetch seam (threaded runtime): route this processor's multiget
  // handles through `executor` instead of executing them inline.
  void set_fetch_executor(BatchFetchExecutor* executor) {
    source_->set_fetch_executor(executor);
  }
  // Wall-clock tracer for the thread running this processor (threaded
  // runtime only); forwarded to the storage source for batch/decode spans.
  void set_tracer(WallTracer* tracer) { source_->set_tracer(tracer); }
  bool cache_enabled() const { return cache_ != nullptr; }
  NodeCache<CachedAdjacency>* cache() { return cache_.get(); }
  const NodeCache<CachedAdjacency>* cache() const { return cache_.get(); }
  void ResetStats();

 private:
  uint32_t id_;
  std::unique_ptr<NodeCache<CachedAdjacency>> cache_;  // null in no-cache mode
  std::unique_ptr<CachedStorageSource> source_;
  ProcessorStats stats_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_PROC_PROCESSOR_H_
