#include "src/proc/processor.h"

#include <algorithm>

namespace grouting {

std::vector<AdjacencyPtr> CachedStorageSource::FetchBatch(std::span<const NodeId> nodes) {
  std::vector<AdjacencyPtr> result(nodes.size());
  trace_.level_stats.emplace_back();
  FetchTrace::Level& level = trace_.level_stats.back();

  // Pass 1: serve from cache.
  std::vector<size_t> miss_positions;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (cache_ != nullptr) {
      ++trace_.cache_lookups;
      ++level.lookups;
      if (auto hit = cache_->Get(nodes[i]); hit.has_value()) {
        ++trace_.cache_hits;
        ++level.hits;
        ++trace_.visited;
        result[i] = *hit;
        continue;
      }
      ++trace_.cache_misses;
      ++level.misses;
    } else {
      ++trace_.cache_misses;  // every access is a storage fetch
      ++level.misses;
    }
    miss_positions.push_back(i);
  }

  // Pass 2: group misses by owning storage server into multiget batches.
  if (!miss_positions.empty()) {
    std::sort(miss_positions.begin(), miss_positions.end(), [&](size_t a, size_t b) {
      const uint32_t sa = storage_->ServerOf(nodes[a]);
      const uint32_t sb = storage_->ServerOf(nodes[b]);
      return sa != sb ? sa < sb : a < b;
    });
    size_t i = 0;
    while (i < miss_positions.size()) {
      const uint32_t server = storage_->ServerOf(nodes[miss_positions[i]]);
      FetchTrace::Batch batch;
      batch.server = server;
      batch.level = trace_.levels;
      storage_->server(server).NoteBatch();
      while (i < miss_positions.size() &&
             storage_->ServerOf(nodes[miss_positions[i]]) == server) {
        const size_t pos = miss_positions[i];
        AdjacencyPtr entry = storage_->server(server).Get(nodes[pos]);
        if (entry != nullptr) {
          batch.values += 1;
          batch.bytes += entry->SerializedBytes();
          trace_.bytes_fetched += entry->SerializedBytes();
          ++trace_.visited;
          ++level.fetched;
          if (cache_ != nullptr) {
            cache_->Put(nodes[pos], entry, entry->SerializedBytes());
          }
          result[pos] = std::move(entry);
        }
        ++i;
      }
      trace_.batches.push_back(batch);
    }
  }
  ++trace_.levels;
  return result;
}

QueryProcessor::QueryProcessor(uint32_t id, StorageTier* storage,
                               const ProcessorConfig& config)
    : id_(id) {
  if (config.use_cache) {
    cache_ = std::make_unique<NodeCache<AdjacencyPtr>>(config.cache_bytes,
                                                       config.cache_policy);
  }
  source_ = std::make_unique<CachedStorageSource>(storage, cache_.get());
}

QueryResult QueryProcessor::Execute(const Query& q) {
  source_->ResetTrace();
  QueryResult result = ExecuteQuery(q, *source_);
  const FetchTrace& trace = source_->trace();
  ++stats_.queries_executed;
  stats_.cache_hits += trace.cache_hits;
  stats_.cache_misses += trace.cache_misses;
  stats_.nodes_visited += trace.visited;
  stats_.bytes_fetched += trace.bytes_fetched;
  stats_.storage_batches += trace.batches.size();
  return result;
}

void QueryProcessor::ResetStats() {
  stats_ = ProcessorStats{};
  if (cache_ != nullptr) {
    cache_->ResetStats();
  }
}

}  // namespace grouting
